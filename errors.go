package otif

import (
	"errors"

	"otif/internal/core"
)

// Sentinel errors returned by the pipeline API. Test with errors.Is.
var (
	// ErrNotTrained is returned by Tune, Extract-adjacent operations and
	// SaveModels when Train (or LoadModels) has not run yet.
	ErrNotTrained = errors.New("otif: pipeline not trained")

	// ErrEmptyCurve is returned by PickFastestWithin for an empty curve
	// (Tune not run, or it produced no points).
	ErrEmptyCurve = errors.New("otif: empty tuning curve")
)

// PartialError reports an operation canceled partway through. It wraps the
// context error (so errors.Is(err, context.Canceled) works) and records how
// much of the work completed before the cancellation was observed.
type PartialError = core.PartialError
