package otif

import (
	"sync"

	"otif/internal/geom"
	"otif/internal/query"
	"otif/internal/store"
)

// TrackSet is the output of one extraction pass: per-clip object tracks
// plus the simulated execution cost. All subsequent queries are answered
// from the stored tracks — no video decoding or model inference. Query
// methods execute through a lazily built indexed store (see Index), which
// prunes candidate tracks through temporal, spatial and category indexes
// while returning results bit-identical to a linear scan.
type TrackSet struct {
	// PerClip holds the extracted tracks of each clip in set order.
	PerClip [][]*query.Track
	// Runtime is the simulated extraction cost in seconds.
	Runtime float64
	// Dataset is the name of the dataset the tracks were extracted from
	// (stored in the v2 file header; empty for v1 files loaded without
	// WithDatasetName).
	Dataset string

	ctx query.Context

	idxOnce sync.Once
	idx     store.Querier
}

// Track is one stored object track.
type Track = query.Track

// Movement is a labeled spatial pattern for path breakdown queries.
type Movement = query.Movement

// FrameMatch is one frame returned by a limit query.
type FrameMatch = query.FrameMatch

// Index returns the set's indexed track store, building it on first use.
// The store holds a per-clip temporal interval index, a coarse spatial
// grid over track extents and per-category postings lists; every TrackSet
// query method and the otifd /v1/query/* endpoints execute through it. The
// returned Querier is safe for concurrent queries; for sets adopted from a
// streaming ingest session it is the session's segmented store, otherwise
// a monolithic index — both answer bit-identically.
func (ts *TrackSet) Index() store.Querier {
	ts.idxOnce.Do(func() {
		ts.idx = store.New(ts.PerClip, ts.ctx)
	})
	return ts.idx
}

// CountTracks returns, per clip, the number of tracks of the category
// (empty for all categories). This answers the paper's track count query.
func (ts *TrackSet) CountTracks(category string) []int {
	return ts.Query().Category(category).Count()
}

// PathBreakdown counts, per clip, the category tracks following each
// movement (the turning-movement count query).
func (ts *TrackSet) PathBreakdown(category string, movements []Movement, maxEndpointDist float64) []map[string]int {
	return ts.Query().Category(category).Movements(movements, maxEndpointDist).Breakdown()
}

// HardBraking returns, per clip, the tracks whose maximum deceleration
// exceeds the threshold in nominal pixels per second squared (example
// exploratory query (1) of §3).
func (ts *TrackSet) HardBraking(decelThreshold float64) [][]*Track {
	return ts.Index().HardBraking(decelThreshold)
}

// AvgVisible returns, per clip, the average number of category objects
// visible per frame (example exploratory query (3)).
func (ts *TrackSet) AvgVisible(category string) []float64 {
	return ts.Query().Category(category).AvgVisible()
}

// BusyFrames returns, per clip, the frames with at least nA objects of
// catA and nB objects of catB visible (example exploratory query (2)).
func (ts *TrackSet) BusyFrames(catA string, nA int, catB string, nB int) [][]int {
	return ts.Index().BusyFrames(catA, nA, catB, nB)
}

// LimitQuery runs a frame-level limit query per clip: up to limit frames
// satisfying pred, at least minSepSec apart.
func (ts *TrackSet) LimitQuery(category string, pred query.FramePredicate, limit int, minSepSec float64) [][]FrameMatch {
	minSep := int(minSepSec * float64(ts.ctx.FPS))
	return ts.Index().LimitQuery(category, pred, limit, minSep)
}

// Speeding returns, per clip, the tracks whose median speed exceeds the
// threshold in nominal pixels per second.
func (ts *TrackSet) Speeding(threshold float64) [][]*Track {
	return ts.Index().Speeding(threshold)
}

// DwellTime returns, per clip, seconds each category track spends inside
// the region (keyed by track ID).
func (ts *TrackSet) DwellTime(category string, region geom.Polygon) []map[int]float64 {
	return ts.Query().Category(category).InRegion(region).Dwell()
}

// CoOccurrences returns, per clip, the total count of frame-wise pairs of
// category objects within dist of each other.
func (ts *TrackSet) CoOccurrences(category string, dist float64) []int {
	return ts.Index().CoOccurrences(category, dist)
}

// SpeedStats summarizes one track's motion.
type SpeedStats = query.SpeedStats

// TrackSpeed computes the speed statistics of one stored track.
func (ts *TrackSet) TrackSpeed(t *Track) SpeedStats {
	return query.TrackSpeed(t, ts.ctx.FPS)
}

// Polygon re-exports the region type used by spatial queries.
type Polygon = geom.Polygon

// Predicates re-exported for limit queries.
type (
	// CountPredicate matches frames with at least N objects.
	CountPredicate = query.CountPredicate
	// RegionPredicate matches frames with at least N objects in a polygon.
	RegionPredicate = query.RegionPredicate
	// HotSpotPredicate matches frames with a dense circular cluster.
	HotSpotPredicate = query.HotSpotPredicate
)
