package otif

import (
	"otif/internal/geom"
	"otif/internal/query"
)

// TrackSet is the output of one extraction pass: per-clip object tracks
// plus the simulated execution cost. All subsequent queries are answered by
// scanning these tracks — no video decoding or model inference.
type TrackSet struct {
	// PerClip holds the extracted tracks of each clip in set order.
	PerClip [][]*query.Track
	// Runtime is the simulated extraction cost in seconds.
	Runtime float64

	ctx query.Context
}

// Track is one stored object track.
type Track = query.Track

// Movement is a labeled spatial pattern for path breakdown queries.
type Movement = query.Movement

// FrameMatch is one frame returned by a limit query.
type FrameMatch = query.FrameMatch

// CountTracks returns, per clip, the number of tracks of the category
// (empty for all categories). This answers the paper's track count query.
func (ts *TrackSet) CountTracks(category string) []int {
	out := make([]int, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.CountTracks(tracks, category)
	}
	return out
}

// PathBreakdown counts, per clip, the category tracks following each
// movement (the turning-movement count query).
func (ts *TrackSet) PathBreakdown(category string, movements []Movement, maxEndpointDist float64) []map[string]int {
	out := make([]map[string]int, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.PathBreakdown(tracks, category, movements, maxEndpointDist)
	}
	return out
}

// HardBraking returns, per clip, the tracks whose maximum deceleration
// exceeds the threshold in nominal pixels per second squared (example
// exploratory query (1) of §3).
func (ts *TrackSet) HardBraking(decelThreshold float64) [][]*Track {
	out := make([][]*Track, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.HardBraking(tracks, ts.ctx, decelThreshold)
	}
	return out
}

// AvgVisible returns, per clip, the average number of category objects
// visible per frame (example exploratory query (3)).
func (ts *TrackSet) AvgVisible(category string) []float64 {
	out := make([]float64, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.AvgVisible(tracks, category, ts.ctx)
	}
	return out
}

// BusyFrames returns, per clip, the frames with at least nA objects of
// catA and nB objects of catB visible (example exploratory query (2)).
func (ts *TrackSet) BusyFrames(catA string, nA int, catB string, nB int) [][]int {
	out := make([][]int, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.BusyFrames(tracks, catA, nA, catB, nB, ts.ctx)
	}
	return out
}

// LimitQuery runs a frame-level limit query per clip: up to limit frames
// satisfying pred, at least minSepSec apart.
func (ts *TrackSet) LimitQuery(category string, pred query.FramePredicate, limit int, minSepSec float64) [][]FrameMatch {
	minSep := int(minSepSec * float64(ts.ctx.FPS))
	out := make([][]FrameMatch, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.LimitQuery(tracks, category, pred, ts.ctx, limit, minSep)
	}
	return out
}

// Speeding returns, per clip, the tracks whose median speed exceeds the
// threshold in nominal pixels per second.
func (ts *TrackSet) Speeding(threshold float64) [][]*Track {
	out := make([][]*Track, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.Speeding(tracks, ts.ctx, threshold)
	}
	return out
}

// DwellTime returns, per clip, seconds each category track spends inside
// the region (keyed by track ID).
func (ts *TrackSet) DwellTime(category string, region geom.Polygon) []map[int]float64 {
	out := make([]map[int]float64, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.DwellTime(tracks, category, region, ts.ctx)
	}
	return out
}

// CoOccurrences returns, per clip, the total count of frame-wise pairs of
// category objects within dist of each other.
func (ts *TrackSet) CoOccurrences(category string, dist float64) []int {
	out := make([]int, len(ts.PerClip))
	for i, tracks := range ts.PerClip {
		out[i] = query.CoOccurrences(tracks, category, dist, ts.ctx)
	}
	return out
}

// SpeedStats summarizes one track's motion.
type SpeedStats = query.SpeedStats

// TrackSpeed computes the speed statistics of one stored track.
func (ts *TrackSet) TrackSpeed(t *Track) SpeedStats {
	return query.TrackSpeed(t, ts.ctx.FPS)
}

// Polygon re-exports the region type used by spatial queries.
type Polygon = geom.Polygon

// Predicates re-exported for limit queries.
type (
	// CountPredicate matches frames with at least N objects.
	CountPredicate = query.CountPredicate
	// RegionPredicate matches frames with at least N objects in a polygon.
	RegionPredicate = query.RegionPredicate
	// HotSpotPredicate matches frames with a dense circular cluster.
	HotSpotPredicate = query.HotSpotPredicate
)
