package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPathLength(t *testing.T) {
	p := Path{{0, 0}, {3, 4}, {3, 14}}
	if got := p.Length(); got != 15 {
		t.Errorf("Length = %v, want 15", got)
	}
	if (Path{}).Length() != 0 {
		t.Error("empty path length should be 0")
	}
	if (Path{{1, 1}}).Length() != 0 {
		t.Error("single-point path length should be 0")
	}
}

func TestPointAt(t *testing.T) {
	p := Path{{0, 0}, {10, 0}}
	cases := []struct {
		t    float64
		want Point
	}{
		{0, Point{0, 0}},
		{0.5, Point{5, 0}},
		{1, Point{10, 0}},
		{-1, Point{0, 0}},
		{2, Point{10, 0}},
	}
	for _, c := range cases {
		if got := p.PointAt(c.t); got.Dist(c.want) > 1e-9 {
			t.Errorf("PointAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Multi-segment arc-length parameterization.
	p2 := Path{{0, 0}, {10, 0}, {10, 10}}
	if got := p2.PointAt(0.75); got.Dist(Point{10, 5}) > 1e-9 {
		t.Errorf("PointAt(0.75) = %v, want (10,5)", got)
	}
}

func TestResample(t *testing.T) {
	p := Path{{0, 0}, {10, 0}}
	r := p.Resample(5)
	if len(r) != 5 {
		t.Fatalf("len = %d", len(r))
	}
	for i, pt := range r {
		want := Point{float64(i) * 2.5, 0}
		if pt.Dist(want) > 1e-9 {
			t.Errorf("point %d = %v, want %v", i, pt, want)
		}
	}
	if got := p.Resample(1); len(got) != 1 || got[0] != (Point{0, 0}) {
		t.Errorf("Resample(1) = %v", got)
	}
	if p.Resample(0) != nil {
		t.Error("Resample(0) should be nil")
	}
}

func TestResampleEndpointsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%18) + 2
		p := make(Path, rng.Intn(8)+2)
		for i := range p {
			p[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		r := p.Resample(n)
		return len(r) == n &&
			r[0].Dist(p[0]) < 1e-9 &&
			r[n-1].Dist(p[len(p)-1]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDirectionAt(t *testing.T) {
	p := Path{{0, 0}, {10, 0}}
	d := p.DirectionAt(0.5)
	if d.Dist(Point{1, 0}) > 1e-6 {
		t.Errorf("DirectionAt = %v, want (1,0)", d)
	}
	if (Path{{1, 1}}).DirectionAt(0.5) != (Point{}) {
		t.Error("degenerate path direction should be zero")
	}
}

func TestPathDist(t *testing.T) {
	a := Path{{0, 0}, {10, 0}}
	b := Path{{0, 5}, {10, 5}}
	if got := PathDist(a, b, 10); math.Abs(got-5) > 1e-9 {
		t.Errorf("PathDist = %v, want 5", got)
	}
	if got := PathDist(a, a, 10); got != 0 {
		t.Errorf("self distance = %v", got)
	}
	// Reversed path has a large distance (direction matters).
	rev := Path{{10, 0}, {0, 0}}
	if got := PathDist(a, rev, 10); got < 4 {
		t.Errorf("reversed distance = %v, want large", got)
	}
}

func TestPathDistSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Path {
			p := make(Path, rng.Intn(6)+2)
			for i := range p {
				p[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
			}
			return p
		}
		a, b := mk(), mk()
		d1 := PathDist(a, b, 20)
		d2 := PathDist(b, a, 20)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
