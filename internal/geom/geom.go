// Package geom provides the 2D geometric primitives used throughout OTIF:
// points, rectangles, polygons and polyline paths, together with the
// intersection-over-union and containment predicates that the detector,
// proxy model, tracker and query engine all share.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2D point in frame coordinates (pixels, origin top-left).
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Lerp linearly interpolates between p (t=0) and q (t=1).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle specified by its top-left corner and
// dimensions. A Rect with W <= 0 or H <= 0 is empty.
type Rect struct {
	X, Y, W, H float64
}

// RectFromBounds builds a Rect from two corner coordinate pairs, normalizing
// the corner order.
func RectFromBounds(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Empty reports whether the rectangle has non-positive area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Area returns the rectangle area, or 0 if the rectangle is empty.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.W * r.H
}

// MaxX returns the x coordinate of the right edge.
func (r Rect) MaxX() float64 { return r.X + r.W }

// MaxY returns the y coordinate of the bottom edge.
func (r Rect) MaxY() float64 { return r.Y + r.H }

// Center returns the rectangle center point.
func (r Rect) Center() Point { return Point{r.X + r.W/2, r.Y + r.H/2} }

// Contains reports whether p lies inside r (inclusive of the top-left edge,
// exclusive of the bottom-right edge, matching pixel-grid semantics).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X < r.MaxX() && p.Y >= r.Y && p.Y < r.MaxY()
}

// ContainsRect reports whether q lies entirely within r.
func (r Rect) ContainsRect(q Rect) bool {
	if q.Empty() {
		return true
	}
	return q.X >= r.X && q.Y >= r.Y && q.MaxX() <= r.MaxX() && q.MaxY() <= r.MaxY()
}

// Intersect returns the intersection of r and q (possibly empty).
func (r Rect) Intersect(q Rect) Rect {
	x0 := math.Max(r.X, q.X)
	y0 := math.Max(r.Y, q.Y)
	x1 := math.Min(r.MaxX(), q.MaxX())
	y1 := math.Min(r.MaxY(), q.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Union returns the smallest rectangle containing both r and q.
func (r Rect) Union(q Rect) Rect {
	if r.Empty() {
		return q
	}
	if q.Empty() {
		return r
	}
	x0 := math.Min(r.X, q.X)
	y0 := math.Min(r.Y, q.Y)
	x1 := math.Max(r.MaxX(), q.MaxX())
	y1 := math.Max(r.MaxY(), q.MaxY())
	return Rect{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}
}

// Intersects reports whether r and q overlap with positive area.
func (r Rect) Intersects(q Rect) bool { return !r.Intersect(q).Empty() }

// IoU returns the intersection-over-union of r and q in [0, 1].
func (r Rect) IoU(q Rect) float64 {
	inter := r.Intersect(q).Area()
	if inter == 0 {
		return 0
	}
	return inter / (r.Area() + q.Area() - inter)
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{X: r.X + dx, Y: r.Y + dy, W: r.W, H: r.H}
}

// Scale returns r with all coordinates and dimensions multiplied by f.
func (r Rect) Scale(f float64) Rect {
	return Rect{X: r.X * f, Y: r.Y * f, W: r.W * f, H: r.H * f}
}

// Clip returns r clipped to the bounds rectangle.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(%.1f,%.1f %gx%g)", r.X, r.Y, r.W, r.H)
}

// Polygon is a closed polygon given by its vertices in order.
type Polygon []Point

// Contains reports whether p lies inside the polygon, using the even-odd
// ray-casting rule. Points exactly on an edge may be classified either way.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg)
	if n < 3 {
		return false
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		pi, pj := pg[i], pg[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xCross := pi.X + (p.Y-pi.Y)/(pj.Y-pi.Y)*(pj.X-pi.X)
			if p.X < xCross {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Bounds returns the bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg) == 0 {
		return Rect{}
	}
	minX, minY := pg[0].X, pg[0].Y
	maxX, maxY := minX, minY
	for _, p := range pg[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	return RectFromBounds(minX, minY, maxX, maxY)
}
