package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	q := Point{0, 0}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := p.Add(Point{1, -1}); got != (Point{4, 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(Point{1, 1}); got != (Point{2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := q.Lerp(p, 0.5); got != (Point{1.5, 2}) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestRectFromBoundsNormalizes(t *testing.T) {
	r := RectFromBounds(10, 20, 2, 5)
	if r.X != 2 || r.Y != 5 || r.W != 8 || r.H != 15 {
		t.Errorf("RectFromBounds = %+v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{X: 0, Y: 0, W: 10, H: 20}
	if r.Area() != 200 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Center() != (Point{5, 10}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Point{0, 0}) {
		t.Error("Contains top-left should be true")
	}
	if r.Contains(Point{10, 20}) {
		t.Error("Contains bottom-right (exclusive) should be false")
	}
	if (Rect{}).Area() != 0 {
		t.Error("empty rect area should be 0")
	}
	if !(Rect{W: -1, H: 5}).Empty() {
		t.Error("negative width should be empty")
	}
}

func TestIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 10, 10}
	inter := a.Intersect(b)
	if inter != (Rect{5, 5, 5, 5}) {
		t.Errorf("Intersect = %v", inter)
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 15, 15}) {
		t.Errorf("Union = %v", u)
	}
	if !a.Intersects(b) {
		t.Error("should intersect")
	}
	c := Rect{20, 20, 5, 5}
	if a.Intersects(c) {
		t.Error("disjoint rects should not intersect")
	}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection should be empty")
	}
	// Union with empty returns the other operand.
	if a.Union(Rect{}) != a {
		t.Error("union with empty should be identity")
	}
	if (Rect{}).Union(a) != a {
		t.Error("union with empty should be identity")
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.IoU(a); math.Abs(got-1) > 1e-12 {
		t.Errorf("self IoU = %v", got)
	}
	b := Rect{5, 0, 10, 10}
	// intersection 50, union 150
	if got := a.IoU(b); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("IoU = %v, want 1/3", got)
	}
	if got := a.IoU(Rect{20, 20, 1, 1}); got != 0 {
		t.Errorf("disjoint IoU = %v", got)
	}
}

func randRect(rng *rand.Rand) Rect {
	return Rect{
		X: rng.Float64()*200 - 100,
		Y: rng.Float64()*200 - 100,
		W: rng.Float64() * 100,
		H: rng.Float64() * 100,
	}
}

func TestIoUProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randRect(r), randRect(r)
		iou := a.IoU(b)
		// Bounds.
		if iou < 0 || iou > 1 {
			return false
		}
		// Symmetry.
		if math.Abs(iou-b.IoU(a)) > 1e-12 {
			return false
		}
		// Intersection is contained in both (up to float rounding).
		in := a.Intersect(b)
		if !in.Empty() && (!containsApprox(a, in) || !containsApprox(b, in)) {
			return false
		}
		// Union contains both (up to float rounding).
		u := a.Union(b)
		return containsApprox(u, a) && containsApprox(u, b)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// containsApprox is ContainsRect with a small tolerance for floating-point
// rounding in Union/Intersect (which store width = x1-x0, so MaxX can be a
// few ULPs off x1).
func containsApprox(r, q Rect) bool {
	const eps = 1e-9
	if q.Empty() {
		return true
	}
	return q.X >= r.X-eps && q.Y >= r.Y-eps &&
		q.MaxX() <= r.MaxX()+eps && q.MaxY() <= r.MaxY()+eps
}

func TestTranslateScaleClip(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	if got := r.Translate(1, -1); got != (Rect{2, 1, 3, 4}) {
		t.Errorf("Translate = %v", got)
	}
	if got := r.Scale(2); got != (Rect{2, 4, 6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := r.Clip(Rect{0, 0, 2, 3}); got != (Rect{1, 2, 1, 1}) {
		t.Errorf("Clip = %v", got)
	}
}

func TestPolygonContains(t *testing.T) {
	square := Polygon{{0, 0}, {10, 0}, {10, 10}, {0, 10}}
	if !square.Contains(Point{5, 5}) {
		t.Error("center should be inside")
	}
	if square.Contains(Point{15, 5}) {
		t.Error("outside point should be outside")
	}
	tri := Polygon{{0, 0}, {10, 0}, {5, 10}}
	if !tri.Contains(Point{5, 3}) {
		t.Error("triangle interior")
	}
	if tri.Contains(Point{0, 9}) {
		t.Error("triangle exterior")
	}
	if (Polygon{{0, 0}, {1, 1}}).Contains(Point{0.5, 0.5}) {
		t.Error("degenerate polygon contains nothing")
	}
}

func TestPolygonBounds(t *testing.T) {
	p := Polygon{{1, 2}, {5, -1}, {3, 7}}
	b := p.Bounds()
	want := RectFromBounds(1, -1, 5, 7)
	if b != want {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
	if !(Polygon{}).Bounds().Empty() {
		t.Error("empty polygon bounds should be empty")
	}
}
