package geom

import "math"

// Path is an ordered polyline through frame space. Paths represent both the
// lanes that simulated objects travel along and the spatial trajectory of an
// extracted object track.
type Path []Point

// Length returns the total arc length of the path.
func (p Path) Length() float64 {
	var total float64
	for i := 1; i < len(p); i++ {
		total += p[i].Dist(p[i-1])
	}
	return total
}

// PointAt returns the point a fraction t in [0, 1] of the way along the path
// by arc length. Out-of-range t is clamped.
func (p Path) PointAt(t float64) Point {
	if len(p) == 0 {
		return Point{}
	}
	if len(p) == 1 || t <= 0 {
		return p[0]
	}
	if t >= 1 {
		return p[len(p)-1]
	}
	target := t * p.Length()
	var traveled float64
	for i := 1; i < len(p); i++ {
		seg := p[i].Dist(p[i-1])
		if traveled+seg >= target && seg > 0 {
			return p[i-1].Lerp(p[i], (target-traveled)/seg)
		}
		traveled += seg
	}
	return p[len(p)-1]
}

// Resample returns n points evenly spaced by arc length along the path.
// This is the P(s) operation from the paper's track-distance metric (§3.4).
func (p Path) Resample(n int) Path {
	if n <= 0 {
		return nil
	}
	out := make(Path, n)
	if n == 1 {
		out[0] = p.PointAt(0)
		return out
	}
	for i := 0; i < n; i++ {
		out[i] = p.PointAt(float64(i) / float64(n-1))
	}
	return out
}

// DirectionAt returns the unit direction vector of the path at fraction t,
// or the zero vector for degenerate paths.
func (p Path) DirectionAt(t float64) Point {
	const eps = 1e-3
	a := p.PointAt(math.Max(0, t-eps))
	b := p.PointAt(math.Min(1, t+eps))
	d := b.Sub(a)
	n := d.Norm()
	if n == 0 {
		return Point{}
	}
	return d.Scale(1 / n)
}

// PathDist returns the mean distance between corresponding evenly spaced
// points of two paths, using n sample points. This is the track distance
// d(s1, s2) from the paper (§3.4, N = 20 in the reference implementation).
func PathDist(a, b Path, n int) float64 {
	if n <= 0 {
		return 0
	}
	pa := a.Resample(n)
	pb := b.Resample(n)
	var total float64
	for i := 0; i < n; i++ {
		total += pa[i].Dist(pb[i])
	}
	return total / float64(n)
}
