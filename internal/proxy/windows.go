package proxy

import (
	"otif/internal/geom"
)

// SelectWindowSizes chooses the fixed set of detector window sizes W
// (§3.3): assuming a perfect proxy (positive cells = cells intersecting
// theta_best detections), it starts with only the full-frame size and
// greedily adds, from the candidate sizes, the one that most reduces
// sum_t est(R*(I_t; W)) over the sample frames, until |W| = k.
//
// boxesPerFrame holds the theta_best detections for each sampled frame;
// perPixel/detScale parameterize the detector cost as in NewWindowSet.
func SelectWindowSizes(nomW, nomH, k int, perPixel, detScale float64, boxesPerFrame [][]geom.Rect) *WindowSet {
	grids := make([]*Grid, len(boxesPerFrame))
	for i, boxes := range boxesPerFrame {
		grids[i] = TruthGrid(nomW, nomH, boxes)
	}

	candidates := candidateSizes(nomW, nomH)
	chosen := [][2]int{} // beyond the implicit full-frame entry
	current := NewWindowSet(nomW, nomH, perPixel, detScale, chosen)
	currentCost := totalEst(grids, current)

	for len(current.Sizes) < k {
		bestCost := currentCost
		bestIdx := -1
		var bestWS *WindowSet
		for ci, cand := range candidates {
			trial := NewWindowSet(nomW, nomH, perPixel, detScale, append(append([][2]int{}, chosen...), cand))
			if len(trial.Sizes) == len(current.Sizes) {
				continue // candidate degenerated to full frame
			}
			cost := totalEst(grids, trial)
			if cost < bestCost-1e-12 {
				bestCost = cost
				bestIdx = ci
				bestWS = trial
			}
		}
		if bestIdx == -1 {
			break // no candidate improves expected runtime
		}
		chosen = append(chosen, candidates[bestIdx])
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		current = bestWS
		currentCost = bestCost
	}
	return current
}

func totalEst(grids []*Grid, ws *WindowSet) float64 {
	var total float64
	for _, g := range grids {
		total += EstCost(g, ws)
	}
	return total
}

// candidateSizes enumerates window-size candidates: cell-aligned sizes
// spanning from a few cells up to most of the frame, in both square-ish
// and wide shapes (traffic objects mostly spread horizontally).
func candidateSizes(nomW, nomH int) [][2]int {
	fracs := []struct{ fw, fh float64 }{
		{0.2, 0.2}, {0.3, 0.3}, {0.45, 0.45}, {0.6, 0.6},
		{0.35, 0.2}, {0.5, 0.25}, {0.7, 0.35}, {1.0, 0.35},
		{0.25, 0.5}, {1.0, 0.6}, {0.6, 1.0},
	}
	var out [][2]int
	seen := map[[2]int]bool{}
	for _, f := range fracs {
		w := alignCells(int(float64(nomW) * f.fw))
		h := alignCells(int(float64(nomH) * f.fh))
		if w >= nomW && h >= nomH {
			continue
		}
		if w > nomW {
			w = nomW
		}
		if h > nomH {
			h = nomH
		}
		s := [2]int{w, h}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// alignCells rounds a size up to a whole number of proxy cells, with a
// minimum of two cells so windows always cover at least one object-sized
// region.
func alignCells(v int) int {
	cells := (v + CellSize - 1) / CellSize
	if cells < 2 {
		cells = 2
	}
	return cells * CellSize
}
