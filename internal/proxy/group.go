package proxy

import (
	"math"

	"otif/internal/costmodel"
	"otif/internal/geom"
)

// WindowSet is the fixed set of window sizes W at which the detector is
// initialized (§3.3). Sizes are in nominal pixels; the set always contains
// the full-frame size so that whole-frame detection remains available. The
// cost of running the detector at each size is precomputed from the cost
// model so est(R) can be evaluated cheaply.
type WindowSet struct {
	NomW, NomH int
	Sizes      [][2]int  // includes the full-frame size
	Costs      []float64 // detector execution time per size

	// index maps a window size to its position in Sizes, built once at
	// construction so per-window cost lookups are O(1) instead of a scan.
	index map[[2]int]int
}

// NewWindowSet builds a WindowSet for the given frame size, detector
// per-pixel cost, and detector input scale (detectorRes / nominal, so a
// window's cost reflects the resolution the detector actually runs at).
func NewWindowSet(nomW, nomH int, perPixel, detScale float64, sizes [][2]int) *WindowSet {
	ws := &WindowSet{NomW: nomW, NomH: nomH}
	// Ensure the full frame is present and first.
	all := [][2]int{{nomW, nomH}}
	for _, s := range sizes {
		if s[0] >= nomW && s[1] >= nomH {
			continue
		}
		all = append(all, s)
	}
	ws.Sizes = all
	ws.Costs = make([]float64, len(all))
	ws.index = make(map[[2]int]int, len(all))
	for i, s := range all {
		w := int(float64(s[0])*detScale + 0.5)
		h := int(float64(s[1])*detScale + 0.5)
		ws.Costs[i] = costmodel.DetectCost(perPixel, w, h)
		if _, ok := ws.index[s]; !ok {
			ws.index[s] = i
		}
	}
	return ws
}

// IndexOf returns the position of the w x h window size within the set
// and whether the size is present. Windows produced by Group are always
// present; callers estimating costs for externally constructed rectangles
// must handle the not-found case explicitly.
func (ws *WindowSet) IndexOf(w, h int) (int, bool) {
	i, ok := ws.index[[2]int{w, h}]
	return i, ok
}

// FullFrameCost returns the cost of one whole-frame detector invocation.
func (ws *WindowSet) FullFrameCost() float64 { return ws.Costs[0] }

// bestFit returns the index of the cheapest window size that covers a
// wCells x hCells cell extent, or -1 if only the full frame fits.
func (ws *WindowSet) bestFit(wPx, hPx float64) int {
	best := -1
	for i := 1; i < len(ws.Sizes); i++ {
		if float64(ws.Sizes[i][0]) >= wPx && float64(ws.Sizes[i][1]) >= hPx {
			if best == -1 || ws.Costs[i] < ws.Costs[best] {
				best = i
			}
		}
	}
	return best
}

// cluster is a group of positive cells tracked by its cell bounding box.
type cluster struct {
	minX, minY, maxX, maxY int
	sizeIdx                int // window size index covering the cluster, -1 if only full frame
	cost                   float64
}

func (ws *WindowSet) makeCluster(minX, minY, maxX, maxY int) cluster {
	c := cluster{minX: minX, minY: minY, maxX: maxX, maxY: maxY}
	wPx := float64((maxX - minX + 1) * CellSize)
	hPx := float64((maxY - minY + 1) * CellSize)
	c.sizeIdx = ws.bestFit(wPx, hPx)
	if c.sizeIdx == -1 {
		c.sizeIdx = 0
		c.cost = ws.Costs[0]
	} else {
		c.cost = ws.Costs[c.sizeIdx]
	}
	return c
}

func mergeBounds(a, b cluster) (int, int, int, int) {
	return minInt(a.minX, b.minX), minInt(a.minY, b.minY),
		maxInt(a.maxX, b.maxX), maxInt(a.maxY, b.maxY)
}

// Group covers the positive cells of g with rectangular windows from ws
// using the paper's density-based greedy agglomerative clustering: start
// with one cluster per connected component of positive cells, repeatedly
// merge the pair whose merged window would be cheaper than the two
// separate windows, and stop when no merge decreases est(R). If the final
// plan costs at least as much as a single full-frame invocation, fall back
// to the full frame.
//
// The returned windows are in nominal coordinates, sized exactly at one of
// ws.Sizes, clamped inside the frame, and cover every positive cell.
func Group(g *Grid, ws *WindowSet) []geom.Rect {
	clusters := connectedCellClusters(g, ws)
	if len(clusters) == 0 {
		return nil
	}

	// Greedy agglomerative merging.
	for {
		bestI, bestJ := -1, -1
		bestGain := 0.0
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				minX, minY, maxX, maxY := mergeBounds(clusters[i], clusters[j])
				merged := ws.makeCluster(minX, minY, maxX, maxY)
				gain := clusters[i].cost + clusters[j].cost - merged.cost
				if gain > bestGain+1e-12 {
					bestGain = gain
					bestI, bestJ = i, j
				}
			}
		}
		if bestI == -1 {
			break
		}
		minX, minY, maxX, maxY := mergeBounds(clusters[bestI], clusters[bestJ])
		merged := ws.makeCluster(minX, minY, maxX, maxY)
		clusters[bestI] = merged
		clusters = append(clusters[:bestJ], clusters[bestJ+1:]...)
	}

	var total float64
	for _, c := range clusters {
		total += c.cost
	}
	if total >= ws.FullFrameCost() {
		return []geom.Rect{{W: float64(ws.NomW), H: float64(ws.NomH)}}
	}

	out := make([]geom.Rect, 0, len(clusters))
	for _, c := range clusters {
		out = append(out, ws.placeWindow(c))
	}
	return out
}

// placeWindow positions the cluster's window size centered on the cluster
// cell bounds, clamped into the frame.
func (ws *WindowSet) placeWindow(c cluster) geom.Rect {
	size := ws.Sizes[c.sizeIdx]
	if c.sizeIdx == 0 {
		return geom.Rect{W: float64(ws.NomW), H: float64(ws.NomH)}
	}
	cx := float64(c.minX+c.maxX+1) / 2 * CellSize
	cy := float64(c.minY+c.maxY+1) / 2 * CellSize
	x := cx - float64(size[0])/2
	y := cy - float64(size[1])/2
	x = math.Max(0, math.Min(x, float64(ws.NomW-size[0])))
	y = math.Max(0, math.Min(y, float64(ws.NomH-size[1])))
	return geom.Rect{X: x, Y: y, W: float64(size[0]), H: float64(size[1])}
}

// EstCost returns est(R): the total detector cost of the window plan that
// Group would produce for g (including the proxy's full-frame fallback).
// A nil/empty grid costs nothing.
func EstCost(g *Grid, ws *WindowSet) float64 {
	wins := Group(g, ws)
	var total float64
	for _, w := range wins {
		idx, ok := ws.IndexOf(int(w.W), int(w.H))
		if !ok {
			// Group only emits sizes drawn from ws; bill an unknown size
			// conservatively at the full-frame cost.
			total += ws.FullFrameCost()
			continue
		}
		total += ws.Costs[idx]
	}
	return total
}

// connectedCellClusters builds one cluster per 8-connected component of
// positive cells.
func connectedCellClusters(g *Grid, ws *WindowSet) []cluster {
	visited := make([]bool, len(g.Pos))
	var out []cluster
	var stack []int
	for start := range g.Pos {
		if !g.Pos[start] || visited[start] {
			continue
		}
		minX, minY, maxX, maxY := g.W, g.H, -1, -1
		stack = append(stack[:0], start)
		visited[start] = true
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := p%g.W, p/g.W
			minX = minInt(minX, x)
			minY = minInt(minY, y)
			maxX = maxInt(maxX, x)
			maxY = maxInt(maxY, y)
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= g.W || ny >= g.H {
						continue
					}
					q := ny*g.W + nx
					if g.Pos[q] && !visited[q] {
						visited[q] = true
						stack = append(stack, q)
					}
				}
			}
		}
		out = append(out, ws.makeCluster(minX, minY, maxX, maxY))
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
