// Package proxy implements OTIF's segmentation proxy model (§3.3 of the
// paper). A proxy model inputs a video frame at a low resolution and scores
// every 32x32 (nominal) cell of the frame with the likelihood that the cell
// intersects at least one object detection. Positive cells after
// thresholding by B_proxy are grouped into rectangular windows drawn from a
// small fixed set of window sizes W, and the object detector runs only
// inside those windows, falling back to the whole frame when that is
// cheaper.
//
// The paper's five-layer segmentation CNN is replaced by per-cell logistic
// regression over cell brightness statistics (see DESIGN.md §2); models are
// trained at five input resolutions on the detections of the best-accuracy
// configuration theta_best, and the input resolution and threshold are left
// to the tuner, exactly as in the paper.
package proxy

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/video"
)

// metInvocations counts proxy Score calls; the handle is pre-registered so
// the per-frame record is a single atomic add.
var metInvocations = obs.Default.Counter("proxy.invocations")

// CellSize is the nominal pixel size of one proxy output cell.
const CellSize = 32

// featuresPerCell is the dimensionality of the per-cell feature vector.
const featuresPerCell = 4

// Grid is a boolean occupancy grid over the frame's 32x32 cells.
type Grid struct {
	W, H int
	Pos  []bool
}

// GridDims returns the cell-grid dimensions for a nominal frame size.
func GridDims(nomW, nomH int) (w, h int) {
	return (nomW + CellSize - 1) / CellSize, (nomH + CellSize - 1) / CellSize
}

// NewGrid allocates an empty grid for a nominal frame size.
func NewGrid(nomW, nomH int) *Grid {
	w, h := GridDims(nomW, nomH)
	return &Grid{W: w, H: h, Pos: make([]bool, w*h)}
}

// At reports whether cell (x, y) is positive.
func (g *Grid) At(x, y int) bool { return g.Pos[y*g.W+x] }

// Set marks cell (x, y).
func (g *Grid) Set(x, y int, v bool) { g.Pos[y*g.W+x] = v }

// Count returns the number of positive cells.
func (g *Grid) Count() int {
	n := 0
	for _, p := range g.Pos {
		if p {
			n++
		}
	}
	return n
}

// CellRect returns the nominal-coordinate rectangle of cell (x, y).
func CellRect(x, y int) geom.Rect {
	return geom.Rect{X: float64(x * CellSize), Y: float64(y * CellSize), W: CellSize, H: CellSize}
}

// TruthGrid marks every cell intersecting one of the detection boxes; it is
// both the training label (from theta_best detections) and the "perfect
// proxy" assumption used when selecting window sizes.
func TruthGrid(nomW, nomH int, boxes []geom.Rect) *Grid {
	g := NewGrid(nomW, nomH)
	for _, b := range boxes {
		x0 := clampInt(int(b.X)/CellSize, 0, g.W-1)
		y0 := clampInt(int(b.Y)/CellSize, 0, g.H-1)
		x1 := clampInt(int(math.Ceil(b.MaxX()-1e-9))/CellSize, 0, g.W-1)
		y1 := clampInt(int(math.Ceil(b.MaxY()-1e-9))/CellSize, 0, g.H-1)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				g.Set(x, y, true)
			}
		}
	}
	return g
}

// Model is one trained proxy model at a fixed input resolution.
type Model struct {
	ResW, ResH int // nominal input resolution (cost accounting)
	LR         *nn.LogReg

	// once32 guards the lazy one-time float32 conversion of the trained
	// weights (the nn.Float32 backend); the converted model is read-only
	// and shared across clips. A model retrained after float32 inference
	// must be rebuilt (nothing in the pipeline does that).
	once32 sync.Once
	lr32   *nn.LogReg32
}

// model32 returns the float32 twin of the trained logistic regression,
// converting it on first use. Safe for concurrent callers.
func (m *Model) model32() *nn.LogReg32 {
	m.once32.Do(func() { m.lr32 = m.LR.To32() })
	return m.lr32
}

// NewModel creates an untrained proxy model for the given nominal input
// resolution.
func NewModel(resW, resH int, rng *rand.Rand) *Model {
	return &Model{ResW: resW, ResH: resH, LR: nn.NewLogReg(featuresPerCell, rng)}
}

// analysisSize returns the stored-buffer resolution at which this model
// analyzes the frame: the model's nominal input fraction applied to the
// stored buffer.
func (m *Model) analysisSize(f *video.Frame) (int, int) {
	aw := int(float64(f.W)*float64(m.ResW)/float64(f.NomW) + 0.5)
	ah := int(float64(f.H)*float64(m.ResH)/float64(f.NomH) + 0.5)
	if aw < 2 {
		aw = 2
	}
	if ah < 2 {
		ah = 2
	}
	return aw, ah
}

// forEachCell streams the per-cell feature vectors of the frame at the
// model's input resolution to visit, in row-major cell order. The feature
// vector handed to visit lives in one reused buffer and is only valid for
// the duration of the call; visit must copy it to retain it. The frame's
// downsample is served by the process-wide cache.
func (m *Model) forEachCell(frame *video.Frame, bg *detect.BackgroundModel, visit func(cell int, feat nn.Vec)) {
	aw, ah := m.analysisSize(frame)
	img := video.CachedDownsample(frame, aw, ah)
	var bgImg *video.Frame
	var offset float64
	if bg != nil {
		// The brightness offset is only meaningful against a background;
		// without one the full-frame mean would go unused, so skip the pass.
		bgImg = bg.At(aw, ah)
		imgMean, _ := img.SharedMeanStd()
		bgMean, _ := bgImg.SharedMeanStd()
		offset = imgMean - bgMean
	}

	gw, gh := GridDims(frame.NomW, frame.NomH)
	// Analysis pixels per nominal pixel.
	sx := float64(aw) / float64(frame.NomW)
	sy := float64(ah) / float64(frame.NomH)
	var feat [featuresPerCell]float64
	for cy := 0; cy < gh; cy++ {
		y0 := clampInt(int(float64(cy*CellSize)*sy), 0, ah-1)
		y1 := clampInt(int(math.Ceil(float64((cy+1)*CellSize)*sy)), y0+1, ah)
		for cx := 0; cx < gw; cx++ {
			x0 := clampInt(int(float64(cx*CellSize)*sx), 0, aw-1)
			x1 := clampInt(int(math.Ceil(float64((cx+1)*CellSize)*sx)), x0+1, aw)
			var sum, sum2, sumDiff, maxDiff float64
			n := 0
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					v := float64(img.Pix[y*aw+x])
					sum += v
					sum2 += v * v
					if bgImg != nil {
						d := math.Abs(v - float64(bgImg.Pix[y*aw+x]) - offset)
						sumDiff += d
						if d > maxDiff {
							maxDiff = d
						}
					}
					n++
				}
			}
			mean := sum / float64(n)
			variance := sum2/float64(n) - mean*mean
			if variance < 0 {
				variance = 0
			}
			feat[0] = math.Sqrt(variance) / 32
			feat[1] = sumDiff / float64(n) / 48
			feat[2] = maxDiff / 64
			feat[3] = mean / 255
			visit(cy*gw+cx, nn.Vec(feat[:]))
		}
	}
}

// forEachCell32 is forEachCell on the float32 backend: cell statistics
// accumulate in float32 (a 32x32 cell's brightness sums are far below
// float32's exact-integer range, so the precision loss is bounded by the
// feature scaling, which the tolerance tests pin). The visit buffer
// contract matches forEachCell's.
func (m *Model) forEachCell32(frame *video.Frame, bg *detect.BackgroundModel, visit func(cell int, feat nn.Vec32)) {
	aw, ah := m.analysisSize(frame)
	img := video.CachedDownsample(frame, aw, ah)
	var bgImg *video.Frame
	var offset float32
	if bg != nil {
		// The brightness offset is only meaningful against a background;
		// without one the full-frame mean would go unused, so skip the pass.
		bgImg = bg.At(aw, ah)
		imgMean, _ := img.SharedMeanStd()
		bgMean, _ := bgImg.SharedMeanStd()
		offset = float32(imgMean - bgMean)
	}

	gw, gh := GridDims(frame.NomW, frame.NomH)
	// Analysis pixels per nominal pixel.
	sx := float64(aw) / float64(frame.NomW)
	sy := float64(ah) / float64(frame.NomH)
	var feat [featuresPerCell]float32
	for cy := 0; cy < gh; cy++ {
		y0 := clampInt(int(float64(cy*CellSize)*sy), 0, ah-1)
		y1 := clampInt(int(math.Ceil(float64((cy+1)*CellSize)*sy)), y0+1, ah)
		for cx := 0; cx < gw; cx++ {
			x0 := clampInt(int(float64(cx*CellSize)*sx), 0, aw-1)
			x1 := clampInt(int(math.Ceil(float64((cx+1)*CellSize)*sx)), x0+1, aw)
			var sum, sum2, sumDiff, maxDiff float32
			n := 0
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					v := float32(img.Pix[y*aw+x])
					sum += v
					sum2 += v * v
					if bgImg != nil {
						d := v - float32(bgImg.Pix[y*aw+x]) - offset
						if d < 0 {
							d = -d
						}
						sumDiff += d
						if d > maxDiff {
							maxDiff = d
						}
					}
					n++
				}
			}
			mean := sum / float32(n)
			variance := sum2/float32(n) - mean*mean
			if variance < 0 {
				variance = 0
			}
			feat[0] = float32(math.Sqrt(float64(variance))) / 32
			feat[1] = sumDiff / float32(n) / 48
			feat[2] = maxDiff / 64
			feat[3] = mean / 255
			visit(cy*gw+cx, nn.Vec32(feat[:]))
		}
	}
}

// Features computes the per-cell feature matrix of the frame at the
// model's input resolution using the background model for contrast
// features. Features are written into dst, a caller-owned flat row-major
// matrix where cell i occupies dst[i*FeatureDim : (i+1)*FeatureDim]; dst
// is grown if its capacity is insufficient (nil allocates fresh) and the
// matrix is returned.
func (m *Model) Features(frame *video.Frame, bg *detect.BackgroundModel, dst []float64) []float64 {
	gw, gh := GridDims(frame.NomW, frame.NomH)
	n := gw * gh * featuresPerCell
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	m.forEachCell(frame, bg, func(cell int, feat nn.Vec) {
		copy(dst[cell*featuresPerCell:(cell+1)*featuresPerCell], feat)
	})
	return dst
}

// FeatureDim is the dimensionality of one cell's feature vector (the row
// stride of the matrix Features fills).
const FeatureDim = featuresPerCell

// Score runs the proxy model on a frame, charging simulated proxy cost, and
// returns the per-cell positive-class probabilities. Feature computation
// and the logistic readout are fused per cell, so the only allocation is
// the returned score slice (which is always fresh: callers retain it).
func (m *Model) Score(frame *video.Frame, bg *detect.BackgroundModel, acct *costmodel.Accountant) []float64 {
	metInvocations.Inc()
	acct.Add(costmodel.OpProxy, costmodel.ProxyCost(m.ResW, m.ResH))
	gw, gh := GridDims(frame.NomW, frame.NomH)
	scores := make([]float64, gw*gh)
	m.forEachCell(frame, bg, func(cell int, feat nn.Vec) {
		scores[cell] = m.LR.Predict(feat)
	})
	return scores
}

// ScorePrec is Score evaluated on the selected backend: Float64 delegates
// to Score (bit-exact reference, also used by training, tuning and the
// figure pipelines), Float32 fuses float32 cell features with the converted
// logistic readout. Scores are returned as float64 either way, so
// thresholding and window construction are shared.
func (m *Model) ScorePrec(prec nn.Precision, frame *video.Frame, bg *detect.BackgroundModel, acct *costmodel.Accountant) []float64 {
	if prec != nn.Float32 {
		return m.Score(frame, bg, acct)
	}
	metInvocations.Inc()
	acct.Add(costmodel.OpProxy, costmodel.ProxyCost(m.ResW, m.ResH))
	lr32 := m.model32()
	gw, gh := GridDims(frame.NomW, frame.NomH)
	scores := make([]float64, gw*gh)
	m.forEachCell32(frame, bg, func(cell int, feat nn.Vec32) {
		scores[cell] = float64(lr32.Predict(feat))
	})
	return scores
}

// Threshold converts per-cell scores into a positive-cell grid using the
// confidence threshold B_proxy.
func Threshold(nomW, nomH int, scores []float64, bProxy float64) *Grid {
	g := NewGrid(nomW, nomH)
	ThresholdInto(g, scores, bProxy)
	return g
}

// ThresholdInto writes the thresholded scores into an existing grid of the
// same cell count, letting per-frame loops reuse one grid allocation.
func ThresholdInto(g *Grid, scores []float64, bProxy float64) {
	if len(scores) != len(g.Pos) {
		panic(fmt.Sprintf("proxy: %d scores for a %dx%d grid", len(scores), g.W, g.H))
	}
	for i, s := range scores {
		g.Pos[i] = s >= bProxy
	}
}

// TrainExample is one frame's worth of proxy training data.
type TrainExample struct {
	Frame *video.Frame
	Boxes []geom.Rect // theta_best detections
}

// Train fits the model on the examples' cells using SGD, charging simulated
// training cost. Per the paper, only frames with at least one detection are
// used (the caller may pre-filter; Train also skips empty ones), and labels
// are 1 for cells intersecting a detection.
func (m *Model) Train(examples []TrainExample, bg *detect.BackgroundModel, epochs int, rng *rand.Rand, acct *costmodel.Accountant) {
	var xs []nn.Vec
	var ts []float64
	for _, ex := range examples {
		if len(ex.Boxes) == 0 {
			continue
		}
		// Each example gets its own matrix; the retained row views index
		// into it without overlapping.
		feats := m.Features(ex.Frame, bg, nil)
		truth := TruthGrid(ex.Frame.NomW, ex.Frame.NomH, ex.Boxes)
		for i := range truth.Pos {
			xs = append(xs, nn.Vec(feats[i*featuresPerCell:(i+1)*featuresPerCell]))
			if truth.Pos[i] {
				ts = append(ts, 1)
			} else {
				ts = append(ts, 0)
			}
		}
		acct.Add(costmodel.OpTrainProx, costmodel.ProxyCost(m.ResW, m.ResH)*float64(epochs))
	}
	if len(xs) == 0 {
		return
	}
	m.LR.TrainEpochs(xs, ts, epochs, 0.25, 1e-5, rng)
}

// DefaultResolutions returns the five proxy input resolutions trained for a
// dataset with the given nominal frame size, as fractions of the nominal
// resolution (the paper trains 5 models at pre-determined resolutions).
func DefaultResolutions(nomW, nomH int) [][2]int {
	fracs := []float64{0.5, 0.375, 0.25, 0.1875, 0.125}
	out := make([][2]int, len(fracs))
	for i, f := range fracs {
		out[i] = [2]int{roundEven(float64(nomW) * f), roundEven(float64(nomH) * f)}
	}
	return out
}

func roundEven(v float64) int {
	n := int(v + 0.5)
	if n%2 == 1 {
		n++
	}
	if n < 2 {
		n = 2
	}
	return n
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
