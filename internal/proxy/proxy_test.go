package proxy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/video"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(1280, 720)
	if g.W != 40 || g.H != 23 {
		t.Fatalf("grid %dx%d, want 40x23", g.W, g.H)
	}
	g.Set(3, 4, true)
	if !g.At(3, 4) {
		t.Error("Set/At roundtrip")
	}
	if g.Count() != 1 {
		t.Errorf("Count = %d", g.Count())
	}
}

func TestCellRect(t *testing.T) {
	r := CellRect(2, 3)
	if r.X != 64 || r.Y != 96 || r.W != 32 || r.H != 32 {
		t.Errorf("CellRect = %v", r)
	}
}

func TestTruthGridMarksIntersectingCells(t *testing.T) {
	g := TruthGrid(320, 320, []geom.Rect{{X: 30, Y: 30, W: 40, H: 10}})
	// Box spans x in [30,70) -> cells 0..2, y in [30,40) -> cells 0..1.
	for cy := 0; cy < g.H; cy++ {
		for cx := 0; cx < g.W; cx++ {
			want := cx <= 2 && cy <= 1
			if g.At(cx, cy) != want {
				t.Errorf("cell (%d,%d) = %v, want %v", cx, cy, g.At(cx, cy), want)
			}
		}
	}
	if TruthGrid(320, 320, nil).Count() != 0 {
		t.Error("no boxes should mark no cells")
	}
}

func TestTruthGridCoversBoxesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var boxes []geom.Rect
		for i := 0; i < rng.Intn(5)+1; i++ {
			boxes = append(boxes, geom.Rect{
				X: rng.Float64() * 280, Y: rng.Float64() * 280,
				W: rng.Float64()*60 + 5, H: rng.Float64()*60 + 5,
			})
		}
		g := TruthGrid(320, 320, boxes)
		// Every box center cell must be positive.
		for _, b := range boxes {
			c := b.Center()
			cx := clampInt(int(c.X)/CellSize, 0, g.W-1)
			cy := clampInt(int(c.Y)/CellSize, 0, g.H-1)
			if !g.At(cx, cy) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func proxyHarness(t *testing.T) (*dataset.Instance, *detect.BackgroundModel, *Model) {
	t.Helper()
	ds, err := dataset.Build("warsaw", dataset.SetSpec{Clips: 2, ClipSeconds: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var frames []*video.Frame
	for _, ct := range ds.Train {
		for i := 0; i < ct.Clip.Len(); i += 10 {
			frames = append(frames, ct.Clip.Frame(i))
		}
	}
	bg := detect.TrainBackground(frames)

	rng := rand.New(rand.NewSource(1))
	res := DefaultResolutions(ds.Cfg.NomW, ds.Cfg.NomH)[1]
	m := NewModel(res[0], res[1], rng)

	// Train on oracle boxes (stand-in for theta_best detections).
	var examples []TrainExample
	for _, ct := range ds.Train {
		for f := 0; f < ct.Clip.Len(); f += 8 {
			var boxes []geom.Rect
			for _, gt := range ct.Truth(f) {
				boxes = append(boxes, gt.Box)
			}
			examples = append(examples, TrainExample{Frame: ct.Clip.Frame(f), Boxes: boxes})
		}
	}
	m.Train(examples, bg, 10, rng, costmodel.NewAccountant())
	return ds, bg, m
}

func TestProxyModelDiscriminates(t *testing.T) {
	ds, bg, m := proxyHarness(t)
	ct := ds.Val[0]
	var posSum, negSum float64
	var nPos, nNeg int
	for f := 0; f < ct.Clip.Len(); f += 10 {
		frame := ct.Clip.Frame(f)
		scores := m.Score(frame, bg, costmodel.NewAccountant())
		var boxes []geom.Rect
		for _, gt := range ct.Truth(f) {
			boxes = append(boxes, gt.Box)
		}
		truth := TruthGrid(ds.Cfg.NomW, ds.Cfg.NomH, boxes)
		for i, s := range scores {
			if truth.Pos[i] {
				posSum += s
				nPos++
			} else {
				negSum += s
				nNeg++
			}
		}
	}
	if nPos == 0 || nNeg == 0 {
		t.Skip("degenerate clip")
	}
	posMean := posSum / float64(nPos)
	negMean := negSum / float64(nNeg)
	if posMean < negMean+0.2 {
		t.Errorf("proxy does not discriminate: pos %v neg %v", posMean, negMean)
	}
}

func TestProxyCostCharged(t *testing.T) {
	ds, bg, m := proxyHarness(t)
	acct := costmodel.NewAccountant()
	m.Score(ds.Val[0].Clip.Frame(0), bg, acct)
	want := costmodel.ProxyCost(m.ResW, m.ResH)
	if got := acct.Get(costmodel.OpProxy); got != want {
		t.Errorf("proxy cost = %v, want %v", got, want)
	}
}

func TestThreshold(t *testing.T) {
	scores := make([]float64, NewGrid(320, 320).W*NewGrid(320, 320).H)
	scores[0] = 0.9
	scores[1] = 0.3
	g := Threshold(320, 320, scores, 0.5)
	if !g.Pos[0] || g.Pos[1] {
		t.Error("thresholding wrong")
	}
}

func TestDefaultResolutionsDescending(t *testing.T) {
	res := DefaultResolutions(1280, 720)
	if len(res) != 5 {
		t.Fatalf("got %d resolutions, want 5 (per the paper)", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i][0] >= res[i-1][0] {
			t.Error("resolutions must descend")
		}
	}
	for _, r := range res {
		if r[0]%2 != 0 || r[1]%2 != 0 {
			t.Errorf("resolution %v not even", r)
		}
	}
}
