package proxy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otif/internal/costmodel"
	"otif/internal/geom"
)

func testWindowSet() *WindowSet {
	return NewWindowSet(640, 480, costmodel.YOLOPerPixel, 1.0, [][2]int{
		{128, 96}, {256, 192},
	})
}

func TestWindowSetAlwaysIncludesFullFrame(t *testing.T) {
	ws := testWindowSet()
	if ws.Sizes[0] != [2]int{640, 480} {
		t.Fatalf("first size %v, want full frame", ws.Sizes[0])
	}
	if len(ws.Sizes) != 3 {
		t.Errorf("sizes = %d, want 3", len(ws.Sizes))
	}
	// Sizes covering the whole frame are not duplicated.
	ws2 := NewWindowSet(640, 480, costmodel.YOLOPerPixel, 1.0, [][2]int{{640, 480}, {700, 500}})
	if len(ws2.Sizes) != 1 {
		t.Errorf("full-frame-sized candidates should be dropped, got %v", ws2.Sizes)
	}
}

func TestGroupEmptyGrid(t *testing.T) {
	ws := testWindowSet()
	g := NewGrid(640, 480)
	if wins := Group(g, ws); wins != nil {
		t.Errorf("empty grid should produce no windows, got %v", wins)
	}
	if EstCost(g, ws) != 0 {
		t.Error("empty grid cost should be 0")
	}
}

func TestGroupSingleCellUsesSmallestWindow(t *testing.T) {
	ws := testWindowSet()
	g := NewGrid(640, 480)
	g.Set(2, 2, true)
	wins := Group(g, ws)
	if len(wins) != 1 {
		t.Fatalf("windows = %v", wins)
	}
	if wins[0].W != 128 || wins[0].H != 96 {
		t.Errorf("window size %vx%v, want smallest (128x96)", wins[0].W, wins[0].H)
	}
}

func TestGroupCoversAllPositiveCells(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := testWindowSet()
		g := NewGrid(640, 480)
		for i := 0; i < rng.Intn(15)+1; i++ {
			g.Set(rng.Intn(g.W), rng.Intn(g.H), true)
		}
		wins := Group(g, ws)
		// Every positive cell must intersect some window (full-frame
		// fallback trivially covers).
		for cy := 0; cy < g.H; cy++ {
			for cx := 0; cx < g.W; cx++ {
				if !g.At(cx, cy) {
					continue
				}
				cell := CellRect(cx, cy).Clip(geom.Rect{W: 640, H: 480})
				covered := false
				for _, w := range wins {
					if w.Intersect(cell).Area() >= cell.Area()*0.5 {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGroupFallsBackToFullFrameWhenDense(t *testing.T) {
	ws := testWindowSet()
	g := NewGrid(640, 480)
	for i := range g.Pos {
		g.Pos[i] = true
	}
	wins := Group(g, ws)
	if len(wins) != 1 || wins[0].W != 640 || wins[0].H != 480 {
		t.Errorf("dense grid should fall back to full frame, got %v", wins)
	}
}

func TestGroupMergesAdjacentClusters(t *testing.T) {
	ws := testWindowSet()
	g := NewGrid(640, 480)
	// Two nearby cells (not connected) that fit a single small window:
	// merging is cheaper than two windows.
	g.Set(2, 2, true)
	g.Set(4, 2, true) // 64px apart, both fit in one 128x96 window
	wins := Group(g, ws)
	if len(wins) != 1 {
		t.Errorf("adjacent clusters should merge into one window, got %v", wins)
	}
}

func TestGroupKeepsDistantClustersSeparate(t *testing.T) {
	ws := testWindowSet()
	g := NewGrid(640, 480)
	g.Set(0, 0, true)
	g.Set(g.W-1, g.H-1, true)
	wins := Group(g, ws)
	if len(wins) != 2 {
		t.Errorf("distant clusters should stay separate, got %v", wins)
	}
	for _, w := range wins {
		if w.W != 128 {
			t.Errorf("expected smallest windows, got %v", w)
		}
	}
}

func TestGroupCostNeverExceedsFullFrame(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := testWindowSet()
		g := NewGrid(640, 480)
		for i := 0; i < rng.Intn(40); i++ {
			g.Set(rng.Intn(g.W), rng.Intn(g.H), true)
		}
		if g.Count() == 0 {
			return true
		}
		return EstCost(g, ws) <= ws.FullFrameCost()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestWindowsStayInsideFrame(t *testing.T) {
	ws := testWindowSet()
	bounds := geom.Rect{W: 640, H: 480}
	g := NewGrid(640, 480)
	g.Set(0, 0, true) // corner cell: window must clamp
	g.Set(g.W-1, 0, true)
	for _, w := range Group(g, ws) {
		if !bounds.ContainsRect(w) {
			t.Errorf("window %v outside frame", w)
		}
	}
}

func TestSelectWindowSizes(t *testing.T) {
	// Frames with small objects clustered top-left.
	var frames [][]geom.Rect
	for i := 0; i < 10; i++ {
		frames = append(frames, []geom.Rect{
			{X: 40, Y: 40, W: 50, H: 30},
			{X: 120, Y: 60, W: 50, H: 30},
		})
	}
	ws := SelectWindowSizes(640, 480, 3, costmodel.YOLOPerPixel, 1.0, frames)
	if len(ws.Sizes) < 2 || len(ws.Sizes) > 3 {
		t.Fatalf("selected %d sizes, want 2-3 (incl. full frame)", len(ws.Sizes))
	}
	// The selected small size must beat the full frame on these scenes.
	total := 0.0
	for _, boxes := range frames {
		total += EstCost(TruthGrid(640, 480, boxes), ws)
	}
	fullOnly := NewWindowSet(640, 480, costmodel.YOLOPerPixel, 1.0, nil)
	totalFull := 0.0
	for _, boxes := range frames {
		totalFull += EstCost(TruthGrid(640, 480, boxes), fullOnly)
	}
	if total >= totalFull {
		t.Errorf("selected sizes (%v) should reduce cost: %v vs %v", ws.Sizes, total, totalFull)
	}
}

func TestSelectWindowSizesRespectsK(t *testing.T) {
	var frames [][]geom.Rect
	for i := 0; i < 6; i++ {
		frames = append(frames, []geom.Rect{{X: float64(40 * i), Y: 40, W: 30, H: 30}})
	}
	for _, k := range []int{1, 2, 3, 4} {
		ws := SelectWindowSizes(640, 480, k, costmodel.YOLOPerPixel, 1.0, frames)
		if len(ws.Sizes) > k {
			t.Errorf("k=%d but %d sizes selected", k, len(ws.Sizes))
		}
	}
}

func TestSelectWindowSizesMonotoneInK(t *testing.T) {
	// More window sizes never increase the expected runtime.
	rng := rand.New(rand.NewSource(5))
	var frames [][]geom.Rect
	for i := 0; i < 12; i++ {
		var boxes []geom.Rect
		for j := 0; j < rng.Intn(4)+1; j++ {
			boxes = append(boxes, geom.Rect{
				X: rng.Float64() * 560, Y: rng.Float64() * 400,
				W: 50, H: 35,
			})
		}
		frames = append(frames, boxes)
	}
	var prev float64
	for i, k := range []int{1, 2, 3, 4} {
		ws := SelectWindowSizes(640, 480, k, costmodel.YOLOPerPixel, 1.0, frames)
		total := 0.0
		for _, boxes := range frames {
			total += EstCost(TruthGrid(640, 480, boxes), ws)
		}
		if i > 0 && total > prev+1e-9 {
			t.Errorf("k=%d cost %v exceeds k-1 cost %v", k, total, prev)
		}
		prev = total
	}
}
