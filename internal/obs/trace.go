package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing records named, parent-linked durations of pipeline stages
// (RunSet, per-clip execution, tuner iterations, ingest clips, HTTP
// requests) into a flight recorder: a fixed-capacity ring of attributed
// spans that overwrites oldest-first, so a long-running daemon always
// holds the most recent window of activity under bounded memory. The
// recorder is cheap enough to leave on permanently — recording a finished
// span writes into a pre-allocated slot under a sharded mutex and
// allocates nothing — and with no recorder installed StartSpan reads no
// clock, allocates nothing, and returns a nil *Span whose End is a no-op.
// Durations come from the monotonic clock and are recorded only; they
// never feed back into pipeline computation.

// DefaultRecorderSpans is the span capacity NewRecorder selects for a
// non-positive request. At ~128 bytes per slot the default ring holds the
// recent history of a busy daemon in a few megabytes.
const DefaultRecorderSpans = 1 << 14

// recorderShards is the number of independently locked ring segments.
// Sequential span ids round-robin across shards, so concurrent workers
// contend on different locks and single-threaded runs still retain
// exactly the newest spans overall.
const recorderShards = 8

// SpanRecord is one finished span. Camera, Clip, Stage, Prec and Err are
// the attribute set every exporter understands: which camera and clip the
// span worked on, which pipeline stage it belongs to ("extract", "tune",
// "ingest", "serve"), which compute backend it ran under, and whether it
// ended in an error (a canceled run, a 5xx response).
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS is the span's start offset from the recorder's installation,
	// DurNS its duration; both in monotonic nanoseconds.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
	// Camera names the stream source for ingest spans ("" when not
	// camera-bound).
	Camera string `json:"camera,omitempty"`
	// Clip is the clip index the span processed; -1 when the span is not
	// clip-scoped.
	Clip  int    `json:"clip"`
	Stage string `json:"stage,omitempty"`
	Prec  string `json:"prec,omitempty"`
	Err   bool   `json:"err,omitempty"`
}

// recorderShard is one independently locked segment of the ring.
type recorderShard struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int    // next write slot
	n     int    // filled slots (≤ len(buf))
	total uint64 // spans ever written through this shard
}

// Recorder is the flight recorder: a fixed-capacity, overwrite-oldest
// ring of finished spans. All methods are safe for concurrent use, and
// every method tolerates a nil receiver (reporting an empty trace), so
// exporters can run unconditionally.
type Recorder struct {
	start  time.Time
	ids    atomic.Uint64
	shards [recorderShards]recorderShard
}

// NewRecorder creates a recorder retaining at most max spans, rounded up
// to a multiple of the shard count (a non-positive max selects
// DefaultRecorderSpans). Memory is allocated up front; recording never
// allocates.
func NewRecorder(max int) *Recorder {
	if max <= 0 {
		max = DefaultRecorderSpans
	}
	per := (max + recorderShards - 1) / recorderShards
	r := &Recorder{start: time.Now()}
	for i := range r.shards {
		r.shards[i].buf = make([]SpanRecord, per)
	}
	return r
}

// Capacity reports how many spans the ring retains before overwriting.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.shards[0].buf) * recorderShards
}

// record writes one finished span into its shard's ring slot, overwriting
// the oldest span of that shard once full. Shard selection by span id
// keeps concurrent workers on different locks.
func (r *Recorder) record(rec SpanRecord) {
	sh := &r.shards[rec.ID%recorderShards]
	sh.mu.Lock()
	sh.buf[sh.next] = rec
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
	}
	if sh.n < len(sh.buf) {
		sh.n++
	}
	sh.total++
	sh.mu.Unlock()
}

// RecorderStats is a point-in-time summary of the ring's occupancy.
type RecorderStats struct {
	// Capacity is the ring size; Retained how many spans it currently
	// holds; Recorded how many spans have ever been recorded; Overwritten
	// how many were evicted oldest-first (Recorded - Retained).
	Capacity    int    `json:"capacity"`
	Retained    int    `json:"retained"`
	Recorded    int64  `json:"recorded"`
	Overwritten int64  `json:"overwritten"`
	// Utilization is Retained / Capacity in [0, 1].
	Utilization float64 `json:"utilization"`
}

// Stats summarizes the ring's occupancy.
func (r *Recorder) Stats() RecorderStats {
	st := RecorderStats{Capacity: r.Capacity()}
	if r == nil {
		return st
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		st.Retained += sh.n
		st.Recorded += int64(sh.total)
		sh.mu.Unlock()
	}
	st.Overwritten = st.Recorded - int64(st.Retained)
	if st.Capacity > 0 {
		st.Utilization = float64(st.Retained) / float64(st.Capacity)
	}
	return st
}

// Snapshot returns a copy of the retained spans ordered by start time
// (ties by id, so a parent precedes its children).
func (r *Recorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	out := make([]SpanRecord, 0, r.Capacity())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.n == len(sh.buf) {
			out = append(out, sh.buf[sh.next:]...)
			out = append(out, sh.buf[:sh.next]...)
		} else {
			out = append(out, sh.buf[:sh.n]...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Subtree returns the retained span with id root plus every retained
// descendant, in start order. Spans whose ancestors were already
// overwritten are simply absent — the subtree is best-effort over the
// ring's current window.
func (r *Recorder) Subtree(root uint64) []SpanRecord {
	if r == nil || root == 0 {
		return nil
	}
	all := r.Snapshot()
	in := map[uint64]bool{root: true}
	out := make([]SpanRecord, 0, 8)
	// Snapshot order sorts parents before children (ids grow with start
	// time along any parent chain), so one forward pass closes the set.
	for _, s := range all {
		if s.ID == root || in[s.Parent] {
			in[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}

// WriteJSON writes the retained spans plus ring statistics as indented
// JSON (the "otif" trace format). A nil recorder writes an empty trace.
func (r *Recorder) WriteJSON(w io.Writer) error {
	out := struct {
		Spans []SpanRecord  `json:"spans"`
		Stats RecorderStats `json:"stats"`
	}{Spans: r.Snapshot(), Stats: r.Stats()}
	if out.Spans == nil {
		out.Spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// globalRecorder is the installed flight recorder; nil means tracing is
// disabled.
var globalRecorder atomic.Pointer[Recorder]

// SetRecorder installs (or with nil, removes) the process-wide flight
// recorder.
func SetRecorder(r *Recorder) { globalRecorder.Store(r) }

// EnableTracing installs a fresh process-wide flight recorder retaining
// at most max spans and returns it.
func EnableTracing(max int) *Recorder {
	r := NewRecorder(max)
	SetRecorder(r)
	return r
}

// CurrentRecorder returns the installed flight recorder, or nil when
// tracing is disabled.
func CurrentRecorder() *Recorder { return globalRecorder.Load() }

func init() {
	// Ring occupancy is always scrapeable: before this group, overwritten
	// span counts were only visible through WriteJSON.
	Default.GaugeGroup(func() map[string]float64 {
		r := CurrentRecorder()
		if r == nil {
			return nil
		}
		st := r.Stats()
		return map[string]float64{
			"trace.capacity":          float64(st.Capacity),
			"trace.spans_retained":    float64(st.Retained),
			"trace.spans_recorded":    float64(st.Recorded),
			"trace.spans_overwritten": float64(st.Overwritten),
			"trace.utilization":       st.Utilization,
		}
	})
}

// spanCtxKey carries the current span id through a context for parent
// linking.
type spanCtxKey struct{}

// Span is one in-flight traced operation. A nil Span (returned when
// tracing is disabled) is valid: every setter and End on it is a no-op.
type Span struct {
	rec    *Recorder
	id     uint64
	parent uint64
	name   string
	begin  time.Time

	camera string
	clip   int
	stage  string
	prec   string
	err    bool
}

// StartSpan begins a span named name under the span carried by ctx (if
// any) and returns a derived context carrying the new span for child
// links. With tracing disabled it returns ctx unchanged and a nil span,
// reading no clock and allocating nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	r := globalRecorder.Load()
	if r == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(uint64)
	s := &Span{rec: r, id: r.ids.Add(1), parent: parent, name: name, begin: time.Now(), clip: -1}
	return context.WithValue(ctx, spanCtxKey{}, s.id), s
}

// ID returns the span's id (0 for a nil span), usable with
// Recorder.Subtree after the span ends.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetCamera attributes the span to a named stream source.
func (s *Span) SetCamera(camera string) *Span {
	if s != nil {
		s.camera = camera
	}
	return s
}

// SetClip attributes the span to a clip index.
func (s *Span) SetClip(clip int) *Span {
	if s != nil {
		s.clip = clip
	}
	return s
}

// SetStage attributes the span to a pipeline stage ("extract", "tune",
// "ingest", "serve").
func (s *Span) SetStage(stage string) *Span {
	if s != nil {
		s.stage = stage
	}
	return s
}

// SetPrec attributes the span to a compute backend ("float64",
// "float32").
func (s *Span) SetPrec(prec string) *Span {
	if s != nil {
		s.prec = prec
	}
	return s
}

// SetErr flags the span as having ended in an error (a canceled run, a
// 5xx response).
func (s *Span) SetErr(err bool) *Span {
	if s != nil {
		s.err = err
	}
	return s
}

// End finishes the span, recording its monotonic duration and attributes
// into the flight recorder. End never allocates.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.record(SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.begin.Sub(s.rec.start).Nanoseconds(),
		DurNS:   time.Since(s.begin).Nanoseconds(),
		Camera:  s.camera,
		Clip:    s.clip,
		Stage:   s.stage,
		Prec:    s.prec,
		Err:     s.err,
	})
}
