package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing records named, parent-linked durations of pipeline stages
// (RunSet, per-clip execution, tuner iterations). Tracing is off by
// default: with no tracer installed, StartSpan reads no clock, allocates
// nothing, and returns a nil *Span whose End is a no-op — so traced call
// sites cost one atomic load on deterministic paths. When a tracer is
// installed, durations come from the monotonic clock and are recorded
// only; they never feed back into pipeline computation.

// SpanRecord is one finished span.
type SpanRecord struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS is the span's start offset from the tracer's installation,
	// DurNS its duration; both in monotonic nanoseconds.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// Tracer collects spans up to a fixed capacity (further spans are
// counted but dropped, keeping memory bounded on long runs).
type Tracer struct {
	start   time.Time
	max     int
	ids     atomic.Uint64
	dropped atomic.Int64

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer creates a tracer retaining at most max spans (a non-positive
// max keeps a generous default).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 1 << 16
	}
	return &Tracer{start: time.Now(), max: max}
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Dropped reports how many spans were discarded over capacity.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// WriteJSON writes the recorded spans as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	out := struct {
		Spans   []SpanRecord `json:"spans"`
		Dropped int64        `json:"dropped"`
	}{Spans: t.Spans(), Dropped: t.Dropped()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// globalTracer is the installed tracer; nil means tracing is disabled.
var globalTracer atomic.Pointer[Tracer]

// SetTracer installs (or with nil, removes) the process-wide tracer.
func SetTracer(t *Tracer) { globalTracer.Store(t) }

// EnableTracing installs a fresh process-wide tracer retaining at most
// max spans and returns it.
func EnableTracing(max int) *Tracer {
	t := NewTracer(max)
	SetTracer(t)
	return t
}

// CurrentTracer returns the installed tracer, or nil when tracing is
// disabled.
func CurrentTracer() *Tracer { return globalTracer.Load() }

// spanCtxKey carries the current span id through a context for parent
// linking.
type spanCtxKey struct{}

// Span is one in-flight traced operation. A nil Span (returned when
// tracing is disabled) is valid and End on it is a no-op.
type Span struct {
	tracer *Tracer
	id     uint64
	parent uint64
	name   string
	begin  time.Time
}

// StartSpan begins a span named name under the span carried by ctx (if
// any) and returns a derived context carrying the new span for child
// links. With tracing disabled it returns ctx unchanged and a nil span,
// reading no clock and allocating nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := globalTracer.Load()
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanCtxKey{}).(uint64)
	s := &Span{tracer: t, id: t.ids.Add(1), parent: parent, name: name, begin: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s.id), s
}

// End finishes the span, recording its monotonic duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.begin.Sub(t.start).Nanoseconds(),
		DurNS:   time.Since(s.begin).Nanoseconds(),
	}
	t.mu.Lock()
	if len(t.spans) < t.max {
		t.spans = append(t.spans, rec)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.dropped.Add(1)
}
