package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestStartSpanDisabled(t *testing.T) {
	SetTracer(nil)
	ctx := context.Background()
	got, sp := StartSpan(ctx, "noop")
	if got != ctx {
		t.Error("disabled StartSpan must return the context unchanged")
	}
	if sp != nil {
		t.Error("disabled StartSpan must return a nil span")
	}
	sp.End() // must not panic
}

func TestSpanParentLinks(t *testing.T) {
	tr := EnableTracing(16)
	defer SetTracer(nil)

	ctx, outer := StartSpan(context.Background(), "runset")
	cctx, inner := StartSpan(ctx, "clip")
	_ = cctx
	inner.End()
	outer.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Completion order: inner first.
	if spans[0].Name != "clip" || spans[1].Name != "runset" {
		t.Fatalf("span names = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("clip parent = %d, want runset id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != 0 {
		t.Errorf("root span parent = %d, want 0", spans[1].Parent)
	}
	if spans[0].DurNS < 0 || spans[1].DurNS < spans[0].DurNS {
		t.Errorf("durations not monotonic: %d, %d", spans[0].DurNS, spans[1].DurNS)
	}
}

func TestTracerCapacity(t *testing.T) {
	tr := EnableTracing(2)
	defer SetTracer(nil)
	for i := 0; i < 5; i++ {
		_, sp := StartSpan(context.Background(), "s")
		sp.End()
	}
	if got := len(tr.Spans()); got != 2 {
		t.Errorf("retained %d spans, want 2", got)
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestTraceJSON(t *testing.T) {
	tr := EnableTracing(8)
	defer SetTracer(nil)
	_, sp := StartSpan(context.Background(), "one")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Spans   []SpanRecord `json:"spans"`
		Dropped int64        `json:"dropped"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 1 || out.Spans[0].Name != "one" {
		t.Errorf("trace JSON = %+v", out)
	}
}

func TestProgressEmit(t *testing.T) {
	var got []Event
	var p Progress = func(e Event) { got = append(got, e) }
	p.Emit(Event{Kind: EventClip, Index: 1})
	var nilP Progress
	nilP.Emit(Event{Kind: EventClip}) // must not panic
	if len(got) != 1 || got[0].Kind != EventClip {
		t.Errorf("events = %+v", got)
	}
}
