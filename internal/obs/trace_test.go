package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestStartSpanDisabled(t *testing.T) {
	SetRecorder(nil)
	ctx := context.Background()
	got, sp := StartSpan(ctx, "noop")
	if got != ctx {
		t.Error("disabled StartSpan must return the context unchanged")
	}
	if sp != nil {
		t.Error("disabled StartSpan must return a nil span")
	}
	// Every operation on a nil span must be a no-op, not a panic.
	sp.SetCamera("cam0").SetClip(1).SetStage("extract").SetPrec("float64").SetErr(true)
	if sp.ID() != 0 {
		t.Error("nil span must report id 0")
	}
	sp.End()
}

func TestSpanParentLinks(t *testing.T) {
	tr := EnableTracing(16)
	defer SetRecorder(nil)

	ctx, outer := StartSpan(context.Background(), "runset")
	cctx, inner := StartSpan(ctx, "clip")
	_ = cctx
	inner.End()
	outer.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	// Snapshot order: by start time, outer first.
	if spans[0].Name != "runset" || spans[1].Name != "clip" {
		t.Fatalf("span names = %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[1].Parent != spans[0].ID {
		t.Errorf("clip parent = %d, want runset id %d", spans[1].Parent, spans[0].ID)
	}
	if spans[0].Parent != 0 {
		t.Errorf("root span parent = %d, want 0", spans[0].Parent)
	}
	if spans[1].DurNS < 0 || spans[0].DurNS < spans[1].DurNS {
		t.Errorf("durations not monotonic: %d, %d", spans[0].DurNS, spans[1].DurNS)
	}
}

func TestSpanAttributes(t *testing.T) {
	tr := EnableTracing(16)
	defer SetRecorder(nil)

	_, sp := StartSpan(context.Background(), "ingest.clip")
	sp.SetCamera("cam3").SetClip(7).SetStage("ingest").SetPrec("float32").SetErr(true)
	sp.End()
	_, plain := StartSpan(context.Background(), "plain")
	plain.End()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	got := spans[0]
	if got.Camera != "cam3" || got.Clip != 7 || got.Stage != "ingest" || got.Prec != "float32" || !got.Err {
		t.Errorf("attributed span = %+v", got)
	}
	if p := spans[1]; p.Camera != "" || p.Clip != -1 || p.Stage != "" || p.Prec != "" || p.Err {
		t.Errorf("unattributed span carries attrs: %+v", p)
	}
}

// TestRecorderOverwritesOldest pins the flight-recorder contract that
// replaced the old capacity-capped tracer: when the ring is full the
// OLDEST spans are overwritten, so a long run always retains the most
// recent window (the old tracer kept startup spans and silently dropped
// everything new).
func TestRecorderOverwritesOldest(t *testing.T) {
	tr := EnableTracing(8)
	defer SetRecorder(nil)
	if tr.Capacity() != 8 {
		t.Fatalf("capacity = %d, want 8", tr.Capacity())
	}
	for i := 0; i < 20; i++ {
		_, sp := StartSpan(context.Background(), "s")
		sp.SetClip(i)
		sp.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("retained %d spans, want 8", len(spans))
	}
	for i, s := range spans {
		if want := 12 + i; s.Clip != want {
			t.Errorf("retained[%d].Clip = %d, want %d (newest spans must survive)", i, s.Clip, want)
		}
	}
	st := tr.Stats()
	if st.Recorded != 20 || st.Retained != 8 || st.Overwritten != 12 {
		t.Errorf("stats = %+v, want recorded 20, retained 8, overwritten 12", st)
	}
	if st.Utilization != 1 {
		t.Errorf("utilization = %v, want 1", st.Utilization)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	if r.Capacity() != 0 || r.Snapshot() != nil || len(r.Subtree(1)) != 0 {
		t.Error("nil recorder must report an empty trace")
	}
	if st := r.Stats(); st.Recorded != 0 || st.Retained != 0 {
		t.Errorf("nil recorder stats = %+v", st)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatalf("nil recorder chrome trace invalid: %v", err)
	}
}

func TestTraceJSON(t *testing.T) {
	tr := EnableTracing(8)
	defer SetRecorder(nil)
	_, sp := StartSpan(context.Background(), "one")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Spans []SpanRecord  `json:"spans"`
		Stats RecorderStats `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 1 || out.Spans[0].Name != "one" {
		t.Errorf("trace JSON = %+v", out)
	}
	if out.Stats.Recorded != 1 || out.Stats.Capacity != 8 {
		t.Errorf("trace stats = %+v", out.Stats)
	}
}

func TestChromeExport(t *testing.T) {
	tr := EnableTracing(64)
	defer SetRecorder(nil)

	ctx, set := StartSpan(context.Background(), "run.set")
	_, clip := StartSpan(ctx, "run.clip")
	clip.SetClip(0).SetPrec("float64")
	clip.End()
	set.End()
	_, cam := StartSpan(context.Background(), "ingest.clip")
	cam.SetCamera("cam0").SetClip(1)
	cam.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var complete, meta int
	byName := map[string]int{}
	for i, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			byName[e.Name] = i
			if e.PID != 1 || e.TID < 1 {
				t.Errorf("event %q has pid=%d tid=%d", e.Name, e.PID, e.TID)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if complete != 3 {
		t.Fatalf("chrome trace has %d complete events, want 3", complete)
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Errorf("chrome trace has %d metadata events, want >= 2", meta)
	}
	set2, clip2 := out.TraceEvents[byName["run.set"]], out.TraceEvents[byName["run.clip"]]
	if clip2.Args["parent"] != set2.Args["id"] {
		t.Errorf("run.clip parent arg %v != run.set id %v", clip2.Args["parent"], set2.Args["id"])
	}
	if clip2.TID != set2.TID {
		t.Errorf("nested spans on different lanes: clip tid %d, set tid %d", clip2.TID, set2.TID)
	}
	if clip2.TS < set2.TS || clip2.TS+clip2.Dur > set2.TS+set2.Dur+1e-6 {
		t.Errorf("child [%v, %v] not inside parent [%v, %v]",
			clip2.TS, clip2.TS+clip2.Dur, set2.TS, set2.TS+set2.Dur)
	}
	camEv := out.TraceEvents[byName["ingest.clip"]]
	if camEv.Args["camera"] != "cam0" {
		t.Errorf("camera arg = %v", camEv.Args["camera"])
	}
	if camEv.TID == set2.TID {
		t.Error("camera span must get its own lane")
	}
}

func TestSubtree(t *testing.T) {
	tr := EnableTracing(64)
	defer SetRecorder(nil)

	ctx, root := StartSpan(context.Background(), "http.query")
	cctx, child := StartSpan(ctx, "store.count")
	_, grand := StartSpan(cctx, "store.scan")
	grand.End()
	child.End()
	root.End()
	_, other := StartSpan(context.Background(), "unrelated")
	other.End()

	sub := tr.Subtree(root.ID())
	if len(sub) != 3 {
		t.Fatalf("subtree has %d spans, want 3: %+v", len(sub), sub)
	}
	if sub[0].Name != "http.query" || sub[1].Name != "store.count" || sub[2].Name != "store.scan" {
		t.Errorf("subtree order = %q %q %q", sub[0].Name, sub[1].Name, sub[2].Name)
	}
}

// TestTraceGauges asserts the satellite contract: ring occupancy and
// overwritten-span counts are visible as trace.* gauges in any registry
// snapshot, not only via WriteJSON.
func TestTraceGauges(t *testing.T) {
	EnableTracing(8)
	defer SetRecorder(nil)
	for i := 0; i < 12; i++ {
		_, sp := StartSpan(context.Background(), "g")
		sp.End()
	}
	g := Default.Snapshot().Gauges
	if g["trace.capacity"] != 8 {
		t.Errorf("trace.capacity = %v, want 8", g["trace.capacity"])
	}
	if g["trace.spans_recorded"] != 12 {
		t.Errorf("trace.spans_recorded = %v, want 12", g["trace.spans_recorded"])
	}
	if g["trace.spans_overwritten"] != 4 {
		t.Errorf("trace.spans_overwritten = %v, want 4", g["trace.spans_overwritten"])
	}
	if g["trace.utilization"] != 1 {
		t.Errorf("trace.utilization = %v, want 1", g["trace.utilization"])
	}

	SetRecorder(nil)
	g = Default.Snapshot().Gauges
	if _, ok := g["trace.capacity"]; ok {
		t.Error("trace gauges must disappear when the recorder is removed")
	}
}

func TestProgressEmit(t *testing.T) {
	var got []Event
	var p Progress = func(e Event) { got = append(got, e) }
	p.Emit(Event{Kind: EventClip, Index: 1})
	var nilP Progress
	nilP.Emit(Event{Kind: EventClip}) // must not panic
	if len(got) != 1 || got[0].Kind != EventClip {
		t.Errorf("events = %+v", got)
	}
}
