package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndCost(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Error("re-registering a counter must return the same handle")
	}
	f := r.Cost("a.cost")
	f.Add(1.5)
	f.Add(0.25)
	if got := f.Value(); got != 1.75 {
		t.Errorf("cost = %v, want 1.75", got)
	}
	g := r.Gauge("a.gauge")
	g.Set(3)
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %v, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 2, 50, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	// 0.5 and 1 land in <=1; 2 in <=10; 50 in <=100; 1000 overflows.
	want := []int64{2, 1, 1, 1}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Errorf("bucket counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1053.5 {
		t.Errorf("sum = %v, want 1053.5", s.Sum)
	}
}

func TestResetKeepsHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	f := r.Cost("y")
	h := r.Histogram("z", 1)
	c.Inc()
	f.Add(2)
	h.Observe(0.5)
	r.Reset()
	s := r.Snapshot()
	if s.Counters["x"] != 0 || s.Costs["y"] != 0 || s.Histograms["z"].Count != 0 {
		t.Errorf("reset left non-zero state: %+v", s)
	}
	// The old handles must still record into the registry.
	c.Inc()
	if r.Snapshot().Counters["x"] != 1 {
		t.Error("handle detached from registry after Reset")
	}
}

func TestSetEnabledStopsRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gated")
	SetEnabled(false)
	c.Inc()
	SetEnabled(true)
	if c.Value() != 0 {
		t.Error("disabled counter recorded")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Error("re-enabled counter did not record")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	live := 1.25
	r.GaugeFunc("live", func() float64 { return live })
	if got := r.Snapshot().Gauges["live"]; got != 1.25 {
		t.Errorf("live gauge = %v", got)
	}
	live = 2.5
	if got := r.Snapshot().Gauges["live"]; got != 2.5 {
		t.Errorf("live gauge after update = %v", got)
	}
}

func TestGaugeGroup(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.GaugeGroup(func() map[string]float64 {
		calls++
		// All values derive from one read of `calls`, so a snapshot always
		// sees a mutually consistent pair.
		return map[string]float64{
			"grp.count":   float64(calls),
			"grp.doubled": float64(2 * calls),
		}
	})
	s := r.Snapshot()
	if calls != 1 {
		t.Errorf("group evaluated %d times per snapshot, want 1", calls)
	}
	if s.Gauges["grp.count"] != 1 || s.Gauges["grp.doubled"] != 2 {
		t.Errorf("group gauges = %v, %v, want 1, 2", s.Gauges["grp.count"], s.Gauges["grp.doubled"])
	}
	s = r.Snapshot()
	if s.Gauges["grp.count"] != 2 || s.Gauges["grp.doubled"] != 4 {
		t.Errorf("second snapshot group gauges = %v, %v, want 2, 4", s.Gauges["grp.count"], s.Gauges["grp.doubled"])
	}
}

func TestConcurrentCountersCommute(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if got := r.Snapshot().Histograms["h"].Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestCostTotalSortedFold(t *testing.T) {
	s := MetricsSnapshot{Costs: map[string]float64{"b": 0.2, "a": 0.1, "c": 0.3}}
	// Sorted fold: ((0.1 + 0.2) + 0.3), in float64 runtime arithmetic.
	vals := []float64{0.1, 0.2, 0.3}
	var want float64
	for _, v := range vals {
		want += v
	}
	if got := s.CostTotal(); got != want {
		t.Errorf("CostTotal = %v, want %v", got, want)
	}
}

func TestExporters(t *testing.T) {
	r := NewRegistry()
	r.Counter("n").Add(3)
	r.Cost("cost.detect").Add(1.5)
	r.Gauge("g").Set(0.5)
	r.Histogram("h", 1, 2).Observe(1.5)
	s := r.Snapshot()

	var txt bytes.Buffer
	if err := s.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cost.detect", "n", "g", "h"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text export missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if !reflect.DeepEqual(back, s) {
		t.Errorf("JSON round-trip mismatch:\n got %+v\nwant %+v", back, s)
	}
}
