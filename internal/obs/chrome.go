package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the flight recorder's spans rendered as the
// JSON object format Perfetto and chrome://tracing load directly. Every
// span becomes one complete ("X") event; spans are packed onto virtual
// threads (lanes) so that spans sharing a lane always nest properly —
// camera-attributed spans get one lane group per camera, everything else
// is interval-colored into "worker" lanes that approximate the pool's
// concurrency.

// chromeEvent is one trace-event JSON object. Timestamps and durations
// are in microseconds per the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeLane is one virtual thread being packed: a stack of open span
// intervals (end timestamps), innermost last.
type chromeLane struct {
	key  string // camera name, or "" for the shared worker group
	open []int64
}

// fits reports whether a span starting at start and ending at end can be
// placed on the lane without breaking nesting: after closing every
// interval that ended before the span starts, the innermost open interval
// (if any) must fully contain it.
func (l *chromeLane) fits(start, end int64) bool {
	i := len(l.open)
	for i > 0 && l.open[i-1] <= start {
		i--
	}
	return i == 0 || l.open[i-1] >= end
}

// place pushes the span onto the lane's stack.
func (l *chromeLane) place(start, end int64) {
	i := len(l.open)
	for i > 0 && l.open[i-1] <= start {
		i--
	}
	l.open = append(l.open[:i], end)
}

// WriteChrome writes the retained spans in Chrome trace-event JSON (the
// {"traceEvents": [...]} object form). The output loads in Perfetto and
// chrome://tracing; span attributes ride along in each event's args. A
// nil recorder writes an empty (but valid) trace.
func (r *Recorder) WriteChrome(w io.Writer) error {
	spans := r.Snapshot()
	byID := make(map[uint64]int, len(spans))
	for i, s := range spans {
		byID[s.ID] = i
	}
	// laneOf maps span id -> lane index. A span prefers its parent's lane
	// (stack nesting); otherwise the first lane of its camera group that
	// fits; otherwise a fresh lane. Spans arrive in start order, which the
	// packing relies on.
	lanes := []*chromeLane{}
	laneOf := make(map[uint64]int, len(spans))
	for _, s := range spans {
		start, end := s.StartNS, s.StartNS+s.DurNS
		key := s.Camera
		if key == "" {
			// Inherit the camera group from the nearest retained ancestor
			// so children of an ingest clip stay on its camera lane.
			for p := s.Parent; p != 0; {
				pi, ok := byID[p]
				if !ok {
					break
				}
				if spans[pi].Camera != "" {
					key = spans[pi].Camera
					break
				}
				p = spans[pi].Parent
			}
		}
		lane := -1
		if pi, ok := laneOf[s.Parent]; ok && lanes[pi].fits(start, end) {
			lane = pi
		} else {
			for i, l := range lanes {
				if l.key == key && l.fits(start, end) {
					lane = i
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, &chromeLane{key: key})
			lane = len(lanes) - 1
		}
		lanes[lane].place(start, end)
		laneOf[s.ID] = lane
	}

	// Stable tids: camera lanes first (sorted by camera name), then the
	// shared worker lanes, in creation order within each group.
	order := make([]int, len(lanes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := lanes[order[a]].key, lanes[order[b]].key
		if (ka == "") != (kb == "") {
			return ka != "" // camera lanes first
		}
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	tidOf := make([]int, len(lanes))
	events := make([]chromeEvent, 0, len(spans)+len(lanes)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "otif"},
	})
	for rank, li := range order {
		tid := rank + 1
		tidOf[li] = tid
		name := lanes[li].key
		if name == "" {
			name = fmt.Sprintf("worker %d", tid)
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range spans {
		args := map[string]any{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Camera != "" {
			args["camera"] = s.Camera
		}
		if s.Clip >= 0 {
			args["clip"] = s.Clip
		}
		if s.Stage != "" {
			args["stage"] = s.Stage
		}
		if s.Prec != "" {
			args["prec"] = s.Prec
		}
		if s.Err {
			args["err"] = true
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: "otif", Ph: "X",
			TS: float64(s.StartNS) / 1e3, Dur: float64(s.DurNS) / 1e3,
			PID: 1, TID: tidOf[laneOf[s.ID]], Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events})
}
