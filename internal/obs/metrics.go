package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates all metric recording. Disabling lets the determinism
// tests prove instrumentation never perturbs results; reads are a single
// atomic load on the hot path.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric recording on or off process-wide. Handles stay
// registered and readable either way; recording calls become no-ops when
// disabled. Pipeline results are bit-for-bit identical in both states.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric recording is active.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing integer metric. Increments
// commute, so counter values are identical at any worker count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// FloatCounter accumulates a float64 total (simulated seconds of cost)
// with a lock-free compare-and-swap add. Callers that need bit-for-bit
// reproducible totals must serialize their adds in a fixed order, which
// the pipeline does by charging per-stage costs once per RunSet in sorted
// category order after the deterministic clip-order merge.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates v into the counter.
func (f *FloatCounter) Add(v float64) {
	if f == nil || !enabled.Load() {
		return
	}
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (f *FloatCounter) Value() float64 {
	if f == nil {
		return 0
	}
	return math.Float64frombits(f.bits.Load())
}

func (f *FloatCounter) reset() { f.bits.Store(0) }

// Gauge holds one instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accumulates delta into the gauge with a lock-free compare-and-swap
// (for up/down values like in-flight request counts).
func (g *Gauge) Add(delta float64) {
	if g == nil || !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram counts observations into fixed buckets chosen at registration
// time. Bucket increments commute, so histogram snapshots are identical
// at any worker count. Observations never allocate.
type Histogram struct {
	bounds []float64 // sorted upper bounds; counts has len(bounds)+1 slots
	counts []atomic.Int64
	count  atomic.Int64
	sum    FloatCounter
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.reset()
}

// HistogramSnapshot is the serializable state of one histogram. Counts
// has one slot per bucket bound plus a final overflow slot.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// MetricsSnapshot is a point-in-time, JSON-serializable copy of a
// registry's metrics. Map keys serialize in sorted order, so equal
// snapshots produce byte-identical JSON.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Costs      map[string]float64           `json:"costs,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// CostTotal sums the per-stage cost counters in sorted key order —
// the same fold order the cost accountant uses — so a snapshot taken
// after one RunSet reproduces the run's simulated runtime bit-for-bit.
func (s MetricsSnapshot) CostTotal() float64 {
	keys := make([]string, 0, len(s.Costs))
	for k := range s.Costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += s.Costs[k]
	}
	return total
}

// WriteJSON writes the snapshot as indented JSON.
func (s MetricsSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as aligned, sorted text lines.
func (s MetricsSnapshot) WriteText(w io.Writer) error {
	var keys []string
	for k := range s.Costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%-32s %14.6fs\n", k, s.Costs[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%-32s %15d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%-32s %15.4f\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}
	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := s.Histograms[k]
		if _, err := fmt.Fprintf(w, "%-32s n=%d sum=%.4f buckets=%v counts=%v\n",
			k, h.Count, h.Sum, h.Bounds, h.Counts); err != nil {
			return err
		}
	}
	return nil
}

// Registry holds named metrics. Registration (Counter, Cost, Gauge,
// Histogram, GaugeFunc) is get-or-create under a mutex and intended to
// run once per metric at package init; the returned handles record
// lock-free. The zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	costs       map[string]*FloatCounter
	gauges      map[string]*Gauge
	gaugeFns    map[string]func() float64
	gaugeGroups []func() map[string]float64
	hists       map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		costs:    map[string]*FloatCounter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Cost returns the named float cost counter, creating it on first use.
func (r *Registry) Cost(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.costs[name]
	if !ok {
		f = &FloatCounter{}
		r.costs[name] = f
	}
	return f
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a live gauge evaluated at snapshot time (for
// values owned elsewhere, like the frame cache's counters). The function
// must be safe to call at any time from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = fn
}

// GaugeGroup registers a set of live gauges computed together: at snapshot
// time fn runs once and every (name, value) pair it returns becomes a
// gauge. Use it when several gauges derive from one state snapshot and
// must be mutually consistent — e.g. the frame cache's hit count, miss
// count and hit rate, where evaluating three independent GaugeFuncs would
// interleave with concurrent updates and could report a rate computed
// from counts no single moment ever had. fn must be safe to call at any
// time from any goroutine.
func (r *Registry) GaugeGroup(fn func() map[string]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeGroups = append(r.gaugeGroups, fn)
}

// Histogram returns the named histogram, creating it with the given
// sorted bucket upper bounds on first use (bounds of an existing
// histogram are kept).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Snapshot copies the registry's current state. Live gauge functions are
// evaluated during the call.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := MetricsSnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Costs:      make(map[string]float64, len(r.costs)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFns)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, f := range r.costs {
		s.Costs[k] = f.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range r.gaugeFns {
		s.Gauges[k] = fn()
	}
	for _, fn := range r.gaugeGroups {
		for k, v := range fn() {
			s.Gauges[k] = v
		}
	}
	for k, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.count.Load(),
			Sum:    h.sum.Value(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[k] = hs
	}
	return s
}

// Reset zeroes every registered metric while keeping all handles valid
// (pre-registered package-level handles keep recording into the same
// registry entries). Live gauge functions are unaffected: they reflect
// the state they observe.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, f := range r.costs {
		f.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}
