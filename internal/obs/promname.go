package obs

import "strings"

// Prometheus metric-name hygiene. The registry's internal names use
// dotted stage paths ("run.clips", "cost.decode", "cache.hit_rate") that
// are invalid Prometheus identifiers; the exposition layer normalizes
// them at export time so the internal naming scheme — which the JSON and
// text snapshots keep verbatim — never leaks invalid series names.

// PromName converts a registry metric name into a valid Prometheus
// identifier: every character outside [a-zA-Z0-9_:] (dots, slashes,
// dashes, spaces, ...) becomes an underscore, and a leading digit is
// prefixed with an underscore. The result always satisfies
// ValidPromName; an empty input yields "_".
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ValidPromName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		valid := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !valid {
			return false
		}
	}
	return true
}
