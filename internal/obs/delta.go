package obs

import "math"

// Delta and quantile helpers over snapshots. A scraper that polls
// Registry.Snapshot can turn two absolute snapshots into a per-interval
// rate view with Delta, and summarize a histogram with Quantile; neither
// touches the live registry.

// Delta returns the change from prev to s: counters, costs and histogram
// contents are subtracted pairwise, gauges keep their current
// (instantaneous) value. A counter whose previous value exceeds its
// current one was reset between the snapshots; its delta is the current
// value, the standard rate-after-reset convention. Histograms whose
// bucket bounds changed between snapshots (re-registration) are likewise
// taken at their current value. Metrics present only in prev are
// dropped; metrics present only in s appear with their full value.
func (s MetricsSnapshot) Delta(prev MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Costs:      make(map[string]float64, len(s.Costs)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		if p, ok := prev.Counters[k]; ok && p <= v {
			v -= p
		}
		out.Counters[k] = v
	}
	for k, v := range s.Costs {
		if p, ok := prev.Costs[k]; ok && p <= v {
			v -= p
		}
		out.Costs[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, h := range s.Histograms {
		out.Histograms[k] = h.delta(prev.Histograms[k])
	}
	return out
}

// delta subtracts prev from h bucket-wise, falling back to h unchanged
// when the bucket layouts differ or any count went backwards (a reset).
func (h HistogramSnapshot) delta(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Bounds) != len(h.Bounds) || len(prev.Counts) != len(h.Counts) {
		return h.clone()
	}
	for i, b := range h.Bounds {
		if prev.Bounds[i] != b {
			return h.clone()
		}
	}
	if prev.Count > h.Count {
		return h.clone()
	}
	out := h.clone()
	for i := range out.Counts {
		if prev.Counts[i] > out.Counts[i] {
			return h.clone()
		}
		out.Counts[i] -= prev.Counts[i]
	}
	out.Count -= prev.Count
	out.Sum -= prev.Sum
	return out
}

func (h HistogramSnapshot) clone() HistogramSnapshot {
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
		Count:  h.Count,
		Sum:    h.Sum,
	}
}

// Quantile estimates the q-quantile (q in [0, 1]) of the observations by
// linear interpolation inside the bucket holding the target rank,
// assuming the first bucket spans [0, bounds[0]]. Observations that
// landed in the overflow bucket are reported as the largest bound (the
// estimate cannot exceed what the layout resolves). It returns NaN for q
// outside [0, 1], an empty histogram, or a histogram registered with no
// bounds.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if q < 0 || q > 1 || h.Count == 0 || len(h.Bounds) == 0 {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) {
			// Overflow bucket: the true value is above every bound.
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Quantile estimates the q-quantile of the live histogram's current
// contents; see HistogramSnapshot.Quantile.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	hs := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Value(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs.Quantile(q)
}
