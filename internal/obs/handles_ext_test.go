package obs_test

import (
	"testing"

	// Importing the root package transitively registers every
	// pre-registered metric handle in the pipeline (core, tuner, detect,
	// track, proxy, video/cache) into obs.Default.
	_ "otif"
	"otif/internal/obs"
)

// Every pre-registered handle must normalize to a valid, unique
// Prometheus identifier — the exposition layer exports all of them, so a
// collision would silently merge two series.
func TestAllRegisteredHandlesNormalizeValidAndUnique(t *testing.T) {
	snap := obs.Default.Snapshot()
	var names []string
	for k := range snap.Counters {
		names = append(names, k)
	}
	for k := range snap.Costs {
		names = append(names, k)
	}
	for k := range snap.Gauges {
		names = append(names, k)
	}
	for k := range snap.Histograms {
		names = append(names, k)
	}
	if len(names) < 10 {
		t.Fatalf("expected the pipeline to pre-register at least 10 handles, got %d: %v", len(names), names)
	}
	seen := map[string]string{}
	for _, n := range names {
		p := obs.PromName(n)
		if !obs.ValidPromName(p) {
			t.Errorf("handle %q normalizes to invalid Prometheus name %q", n, p)
		}
		if prev, dup := seen[p]; dup {
			t.Errorf("handles %q and %q collide after normalization (%q)", prev, n, p)
		}
		seen[p] = n
	}
	// Spot-check the known stage families are present and normalized.
	for _, want := range []string{"run.clips", "detect.invocations", "tune.iterations", "video.frames_decoded"} {
		if _, ok := snap.Counters[want]; !ok {
			t.Errorf("expected pre-registered counter %q", want)
		}
	}
}
