package obs

import (
	"context"
	"testing"
)

// TestRecordingZeroAlloc is the alloc regression gate for the
// instrumented frame path: every recording operation the pipeline calls
// per frame — counter increments, cost adds, gauge sets, histogram
// observations, a disabled StartSpan, and a nil progress emit — must
// allocate nothing. CI fails if any of these report > 0 allocs/op.
func TestRecordingZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.counter")
	f := r.Cost("alloc.cost")
	g := r.Gauge("alloc.gauge")
	h := r.Histogram("alloc.hist", 1, 10, 100)
	SetTracer(nil)
	ctx := context.Background()
	var nilProgress Progress

	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		f.Add(0.125)
		g.Set(1)
		h.Observe(12)
		_, sp := StartSpan(ctx, "detect.window")
		sp.End()
		nilProgress.Emit(Event{Kind: EventClip})
	}); allocs != 0 {
		t.Fatalf("instrumented hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestDisabledRecordingZeroAlloc asserts the disabled gate is also
// allocation-free (metrics-off runs pay only atomic loads).
func TestDisabledRecordingZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.disabled")
	h := r.Histogram("alloc.disabled.hist", 1)
	SetEnabled(false)
	defer SetEnabled(true)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(2)
	}); allocs != 0 {
		t.Fatalf("disabled hot path allocates %.1f allocs/op, want 0", allocs)
	}
}
