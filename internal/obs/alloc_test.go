package obs

import (
	"context"
	"testing"
)

// TestRecordingZeroAlloc is the alloc regression gate for the
// instrumented frame path: every recording operation the pipeline calls
// per frame — counter increments, cost adds, gauge sets, histogram
// observations, a disabled StartSpan, and a nil progress emit — must
// allocate nothing. CI fails if any of these report > 0 allocs/op.
func TestRecordingZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.counter")
	f := r.Cost("alloc.cost")
	g := r.Gauge("alloc.gauge")
	h := r.Histogram("alloc.hist", 1, 10, 100)
	SetRecorder(nil)
	ctx := context.Background()
	var nilProgress Progress

	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		f.Add(0.125)
		g.Set(1)
		h.Observe(12)
		_, sp := StartSpan(ctx, "detect.window")
		sp.End()
		nilProgress.Emit(Event{Kind: EventClip})
	}); allocs != 0 {
		t.Fatalf("instrumented hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSpanRecordingAllocGate is the alloc ceiling for the flight
// recorder's hot path, pinned so the recorder can stay always-on in
// otifd. Ending a span (the ring write) must not allocate at all; the
// whole start-attribute-end cycle is allowed only the fixed context
// plumbing of StartSpan (the span, the derived context, and the boxed
// parent id — 3 allocations), with one slot of headroom.
func TestSpanRecordingAllocGate(t *testing.T) {
	EnableTracing(1 << 10)
	defer SetRecorder(nil)
	ctx := context.Background()

	if allocs := testing.AllocsPerRun(1000, func() {
		_, sp := StartSpan(ctx, "run.clip")
		sp.SetCamera("cam0").SetClip(3).SetStage("extract").SetPrec("float64").SetErr(false)
		sp.End()
	}); allocs > 4 {
		t.Fatalf("span record with recorder enabled allocates %.1f allocs/op, want <= 4", allocs)
	}

	// The End path alone — what the ring write itself costs — must be
	// allocation-free: a pre-started span recycled across iterations ends
	// with zero allocations.
	_, sp := StartSpan(ctx, "run.clip")
	if allocs := testing.AllocsPerRun(1000, func() {
		sp.End()
	}); allocs != 0 {
		t.Fatalf("Span.End allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestDisabledRecordingZeroAlloc asserts the disabled gate is also
// allocation-free (metrics-off runs pay only atomic loads).
func TestDisabledRecordingZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc.disabled")
	h := r.Histogram("alloc.disabled.hist", 1)
	SetEnabled(false)
	defer SetEnabled(true)
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(2)
	}); allocs != 0 {
		t.Fatalf("disabled hot path allocates %.1f allocs/op, want 0", allocs)
	}
}
