package obs

import (
	"log/slog"
	"sync/atomic"
)

// Structured logging hook. The pipeline logs only at coarse boundaries
// (a RunSet finishing, a tuner iteration choosing a candidate, a job
// changing state) — never per frame — and only when a logger has been
// installed. The default is no logger at all: call sites guard with
// `if l := obs.Log(); l != nil`, so the disabled path is a single atomic
// load with zero allocation and deterministic benchmarks stay quiet.

var globalLogger atomic.Pointer[slog.Logger]

// SetLogger installs (or with nil, removes) the process-wide structured
// logger used by pipeline boundary events.
func SetLogger(l *slog.Logger) { globalLogger.Store(l) }

// Log returns the installed logger, or nil when logging is disabled.
// Callers must nil-check; the nil default keeps logging strictly opt-in.
func Log() *slog.Logger { return globalLogger.Load() }
