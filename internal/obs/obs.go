// Package obs is OTIF's dependency-free observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket histograms, a
// flight-recorder span tracer (a fixed-capacity ring of attributed spans
// that overwrites oldest-first), and a structured progress-event
// callback.
//
// The package is built around three constraints set by the pipeline it
// instruments:
//
//   - Zero allocation on the hot path. Metric handles are pre-registered
//     package-level variables (registration does one locked map lookup,
//     recording does none), and every recording operation — Counter.Inc,
//     FloatCounter.Add, Gauge.Set, Histogram.Observe, a disabled
//     StartSpan, a nil Progress emit — performs no heap allocation. The
//     alloc regression tests in this package assert exactly that.
//
//   - No perturbation of results. Instrumentation only observes: nothing
//     in this package feeds back into pipeline computation, so extraction
//     results, simulated runtimes and tuning curves are bit-for-bit
//     identical with metrics enabled, disabled, or reset mid-run.
//     Integer counters and histogram buckets commute, so their snapshot
//     values are identical at any worker count; float cost counters are
//     charged once per RunSet in sorted category order after the
//     deterministic clip-order merge, so a single extraction's cost
//     breakdown is also bit-identical at any worker count.
//
//   - No global clock reads in deterministic paths. Span durations come
//     from the monotonic clock and are recorded only; when no flight
//     recorder is installed (the library default) StartSpan touches no
//     clock at all and returns a nil span whose End is a no-op. With a
//     recorder installed, ending a span writes into a pre-allocated ring
//     slot and allocates nothing.
//
// Default is the process-wide registry the pipeline records into; the
// root otif package re-exports it as otif.Metrics() / otif.Snapshot().
package obs

// Default is the process-wide metrics registry used by all pipeline
// instrumentation.
var Default = NewRegistry()
