package obs

import (
	"math"
	"testing"
)

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("run.clips")
	f := r.Cost("cost.decode")
	g := r.Gauge("cache.bytes")
	h := r.Histogram("run.tracks_per_clip", 1, 10)

	c.Add(3)
	f.Add(1.5)
	g.Set(100)
	h.Observe(0.5)
	prev := r.Snapshot()

	c.Add(4)
	f.Add(2.5)
	g.Set(250)
	h.Observe(5)
	h.Observe(50)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if got := d.Counters["run.clips"]; got != 4 {
		t.Errorf("counter delta = %d, want 4", got)
	}
	if got := d.Costs["cost.decode"]; got != 2.5 {
		t.Errorf("cost delta = %v, want 2.5", got)
	}
	if got := d.Gauges["cache.bytes"]; got != 250 {
		t.Errorf("gauge in delta = %v, want current value 250", got)
	}
	hd := d.Histograms["run.tracks_per_clip"]
	if hd.Count != 2 || hd.Sum != 55 {
		t.Errorf("histogram delta count=%d sum=%v, want 2 and 55", hd.Count, hd.Sum)
	}
	wantCounts := []int64{0, 1, 1}
	for i, w := range wantCounts {
		if hd.Counts[i] != w {
			t.Errorf("histogram delta counts = %v, want %v", hd.Counts, wantCounts)
			break
		}
	}
	// The delta must be a copy: mutating it cannot touch the source.
	hd.Counts[0] = 99
	if cur.Histograms["run.tracks_per_clip"].Counts[0] == 99 {
		t.Error("histogram delta aliases the current snapshot's counts")
	}
}

func TestSnapshotDeltaEmptyPrev(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Histogram("h", 1).Observe(0.5)
	cur := r.Snapshot()
	d := cur.Delta(MetricsSnapshot{})
	if d.Counters["a"] != 7 {
		t.Errorf("delta against empty prev = %d, want full value 7", d.Counters["a"])
	}
	if d.Histograms["h"].Count != 1 {
		t.Errorf("histogram delta against empty prev count = %d, want 1", d.Histograms["h"].Count)
	}
	// Both snapshots empty: the delta is empty, not a panic.
	e := MetricsSnapshot{}.Delta(MetricsSnapshot{})
	if len(e.Counters)+len(e.Costs)+len(e.Gauges)+len(e.Histograms) != 0 {
		t.Errorf("empty-empty delta is non-empty: %+v", e)
	}
}

func TestSnapshotDeltaCounterReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	f := r.Cost("b")
	h := r.Histogram("h", 1)
	c.Add(10)
	f.Add(10)
	h.Observe(0.5)
	h.Observe(0.5)
	prev := r.Snapshot()
	r.Reset()
	c.Add(3)
	f.Add(1.25)
	h.Observe(0.5)
	cur := r.Snapshot()
	d := cur.Delta(prev)
	if d.Counters["a"] != 3 {
		t.Errorf("post-reset counter delta = %d, want current value 3", d.Counters["a"])
	}
	if d.Costs["b"] != 1.25 {
		t.Errorf("post-reset cost delta = %v, want current value 1.25", d.Costs["b"])
	}
	if got := d.Histograms["h"]; got.Count != 1 || got.Counts[0] != 1 {
		t.Errorf("post-reset histogram delta = %+v, want current contents", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2, 4)
	// 4 observations in (0,1], 4 in (1,2], 2 in (2,4].
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	h.Observe(3)
	h.Observe(3)

	if got := h.Quantile(0.4); got != 1 {
		t.Errorf("q0.4 = %v, want 1 (end of first bucket)", got)
	}
	if got := h.Quantile(0.8); got != 2 {
		t.Errorf("q0.8 = %v, want 2 (end of second bucket)", got)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("q0.5 = %v, want 1.25 (interpolated into (1,2])", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := h.Quantile(0); got != 0.25 {
		t.Errorf("q0 = %v, want 0.25 (rank clamps to the first observation)", got)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2)
	h.Observe(100) // lands beyond every bound
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %v, want the largest bound 2", got)
	}
}

func TestHistogramQuantileOutOfRangeAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) on empty = %v, want NaN", q, got)
		}
	}
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("Quantile on empty histogram = %v, want NaN", got)
	}
	h.Observe(1.5)
	for _, q := range []float64{-0.01, 1.01} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Errorf("Quantile(%v) = %v, want NaN for out-of-range q", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil histogram Quantile = %v, want NaN", got)
	}
	// A histogram registered with no bounds has only the overflow slot.
	nb := r.Histogram("nobounds")
	nb.Observe(3)
	if got := nb.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("no-bounds Quantile = %v, want NaN", got)
	}
}
