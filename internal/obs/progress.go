package obs

// Progress receives structured pipeline events: tuner iterations
// starting, candidate configurations evaluated, clips finishing inside a
// RunSet, and frame-cache hit-rate snapshots. A nil Progress costs one
// nil check per event site. Clip events are emitted from parallel
// workers, so a Progress callback must be safe for concurrent use; event
// delivery order between clips is unspecified at worker counts above
// one. Events are observational only — nothing a callback does (short of
// canceling a context) changes pipeline results.
type Progress func(Event)

// EventKind names a progress event type.
type EventKind string

// The progress event kinds.
const (
	// EventTuneIter marks the start of one tuner iteration. Iteration and
	// Total are set.
	EventTuneIter EventKind = "tune.iter"
	// EventCandidate reports one evaluated candidate configuration.
	// Iteration, Index, Config, Runtime and Accuracy are set.
	EventCandidate EventKind = "tune.candidate"
	// EventClip reports one clip finishing inside a RunSet. Index, Total
	// and Runtime (the clip's simulated cost) are set.
	EventClip EventKind = "clip"
	// EventCacheSnapshot reports the frame cache hit rate (emitted after
	// the tuner's caching phase). CacheHitRate is set.
	EventCacheSnapshot EventKind = "cache"
	// EventIngestClip reports one streamed clip publishing to the live
	// store. Index is the clip's position in the published store, Config
	// carries the camera name, and Runtime the clip's simulated cost.
	EventIngestClip EventKind = "ingest.clip"
)

// Event is one structured progress notification. Only the fields
// documented on the event's kind are meaningful; the rest are zero.
type Event struct {
	Kind      EventKind
	Iteration int
	Index     int
	Total     int
	// Config is the candidate configuration's string form.
	Config string
	// Runtime and Accuracy are simulated seconds and metric accuracy.
	Runtime  float64
	Accuracy float64
	// CacheHitRate is the frame cache hit rate in [0, 1].
	CacheHitRate float64
}

// Emit calls p with e when p is non-nil.
func (p Progress) Emit(e Event) {
	if p != nil {
		p(e)
	}
}
