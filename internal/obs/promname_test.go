package obs

import "testing"

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"run.clips", "run_clips"},
		{"cost.decode", "cost_decode"},
		{"cache.hit_rate", "cache_hit_rate"},
		{"a/b-c d", "a_b_c_d"},
		{"already_valid:name", "already_valid:name"},
		{"9lead", "_9lead"},
		{"", "_"},
		{"UPPER.Case", "UPPER_Case"},
	}
	for _, c := range cases {
		got := PromName(c.in)
		if got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
		if !ValidPromName(got) {
			t.Errorf("PromName(%q) = %q is not a valid Prometheus name", c.in, got)
		}
	}
}

func TestValidPromName(t *testing.T) {
	valid := []string{"a", "_", ":", "a9", "otif_run_clips_total", "A:b_c9"}
	invalid := []string{"", "9a", "a.b", "a-b", "a b", "a/b", "é"}
	for _, n := range valid {
		if !ValidPromName(n) {
			t.Errorf("ValidPromName(%q) = false, want true", n)
		}
	}
	for _, n := range invalid {
		if ValidPromName(n) {
			t.Errorf("ValidPromName(%q) = true, want false", n)
		}
	}
}

// PromName must be idempotent: exporting an already-normalized name
// (e.g. a name round-tripped through a scrape) cannot change it.
func TestPromNameIdempotent(t *testing.T) {
	for _, n := range []string{"run.clips", "cost.decode", "9x", "a/b", ""} {
		once := PromName(n)
		if twice := PromName(once); twice != once {
			t.Errorf("PromName not idempotent on %q: %q then %q", n, once, twice)
		}
	}
}
