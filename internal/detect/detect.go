// Package detect implements OTIF's object detection module. Two detector
// architectures are provided, standing in for the paper's YOLOv3 and Mask
// R-CNN: both are real image-processing detectors (background model +
// brightness-offset compensation + thresholding + connected components)
// whose accuracy emerges from the pixels they are given. "yolo" analyzes a
// coarsened difference image and is cheap; "rcnn" analyzes the full stored
// resolution with box refinement and costs ~5x more, mirroring the paper's
// speed/accuracy ordering of the two model families.
//
// Detectors run either on whole frames or inside rectangular windows
// selected by the segmentation proxy model (§3.3); every invocation charges
// simulated GPU cost for the *nominal* pixel count of its input, so halving
// the input resolution really does quarter the detector cost.
package detect

import (
	"math"
	"sort"
	"sync"

	"otif/internal/costmodel"
	"otif/internal/geom"
	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/video"
)

// Pre-registered metric handles; recording on the per-frame hot path is
// a lock-free atomic add with no map lookups or allocation.
var (
	metInvocations = obs.Default.Counter("detect.invocations")
	metWindows     = obs.Default.Counter("detect.windows")
	metDetections  = obs.Default.Counter("detect.detections")
)

// Detection is one detected object in nominal frame coordinates.
// AppMean and AppStd are appearance statistics of the detection patch,
// captured at detection time so downstream trackers can use appearance
// features without re-reading frames.
type Detection struct {
	FrameIdx int
	Box      geom.Rect
	Score    float64 // confidence in [0, 1]
	Category string  // "car", "bus", "pedestrian"
	AppMean  float64
	AppStd   float64
}

// Arch identifies a detector architecture.
type Arch string

// Supported architectures.
const (
	ArchYOLO Arch = "yolo"
	ArchRCNN Arch = "rcnn"
)

// PerPixelCost returns the simulated GPU seconds per nominal input pixel
// for the architecture.
func (a Arch) PerPixelCost() float64 {
	if a == ArchRCNN {
		return costmodel.RCNNPerPixel
	}
	return costmodel.YOLOPerPixel
}

// Classifier assigns a category to a detection box.
type Classifier interface {
	Classify(box geom.Rect) string
}

// SizeClassifier classifies detections by nominal box area and aspect
// ratio: tall small boxes are pedestrians, very large boxes are buses,
// everything else is a car.
type SizeClassifier struct {
	PedMaxArea float64 // boxes under this area with H > W are pedestrians
	BusMinArea float64 // boxes over this area are buses
}

// Classify implements Classifier.
func (c SizeClassifier) Classify(box geom.Rect) string {
	area := box.Area()
	if c.BusMinArea > 0 && area >= c.BusMinArea {
		return "bus"
	}
	if c.PedMaxArea > 0 && area <= c.PedMaxArea && box.H > box.W {
		return "pedestrian"
	}
	return "car"
}

// BackgroundModel is the detector's model of the static scene, estimated
// from sampled frames (this is the "detector training" of the pipeline).
// It is safe for concurrent use: parallel clip execution shares one model.
type BackgroundModel struct {
	frame *video.Frame
	mu    sync.Mutex
	// cache of the background downsampled to previously requested stored
	// resolutions, keyed by w<<20|h
	cache map[int]*video.Frame
}

// TrainBackground estimates the background as the per-pixel median over
// the given frames. All frames must share the same stored resolution.
func TrainBackground(frames []*video.Frame) *BackgroundModel {
	if len(frames) == 0 {
		return nil
	}
	w, h := frames[0].W, frames[0].H
	bg := video.NewFrame(w, h, frames[0].NomW, frames[0].NomH)
	vals := make([]uint8, len(frames))
	for i := 0; i < w*h; i++ {
		for j, f := range frames {
			vals[j] = f.Pix[i]
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		bg.Pix[i] = vals[len(vals)/2]
	}
	return &BackgroundModel{frame: bg, cache: map[int]*video.Frame{}}
}

// NewBackgroundModel wraps an already estimated background frame (used
// when loading a persisted model).
func NewBackgroundModel(frame *video.Frame) *BackgroundModel {
	return &BackgroundModel{frame: frame, cache: map[int]*video.Frame{}}
}

// Frame returns the full-resolution background estimate.
func (b *BackgroundModel) Frame() *video.Frame { return b.frame }

// At returns the background downsampled to stored resolution w x h,
// caching the result for reuse across frames. The returned frame is
// shared and must be treated as read-only. When the process-wide frame
// cache is enabled it holds these buffers (under its byte budget);
// otherwise a per-model map keeps them for the model's lifetime.
func (b *BackgroundModel) At(w, h int) *video.Frame {
	if video.CacheEnabled() {
		return video.CachedDownsample(b.frame, w, h)
	}
	key := w<<20 | h
	b.mu.Lock()
	defer b.mu.Unlock()
	if f, ok := b.cache[key]; ok {
		return f
	}
	f := b.frame.Downsample(w, h)
	b.cache[key] = f
	return f
}

// Config parameterizes a detector instance. Width/Height is the nominal
// input resolution the detector runs at (the tuner's resolution knob);
// ConfThresh filters detections by confidence.
type Config struct {
	Arch          Arch
	Width, Height int
	ConfThresh    float64
}

// Detector detects objects in frames or frame windows.
//
// A Detector carries reusable analysis scratch, so each instance must be
// used by one goroutine at a time (every call site in this repository
// constructs detectors per worker); the models it points to (background,
// classifier, accountant) remain safely shareable.
//
// The scratch is drawn lazily from a geometry-keyed pool; owners that run
// one detector per clip should call Release when the clip finishes so the
// next clip reuses the grown buffers. Detectors that are never Released
// still work — their scratch is simply collected.
type Detector struct {
	Cfg        Config
	Background *BackgroundModel
	Classify   Classifier
	Acct       *costmodel.Accountant
	// Prec selects the element type of the difference plane (nn.Float32
	// halves its memory traffic). The float64 zero value is the bit-exact
	// reference; under Float32 each difference value is rounded once when
	// stored and all component statistics still accumulate in float64.
	Prec nn.Precision

	// Arena, when non-nil, owns every detection slice this detector
	// returns: results stay valid until the arena's Release, instead of
	// being independent heap allocations. The pooled clip-execution path
	// sets it; a nil arena preserves plain heap semantics.
	Arena *Arena

	scratch *analyzeScratch
}

// analyzeScratch holds the per-invocation buffers of analyze and
// connectedComponents, reused across calls to keep the per-frame hot path
// allocation-free. mask and diff are cleared at the start of every analyze
// call: analyze only writes the region it inspects, while the component
// scan reads the whole plane. dets and win carry each call's detections
// until they are copied out (into the arena or the heap).
type analyzeScratch struct {
	mask   []bool
	diff   []float64
	diff32 []float32 // float32-backend difference plane (see Detector.Prec)
	labels []int32
	stack  []int
	comps  []component
	dets   []Detection
	win    []Detection
}

// scratchFor returns the detector's analysis scratch, acquiring one from
// the geometry-keyed pool (sized for a plane of the given pixel count) on
// first use.
func (d *Detector) scratchFor(pixels int) *analyzeScratch {
	if d.scratch == nil {
		d.scratch = getAnalyzeScratch(pixels)
	}
	return d.scratch
}

// Release returns the detector's pooled scratch. The detector remains
// usable (a fresh scratch is acquired on the next call); call it when the
// detector's clip is done.
func (d *Detector) Release() {
	putAnalyzeScratch(d.scratch)
	d.scratch = nil
}

// minComponentPixels is the smallest connected component (in analysis
// pixels) accepted as a detection; smaller blobs are treated as noise.
const minComponentPixels = 3

// diffThreshold is the base brightness-difference threshold (grey levels)
// for foreground pixels. The rcnn architecture uses a finer threshold and
// refines boxes afterwards.
func (d *Detector) diffThreshold() float64 {
	if d.Cfg.Arch == ArchRCNN {
		return 16
	}
	return 22
}

// Detect runs the detector on the whole frame, charging cost for one
// full-frame invocation at the configured input resolution. The returned
// slice is arena-owned when the detector has an Arena (valid until its
// Release), and a fresh heap slice otherwise; empty results are nil either
// way.
func (d *Detector) Detect(frame *video.Frame, frameIdx int) []Detection {
	metInvocations.Inc()
	d.Acct.Add(costmodel.OpDetect,
		costmodel.DetectCost(d.Cfg.Arch.PerPixelCost(), d.Cfg.Width, d.Cfg.Height))
	dets := d.analyze(nil, frame, frameIdx, geom.Rect{}, frame.Bounds())
	if d.scratch != nil {
		d.scratch.dets = dets[:0]
	}
	metDetections.Add(int64(len(dets)))
	return d.Arena.take(dets)
}

// DetectWindows runs the detector inside each window (nominal coordinates),
// charging per-window cost at the window's share of the configured input
// resolution, and merges duplicate detections across overlapping windows.
// Result ownership matches Detect's.
func (d *Detector) DetectWindows(frame *video.Frame, frameIdx int, windows []geom.Rect) []Detection {
	metInvocations.Inc()
	metWindows.Add(int64(len(windows)))
	scaleX := float64(d.Cfg.Width) / float64(frame.NomW)
	scaleY := float64(d.Cfg.Height) / float64(frame.NomH)
	var all []Detection
	for _, win := range windows {
		w := int(win.W*scaleX + 0.5)
		h := int(win.H*scaleY + 0.5)
		if w < 1 {
			w = 1
		}
		if h < 1 {
			h = 1
		}
		d.Acct.Add(costmodel.OpDetect, costmodel.DetectCost(d.Cfg.Arch.PerPixelCost(), w, h))
		all = d.analyze(all, frame, frameIdx, win, win)
	}
	var out []Detection
	if d.scratch != nil {
		out = dedupeInto(d.scratch.win[:0], all)
		d.scratch.win = out[:0]
		d.scratch.dets = all[:0]
	} else {
		out = dedupeInto(nil, all)
	}
	metDetections.Add(int64(len(out)))
	return d.Arena.take(out)
}

// analyze performs background subtraction inside region (nominal coords;
// empty means full frame) at the detector's effective analysis resolution,
// appending detections to dst. When dst is nil the scratch's detection
// buffer is used, so the result is only valid until the next detector
// call; Detect/DetectWindows copy it out before returning.
func (d *Detector) analyze(dst []Detection, frame *video.Frame, frameIdx int, region, bounds geom.Rect) []Detection {
	if d.Background == nil {
		return dst
	}
	// Effective stored analysis resolution: the detector input resolution
	// expressed as a fraction of nominal, applied to the stored buffer.
	fx := float64(d.Cfg.Width) / float64(frame.NomW)
	fy := float64(d.Cfg.Height) / float64(frame.NomH)
	aw := int(float64(frame.W)*fx + 0.5)
	ah := int(float64(frame.H)*fy + 0.5)
	if d.Cfg.Arch == ArchYOLO {
		// The single-stage detector analyzes a coarser grid.
		aw = (aw + 1) / 2
		ah = (ah + 1) / 2
	}
	if aw < 2 {
		aw = 2
	}
	if ah < 2 {
		ah = 2
	}
	img := video.CachedDownsample(frame, aw, ah)
	bg := d.Background.At(aw, ah)

	// Compensate the global brightness flicker. img and bg are shared
	// read-only planes (cached downsample, background model), so their
	// full-frame stats memoize on the frame.
	imgMean, _ := img.SharedMeanStd()
	bgMean, _ := bg.SharedMeanStd()
	offset := imgMean - bgMean

	// Restrict analysis to the region (in analysis pixels).
	x0, y0, x1, y1 := 0, 0, aw, ah
	if !region.Empty() {
		sx := float64(aw) / float64(frame.NomW)
		sy := float64(ah) / float64(frame.NomH)
		x0 = int(region.X * sx)
		y0 = int(region.Y * sy)
		x1 = int(math.Ceil(region.MaxX() * sx))
		y1 = int(math.Ceil(region.MaxY() * sy))
		x0 = clampInt(x0, 0, aw)
		x1 = clampInt(x1, 0, aw)
		y0 = clampInt(y0, 0, ah)
		y1 = clampInt(y1, 0, ah)
	}

	thresh := d.diffThreshold()
	s := d.scratchFor(aw * ah)
	if dst == nil {
		dst = s.dets[:0]
	}
	mask := growSlice(&s.mask, aw*ah)
	clear(mask)
	if d.Prec == nn.Float32 {
		diff := growSlice(&s.diff32, aw*ah)
		clear(diff)
		fillDiff(diff, mask, img, bg, offset, thresh, aw, x0, x1, y0, y1)
		return emitDetections(d, dst, s, mask, diff, frame, frameIdx, bounds, aw, ah)
	}
	diff := growSlice(&s.diff, aw*ah)
	clear(diff)
	fillDiff(diff, mask, img, bg, offset, thresh, aw, x0, x1, y0, y1)
	return emitDetections(d, dst, s, mask, diff, frame, frameIdx, bounds, aw, ah)
}

// fillDiff computes the brightness-compensated difference plane inside the
// analysis window and thresholds it into mask, entirely in F arithmetic so
// the float32 instantiation runs conversion-free per pixel (that, plus the
// halved plane traffic, is where the float32 detector backend's speed
// comes from).
//
// F = float64 is bit-identical to the math.Abs reference: the pixel
// conversions are exact, the conditional negation only differs from
// math.Abs on NaN and -0, and neither can occur here (pixels are uint8, so
// the difference is -0-free). F = float32 rounds the brightness offset
// once and the subtraction once. The mask compares against F(thresh);
// thresholds are small integers, exactly representable in float32, so the
// comparison itself never diverges between the backends.
func fillDiff[F ~float32 | ~float64](diff []F, mask []bool, img, bg *video.Frame, offset, thresh float64, aw, x0, x1, y0, y1 int) {
	off := F(offset)
	th := F(thresh)
	for y := y0; y < y1; y++ {
		ip := img.Pix[y*aw : (y+1)*aw]
		bp := bg.Pix[y*aw : (y+1)*aw]
		dr := diff[y*aw : (y+1)*aw]
		mr := mask[y*aw : (y+1)*aw]
		for x := x0; x < x1; x++ {
			dv := F(ip[x]) - F(bp[x]) - off
			if dv < 0 {
				dv = -dv
			}
			dr[x] = dv
			if dv > th {
				mr[x] = true
			}
		}
	}
}

// emitDetections runs the component scan over the difference plane and
// appends the surviving detections to dst. Generic over the plane element
// type; component statistics and all downstream geometry are float64 in
// both instantiations.
func emitDetections[F ~float32 | ~float64](d *Detector, dst []Detection, s *analyzeScratch, mask []bool, diff []F, frame *video.Frame, frameIdx int, bounds geom.Rect, aw, ah int) []Detection {
	comps := connectedComponentsInto(s, mask, diff, aw, ah)
	sxN := float64(frame.NomW) / float64(aw)
	syN := float64(frame.NomH) / float64(ah)
	for _, c := range comps {
		if c.count < minComponentPixels {
			continue
		}
		box := geom.RectFromBounds(float64(c.minX)*sxN, float64(c.minY)*syN,
			float64(c.maxX+1)*sxN, float64(c.maxY+1)*syN)
		if d.Cfg.Arch == ArchRCNN {
			box = refineBox(diff, aw, ah, c, sxN, syN)
		}
		box = box.Clip(bounds)
		if box.Empty() {
			continue
		}
		score := scoreOf(c)
		if score < d.Cfg.ConfThresh {
			continue
		}
		cat := "car"
		if d.Classify != nil {
			cat = d.Classify.Classify(box)
		}
		mean, std := frame.MeanStd(box)
		dst = append(dst, Detection{
			FrameIdx: frameIdx, Box: box, Score: score, Category: cat,
			AppMean: mean, AppStd: std,
		})
	}
	return dst
}

// scoreOf maps a component's mean difference strength and size into a
// confidence in [0, 1]. Strong, large blobs (real objects) score high;
// marginal noise blobs score low.
func scoreOf(c component) float64 {
	meanDiff := c.sumDiff / float64(c.count)
	s := (meanDiff - 10) / 60
	// Very small components are less trustworthy.
	s *= math.Min(1, float64(c.count)/8.0+0.4)
	return math.Max(0, math.Min(1, s))
}

// refineBox recomputes the box as a diff-weighted extent around the
// component, giving the two-stage architecture tighter boxes. Generic over
// the difference-plane element type; moments accumulate in float64 either
// way, so the float64 instantiation is the bit-exact reference.
func refineBox[F ~float32 | ~float64](diff []F, w, h int, c component, sx, sy float64) geom.Rect {
	var sumW, sumX, sumY, sumXX, sumYY float64
	for y := c.minY; y <= c.maxY; y++ {
		for x := c.minX; x <= c.maxX; x++ {
			d := float64(diff[y*w+x])
			if d <= 0 {
				continue
			}
			sumW += d
			sumX += d * float64(x)
			sumY += d * float64(y)
			sumXX += d * float64(x) * float64(x)
			sumYY += d * float64(y) * float64(y)
		}
	}
	if sumW == 0 {
		return geom.RectFromBounds(float64(c.minX)*sx, float64(c.minY)*sy,
			float64(c.maxX+1)*sx, float64(c.maxY+1)*sy)
	}
	cx := sumX / sumW
	cy := sumY / sumW
	stdX := math.Sqrt(math.Max(0.25, sumXX/sumW-cx*cx))
	stdY := math.Sqrt(math.Max(0.25, sumYY/sumW-cy*cy))
	// +-1.9 sigma covers the near-uniform ellipse interior.
	return geom.RectFromBounds((cx-1.9*stdX)*sx, (cy-1.9*stdY)*sy,
		(cx+1.9*stdX+1)*sx, (cy+1.9*stdY+1)*sy)
}

type component struct {
	minX, minY, maxX, maxY int
	count                  int
	sumDiff                float64
}

// growSlice resizes *s to length n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func growSlice[T bool | float32 | float64 | int32 | int](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// connectedComponents labels 4-connected regions of the mask, accumulating
// per-component extents and difference mass.
func connectedComponents[F ~float32 | ~float64](mask []bool, diff []F, w, h int) []component {
	var s analyzeScratch
	return connectedComponentsInto(&s, mask, diff, w, h)
}

// connectedComponentsInto is connectedComponents with all working storage
// (labels, DFS stack, component list) drawn from the scratch. The returned
// slice aliases s.comps and is valid until the next call with the same
// scratch. Difference mass accumulates in float64 for both plane types.
func connectedComponentsInto[F ~float32 | ~float64](s *analyzeScratch, mask []bool, diff []F, w, h int) []component {
	labels := growSlice(&s.labels, w*h)
	clear(labels)
	comps := s.comps[:0]
	stack := s.stack
	for start := 0; start < w*h; start++ {
		if !mask[start] || labels[start] != 0 {
			continue
		}
		id := int32(len(comps) + 1)
		c := component{minX: w, minY: h, maxX: -1, maxY: -1}
		stack = append(stack[:0], start)
		labels[start] = id
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := p%w, p/w
			c.count++
			c.sumDiff += float64(diff[p])
			if x < c.minX {
				c.minX = x
			}
			if x > c.maxX {
				c.maxX = x
			}
			if y < c.minY {
				c.minY = y
			}
			if y > c.maxY {
				c.maxY = y
			}
			if x > 0 && mask[p-1] && labels[p-1] == 0 {
				labels[p-1] = id
				stack = append(stack, p-1)
			}
			if x+1 < w && mask[p+1] && labels[p+1] == 0 {
				labels[p+1] = id
				stack = append(stack, p+1)
			}
			if y > 0 && mask[p-w] && labels[p-w] == 0 {
				labels[p-w] = id
				stack = append(stack, p-w)
			}
			if y+1 < h && mask[p+w] && labels[p+w] == 0 {
				labels[p+w] = id
				stack = append(stack, p+w)
			}
		}
		comps = append(comps, c)
	}
	s.stack = stack
	s.comps = comps
	return comps
}

// dedupe merges detections from overlapping windows: boxes with IoU > 0.5
// keep only the higher-scoring one.
func dedupe(dets []Detection) []Detection {
	return dedupeInto(nil, dets)
}

// dedupeInto is dedupe appending the surviving detections to dst (dets is
// sorted in place by score).
func dedupeInto(dst, dets []Detection) []Detection {
	sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
	base := len(dst)
	for _, d := range dets {
		dup := false
		for _, k := range dst[base:] {
			if d.Box.IoU(k.Box) > 0.5 {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, d)
		}
	}
	return dst
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
