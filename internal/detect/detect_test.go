package detect

import (
	"testing"

	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/geom"
	"otif/internal/video"
)

// harness builds a small caldot1-like scene with a trained background.
func harness(t *testing.T) (*dataset.Instance, *BackgroundModel) {
	t.Helper()
	ds, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 2, ClipSeconds: 4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	var frames []*video.Frame
	for _, ct := range ds.Train {
		for i := 0; i < ct.Clip.Len(); i += ct.Clip.Len()/5 + 1 {
			frames = append(frames, ct.Clip.Frame(i))
		}
	}
	return ds, TrainBackground(frames)
}

func detectorFor(ds *dataset.Instance, bg *BackgroundModel, arch Arch, scale float64, acct *costmodel.Accountant) *Detector {
	return &Detector{
		Cfg: Config{
			Arch:  arch,
			Width: int(float64(ds.Cfg.NomW) * scale), Height: int(float64(ds.Cfg.NomH) * scale),
			ConfThresh: 0.25,
		},
		Background: bg,
		Classify:   SizeClassifier{BusMinArea: 3000},
		Acct:       acct,
	}
}

// matchStats counts ground-truth recall and detection precision at IoU 0.3
// across sampled frames of a clip.
func matchStats(ds *dataset.Instance, det *Detector) (recall, precision float64) {
	ct := ds.Val[0]
	var matched, nGT, nDet, detMatched int
	for f := 0; f < ct.Clip.Len(); f += 5 {
		frame := ct.Clip.Frame(f)
		dets := det.Detect(frame, f)
		gts := ct.Truth(f)
		nGT += len(gts)
		nDet += len(dets)
		for _, g := range gts {
			for _, d := range dets {
				if d.Box.IoU(g.Box) >= 0.3 {
					matched++
					break
				}
			}
		}
		for _, d := range dets {
			for _, g := range gts {
				if d.Box.IoU(g.Box) >= 0.3 {
					detMatched++
					break
				}
			}
		}
	}
	if nGT == 0 || nDet == 0 {
		return 0, 0
	}
	return float64(matched) / float64(nGT), float64(detMatched) / float64(nDet)
}

func TestDetectorFindsObjectsAtFullResolution(t *testing.T) {
	ds, bg := harness(t)
	for _, arch := range []Arch{ArchYOLO, ArchRCNN} {
		det := detectorFor(ds, bg, arch, 1.0, costmodel.NewAccountant())
		recall, precision := matchStats(ds, det)
		if recall < 0.85 {
			t.Errorf("%s recall = %v, want >= 0.85", arch, recall)
		}
		if precision < 0.8 {
			t.Errorf("%s precision = %v, want >= 0.8", arch, precision)
		}
	}
}

func TestDetectionCarriesAppearance(t *testing.T) {
	ds, bg := harness(t)
	det := detectorFor(ds, bg, ArchYOLO, 1.0, costmodel.NewAccountant())
	ct := ds.Val[0]
	for f := 0; f < ct.Clip.Len(); f++ {
		dets := det.Detect(ct.Clip.Frame(f), f)
		for _, d := range dets {
			if d.AppMean == 0 && d.AppStd == 0 {
				t.Fatal("detection has no appearance statistics")
			}
			if d.FrameIdx != f {
				t.Fatal("detection frame index wrong")
			}
			return
		}
	}
	t.Skip("no detections found")
}

func TestDetectorCostScalesWithResolutionAndArch(t *testing.T) {
	ds, bg := harness(t)
	ct := ds.Val[0]
	frame := ct.Clip.Frame(0)

	cost := func(arch Arch, scale float64) float64 {
		acct := costmodel.NewAccountant()
		det := detectorFor(ds, bg, arch, scale, acct)
		det.Detect(frame, 0)
		return acct.Get(costmodel.OpDetect)
	}
	if cost(ArchYOLO, 0.5) >= cost(ArchYOLO, 1.0) {
		t.Error("lower resolution must cost less")
	}
	if cost(ArchRCNN, 1.0) <= cost(ArchYOLO, 1.0) {
		t.Error("rcnn must cost more than yolo")
	}
}

func TestDetectWindowsOnlyDetectsInside(t *testing.T) {
	ds, bg := harness(t)
	det := detectorFor(ds, bg, ArchYOLO, 1.0, costmodel.NewAccountant())
	ct := ds.Val[0]
	// Find a frame with a detection.
	for f := 0; f < ct.Clip.Len(); f += 3 {
		frame := ct.Clip.Frame(f)
		full := det.Detect(frame, f)
		if len(full) == 0 {
			continue
		}
		target := full[0].Box
		win := geom.Rect{X: target.X - 30, Y: target.Y - 30, W: target.W + 60, H: target.H + 60}.Clip(frame.Bounds())
		dets := det.DetectWindows(frame, f, []geom.Rect{win})
		found := false
		for _, d := range dets {
			if !win.ContainsRect(d.Box.Intersect(win)) {
				t.Error("window detection outside window")
			}
			if d.Box.IoU(target) > 0.3 {
				found = true
			}
		}
		if !found {
			t.Error("windowed detection missed the object inside the window")
		}
		// An empty corner window yields nothing.
		corner := geom.Rect{X: 0, Y: 0, W: 40, H: 40}
		if target.Intersects(corner) {
			return
		}
		for _, d := range det.DetectWindows(frame, f, []geom.Rect{corner}) {
			if d.Box.IoU(target) > 0.3 {
				t.Error("detection leaked outside the requested window")
			}
		}
		return
	}
	t.Skip("no detections found")
}

func TestWindowCostCheaperThanFullFrame(t *testing.T) {
	ds, bg := harness(t)
	frame := ds.Val[0].Clip.Frame(0)
	full := costmodel.NewAccountant()
	det := detectorFor(ds, bg, ArchYOLO, 1.0, full)
	det.Detect(frame, 0)
	win := costmodel.NewAccountant()
	det2 := detectorFor(ds, bg, ArchYOLO, 1.0, win)
	det2.DetectWindows(frame, 0, []geom.Rect{{X: 0, Y: 0, W: 100, H: 100}})
	if win.Get(costmodel.OpDetect) >= full.Get(costmodel.OpDetect) {
		t.Error("small window must cost less than full frame")
	}
}

func TestConfidenceThresholdFilters(t *testing.T) {
	ds, bg := harness(t)
	loose := detectorFor(ds, bg, ArchYOLO, 1.0, costmodel.NewAccountant())
	loose.Cfg.ConfThresh = 0
	strict := detectorFor(ds, bg, ArchYOLO, 1.0, costmodel.NewAccountant())
	strict.Cfg.ConfThresh = 0.9
	ct := ds.Val[0]
	var nLoose, nStrict int
	for f := 0; f < ct.Clip.Len(); f += 5 {
		frame := ct.Clip.Frame(f)
		nLoose += len(loose.Detect(frame, f))
		nStrict += len(strict.Detect(frame, f))
	}
	if nStrict > nLoose {
		t.Errorf("strict threshold found more detections (%d > %d)", nStrict, nLoose)
	}
}

func TestSizeClassifier(t *testing.T) {
	c := SizeClassifier{PedMaxArea: 1200, BusMinArea: 8000}
	if got := c.Classify(geom.Rect{W: 20, H: 50}); got != "pedestrian" {
		t.Errorf("tall small box = %s", got)
	}
	if got := c.Classify(geom.Rect{W: 150, H: 70}); got != "bus" {
		t.Errorf("huge box = %s", got)
	}
	if got := c.Classify(geom.Rect{W: 70, H: 35}); got != "car" {
		t.Errorf("car box = %s", got)
	}
	// Wide small boxes are not pedestrians.
	if got := c.Classify(geom.Rect{W: 50, H: 20}); got != "car" {
		t.Errorf("wide small box = %s", got)
	}
}

func TestTrainBackgroundEmpty(t *testing.T) {
	if TrainBackground(nil) != nil {
		t.Error("empty training set should return nil background")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two separate blobs.
	w, h := 6, 4
	mask := make([]bool, w*h)
	diff := make([]float64, w*h)
	set := func(x, y int) {
		mask[y*w+x] = true
		diff[y*w+x] = 10
	}
	set(0, 0)
	set(1, 0)
	set(0, 1)
	set(4, 2)
	set(5, 2)
	comps := connectedComponents(mask, diff, w, h)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if comps[0].count != 3 || comps[1].count != 2 {
		t.Errorf("component sizes %d, %d", comps[0].count, comps[1].count)
	}
	if comps[0].sumDiff != 30 {
		t.Errorf("sumDiff = %v, want 30", comps[0].sumDiff)
	}
}

func TestDedupe(t *testing.T) {
	a := Detection{Box: geom.Rect{X: 0, Y: 0, W: 10, H: 10}, Score: 0.9}
	b := Detection{Box: geom.Rect{X: 1, Y: 1, W: 10, H: 10}, Score: 0.5} // overlaps a
	c := Detection{Box: geom.Rect{X: 50, Y: 50, W: 10, H: 10}, Score: 0.7}
	out := dedupe([]Detection{a, b, c})
	if len(out) != 2 {
		t.Fatalf("dedupe kept %d, want 2", len(out))
	}
	if out[0].Score != 0.9 {
		t.Error("dedupe must keep the higher-scoring duplicate")
	}
}
