package detect

import (
	"math/bits"
	"sync"

	"otif/internal/obs"
)

// This file implements pooled per-clip allocation for the detector: an
// arena for the detection slices the hot path returns every processed
// frame, and a geometry-keyed pool for the analysis scratch (whose buffers
// are sized by the clip's analysis plane). Clip execution creates one
// Detector per clip; without pooling every clip re-grows the same mask,
// diff and label planes and every frame heap-allocates its detection
// slice. Pool traffic is observable through the detect.pool.* counters;
// pooling never changes results.

// Pool effectiveness counters.
var (
	metArenaHit    = obs.Default.Counter("detect.pool.arena.hit")
	metArenaMiss   = obs.Default.Counter("detect.pool.arena.miss")
	metScratchHit  = obs.Default.Counter("detect.pool.scratch.hit")
	metScratchMiss = obs.Default.Counter("detect.pool.scratch.miss")
)

// arenaSlabDets is how many detections one arena slab holds. Detection
// counts per frame are small (tens), so one slab serves hundreds of
// frames.
const arenaSlabDets = 512

// Arena allocates detection slices from reusable slabs. It serves the
// pooled clip-execution path: every Detect/DetectWindows result for a clip
// is carved from the clip's arena and stays valid until Release, after
// which the slabs are handed to the next clip through the arena pool. An
// Arena is owned by one goroutine. A nil *Arena is valid and degrades to
// plain heap copies, preserving the unpooled semantics.
type Arena struct {
	slabs [][]Detection
	cur   int // index of the slab currently being carved
}

// arenaPool recycles Arenas (and their slabs) across clips. No New
// function: a nil Get is how misses are counted.
var arenaPool sync.Pool

// GetArena returns an empty arena, reusing pooled slabs when available.
func GetArena() *Arena {
	if v := arenaPool.Get(); v != nil {
		metArenaHit.Inc()
		return v.(*Arena)
	}
	metArenaMiss.Inc()
	return &Arena{}
}

// Release invalidates every slice handed out by the arena and returns its
// slabs to the pool. The caller must not retain any detection slice
// obtained from the arena past this call. Release on a nil arena is a
// no-op.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for i := range a.slabs {
		a.slabs[i] = a.slabs[i][:0]
	}
	a.cur = 0
	arenaPool.Put(a)
}

// take copies src into arena-owned storage and returns the copy, capped so
// appends by the caller can never clobber a neighboring allocation. An
// empty src returns nil (matching the detector's "no detections" result);
// a nil arena returns a plain heap copy.
func (a *Arena) take(src []Detection) []Detection {
	if len(src) == 0 {
		return nil
	}
	if a == nil {
		out := make([]Detection, len(src))
		copy(out, src)
		return out
	}
	n := len(src)
	for {
		if a.cur >= len(a.slabs) {
			size := arenaSlabDets
			if n > size {
				size = n
			}
			a.slabs = append(a.slabs, make([]Detection, 0, size))
		}
		slab := a.slabs[a.cur]
		if len(slab)+n <= cap(slab) {
			start := len(slab)
			slab = append(slab, src...)
			a.slabs[a.cur] = slab
			return slab[start:len(slab):len(slab)]
		}
		a.cur++
	}
}

// scratchClass buckets an analysis-plane pixel count into a power-of-two
// size class, so clips of the same geometry (and near-geometries from the
// tuner's resolution sweep) share pooled scratch of the right magnitude.
func scratchClass(pixels int) int {
	if pixels < 1 {
		pixels = 1
	}
	return bits.Len(uint(pixels - 1)) // ceil(log2(pixels))
}

// scratchPools maps a size class to its pool of *analyzeScratch. Classes
// are few (one per geometry magnitude), so the map is tiny and read-mostly.
var (
	scratchPoolsMu sync.Mutex
	scratchPools   = map[int]*sync.Pool{}
)

func classPool(class int) *sync.Pool {
	scratchPoolsMu.Lock()
	defer scratchPoolsMu.Unlock()
	p, ok := scratchPools[class]
	if !ok {
		p = &sync.Pool{}
		scratchPools[class] = p
	}
	return p
}

// getAnalyzeScratch returns analysis scratch suitable for a plane of the
// given pixel count, reusing pooled scratch of the same size class when
// available. Buffer contents are unspecified; analyze sizes and clears
// what it reads.
func getAnalyzeScratch(pixels int) *analyzeScratch {
	if v := classPool(scratchClass(pixels)).Get(); v != nil {
		metScratchHit.Inc()
		return v.(*analyzeScratch)
	}
	metScratchMiss.Inc()
	return &analyzeScratch{}
}

// putAnalyzeScratch returns scratch to the pool of the class its buffers
// have grown to serve.
func putAnalyzeScratch(s *analyzeScratch) {
	if s == nil {
		return
	}
	s.dets = s.dets[:0]
	s.win = s.win[:0]
	classPool(scratchClass(cap(s.labels))).Put(s)
}
