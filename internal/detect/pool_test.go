package detect

import (
	"testing"

	"otif/internal/geom"
)

func TestArenaTakeSemantics(t *testing.T) {
	// nil arena: plain heap copy, nil on empty.
	var nilArena *Arena
	if got := nilArena.take(nil); got != nil {
		t.Errorf("nil arena take(empty) = %v, want nil", got)
	}
	src := []Detection{{FrameIdx: 1, Box: geom.Rect{X: 1, Y: 2, W: 3, H: 4}}}
	cp := nilArena.take(src)
	if len(cp) != 1 || cp[0] != src[0] {
		t.Fatalf("nil arena take copied wrong contents: %+v", cp)
	}
	src[0].FrameIdx = 9
	if cp[0].FrameIdx != 1 {
		t.Error("nil arena take must copy, not alias")
	}

	a := GetArena()
	if got := a.take(nil); got != nil {
		t.Errorf("arena take(empty) = %v, want nil", got)
	}
	first := a.take([]Detection{{FrameIdx: 1}, {FrameIdx: 2}})
	second := a.take([]Detection{{FrameIdx: 3}})
	if len(first) != 2 || len(second) != 1 {
		t.Fatalf("arena take lengths wrong: %d, %d", len(first), len(second))
	}
	if first[0].FrameIdx != 1 || first[1].FrameIdx != 2 || second[0].FrameIdx != 3 {
		t.Fatalf("arena take contents wrong: %+v %+v", first, second)
	}
	// The returned slices are capped: appending to one must not clobber
	// its neighbor in the slab.
	_ = append(first, Detection{FrameIdx: 99})
	if second[0].FrameIdx != 3 {
		t.Error("append to an arena slice clobbered the next allocation")
	}
	a.Release()
}

func TestArenaOversizedRequest(t *testing.T) {
	a := GetArena()
	defer a.Release()
	big := make([]Detection, arenaSlabDets+10)
	for i := range big {
		big[i].FrameIdx = i
	}
	got := a.take(big)
	if len(got) != len(big) {
		t.Fatalf("oversized take length %d, want %d", len(got), len(big))
	}
	for i := range got {
		if got[i].FrameIdx != i {
			t.Fatalf("oversized take contents wrong at %d", i)
		}
	}
}

func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	a := GetArena()
	defer a.Release()
	src := []Detection{{FrameIdx: 1}, {FrameIdx: 2}, {FrameIdx: 3}}
	// Warm: fill and recycle once so the slab exists.
	for i := 0; i < 10; i++ {
		a.take(src)
	}
	a.Release()
	b := GetArena() // may or may not be the same arena; slabs either way
	defer b.Release()
	b.take(src)
	if n := testing.AllocsPerRun(100, func() {
		// Stay within one slab: reset the carve point by releasing into
		// the pool is outside this loop; instead just keep taking while
		// capacity remains — 100 runs * 3 dets fits a 512-det slab twice
		// over only if we reset, so reset via the exported surface.
		for i := range b.slabs {
			b.slabs[i] = b.slabs[i][:0]
		}
		b.cur = 0
		b.take(src)
	}); n != 0 {
		t.Errorf("arena steady-state take allocates %v per op, want 0", n)
	}
}

func TestDetectorReleaseRecyclesScratch(t *testing.T) {
	miss0 := metScratchMiss.Value()
	s1 := getAnalyzeScratch(64 * 64)
	growSlice(&s1.labels, 64*64)
	putAnalyzeScratch(s1)
	// Same size class: should usually come back (sync.Pool may drop).
	reused := false
	for i := 0; i < 50 && !reused; i++ {
		s2 := getAnalyzeScratch(64 * 64)
		reused = s2 == s1
		putAnalyzeScratch(s2)
	}
	if !reused {
		t.Skip("sync.Pool never returned the same scratch (drops are legal)")
	}
	if metScratchMiss.Value() == miss0 && miss0 == 0 {
		t.Error("pool counters did not move")
	}
}
