package video

import (
	"context"
	"fmt"

	"otif/internal/costmodel"
	"otif/internal/obs"
)

// metFramesDecoded counts frames returned by Reader.Next across all clips;
// pre-registered so the per-frame record is a single atomic add.
var metFramesDecoded = obs.Default.Counter("video.frames_decoded")

// FrameSource produces frames of a clip on demand. Sources are how the
// pipeline reads video: reduced-rate methods ask only for the frames they
// process, and each read is charged decode cost (the codec must decode
// every frame up to the requested one within a group of pictures, but the
// paper's pipelines decode sequentially at a chosen framerate, which is
// what Reader models).
type FrameSource interface {
	// Frame returns the frame at the given index (0-based).
	Frame(idx int) *Frame
	// Len returns the number of frames in the clip.
	Len() int
	// FPS returns the native framerate.
	FPS() int
}

// Clip is one sampled segment of video together with its identity within
// the dataset. Frames are produced lazily by the underlying source.
type Clip struct {
	ID     int // index within its set
	Source FrameSource
}

// Len returns the clip length in frames.
func (c *Clip) Len() int { return c.Source.Len() }

// FPS returns the clip's native framerate.
func (c *Clip) FPS() int { return c.Source.FPS() }

// Frame returns frame idx of the clip.
func (c *Clip) Frame(idx int) *Frame { return c.Source.Frame(idx) }

// Reader iterates over a clip at a reduced rate given by a sampling gap g
// (process 1 in every g frames), charging simulated decode cost at the
// given decode resolution to the accountant. It mirrors the paper's
// execution pipeline where frames are decoded at the object detector
// resolution, so lower-resolution configurations also decode faster.
// When the process-wide prefetch depth is positive, decoding runs in a
// producer goroutine a bounded number of frames ahead (see prefetch.go);
// frames, costs and counters are bit-identical either way.
type Reader struct {
	clip     *Clip
	gap      int
	decodeW  int
	decodeH  int
	acct     *costmodel.Accountant
	next     int
	lastIdx  int
	haveLast bool

	// Decode-ahead state; nil when prefetching is disabled.
	ch     chan prefetched
	cancel context.CancelFunc
}

// NewReader creates a reader over clip with sampling gap g (g >= 1),
// decoding at the given nominal resolution for cost purposes. Decode-ahead
// (if enabled) runs until end of clip; callers that may stop reading early
// should use NewReaderContext and Close.
func NewReader(clip *Clip, gap, decodeW, decodeH int, acct *costmodel.Accountant) *Reader {
	return NewReaderContext(context.Background(), clip, gap, decodeW, decodeH, acct)
}

// NewReaderContext is NewReader with a context bounding the reader's
// decode-ahead producer: cancelling ctx stops prefetching (the reader
// falls back to synchronous decode and remains fully usable). The caller
// should defer Close.
func NewReaderContext(ctx context.Context, clip *Clip, gap, decodeW, decodeH int, acct *costmodel.Accountant) *Reader {
	if gap < 1 {
		panic(fmt.Sprintf("video: invalid sampling gap %d", gap))
	}
	r := &Reader{clip: clip, gap: gap, decodeW: decodeW, decodeH: decodeH, acct: acct}
	if depth := PrefetchDepth(); depth > 0 && clip.Len() > 0 {
		r.startPrefetch(ctx, depth)
	}
	return r
}

// Next returns the next sampled frame and its index, or (nil, -1) at end of
// clip. Decode cost is charged per returned frame. Modern codecs decode a
// group of pictures at a time, so skipping frames still pays a fraction of
// their decode cost; we charge the sampled frame plus 15% of each skipped
// frame, which reproduces the paper's observation that decode remains a
// bottleneck at high speedups.
func (r *Reader) Next() (*Frame, int) {
	if r.next >= r.clip.Len() {
		return nil, -1
	}
	idx := r.next
	skipped := 0
	if r.haveLast {
		skipped = idx - r.lastIdx - 1
	}
	per := costmodel.DecodeCost(r.decodeW, r.decodeH)
	r.acct.Add(costmodel.OpDecode, per*(1+0.15*float64(skipped)))
	f := r.fetch(idx)
	metFramesDecoded.Inc()
	r.lastIdx = idx
	r.haveLast = true
	r.next += r.gap
	return f, idx
}

// Set is an ordered collection of clips: one of the training, validation or
// test sets sampled from a dataset.
type Set struct {
	Name  string
	Clips []*Clip
}

// Frames returns the total number of frames across all clips.
func (s *Set) Frames() int {
	var n int
	for _, c := range s.Clips {
		n += c.Len()
	}
	return n
}

// Seconds returns the total video duration in seconds.
func (s *Set) Seconds() float64 {
	var t float64
	for _, c := range s.Clips {
		t += float64(c.Len()) / float64(c.FPS())
	}
	return t
}

// MemorySource is a FrameSource backed by an in-memory frame slice, used in
// tests and for decoded clip caches.
type MemorySource struct {
	Frames []*Frame
	Rate   int
}

// Frame implements FrameSource.
func (m *MemorySource) Frame(idx int) *Frame { return m.Frames[idx] }

// Len implements FrameSource.
func (m *MemorySource) Len() int { return len(m.Frames) }

// FPS implements FrameSource.
func (m *MemorySource) FPS() int { return m.Rate }
