package video

import (
	"math"
	"testing"

	"otif/internal/geom"
)

func testFrame(w, h int) *Frame {
	f := NewFrame(w, h, w*4, h*4)
	for i := range f.Pix {
		f.Pix[i] = uint8(i % 251)
	}
	return f
}

func TestAtSetClamping(t *testing.T) {
	f := NewFrame(4, 4, 16, 16)
	f.Set(1, 1, 42)
	if f.At(1, 1) != 42 {
		t.Error("Set/At roundtrip failed")
	}
	// Out-of-range reads clamp, writes are dropped.
	if f.At(-5, -5) != f.At(0, 0) {
		t.Error("negative At should clamp to border")
	}
	if f.At(100, 100) != f.At(3, 3) {
		t.Error("overflow At should clamp to border")
	}
	f.Set(-1, 0, 99)
	f.Set(4, 0, 99)
	for _, p := range f.Pix {
		if p == 99 {
			t.Error("out-of-range Set must be ignored")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	f := testFrame(8, 8)
	g := f.Clone()
	g.Pix[0] = 200
	if f.Pix[0] == 200 {
		t.Error("Clone must copy pixels")
	}
}

func TestDownsampleMeanPreserving(t *testing.T) {
	f := NewFrame(8, 8, 32, 32)
	for i := range f.Pix {
		f.Pix[i] = 100
	}
	d := f.Downsample(4, 4)
	if d.W != 4 || d.H != 4 {
		t.Fatalf("downsampled size %dx%d", d.W, d.H)
	}
	if d.NomW != 32 || d.NomH != 32 {
		t.Error("nominal size must be preserved")
	}
	for _, p := range d.Pix {
		if p != 100 {
			t.Errorf("constant image downsample changed value: %d", p)
		}
	}
	// Box filter averages: a half-black half-white image downsampled to
	// one pixel lands near the mean.
	f2 := NewFrame(2, 1, 2, 1)
	f2.Pix = []uint8{0, 200}
	one := f2.Downsample(1, 1)
	if one.Pix[0] != 100 {
		t.Errorf("average = %d, want 100", one.Pix[0])
	}
}

func TestDownsampleSameSizeIsCopy(t *testing.T) {
	f := testFrame(6, 4)
	d := f.Downsample(6, 4)
	d.Pix[0] = 255
	if f.Pix[0] == 255 {
		t.Error("same-size downsample should copy, not alias")
	}
}

func TestDownsamplePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	testFrame(4, 4).Downsample(0, 4)
}

func TestScaleRoundtrip(t *testing.T) {
	f := NewFrame(100, 50, 400, 200)
	r := geom.Rect{X: 40, Y: 20, W: 80, H: 40}
	s := f.ScaleToStored(r)
	back := f.ScaleToNominal(s)
	if math.Abs(back.X-r.X) > 1e-9 || math.Abs(back.W-r.W) > 1e-9 {
		t.Errorf("scale roundtrip %v -> %v", r, back)
	}
}

func TestCrop(t *testing.T) {
	f := NewFrame(10, 10, 100, 100)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			f.Set(x, y, uint8(y*10+x))
		}
	}
	c := f.Crop(geom.Rect{X: 20, Y: 30, W: 30, H: 20})
	if c.W != 3 || c.H != 2 {
		t.Fatalf("crop size %dx%d, want 3x2", c.W, c.H)
	}
	if c.At(0, 0) != f.At(2, 3) {
		t.Errorf("crop content mismatch: %d vs %d", c.At(0, 0), f.At(2, 3))
	}
	// Crop clipped to bounds never panics and stays non-empty.
	c2 := f.Crop(geom.Rect{X: 90, Y: 90, W: 50, H: 50})
	if c2.W < 1 || c2.H < 1 {
		t.Error("clipped crop must be non-empty")
	}
}

func TestMeanStd(t *testing.T) {
	f := NewFrame(4, 4, 4, 4)
	for i := range f.Pix {
		f.Pix[i] = 10
	}
	mean, std := f.MeanStd(geom.Rect{})
	if mean != 10 || std != 0 {
		t.Errorf("MeanStd = %v, %v", mean, std)
	}
	f.Pix[0] = 30
	mean2, std2 := f.MeanStd(geom.Rect{})
	if mean2 <= 10 || std2 <= 0 {
		t.Errorf("MeanStd after change = %v, %v", mean2, std2)
	}
	// Sub-region stats.
	f2 := NewFrame(4, 4, 8, 8)
	for i := range f2.Pix {
		f2.Pix[i] = 0
	}
	f2.Set(0, 0, 100)
	m, _ := f2.MeanStd(geom.Rect{X: 0, Y: 0, W: 2, H: 2})
	if m != 100 {
		t.Errorf("region mean = %v, want 100 (only pixel (0,0) is in region)", m)
	}
}

func TestSharedMeanStdMemoizes(t *testing.T) {
	f := NewFrame(8, 8, 8, 8)
	for i := range f.Pix {
		f.Pix[i] = uint8(i * 3)
	}
	wantMean, wantStd := f.MeanStd(geom.Rect{})
	m, s := f.SharedMeanStd()
	if m != wantMean || s != wantStd {
		t.Fatalf("SharedMeanStd = %v, %v, want %v, %v", m, s, wantMean, wantStd)
	}
	// The memo must serve repeats without recomputing (and without
	// allocating).
	if n := testing.AllocsPerRun(100, func() { f.SharedMeanStd() }); n != 0 {
		t.Errorf("memoized SharedMeanStd allocates %v per op, want 0", n)
	}
	m2, s2 := f.SharedMeanStd()
	if m2 != wantMean || s2 != wantStd {
		t.Errorf("repeat SharedMeanStd = %v, %v, want %v, %v", m2, s2, wantMean, wantStd)
	}
}
