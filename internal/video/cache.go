package video

import (
	"sync"
	"sync/atomic"

	"otif/internal/obs"
)

// This file implements the bounded, sharded frame cache on the per-frame
// hot path. Two kinds of derived buffers are cached:
//
//   - downsampled frames, keyed by (source frame identity, w, h): the five
//     proxy resolutions, the detector's coarse analysis grid, and the
//     background model's per-resolution buffers all re-request the same
//     downsample of the same frame many times per processed frame;
//   - rendered/decoded clip frames, keyed by (source identity, index):
//     repeated tuner evaluations of the same clip re-read the same frames,
//     and a stable frame identity is what makes the downsample cache hit
//     across those evaluations.
//
// Cached frames are shared and MUST be treated as read-only by all
// callers; every producer in this repository already does. Entries are
// keyed by process-unique uint64 identities rather than pointers, so the
// cache never pins a source frame and a recycled allocation can never be
// confused with the object the entry was built from. Eviction is LRU per
// shard under a byte budget. All cached computations are deterministic
// functions of their key, so results are bit-identical with the cache
// enabled, disabled, or thrashing.

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Bytes, Entries          int64
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	n := s.Hits + s.Misses
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// cacheShardCount is the number of independently locked shards. Shards cut
// lock contention when parallel clip workers hit the cache together.
const cacheShardCount = 16

// cacheEntryOverhead approximates the bookkeeping bytes per entry (entry
// struct, map slot, frame header) charged against the budget on top of
// the pixel payload.
const cacheEntryOverhead = 160

// cacheKey identifies one derived buffer. owner is the process-unique id
// of the source object (a Frame for downsamples, a CachedSource for clip
// frames); ids are drawn from one shared counter and never reused, so keys
// of different kinds cannot collide.
type cacheKey struct {
	owner uint64
	a, b  int // (w, h) for downsamples; (frame index, -1) for clip frames
}

type cacheEntry struct {
	key        cacheKey
	f          *Frame
	size       int64
	prev, next *cacheEntry
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	bytes   int64
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used

	// Effectiveness counters live under the shard lock rather than as
	// cache-global atomics, so Stats can read every counter of a shard
	// together with its byte/entry state in one consistent snapshot
	// instead of four racing loads.
	hits, misses, evictions uint64
}

// Cache is a bounded, sharded LRU frame cache. The zero value is not
// usable; construct with NewCache. A nil *Cache is a valid "disabled"
// cache whose lookups always compute.
type Cache struct {
	perShard int64
	shards   [cacheShardCount]cacheShard
}

// NewCache creates a cache with the given total byte budget, split evenly
// across shards. Budgets below one entry per shard still admit single
// entries up to the shard budget; larger results are returned uncached.
func NewCache(budgetBytes int64) *Cache {
	c := &Cache{perShard: budgetBytes / cacheShardCount}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
	}
	return c
}

// mix hashes a key into a shard index (splitmix64-style finalizer).
func (k cacheKey) shard() uint64 {
	z := k.owner ^ uint64(k.a)*0x9E3779B97F4A7C15 ^ uint64(k.b)*0xC2B2AE3D27D4EB4F
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return z % cacheShardCount
}

// get returns the cached frame for key, computing and inserting it on a
// miss. compute runs outside the shard lock; if two goroutines race on the
// same key, the first inserted entry wins and both receive it (compute is
// deterministic, so either result is bit-identical).
func (c *Cache) get(key cacheKey, compute func() *Frame) *Frame {
	if c == nil {
		return compute()
	}
	sh := &c.shards[key.shard()]
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.moveFront(e)
		sh.hits++
		sh.mu.Unlock()
		return e.f
	}
	sh.misses++
	sh.mu.Unlock()

	f := compute()
	size := int64(len(f.Pix)) + cacheEntryOverhead
	if size > c.perShard {
		return f // larger than the shard budget; serve uncached
	}
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		sh.moveFront(e)
		sh.mu.Unlock()
		return e.f
	}
	e := &cacheEntry{key: key, f: f, size: size}
	sh.entries[key] = e
	sh.pushFront(e)
	sh.bytes += size
	for sh.bytes > c.perShard && sh.tail != nil && sh.tail != e {
		ev := sh.tail
		sh.unlink(ev)
		delete(sh.entries, ev.key)
		sh.bytes -= ev.size
		sh.evictions++
	}
	sh.mu.Unlock()
	return f
}

// Downsample returns f box-filtered to stored resolution w x h, serving
// repeats from the cache. Same-size requests return f itself. The result
// is shared: callers must not mutate it.
func (c *Cache) Downsample(f *Frame, w, h int) *Frame {
	if w == f.W && h == f.H {
		return f
	}
	if c == nil || f.id == 0 {
		return f.Downsample(w, h)
	}
	return c.get(cacheKey{owner: f.id, a: w, b: h},
		func() *Frame { return f.Downsample(w, h) })
}

// Stats returns one consistent snapshot of all cache counters: every
// shard's hit/miss/eviction counts and byte/entry state are read together
// under that shard's lock, so the returned struct never mixes a hit count
// from one moment with a miss count from another (the race that separate
// atomic loads had).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	var s CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Evictions += sh.evictions
		s.Bytes += sh.bytes
		s.Entries += int64(len(sh.entries))
		sh.mu.Unlock()
	}
	return s
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) moveFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// DefaultCacheBytes is the default byte budget of the process-wide frame
// cache (the -cache-mb flag of the command-line tools overrides it).
const DefaultCacheBytes int64 = 64 << 20

// globalCache is the process-wide cache consulted by CachedDownsample and
// CachedSource. nil means caching is disabled.
var globalCache atomic.Pointer[Cache]

func init() {
	SetCacheBudget(DefaultCacheBytes)

	// Cache effectiveness surfaces as registry gauges, evaluated lazily at
	// snapshot time so the hot path pays nothing for them. All six values
	// derive from ONE GlobalCacheStats call per snapshot, so they are
	// mutually consistent — in particular cache.hit_rate is exactly the
	// rate implied by cache.hits and cache.misses. Hit/miss counts depend
	// on worker interleaving (two workers can race to miss the same key),
	// so these gauges are observational and excluded from determinism
	// comparisons.
	obs.Default.GaugeGroup(func() map[string]float64 {
		s := GlobalCacheStats()
		return map[string]float64{
			"cache.hits":      float64(s.Hits),
			"cache.misses":    float64(s.Misses),
			"cache.evictions": float64(s.Evictions),
			"cache.bytes":     float64(s.Bytes),
			"cache.entries":   float64(s.Entries),
			"cache.hit_rate":  s.HitRate(),
		}
	})
}

// SetCacheBudget replaces the process-wide frame cache with a fresh one of
// the given byte budget, dropping all cached entries and counters. A
// budget <= 0 disables caching entirely. Results of all cached operations
// are bit-identical at any budget, including zero.
func SetCacheBudget(bytes int64) {
	if bytes <= 0 {
		globalCache.Store(nil)
		return
	}
	globalCache.Store(NewCache(bytes))
}

// CacheEnabled reports whether the process-wide frame cache is active.
func CacheEnabled() bool { return globalCache.Load() != nil }

// GlobalCacheStats returns a snapshot of the process-wide cache counters
// (zeroes when caching is disabled).
func GlobalCacheStats() CacheStats { return globalCache.Load().Stats() }

// CachedDownsample returns f box-filtered to stored resolution w x h via
// the process-wide cache (computing directly when caching is disabled).
// Same-size requests return f itself. The result is shared and must be
// treated as read-only.
func CachedDownsample(f *Frame, w, h int) *Frame {
	if w == f.W && h == f.H {
		return f
	}
	return globalCache.Load().Downsample(f, w, h)
}

// CachedSource wraps a FrameSource, memoizing its frames in the
// process-wide cache. Sources that render or decode on demand (the
// simulator worlds, codec streams) produce a fresh buffer per Frame call;
// wrapping them gives repeated reads of the same clip — e.g. the tuner
// evaluating many configurations over one validation set — a stable frame
// identity, which in turn lets the downsample cache hit across reads.
// Frames served by a CachedSource are shared and must not be mutated.
type CachedSource struct {
	src FrameSource
	id  uint64
}

// NewCachedSource wraps src. The wrapper is cheap; caching obeys the
// process-wide budget and degrades to pass-through when disabled.
func NewCachedSource(src FrameSource) *CachedSource {
	return &CachedSource{src: src, id: frameIDs.Add(1)}
}

// Frame implements FrameSource.
func (s *CachedSource) Frame(idx int) *Frame {
	c := globalCache.Load()
	if c == nil {
		return s.src.Frame(idx)
	}
	return c.get(cacheKey{owner: s.id, a: idx, b: -1},
		func() *Frame { return s.src.Frame(idx) })
}

// Len implements FrameSource.
func (s *CachedSource) Len() int { return s.src.Len() }

// FPS implements FrameSource.
func (s *CachedSource) FPS() int { return s.src.FPS() }
