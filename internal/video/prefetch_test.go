package video

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"otif/internal/costmodel"
)

// prefetchCountingSource wraps a MemorySource, counting Frame calls atomically so
// tests can observe producer-goroutine activity.
type prefetchCountingSource struct {
	src   MemorySource
	calls atomic.Int64
}

func (c *prefetchCountingSource) Frame(idx int) *Frame {
	c.calls.Add(1)
	return c.src.Frame(idx)
}
func (c *prefetchCountingSource) Len() int { return c.src.Len() }
func (c *prefetchCountingSource) FPS() int { return c.src.FPS() }

func prefetchTestClip(frames int) *Clip {
	src := &MemorySource{Rate: 10}
	for i := 0; i < frames; i++ {
		f := NewFrame(8, 6, 32, 24)
		for j := range f.Pix {
			f.Pix[j] = uint8(i*31 + j)
		}
		src.Frames = append(src.Frames, f)
	}
	return &Clip{ID: 0, Source: src}
}

// readAll drains a reader, returning frames, indices and total cost.
func readAll(r *Reader) ([]*Frame, []int, float64) {
	var frames []*Frame
	var idxs []int
	acct := r.acct
	for {
		f, idx := r.Next()
		if f == nil {
			break
		}
		frames = append(frames, f)
		idxs = append(idxs, idx)
	}
	return frames, idxs, acct.Total()
}

func TestReaderPrefetchMatchesSync(t *testing.T) {
	old := PrefetchDepth()
	defer SetPrefetchDepth(old)
	clip := prefetchTestClip(23)
	for _, gap := range []int{1, 3, 7, 50} {
		SetPrefetchDepth(0)
		syncAcct := costmodel.NewAccountant()
		sf, si, sc := readAll(NewReader(clip, gap, 640, 360, syncAcct))

		for _, depth := range []int{1, 2, 5} {
			SetPrefetchDepth(depth)
			acct := costmodel.NewAccountant()
			r := NewReader(clip, gap, 640, 360, acct)
			pf, pi, pc := readAll(r)
			r.Close()
			if len(pf) != len(sf) {
				t.Fatalf("gap %d depth %d: %d frames, sync got %d", gap, depth, len(pf), len(sf))
			}
			for i := range pf {
				if pi[i] != si[i] {
					t.Fatalf("gap %d depth %d: index %d = %d, sync %d", gap, depth, i, pi[i], si[i])
				}
				if !bytes.Equal(pf[i].Pix, sf[i].Pix) {
					t.Fatalf("gap %d depth %d: frame %d pixels differ from sync", gap, depth, i)
				}
			}
			if pc != sc {
				t.Fatalf("gap %d depth %d: decode cost %v, sync %v", gap, depth, pc, sc)
			}
		}
	}
}

func TestReaderCloseCancelsProducer(t *testing.T) {
	old := PrefetchDepth()
	defer SetPrefetchDepth(old)
	SetPrefetchDepth(3)
	cs := &prefetchCountingSource{}
	for i := 0; i < 200; i++ {
		cs.src.Frames = append(cs.src.Frames, NewFrame(4, 4, 4, 4))
	}
	cs.src.Rate = 10
	r := NewReader(&Clip{Source: cs}, 1, 64, 64, costmodel.NewAccountant())
	if f, _ := r.Next(); f == nil {
		t.Fatal("first frame missing")
	}
	r.Close()
	r.Close() // idempotent
	// The producer must stop: after Close returns and any in-flight decode
	// finishes, the call count stays put.
	settle := cs.calls.Load()
	deadline := time.Now().Add(time.Second)
	for {
		time.Sleep(5 * time.Millisecond)
		now := cs.calls.Load()
		if now == settle {
			break
		}
		settle = now
		if time.Now().After(deadline) {
			t.Fatal("producer kept decoding after Close")
		}
	}
	if settle > 10 {
		t.Errorf("producer decoded %d frames for a depth-3 reader closed after one read", settle)
	}
}

func TestReaderContextCancelFallsBackToSync(t *testing.T) {
	old := PrefetchDepth()
	defer SetPrefetchDepth(old)
	clip := prefetchTestClip(17)

	SetPrefetchDepth(0)
	sf, _, sc := readAll(NewReader(clip, 2, 320, 180, costmodel.NewAccountant()))

	SetPrefetchDepth(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	acct := costmodel.NewAccountant()
	r := NewReaderContext(ctx, clip, 2, 320, 180, acct)
	defer r.Close()
	var got []*Frame
	for i := 0; ; i++ {
		f, _ := r.Next()
		if f == nil {
			break
		}
		got = append(got, f)
		if i == 2 {
			cancel() // producer stops; reader must continue synchronously
		}
	}
	if len(got) != len(sf) {
		t.Fatalf("read %d frames after mid-clip cancel, want %d", len(got), len(sf))
	}
	for i := range got {
		if !bytes.Equal(got[i].Pix, sf[i].Pix) {
			t.Fatalf("frame %d differs after mid-clip cancel", i)
		}
	}
	if acct.Total() != sc {
		t.Fatalf("decode cost %v after cancel, sync %v", acct.Total(), sc)
	}
}

func TestReaderDepthZeroNoGoroutine(t *testing.T) {
	old := PrefetchDepth()
	defer SetPrefetchDepth(old)
	SetPrefetchDepth(0)
	cs := &prefetchCountingSource{}
	cs.src.Frames = []*Frame{NewFrame(4, 4, 4, 4), NewFrame(4, 4, 4, 4)}
	cs.src.Rate = 10
	r := NewReader(&Clip{Source: cs}, 1, 64, 64, costmodel.NewAccountant())
	if cs.calls.Load() != 0 {
		t.Error("depth-0 reader decoded before Next")
	}
	r.Next()
	if cs.calls.Load() != 1 {
		t.Errorf("depth-0 reader decoded %d frames for one Next", cs.calls.Load())
	}
	r.Close() // no-op, must not panic
}

func TestSetPrefetchDepthClamps(t *testing.T) {
	old := PrefetchDepth()
	defer SetPrefetchDepth(old)
	SetPrefetchDepth(-5)
	if got := PrefetchDepth(); got != 0 {
		t.Errorf("negative depth stored as %d, want 0", got)
	}
	SetPrefetchDepth(7)
	if got := PrefetchDepth(); got != 7 {
		t.Errorf("depth = %d, want 7", got)
	}
}
