package video

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func cacheTestFrame(w, h int, fill uint8) *Frame {
	f := NewFrame(w, h, w*4, h*4)
	for i := range f.Pix {
		f.Pix[i] = fill + uint8(i%7)
	}
	return f
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(1 << 20)
	f := cacheTestFrame(64, 36, 10)
	a := c.Downsample(f, 32, 18)
	b := c.Downsample(f, 32, 18)
	if a != b {
		t.Error("repeated downsample should return the cached frame")
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", s.Hits, s.Misses)
	}
	if s.Entries != 1 {
		t.Errorf("entries = %d, want 1", s.Entries)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheResultsBitIdentical(t *testing.T) {
	c := NewCache(1 << 20)
	f := cacheTestFrame(64, 36, 42)
	want := f.Downsample(20, 12)
	got := c.Downsample(f, 20, 12)
	if !bytes.Equal(got.Pix, want.Pix) || got.W != want.W || got.H != want.H {
		t.Error("cached downsample differs from direct computation")
	}
	// And again from the cache.
	got2 := c.Downsample(f, 20, 12)
	if !bytes.Equal(got2.Pix, want.Pix) {
		t.Error("cache served a wrong frame on hit")
	}
}

func TestCacheSameSizeBypass(t *testing.T) {
	c := NewCache(1 << 20)
	f := cacheTestFrame(32, 32, 3)
	if got := c.Downsample(f, 32, 32); got != f {
		t.Error("same-size request should return the frame itself")
	}
	if s := c.Stats(); s.Hits+s.Misses != 0 {
		t.Error("same-size request should not touch the cache")
	}
}

func TestNilCacheComputes(t *testing.T) {
	var c *Cache
	f := cacheTestFrame(64, 36, 9)
	want := f.Downsample(16, 9)
	got := c.Downsample(f, 16, 9)
	if !bytes.Equal(got.Pix, want.Pix) {
		t.Error("nil cache must still compute correct results")
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zeroes", s)
	}
}

// TestCacheLRUEviction drives one shard directly with synthetic keys and
// checks least-recently-used entries fall out first.
func TestCacheLRUEviction(t *testing.T) {
	entryBytes := int64(100 + cacheEntryOverhead)
	// Budget for exactly 3 entries per shard.
	c := NewCache(3 * entryBytes * cacheShardCount)
	mk := func(i int) *Frame {
		f := NewFrame(10, 10, 40, 40) // len(Pix) = 100
		f.Pix[0] = uint8(i)
		return f
	}
	// Synthetic keys all landing in one shard: vary b, fix owner/a, filter
	// by shard index.
	shard0 := cacheKey{owner: 1, a: 0, b: 0}.shard()
	var keys []cacheKey
	for b := 0; len(keys) < 4; b++ {
		k := cacheKey{owner: 1, a: 0, b: b}
		if k.shard() == shard0 {
			keys = append(keys, k)
		}
	}
	for i, k := range keys[:3] {
		c.get(k, func() *Frame { return mk(i) })
	}
	// Touch keys[0] so keys[1] becomes least recently used.
	c.get(keys[0], func() *Frame { panic("should be cached") })
	// Inserting a 4th entry must evict exactly keys[1].
	c.get(keys[3], func() *Frame { return mk(3) })
	if got := c.Stats().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	sh := &c.shards[shard0]
	sh.mu.Lock()
	_, has1 := sh.entries[keys[1]]
	_, has0 := sh.entries[keys[0]]
	_, has2 := sh.entries[keys[2]]
	_, has3 := sh.entries[keys[3]]
	sh.mu.Unlock()
	if has1 {
		t.Error("least recently used entry survived eviction")
	}
	if !has0 || !has2 || !has3 {
		t.Error("recently used entries were evicted")
	}
}

func TestCacheByteBudget(t *testing.T) {
	budget := int64(8 << 10)
	c := NewCache(budget)
	for i := 0; i < 200; i++ {
		f := cacheTestFrame(40, 30, uint8(i))
		c.Downsample(f, 20, 15) // 300 B payload each, distinct owners
	}
	s := c.Stats()
	if s.Bytes > budget {
		t.Errorf("cache holds %d bytes, budget %d", s.Bytes, budget)
	}
	if s.Evictions == 0 {
		t.Error("expected evictions under a tight budget")
	}
}

func TestCacheOversizedEntryUncached(t *testing.T) {
	c := NewCache(16 * cacheShardCount) // perShard far below any frame
	f := cacheTestFrame(64, 36, 5)
	got := c.Downsample(f, 32, 18)
	want := f.Downsample(32, 18)
	if !bytes.Equal(got.Pix, want.Pix) {
		t.Error("oversized result must still be computed correctly")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("oversized entry was cached (%d entries)", s.Entries)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(4 << 20)
	frames := make([]*Frame, 8)
	for i := range frames {
		frames[i] = cacheTestFrame(64, 36, uint8(i*13))
	}
	want := make([][]uint8, len(frames))
	for i, f := range frames {
		want[i] = f.Downsample(16, 9).Pix
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := (g + iter) % len(frames)
				got := c.Downsample(frames[i], 16, 9)
				if !bytes.Equal(got.Pix, want[i]) {
					t.Errorf("goroutine %d iter %d: wrong pixels", g, iter)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Hits == 0 {
		t.Error("concurrent repeats should hit the cache")
	}
}

type countingSource struct {
	frames int
	calls  int
}

func (s *countingSource) Frame(idx int) *Frame {
	s.calls++
	f := NewFrame(8, 8, 32, 32)
	f.Pix[0] = uint8(idx)
	return f
}
func (s *countingSource) Len() int { return s.frames }
func (s *countingSource) FPS() int { return 10 }

func TestCachedSourceMemoizes(t *testing.T) {
	defer SetCacheBudget(DefaultCacheBytes)
	SetCacheBudget(1 << 20)

	src := &countingSource{frames: 5}
	cs := NewCachedSource(src)
	if cs.Len() != 5 || cs.FPS() != 10 {
		t.Fatal("CachedSource must proxy Len/FPS")
	}
	a := cs.Frame(2)
	b := cs.Frame(2)
	if src.calls != 1 {
		t.Errorf("underlying source called %d times, want 1", src.calls)
	}
	if a != b || a.Pix[0] != 2 {
		t.Error("CachedSource returned wrong or uncached frame")
	}

	// Disabled cache degrades to pass-through.
	SetCacheBudget(0)
	if CacheEnabled() {
		t.Fatal("cache should be disabled")
	}
	cs.Frame(2)
	cs.Frame(2)
	if src.calls != 3 {
		t.Errorf("disabled cache: underlying source called %d times, want 3", src.calls)
	}
}

func TestSetCacheBudgetResetsStats(t *testing.T) {
	defer SetCacheBudget(DefaultCacheBytes)
	SetCacheBudget(1 << 20)
	f := cacheTestFrame(64, 36, 1)
	CachedDownsample(f, 16, 9)
	if GlobalCacheStats().Misses != 1 {
		t.Fatalf("stats = %+v", GlobalCacheStats())
	}
	SetCacheBudget(1 << 20)
	if s := GlobalCacheStats(); s.Misses != 0 || s.Entries != 0 {
		t.Errorf("fresh cache should have empty stats, got %+v", s)
	}
}

func TestFrameIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		f := NewFrame(2, 2, 8, 8)
		if f.id == 0 || seen[f.id] {
			t.Fatalf("frame id %d reused or zero", f.id)
		}
		seen[f.id] = true
	}
}

func ExampleCacheStats_HitRate() {
	s := CacheStats{Hits: 3, Misses: 1}
	fmt.Println(s.HitRate())
	// Output: 0.75
}
