package video

import (
	"math"
	"testing"

	"otif/internal/costmodel"
)

func memClip(n, fps int) *Clip {
	frames := make([]*Frame, n)
	for i := range frames {
		frames[i] = NewFrame(8, 8, 8, 8)
		frames[i].Pix[0] = uint8(i)
	}
	return &Clip{Source: &MemorySource{Frames: frames, Rate: fps}}
}

func TestReaderVisitsEveryGapthFrame(t *testing.T) {
	clip := memClip(10, 10)
	acct := costmodel.NewAccountant()
	r := NewReader(clip, 3, 8, 8, acct)
	var visited []int
	for {
		f, idx := r.Next()
		if f == nil {
			break
		}
		visited = append(visited, idx)
		if f.Pix[0] != uint8(idx) {
			t.Errorf("frame %d content mismatch", idx)
		}
	}
	want := []int{0, 3, 6, 9}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
}

func TestReaderDecodeCostScalesWithGap(t *testing.T) {
	clip := memClip(32, 10)
	full := costmodel.NewAccountant()
	r := NewReader(clip, 1, 100, 100, full)
	for {
		if f, _ := r.Next(); f == nil {
			break
		}
	}
	sparse := costmodel.NewAccountant()
	r2 := NewReader(clip, 8, 100, 100, sparse)
	for {
		if f, _ := r2.Next(); f == nil {
			break
		}
	}
	if sparse.Get(costmodel.OpDecode) >= full.Get(costmodel.OpDecode) {
		t.Error("reduced-rate reading must decode cheaper")
	}
	// But not free: skipped frames still cost a fraction.
	perFrame := costmodel.DecodeCost(100, 100)
	if sparse.Get(costmodel.OpDecode) <= perFrame*4 {
		t.Error("skipped frames should still contribute partial decode cost")
	}
}

func TestReaderDecodeCostScalesWithResolution(t *testing.T) {
	clip := memClip(10, 10)
	hi := costmodel.NewAccountant()
	r := NewReader(clip, 1, 200, 200, hi)
	for {
		if f, _ := r.Next(); f == nil {
			break
		}
	}
	lo := costmodel.NewAccountant()
	r2 := NewReader(clip, 1, 100, 100, lo)
	for {
		if f, _ := r2.Next(); f == nil {
			break
		}
	}
	ratio := hi.Get(costmodel.OpDecode) / lo.Get(costmodel.OpDecode)
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("decode cost ratio = %v, want 4 (pixel count)", ratio)
	}
}

func TestReaderPanicsOnBadGap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReader(memClip(3, 10), 0, 8, 8, costmodel.NewAccountant())
}

func TestSetStats(t *testing.T) {
	s := &Set{Name: "test", Clips: []*Clip{memClip(10, 5), memClip(20, 5)}}
	if s.Frames() != 30 {
		t.Errorf("Frames = %d", s.Frames())
	}
	if s.Seconds() != 6 {
		t.Errorf("Seconds = %v", s.Seconds())
	}
}
