package video

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The toy codec stands in for H264 in OTIF's storage layer. It is a real,
// lossless inter-frame codec: each frame is split into 16x16 blocks; blocks
// identical to the previous frame are skipped, and changed blocks are
// delta-coded against the previous frame and run-length encoded. On the
// simulator's mostly static camera footage this achieves large compression
// ratios, and decode cost genuinely scales with the amount of motion —
// mirroring the properties of the paper's storage format that matter to
// the evaluation (decode becomes a bottleneck once inference is cheap).

const codecBlock = 16

// codecMagic identifies an encoded clip stream.
var codecMagic = [4]byte{'O', 'T', 'V', '1'}

// EncodeClip encodes a sequence of equally sized frames.
func EncodeClip(frames []*Frame) ([]byte, error) {
	if len(frames) == 0 {
		return nil, errors.New("video: empty clip")
	}
	w, h := frames[0].W, frames[0].H
	buf := make([]byte, 0, w*h/4)
	buf = append(buf, codecMagic[:]...)
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(w))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(h))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(frames[0].NomW))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(frames[0].NomH))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(frames)))
	buf = append(buf, hdr[:]...)

	var prev *Frame
	for i, f := range frames {
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("video: frame %d size %dx%d != %dx%d", i, f.W, f.H, w, h)
		}
		buf = encodeFrame(buf, f, prev)
		prev = f
	}
	return buf, nil
}

func encodeFrame(buf []byte, f, prev *Frame) []byte {
	bw := (f.W + codecBlock - 1) / codecBlock
	bh := (f.H + codecBlock - 1) / codecBlock
	var changed []uint32
	var payload []byte
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			if prev != nil && blockEqual(f, prev, bx, by) {
				continue
			}
			changed = append(changed, uint32(by*bw+bx))
			payload = appendBlockDelta(payload, f, prev, bx, by)
		}
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(changed)))
	buf = append(buf, n[:]...)
	for _, c := range changed {
		binary.LittleEndian.PutUint32(n[:], c)
		buf = append(buf, n[:]...)
	}
	binary.LittleEndian.PutUint32(n[:], uint32(len(payload)))
	buf = append(buf, n[:]...)
	return append(buf, payload...)
}

func blockEqual(f, prev *Frame, bx, by int) bool {
	x0, y0 := bx*codecBlock, by*codecBlock
	for y := y0; y < y0+codecBlock && y < f.H; y++ {
		row := y * f.W
		x1 := x0 + codecBlock
		if x1 > f.W {
			x1 = f.W
		}
		for x := x0; x < x1; x++ {
			if f.Pix[row+x] != prev.Pix[row+x] {
				return false
			}
		}
	}
	return true
}

// appendBlockDelta run-length encodes the block's pixels as (count, delta)
// pairs, where delta is the difference from the previous frame (or the raw
// value for the first frame).
func appendBlockDelta(payload []byte, f, prev *Frame, bx, by int) []byte {
	x0, y0 := bx*codecBlock, by*codecBlock
	var vals []uint8
	for y := y0; y < y0+codecBlock && y < f.H; y++ {
		row := y * f.W
		x1 := x0 + codecBlock
		if x1 > f.W {
			x1 = f.W
		}
		for x := x0; x < x1; x++ {
			v := f.Pix[row+x]
			if prev != nil {
				v = v - prev.Pix[row+x] // wraps mod 256; decode adds back
			}
			vals = append(vals, v)
		}
	}
	for i := 0; i < len(vals); {
		j := i
		for j < len(vals) && j-i < 255 && vals[j] == vals[i] {
			j++
		}
		payload = append(payload, uint8(j-i), vals[i])
		i = j
	}
	// Block terminator: a zero-length run.
	return append(payload, 0, 0)
}

// DecodeClip decodes a stream produced by EncodeClip.
func DecodeClip(data []byte) ([]*Frame, error) {
	if len(data) < 24 || [4]byte(data[:4]) != codecMagic {
		return nil, errors.New("video: bad clip header")
	}
	w := int(binary.LittleEndian.Uint32(data[4:]))
	h := int(binary.LittleEndian.Uint32(data[8:]))
	nomW := int(binary.LittleEndian.Uint32(data[12:]))
	nomH := int(binary.LittleEndian.Uint32(data[16:]))
	count := int(binary.LittleEndian.Uint32(data[20:]))
	if w <= 0 || h <= 0 || count <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("video: implausible clip %dx%d x%d", w, h, count)
	}
	pos := 24
	frames := make([]*Frame, 0, count)
	var prev *Frame
	for i := 0; i < count; i++ {
		f := NewFrame(w, h, nomW, nomH)
		if prev != nil {
			copy(f.Pix, prev.Pix)
		}
		var err error
		pos, err = decodeFrame(data, pos, f, prev)
		if err != nil {
			return nil, fmt.Errorf("video: frame %d: %w", i, err)
		}
		frames = append(frames, f)
		prev = f
	}
	return frames, nil
}

func decodeFrame(data []byte, pos int, f, prev *Frame) (int, error) {
	if pos+4 > len(data) {
		return 0, errors.New("truncated block count")
	}
	nChanged := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	bw := (f.W + codecBlock - 1) / codecBlock
	bh := (f.H + codecBlock - 1) / codecBlock
	if nChanged > bw*bh {
		return 0, errors.New("block count exceeds grid")
	}
	changed := make([]int, nChanged)
	for i := range changed {
		if pos+4 > len(data) {
			return 0, errors.New("truncated block index")
		}
		changed[i] = int(binary.LittleEndian.Uint32(data[pos:]))
		if changed[i] >= bw*bh {
			return 0, errors.New("block index out of range")
		}
		pos += 4
	}
	if pos+4 > len(data) {
		return 0, errors.New("truncated payload length")
	}
	plen := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if pos+plen > len(data) {
		return 0, errors.New("truncated payload")
	}
	payload := data[pos : pos+plen]
	pos += plen

	p := 0
	for _, blk := range changed {
		bx, by := blk%bw, blk/bw
		x0, y0 := bx*codecBlock, by*codecBlock
		// Gather target pixel offsets in block scan order.
		var offs []int
		for y := y0; y < y0+codecBlock && y < f.H; y++ {
			x1 := x0 + codecBlock
			if x1 > f.W {
				x1 = f.W
			}
			for x := x0; x < x1; x++ {
				offs = append(offs, y*f.W+x)
			}
		}
		idx := 0
		for {
			if p+2 > len(payload) {
				return 0, errors.New("truncated run")
			}
			run, val := int(payload[p]), payload[p+1]
			p += 2
			if run == 0 {
				break // block terminator
			}
			for k := 0; k < run; k++ {
				if idx >= len(offs) {
					return 0, errors.New("run overflows block")
				}
				off := offs[idx]
				if prev != nil {
					f.Pix[off] = prev.Pix[off] + val
				} else {
					f.Pix[off] = val
				}
				idx++
			}
		}
		if idx != len(offs) {
			return 0, errors.New("block underfilled")
		}
	}
	return pos, nil
}
