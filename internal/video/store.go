package video

import (
	"fmt"
	"sync"
)

// EncodedSource is a FrameSource backed by a codec bitstream: frames are
// decoded on first access and cached. It is how a deployment would store
// sampled clips on disk (the paper stores clips as H264 mp4 on a local
// SSD); the simulator datasets use on-demand rendering instead because it
// is cheaper, but both satisfy the same FrameSource contract.
type EncodedSource struct {
	data []byte
	fps  int

	mu     sync.Mutex
	frames []*Frame // decoded lazily, all at once (GOP semantics)
}

// NewEncodedSource encodes the frames once and returns a source that
// serves them by decoding the bitstream.
func NewEncodedSource(frames []*Frame, fps int) (*EncodedSource, error) {
	data, err := EncodeClip(frames)
	if err != nil {
		return nil, err
	}
	return &EncodedSource{data: data, fps: fps, frames: make([]*Frame, len(frames))}, nil
}

// FromEncoded wraps an existing bitstream (e.g. read from disk).
func FromEncoded(data []byte, fps int) (*EncodedSource, error) {
	// Validate eagerly so corrupt clips fail at open time, not mid-scan.
	frames, err := DecodeClip(data)
	if err != nil {
		return nil, fmt.Errorf("video: invalid clip: %w", err)
	}
	return &EncodedSource{data: data, fps: fps, frames: frames}, nil
}

// Bytes returns the encoded bitstream (for persisting the clip).
func (s *EncodedSource) Bytes() []byte { return s.data }

// Frame implements FrameSource. The codec is inter-frame, so the first
// access decodes the whole clip; subsequent accesses are cache hits.
func (s *EncodedSource) Frame(idx int) *Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < 0 || idx >= len(s.frames) {
		panic(fmt.Sprintf("video: frame %d out of range [0,%d)", idx, len(s.frames)))
	}
	if s.frames[idx] == nil {
		decoded, err := DecodeClip(s.data)
		if err != nil {
			// The stream was validated or produced by EncodeClip;
			// corruption here is a programming error.
			panic(fmt.Sprintf("video: decode failed: %v", err))
		}
		copy(s.frames, decoded)
	}
	return s.frames[idx]
}

// Len implements FrameSource.
func (s *EncodedSource) Len() int { return len(s.frames) }

// FPS implements FrameSource.
func (s *EncodedSource) FPS() int { return s.fps }
