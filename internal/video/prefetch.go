package video

import (
	"context"
	"sync/atomic"

	"otif/internal/obs"
)

// This file implements the decode-ahead pipeline: a Reader can run its
// frame decoding in a producer goroutine that stays a bounded number of
// frames ahead of the consumer, overlapping decode (frame synthesis or
// codec work) with downstream detection and tracking. The producer walks
// exactly the sampled index sequence the synchronous path would, and all
// accounting — decode cost, the video.frames_decoded counter — happens on
// the consumer side in consumption order, so results and metrics are
// bit-identical with prefetching on, off, or cancelled mid-clip.

// DefaultPrefetchDepth is the default decode-ahead depth: how many decoded
// frames a reader's producer may run ahead of the consumer. Depth 0
// disables prefetching (fully synchronous decode).
const DefaultPrefetchDepth = 2

// prefetchDepth is the process-wide decode-ahead depth (the -prefetch flag
// of the command-line tools overrides it).
var prefetchDepth atomic.Int64

func init() { prefetchDepth.Store(DefaultPrefetchDepth) }

// Prefetch effectiveness counters: frames served from the decode-ahead
// channel vs. decoded synchronously after the producer stopped early.
var (
	metPrefetchServed   = obs.Default.Counter("video.prefetch.served")
	metPrefetchFallback = obs.Default.Counter("video.prefetch.fallback")
)

// SetPrefetchDepth sets the process-wide decode-ahead depth for readers
// created afterwards. Depth <= 0 disables prefetching. Pipeline results
// are bit-identical at any depth.
func SetPrefetchDepth(k int) {
	if k < 0 {
		k = 0
	}
	prefetchDepth.Store(int64(k))
}

// PrefetchDepth returns the process-wide decode-ahead depth.
func PrefetchDepth() int { return int(prefetchDepth.Load()) }

// prefetched is one decoded frame in flight from producer to consumer.
type prefetched struct {
	f   *Frame
	idx int
}

// startPrefetch launches the reader's producer goroutine with the given
// channel depth. The producer decodes the same index sequence Next will
// request — start, start+gap, ... — and blocks once depth frames are
// waiting. It exits when the clip ends or ctx is cancelled; either way it
// closes the channel, and the consumer falls back to synchronous decode
// for any frames the producer did not deliver.
func (r *Reader) startPrefetch(parent context.Context, depth int) {
	ctx, cancel := context.WithCancel(parent)
	r.cancel = cancel
	ch := make(chan prefetched, depth)
	r.ch = ch
	clip, gap, start := r.clip, r.gap, r.next
	go func() {
		defer close(ch)
		for idx := start; idx < clip.Len(); idx += gap {
			if ctx.Err() != nil {
				return
			}
			f := clip.Frame(idx)
			select {
			case ch <- prefetched{f: f, idx: idx}:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// fetch returns frame idx, preferring the decode-ahead channel. The
// producer emits exactly the consumer's index sequence, so an open channel
// always yields the requested frame next; a closed channel (clip done or
// cancelled) switches the reader to synchronous decode permanently.
func (r *Reader) fetch(idx int) *Frame {
	if r.ch != nil {
		if p, ok := <-r.ch; ok && p.idx == idx {
			metPrefetchServed.Inc()
			return p.f
		}
		// Closed (or, defensively, out of sequence): decode synchronously
		// from here on.
		r.ch = nil
		metPrefetchFallback.Inc()
	}
	return r.clip.Frame(idx)
}

// Close releases the reader's decode-ahead resources: it cancels the
// producer goroutine and drains any frames already buffered so a pending
// send can complete. Close is idempotent and safe on readers created at
// depth 0. Readers that are read to end of clip do not strictly require
// Close (the producer exits on its own), but callers that may stop early
// must call it to avoid leaking the producer.
func (r *Reader) Close() {
	if r.cancel != nil {
		r.cancel()
		r.cancel = nil
	}
	if r.ch != nil {
		for range r.ch {
		}
		r.ch = nil
	}
}
