// Package video provides the video substrate for OTIF: the greyscale Frame
// type with the resampling and cropping operations the detectors and proxy
// models need, a toy block-based codec that stands in for H264 (so that
// clip storage and decode cost are grounded in real code), and clip
// containers for the sampled training/validation/test sets.
//
// Frames carry two coordinate systems. All geometry in OTIF (detections,
// tracks, queries) lives in *nominal* coordinates — the dataset's advertised
// resolution, e.g. 1280x720. To keep the simulator tractable the pixel
// buffers are stored at a smaller *simulation* resolution; Frame.NomW/NomH
// record the nominal size and the Scale methods convert between the two.
// The cost model always charges for nominal pixels, so simulated runtimes
// are unaffected by the reduced storage resolution.
package video

import (
	"fmt"
	"math"
	"sync/atomic"

	"otif/internal/geom"
)

// Frame is a greyscale image with pixel values in [0, 255].
type Frame struct {
	W, H       int     // stored (simulation) resolution
	NomW, NomH int     // nominal resolution used for geometry and cost
	Pix        []uint8 // row-major, len W*H

	// id is a process-unique identity assigned at allocation, used by the
	// downsample cache to key derived buffers without pinning this frame.
	// Ids are never reused, so a stale cache entry can go unreferenced but
	// can never be wrongly returned for a different frame.
	id uint64

	// stats memoizes SharedMeanStd. Producers build a frame's pixels and
	// then publish it read-only (the shared-frame contract the downsample
	// cache already relies on), so the first SharedMeanStd call fixes the
	// value for the frame's lifetime. The detector and proxy models take
	// full-frame stats of the same cached downsample and background every
	// processed frame; the memo makes the repeat calls O(1). Racing first
	// calls compute identical values (a pure function of Pix), so
	// last-write-wins is safe.
	stats atomic.Pointer[frameStats]
}

type frameStats struct{ mean, std float64 }

// frameIDs issues process-unique frame identities; see Frame.id.
var frameIDs atomic.Uint64

// NewFrame allocates a zeroed frame at stored resolution w x h with the
// given nominal resolution.
func NewFrame(w, h, nomW, nomH int) *Frame {
	return &Frame{W: w, H: h, NomW: nomW, NomH: nomH,
		Pix: make([]uint8, w*h), id: frameIDs.Add(1)}
}

// At returns the pixel at stored coordinates (x, y), clamping out-of-range
// coordinates to the frame border.
func (f *Frame) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	}
	if y < 0 {
		y = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// Set writes the pixel at stored coordinates (x, y); out-of-range writes
// are ignored.
func (f *Frame) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= f.W || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = v
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := NewFrame(f.W, f.H, f.NomW, f.NomH)
	copy(g.Pix, f.Pix)
	return g
}

// Bounds returns the frame bounds in nominal coordinates.
func (f *Frame) Bounds() geom.Rect {
	return geom.Rect{W: float64(f.NomW), H: float64(f.NomH)}
}

// ScaleToStored converts a nominal-coordinate rectangle to stored pixels.
func (f *Frame) ScaleToStored(r geom.Rect) geom.Rect {
	sx := float64(f.W) / float64(f.NomW)
	sy := float64(f.H) / float64(f.NomH)
	return geom.Rect{X: r.X * sx, Y: r.Y * sy, W: r.W * sx, H: r.H * sy}
}

// ScaleToNominal converts a stored-pixel rectangle to nominal coordinates.
func (f *Frame) ScaleToNominal(r geom.Rect) geom.Rect {
	sx := float64(f.NomW) / float64(f.W)
	sy := float64(f.NomH) / float64(f.H)
	return geom.Rect{X: r.X * sx, Y: r.Y * sy, W: r.W * sx, H: r.H * sy}
}

// Downsample returns the frame box-filtered to stored resolution w x h.
// The nominal resolution is preserved, so geometry remains comparable
// across resolutions. Upsampling requests are served by nearest-neighbor.
func (f *Frame) Downsample(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("video: invalid downsample target %dx%d", w, h))
	}
	if w == f.W && h == f.H {
		return f.Clone()
	}
	out := NewFrame(w, h, f.NomW, f.NomH)
	for y := 0; y < h; y++ {
		y0 := y * f.H / h
		y1 := (y + 1) * f.H / h
		if y1 <= y0 {
			y1 = y0 + 1
		}
		for x := 0; x < w; x++ {
			x0 := x * f.W / w
			x1 := (x + 1) * f.W / w
			if x1 <= x0 {
				x1 = x0 + 1
			}
			var sum, n int
			for yy := y0; yy < y1 && yy < f.H; yy++ {
				row := yy * f.W
				for xx := x0; xx < x1 && xx < f.W; xx++ {
					sum += int(f.Pix[row+xx])
					n++
				}
			}
			if n > 0 {
				out.Pix[y*w+x] = uint8(sum / n)
			}
		}
	}
	return out
}

// Crop returns the sub-frame covering the given nominal-coordinate
// rectangle, clipped to the frame. The crop keeps the same pixel density
// and its nominal size matches the (clipped) requested region.
func (f *Frame) Crop(r geom.Rect) *Frame {
	r = r.Clip(f.Bounds())
	s := f.ScaleToStored(r)
	x0, y0 := int(s.X), int(s.Y)
	x1, y1 := int(s.MaxX()+0.5), int(s.MaxY()+0.5)
	if x1 <= x0 {
		x1 = x0 + 1
	}
	if y1 <= y0 {
		y1 = y0 + 1
	}
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	w, h := x1-x0, y1-y0
	out := NewFrame(w, h, int(r.W+0.5), int(r.H+0.5))
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], f.Pix[(y0+y)*f.W+x0:(y0+y)*f.W+x1])
	}
	return out
}

// SharedMeanStd returns the full-frame mean and standard deviation,
// memoized on the frame. It is for *published* frames — ones already
// shared read-only under the cache's contract (cached downsamples, the
// background model's planes). The first call fixes the result for the
// frame's lifetime; use MeanStd on frames that may still be mutated.
func (f *Frame) SharedMeanStd() (mean, std float64) {
	if s := f.stats.Load(); s != nil {
		return s.mean, s.std
	}
	mean, std = f.MeanStd(geom.Rect{})
	f.stats.Store(&frameStats{mean: mean, std: std})
	return mean, std
}

// MeanStd returns the mean and standard deviation of pixel values inside
// the nominal-coordinate rectangle r (whole frame if r is empty).
func (f *Frame) MeanStd(r geom.Rect) (mean, std float64) {
	var x0, y0, x1, y1 int
	if r.Empty() {
		x0, y0, x1, y1 = 0, 0, f.W, f.H
	} else {
		s := f.ScaleToStored(r.Clip(f.Bounds()))
		x0, y0 = int(s.X), int(s.Y)
		x1, y1 = int(s.MaxX()+0.5), int(s.MaxY()+0.5)
		if x1 <= x0 {
			x1 = x0 + 1
		}
		if y1 <= y0 {
			y1 = y0 + 1
		}
		if x1 > f.W {
			x1 = f.W
		}
		if y1 > f.H {
			y1 = f.H
		}
	}
	var sum, sum2 float64
	n := 0
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			v := float64(f.Pix[y*f.W+x])
			sum += v
			sum2 += v * v
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	mean = sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}
