package video

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randClip(rng *rand.Rand, w, h, n int, motion bool) []*Frame {
	frames := make([]*Frame, n)
	base := make([]uint8, w*h)
	for i := range base {
		base[i] = uint8(rng.Intn(256))
	}
	for fi := range frames {
		f := NewFrame(w, h, w*2, h*2)
		copy(f.Pix, base)
		if motion && fi > 0 && w > 4 {
			// Perturb a moving square.
			x0 := (fi * 3) % (w - 4)
			for y := 2; y < 6 && y < h; y++ {
				for x := x0; x < x0+4; x++ {
					f.Pix[y*w+x] = uint8(rng.Intn(256))
				}
			}
		}
		frames[fi] = f
	}
	return frames
}

func framesEqual(a, b []*Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].W != b[i].W || a[i].H != b[i].H ||
			a[i].NomW != b[i].NomW || a[i].NomH != b[i].NomH {
			return false
		}
		for j := range a[i].Pix {
			if a[i].Pix[j] != b[i].Pix[j] {
				return false
			}
		}
	}
	return true
}

func TestCodecRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	frames := randClip(rng, 48, 32, 10, true)
	data, err := EncodeClip(frames)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeClip(data)
	if err != nil {
		t.Fatal(err)
	}
	if !framesEqual(frames, got) {
		t.Error("roundtrip mismatch")
	}
}

func TestCodecRoundtripProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := int(wRaw%60) + 4
		h := int(hRaw%40) + 4
		n := int(nRaw%6) + 1
		frames := randClip(rng, w, h, n, seed%2 == 0)
		data, err := EncodeClip(frames)
		if err != nil {
			return false
		}
		got, err := DecodeClip(data)
		if err != nil {
			return false
		}
		return framesEqual(frames, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCodecCompressesStaticVideo(t *testing.T) {
	// A static clip compresses far below raw size: only the first frame
	// carries payload.
	w, h, n := 64, 48, 20
	frames := make([]*Frame, n)
	f0 := NewFrame(w, h, w, h)
	for i := range f0.Pix {
		f0.Pix[i] = uint8(i % 200)
	}
	for i := range frames {
		frames[i] = f0.Clone()
	}
	data, err := EncodeClip(frames)
	if err != nil {
		t.Fatal(err)
	}
	raw := w * h * n
	if len(data) > raw/3 {
		t.Errorf("static clip compressed to %d bytes, raw %d — expected much smaller", len(data), raw)
	}
}

func TestCodecRejectsCorruptHeader(t *testing.T) {
	if _, err := DecodeClip([]byte("nope")); err == nil {
		t.Error("short input should fail")
	}
	if _, err := DecodeClip(make([]byte, 64)); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestCodecRejectsTruncatedPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	frames := randClip(rng, 32, 32, 3, true)
	data, err := EncodeClip(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) / 2, len(data) - 3, 25} {
		if _, err := DecodeClip(data[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestCodecEmptyClip(t *testing.T) {
	if _, err := EncodeClip(nil); err == nil {
		t.Error("empty clip should fail to encode")
	}
}

func TestCodecMismatchedSizes(t *testing.T) {
	a := NewFrame(8, 8, 8, 8)
	b := NewFrame(4, 4, 4, 4)
	if _, err := EncodeClip([]*Frame{a, b}); err == nil {
		t.Error("mismatched frame sizes should fail")
	}
}
