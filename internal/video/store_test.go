package video

import (
	"math/rand"
	"testing"
)

func TestEncodedSourceRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	frames := randClip(rng, 48, 32, 6, true)
	src, err := NewEncodedSource(frames, 15)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 6 || src.FPS() != 15 {
		t.Fatalf("Len/FPS = %d/%d", src.Len(), src.FPS())
	}
	// Access out of order; content must match the originals.
	for _, idx := range []int{3, 0, 5, 1} {
		got := src.Frame(idx)
		want := frames[idx]
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("frame %d pixel %d mismatch", idx, i)
			}
		}
	}
}

func TestEncodedSourceAsClip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	frames := randClip(rng, 32, 32, 4, false)
	src, err := NewEncodedSource(frames, 10)
	if err != nil {
		t.Fatal(err)
	}
	clip := &Clip{Source: src}
	if clip.Len() != 4 {
		t.Error("clip length wrong")
	}
	if clip.Frame(2) == nil {
		t.Error("nil frame")
	}
}

func TestFromEncodedValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	frames := randClip(rng, 32, 32, 3, true)
	src, err := NewEncodedSource(frames, 10)
	if err != nil {
		t.Fatal(err)
	}
	re, err := FromEncoded(src.Bytes(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 3 {
		t.Error("reopened clip has wrong length")
	}
	if _, err := FromEncoded([]byte("garbage"), 10); err == nil {
		t.Error("corrupt stream must be rejected at open")
	}
}

func TestEncodedSourcePanicsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, err := NewEncodedSource(randClip(rng, 16, 16, 2, false), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	src.Frame(9)
}
