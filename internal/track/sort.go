package track

import (
	"math"
	"sort"

	"otif/internal/detect"
	"otif/internal/geom"
)

// SORT is the heuristic Simple Online and Realtime Tracking baseline
// (Bewley et al. 2016) used by OTIF's best-accuracy configuration
// theta_best before the learned trackers are trained (§3.3). It predicts
// each active track's box forward with a constant-velocity model and
// matches predictions to new detections by IoU with a Hungarian
// assignment.
type SORT struct {
	// MinIoU is the minimum predicted-box IoU for a valid match.
	MinIoU float64
	// MaxMisses is the number of consecutive processed frames a track may
	// go unmatched before it is terminated.
	MaxMisses int

	active []*sortTrack
	done   []*Track

	// scratch makes each Update round allocation-free; it also means a
	// tracker instance must be driven by a single goroutine. It is drawn
	// from the scratch pool on first Update and released by Finish.
	scratch *matchScratch
}

type sortTrack struct {
	track  Track
	vx, vy float64 // nominal px per frame
	misses int
}

// NewSORT returns a SORT tracker with the standard defaults.
func NewSORT() *SORT { return &SORT{MinIoU: 0.05, MaxMisses: 2} }

// predict returns the track's box extrapolated gapFrames ahead.
func (s *sortTrack) predict(gapFrames int) geom.Rect {
	last := s.track.Dets[len(s.track.Dets)-1].Box
	dt := float64(gapFrames)
	return last.Translate(s.vx*dt, s.vy*dt)
}

// scratchRef returns the tracker's scratch, acquiring one from the pool
// on first use.
func (s *SORT) scratchRef() *matchScratch {
	if s.scratch == nil {
		s.scratch = getScratch()
	}
	return s.scratch
}

// Update implements Tracker.
func (s *SORT) Update(ctx *FrameContext, dets []detect.Detection) {
	metUpdates.Inc()
	if len(s.active) == 0 {
		for _, d := range dets {
			s.start(d)
		}
		return
	}
	sc := s.scratchRef()
	const blocked = 1e6
	cost := growMatrix(&sc.cost, &sc.costBuf, len(s.active), len(dets))
	for i, tr := range s.active {
		pred := tr.predict(ctx.GapFrames)
		for j, d := range dets {
			iou := pred.IoU(d.Box)
			if iou < s.MinIoU {
				cost[i][j] = blocked
			} else {
				cost[i][j] = 1 - iou
			}
		}
	}
	assign := sc.assign.AssignWithThreshold(cost, 1-s.MinIoU, blocked)

	usedDet := grow(&sc.usedDet, len(dets))
	clear(usedDet)
	active := s.active
	remaining := s.active[:0] // in-place filter; reads stay ahead of writes
	for i, tr := range active {
		j := assign[i]
		if j < 0 {
			tr.misses++
			if tr.misses > s.MaxMisses {
				s.done = append(s.done, cloneTrack(&tr.track))
			} else {
				remaining = append(remaining, tr)
			}
			continue
		}
		usedDet[j] = true
		tr.absorb(dets[j], ctx.GapFrames)
		remaining = append(remaining, tr)
	}
	// Drop dangling pointers in the filtered-out suffix so dead tracks can
	// be collected.
	for i := len(remaining); i < len(active); i++ {
		active[i] = nil
	}
	s.active = remaining
	for j, d := range dets {
		if !usedDet[j] {
			s.start(d)
		}
	}
}

func (s *sortTrack) absorb(d detect.Detection, gapFrames int) {
	last := s.track.Dets[len(s.track.Dets)-1]
	dt := math.Max(1, float64(d.FrameIdx-last.FrameIdx))
	// Exponentially smoothed velocity.
	nvx := (d.Box.X - last.Box.X) / dt
	nvy := (d.Box.Y - last.Box.Y) / dt
	if len(s.track.Dets) == 1 {
		s.vx, s.vy = nvx, nvy
	} else {
		s.vx = 0.6*s.vx + 0.4*nvx
		s.vy = 0.6*s.vy + 0.4*nvy
	}
	s.track.Dets = append(s.track.Dets, d)
	s.misses = 0
}

func (s *SORT) start(d detect.Detection) {
	s.active = append(s.active, &sortTrack{track: Track{Dets: []detect.Detection{d}}})
}

// Finish implements Tracker.
func (s *SORT) Finish() []*Track {
	for _, tr := range s.active {
		s.done = append(s.done, cloneTrack(&tr.track))
	}
	s.active = nil
	out := s.done
	s.done = nil
	putScratch(s.scratch)
	s.scratch = nil
	sort.Slice(out, func(i, j int) bool { return out[i].FirstFrame() < out[j].FirstFrame() })
	for i, t := range out {
		t.ID = i
		t.Category = t.MajorityCategory()
	}
	return out
}

func cloneTrack(t *Track) *Track {
	c := &Track{ID: t.ID, Category: t.Category, Dets: make([]detect.Detection, len(t.Dets))}
	copy(c.Dets, t.Dets)
	return c
}
