package track

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce finds the optimal assignment by exhaustive permutation search
// (rows <= cols required).
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	m := len(cost[0])
	cols := make([]int, m)
	for i := range cols {
		cols[i] = i
	}
	best := math.Inf(1)
	var permute func(chosen []int, used []bool)
	permute = func(chosen []int, used []bool) {
		if len(chosen) == n {
			var total float64
			for i, j := range chosen {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			permute(append(chosen, j), used)
			used[j] = false
		}
	}
	permute(nil, make([]bool, m))
	return best
}

func assignCost(cost [][]float64, assign []int) float64 {
	var total float64
	for i, j := range assign {
		if j >= 0 {
			total += cost[i][j]
		}
	}
	return total
}

func TestHungarianKnownCase(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := Hungarian(cost)
	if got := assignCost(cost, assign); got != 5 {
		t.Errorf("cost = %v, want 5 (assignment %v)", got, assign)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if Hungarian(nil) != nil {
		t.Error("empty matrix should return nil")
	}
}

func TestHungarianRectangularTall(t *testing.T) {
	// More rows than columns: some rows stay unassigned.
	cost := [][]float64{
		{1},
		{2},
		{3},
	}
	assign := Hungarian(cost)
	assigned := 0
	for _, j := range assign {
		if j >= 0 {
			assigned++
		}
	}
	if assigned != 1 {
		t.Errorf("assigned %d rows, want 1", assigned)
	}
	if assign[0] != 0 {
		t.Errorf("cheapest row should win: %v", assign)
	}
}

func TestHungarianRectangularWide(t *testing.T) {
	cost := [][]float64{
		{5, 1, 9},
	}
	assign := Hungarian(cost)
	if assign[0] != 1 {
		t.Errorf("assign = %v, want column 1", assign)
	}
}

func TestHungarianOptimalProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%5) + 1
		m := int(mRaw%5) + 1
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		assign := Hungarian(cost)
		// Validity: assigned columns unique, full assignment of min(n,m).
		seen := map[int]bool{}
		assigned := 0
		for _, j := range assign {
			if j < 0 {
				continue
			}
			if seen[j] {
				return false
			}
			seen[j] = true
			assigned++
		}
		if assigned != minInt(n, m) {
			return false
		}
		if n <= m {
			want := bruteForce(cost)
			return math.Abs(assignCost(cost, assign)-want) < 1e-9
		}
		// Transposed brute force.
		tr := make([][]float64, m)
		for j := range tr {
			tr[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				tr[j][i] = cost[i][j]
			}
		}
		want := bruteForce(tr)
		return math.Abs(assignCost(cost, assign)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAssignWithThreshold(t *testing.T) {
	const blocked = 1e6
	cost := [][]float64{
		{0.1, blocked},
		{blocked, 3.0},
	}
	assign := AssignWithThreshold(cost, 1.0, blocked)
	if assign[0] != 0 {
		t.Errorf("row 0 should match column 0: %v", assign)
	}
	if assign[1] != -1 {
		t.Errorf("row 1 cost exceeds threshold, should be unassigned: %v", assign)
	}
}
