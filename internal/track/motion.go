package track

import (
	"otif/internal/detect"
	"otif/internal/nn"
)

// MotionDim is the dimensionality of the motion-delta features appended to
// the matching network's input. The recurrent tracker's track-level
// representation includes a constant-velocity prediction of where the
// object should be at the candidate detection's timestamp; the matching
// network scores how well the candidate agrees with that prediction. This
// is the multi-frame motion cue the pairwise (Miris-style) matcher cannot
// use, and the reason the recurrent tracker wins at large sampling gaps
// (§3.4).
const MotionDim = 5

// MotionFeatures computes the motion-delta features between a track prefix
// (its recent detections) and a candidate detection: the residual between
// the velocity-predicted center and the candidate center, the size change,
// and the IoU of the velocity-predicted box with the candidate box.
func MotionFeatures(prefix []detect.Detection, cand detect.Detection, nomW, nomH int) nn.Vec {
	return nn.Vec(AppendMotionFeatures(make([]float64, 0, MotionDim), prefix, cand, nomW, nomH))
}

// AppendMotionFeatures appends the MotionDim motion-delta features to dst
// and returns the extended slice; with sufficient capacity it allocates
// nothing. Values are identical to MotionFeatures'.
func AppendMotionFeatures(dst []float64, prefix []detect.Detection, cand detect.Detection, nomW, nomH int) []float64 {
	w := float64(nomW)
	h := float64(nomH)
	last := prefix[len(prefix)-1]
	vx, vy := 0.0, 0.0 // nominal px per frame
	if len(prefix) >= 2 {
		prev := prefix[len(prefix)-2]
		dt := float64(last.FrameIdx - prev.FrameIdx)
		if dt > 0 {
			d := last.Box.Center().Sub(prev.Box.Center())
			vx, vy = d.X/dt, d.Y/dt
		}
	}
	dt := float64(cand.FrameIdx - last.FrameIdx)
	pred := last.Box.Translate(vx*dt, vy*dt)
	residual := cand.Box.Center().Sub(pred.Center())
	return append(dst,
		residual.X/w*4, // scaled so typical residuals use the range
		residual.Y/h*4,
		(cand.Box.W-last.Box.W)/w*4,
		(cand.Box.H-last.Box.H)/h*4,
		pred.IoU(cand.Box),
	)
}

// AppendMotionFeatures32 is AppendMotionFeatures for the float32 backend:
// the geometry runs in float64 exactly as the reference and each feature is
// rounded once on append.
func AppendMotionFeatures32(dst []float32, prefix []detect.Detection, cand detect.Detection, nomW, nomH int) []float32 {
	w := float64(nomW)
	h := float64(nomH)
	last := prefix[len(prefix)-1]
	vx, vy := 0.0, 0.0 // nominal px per frame
	if len(prefix) >= 2 {
		prev := prefix[len(prefix)-2]
		dt := float64(last.FrameIdx - prev.FrameIdx)
		if dt > 0 {
			d := last.Box.Center().Sub(prev.Box.Center())
			vx, vy = d.X/dt, d.Y/dt
		}
	}
	dt := float64(cand.FrameIdx - last.FrameIdx)
	pred := last.Box.Translate(vx*dt, vy*dt)
	residual := cand.Box.Center().Sub(pred.Center())
	return append(dst,
		float32(residual.X/w*4), // scaled so typical residuals use the range
		float32(residual.Y/h*4),
		float32((cand.Box.W-last.Box.W)/w*4),
		float32((cand.Box.H-last.Box.H)/h*4),
		float32(pred.IoU(cand.Box)),
	)
}
