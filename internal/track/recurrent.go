package track

import (
	"math"
	"math/rand"
	"sort"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/nn"
)

// RecurrentModel is the learned matching model of OTIF's recurrent
// reduced-rate tracker (§3.4). A GRU cell folds the detection-level
// features of a track prefix into a track-level feature vector; a matching
// MLP scores how likely a new detection continues that track.
type RecurrentModel struct {
	Hidden int
	GRU    *nn.GRUCell
	Match  *nn.MLP
	NomW   int
	NomH   int
	FPS    int
}

// NewRecurrentModel creates an untrained recurrent tracking model for the
// given frame geometry and framerate.
func NewRecurrentModel(nomW, nomH, fps int, rng *rand.Rand) *RecurrentModel {
	const hidden = 16
	return &RecurrentModel{
		Hidden: hidden,
		GRU:    nn.NewGRUCell(FeatDim, hidden, rng),
		Match:  nn.NewMLP([]int{hidden + FeatDim + MotionDim, 24, 1}, nn.ReLUAct, nn.SigmoidAct, rng),
		NomW:   nomW,
		NomH:   nomH,
		FPS:    fps,
	}
}

// Score returns the matching probability p_{i,j} between the track-level
// features (GRU state h plus motion-delta features) and a detection
// feature vector f. It is read-only on the model, so concurrent clip
// execution can share one trained model.
func (m *RecurrentModel) Score(h, f, motion nn.Vec) float64 {
	return m.Match.Apply(nn.Concat(h, f, motion))[0]
}

// RecurrentTracker applies a trained RecurrentModel online at a fixed
// sampling gap: on each processed frame it scores every (active track,
// detection) pair, solves the assignment, extends matched tracks, starts
// new tracks from unmatched detections, and terminates tracks that go
// unmatched for MaxMisses consecutive processed frames.
type RecurrentTracker struct {
	Model *RecurrentModel
	// MinProb is the minimum matching probability for a valid
	// association.
	MinProb float64
	// MaxMisses is how many processed frames a track survives unmatched.
	MaxMisses int
	// MaxSpeed (nominal px/sec) gates implausible associations: a
	// detection further from the track's last box than MaxSpeed * dt
	// plus a slack term can never match. This mirrors the spatial
	// locality that a learned CNN matcher absorbs from data.
	MaxSpeed float64
	// Acct is charged TrackerPerAssoc per scored pair.
	Acct *costmodel.Accountant

	active []*recTrack
	done   []*Track

	// lastConf is the minimum matching probability among the previous
	// Update's accepted associations (1 when there were none). The
	// variable-rate execution mode uses it to decide whether the gap can
	// grow (§3.4 of the paper discusses this Miris-style policy; OTIF
	// defaults to a fixed gap after finding the two comparable).
	lastConf float64
}

type recTrack struct {
	track  Track
	hidden nn.Vec
	misses int
}

// NewRecurrentTracker wraps a trained model with the default inference
// settings.
func NewRecurrentTracker(model *RecurrentModel, acct *costmodel.Accountant) *RecurrentTracker {
	return &RecurrentTracker{
		Model:     model,
		MinProb:   0.5,
		MaxMisses: 2,
		MaxSpeed:  500,
		Acct:      acct,
	}
}

// Update implements Tracker.
func (r *RecurrentTracker) Update(ctx *FrameContext, dets []detect.Detection) {
	m := r.Model
	r.lastConf = 1
	feats := make([]nn.Vec, len(dets))
	for j, d := range dets {
		feats[j] = DetFeatures(d, m.NomW, m.NomH, m.FPS, ctx.GapFrames)
	}
	if len(r.active) == 0 {
		for _, d := range dets {
			r.start(d)
		}
		return
	}

	const blocked = 1e6
	maxDisp := r.MaxSpeed*float64(ctx.GapFrames)/float64(m.FPS) + 0.08*float64(m.NomW)
	cost := make([][]float64, len(r.active))
	scored := 0
	for i, tr := range r.active {
		cost[i] = make([]float64, len(dets))
		last := tr.track.Dets[len(tr.track.Dets)-1].Box.Center()
		for j, d := range dets {
			if last.Dist(d.Box.Center()) > maxDisp {
				cost[i][j] = blocked
				continue
			}
			scored++
			motion := MotionFeatures(tr.track.Dets, d, m.NomW, m.NomH)
			p := m.Score(tr.hidden, feats[j], motion)
			cost[i][j] = -math.Log(math.Max(p, 1e-9))
		}
	}
	// One accountant charge per association round rather than per scored
	// pair keeps the accountant out of the innermost loop.
	if scored > 0 {
		r.Acct.Add(costmodel.OpTrack, costmodel.TrackerPerAssoc*float64(scored))
	}
	maxCost := -math.Log(r.MinProb)
	assign := AssignWithThreshold(cost, maxCost, blocked)

	usedDet := make([]bool, len(dets))
	var remaining []*recTrack
	for i, tr := range r.active {
		j := assign[i]
		if j < 0 {
			tr.misses++
			if tr.misses > r.MaxMisses {
				r.done = append(r.done, cloneTrack(&tr.track))
			} else {
				remaining = append(remaining, tr)
			}
			continue
		}
		usedDet[j] = true
		if p := math.Exp(-cost[i][j]); p < r.lastConf {
			r.lastConf = p
		}
		tr.track.Dets = append(tr.track.Dets, dets[j])
		tr.hidden = m.GRU.StepInfer(tr.hidden, feats[j])
		tr.misses = 0
		remaining = append(remaining, tr)
	}
	r.active = remaining
	for j, d := range dets {
		if !usedDet[j] {
			r.start(d)
		}
	}
}

// start opens a new track. The first detection's feature uses
// t_elapsed = 0, matching how training prefixes begin.
func (r *RecurrentTracker) start(d detect.Detection) {
	feat := DetFeatures(d, r.Model.NomW, r.Model.NomH, r.Model.FPS, 0)
	h := nn.NewVec(r.Model.Hidden)
	h = r.Model.GRU.StepInfer(h, feat)
	r.active = append(r.active, &recTrack{
		track:  Track{Dets: []detect.Detection{d}},
		hidden: h,
	})
}

// LastConfidence returns the minimum accepted matching probability of the
// most recent Update (1 if nothing was matched).
func (r *RecurrentTracker) LastConfidence() float64 {
	if r.lastConf == 0 {
		return 1
	}
	return r.lastConf
}

// Finish implements Tracker.
func (r *RecurrentTracker) Finish() []*Track {
	for _, tr := range r.active {
		r.done = append(r.done, cloneTrack(&tr.track))
	}
	r.active = nil
	out := r.done
	r.done = nil
	sort.Slice(out, func(i, j int) bool { return out[i].FirstFrame() < out[j].FirstFrame() })
	for i, t := range out {
		t.ID = i
		t.Category = t.MajorityCategory()
	}
	return out
}
