package track

import (
	"math"
	"math/rand"
	"sort"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/nn"
)

// RecurrentModel is the learned matching model of OTIF's recurrent
// reduced-rate tracker (§3.4). A GRU cell folds the detection-level
// features of a track prefix into a track-level feature vector; a matching
// MLP scores how likely a new detection continues that track.
type RecurrentModel struct {
	Hidden int
	GRU    *nn.GRUCell
	Match  *nn.MLP
	NomW   int
	NomH   int
	FPS    int
}

// NewRecurrentModel creates an untrained recurrent tracking model for the
// given frame geometry and framerate.
func NewRecurrentModel(nomW, nomH, fps int, rng *rand.Rand) *RecurrentModel {
	const hidden = 16
	return &RecurrentModel{
		Hidden: hidden,
		GRU:    nn.NewGRUCell(FeatDim, hidden, rng),
		Match:  nn.NewMLP([]int{hidden + FeatDim + MotionDim, 24, 1}, nn.ReLUAct, nn.SigmoidAct, rng),
		NomW:   nomW,
		NomH:   nomH,
		FPS:    fps,
	}
}

// Score returns the matching probability p_{i,j} between the track-level
// features (GRU state h plus motion-delta features) and a detection
// feature vector f. It is read-only on the model, so concurrent clip
// execution can share one trained model.
func (m *RecurrentModel) Score(h, f, motion nn.Vec) float64 {
	return m.Match.Apply(nn.Concat(h, f, motion))[0]
}

// RecurrentTracker applies a trained RecurrentModel online at a fixed
// sampling gap: on each processed frame it scores every (active track,
// detection) pair, solves the assignment, extends matched tracks, starts
// new tracks from unmatched detections, and terminates tracks that go
// unmatched for MaxMisses consecutive processed frames.
type RecurrentTracker struct {
	Model *RecurrentModel
	// MinProb is the minimum matching probability for a valid
	// association.
	MinProb float64
	// MaxMisses is how many processed frames a track survives unmatched.
	MaxMisses int
	// MaxSpeed (nominal px/sec) gates implausible associations: a
	// detection further from the track's last box than MaxSpeed * dt
	// plus a slack term can never match. This mirrors the spatial
	// locality that a learned CNN matcher absorbs from data.
	MaxSpeed float64
	// Acct is charged TrackerPerAssoc per scored pair.
	Acct *costmodel.Accountant

	active []*recTrack
	done   []*Track

	// lastConf is the minimum matching probability among the previous
	// Update's accepted associations (1 when there were none). The
	// variable-rate execution mode uses it to decide whether the gap can
	// grow (§3.4 of the paper discusses this Miris-style policy; OTIF
	// defaults to a fixed gap after finding the two comparable).
	lastConf float64

	// scratch makes each Update round allocation-free; it also means a
	// tracker instance must be driven by a single goroutine. It is drawn
	// from the scratch pool on first Update and released by Finish.
	scratch *matchScratch
}

type recTrack struct {
	track  Track
	hidden nn.Vec
	misses int
}

// NewRecurrentTracker wraps a trained model with the default inference
// settings.
func NewRecurrentTracker(model *RecurrentModel, acct *costmodel.Accountant) *RecurrentTracker {
	return &RecurrentTracker{
		Model:     model,
		MinProb:   0.5,
		MaxMisses: 2,
		MaxSpeed:  500,
		Acct:      acct,
	}
}

// scratchRef returns the tracker's scratch, acquiring one from the pool
// on first use.
func (r *RecurrentTracker) scratchRef() *matchScratch {
	if r.scratch == nil {
		r.scratch = getScratch()
	}
	return r.scratch
}

// Update implements Tracker.
func (r *RecurrentTracker) Update(ctx *FrameContext, dets []detect.Detection) {
	metUpdates.Inc()
	m := r.Model
	s := r.scratchRef()
	batched := batchedGRU.Load()
	r.lastConf = 1
	feats := s.detFeatureRows(dets, m.NomW, m.NomH, m.FPS, ctx.GapFrames)
	if len(r.active) == 0 {
		r.startAll(dets, nil, batched)
		return
	}

	const blocked = 1e6
	maxDisp := r.MaxSpeed*float64(ctx.GapFrames)/float64(m.FPS) + 0.08*float64(m.NomW)
	cost := growMatrix(&s.cost, &s.costBuf, len(r.active), len(dets))
	scored := 0
	for i, tr := range r.active {
		last := tr.track.Dets[len(tr.track.Dets)-1].Box.Center()
		for j, d := range dets {
			if last.Dist(d.Box.Center()) > maxDisp {
				cost[i][j] = blocked
				continue
			}
			scored++
			s.motion = AppendMotionFeatures(s.motion[:0], tr.track.Dets, d, m.NomW, m.NomH)
			p := m.scoreWith(s, tr.hidden, feats[j], nn.Vec(s.motion))
			cost[i][j] = -math.Log(math.Max(p, 1e-9))
		}
	}
	// One accountant charge per association round rather than per scored
	// pair keeps the accountant out of the innermost loop.
	if scored > 0 {
		r.Acct.Add(costmodel.OpTrack, costmodel.TrackerPerAssoc*float64(scored))
	}
	maxCost := -math.Log(r.MinProb)
	assign := s.assign.AssignWithThreshold(cost, maxCost, blocked)

	usedDet := grow(&s.usedDet, len(dets))
	clear(usedDet)
	// The hidden-state updates of matched tracks are independent of this
	// round's decisions (the cost matrix is already built), so the batched
	// path defers them: the match loop gathers (track, detection) pairs and
	// one StepBatchInferInto advances every hidden state afterwards.
	batchTracks := s.batchTracks[:0]
	batchDet := s.batchDet[:0]
	active := r.active
	remaining := r.active[:0] // in-place filter; reads stay ahead of writes
	for i, tr := range active {
		j := assign[i]
		if j < 0 {
			tr.misses++
			if tr.misses > r.MaxMisses {
				r.done = append(r.done, cloneTrack(&tr.track))
			} else {
				remaining = append(remaining, tr)
			}
			continue
		}
		usedDet[j] = true
		if p := math.Exp(-cost[i][j]); p < r.lastConf {
			r.lastConf = p
		}
		tr.track.Dets = append(tr.track.Dets, dets[j])
		if batched {
			batchTracks = append(batchTracks, tr)
			batchDet = append(batchDet, j)
		} else {
			m.GRU.StepInferInto(tr.hidden, tr.hidden, feats[j], &s.nn)
		}
		tr.misses = 0
		remaining = append(remaining, tr)
	}
	s.batchTracks, s.batchDet = batchTracks, batchDet
	if len(batchTracks) > 0 {
		r.stepMatched(batchTracks, feats, batchDet)
		// Drop the gathered references so the pooled scratch never pins
		// finished tracks.
		for i := range batchTracks {
			batchTracks[i] = nil
		}
	}
	// Drop dangling pointers in the filtered-out suffix so dead tracks can
	// be collected.
	for i := len(remaining); i < len(active); i++ {
		active[i] = nil
	}
	r.active = remaining
	r.startAll(dets, usedDet, batched)
}

// stepMatched advances the hidden states of the gathered matched tracks in
// one batched GRU step: hidden states and matched detection features are
// packed row-major, stepped together, and scattered back. Each row is
// bit-identical to the scalar StepInferInto the non-batched path runs.
func (r *RecurrentTracker) stepMatched(tracks []*recTrack, feats []nn.Vec, det []int) {
	s := r.scratch
	n := r.Model.Hidden
	rows := len(tracks)
	hB := growVec(&s.hB, rows*n)
	xB := grow(&s.xB, rows*FeatDim)
	for b, tr := range tracks {
		copy(hB[b*n:(b+1)*n], tr.hidden)
		copy(xB[b*FeatDim:(b+1)*FeatDim], feats[det[b]])
	}
	r.Model.GRU.StepBatchInferInto(hB, hB, nn.Vec(xB), rows, &s.batch)
	for b, tr := range tracks {
		copy(tr.hidden, hB[b*n:(b+1)*n])
	}
}

// startAll opens a track for every unmatched detection (usedDet == nil
// means all detections are unmatched). The batched path folds all the
// first GRU steps — zero hidden state, t_elapsed = 0 features, matching
// how training prefixes begin — into one StepBatchInferInto call.
func (r *RecurrentTracker) startAll(dets []detect.Detection, usedDet []bool, batched bool) {
	if !batched {
		for j, d := range dets {
			if usedDet == nil || !usedDet[j] {
				r.start(d)
			}
		}
		return
	}
	s := r.scratch
	m := r.Model
	n := m.Hidden
	xB := s.xB[:0]
	rows := 0
	for j, d := range dets {
		if usedDet != nil && usedDet[j] {
			continue
		}
		xB = AppendDetFeatures(xB, d, m.NomW, m.NomH, m.FPS, 0)
		rows++
	}
	s.xB = xB
	if rows == 0 {
		return
	}
	hB := growVec(&s.hB, rows*n)
	clear(hB) // new tracks step from the zero hidden state
	m.GRU.StepBatchInferInto(hB, hB, nn.Vec(xB), rows, &s.batch)
	b := 0
	for j, d := range dets {
		if usedDet != nil && usedDet[j] {
			continue
		}
		h := s.arena.alloc(n)
		copy(h, hB[b*n:(b+1)*n])
		b++
		r.active = append(r.active, &recTrack{
			track:  Track{Dets: []detect.Detection{d}},
			hidden: h,
		})
	}
}

// scoreWith is Score evaluated through the tracker scratch: the inputs are
// concatenated into a reused buffer and the matching MLP runs on scratch
// ping-pong buffers. Output is bit-identical to Score's.
func (m *RecurrentModel) scoreWith(s *matchScratch, h, f, motion nn.Vec) float64 {
	in := growVec(&s.in, len(h)+len(f)+len(motion))
	copy(in, h)
	copy(in[len(h):], f)
	copy(in[len(h)+len(f):], motion)
	return m.Match.ApplyWith(&s.nn, in)[0]
}

// start opens a new track. The first detection's feature uses
// t_elapsed = 0, matching how training prefixes begin. The hidden vector
// is retained state owned by the track, drawn from the scratch arena
// (tracks never outlive their tracker's Finish).
func (r *RecurrentTracker) start(d detect.Detection) {
	s := r.scratchRef()
	s.startFeat = AppendDetFeatures(s.startFeat[:0], d, r.Model.NomW, r.Model.NomH, r.Model.FPS, 0)
	h := s.arena.alloc(r.Model.Hidden)
	r.Model.GRU.StepInferInto(h, h, nn.Vec(s.startFeat), &s.nn)
	r.active = append(r.active, &recTrack{
		track:  Track{Dets: []detect.Detection{d}},
		hidden: h,
	})
}

// LastConfidence returns the minimum accepted matching probability of the
// most recent Update (1 if nothing was matched).
func (r *RecurrentTracker) LastConfidence() float64 {
	if r.lastConf == 0 {
		return 1
	}
	return r.lastConf
}

// Finish implements Tracker.
func (r *RecurrentTracker) Finish() []*Track {
	for _, tr := range r.active {
		r.done = append(r.done, cloneTrack(&tr.track))
	}
	r.active = nil
	out := r.done
	r.done = nil
	// All tracks are cloned; nothing references the scratch arena's hidden
	// vectors anymore, so the scratch can recycle.
	putScratch(r.scratch)
	r.scratch = nil
	sort.Slice(out, func(i, j int) bool { return out[i].FirstFrame() < out[j].FirstFrame() })
	for i, t := range out {
		t.ID = i
		t.Category = t.MajorityCategory()
	}
	return out
}
