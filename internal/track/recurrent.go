package track

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/nn"
)

// RecurrentModel is the learned matching model of OTIF's recurrent
// reduced-rate tracker (§3.4). A GRU cell folds the detection-level
// features of a track prefix into a track-level feature vector; a matching
// MLP scores how likely a new detection continues that track.
type RecurrentModel struct {
	Hidden int
	GRU    *nn.GRUCell
	Match  *nn.MLP
	NomW   int
	NomH   int
	FPS    int

	// once32 guards the lazy one-time float32 conversion of the trained
	// weights (nn.Precision Float32 backend). Conversion happens on first
	// float32 inference — after training or loading, both of which mutate
	// only the float64 weights — and the converted models are read-only
	// and shared across clips. A model retrained after float32 inference
	// must be rebuilt (nothing in the pipeline does that).
	once32  sync.Once
	gru32   *nn.GRUCell32
	match32 *nn.MLP32
}

// models32 returns the float32 twins of the trained weights, converting
// them on first use. Safe for concurrent callers.
func (m *RecurrentModel) models32() (*nn.GRUCell32, *nn.MLP32) {
	m.once32.Do(func() {
		m.gru32 = m.GRU.To32()
		m.match32 = m.Match.To32()
	})
	return m.gru32, m.match32
}

// NewRecurrentModel creates an untrained recurrent tracking model for the
// given frame geometry and framerate.
func NewRecurrentModel(nomW, nomH, fps int, rng *rand.Rand) *RecurrentModel {
	const hidden = 16
	return &RecurrentModel{
		Hidden: hidden,
		GRU:    nn.NewGRUCell(FeatDim, hidden, rng),
		Match:  nn.NewMLP([]int{hidden + FeatDim + MotionDim, 24, 1}, nn.ReLUAct, nn.SigmoidAct, rng),
		NomW:   nomW,
		NomH:   nomH,
		FPS:    fps,
	}
}

// Score returns the matching probability p_{i,j} between the track-level
// features (GRU state h plus motion-delta features) and a detection
// feature vector f. It is read-only on the model, so concurrent clip
// execution can share one trained model.
func (m *RecurrentModel) Score(h, f, motion nn.Vec) float64 {
	return m.Match.Apply(nn.Concat(h, f, motion))[0]
}

// RecurrentTracker applies a trained RecurrentModel online at a fixed
// sampling gap: on each processed frame it scores every (active track,
// detection) pair, solves the assignment, extends matched tracks, starts
// new tracks from unmatched detections, and terminates tracks that go
// unmatched for MaxMisses consecutive processed frames.
type RecurrentTracker struct {
	Model *RecurrentModel
	// MinProb is the minimum matching probability for a valid
	// association.
	MinProb float64
	// MaxMisses is how many processed frames a track survives unmatched.
	MaxMisses int
	// MaxSpeed (nominal px/sec) gates implausible associations: a
	// detection further from the track's last box than MaxSpeed * dt
	// plus a slack term can never match. This mirrors the spatial
	// locality that a learned CNN matcher absorbs from data.
	MaxSpeed float64
	// Acct is charged TrackerPerAssoc per scored pair.
	Acct *costmodel.Accountant
	// Prec selects the compute backend for this tracker instance; the
	// zero value is the float64 reference. It is fixed for the tracker's
	// life (set before the first Update): hidden states live in the
	// backend's element type.
	Prec nn.Precision

	active []*recTrack
	done   []*Track

	// lastConf is the minimum matching probability among the previous
	// Update's accepted associations (1 when there were none). The
	// variable-rate execution mode uses it to decide whether the gap can
	// grow (§3.4 of the paper discusses this Miris-style policy; OTIF
	// defaults to a fixed gap after finding the two comparable).
	lastConf float64

	// scratch makes each Update round allocation-free; it also means a
	// tracker instance must be driven by a single goroutine. It is drawn
	// from the scratch pool on first Update and released by Finish.
	scratch *matchScratch
}

type recTrack struct {
	track Track
	// Exactly one of hidden/hidden32 is populated, per the tracker's Prec.
	hidden   nn.Vec
	hidden32 nn.Vec32
	misses   int
}

// NewRecurrentTracker wraps a trained model with the default inference
// settings.
func NewRecurrentTracker(model *RecurrentModel, acct *costmodel.Accountant) *RecurrentTracker {
	return &RecurrentTracker{
		Model:     model,
		MinProb:   0.5,
		MaxMisses: 2,
		MaxSpeed:  500,
		Acct:      acct,
	}
}

// scratchRef returns the tracker's scratch, acquiring one from the pool
// on first use.
func (r *RecurrentTracker) scratchRef() *matchScratch {
	if r.scratch == nil {
		r.scratch = getScratch()
	}
	return r.scratch
}

// Update implements Tracker.
func (r *RecurrentTracker) Update(ctx *FrameContext, dets []detect.Detection) {
	metUpdates.Inc()
	m := r.Model
	s := r.scratchRef()
	batched := batchedGRU.Load()
	f32 := r.Prec == nn.Float32
	r.lastConf = 1
	// Per-detection feature rows in the backend's element type. Matching
	// probabilities are computed by the selected backend; everything
	// downstream of them (cost matrix, assignment, track bookkeeping)
	// stays float64 in both modes.
	var feats []nn.Vec
	var feats32 []nn.Vec32
	var gru32 *nn.GRUCell32
	if f32 {
		gru32, _ = m.models32()
		feats32 = s.detFeatureRows32(dets, m.NomW, m.NomH, m.FPS, ctx.GapFrames)
	} else {
		feats = s.detFeatureRows(dets, m.NomW, m.NomH, m.FPS, ctx.GapFrames)
	}
	if len(r.active) == 0 {
		r.startAll(dets, nil, batched)
		return
	}

	const blocked = 1e6
	maxDisp := r.MaxSpeed*float64(ctx.GapFrames)/float64(m.FPS) + 0.08*float64(m.NomW)
	cost := growMatrix(&s.cost, &s.costBuf, len(r.active), len(dets))
	scored := 0
	for i, tr := range r.active {
		last := tr.track.Dets[len(tr.track.Dets)-1].Box.Center()
		for j, d := range dets {
			if last.Dist(d.Box.Center()) > maxDisp {
				cost[i][j] = blocked
				continue
			}
			scored++
			var p float64
			if f32 {
				s.motion32 = AppendMotionFeatures32(s.motion32[:0], tr.track.Dets, d, m.NomW, m.NomH)
				p = float64(m.scoreWith32(s, tr.hidden32, feats32[j], nn.Vec32(s.motion32)))
			} else {
				s.motion = AppendMotionFeatures(s.motion[:0], tr.track.Dets, d, m.NomW, m.NomH)
				p = m.scoreWith(s, tr.hidden, feats[j], nn.Vec(s.motion))
			}
			cost[i][j] = -math.Log(math.Max(p, 1e-9))
		}
	}
	// One accountant charge per association round rather than per scored
	// pair keeps the accountant out of the innermost loop.
	if scored > 0 {
		r.Acct.Add(costmodel.OpTrack, costmodel.TrackerPerAssoc*float64(scored))
	}
	maxCost := -math.Log(r.MinProb)
	assign := s.assign.AssignWithThreshold(cost, maxCost, blocked)

	usedDet := grow(&s.usedDet, len(dets))
	clear(usedDet)
	// The hidden-state updates of matched tracks are independent of this
	// round's decisions (the cost matrix is already built), so the batched
	// path defers them: the match loop gathers (track, detection) pairs and
	// one StepBatchInferInto advances every hidden state afterwards.
	batchTracks := s.batchTracks[:0]
	batchDet := s.batchDet[:0]
	active := r.active
	remaining := r.active[:0] // in-place filter; reads stay ahead of writes
	for i, tr := range active {
		j := assign[i]
		if j < 0 {
			tr.misses++
			if tr.misses > r.MaxMisses {
				r.done = append(r.done, cloneTrack(&tr.track))
			} else {
				remaining = append(remaining, tr)
			}
			continue
		}
		usedDet[j] = true
		if p := math.Exp(-cost[i][j]); p < r.lastConf {
			r.lastConf = p
		}
		tr.track.Dets = append(tr.track.Dets, dets[j])
		if batched {
			batchTracks = append(batchTracks, tr)
			batchDet = append(batchDet, j)
		} else if f32 {
			gru32.StepInferInto(tr.hidden32, tr.hidden32, feats32[j], &s.nn32)
		} else {
			m.GRU.StepInferInto(tr.hidden, tr.hidden, feats[j], &s.nn)
		}
		tr.misses = 0
		remaining = append(remaining, tr)
	}
	s.batchTracks, s.batchDet = batchTracks, batchDet
	if len(batchTracks) > 0 {
		if f32 {
			r.stepMatched32(gru32, batchTracks, feats32, batchDet)
		} else {
			r.stepMatched(batchTracks, feats, batchDet)
		}
		// Drop the gathered references so the pooled scratch never pins
		// finished tracks.
		for i := range batchTracks {
			batchTracks[i] = nil
		}
	}
	// Drop dangling pointers in the filtered-out suffix so dead tracks can
	// be collected.
	for i := len(remaining); i < len(active); i++ {
		active[i] = nil
	}
	r.active = remaining
	r.startAll(dets, usedDet, batched)
}

// stepMatched advances the hidden states of the gathered matched tracks in
// one batched GRU step: hidden states and matched detection features are
// packed row-major, stepped together, and scattered back. Each row is
// bit-identical to the scalar StepInferInto the non-batched path runs.
func (r *RecurrentTracker) stepMatched(tracks []*recTrack, feats []nn.Vec, det []int) {
	s := r.scratch
	n := r.Model.Hidden
	rows := len(tracks)
	hB := growVec(&s.hB, rows*n)
	xB := grow(&s.xB, rows*FeatDim)
	for b, tr := range tracks {
		copy(hB[b*n:(b+1)*n], tr.hidden)
		copy(xB[b*FeatDim:(b+1)*FeatDim], feats[det[b]])
	}
	r.Model.GRU.StepBatchInferInto(hB, hB, nn.Vec(xB), rows, &s.batch)
	for b, tr := range tracks {
		copy(tr.hidden, hB[b*n:(b+1)*n])
	}
}

// stepMatched32 is stepMatched on the float32 backend. Each row is
// bit-identical to the scalar GRUCell32.StepInferInto the non-batched
// float32 path runs.
func (r *RecurrentTracker) stepMatched32(gru32 *nn.GRUCell32, tracks []*recTrack, feats []nn.Vec32, det []int) {
	s := r.scratch
	n := r.Model.Hidden
	rows := len(tracks)
	hB := growVec32(&s.hB32, rows*n)
	xB := grow(&s.xB32, rows*FeatDim)
	for b, tr := range tracks {
		copy(hB[b*n:(b+1)*n], tr.hidden32)
		copy(xB[b*FeatDim:(b+1)*FeatDim], feats[det[b]])
	}
	gru32.StepBatchInferInto(hB, hB, nn.Vec32(xB), rows, &s.batch32)
	for b, tr := range tracks {
		copy(tr.hidden32, hB[b*n:(b+1)*n])
	}
}

// startAll opens a track for every unmatched detection (usedDet == nil
// means all detections are unmatched). The batched path folds all the
// first GRU steps — zero hidden state, t_elapsed = 0 features, matching
// how training prefixes begin — into one StepBatchInferInto call.
func (r *RecurrentTracker) startAll(dets []detect.Detection, usedDet []bool, batched bool) {
	if !batched {
		for j, d := range dets {
			if usedDet == nil || !usedDet[j] {
				r.start(d)
			}
		}
		return
	}
	if r.Prec == nn.Float32 {
		r.startAll32(dets, usedDet)
		return
	}
	s := r.scratch
	m := r.Model
	n := m.Hidden
	xB := s.xB[:0]
	rows := 0
	for j, d := range dets {
		if usedDet != nil && usedDet[j] {
			continue
		}
		xB = AppendDetFeatures(xB, d, m.NomW, m.NomH, m.FPS, 0)
		rows++
	}
	s.xB = xB
	if rows == 0 {
		return
	}
	hB := growVec(&s.hB, rows*n)
	clear(hB) // new tracks step from the zero hidden state
	m.GRU.StepBatchInferInto(hB, hB, nn.Vec(xB), rows, &s.batch)
	b := 0
	for j, d := range dets {
		if usedDet != nil && usedDet[j] {
			continue
		}
		h := s.arena.alloc(n)
		copy(h, hB[b*n:(b+1)*n])
		b++
		r.active = append(r.active, &recTrack{
			track:  Track{Dets: []detect.Detection{d}},
			hidden: h,
		})
	}
}

// startAll32 is the batched startAll on the float32 backend.
func (r *RecurrentTracker) startAll32(dets []detect.Detection, usedDet []bool) {
	s := r.scratch
	m := r.Model
	n := m.Hidden
	gru32, _ := m.models32()
	xB := s.xB32[:0]
	rows := 0
	for j, d := range dets {
		if usedDet != nil && usedDet[j] {
			continue
		}
		xB = AppendDetFeatures32(xB, d, m.NomW, m.NomH, m.FPS, 0)
		rows++
	}
	s.xB32 = xB
	if rows == 0 {
		return
	}
	hB := growVec32(&s.hB32, rows*n)
	clear(hB) // new tracks step from the zero hidden state
	gru32.StepBatchInferInto(hB, hB, nn.Vec32(xB), rows, &s.batch32)
	b := 0
	for j, d := range dets {
		if usedDet != nil && usedDet[j] {
			continue
		}
		h := nn.Vec32(s.arena32.alloc(n))
		copy(h, hB[b*n:(b+1)*n])
		b++
		r.active = append(r.active, &recTrack{
			track:    Track{Dets: []detect.Detection{d}},
			hidden32: h,
		})
	}
}

// scoreWith is Score evaluated through the tracker scratch: the inputs are
// concatenated into a reused buffer and the matching MLP runs on scratch
// ping-pong buffers. Output is bit-identical to Score's.
func (m *RecurrentModel) scoreWith(s *matchScratch, h, f, motion nn.Vec) float64 {
	in := growVec(&s.in, len(h)+len(f)+len(motion))
	copy(in, h)
	copy(in[len(h):], f)
	copy(in[len(h)+len(f):], motion)
	return m.Match.ApplyWith(&s.nn, in)[0]
}

// scoreWith32 is scoreWith on the float32 backend.
func (m *RecurrentModel) scoreWith32(s *matchScratch, h, f, motion nn.Vec32) float32 {
	_, match32 := m.models32()
	in := growVec32(&s.in32, len(h)+len(f)+len(motion))
	copy(in, h)
	copy(in[len(h):], f)
	copy(in[len(h)+len(f):], motion)
	return match32.ApplyWith(&s.nn32, in)[0]
}

// start opens a new track. The first detection's feature uses
// t_elapsed = 0, matching how training prefixes begin. The hidden vector
// is retained state owned by the track, drawn from the scratch arena
// (tracks never outlive their tracker's Finish).
func (r *RecurrentTracker) start(d detect.Detection) {
	s := r.scratchRef()
	if r.Prec == nn.Float32 {
		gru32, _ := r.Model.models32()
		s.startFeat32 = AppendDetFeatures32(s.startFeat32[:0], d, r.Model.NomW, r.Model.NomH, r.Model.FPS, 0)
		h := nn.Vec32(s.arena32.alloc(r.Model.Hidden))
		gru32.StepInferInto(h, h, nn.Vec32(s.startFeat32), &s.nn32)
		r.active = append(r.active, &recTrack{
			track:    Track{Dets: []detect.Detection{d}},
			hidden32: h,
		})
		return
	}
	s.startFeat = AppendDetFeatures(s.startFeat[:0], d, r.Model.NomW, r.Model.NomH, r.Model.FPS, 0)
	h := s.arena.alloc(r.Model.Hidden)
	r.Model.GRU.StepInferInto(h, h, nn.Vec(s.startFeat), &s.nn)
	r.active = append(r.active, &recTrack{
		track:  Track{Dets: []detect.Detection{d}},
		hidden: h,
	})
}

// LastConfidence returns the minimum accepted matching probability of the
// most recent Update (1 if nothing was matched).
func (r *RecurrentTracker) LastConfidence() float64 {
	if r.lastConf == 0 {
		return 1
	}
	return r.lastConf
}

// Finish implements Tracker.
func (r *RecurrentTracker) Finish() []*Track {
	for _, tr := range r.active {
		r.done = append(r.done, cloneTrack(&tr.track))
	}
	r.active = nil
	out := r.done
	r.done = nil
	// All tracks are cloned; nothing references the scratch arena's hidden
	// vectors anymore, so the scratch can recycle.
	putScratch(r.scratch)
	r.scratch = nil
	sort.Slice(out, func(i, j int) bool { return out[i].FirstFrame() < out[j].FirstFrame() })
	for i, t := range out {
		t.ID = i
		t.Category = t.MajorityCategory()
	}
	return out
}
