package track

import (
	"math/rand"
	"testing"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/nn"
)

// Float32-backend tracker contracts. The float32 path has its own
// scalar/batched pair of GRU kernels; just like the float64 reference,
// the two must be indistinguishable — same tracks, same hidden states —
// over streams with empty frames, misses and restarts. Closeness to the
// float64 backend is pinned per-kernel (internal/nn) and end to end
// (internal/core); at the track level association decisions may
// legitimately flip on near-threshold scores, so no float32-vs-float64
// track comparison belongs here.

func runRecurrentPrec(model *RecurrentModel, prec nn.Precision, byFrame map[int][]detect.Detection, frames, gap int) ([]*Track, []float64) {
	tracker := NewRecurrentTracker(model, costmodel.NewAccountant())
	tracker.Prec = prec
	var confs []float64
	for f := 0; f < frames; f += gap {
		tracker.Update(&FrameContext{FrameIdx: f, GapFrames: gap}, byFrame[f])
		confs = append(confs, tracker.LastConfidence())
	}
	return tracker.Finish(), confs
}

// TestRecurrentFloat32BatchedMatchesScalar is the float32 twin of
// TestRecurrentBatchedMatchesScalar: under the float32 backend, batch-on
// and batch-off runs must produce bit-identical tracks and confidences.
func TestRecurrentFloat32BatchedMatchesScalar(t *testing.T) {
	model, _ := trainedRecurrent(t, 31)
	defer SetBatchedInference(true)
	const frames, gap = 80, 4
	for trial := 0; trial < 8; trial++ {
		byFrame := jitteredStream(rand.New(rand.NewSource(int64(300+trial))), frames, gap)

		SetBatchedInference(false)
		wantTracks, wantConfs := runRecurrentPrec(model, nn.Float32, byFrame, frames, gap)
		SetBatchedInference(true)
		gotTracks, gotConfs := runRecurrentPrec(model, nn.Float32, byFrame, frames, gap)

		requireSameTracks(t, gotTracks, wantTracks)
		for i := range wantConfs {
			if gotConfs[i] != wantConfs[i] {
				t.Fatalf("trial %d round %d: confidence %v != %v (must be bit-identical)",
					trial, i, gotConfs[i], wantConfs[i])
			}
		}
	}
}

// TestRecurrentFloat32HiddenStatesBitIdentical drives the float32 scalar
// and batched paths in lockstep and compares every track's hidden32 vector
// after every round.
func TestRecurrentFloat32HiddenStatesBitIdentical(t *testing.T) {
	model, _ := trainedRecurrent(t, 32)
	defer SetBatchedInference(true)
	const frames, gap = 60, 4
	byFrame := jitteredStream(rand.New(rand.NewSource(400)), frames, gap)

	scalar := NewRecurrentTracker(model, costmodel.NewAccountant())
	scalar.Prec = nn.Float32
	batched := NewRecurrentTracker(model, costmodel.NewAccountant())
	batched.Prec = nn.Float32
	for f := 0; f < frames; f += gap {
		fc := FrameContext{FrameIdx: f, GapFrames: gap}
		SetBatchedInference(false)
		scalar.Update(&fc, byFrame[f])
		SetBatchedInference(true)
		batched.Update(&fc, byFrame[f])

		if len(scalar.active) != len(batched.active) {
			t.Fatalf("frame %d: %d active tracks scalar, %d batched",
				f, len(scalar.active), len(batched.active))
		}
		for i := range scalar.active {
			sh, bh := scalar.active[i].hidden32, batched.active[i].hidden32
			if len(sh) == 0 {
				t.Fatalf("frame %d track %d: float32 tracker has no hidden32 state", f, i)
			}
			for k := range sh {
				if sh[k] != bh[k] {
					t.Fatalf("frame %d track %d hidden32[%d]: %v != %v (must be bit-identical)",
						f, i, k, bh[k], sh[k])
				}
			}
		}
	}
	requireSameTracks(t, batched.Finish(), scalar.Finish())
}

// TestPairTrackerFloat32Runs exercises the pair tracker's float32 scoring
// branch over a jittered stream: it must produce a plausible track set
// (per-kernel tolerance tests bound how far scores can drift) and must not
// touch any float64 scratch.
func TestPairTrackerFloat32Runs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	clips := syntheticClips(rng, 4, 3, 60)
	model := NewPairModel(testNomW, testNomH, testFPS, rng)
	opts := DefaultTrainOptions()
	opts.Examples = 2500
	TrainPair(model, clips, opts, costmodel.NewAccountant())
	const frames, gap = 80, 4
	byFrame := jitteredStream(rand.New(rand.NewSource(500)), frames, gap)

	run := func(prec nn.Precision) []*Track {
		tr := NewPairTracker(model, costmodel.NewAccountant())
		tr.Prec = prec
		for f := 0; f < frames; f += gap {
			tr.Update(&FrameContext{FrameIdx: f, GapFrames: gap}, byFrame[f])
		}
		return tr.Finish()
	}
	t64 := run(nn.Float64)
	t32 := run(nn.Float32)
	if len(t32) == 0 {
		t.Fatal("float32 pair tracker produced no tracks")
	}
	// The stream's objects are far apart and the scores decisive, so the
	// backends agree on the track count even though individual scores
	// differ in the last bits.
	if len(t32) != len(t64) {
		t.Errorf("float32 pair tracker built %d tracks, float64 %d", len(t32), len(t64))
	}
}
