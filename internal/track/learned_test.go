package track

import (
	"math/rand"
	"testing"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/geom"
)

// syntheticClips builds tracker training data: several clips of objects
// moving on straight lines at native rate, as if produced by theta_best.
func syntheticClips(rng *rand.Rand, nClips, tracksPerClip, frames int) []TrainClip {
	clips := make([]TrainClip, nClips)
	for c := range clips {
		var tracks []*Track
		for k := 0; k < tracksPerClip; k++ {
			x0 := rng.Float64() * 200
			y0 := float64(k)*150 + 20
			vx := 4 + rng.Float64()*4
			tr := &Track{ID: k, Category: "car"}
			for f := 0; f < frames; f++ {
				tr.Dets = append(tr.Dets, detect.Detection{
					FrameIdx: f,
					Box:      geom.Rect{X: x0 + vx*float64(f), Y: y0, W: 40, H: 20},
					Score:    0.9, Category: "car",
					AppMean: 100 + float64(k)*30, AppStd: 15,
				})
			}
			tracks = append(tracks, tr)
		}
		clips[c] = TrainClip{Tracks: tracks}
	}
	return clips
}

const (
	testNomW = 800
	testNomH = 600
	testFPS  = 10
)

func trainedRecurrent(t *testing.T, seed int64) (*RecurrentModel, []TrainClip) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	clips := syntheticClips(rng, 4, 3, 60)
	model := NewRecurrentModel(testNomW, testNomH, testFPS, rng)
	opts := DefaultTrainOptions()
	opts.Examples = 2500
	opts.Seed = seed
	TrainRecurrent(model, clips, opts, costmodel.NewAccountant())
	return model, clips
}

func TestRecurrentModelScoresContinuationsHigh(t *testing.T) {
	model, _ := trainedRecurrent(t, 3)
	rng := rand.New(rand.NewSource(77))
	eval := syntheticClips(rng, 2, 3, 60)

	var posOK, posN, negOK, negN int
	for _, clip := range eval {
		for _, tr := range clip.Tracks {
			for _, gap := range []int{2, 8} {
				dets := SubSampleAtGap(tr.Dets, gap)
				if len(dets) < 3 {
					continue
				}
				prefix := dets[:2]
				target := dets[2]
				feats := prefixFeatures(model, prefix)
				h, _ := model.GRU.RunSequence(feats)
				tf := DetFeatures(target, testNomW, testNomH, testFPS, target.FrameIdx-prefix[1].FrameIdx)
				p := model.Score(h, tf, MotionFeatures(prefix, target, testNomW, testNomH))
				posN++
				if p > 0.5 {
					posOK++
				}
				// Negative: another track's detection at the same frame.
				for _, other := range clip.Tracks {
					if other == tr {
						continue
					}
					for _, d := range other.Dets {
						if d.FrameIdx == target.FrameIdx {
							nf := DetFeatures(d, testNomW, testNomH, testFPS, d.FrameIdx-prefix[1].FrameIdx)
							q := model.Score(h, nf, MotionFeatures(prefix, d, testNomW, testNomH))
							negN++
							if q < 0.5 {
								negOK++
							}
							break
						}
					}
				}
			}
		}
	}
	if posN == 0 || negN == 0 {
		t.Fatal("no evaluation pairs")
	}
	if float64(posOK)/float64(posN) < 0.8 {
		t.Errorf("positive accuracy %d/%d, want >= 80%%", posOK, posN)
	}
	if float64(negOK)/float64(negN) < 0.8 {
		t.Errorf("negative accuracy %d/%d, want >= 80%%", negOK, negN)
	}
}

func TestRecurrentTrackerReassemblesTracks(t *testing.T) {
	model, _ := trainedRecurrent(t, 5)
	rng := rand.New(rand.NewSource(88))
	eval := syntheticClips(rng, 1, 3, 60)

	// Feed detections at gap 4 and expect one track per object.
	const gap = 4
	tracker := NewRecurrentTracker(model, costmodel.NewAccountant())
	byFrame := map[int][]detect.Detection{}
	for _, tr := range eval[0].Tracks {
		for _, d := range tr.Dets {
			if d.FrameIdx%gap == 0 {
				byFrame[d.FrameIdx] = append(byFrame[d.FrameIdx], d)
			}
		}
	}
	for f := 0; f < 60; f += gap {
		tracker.Update(&FrameContext{FrameIdx: f, GapFrames: gap}, byFrame[f])
	}
	tracks := PruneShort(tracker.Finish(), 2)
	if len(tracks) != 3 {
		t.Errorf("reassembled %d tracks, want 3", len(tracks))
	}
	for _, tr := range tracks {
		if len(tr.Dets) < 10 {
			t.Errorf("fragmented track of length %d", len(tr.Dets))
		}
	}
}

func TestPairTrackerChainsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	clips := syntheticClips(rng, 4, 3, 60)
	model := NewPairModel(testNomW, testNomH, testFPS, rng)
	opts := DefaultTrainOptions()
	opts.Examples = 2500
	TrainPair(model, clips, opts, costmodel.NewAccountant())

	eval := syntheticClips(rand.New(rand.NewSource(55)), 1, 3, 60)
	const gap = 4
	tracker := NewPairTracker(model, costmodel.NewAccountant())
	for f := 0; f < 60; f += gap {
		var dets []detect.Detection
		for _, tr := range eval[0].Tracks {
			for _, d := range tr.Dets {
				if d.FrameIdx == f {
					dets = append(dets, d)
				}
			}
		}
		tracker.Update(&FrameContext{FrameIdx: f, GapFrames: gap}, dets)
	}
	tracks := PruneShort(tracker.Finish(), 2)
	if len(tracks) != 3 {
		t.Errorf("pair tracker produced %d tracks, want 3", len(tracks))
	}
}

func TestTrainRecurrentChargesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clips := syntheticClips(rng, 1, 2, 30)
	model := NewRecurrentModel(testNomW, testNomH, testFPS, rng)
	acct := costmodel.NewAccountant()
	opts := DefaultTrainOptions()
	opts.Examples = 100
	TrainRecurrent(model, clips, opts, acct)
	if acct.Get(costmodel.OpTrainTrkr) <= 0 {
		t.Error("training must charge simulated cost")
	}
}

func TestTrainWithNoTracksIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := NewRecurrentModel(testNomW, testNomH, testFPS, rng)
	TrainRecurrent(model, nil, DefaultTrainOptions(), costmodel.NewAccountant())
	pair := NewPairModel(testNomW, testNomH, testFPS, rng)
	TrainPair(pair, []TrainClip{{}}, DefaultTrainOptions(), costmodel.NewAccountant())
	// Nothing to assert beyond "does not panic".
}
