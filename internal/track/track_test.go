package track

import (
	"testing"

	"otif/internal/detect"
	"otif/internal/geom"
)

func det(frame int, x, y, w, h float64) detect.Detection {
	return detect.Detection{
		FrameIdx: frame,
		Box:      geom.Rect{X: x, Y: y, W: w, H: h},
		Score:    0.9,
		Category: "car",
		AppMean:  120,
		AppStd:   20,
	}
}

func linearTrack(startFrame, n, step int, x0, y0, vx, vy float64) *Track {
	tr := &Track{Category: "car"}
	for i := 0; i < n; i++ {
		f := startFrame + i*step
		tr.Dets = append(tr.Dets, det(f, x0+vx*float64(i*step), y0+vy*float64(i*step), 40, 20))
	}
	return tr
}

func TestTrackFrameBounds(t *testing.T) {
	tr := linearTrack(5, 4, 2, 0, 0, 1, 0)
	if tr.FirstFrame() != 5 || tr.LastFrame() != 11 {
		t.Errorf("frames [%d,%d], want [5,11]", tr.FirstFrame(), tr.LastFrame())
	}
	empty := &Track{}
	if empty.FirstFrame() != -1 || empty.LastFrame() != -1 {
		t.Error("empty track frame bounds should be -1")
	}
}

func TestBoxAtInterpolation(t *testing.T) {
	tr := &Track{Dets: []detect.Detection{det(0, 0, 0, 10, 10), det(10, 100, 0, 10, 10)}}
	b, ok := tr.BoxAt(5)
	if !ok || b.X != 50 {
		t.Errorf("BoxAt(5) = %v, %v", b, ok)
	}
	if _, ok := tr.BoxAt(11); ok {
		t.Error("BoxAt past end should be false")
	}
	if _, ok := tr.BoxAt(-1); ok {
		t.Error("BoxAt before start should be false")
	}
	b0, _ := tr.BoxAt(0)
	if b0.X != 0 {
		t.Errorf("BoxAt(0) = %v", b0)
	}
}

func TestPath(t *testing.T) {
	tr := linearTrack(0, 3, 1, 0, 0, 10, 0)
	p := tr.Path()
	if len(p) != 3 {
		t.Fatalf("path len = %d", len(p))
	}
	if p[1].X != 30 { // center = x + w/2 = 10 + 20
		t.Errorf("path[1] = %v", p[1])
	}
}

func TestMajorityCategory(t *testing.T) {
	tr := &Track{Dets: []detect.Detection{
		{Category: "car"}, {Category: "bus"}, {Category: "car"},
	}}
	if got := tr.MajorityCategory(); got != "car" {
		t.Errorf("MajorityCategory = %s", got)
	}
}

func TestMajorityCategoryTieDeterministic(t *testing.T) {
	// A 2-2 count tie must resolve the same way on every call (the
	// lexicographically smallest category), not by map iteration order:
	// a flapping label changes category-filtered query accuracy between
	// otherwise identical runs.
	tr := &Track{Dets: []detect.Detection{
		{Category: "car"}, {Category: "bus"}, {Category: "bus"}, {Category: "car"},
	}}
	for i := 0; i < 100; i++ {
		if got := tr.MajorityCategory(); got != "bus" {
			t.Fatalf("call %d: MajorityCategory = %q, want bus", i, got)
		}
	}
}

func TestPruneShort(t *testing.T) {
	tracks := []*Track{
		linearTrack(0, 1, 1, 0, 0, 1, 0),
		linearTrack(0, 3, 1, 0, 0, 1, 0),
	}
	out := PruneShort(tracks, 2)
	if len(out) != 1 || len(out[0].Dets) != 3 {
		t.Errorf("PruneShort kept %d tracks", len(out))
	}
}

func TestSORTTracksLinearMotion(t *testing.T) {
	s := NewSORT()
	// Two objects moving on parallel lines, well separated.
	for f := 0; f < 10; f++ {
		dets := []detect.Detection{
			det(f, float64(10*f), 0, 40, 20),
			det(f, float64(10*f), 200, 40, 20),
		}
		s.Update(&FrameContext{FrameIdx: f, GapFrames: 1}, dets)
	}
	tracks := s.Finish()
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tracks))
	}
	for _, tr := range tracks {
		if len(tr.Dets) != 10 {
			t.Errorf("track length = %d, want 10", len(tr.Dets))
		}
	}
}

func TestSORTSurvivesMissedFrames(t *testing.T) {
	s := NewSORT()
	s.MaxMisses = 3
	for f := 0; f < 12; f++ {
		var dets []detect.Detection
		if f != 5 && f != 6 { // two-frame dropout
			dets = append(dets, det(f, float64(5*f), 0, 40, 20))
		}
		s.Update(&FrameContext{FrameIdx: f, GapFrames: 1}, dets)
	}
	tracks := s.Finish()
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d, want 1 (dropout bridged)", len(tracks))
	}
	if len(tracks[0].Dets) != 10 {
		t.Errorf("track detections = %d, want 10", len(tracks[0].Dets))
	}
}

func TestSORTTerminatesLostTracks(t *testing.T) {
	s := NewSORT()
	s.MaxMisses = 1
	s.Update(&FrameContext{FrameIdx: 0, GapFrames: 1}, []detect.Detection{det(0, 0, 0, 40, 20)})
	s.Update(&FrameContext{FrameIdx: 1, GapFrames: 1}, []detect.Detection{det(1, 5, 0, 40, 20)})
	// Object disappears; a new one appears far away much later.
	for f := 2; f < 6; f++ {
		s.Update(&FrameContext{FrameIdx: f, GapFrames: 1}, nil)
	}
	s.Update(&FrameContext{FrameIdx: 6, GapFrames: 1}, []detect.Detection{det(6, 500, 300, 40, 20)})
	s.Update(&FrameContext{FrameIdx: 7, GapFrames: 1}, []detect.Detection{det(7, 505, 300, 40, 20)})
	tracks := s.Finish()
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2 (old track terminated, new started)", len(tracks))
	}
}

func TestSORTIDsSequentialAndOrdered(t *testing.T) {
	s := NewSORT()
	s.Update(&FrameContext{FrameIdx: 0, GapFrames: 1}, []detect.Detection{
		det(0, 0, 0, 40, 20), det(0, 300, 300, 40, 20),
	})
	s.Update(&FrameContext{FrameIdx: 1, GapFrames: 1}, []detect.Detection{
		det(1, 5, 0, 40, 20), det(1, 305, 300, 40, 20),
	})
	tracks := s.Finish()
	for i, tr := range tracks {
		if tr.ID != i {
			t.Errorf("track %d has ID %d", i, tr.ID)
		}
		if tr.Category == "" {
			t.Error("category not assigned")
		}
	}
}

func TestSubSampleAtGap(t *testing.T) {
	tr := linearTrack(0, 10, 1, 0, 0, 1, 0)
	sub := SubSampleAtGap(tr.Dets, 3)
	want := []int{0, 3, 6, 9}
	if len(sub) != len(want) {
		t.Fatalf("subsample = %d dets", len(sub))
	}
	for i, d := range sub {
		if d.FrameIdx != want[i] {
			t.Errorf("subsample[%d].frame = %d, want %d", i, d.FrameIdx, want[i])
		}
	}
	if got := SubSampleAtGap(nil, 2); got != nil {
		t.Error("empty input should return nil")
	}
	// Gap 1 returns everything.
	if got := SubSampleAtGap(tr.Dets, 1); len(got) != 10 {
		t.Errorf("gap 1 kept %d", len(got))
	}
}

func TestDetFeaturesNormalized(t *testing.T) {
	d := det(4, 100, 50, 40, 20)
	f := DetFeatures(d, 400, 200, 10, 5)
	if len(f) != FeatDim {
		t.Fatalf("feature dim = %d, want %d", len(f), FeatDim)
	}
	if f[0] != 0.3 { // center x 120/400
		t.Errorf("cx feature = %v", f[0])
	}
	if f[6] != 0.5 { // 5 frames at 10 fps
		t.Errorf("t_elapsed feature = %v", f[6])
	}
}

func TestMotionFeaturesPredicts(t *testing.T) {
	prefix := []detect.Detection{det(0, 0, 0, 40, 20), det(2, 20, 0, 40, 20)}
	// Perfect continuation at the constant velocity (10 px/frame).
	good := det(4, 40, 0, 40, 20)
	bad := det(4, 200, 100, 40, 20)
	fg := MotionFeatures(prefix, good, 400, 200)
	fb := MotionFeatures(prefix, bad, 400, 200)
	if len(fg) != MotionDim {
		t.Fatalf("motion dim = %d", len(fg))
	}
	if ab := fg[0]*fg[0] + fg[1]*fg[1]; ab > 1e-9 {
		t.Errorf("perfect continuation residual = %v, want 0", ab)
	}
	if fb[0]*fb[0]+fb[1]*fb[1] < 0.1 {
		t.Error("bad continuation should have a large residual")
	}
	if fg[4] <= fb[4] {
		t.Error("predicted IoU should be higher for the good candidate")
	}
	// Single-detection prefix: velocity unknown, residual = displacement.
	one := MotionFeatures(prefix[:1], good, 400, 200)
	if one[0] == 0 {
		t.Error("unknown velocity should leave a displacement residual")
	}
}
