// Package track implements OTIF's multi-object trackers: the heuristic
// SORT tracker used to bootstrap theta_best (§3.3), the recurrent
// reduced-rate tracker that is the paper's second core contribution (§3.4),
// and the pairwise (Miris-style GNN) matcher used by the Miris baseline and
// the ablation study. All trackers consume detections produced by the
// detection module at a fixed sampling gap and emit object tracks.
package track

import (
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/obs"
)

// metUpdates counts tracker Update calls across all tracker kinds; the
// handle is pre-registered so the per-frame record is a single atomic add.
var metUpdates = obs.Default.Counter("track.updates")

// Track is a sequence of detections of one unique object.
type Track struct {
	ID       int
	Category string
	Dets     []detect.Detection
}

// FirstFrame returns the frame index of the first detection.
func (t *Track) FirstFrame() int {
	if len(t.Dets) == 0 {
		return -1
	}
	return t.Dets[0].FrameIdx
}

// LastFrame returns the frame index of the last detection.
func (t *Track) LastFrame() int {
	if len(t.Dets) == 0 {
		return -1
	}
	return t.Dets[len(t.Dets)-1].FrameIdx
}

// Path returns the polyline through the detection centers.
func (t *Track) Path() geom.Path {
	p := make(geom.Path, len(t.Dets))
	for i, d := range t.Dets {
		p[i] = d.Box.Center()
	}
	return p
}

// BoxAt returns the interpolated bounding box at the given frame index and
// whether the track spans that frame. Between detections the box is
// linearly interpolated; outside the detection range ok is false.
func (t *Track) BoxAt(frameIdx int) (geom.Rect, bool) {
	n := len(t.Dets)
	if n == 0 || frameIdx < t.Dets[0].FrameIdx || frameIdx > t.Dets[n-1].FrameIdx {
		return geom.Rect{}, false
	}
	for i := 0; i+1 < n; i++ {
		a, b := t.Dets[i], t.Dets[i+1]
		if frameIdx < a.FrameIdx || frameIdx > b.FrameIdx {
			continue
		}
		if b.FrameIdx == a.FrameIdx {
			return a.Box, true
		}
		f := float64(frameIdx-a.FrameIdx) / float64(b.FrameIdx-a.FrameIdx)
		return geom.Rect{
			X: a.Box.X + (b.Box.X-a.Box.X)*f,
			Y: a.Box.Y + (b.Box.Y-a.Box.Y)*f,
			W: a.Box.W + (b.Box.W-a.Box.W)*f,
			H: a.Box.H + (b.Box.H-a.Box.H)*f,
		}, true
	}
	return t.Dets[n-1].Box, true
}

// MajorityCategory returns the most frequent detection category of the
// track (tracks inherit their category from their detections). Count
// ties break to the lexicographically smallest category, not map
// iteration order, so repeated runs label tracks identically.
func (t *Track) MajorityCategory() string {
	counts := map[string]int{}
	for _, d := range t.Dets {
		counts[d.Category]++
	}
	best, bestN := "", -1
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	return best
}

// PruneShort removes tracks with fewer than minLen detections. The paper
// prunes length-1 tracks, which mostly correspond to spurious detections.
func PruneShort(tracks []*Track, minLen int) []*Track {
	out := tracks[:0]
	for _, t := range tracks {
		if len(t.Dets) >= minLen {
			out = append(out, t)
		}
	}
	return out
}

// Tracker is the interface shared by all tracking methods: feed it the
// detections of each processed frame in order, then Finish to collect the
// completed tracks.
type Tracker interface {
	// Update ingests the detections of frame frameIdx. gapFrames is the
	// number of native frames since the previously processed frame
	// (equal to the sampling gap during normal execution).
	Update(ctx *FrameContext, dets []detect.Detection)
	// Finish flushes active tracks and returns all tracks, assigning
	// sequential IDs.
	Finish() []*Track
}

// FrameContext carries per-frame information to Tracker.Update.
type FrameContext struct {
	FrameIdx  int
	GapFrames int
}
