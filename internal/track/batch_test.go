package track

import (
	"math/rand"
	"testing"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/geom"
)

// The batched recurrent inference path must be indistinguishable from the
// scalar reference path: identical tracks, identical hidden-state
// evolution, identical confidences. These tests drive both paths over the
// same detection streams — including empty frames (0 active tracks) and
// single-object clips (1 active track) — and require bit-identical output.

// jitteredStream builds a per-frame detection stream with objects entering
// and leaving, plus dropped detections, so both tracker paths see rounds
// with 0, 1 and many active tracks, misses, terminations and restarts.
func jitteredStream(rng *rand.Rand, frames, gap int) map[int][]detect.Detection {
	byFrame := map[int][]detect.Detection{}
	nObj := 1 + rng.Intn(4)
	for k := 0; k < nObj; k++ {
		x0 := rng.Float64() * 200
		y0 := float64(k)*140 + 20
		vx := 3 + rng.Float64()*5
		enter := rng.Intn(frames / 2)
		leave := enter + frames/3 + rng.Intn(frames/2)
		for f := enter; f < leave && f < frames; f += gap {
			if rng.Float64() < 0.15 {
				continue // dropped detection -> a miss round
			}
			byFrame[f] = append(byFrame[f], detect.Detection{
				FrameIdx: f,
				Box:      geom.Rect{X: x0 + vx*float64(f), Y: y0, W: 40, H: 20},
				Score:    0.9, Category: "car",
				AppMean: 100 + float64(k)*30, AppStd: 15,
			})
		}
	}
	return byFrame
}

func runRecurrent(model *RecurrentModel, byFrame map[int][]detect.Detection, frames, gap int) ([]*Track, []float64) {
	tracker := NewRecurrentTracker(model, costmodel.NewAccountant())
	var confs []float64
	for f := 0; f < frames; f += gap {
		tracker.Update(&FrameContext{FrameIdx: f, GapFrames: gap}, byFrame[f])
		confs = append(confs, tracker.LastConfidence())
	}
	return tracker.Finish(), confs
}

func requireSameTracks(t *testing.T, got, want []*Track) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("batched path produced %d tracks, scalar %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Category != want[i].Category {
			t.Fatalf("track %d: (%d, %s) != (%d, %s)", i,
				got[i].ID, got[i].Category, want[i].ID, want[i].Category)
		}
		if len(got[i].Dets) != len(want[i].Dets) {
			t.Fatalf("track %d: %d dets != %d dets", i, len(got[i].Dets), len(want[i].Dets))
		}
		for j := range want[i].Dets {
			if got[i].Dets[j] != want[i].Dets[j] {
				t.Fatalf("track %d det %d differs: %+v != %+v", i, j,
					got[i].Dets[j], want[i].Dets[j])
			}
		}
	}
}

// TestRecurrentBatchedMatchesScalar is the differential test of the
// batched GRU inference path: over random detection streams, batch-on and
// batch-off runs must produce bit-identical tracks and confidences.
func TestRecurrentBatchedMatchesScalar(t *testing.T) {
	model, _ := trainedRecurrent(t, 31)
	defer SetBatchedInference(true)
	const frames, gap = 80, 4
	for trial := 0; trial < 8; trial++ {
		byFrame := jitteredStream(rand.New(rand.NewSource(int64(100+trial))), frames, gap)

		SetBatchedInference(false)
		wantTracks, wantConfs := runRecurrent(model, byFrame, frames, gap)
		SetBatchedInference(true)
		gotTracks, gotConfs := runRecurrent(model, byFrame, frames, gap)

		requireSameTracks(t, gotTracks, wantTracks)
		for i := range wantConfs {
			if gotConfs[i] != wantConfs[i] {
				t.Fatalf("trial %d round %d: confidence %v != %v (must be bit-identical)",
					trial, i, gotConfs[i], wantConfs[i])
			}
		}
	}
}

// TestRecurrentBatchedHiddenStatesBitIdentical drives both paths in
// lockstep and compares every track's hidden vector after every round,
// which catches divergence long before it shows up in the final tracks.
func TestRecurrentBatchedHiddenStatesBitIdentical(t *testing.T) {
	model, _ := trainedRecurrent(t, 32)
	defer SetBatchedInference(true)
	const frames, gap = 60, 4
	byFrame := jitteredStream(rand.New(rand.NewSource(200)), frames, gap)

	scalar := NewRecurrentTracker(model, costmodel.NewAccountant())
	batched := NewRecurrentTracker(model, costmodel.NewAccountant())
	for f := 0; f < frames; f += gap {
		fc := FrameContext{FrameIdx: f, GapFrames: gap}
		SetBatchedInference(false)
		scalar.Update(&fc, byFrame[f])
		SetBatchedInference(true)
		batched.Update(&fc, byFrame[f])

		if len(scalar.active) != len(batched.active) {
			t.Fatalf("frame %d: %d active tracks scalar, %d batched",
				f, len(scalar.active), len(batched.active))
		}
		for i := range scalar.active {
			sh, bh := scalar.active[i].hidden, batched.active[i].hidden
			for k := range sh {
				if sh[k] != bh[k] {
					t.Fatalf("frame %d track %d hidden[%d]: %v != %v (must be bit-identical)",
						f, i, k, bh[k], sh[k])
				}
			}
		}
	}
	requireSameTracks(t, batched.Finish(), scalar.Finish())
}

// TestScratchPoolRecycles pins the pooling contract: a tracker's Finish
// returns its scratch, and a later tracker reuses it with its grown
// buffers intact (observable through the pool counters). sync.Pool may
// drop items at any time — the race detector does so deliberately — so the
// test retries and only skips if the pool never returns a scratch.
func TestScratchPoolRecycles(t *testing.T) {
	hit0, miss0 := metScratchHit.Value(), metScratchMiss.Value()
	reused := false
	for i := 0; i < 100 && !reused; i++ {
		s1 := getScratch()
		grow(&s1.usedDet, 64)
		putScratch(s1)
		s2 := getScratch()
		if s2 == s1 {
			if cap(s2.usedDet) < 64 {
				t.Fatalf("pooled scratch lost its grown buffers: cap %d", cap(s2.usedDet))
			}
			reused = true
		}
		putScratch(s2)
	}
	if metScratchHit.Value() == hit0 && metScratchMiss.Value() == miss0 {
		t.Error("pool counters did not move")
	}
	if !reused {
		t.Skip("sync.Pool never returned the same scratch (drops are legal)")
	}
}

// TestVecArenaZeroesAndRecycles pins the hidden-vector arena contract:
// chunks come back zeroed (new tracks step from the zero hidden state even
// when the slab held stale values) and release reuses slabs.
func TestVecArenaZeroesAndRecycles(t *testing.T) {
	var a vecArena[float64]
	v := a.alloc(16)
	for i := range v {
		v[i] = 3.5
	}
	a.release()
	w := a.alloc(16)
	if &v[0] != &w[0] {
		t.Errorf("arena did not reuse its slab after release")
	}
	for i, x := range w {
		if x != 0 {
			t.Fatalf("arena chunk not zeroed at %d: %v", i, x)
		}
	}
	// Steady state allocates nothing.
	a.release()
	if n := testing.AllocsPerRun(50, func() {
		a.release()
		for k := 0; k < 100; k++ {
			a.alloc(16)
		}
	}); n != 0 {
		t.Errorf("arena steady state allocates %v per cycle, want 0", n)
	}
}

// TestSORTUpdateZeroAllocSteadyState pins the SORT scratch conversion: an
// association round with stable tracks allocates nothing beyond retained
// track state.
func TestSORTUpdateZeroAllocSteadyState(t *testing.T) {
	mkDets := func(f int) []detect.Detection {
		return []detect.Detection{
			{FrameIdx: f, Box: geom.Rect{X: 10 + float64(f), Y: 20, W: 40, H: 20}, Score: 0.9, Category: "car"},
			{FrameIdx: f, Box: geom.Rect{X: 300 - float64(f), Y: 200, W: 40, H: 20}, Score: 0.9, Category: "car"},
		}
	}
	s := NewSORT()
	f := 0
	for ; f < 40; f += 2 {
		s.Update(&FrameContext{FrameIdx: f, GapFrames: 2}, mkDets(f))
	}
	// Tracks are established and matched every round: the only allocations
	// left are the occasional Dets append growth, which doubling capacity
	// makes amortized-zero; a single round must allocate at most once.
	n := testing.AllocsPerRun(20, func() {
		s.Update(&FrameContext{FrameIdx: f, GapFrames: 2}, mkDets(f))
		f += 2
	})
	if n > 1 {
		t.Errorf("SORT.Update steady state allocates %v per round, want <= 1", n)
	}
	s.Finish()
}
