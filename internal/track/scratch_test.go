package track

import (
	"math/rand"
	"testing"

	"otif/internal/detect"
	"otif/internal/geom"
)

// TestAssignScratchMatchesPackageFuncs proves the scratch-backed Hungarian
// solver returns exactly what the allocating package functions return,
// including across reuse of one scratch for differently shaped problems.
func TestAssignScratchMatchesPackageFuncs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var s AssignScratch
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
				if rng.Intn(4) == 0 {
					cost[i][j] = 1e6 // blocked
				}
			}
		}
		want := AssignWithThreshold(cost, 5, 1e6)
		got := s.AssignWithThreshold(cost, 5, 1e6)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d != %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d row %d: %d != %d (cost %v)", trial, i, got[i], want[i], cost)
			}
		}
	}
}

// TestAssignScratchZeroAlloc pins the assignment hot path: once warmed, a
// scratch-backed solve allocates nothing.
func TestAssignScratchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cost := make([][]float64, 6)
	for i := range cost {
		cost[i] = make([]float64, 4) // n > m exercises the transpose path
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	var s AssignScratch
	s.AssignWithThreshold(cost, 5, 1e6) // warm the buffers
	if n := testing.AllocsPerRun(100, func() { s.AssignWithThreshold(cost, 5, 1e6) }); n != 0 {
		t.Errorf("AssignScratch.AssignWithThreshold allocates %v per op, want 0", n)
	}
}

// TestAppendFeaturesMatchOriginals proves the append-style feature
// builders produce bit-identical vectors to the allocating originals.
func TestAppendFeaturesMatchOriginals(t *testing.T) {
	d1 := detect.Detection{FrameIdx: 4, Box: geom.Rect{X: 30, Y: 40, W: 50, H: 24}, Score: 0.8, AppMean: 120, AppStd: 30}
	d2 := detect.Detection{FrameIdx: 8, Box: geom.Rect{X: 44, Y: 47, W: 52, H: 25}, Score: 0.7, AppMean: 118, AppStd: 28}
	d3 := detect.Detection{FrameIdx: 12, Box: geom.Rect{X: 60, Y: 55, W: 51, H: 26}, Score: 0.9, AppMean: 121, AppStd: 29}

	want := DetFeatures(d2, 400, 200, 10, 4)
	got := AppendDetFeatures(nil, d2, 400, 200, 10, 4)
	requireSame(t, "DetFeatures", got, want)

	want = PairFeatures(d1, d2, 400, 200, 10, 4)
	got = AppendPairFeatures(nil, d1, d2, 400, 200, 10, 4)
	requireSame(t, "PairFeatures", got, want)

	prefix := []detect.Detection{d1, d2}
	want = MotionFeatures(prefix, d3, 400, 200)
	got = AppendMotionFeatures(nil, prefix, d3, 400, 200)
	requireSame(t, "MotionFeatures", got, want)
}

func requireSame(t *testing.T, what string, got []float64, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != %v (must be bit-identical)", what, i, got[i], want[i])
		}
	}
}
