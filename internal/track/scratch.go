package track

import (
	"otif/internal/detect"
	"otif/internal/nn"
)

// This file holds the reusable working storage of the online trackers.
// Each tracker instance carries one matchScratch; every Update overwrites
// its buffers, which is safe because a tracker is driven by a single
// goroutine (parallel clip execution constructs one tracker per clip).
// Threading the scratch through feature construction, matching-network
// evaluation, and assignment keeps the per-processed-frame hot path free
// of heap allocations; only genuinely retained state (tracks, their
// hidden vectors, detection lists) is still allocated.

// grow resizes *s to length n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// growVec is grow for nn.Vec buffers.
func growVec(v *nn.Vec, n int) nn.Vec {
	if cap(*v) < n {
		*v = make(nn.Vec, n)
	}
	*v = (*v)[:n]
	return *v
}

// growVec32 is grow for nn.Vec32 buffers.
func growVec32(v *nn.Vec32, n int) nn.Vec32 {
	if cap(*v) < n {
		*v = make(nn.Vec32, n)
	}
	*v = (*v)[:n]
	return *v
}

// growMatrix shapes an n x m matrix over one flat backing buffer, reusing
// both the row-header slice and the backing storage. Contents are
// unspecified.
func growMatrix(rows *[][]float64, buf *[]float64, n, m int) [][]float64 {
	b := grow(buf, n*m)
	r := grow(rows, n)
	for i := range r {
		r[i] = b[i*m : (i+1)*m]
	}
	return r
}

// matchScratch is the per-tracker working storage of one Update round.
// Instances are recycled through the scratch pool (see pool.go): trackers
// acquire one lazily on first Update and release it in Finish, so clips
// executed back to back reuse fully grown buffers.
type matchScratch struct {
	nn     nn.Scratch      // matching-MLP and GRU buffers
	assign AssignScratch   // Hungarian working storage
	batch  nn.BatchScratch // batched-GRU gate matrices

	featBuf   []float64   // flat per-detection feature matrix
	feats     []nn.Vec    // row views into featBuf
	motion    []float64   // one motion-feature vector
	in        nn.Vec      // matching-network input (concat buffer)
	startFeat []float64   // feature vector for newly started tracks
	costBuf   []float64   // flat cost-matrix backing
	cost      [][]float64 // row views into costBuf
	usedDet   []bool

	// Batched-inference gather buffers: matched tracks and their detection
	// indices, plus the flat row-major hidden/feature matrices handed to
	// GRUCell.StepBatchInferInto.
	batchTracks []*recTrack
	batchDet    []int
	hB          nn.Vec
	xB          []float64

	// Float32-backend mirrors of the buffers above (see nn.Precision). A
	// tracker uses one precision for its whole life, so only one family of
	// buffers grows; the idle family costs a few empty slice headers.
	nn32        nn.Scratch32
	batch32     nn.BatchScratch32
	featBuf32   []float32
	feats32     []nn.Vec32
	motion32    []float32
	in32        nn.Vec32
	startFeat32 []float32
	hB32        nn.Vec32
	xB32        []float32

	// arena backs the hidden vectors of started tracks; it is released
	// when the scratch returns to the pool (tracker Finish), after which
	// no track referencing those vectors exists. arena32 is its
	// float32-backend counterpart.
	arena   vecArena[float64]
	arena32 vecArena[float32]
}

// detFeatureRows fills the scratch's flat feature matrix with one
// DetFeatures row per detection (all with the same elapsed-frames input)
// and returns per-row views. The views are valid until the next call.
func (s *matchScratch) detFeatureRows(dets []detect.Detection, nomW, nomH, fps, tElapsedFrames int) []nn.Vec {
	buf := s.featBuf[:0]
	for _, d := range dets {
		buf = AppendDetFeatures(buf, d, nomW, nomH, fps, tElapsedFrames)
	}
	s.featBuf = buf
	feats := grow(&s.feats, len(dets))
	for j := range feats {
		feats[j] = nn.Vec(buf[j*FeatDim : (j+1)*FeatDim])
	}
	return feats
}

// detFeatureRows32 is detFeatureRows for the float32 backend.
func (s *matchScratch) detFeatureRows32(dets []detect.Detection, nomW, nomH, fps, tElapsedFrames int) []nn.Vec32 {
	buf := s.featBuf32[:0]
	for _, d := range dets {
		buf = AppendDetFeatures32(buf, d, nomW, nomH, fps, tElapsedFrames)
	}
	s.featBuf32 = buf
	feats := grow(&s.feats32, len(dets))
	for j := range feats {
		feats[j] = nn.Vec32(buf[j*FeatDim : (j+1)*FeatDim])
	}
	return feats
}
