package track

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/nn"
)

// PairModel is the Miris-style pairwise matching model: an MLP that scores
// whether two detections in consecutive processed frames belong to the same
// object. Unlike the recurrent model it sees only the track's last
// detection, so it cannot exploit multi-frame motion cues — the limitation
// §3.4 of the paper calls out and the ablation (Table 4) quantifies.
type PairModel struct {
	Match *nn.MLP
	NomW  int
	NomH  int
	FPS   int

	// once32 guards the lazy one-time float32 conversion of the trained
	// weights; see RecurrentModel.models32 for the contract.
	once32  sync.Once
	match32 *nn.MLP32
}

// model32 returns the float32 twin of the trained matching MLP, converting
// it on first use. Safe for concurrent callers.
func (m *PairModel) model32() *nn.MLP32 {
	m.once32.Do(func() { m.match32 = m.Match.To32() })
	return m.match32
}

// NewPairModel creates an untrained pairwise matching model.
func NewPairModel(nomW, nomH, fps int, rng *rand.Rand) *PairModel {
	return &PairModel{
		Match: nn.NewMLP([]int{pairFeatDim, 16, 1}, nn.ReLUAct, nn.SigmoidAct, rng),
		NomW:  nomW,
		NomH:  nomH,
		FPS:   fps,
	}
}

// PairTracker applies a PairModel online, forming tracks as chains of
// frame-to-frame matches.
type PairTracker struct {
	Model     *PairModel
	MinProb   float64
	MaxMisses int
	MaxSpeed  float64
	Acct      *costmodel.Accountant
	// Prec selects the compute backend for this tracker instance; the zero
	// value is the float64 reference. Set before the first Update.
	Prec nn.Precision

	active []*pairTrack
	done   []*Track

	// scratch makes each Update round allocation-free; it also means a
	// tracker instance must be driven by a single goroutine. It is drawn
	// from the scratch pool on first Update and released by Finish.
	scratch *matchScratch
}

type pairTrack struct {
	track  Track
	misses int
}

// NewPairTracker wraps a trained pair model with default inference
// settings.
func NewPairTracker(model *PairModel, acct *costmodel.Accountant) *PairTracker {
	return &PairTracker{Model: model, MinProb: 0.5, MaxMisses: 2, MaxSpeed: 500, Acct: acct}
}

// Update implements Tracker.
func (p *PairTracker) Update(ctx *FrameContext, dets []detect.Detection) {
	metUpdates.Inc()
	if len(p.active) == 0 {
		for _, d := range dets {
			p.start(d)
		}
		return
	}
	m := p.Model
	if p.scratch == nil {
		p.scratch = getScratch()
	}
	s := p.scratch
	f32 := p.Prec == nn.Float32
	var match32 *nn.MLP32
	if f32 {
		match32 = m.model32()
	}
	const blocked = 1e6
	maxDisp := p.MaxSpeed*float64(ctx.GapFrames)/float64(m.FPS) + 0.08*float64(m.NomW)
	cost := growMatrix(&s.cost, &s.costBuf, len(p.active), len(dets))
	scored := 0
	for i, tr := range p.active {
		last := tr.track.Dets[len(tr.track.Dets)-1]
		for j, d := range dets {
			if last.Box.Center().Dist(d.Box.Center()) > maxDisp {
				cost[i][j] = blocked
				continue
			}
			scored++
			var prob float64
			if f32 {
				s.featBuf32 = AppendPairFeatures32(s.featBuf32[:0], last, d, m.NomW, m.NomH, m.FPS, ctx.GapFrames)
				prob = float64(match32.ApplyWith(&s.nn32, nn.Vec32(s.featBuf32))[0])
			} else {
				s.featBuf = AppendPairFeatures(s.featBuf[:0], last, d, m.NomW, m.NomH, m.FPS, ctx.GapFrames)
				prob = m.Match.ApplyWith(&s.nn, nn.Vec(s.featBuf))[0]
			}
			cost[i][j] = -math.Log(math.Max(prob, 1e-9))
		}
	}
	// One accountant charge per association round rather than per scored
	// pair keeps the accountant out of the innermost loop.
	if scored > 0 {
		p.Acct.Add(costmodel.OpTrack, costmodel.TrackerPerAssoc*float64(scored))
	}
	assign := s.assign.AssignWithThreshold(cost, -math.Log(p.MinProb), blocked)

	usedDet := grow(&s.usedDet, len(dets))
	clear(usedDet)
	active := p.active
	remaining := p.active[:0] // in-place filter; reads stay ahead of writes
	for i, tr := range active {
		j := assign[i]
		if j < 0 {
			tr.misses++
			if tr.misses > p.MaxMisses {
				p.done = append(p.done, cloneTrack(&tr.track))
			} else {
				remaining = append(remaining, tr)
			}
			continue
		}
		usedDet[j] = true
		tr.track.Dets = append(tr.track.Dets, dets[j])
		tr.misses = 0
		remaining = append(remaining, tr)
	}
	for i := len(remaining); i < len(active); i++ {
		active[i] = nil
	}
	p.active = remaining
	for j, d := range dets {
		if !usedDet[j] {
			p.start(d)
		}
	}
}

func (p *PairTracker) start(d detect.Detection) {
	p.active = append(p.active, &pairTrack{track: Track{Dets: []detect.Detection{d}}})
}

// Finish implements Tracker.
func (p *PairTracker) Finish() []*Track {
	for _, tr := range p.active {
		p.done = append(p.done, cloneTrack(&tr.track))
	}
	p.active = nil
	out := p.done
	p.done = nil
	putScratch(p.scratch)
	p.scratch = nil
	sort.Slice(out, func(i, j int) bool { return out[i].FirstFrame() < out[j].FirstFrame() })
	for i, t := range out {
		t.ID = i
		t.Category = t.MajorityCategory()
	}
	return out
}
