package track

import (
	"sync"
	"sync/atomic"

	"otif/internal/obs"
)

// This file implements pooled per-clip allocation for the trackers. Clip
// execution constructs one tracker per clip, so without pooling every clip
// re-grows the same working storage: the cost-matrix and Hungarian buffers,
// the feature scratch, the batched-GRU gate matrices, and one small hidden
// vector per started track. A sync.Pool of matchScratch instances (each
// carrying a slab arena for hidden vectors) lets a finished clip hand its
// fully grown buffers to the next clip on the same worker. Pool traffic is
// observable through the track.pool.* counters; pooling is purely a memory
// optimization and never changes results.

// Pool effectiveness counters: a hit means a tracker reused a previously
// grown scratch, a miss means a fresh one was built.
var (
	metScratchHit  = obs.Default.Counter("track.pool.scratch.hit")
	metScratchMiss = obs.Default.Counter("track.pool.scratch.miss")
)

// scratchPool recycles matchScratch instances across clips. No New
// function: a nil Get is how misses are counted.
var scratchPool sync.Pool

// getScratch returns a ready matchScratch, reusing a pooled one when
// available. Buffer contents are unspecified; every user sizes its buffers
// before reading them.
func getScratch() *matchScratch {
	if v := scratchPool.Get(); v != nil {
		metScratchHit.Inc()
		return v.(*matchScratch)
	}
	metScratchMiss.Inc()
	return &matchScratch{}
}

// putScratch releases the tracker references a scratch may hold, resets
// its hidden-vector arena and returns it to the pool. The caller must not
// use s (or any hidden vector drawn from its arena) afterwards.
func putScratch(s *matchScratch) {
	if s == nil {
		return
	}
	for i := range s.batchTracks {
		s.batchTracks[i] = nil
	}
	s.batchTracks = s.batchTracks[:0]
	s.arena.release()
	s.arena32.release()
	scratchPool.Put(s)
}

// vecSlabFloats is the slab size of the hidden-vector arena. One slab holds
// 256 hidden vectors at the default hidden size of 16.
const vecSlabFloats = 4096

// vecArena hands out small zeroed vector chunks carved from reusable
// slabs, generic over the backend element type (vecArena[float64] backs
// nn.Vec hidden states, vecArena[float32] the float32 backend's). Chunks
// stay valid until release; release keeps the slabs, so an arena that
// cycles through the scratch pool reaches a steady state where starting a
// track allocates nothing. Oversized requests fall back to the heap.
type vecArena[F float32 | float64] struct {
	slabs [][]F
	cur   int // index of the slab currently being carved
	off   int // carve offset within that slab
}

// alloc returns a zeroed vector of length n from the arena.
func (a *vecArena[F]) alloc(n int) []F {
	if n > vecSlabFloats {
		return make([]F, n)
	}
	for {
		if a.cur >= len(a.slabs) {
			a.slabs = append(a.slabs, make([]F, vecSlabFloats))
		}
		s := a.slabs[a.cur]
		if a.off+n <= len(s) {
			v := s[a.off : a.off+n : a.off+n]
			a.off += n
			clear(v)
			return v
		}
		a.cur++
		a.off = 0
	}
}

// release invalidates every vector handed out and makes the slabs
// available for reuse.
func (a *vecArena[F]) release() {
	a.cur, a.off = 0, 0
}

// batchedGRU gates the recurrent tracker's batched inference path: when
// on, each Update advances all matched tracks' hidden states with one
// GRUCell.StepBatchInferInto call instead of one StepInferInto per track.
// Both paths are bit-identical (pinned by differential tests); the toggle
// exists so tests and benchmarks can compare them.
var batchedGRU atomic.Bool

func init() { batchedGRU.Store(true) }

// SetBatchedInference turns the batched recurrent inference path on or
// off process-wide. Results are bit-for-bit identical in both states.
func SetBatchedInference(on bool) { batchedGRU.Store(on) }

// BatchedInference reports whether the batched inference path is active.
func BatchedInference() bool { return batchedGRU.Load() }
