package track

import (
	"math/rand"

	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/nn"
)

// TrainClip is one training clip's worth of tracker training data: the
// tracks S* computed by the best-accuracy configuration theta_best over the
// training set. Appearance statistics ride along on each detection.
type TrainClip struct {
	Tracks []*Track
}

// TrainOptions configures tracker training.
type TrainOptions struct {
	// Gaps is the maximal gap sequence G = <1, 2, 4, ..., 2^n>; training
	// examples sub-sample tracks at gaps drawn from it so the model stays
	// robust across every sampling rate the tuner may pick (§3.4).
	Gaps []int
	// Examples is the number of (track, gap) training examples to draw.
	Examples int
	// LR is the SGD learning rate.
	LR float64
	// Seed drives example sampling and negative mining.
	Seed int64
}

// DefaultTrainOptions returns the training settings used by the pipeline.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{Gaps: []int{1, 2, 4, 8, 16, 32}, Examples: 6000, LR: 0.05, Seed: 1}
}

// SubSampleAtGap implements the paper's example construction: starting from
// the track's first detection, keep each subsequent detection that is at
// least g frames after the previously kept one.
func SubSampleAtGap(dets []detect.Detection, g int) []detect.Detection {
	if len(dets) == 0 {
		return nil
	}
	out := []detect.Detection{dets[0]}
	last := dets[0].FrameIdx
	for _, d := range dets[1:] {
		if d.FrameIdx-last >= g {
			out = append(out, d)
			last = d.FrameIdx
		}
	}
	return out
}

// TrainRecurrent trains the recurrent matching model on theta_best tracks
// using gap augmentation: each example samples a track s ~ S* and a gap
// g ~ G, sub-samples the track at gap g, runs the GRU over a random prefix,
// and trains the matching MLP (and, through it, the GRU) to score the true
// next detection 1 and contemporaneous detections of other tracks 0.
func TrainRecurrent(model *RecurrentModel, clips []TrainClip, opts TrainOptions, acct *costmodel.Accountant) {
	rng := rand.New(rand.NewSource(opts.Seed))
	type indexed struct {
		clip  int
		track *Track
	}
	var pool []indexed
	for ci, c := range clips {
		for _, t := range c.Tracks {
			if len(t.Dets) >= 3 {
				pool = append(pool, indexed{ci, t})
			}
		}
	}
	if len(pool) == 0 {
		return
	}
	const clip = 1.0
	for n := 0; n < opts.Examples; n++ {
		pick := pool[rng.Intn(len(pool))]
		g := opts.Gaps[rng.Intn(len(opts.Gaps))]
		dets := SubSampleAtGap(pick.track.Dets, g)
		if len(dets) < 2 {
			continue
		}
		// Random split: prefix of length >= 1, target is the next det.
		split := 1 + rng.Intn(len(dets)-1)
		prefix := dets[:split]
		target := dets[split]

		feats := prefixFeatures(model, prefix)
		h, steps := model.GRU.RunSequence(feats)

		tgtElapsed := target.FrameIdx - prefix[len(prefix)-1].FrameIdx
		tgtFeat := DetFeatures(target, model.NomW, model.NomH, model.FPS, tgtElapsed)

		// Negatives: detections from other tracks near the target frame.
		negs := sampleNegatives(clips[pick.clip].Tracks, pick.track, target.FrameIdx, 2, rng)

		dH := nn.NewVec(model.Hidden)
		trainPair := func(cand detect.Detection, f nn.Vec, label float64) {
			motion := MotionFeatures(prefix, cand, model.NomW, model.NomH)
			p := model.Match.Forward(nn.Concat(h, f, motion))
			_, grad := nn.BCELoss(p[0], label)
			dIn := model.Match.Backward(nn.Vec{grad}, opts.LR, clip)
			for i := 0; i < model.Hidden; i++ {
				dH[i] += dIn[i]
			}
		}
		trainPair(target, tgtFeat, 1)
		for _, neg := range negs {
			elapsed := neg.FrameIdx - prefix[len(prefix)-1].FrameIdx
			if elapsed < 1 {
				elapsed = 1
			}
			f := DetFeatures(neg, model.NomW, model.NomH, model.FPS, elapsed)
			trainPair(neg, f, 0)
		}
		model.GRU.SequenceBackward(steps, dH, opts.LR*0.5, clip)
		acct.Add(costmodel.OpTrainTrkr, costmodel.TrackerPerAssoc*float64(1+len(negs))*3)
	}
}

// TrainPair trains the Miris-style pairwise matcher with the same gap
// augmentation, on (previous detection, next detection) pairs.
func TrainPair(model *PairModel, clips []TrainClip, opts TrainOptions, acct *costmodel.Accountant) {
	rng := rand.New(rand.NewSource(opts.Seed))
	type indexed struct {
		clip  int
		track *Track
	}
	var pool []indexed
	for ci, c := range clips {
		for _, t := range c.Tracks {
			if len(t.Dets) >= 2 {
				pool = append(pool, indexed{ci, t})
			}
		}
	}
	if len(pool) == 0 {
		return
	}
	const clip = 1.0
	for n := 0; n < opts.Examples; n++ {
		pick := pool[rng.Intn(len(pool))]
		g := opts.Gaps[rng.Intn(len(opts.Gaps))]
		dets := SubSampleAtGap(pick.track.Dets, g)
		if len(dets) < 2 {
			continue
		}
		i := rng.Intn(len(dets) - 1)
		prev, next := dets[i], dets[i+1]
		elapsed := next.FrameIdx - prev.FrameIdx

		trainPair := func(cand detect.Detection, label float64) {
			f := PairFeatures(prev, cand, model.NomW, model.NomH, model.FPS, elapsed)
			p := model.Match.Forward(f)
			_, grad := nn.BCELoss(p[0], label)
			model.Match.Backward(nn.Vec{grad}, opts.LR, clip)
		}
		trainPair(next, 1)
		for _, neg := range sampleNegatives(clips[pick.clip].Tracks, pick.track, next.FrameIdx, 2, rng) {
			trainPair(neg, 0)
		}
		acct.Add(costmodel.OpTrainTrkr, costmodel.TrackerPerAssoc*3)
	}
}

// prefixFeatures computes detection-level features for a track prefix; the
// t_elapsed of each detection is the frame distance to its predecessor.
func prefixFeatures(model *RecurrentModel, prefix []detect.Detection) []nn.Vec {
	feats := make([]nn.Vec, len(prefix))
	for i, d := range prefix {
		elapsed := 0
		if i > 0 {
			elapsed = d.FrameIdx - prefix[i-1].FrameIdx
		}
		feats[i] = DetFeatures(d, model.NomW, model.NomH, model.FPS, elapsed)
	}
	return feats
}

// sampleNegatives picks up to n detections from other tracks at or near the
// target frame, preferring exact-frame contemporaries.
func sampleNegatives(tracks []*Track, exclude *Track, frameIdx, n int, rng *rand.Rand) []detect.Detection {
	var cands []detect.Detection
	for _, t := range tracks {
		if t == exclude {
			continue
		}
		for _, d := range t.Dets {
			if abs(d.FrameIdx-frameIdx) <= 2 {
				cands = append(cands, d)
			}
		}
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	if len(cands) > n {
		cands = cands[:n]
	}
	return cands
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
