package track

import "math"

// AssignScratch holds the working storage of the Hungarian solver so
// per-frame association rounds run without heap allocations. The zero
// value is ready to use; buffers grow on demand and are reused. A scratch
// is owned by one goroutine, and the assignment slices its methods return
// alias the scratch — they are valid until the next call.
type AssignScratch struct {
	u, v, minv []float64
	p, way     []int
	used       []bool
	rowAssign  []int
	orig       []int
	tBuf       []float64
	tRows      [][]float64
}

// Hungarian solves the rectangular assignment problem: given an n x m cost
// matrix, it returns for each row the assigned column (or -1), minimizing
// total cost. It implements the O(n^2 m) shortest augmenting path variant
// of the Hungarian algorithm with row/column potentials.
//
// Trackers use it to match detections to track prefixes from the matching
// scores p_{i,j}: costs are -log(p) so the assignment maximizes the joint
// match likelihood.
func Hungarian(cost [][]float64) []int {
	var s AssignScratch
	return s.Hungarian(cost)
}

// Hungarian is the scratch-backed solver; see the package function for the
// problem statement. The returned slice aliases the scratch.
func (s *AssignScratch) Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	transposed := false
	if n > m {
		// The algorithm below requires rows <= cols; transpose if needed.
		t := growMatrix(&s.tRows, &s.tBuf, m, n)
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				t[j][i] = cost[i][j]
			}
		}
		cost = t
		n, m = m, n
		transposed = true
	}

	const inf = math.MaxFloat64
	u := grow(&s.u, n+1)
	v := grow(&s.v, m+1)
	p := grow(&s.p, m+1) // p[j] = row assigned to column j (1-based, 0 = none)
	way := grow(&s.way, m+1)
	minv := grow(&s.minv, m+1)
	used := grow(&s.used, m+1)
	clear(u)
	clear(v)
	clear(p)
	clear(way)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
		}
		clear(used)
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}

	rowAssign := grow(&s.rowAssign, n)
	for i := range rowAssign {
		rowAssign[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowAssign[p[j]-1] = j - 1
		}
	}
	if !transposed {
		return rowAssign
	}
	// Undo the transpose: rowAssign maps columns to original rows.
	orig := grow(&s.orig, m)
	for i := range orig {
		orig[i] = -1
	}
	for col, row := range rowAssign {
		if row >= 0 {
			orig[row] = col
		}
	}
	return orig
}

// AssignWithThreshold runs Hungarian on the cost matrix and then discards
// assignments whose cost exceeds maxCost, returning row -> column (-1 for
// unassigned). Entries at or above blockCost are treated as forbidden and
// never assigned.
func AssignWithThreshold(cost [][]float64, maxCost, blockCost float64) []int {
	var s AssignScratch
	return s.AssignWithThreshold(cost, maxCost, blockCost)
}

// AssignWithThreshold is the scratch-backed variant; the returned slice
// aliases the scratch.
func (s *AssignScratch) AssignWithThreshold(cost [][]float64, maxCost, blockCost float64) []int {
	assign := s.Hungarian(cost)
	for i, j := range assign {
		if j >= 0 && (cost[i][j] > maxCost || cost[i][j] >= blockCost) {
			assign[i] = -1
		}
	}
	return assign
}
