package track

import (
	"otif/internal/detect"
	"otif/internal/nn"
)

// FeatDim is the dimensionality of a detection-level feature vector: the
// normalized 4D bounding box, two appearance statistics from the detection
// patch, and the elapsed-frames input t_elapsed that the paper adds so the
// recurrent model can reason about motion across variable sampling gaps
// (§3.4).
const FeatDim = 7

// DetFeatures computes the detection-level feature vector for d.
// nomW/nomH normalize coordinates; tElapsedFrames is the number of native
// frames since the preceding detection of the same track (or since the
// previously processed frame, for new-frame detections); fps normalizes it
// to seconds. Appearance statistics come from the detection itself.
func DetFeatures(d detect.Detection, nomW, nomH, fps int, tElapsedFrames int) nn.Vec {
	return nn.Vec(AppendDetFeatures(make([]float64, 0, FeatDim), d, nomW, nomH, fps, tElapsedFrames))
}

// AppendDetFeatures appends the FeatDim detection-level features of d to
// dst and returns the extended slice; with sufficient capacity it
// allocates nothing. Values are identical to DetFeatures'.
func AppendDetFeatures(dst []float64, d detect.Detection, nomW, nomH, fps int, tElapsedFrames int) []float64 {
	w := float64(nomW)
	h := float64(nomH)
	return append(dst,
		d.Box.Center().X/w,
		d.Box.Center().Y/h,
		d.Box.W/w,
		d.Box.H/h,
		d.AppMean/255,
		d.AppStd/64,
		float64(tElapsedFrames)/float64(fps),
	)
}

// AppendDetFeatures32 is AppendDetFeatures for the float32 backend: each
// feature is computed in float64 exactly as the reference and rounded once,
// so the float32 tracker path sees the closest float32 to the reference
// features.
func AppendDetFeatures32(dst []float32, d detect.Detection, nomW, nomH, fps int, tElapsedFrames int) []float32 {
	w := float64(nomW)
	h := float64(nomH)
	return append(dst,
		float32(d.Box.Center().X/w),
		float32(d.Box.Center().Y/h),
		float32(d.Box.W/w),
		float32(d.Box.H/h),
		float32(d.AppMean/255),
		float32(d.AppStd/64),
		float32(float64(tElapsedFrames)/float64(fps)),
	)
}

// pairFeatDim is the feature dimensionality of the pairwise matcher.
const pairFeatDim = 7

// PairFeatures computes the features the pairwise (Miris-style) matcher
// scores: the displacement, size change, IoU and appearance difference
// between a track's last detection and a candidate detection, plus the
// elapsed time.
func PairFeatures(prev, cur detect.Detection, nomW, nomH, fps, tElapsedFrames int) nn.Vec {
	return nn.Vec(AppendPairFeatures(make([]float64, 0, pairFeatDim), prev, cur, nomW, nomH, fps, tElapsedFrames))
}

// AppendPairFeatures appends the pairFeatDim pairwise-matcher features to
// dst and returns the extended slice; with sufficient capacity it
// allocates nothing. Values are identical to PairFeatures'.
func AppendPairFeatures(dst []float64, prev, cur detect.Detection, nomW, nomH, fps, tElapsedFrames int) []float64 {
	w := float64(nomW)
	h := float64(nomH)
	dc := cur.Box.Center().Sub(prev.Box.Center())
	return append(dst,
		dc.X/w,
		dc.Y/h,
		(cur.Box.W-prev.Box.W)/w,
		(cur.Box.H-prev.Box.H)/h,
		prev.Box.IoU(cur.Box),
		(cur.AppMean-prev.AppMean)/255,
		float64(tElapsedFrames)/float64(fps),
	)
}

// AppendPairFeatures32 is AppendPairFeatures for the float32 backend;
// features are computed in float64 and rounded once.
func AppendPairFeatures32(dst []float32, prev, cur detect.Detection, nomW, nomH, fps, tElapsedFrames int) []float32 {
	w := float64(nomW)
	h := float64(nomH)
	dc := cur.Box.Center().Sub(prev.Box.Center())
	return append(dst,
		float32(dc.X/w),
		float32(dc.Y/h),
		float32((cur.Box.W-prev.Box.W)/w),
		float32((cur.Box.H-prev.Box.H)/h),
		float32(prev.Box.IoU(cur.Box)),
		float32((cur.AppMean-prev.AppMean)/255),
		float32(float64(tElapsedFrames)/float64(fps)),
	)
}
