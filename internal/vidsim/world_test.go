package vidsim

import (
	"math"
	"testing"
	"testing/quick"

	"otif/internal/geom"
)

func testConfig() Config {
	return Config{
		NomW: 320, NomH: 240, SimW: 160, SimH: 120, FPS: 10,
		Lanes: []Lane{{
			Name:      "W->E",
			Path:      geom.Path{{X: -20, Y: 120}, {X: 340, Y: 120}},
			SpawnRate: 0.5,
			SpeedMin:  60, SpeedMax: 120,
		}},
		Sizes: map[Category]SizeSpec{
			Car: {W: 40, H: 20, Jitter: 0.2},
		},
		NoiseStd: 4, FlickerAmp: 2, BGLow: 90, BGHigh: 150,
		ObjContrast: 60, ContrastJit: 0.3,
		BGSeed: 11,
	}
}

func TestWorldDeterministic(t *testing.T) {
	a := NewWorld(testConfig(), 10, 42)
	b := NewWorld(testConfig(), 10, 42)
	if len(a.Objects) != len(b.Objects) {
		t.Fatalf("object counts differ: %d vs %d", len(a.Objects), len(b.Objects))
	}
	fa := a.Render(5)
	fb := b.Render(5)
	for i := range fa.Pix {
		if fa.Pix[i] != fb.Pix[i] {
			t.Fatal("renders differ for identical seeds")
		}
	}
	// Different seeds give different traffic.
	c := NewWorld(testConfig(), 10, 43)
	if len(c.Objects) == len(a.Objects) {
		// Possible but check spawn times differ.
		same := true
		for i := range c.Objects {
			if c.Objects[i].SpawnSec != a.Objects[i].SpawnSec {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traffic")
		}
	}
}

func TestBackgroundSharedAcrossSeeds(t *testing.T) {
	// Clips from the same camera (same BGSeed) must share the background.
	cfg := testConfig()
	cfg.Lanes = nil // no objects
	cfg.NoiseStd = 0
	cfg.FlickerAmp = 0
	a := NewWorld(cfg, 1, 1)
	b := NewWorld(cfg, 1, 999)
	fa := a.Render(0)
	fb := b.Render(0)
	for i := range fa.Pix {
		if fa.Pix[i] != fb.Pix[i] {
			t.Fatal("backgrounds differ across clips of the same camera")
		}
	}
}

func TestGroundTruthMatchesMotion(t *testing.T) {
	w := NewWorld(testConfig(), 20, 7)
	if len(w.Objects) == 0 {
		t.Skip("no objects spawned")
	}
	// Objects on the W->E lane move with increasing x over time.
	var lastCenters map[int]geom.Point
	for f := 0; f < w.FrameCount(); f += 5 {
		centers := map[int]geom.Point{}
		for _, gt := range w.VisibleAt(f) {
			centers[gt.ID] = gt.Box.Center()
			if gt.Lane != "W->E" {
				t.Errorf("unexpected lane %q", gt.Lane)
			}
		}
		for id, c := range centers {
			if prev, ok := lastCenters[id]; ok {
				if c.X <= prev.X {
					t.Errorf("object %d moved backwards: %v -> %v", id, prev.X, c.X)
				}
			}
		}
		lastCenters = centers
	}
}

func TestVisibleBoxesInsideFrameMostly(t *testing.T) {
	w := NewWorld(testConfig(), 20, 3)
	bounds := geom.Rect{W: 320, H: 240}
	for f := 0; f < w.FrameCount(); f += 7 {
		for _, gt := range w.VisibleAt(f) {
			vis := gt.Box.Intersect(bounds)
			if vis.Area() < 0.35*gt.Box.Area() {
				t.Errorf("frame %d: visible object mostly outside frame: %v", f, gt.Box)
			}
		}
	}
}

func TestOccluderHidesObjects(t *testing.T) {
	cfg := testConfig()
	cfg.Occluders = []geom.Rect{{X: 140, Y: 80, W: 80, H: 80}}
	w := NewWorld(cfg, 30, 5)
	for f := 0; f < w.FrameCount(); f++ {
		for _, gt := range w.VisibleAt(f) {
			if cfg.Occluders[0].Contains(gt.Box.Center()) {
				t.Fatalf("frame %d: object visible inside occluder", f)
			}
		}
	}
}

func TestHardBrakingSlowsObject(t *testing.T) {
	cfg := testConfig()
	cfg.HardBrakeProb = 1 // every car brakes
	w := NewWorld(cfg, 30, 9)
	var braking *Object
	for i := range w.Objects {
		if w.Objects[i].BrakeFrac >= 0 {
			braking = &w.Objects[i]
			break
		}
	}
	if braking == nil {
		t.Skip("no braking object spawned")
	}
	// Distance over equal time windows decreases after braking.
	t0 := braking.SpawnSec
	early := w.progress(braking, t0+0.5) - w.progress(braking, t0)
	brakeTime := braking.BrakeFrac * w.pathLen[braking.LaneIdx] / braking.Speed
	late := w.progress(braking, t0+brakeTime+2.0) - w.progress(braking, t0+brakeTime+1.5)
	if late >= early {
		t.Errorf("braking object did not slow: early %v late %v", early, late)
	}
}

func TestProgressMonotonicProperty(t *testing.T) {
	w := NewWorld(testConfig(), 10, 21)
	if len(w.Objects) == 0 {
		t.Skip("no objects")
	}
	o := &w.Objects[0]
	f := func(t1Raw, t2Raw uint16) bool {
		t1 := o.SpawnSec + float64(t1Raw)/1000
		t2 := o.SpawnSec + float64(t2Raw)/1000
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return w.progress(o, t2) >= w.progress(o, t1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRenderObjectsAreVisible(t *testing.T) {
	cfg := testConfig()
	cfg.NoiseStd = 0
	cfg.FlickerAmp = 0
	w := NewWorld(cfg, 20, 13)
	// Find a frame with an object and check pixel deviation from an
	// object-free render.
	empty := NewWorld(Config{
		NomW: cfg.NomW, NomH: cfg.NomH, SimW: cfg.SimW, SimH: cfg.SimH,
		FPS: cfg.FPS, BGLow: cfg.BGLow, BGHigh: cfg.BGHigh, BGSeed: cfg.BGSeed,
	}, 1, 1)
	bg := empty.Render(0)
	for f := 0; f < w.FrameCount(); f++ {
		gts := w.VisibleAt(f)
		if len(gts) == 0 {
			continue
		}
		frame := w.Render(f)
		gt := gts[0]
		// Max abs deviation within the object's box should be large.
		s := frame.ScaleToStored(gt.Box)
		var maxDev float64
		for y := int(s.Y); y < int(s.MaxY()) && y < frame.H; y++ {
			for x := int(s.X); x < int(s.MaxX()) && x < frame.W; x++ {
				dev := math.Abs(float64(frame.Pix[y*frame.W+x]) - float64(bg.Pix[y*frame.W+x]))
				if dev > maxDev {
					maxDev = dev
				}
			}
		}
		if maxDev < 15 {
			t.Errorf("frame %d: rendered object barely visible (max dev %v)", f, maxDev)
		}
		return
	}
	t.Skip("no visible objects in any frame")
}

func TestTrueTrack(t *testing.T) {
	w := NewWorld(testConfig(), 20, 17)
	if len(w.Objects) == 0 {
		t.Skip("no objects")
	}
	for id := range w.Objects {
		path, frames := w.TrueTrack(id)
		if len(path) != len(frames) {
			t.Fatalf("path/frames length mismatch: %d vs %d", len(path), len(frames))
		}
		for i := 1; i < len(frames); i++ {
			if frames[i] <= frames[i-1] {
				t.Fatal("frames not increasing")
			}
		}
	}
	if p, f := w.TrueTrack(-1); p != nil || f != nil {
		t.Error("invalid id should return nil")
	}
}

func TestFrameCount(t *testing.T) {
	w := NewWorld(testConfig(), 6, 1)
	if w.FrameCount() != 60 {
		t.Errorf("FrameCount = %d, want 60", w.FrameCount())
	}
}
