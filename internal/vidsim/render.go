package vidsim

import (
	"math"
	"math/rand"

	"otif/internal/video"
)

// renderBackground builds the static background texture at sim resolution:
// a smooth bilinear interpolation of a coarse random grid (road/buildings
// structure) with fine per-pixel grain. It is computed once per world.
func (w *World) renderBackground(rng *rand.Rand) {
	sw, sh := w.Cfg.SimW, w.Cfg.SimH
	w.bg = make([]uint8, sw*sh)

	// Coarse structure grid.
	const cell = 24
	gw := sw/cell + 2
	gh := sh/cell + 2
	grid := make([]float64, gw*gh)
	lo, hi := w.Cfg.BGLow, w.Cfg.BGHigh
	if hi <= lo {
		lo, hi = 90, 150
	}
	for i := range grid {
		grid[i] = lo + rng.Float64()*(hi-lo)
	}
	grainSeed := rng.Int63()
	for y := 0; y < sh; y++ {
		fy := float64(y) / cell
		y0 := int(fy)
		ty := fy - float64(y0)
		for x := 0; x < sw; x++ {
			fx := float64(x) / cell
			x0 := int(fx)
			tx := fx - float64(x0)
			v00 := grid[y0*gw+x0]
			v10 := grid[y0*gw+x0+1]
			v01 := grid[(y0+1)*gw+x0]
			v11 := grid[(y0+1)*gw+x0+1]
			v := v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
			// Static fine grain so the background is textured but
			// perfectly repeatable.
			v += (hashUnit(grainSeed, x, y, 0) - 0.5) * 8
			w.bg[y*sw+x] = clampU8(v)
		}
	}
}

// Render produces the frame at the given index: background + lighting
// flicker + objects + per-frame sensor noise. Rendering is deterministic
// in (world, frameIdx).
func (w *World) Render(frameIdx int) *video.Frame {
	sw, sh := w.Cfg.SimW, w.Cfg.SimH
	f := video.NewFrame(sw, sh, w.Cfg.NomW, w.Cfg.NomH)

	// Lighting flicker: slow sinusoid plus per-frame jitter.
	flicker := w.Cfg.FlickerAmp * (math.Sin(float64(frameIdx)*0.05) +
		0.5*(hashUnit(1177, frameIdx, 0, 1)-0.5))

	noiseSeed := int64(frameIdx)*1_000_003 + 7
	noise := w.Cfg.NoiseStd
	for y := 0; y < sh; y++ {
		row := y * sw
		for x := 0; x < sw; x++ {
			v := float64(w.bg[row+x]) + flicker
			if noise > 0 {
				v += gaussApprox(noiseSeed, x, y) * noise
			}
			f.Pix[row+x] = clampU8(v)
		}
	}

	// Draw visible objects as filled ellipses with per-object contrast and
	// a little internal texture, scaled from nominal to sim coordinates.
	t := float64(frameIdx) / float64(w.Cfg.FPS)
	sx := float64(sw) / float64(w.Cfg.NomW)
	sy := float64(sh) / float64(w.Cfg.NomH)
	for i := range w.Objects {
		o := &w.Objects[i]
		box, ok := w.stateAt(o, t)
		if !ok {
			continue
		}
		cx := (box.X + box.W/2) * sx
		cy := (box.Y + box.H/2) * sy
		rx := math.Max(box.W/2*sx, 0.6)
		ry := math.Max(box.H/2*sy, 0.6)
		x0 := int(math.Max(0, cx-rx-1))
		x1 := int(math.Min(float64(sw-1), cx+rx+1))
		y0 := int(math.Max(0, cy-ry-1))
		y1 := int(math.Min(float64(sh-1), cy+ry+1))
		for py := y0; py <= y1; py++ {
			for px := x0; px <= x1; px++ {
				dx := (float64(px) + 0.5 - cx) / rx
				dy := (float64(py) + 0.5 - cy) / ry
				d2 := dx*dx + dy*dy
				if d2 > 1 {
					continue
				}
				// Soft edge and mild internal texture.
				edge := 1.0
				if d2 > 0.7 {
					edge = (1 - d2) / 0.3
				}
				tex := 1 + 0.25*math.Sin(o.phase*20+float64(px+py)*0.9)
				base := float64(f.Pix[py*sw+px])
				f.Pix[py*sw+px] = clampU8(base + o.Contrast*edge*tex)
			}
		}
	}
	return f
}

// hashUnit returns a deterministic pseudo-random value in [0, 1) from the
// given seed and coordinates, using a splitmix64-style mix.
func hashUnit(seed int64, a, b, c int) float64 {
	z := uint64(seed) ^ uint64(a)*0x9E3779B97F4A7C15 ^ uint64(b)*0xC2B2AE3D27D4EB4F ^ uint64(c)*0x165667B19E3779F9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// gaussApprox returns an approximately standard normal deterministic sample
// for pixel (x, y) under the given seed (Irwin-Hall sum of 4 uniforms).
func gaussApprox(seed int64, x, y int) float64 {
	s := hashUnit(seed, x, y, 2) + hashUnit(seed, x, y, 3) +
		hashUnit(seed, x, y, 4) + hashUnit(seed, x, y, 5)
	return (s - 2) * math.Sqrt(3)
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Source adapts a World to the video.FrameSource interface.
type Source struct {
	World *World
}

// Frame implements video.FrameSource.
func (s *Source) Frame(idx int) *video.Frame { return s.World.Render(idx) }

// Len implements video.FrameSource.
func (s *Source) Len() int { return s.World.FrameCount() }

// FPS implements video.FrameSource.
func (s *Source) FPS() int { return s.World.Cfg.FPS }
