// Package vidsim is the synthetic video substrate that stands in for the
// paper's seven real video datasets. A World deterministically spawns
// objects (cars, buses, pedestrians) on a dataset-specific network of lane
// paths, moves them with per-object speeds, braking events and occlusions,
// and renders greyscale frames with background texture, lighting flicker
// and sensor noise. Ground truth (the paper's "oracle pipeline") comes
// directly from the world state.
//
// The simulator is built so that the phenomena the paper's evaluation
// depends on are emergent rather than scripted: small or low-contrast
// objects disappear into sensor noise when the detector input resolution
// drops; objects travel large distances between frames at high sampling
// gaps; busy junction scenes contain objects in every frame (defeating
// frame-skipping proxies) while sparse highway scenes leave most of the
// frame empty (rewarding the segmentation proxy model).
package vidsim

import (
	"math"
	"math/rand"
	"sort"

	"otif/internal/geom"
)

// Category is an object class.
type Category string

// Object categories used by the simulated datasets.
const (
	Car        Category = "car"
	Bus        Category = "bus"
	Pedestrian Category = "pedestrian"
)

// Lane is one spawn path through the scene, in nominal coordinates.
type Lane struct {
	Name      string    // movement label, e.g. "N->S" (used by path queries)
	Path      geom.Path // trajectory in nominal coordinates
	SpawnRate float64   // expected spawns per second (Poisson)
	SpeedMin  float64   // nominal pixels per second
	SpeedMax  float64
	Mix       []CategoryWeight // category mixture; defaults to all cars
}

// CategoryWeight is one entry of a lane's category mixture.
type CategoryWeight struct {
	Cat    Category
	Weight float64
}

// SizeSpec gives the nominal pixel dimensions of a category's bounding box.
type SizeSpec struct {
	W, H   float64
	Jitter float64 // multiplicative size jitter, e.g. 0.2 for +-20%
}

// Config describes a simulated camera scene.
type Config struct {
	NomW, NomH int // nominal resolution (geometry, cost model)
	SimW, SimH int // stored pixel-buffer resolution
	FPS        int

	Lanes     []Lane
	Occluders []geom.Rect // regions where objects are invisible

	Sizes map[Category]SizeSpec

	// Rendering realism parameters.
	NoiseStd      float64 // sensor noise std-dev in grey levels
	FlickerAmp    float64 // per-frame global brightness flicker amplitude
	BGLow, BGHigh float64 // background texture intensity range
	ObjContrast   float64 // mean contrast of objects against background
	ContrastJit   float64 // per-object contrast jitter (fraction)

	// HardBrakeProb is the probability that a spawned car performs a hard
	// braking maneuver partway along its path (exercises the paper's
	// "find cars that decelerate at 5 m/s^2" exploratory query).
	HardBrakeProb float64

	// BGSeed seeds the background texture. It is a property of the
	// *camera*, not the clip: every clip sampled from the same camera
	// shares one background, which is what makes a background model
	// trained on some clips transfer to the others.
	BGSeed int64
}

// Object is one simulated scene object.
type Object struct {
	ID        int
	Cat       Category
	LaneIdx   int
	SpawnSec  float64 // time the object starts along its path
	Speed     float64 // base speed in nominal px/sec
	W, H      float64
	Contrast  float64 // signed intensity offset vs background
	BrakeFrac float64 // path fraction at which hard braking starts (<0: none)
	phase     float64 // texture phase for rendering
}

// World is a deterministic simulated scene over a fixed duration.
type World struct {
	Cfg      Config
	Duration float64 // seconds
	Objects  []Object

	bg      []uint8 // background at sim resolution
	pathLen []float64
}

// GroundTruth is the true state of one visible object at some frame.
type GroundTruth struct {
	ID   int
	Cat  Category
	Box  geom.Rect // nominal coordinates
	Lane string    // lane (movement) name
}

// NewWorld creates a world of the given duration. All randomness derives
// from seed, so the same (cfg, duration, seed) triple always produces the
// same video and ground truth.
func NewWorld(cfg Config, durationSec float64, seed int64) *World {
	w := &World{Cfg: cfg, Duration: durationSec}
	rng := rand.New(rand.NewSource(seed))
	w.pathLen = make([]float64, len(cfg.Lanes))
	for i, lane := range cfg.Lanes {
		w.pathLen[i] = lane.Path.Length()
	}
	w.spawnObjects(rng)
	w.renderBackground(rand.New(rand.NewSource(cfg.BGSeed + 1)))
	return w
}

// spawnObjects draws a Poisson process per lane. Objects may spawn before
// time zero so the scene starts already populated, as a clip sampled from
// the middle of a long video would be.
func (w *World) spawnObjects(rng *rand.Rand) {
	id := 0
	for li, lane := range w.Cfg.Lanes {
		if lane.SpawnRate <= 0 || w.pathLen[li] == 0 {
			continue
		}
		// Objects spawned up to maxTransit seconds before the clip can
		// still be visible during it.
		maxTransit := w.pathLen[li] / math.Max(lane.SpeedMin, 1)
		t := -maxTransit
		for {
			t += rng.ExpFloat64() / lane.SpawnRate
			if t > w.Duration {
				break
			}
			obj := Object{
				ID:       id,
				Cat:      pickCategory(lane.Mix, rng),
				LaneIdx:  li,
				SpawnSec: t,
				Speed:    lane.SpeedMin + rng.Float64()*(lane.SpeedMax-lane.SpeedMin),
				phase:    rng.Float64(),
			}
			size, ok := w.Cfg.Sizes[obj.Cat]
			if !ok {
				size = SizeSpec{W: 60, H: 30, Jitter: 0.2}
			}
			jit := 1 + (rng.Float64()*2-1)*size.Jitter
			obj.W = size.W * jit
			obj.H = size.H * jit
			contrast := w.Cfg.ObjContrast * (1 + (rng.Float64()*2-1)*w.Cfg.ContrastJit)
			if rng.Float64() < 0.5 {
				contrast = -contrast
			}
			obj.Contrast = contrast
			obj.BrakeFrac = -1
			if obj.Cat == Car && rng.Float64() < w.Cfg.HardBrakeProb {
				obj.BrakeFrac = 0.3 + rng.Float64()*0.4
			}
			w.Objects = append(w.Objects, obj)
			id++
		}
	}
	sort.Slice(w.Objects, func(i, j int) bool { return w.Objects[i].SpawnSec < w.Objects[j].SpawnSec })
	for i := range w.Objects {
		w.Objects[i].ID = i
	}
}

func pickCategory(mix []CategoryWeight, rng *rand.Rand) Category {
	if len(mix) == 0 {
		return Car
	}
	var total float64
	for _, m := range mix {
		total += m.Weight
	}
	r := rng.Float64() * total
	for _, m := range mix {
		if r < m.Weight {
			return m.Cat
		}
		r -= m.Weight
	}
	return mix[len(mix)-1].Cat
}

// brakeSlowdown is the speed multiplier after a hard brake completes.
const brakeSlowdown = 0.3

// brakeDuration is how long (seconds) the braking maneuver takes.
const brakeDuration = 1.0

// progress returns the arc-length distance the object has traveled along
// its lane path at time t.
func (w *World) progress(o *Object, t float64) float64 {
	dt := t - o.SpawnSec
	if dt < 0 {
		return -1
	}
	if o.BrakeFrac < 0 {
		return o.Speed * dt
	}
	// Distance at which braking begins.
	brakeDist := o.BrakeFrac * w.pathLen[o.LaneIdx]
	tBrake := brakeDist / o.Speed
	if dt <= tBrake {
		return o.Speed * dt
	}
	// Linear deceleration from Speed to brakeSlowdown*Speed over
	// brakeDuration seconds, then constant at the reduced speed.
	td := dt - tBrake
	vEnd := o.Speed * brakeSlowdown
	if td < brakeDuration {
		// distance under linear decel: v0*t - 0.5*a*t^2
		a := (o.Speed - vEnd) / brakeDuration
		return brakeDist + o.Speed*td - 0.5*a*td*td
	}
	rampDist := (o.Speed + vEnd) / 2 * brakeDuration
	return brakeDist + rampDist + vEnd*(td-brakeDuration)
}

// stateAt returns the object's bounding box at time t and whether it is
// visible (on-path, inside the frame, and not occluded).
func (w *World) stateAt(o *Object, t float64) (geom.Rect, bool) {
	dist := w.progress(o, t)
	if dist < 0 {
		return geom.Rect{}, false
	}
	plen := w.pathLen[o.LaneIdx]
	if plen == 0 || dist > plen {
		return geom.Rect{}, false
	}
	frac := dist / plen
	center := w.Cfg.Lanes[o.LaneIdx].Path.PointAt(frac)
	box := geom.Rect{X: center.X - o.W/2, Y: center.Y - o.H/2, W: o.W, H: o.H}
	bounds := geom.Rect{W: float64(w.Cfg.NomW), H: float64(w.Cfg.NomH)}
	vis := box.Intersect(bounds)
	// Require a meaningful visible fraction: objects straddling the frame
	// edge with little area inside do not count as visible.
	if vis.Area() < 0.35*box.Area() {
		return geom.Rect{}, false
	}
	for _, occ := range w.Cfg.Occluders {
		if occ.Contains(center) {
			return geom.Rect{}, false
		}
	}
	return box, true
}

// VisibleAt returns ground truth for all objects visible at frame idx.
func (w *World) VisibleAt(frameIdx int) []GroundTruth {
	t := float64(frameIdx) / float64(w.Cfg.FPS)
	var out []GroundTruth
	for i := range w.Objects {
		o := &w.Objects[i]
		if box, ok := w.stateAt(o, t); ok {
			out = append(out, GroundTruth{
				ID:   o.ID,
				Cat:  o.Cat,
				Box:  box,
				Lane: w.Cfg.Lanes[o.LaneIdx].Name,
			})
		}
	}
	return out
}

// FrameCount returns the number of frames in the world's duration.
func (w *World) FrameCount() int {
	return int(w.Duration * float64(w.Cfg.FPS))
}

// TrueTrack returns the ground-truth trajectory of object id sampled once
// per frame, along with the frame indices at which it is visible. The
// second return is nil if the object is never visible.
func (w *World) TrueTrack(id int) (geom.Path, []int) {
	if id < 0 || id >= len(w.Objects) {
		return nil, nil
	}
	o := &w.Objects[id]
	var path geom.Path
	var frames []int
	for f := 0; f < w.FrameCount(); f++ {
		t := float64(f) / float64(w.Cfg.FPS)
		if box, ok := w.stateAt(o, t); ok {
			path = append(path, box.Center())
			frames = append(frames, f)
		}
	}
	return path, frames
}
