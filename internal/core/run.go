package core

import (
	"context"
	"fmt"
	"sort"

	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/parallel"
	"otif/internal/proxy"
	"otif/internal/query"
	"otif/internal/track"
	"otif/internal/video"
)

// Pre-registered metric handles for the clip execution path. Handles are
// package-level so the per-frame hot path records without map lookups or
// allocation (see internal/obs).
var (
	metClips         = obs.Default.Counter("run.clips")
	metFrames        = obs.Default.Counter("run.frames")
	metTracksPerClip = obs.Default.Histogram("run.tracks_per_clip", 1, 2, 5, 10, 20, 50, 100)
)

// ClipResult is the output of running one configuration over one clip.
type ClipResult struct {
	Tracks []*track.Track
	// DetsByFrame maps processed frame index -> detections (used when
	// collecting theta_best outputs for training).
	DetsByFrame map[int][]detect.Detection
}

// RunClip executes the pipeline of Figure 2 under cfg over one clip: the
// tracker's sampling gap selects frames; on each sampled frame the proxy
// model (if enabled) chooses detector windows; the detector produces
// detections; the tracker associates them into tracks. Costs are charged
// to acct. The result's DetsByFrame retains every frame's detections (for
// training-data collection); RunSet uses the pooled internal variant that
// skips that retention and recycles per-clip buffers instead.
func (s *System) RunClip(cfg Config, clip *video.Clip, acct *costmodel.Accountant) *ClipResult {
	prec := nn.ActivePrecision()
	ctx, sp := obs.StartSpan(context.Background(), "run.clip")
	sp.SetStage("extract").SetPrec(prec.String())
	defer sp.End()
	return s.runClip(ctx, cfg, clip, acct, false, prec)
}

// RunClipStream is the streaming-ingest entry point: it executes one clip
// in pooled mode (detection arenas and scratch recycled, DetsByFrame not
// retained) under an explicitly supplied compute backend. Ingest sessions
// sample nn.ActivePrecision() once at session start and pass it for every
// clip, so a long-lived stream is never torn by a concurrent precision
// change — the same once-per-entry-point contract RunSetContext keeps for
// batch extraction.
func (s *System) RunClipStream(ctx context.Context, cfg Config, clip *video.Clip, acct *costmodel.Accountant, prec nn.Precision) *ClipResult {
	return s.runClip(ctx, cfg, clip, acct, true, prec)
}

// runClip is RunClip with a context bounding the reader's decode-ahead
// producer and an option to run in pooled mode. Pooled mode is for callers
// that only need the tracks: detection slices are carved from a pooled
// arena, analysis scratch is recycled, and DetsByFrame is not populated.
// Pooling is safe because trackers copy Detection values into track-owned
// slices — nothing in the returned result aliases pooled memory — and it
// never changes results.
//
// prec is the compute backend for this clip. Callers sample the process
// setting exactly once per entry point (RunClip, RunSetContext), so a
// concurrent SetPrecision never tears a run: every clip of one RunSet uses
// the same backend.
func (s *System) runClip(ctx context.Context, cfg Config, clip *video.Clip, acct *costmodel.Accountant, pooled bool, prec nn.Precision) *ClipResult {
	detW, detH := cfg.DetRes(s.DS.Cfg.NomW, s.DS.Cfg.NomH)
	detector := &detect.Detector{
		Cfg: detect.Config{
			Arch:  cfg.Arch,
			Width: detW, Height: detH,
			ConfThresh: cfg.DetConf,
		},
		Background: s.Background,
		Classify:   s.Classifier,
		Acct:       acct,
		Prec:       prec,
	}
	if pooled {
		detector.Arena = detect.GetArena()
		defer detector.Arena.Release()
		defer detector.Release()
	}

	var ws *proxy.WindowSet
	var pm *proxy.Model
	if cfg.UseProxy && len(s.Proxies) > 0 {
		idx := cfg.ProxyIdx
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.Proxies) {
			idx = len(s.Proxies) - 1
		}
		pm = s.Proxies[idx]
		ws = proxy.NewWindowSet(s.DS.Cfg.NomW, s.DS.Cfg.NomH,
			cfg.Arch.PerPixelCost(), cfg.DetScale, s.WindowSizes)
	}

	tracker := s.newTracker(cfg, acct, prec)
	res := &ClipResult{}
	if !pooled {
		res.DetsByFrame = map[int][]detect.Detection{}
	}

	// One grid allocation per clip, reused by every processed frame.
	var grid *proxy.Grid
	if pm != nil {
		grid = proxy.NewGrid(s.DS.Cfg.NomW, s.DS.Cfg.NomH)
	}
	processFrame := func(frame *video.Frame, idx, gapUsed int) {
		metFrames.Inc()
		var dets []detect.Detection
		if pm != nil {
			scores := pm.ScorePrec(prec, frame, s.Background, acct)
			proxy.ThresholdInto(grid, scores, cfg.ProxyThresh)
			wins := proxy.Group(grid, ws)
			if len(wins) > 0 {
				dets = detector.DetectWindows(frame, idx, wins)
			}
		} else {
			dets = detector.Detect(frame, idx)
		}
		if res.DetsByFrame != nil {
			res.DetsByFrame[idx] = dets
		}
		tracker.Update(&track.FrameContext{FrameIdx: idx, GapFrames: gapUsed}, dets)
	}

	rec, _ := tracker.(*track.RecurrentTracker)
	if cfg.VariableGap && rec != nil {
		// The variable-rate policy picks each next index from the previous
		// round's confidence, so there is no fixed sequence to decode ahead
		// of; it reads synchronously.
		s.runVariable(cfg, clip, detW, detH, acct, rec, processFrame)
	} else {
		reader := video.NewReaderContext(ctx, clip, cfg.Gap, detW, detH, acct)
		defer reader.Close()
		for {
			frame, idx := reader.Next()
			if frame == nil {
				break
			}
			processFrame(frame, idx, cfg.Gap)
		}
	}
	tracks := tracker.Finish()
	// Prune single-detection tracks: they mostly correspond to spurious
	// detections (§3.4).
	res.Tracks = track.PruneShort(tracks, 2)
	metClips.Inc()
	metTracksPerClip.Observe(float64(len(res.Tracks)))
	return res
}

// runVariable executes the Miris-style variable-rate policy: after a
// confident association round the gap doubles (up to cfg.Gap); after a
// low-confidence round it halves (down to 1), re-processing sooner.
// Decode cost is charged like the fixed-rate reader's (skipped frames
// still cost a fraction of a decode).
func (s *System) runVariable(cfg Config, clip *video.Clip, detW, detH int,
	acct *costmodel.Accountant, rec *track.RecurrentTracker,
	processFrame func(frame *video.Frame, idx, gapUsed int)) {
	const confidenceFloor = 0.75
	per := costmodel.DecodeCost(detW, detH)
	gap := cfg.Gap
	idx := 0
	prev := -1
	for idx < clip.Len() {
		skipped := 0
		if prev >= 0 {
			skipped = idx - prev - 1
		}
		acct.Add(costmodel.OpDecode, per*(1+0.15*float64(skipped)))
		gapUsed := cfg.Gap
		if prev >= 0 {
			gapUsed = idx - prev
		}
		processFrame(clip.Frame(idx), idx, gapUsed)
		if rec.LastConfidence() < confidenceFloor {
			if gap > 1 {
				gap /= 2
			}
		} else if gap < cfg.Gap {
			gap *= 2
		}
		prev = idx
		idx += gap
	}
}

// newTracker instantiates the tracker selected by cfg. Track termination
// is time-based: a track survives roughly maxMissSeconds of consecutive
// unmatched processed frames (bridging brief detector misses and
// occlusion merges) regardless of the sampling gap.
func (s *System) newTracker(cfg Config, acct *costmodel.Accountant, prec nn.Precision) track.Tracker {
	misses := maxMisses(s.DS.Cfg.FPS, cfg.Gap)
	switch cfg.Tracker {
	case TrackerRecurrent:
		if s.Recurrent != nil {
			t := track.NewRecurrentTracker(s.Recurrent, acct)
			t.MaxMisses = misses
			t.Prec = prec
			return t
		}
	case TrackerPair:
		if s.Pair != nil {
			t := track.NewPairTracker(s.Pair, acct)
			t.MaxMisses = misses
			t.Prec = prec
			return t
		}
	}
	t := track.NewSORT()
	t.MaxMisses = misses
	return t
}

// maxMissSeconds is how long a track survives without a matching
// detection before termination.
const maxMissSeconds = 0.8

func maxMisses(fps, gap int) int {
	n := int(maxMissSeconds * float64(fps) / float64(gap))
	if n < 2 {
		n = 2
	}
	return n
}

// QueryTracks converts pipeline tracks into the query engine's stored-track
// form, applying endpoint refinement when the configuration requests it and
// the dataset's camera is fixed. clipLen is the source clip's frame count.
//
// Refinement repairs *sampling* truncation: at gap g the first detection
// can be up to g-1 frames after the object entered the scene. A track
// whose first (last) detection sits at the clip's temporal boundary was
// truncated by the clip itself, not by sampling, and extending it would
// count an object that never completed its movement within the clip — so
// those endpoints are left alone.
func (s *System) QueryTracks(cfg Config, tracks []*track.Track, clipLen int) []*query.Track {
	out := make([]*query.Track, 0, len(tracks))
	doRefine := cfg.Refine && s.Refiner != nil && s.DS.FixedCamera
	lastProcessed := 0
	if clipLen > 0 {
		lastProcessed = ((clipLen - 1) / cfg.Gap) * cfg.Gap
	}
	for _, t := range tracks {
		qt := &query.Track{
			ID:       t.ID,
			Category: t.Category,
			Dets:     t.Dets,
			Path:     t.Path(),
		}
		if doRefine && len(qt.Path) > 1 {
			if start, end, ok := s.Refiner.RefineEndpoints(qt.Path); ok {
				// Refinement extends tracks toward where the object
				// entered and left the scene (Figure 4); it must never
				// retract an endpoint the tracker already observed.
				if t.FirstFrame() >= cfg.Gap && extendsBackward(qt.Path, start) {
					qt.Path = append(geom.Path{start}, qt.Path...)
				}
				if t.LastFrame() <= lastProcessed-cfg.Gap && extendsForward(qt.Path, end) {
					qt.Path = append(qt.Path, end)
				}
			}
		}
		out = append(out, qt)
	}
	return out
}

// extendsBackward reports whether p lies beyond the path's first point,
// opposite the direction of travel.
func extendsBackward(path geom.Path, p geom.Point) bool {
	dir := path[1].Sub(path[0])
	toP := p.Sub(path[0])
	return dir.X*toP.X+dir.Y*toP.Y < 0
}

// extendsForward reports whether p lies beyond the path's last point,
// along the direction of travel.
func extendsForward(path geom.Path, p geom.Point) bool {
	n := len(path)
	dir := path[n-1].Sub(path[n-2])
	toP := p.Sub(path[n-1])
	return dir.X*toP.X+dir.Y*toP.Y > 0
}

// SetResult is the outcome of executing a configuration over a clip set.
type SetResult struct {
	PerClip [][]*query.Track
	// Runtime is the simulated execution time in seconds over the set.
	Runtime float64
	// Breakdown is the per-operation cost split.
	Breakdown map[costmodel.Op]float64
}

// PartialError reports a context-canceled pipeline operation together
// with how far it got. It wraps the context's error, so
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) work through it.
type PartialError struct {
	// Stage names the canceled operation ("extract" or "tune").
	Stage string
	// Done counts completed units (clips for extraction, iterations for
	// tuning) out of Total.
	Done, Total int
	// Err is the underlying context error.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("otif: %s canceled after %d/%d: %v", e.Stage, e.Done, e.Total, e.Err)
}

// Unwrap exposes the context error for errors.Is/As.
func (e *PartialError) Unwrap() error { return e.Err }

// RunSet executes cfg over the given clips and returns the per-clip query
// tracks plus the simulated runtime.
//
// Clips run on the parallel worker pool, mirroring the paper's concurrent
// per-stream execution (§4 runs 16 streams per GPU). Each clip charges a
// goroutine-local shard accountant; the shards are merged in clip order
// afterwards, so runtimes and breakdowns are bit-for-bit identical at any
// worker count (see DESIGN.md "Parallel execution").
func (s *System) RunSet(cfg Config, clips []*dataset.ClipTruth) *SetResult {
	// context.Background is never canceled, so the error is always nil.
	res, _ := s.RunSetContext(context.Background(), cfg, clips)
	return res
}

// RunSetContext is RunSet with cooperative cancellation at clip
// boundaries: once ctx is canceled no new clips start, in-flight clips
// run to completion and the workers drain cleanly. On cancellation it
// returns the partial result (completed clips' tracks at their indices,
// nil elsewhere; Runtime covers completed clips only, merged in clip
// order) together with a *PartialError wrapping ctx.Err().
//
// After the clip-order merge the per-category costs are also charged to
// the process metrics registry ("cost.<op>" float counters) in sorted
// category order, so a registry snapshot bracketing a single RunSet
// reproduces the run's Runtime bit-for-bit via
// MetricsSnapshot.CostTotal.
func (s *System) RunSetContext(ctx context.Context, cfg Config, clips []*dataset.ClipTruth) (*SetResult, error) {
	out := &SetResult{PerClip: make([][]*query.Track, len(clips))}
	shards := make([]*costmodel.Accountant, len(clips))
	// The backend is sampled once for the whole set: a concurrent
	// SetPrecision affects the next RunSet, never part of this one.
	prec := nn.ActivePrecision()
	ctx, setSpan := obs.StartSpan(ctx, "run.set")
	setSpan.SetStage("extract").SetPrec(prec.String())
	defer setSpan.End()
	err := parallel.ForContext(ctx, len(clips), func(i int) {
		ct := clips[i]
		clipCtx, clipSpan := obs.StartSpan(ctx, "run.clip")
		clipSpan.SetClip(i).SetStage("extract").SetPrec(prec.String())
		defer clipSpan.End()
		acct := costmodel.NewAccountant()
		res := s.runClip(clipCtx, cfg, ct.Clip, acct, true, prec)
		out.PerClip[i] = s.QueryTracks(cfg, res.Tracks, ct.Clip.Len())
		shards[i] = acct
		s.Progress.Emit(obs.Event{
			Kind: obs.EventClip, Index: i, Total: len(clips), Runtime: acct.Total(),
		})
	})
	done := 0
	acct := costmodel.NewAccountant()
	for _, shard := range shards {
		if shard == nil {
			continue
		}
		done++
		acct.Merge(shard)
	}
	out.Runtime = acct.Total()
	out.Breakdown = acct.Breakdown()
	recordCosts(out.Breakdown)
	setSpan.SetErr(err != nil)
	// Boundary-level structured logging: one line per RunSet, only when a
	// logger is installed (the nil default keeps deterministic benchmarks
	// and the hot path quiet and allocation-free).
	if l := obs.Log(); l != nil {
		l.Info("otif: run set finished",
			"clips", done, "total", len(clips), "runtime", out.Runtime, "canceled", err != nil)
	}
	if err != nil {
		return out, &PartialError{Stage: "extract", Done: done, Total: len(clips), Err: err}
	}
	return out, nil
}

// recordCosts charges a run's per-category simulated costs to the
// process metrics registry. Categories are added in sorted order on the
// calling goroutine — the same fold order Accountant.Total uses — so the
// registry's per-stage totals for a single run are bit-identical at any
// worker count.
func recordCosts(breakdown map[costmodel.Op]float64) {
	if !obs.Enabled() || len(breakdown) == 0 {
		return
	}
	keys := make([]string, 0, len(breakdown))
	for k := range breakdown {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	for _, k := range keys {
		obs.Default.Cost("cost." + k).Add(breakdown[costmodel.Op(k)])
	}
}

// Ctx returns the query context for this dataset's clips.
func (s *System) Ctx() query.Context {
	frames := 0
	if len(s.DS.Test) > 0 {
		frames = s.DS.Test[0].Clip.Len()
	} else if len(s.DS.Val) > 0 {
		frames = s.DS.Val[0].Clip.Len()
	}
	return query.Context{
		FPS:  s.DS.Cfg.FPS,
		NomW: s.DS.Cfg.NomW,
		NomH: s.DS.Cfg.NomH,
		// Frames is per clip; all clips in a set share a length.
		Frames: frames,
	}
}
