package core

import (
	"reflect"
	"testing"

	"otif/internal/obs"
)

// TestRunSetDeterministicWithRecorder asserts the flight-recorder
// contract: extraction results are bit-for-bit identical whether the
// recorder is off (spans read no clocks, allocate nothing) or on
// (always-on daemon mode). Durations are recorded only — they never feed
// back into the simulated cost model or the tracker.
func TestRunSetDeterministicWithRecorder(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.UseProxy = true
	cfg.ProxyIdx = 0
	cfg.ProxyThresh = 0.3
	cfg.Gap = 2

	obs.SetRecorder(nil)
	off := sys.RunSet(cfg, sys.DS.Val)
	rec := obs.EnableTracing(1 << 10)
	defer obs.SetRecorder(nil)
	on := sys.RunSet(cfg, sys.DS.Val)

	if on.Runtime != off.Runtime {
		t.Errorf("runtime with recorder %v != without %v", on.Runtime, off.Runtime)
	}
	if !reflect.DeepEqual(on.Breakdown, off.Breakdown) {
		t.Errorf("breakdown with recorder %v != without %v", on.Breakdown, off.Breakdown)
	}
	if !reflect.DeepEqual(on.PerClip, off.PerClip) {
		t.Error("per-clip tracks differ with the recorder enabled")
	}

	// The recorder captured the run: one attributed run.set root with one
	// parent-linked run.clip span per clip.
	var setID uint64
	clips := 0
	for _, s := range rec.Snapshot() {
		switch s.Name {
		case "run.set":
			if s.Stage != "extract" || s.Prec == "" {
				t.Errorf("run.set span missing attributes: %+v", s)
			}
			setID = s.ID
		case "run.clip":
			if s.Stage != "extract" || s.Clip < 0 {
				t.Errorf("run.clip span missing attributes: %+v", s)
			}
			if s.Parent != setID {
				t.Errorf("run.clip parent = %d, want run.set id %d", s.Parent, setID)
			}
			clips++
		}
	}
	if want := len(sys.DS.Val); clips != want {
		t.Errorf("recorded %d run.clip spans, want %d", clips, want)
	}
}
