package core

import (
	"math/rand"
	"sort"

	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/obs"
	"otif/internal/proxy"
	"otif/internal/refine"
	"otif/internal/track"
	"otif/internal/video"
	"otif/internal/vidsim"
)

// Simulated pre-processing cost constants (seconds), calibrated to the
// paper's Figure 6 cost breakdown: object detector training dominates
// pre-processing, proxy model training takes under ten minutes for all five
// models, and window-size selection takes ~3 seconds.
const (
	// TrainDetectorCost is the simulated cost of fine-tuning the object
	// detector (background model estimation plays that role here).
	TrainDetectorCost = 540
	// WindowSelectCost is the simulated cost of computing the fixed
	// window-size set W.
	WindowSelectCost = 3
)

// System holds a dataset instance together with every trained artifact the
// pipeline needs: the detector background model, the five proxy models, the
// window-size set W, the recurrent and pairwise tracking models, and the
// endpoint refiner built from the training tracks S*.
type System struct {
	DS         *dataset.Instance
	Classifier detect.Classifier

	Background  *detect.BackgroundModel
	Proxies     []*proxy.Model
	WindowSizes [][2]int // chosen W (beyond the implicit full frame)

	Recurrent *track.RecurrentModel
	Pair      *track.PairModel
	Refiner   *refine.Refiner

	// Best is the best-accuracy configuration theta_best selected on the
	// validation set; its outputs label the proxy and tracker training.
	Best Config

	// SStar holds the theta_best tracks per training clip (S*).
	SStar [][]*track.Track

	// Acct accumulates pre-processing (training/tuning) cost.
	Acct *costmodel.Accountant

	// Progress, when non-nil, receives a structured event as each clip
	// of a RunSet finishes. Clips execute on parallel workers, so the
	// callback must be safe for concurrent use; events are observational
	// only and never change results.
	Progress obs.Progress
}

// NewSystem creates a system for the dataset and estimates the detector
// background model from the training set (the pipeline's stand-in for
// detector fine-tuning; see DESIGN.md).
func NewSystem(ds *dataset.Instance) *System {
	s := &System{
		DS:         ds,
		Classifier: ClassifierFor(ds),
		Acct:       costmodel.NewAccountant(),
	}
	s.Background = trainBackground(ds)
	s.Acct.Add(costmodel.OpTrainDet, TrainDetectorCost)
	return s
}

// ClassifierFor derives the size-based category classifier from the
// dataset's object size specification.
func ClassifierFor(ds *dataset.Instance) detect.Classifier {
	var c detect.SizeClassifier
	if ped, ok := ds.Cfg.Sizes[vidsim.Pedestrian]; ok {
		c.PedMaxArea = ped.W * ped.H * 1.8
	}
	if bus, ok := ds.Cfg.Sizes[vidsim.Bus]; ok {
		car := ds.Cfg.Sizes[vidsim.Car]
		// Midpoint between typical car and bus areas.
		c.BusMinArea = (car.W*car.H + bus.W*bus.H) / 2
	}
	return c
}

// trainBackground estimates the per-pixel median background over frames
// sampled across the training clips.
func trainBackground(ds *dataset.Instance) *detect.BackgroundModel {
	const perClip = 5
	var frames []*video.Frame
	for _, ct := range ds.Train {
		n := ct.Clip.Len()
		if n == 0 {
			continue
		}
		step := n / perClip
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			frames = append(frames, ct.Clip.Frame(i))
		}
	}
	return detect.TrainBackground(frames)
}

// FinishTraining completes training after theta_best has been selected:
// it computes S* over the training set, selects the window-size set W,
// trains the five proxy models, trains the recurrent and pairwise tracking
// models with gap augmentation, and builds the endpoint refiner.
func (s *System) FinishTraining(best Config, seed int64) {
	s.Best = best
	rng := rand.New(rand.NewSource(seed))

	// S*: theta_best tracks over the training set (charged as training).
	s.SStar = make([][]*track.Track, len(s.DS.Train))
	var detsPerFrame [][]geom.Rect
	var proxyExamples []proxy.TrainExample
	for i, ct := range s.DS.Train {
		res := s.RunClip(best, ct.Clip, s.Acct)
		s.SStar[i] = res.Tracks
		// Collect per-frame detections for window selection and proxy
		// training (a subsample keeps training costs low, like the
		// paper's sampled training frames). Frames are visited in index
		// order — not map order — so the SGD example order, and therefore
		// the trained weights, are reproducible run to run.
		frames := make([]int, 0, len(res.DetsByFrame))
		for idx := range res.DetsByFrame {
			frames = append(frames, idx)
		}
		sort.Ints(frames)
		for _, idx := range frames {
			dets := res.DetsByFrame[idx]
			boxes := make([]geom.Rect, len(dets))
			for k, d := range dets {
				boxes[k] = d.Box
			}
			detsPerFrame = append(detsPerFrame, boxes)
			if len(boxes) > 0 && idx%2 == 0 {
				proxyExamples = append(proxyExamples, proxy.TrainExample{
					Frame: ct.Clip.Frame(idx),
					Boxes: boxes,
				})
			}
		}
	}

	// Window-size selection W (k = 3 sizes including the full frame).
	ws := proxy.SelectWindowSizes(s.DS.Cfg.NomW, s.DS.Cfg.NomH, 3,
		best.Arch.PerPixelCost(), best.DetScale, detsPerFrame)
	s.WindowSizes = append([][2]int{}, ws.Sizes[1:]...)
	s.Acct.Add(costmodel.OpTrainProx, WindowSelectCost)

	// Proxy models at the five pre-determined resolutions.
	const maxProxyExamples = 60
	if len(proxyExamples) > maxProxyExamples {
		step := len(proxyExamples) / maxProxyExamples
		var kept []proxy.TrainExample
		for i := 0; i < len(proxyExamples); i += step {
			kept = append(kept, proxyExamples[i])
		}
		proxyExamples = kept
	}
	s.Proxies = nil
	for _, res := range proxy.DefaultResolutions(s.DS.Cfg.NomW, s.DS.Cfg.NomH) {
		m := proxy.NewModel(res[0], res[1], rng)
		m.Train(proxyExamples, s.Background, 12, rng, s.Acct)
		s.Proxies = append(s.Proxies, m)
	}

	// Tracking models trained on S* with gap augmentation.
	clips := make([]track.TrainClip, len(s.SStar))
	for i, tr := range s.SStar {
		clips[i] = track.TrainClip{Tracks: tr}
	}
	opts := track.DefaultTrainOptions()
	opts.Seed = seed
	s.Recurrent = track.NewRecurrentModel(s.DS.Cfg.NomW, s.DS.Cfg.NomH, s.DS.Cfg.FPS, rng)
	track.TrainRecurrent(s.Recurrent, clips, opts, s.Acct)
	s.Pair = track.NewPairModel(s.DS.Cfg.NomW, s.DS.Cfg.NomH, s.DS.Cfg.FPS, rng)
	track.TrainPair(s.Pair, clips, opts, s.Acct)

	// Endpoint refiner from the S* paths (fixed cameras only).
	if s.DS.FixedCamera {
		var paths []geom.Path
		for _, tracks := range s.SStar {
			for _, t := range tracks {
				if len(t.Dets) >= 3 {
					paths = append(paths, t.Path())
				}
			}
		}
		s.Refiner = refine.NewRefiner(paths, refine.DefaultDBSCANOptions())
		s.Acct.Add(costmodel.OpRefine, 1)
	}
}
