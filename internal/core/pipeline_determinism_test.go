package core

import (
	"reflect"
	"testing"

	"otif/internal/costmodel"
	"otif/internal/nn"
	"otif/internal/track"
	"otif/internal/video"
)

// TestRunSetDeterministicAcrossPrefetchDepths asserts the decode-ahead
// contract (DESIGN.md "Batched inference, pooled allocation and
// decode-ahead"): RunSet produces bit-for-bit identical runtimes, cost
// breakdowns and query tracks whether frames are decoded synchronously
// (depth 0) or by a producer goroutine running ahead of the pipeline.
func TestRunSetDeterministicAcrossPrefetchDepths(t *testing.T) {
	defer video.SetPrefetchDepth(video.DefaultPrefetchDepth)

	sys := smallSystem(t)
	recCfg := sys.Best
	recCfg.Tracker = TrackerRecurrent
	recCfg.Gap = 2

	for _, cfg := range []Config{sys.Best, recCfg} {
		video.SetPrefetchDepth(0)
		syncRes := sys.RunSet(cfg, sys.DS.Val)
		for _, depth := range []int{1, 2, 4} {
			video.SetPrefetchDepth(depth)
			pre := sys.RunSet(cfg, sys.DS.Val)
			if pre.Runtime != syncRes.Runtime {
				t.Errorf("depth=%d cfg=%v: runtime %v != sync %v", depth, cfg, pre.Runtime, syncRes.Runtime)
			}
			if !reflect.DeepEqual(pre.Breakdown, syncRes.Breakdown) {
				t.Errorf("depth=%d cfg=%v: breakdown %v != sync %v", depth, cfg, pre.Breakdown, syncRes.Breakdown)
			}
			if !reflect.DeepEqual(pre.PerClip, syncRes.PerClip) {
				t.Errorf("depth=%d cfg=%v: per-clip tracks differ from synchronous run", depth, cfg)
			}
		}
	}
}

// TestRunSetDeterministicAcrossBatchedInference asserts the batched-GRU
// contract: the recurrent tracker's batched per-frame inference produces
// bit-for-bit identical results to the per-track scalar kernels, end to
// end through RunSet.
func TestRunSetDeterministicAcrossBatchedInference(t *testing.T) {
	defer track.SetBatchedInference(true)

	sys := smallSystem(t)
	cfg := sys.Best
	cfg.Tracker = TrackerRecurrent
	cfg.Gap = 2

	track.SetBatchedInference(false)
	scalar := sys.RunSet(cfg, sys.DS.Val)
	track.SetBatchedInference(true)
	batched := sys.RunSet(cfg, sys.DS.Val)
	if batched.Runtime != scalar.Runtime {
		t.Errorf("batched runtime %v != scalar %v", batched.Runtime, scalar.Runtime)
	}
	if !reflect.DeepEqual(batched.Breakdown, scalar.Breakdown) {
		t.Errorf("batched breakdown %v != scalar %v", batched.Breakdown, scalar.Breakdown)
	}
	if !reflect.DeepEqual(batched.PerClip, scalar.PerClip) {
		t.Error("batched per-clip tracks differ from scalar run")
	}
}

// TestRunClipPooledMatchesPublic pins the pooled clip-execution path used
// by RunSet to the public RunClip: identical tracks and identical charged
// costs, with pooling (and prefetch) only changing where buffers live.
func TestRunClipPooledMatchesPublic(t *testing.T) {
	sys := smallSystem(t)
	for _, cfg := range []Config{sys.Best} {
		pubAcct := costmodel.NewAccountant()
		pub := sys.RunClip(cfg, sys.DS.Val[0].Clip, pubAcct)

		pooledAcct := costmodel.NewAccountant()
		pooled := sys.runClip(t.Context(), cfg, sys.DS.Val[0].Clip, pooledAcct, true, nn.ActivePrecision())

		if pooled.DetsByFrame != nil {
			t.Error("pooled run must not retain DetsByFrame")
		}
		if len(pub.DetsByFrame) == 0 {
			t.Error("public run must retain DetsByFrame")
		}
		if !reflect.DeepEqual(pub.Tracks, pooled.Tracks) {
			t.Errorf("cfg=%v: pooled tracks differ from public RunClip", cfg)
		}
		if pubAcct.Total() != pooledAcct.Total() {
			t.Errorf("cfg=%v: pooled cost %v != public %v", cfg, pooledAcct.Total(), pubAcct.Total())
		}
	}
}
