package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"otif/internal/nn"
)

// Float32-backend pipeline contracts: accuracy stays within an explicit
// tolerance of the float64 reference, the float64 default is untouched by
// the backend's existence, and concurrent SetPrecision calls can never
// tear a run (each RunSet samples the setting exactly once on entry).

// float32AccuracyTolerance is the tolerance contract of DESIGN.md §13: on
// the seed dataset, float32 RunSet accuracy may differ from the float64
// reference by at most this much. The backends agree bit-for-bit on
// almost every decision; divergence needs a matching score or a proxy
// cell score to sit within float32 rounding of a decision threshold, so
// the observed delta is far below the bound (typically 0), and the bound
// mainly guards against a future kernel change quietly degrading float32.
const float32AccuracyTolerance = 0.05

// precisionTestConfig exercises every float32 code path at once: the
// proxy (float32 cell features + logistic readout), the detector (float32
// difference plane under rcnn's refineBox), and the recurrent tracker
// (float32 GRU + matching MLP, batched and scalar).
func precisionTestConfig(sys *System) Config {
	cfg := sys.Best
	cfg.UseProxy = true
	cfg.ProxyIdx = 0
	cfg.ProxyThresh = 0.3
	cfg.Gap = 2
	cfg.Tracker = TrackerRecurrent
	return cfg
}

// TestFloat32RunSetAccuracyWithinTolerance pins the end-to-end tolerance
// contract: float32 extraction accuracy on the seed dataset stays within
// float32AccuracyTolerance of the float64 reference.
func TestFloat32RunSetAccuracyWithinTolerance(t *testing.T) {
	defer nn.SetPrecision(nn.Float64)
	sys := smallSystem(t)
	cfg := precisionTestConfig(sys)
	metric := MetricFor(sys.DS)

	nn.SetPrecision(nn.Float64)
	ref := sys.RunSet(cfg, sys.DS.Val)
	accRef := metric.Accuracy(ref.PerClip, sys.DS.Val)

	nn.SetPrecision(nn.Float32)
	got := sys.RunSet(cfg, sys.DS.Val)
	acc32 := metric.Accuracy(got.PerClip, sys.DS.Val)

	if len(got.PerClip) != len(ref.PerClip) {
		t.Fatalf("float32 run covered %d clips, float64 %d", len(got.PerClip), len(ref.PerClip))
	}
	if d := math.Abs(acc32 - accRef); d > float32AccuracyTolerance {
		t.Errorf("float32 accuracy %.4f vs float64 %.4f: delta %.4f exceeds tolerance %v",
			acc32, accRef, d, float32AccuracyTolerance)
	}
	// The simulated cost model is precision-independent: both backends
	// process the same frames and charge the same operations.
	if got.Runtime != ref.Runtime {
		t.Errorf("float32 simulated runtime %v != float64 %v (cost accounting must not depend on the backend)",
			got.Runtime, ref.Runtime)
	}
}

// TestSetPrecisionRunsNeverTorn pins the once-per-run sampling contract
// under -race: with SetPrecision flipping concurrently and between calls,
// every RunSet result is exactly the float64 result or exactly the
// float32 result — never a mixture — and float64 runs stay bit-identical
// to the reference (the behavior before this backend existed).
func TestSetPrecisionRunsNeverTorn(t *testing.T) {
	defer nn.SetPrecision(nn.Float64)
	sys := smallSystem(t)
	cfg := precisionTestConfig(sys)
	clips := sys.DS.Val[:1]

	nn.SetPrecision(nn.Float64)
	ref64 := sys.RunSet(cfg, clips)
	nn.SetPrecision(nn.Float32)
	ref32 := sys.RunSet(cfg, clips)
	nn.SetPrecision(nn.Float64)

	// A concurrent flipper hammers the setting while runs are in flight;
	// the atomic read on RunSet entry is the only read, so -race stays
	// quiet and results stay whole.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				nn.SetPrecision(nn.Float32)
			} else {
				nn.SetPrecision(nn.Float64)
			}
		}
	}()
	for i := 0; i < 6; i++ {
		got := sys.RunSet(cfg, clips)
		is64 := reflect.DeepEqual(got.PerClip, ref64.PerClip)
		is32 := reflect.DeepEqual(got.PerClip, ref32.PerClip)
		if !is64 && !is32 {
			t.Fatalf("run %d matches neither the float64 nor the float32 reference: torn backend read", i)
		}
	}
	close(stop)
	wg.Wait()

	// With the flipper gone, explicit float64 selection must reproduce
	// the reference bit for bit.
	nn.SetPrecision(nn.Float64)
	again := sys.RunSet(cfg, clips)
	if !reflect.DeepEqual(again.PerClip, ref64.PerClip) {
		t.Error("float64 run after concurrent flipping is not bit-identical to the float64 reference")
	}
	if again.Runtime != ref64.Runtime {
		t.Errorf("float64 runtime %v != reference %v", again.Runtime, ref64.Runtime)
	}
}
