package core

import (
	"otif/internal/nn"
	"otif/internal/track"
)

// ProbeStats summarizes matcher behaviour at one sampling gap (debug aid).
type ProbeStats struct {
	PosMean, NegMean float64
	PosAcc, NegAcc   float64
	N                int
}

// ProbeMatcher scores the trained recurrent matcher on held-out
// positive/negative pairs derived from S*, per sampling gap.
func ProbeMatcher(s *System) map[int]ProbeStats {
	out := map[int]ProbeStats{}
	for _, gap := range []int{1, 4, 8, 16} {
		var posSum, negSum float64
		var posOK, negOK, nPos, nNeg int
		for ci, tracks := range s.SStar {
			_ = ci
			for _, t := range tracks {
				dets := track.SubSampleAtGap(t.Dets, gap)
				if len(dets) < 3 {
					continue
				}
				for split := 1; split < len(dets)-1; split++ {
					prefix := dets[:split]
					target := dets[split]
					feats := make([]nn.Vec, len(prefix))
					for i, d := range prefix {
						el := 0
						if i > 0 {
							el = d.FrameIdx - prefix[i-1].FrameIdx
						}
						feats[i] = track.DetFeatures(d, s.DS.Cfg.NomW, s.DS.Cfg.NomH, s.DS.Cfg.FPS, el)
					}
					h := s.Recurrent.GRU.RunSequenceInfer(feats)
					tf := track.DetFeatures(target, s.DS.Cfg.NomW, s.DS.Cfg.NomH, s.DS.Cfg.FPS, target.FrameIdx-prefix[len(prefix)-1].FrameIdx)
					mo := track.MotionFeatures(prefix, target, s.DS.Cfg.NomW, s.DS.Cfg.NomH)
					p := s.Recurrent.Score(h, tf, mo)
					posSum += p
					nPos++
					if p >= 0.5 {
						posOK++
					}
					// negatives: other tracks' dets near target frame
					for _, o := range tracks {
						if o == t || len(o.Dets) == 0 {
							continue
						}
						for _, d := range o.Dets {
							if d.FrameIdx == target.FrameIdx {
								nf := track.DetFeatures(d, s.DS.Cfg.NomW, s.DS.Cfg.NomH, s.DS.Cfg.FPS, d.FrameIdx-prefix[len(prefix)-1].FrameIdx)
								nm := track.MotionFeatures(prefix, d, s.DS.Cfg.NomW, s.DS.Cfg.NomH)
								q := s.Recurrent.Score(h, nf, nm)
								negSum += q
								nNeg++
								if q < 0.5 {
									negOK++
								}
								break
							}
						}
					}
				}
			}
		}
		st := ProbeStats{N: nPos}
		if nPos > 0 {
			st.PosMean = posSum / float64(nPos)
			st.PosAcc = float64(posOK) / float64(nPos)
		}
		if nNeg > 0 {
			st.NegMean = negSum / float64(nNeg)
			st.NegAcc = float64(negOK) / float64(nNeg)
		}
		out[gap] = st
	}
	return out
}
