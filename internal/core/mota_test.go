package core

import (
	"testing"

	"otif/internal/costmodel"
	"otif/internal/metrics"
)

// gtIDTracks converts one clip's oracle ground truth into identity tracks
// sampled at the given gap (matching what a tracker at that gap can see).
func gtIDTracks(sys *System, clipIdx, gap int) []*metrics.IDTrack {
	ct := sys.DS.Val[clipIdx]
	byID := map[int]*metrics.IDTrack{}
	for f := 0; f < ct.Clip.Len(); f += gap {
		for _, gt := range ct.Truth(f) {
			t, ok := byID[gt.ID]
			if !ok {
				t = &metrics.IDTrack{ID: gt.ID}
				byID[gt.ID] = t
			}
			t.Boxes = append(t.Boxes, metrics.TrackedBox{FrameIdx: f, Box: gt.Box})
		}
	}
	out := make([]*metrics.IDTrack, 0, len(byID))
	for _, t := range byID {
		// Objects seen only once cannot be tracked (length-1 pruning).
		if len(t.Boxes) >= 2 {
			out = append(out, t)
		}
	}
	return out
}

func predIDTracks(sys *System, cfg Config, clipIdx int) []*metrics.IDTrack {
	res := sys.RunClip(cfg, sys.DS.Val[clipIdx].Clip, costmodel.NewAccountant())
	out := make([]*metrics.IDTrack, 0, len(res.Tracks))
	for _, t := range res.Tracks {
		it := &metrics.IDTrack{ID: t.ID}
		for _, d := range t.Dets {
			it.Boxes = append(it.Boxes, metrics.TrackedBox{FrameIdx: d.FrameIdx, Box: d.Box})
		}
		out = append(out, it)
	}
	return out
}

// TestRecurrentBeatsSORTOnMOTAAtReducedRate checks the paper's core
// tracking claim with an identity-level metric: at a reduced sampling
// rate, the recurrent tracker preserves identities much better than the
// IoU-based heuristic tracker.
func TestRecurrentBeatsSORTOnMOTAAtReducedRate(t *testing.T) {
	sys := smallSystem(t)
	const gap = 4
	var sortRes, recRes metrics.MOTAResult
	for clip := range sys.DS.Val {
		gt := gtIDTracks(sys, clip, gap)
		cfg := sys.Best
		cfg.Gap = gap

		cfg.Tracker = TrackerSORT
		s := metrics.EvaluateMOTA(gt, predIDTracks(sys, cfg, clip), 0.3)
		sortRes.Misses += s.Misses
		sortRes.FalsePos += s.FalsePos
		sortRes.IDSwitches += s.IDSwitches
		sortRes.GTBoxes += s.GTBoxes

		cfg.Tracker = TrackerRecurrent
		r := metrics.EvaluateMOTA(gt, predIDTracks(sys, cfg, clip), 0.3)
		recRes.Misses += r.Misses
		recRes.FalsePos += r.FalsePos
		recRes.IDSwitches += r.IDSwitches
		recRes.GTBoxes += r.GTBoxes
	}
	if recRes.MOTA() <= sortRes.MOTA() {
		t.Errorf("recurrent MOTA %.3f should beat SORT MOTA %.3f at gap %d",
			recRes.MOTA(), sortRes.MOTA(), gap)
	}
	if recRes.MOTA() < 0.4 {
		t.Errorf("recurrent MOTA %.3f suspiciously low (misses=%d fp=%d sw=%d of %d)",
			recRes.MOTA(), recRes.Misses, recRes.FalsePos, recRes.IDSwitches, recRes.GTBoxes)
	}
}

// TestSORTMOTAHighAtNativeRate sanity-checks the heuristic tracker at the
// native framerate, where IoU matching should be reliable.
func TestSORTMOTAHighAtNativeRate(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.Gap = 1
	cfg.Tracker = TrackerSORT
	total := metrics.MOTAResult{}
	for clip := range sys.DS.Val {
		gt := gtIDTracks(sys, clip, 1)
		r := metrics.EvaluateMOTA(gt, predIDTracks(sys, cfg, clip), 0.3)
		total.Misses += r.Misses
		total.FalsePos += r.FalsePos
		total.IDSwitches += r.IDSwitches
		total.GTBoxes += r.GTBoxes
	}
	if total.MOTA() < 0.6 {
		t.Errorf("SORT native-rate MOTA %.3f, want >= 0.6 (misses=%d fp=%d sw=%d of %d)",
			total.MOTA(), total.Misses, total.FalsePos, total.IDSwitches, total.GTBoxes)
	}
}
