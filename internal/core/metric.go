package core

import (
	"otif/internal/dataset"
	"otif/internal/geom"
	"otif/internal/metrics"
	"otif/internal/query"
	"otif/internal/vidsim"
)

// Metric evaluates the accuracy of per-clip extracted tracks against clip
// ground truth; it is the user-provided evaluation metric of the workflow
// in §3.1 (here computed from the simulator's oracle ground truth).
type Metric interface {
	// Accuracy returns the mean accuracy in [0, 1] of the per-clip track
	// sets against the corresponding clips' ground truth.
	Accuracy(perClip [][]*query.Track, clips []*dataset.ClipTruth) float64
	// Name identifies the metric in reports.
	Name() string
}

// TrackCountMetric scores the track count query of §4.1: the number of
// unique objects of a category per clip, compared with ground truth by
// count accuracy, averaged over clips.
type TrackCountMetric struct {
	Category string
}

// Name implements Metric.
func (m TrackCountMetric) Name() string { return "track-count" }

// Accuracy implements Metric.
func (m TrackCountMetric) Accuracy(perClip [][]*query.Track, clips []*dataset.ClipTruth) float64 {
	var preds, truths []float64
	for i, tracks := range perClip {
		preds = append(preds, float64(query.CountTracks(tracks, m.Category)))
		truths = append(truths, float64(trueUniqueCount(clips[i], m.Category)))
	}
	return metrics.MeanCountAccuracy(preds, truths)
}

// trueUniqueCount counts the unique objects of a category ever visible in
// the clip's ground truth.
func trueUniqueCount(ct *dataset.ClipTruth, cat string) int {
	seen := map[int]bool{}
	for f := 0; f < ct.Clip.Len(); f++ {
		for _, gt := range ct.Truth(f) {
			if cat == "" || string(gt.Cat) == cat {
				seen[gt.ID] = true
			}
		}
	}
	return len(seen)
}

// PathBreakdownMetric scores the path breakdown (turning movement count)
// query of §4.1: per clip, the count of category tracks following each
// movement, compared movement-by-movement by count accuracy and averaged
// over clips and movements.
type PathBreakdownMetric struct {
	Category  string
	Movements []query.Movement
	// MaxEndpointDist is the endpoint tolerance for assigning a track to
	// a movement.
	MaxEndpointDist float64
}

// Name implements Metric.
func (m PathBreakdownMetric) Name() string { return "path-breakdown" }

// Accuracy implements Metric.
func (m PathBreakdownMetric) Accuracy(perClip [][]*query.Track, clips []*dataset.ClipTruth) float64 {
	var preds, truths []float64
	for i, tracks := range perClip {
		pred := query.PathBreakdown(tracks, m.Category, m.Movements, m.MaxEndpointDist)
		truth := m.trueMovementCounts(clips[i], m.Category)
		for _, mv := range m.Movements {
			preds = append(preds, float64(pred[mv.Name]))
			truths = append(truths, float64(truth[mv.Name]))
		}
	}
	return metrics.MeanCountAccuracy(preds, truths)
}

// trueMovementCounts counts, per movement name, the category objects whose
// ground-truth trajectory within the clip follows that movement, using the
// same path classifier as the prediction side. Objects truncated by the
// clip boundary (visible only for a fragment of the movement) match no
// movement on either side, so the query semantics — "count objects that
// traveled movement X within this clip" — are consistent.
func (m PathBreakdownMetric) trueMovementCounts(ct *dataset.ClipTruth, cat string) map[string]int {
	paths := map[int]geom.Path{}
	for f := 0; f < ct.Clip.Len(); f++ {
		for _, gt := range ct.Truth(f) {
			if cat == "" || string(gt.Cat) == cat {
				paths[gt.ID] = append(paths[gt.ID], gt.Box.Center())
			}
		}
	}
	out := map[string]int{}
	for _, p := range paths {
		if name := query.ClassifyPath(p, m.Movements, m.MaxEndpointDist); name != "" {
			out[name]++
		}
	}
	return out
}

// MovementsFor derives the movement reference paths of a dataset from its
// lane network (in a real deployment the user annotates these patterns;
// the simulator's lane definitions are exactly that annotation).
func MovementsFor(ds *dataset.Instance) []query.Movement {
	var out []query.Movement
	seen := map[string]bool{}
	for _, lane := range ds.Cfg.Lanes {
		if seen[lane.Name] {
			continue
		}
		seen[lane.Name] = true
		out = append(out, query.Movement{Name: lane.Name, Path: clipPathToFrame(lane.Path, ds.Cfg)})
	}
	return out
}

// clipPathToFrame clamps a lane path's endpoints into the visible frame so
// movement endpoints are comparable with refined track endpoints.
func clipPathToFrame(p geom.Path, cfg vidsim.Config) geom.Path {
	bounds := geom.Rect{W: float64(cfg.NomW), H: float64(cfg.NomH)}
	out := make(geom.Path, len(p))
	for i, pt := range p {
		out[i] = geom.Point{
			X: clampF(pt.X, bounds.X, bounds.MaxX()),
			Y: clampF(pt.Y, bounds.Y, bounds.MaxY()),
		}
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MetricFor returns the evaluation metric the paper uses for each dataset:
// track counts on Amsterdam and Jackson, path breakdowns elsewhere (§4.1).
func MetricFor(ds *dataset.Instance) Metric {
	switch ds.Name {
	case "amsterdam", "jackson":
		return TrackCountMetric{Category: "car"}
	default:
		return PathBreakdownMetric{
			Category:        "car",
			Movements:       MovementsFor(ds),
			MaxEndpointDist: endpointTolerance(ds),
		}
	}
}

// endpointTolerance scales the movement endpoint tolerance with the frame
// size.
func endpointTolerance(ds *dataset.Instance) float64 {
	return 0.22 * float64(ds.Cfg.NomW)
}
