package core

import (
	"reflect"
	"testing"

	"otif/internal/parallel"
)

// TestRunSetDeterministicAcrossWorkerCounts asserts the parallel execution
// contract (DESIGN.md "Parallel execution"): RunSet produces bit-for-bit
// identical simulated runtimes, cost breakdowns, and query tracks at any
// worker count, because each clip charges its own shard accountant and the
// shards merge in clip order.
func TestRunSetDeterministicAcrossWorkerCounts(t *testing.T) {
	sys := smallSystem(t)
	cfgs := []Config{sys.Best}
	proxied := sys.Best
	proxied.UseProxy = true
	proxied.ProxyIdx = 0
	proxied.ProxyThresh = 0.3
	proxied.Gap = 2
	cfgs = append(cfgs, proxied)

	defer parallel.SetWorkers(0)
	for _, cfg := range cfgs {
		parallel.SetWorkers(1)
		serial := sys.RunSet(cfg, sys.DS.Val)
		for _, workers := range []int{2, 4, 7} {
			parallel.SetWorkers(workers)
			par := sys.RunSet(cfg, sys.DS.Val)
			if par.Runtime != serial.Runtime {
				t.Errorf("workers=%d cfg=%v: runtime %v != serial %v",
					workers, cfg, par.Runtime, serial.Runtime)
			}
			if !reflect.DeepEqual(par.Breakdown, serial.Breakdown) {
				t.Errorf("workers=%d cfg=%v: breakdown %v != serial %v",
					workers, cfg, par.Breakdown, serial.Breakdown)
			}
			if !reflect.DeepEqual(par.PerClip, serial.PerClip) {
				t.Errorf("workers=%d cfg=%v: per-clip tracks differ from serial", workers, cfg)
			}
		}
	}
}
