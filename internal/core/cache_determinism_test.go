package core

import (
	"reflect"
	"testing"

	"otif/internal/video"
)

// TestRunSetDeterministicAcrossCacheBudgets asserts the frame-cache
// contract (DESIGN.md "Inference kernels and caching"): RunSet produces
// bit-for-bit identical simulated runtimes, cost breakdowns and query
// tracks whether the process-wide frame cache is enabled, tiny (thrashing)
// or disabled — the cache only changes wall-clock speed, never results.
func TestRunSetDeterministicAcrossCacheBudgets(t *testing.T) {
	defer video.SetCacheBudget(video.DefaultCacheBytes)

	sys := smallSystem(t)
	proxied := sys.Best
	proxied.UseProxy = true
	proxied.ProxyIdx = 0
	proxied.ProxyThresh = 0.3
	proxied.Gap = 2

	for _, cfg := range []Config{sys.Best, proxied} {
		video.SetCacheBudget(0)
		uncached := sys.RunSet(cfg, sys.DS.Val)
		for _, budget := range []int64{video.DefaultCacheBytes, 64 << 10} {
			video.SetCacheBudget(budget)
			cached := sys.RunSet(cfg, sys.DS.Val)
			if cached.Runtime != uncached.Runtime {
				t.Errorf("budget=%d cfg=%v: runtime %v != uncached %v",
					budget, cfg, cached.Runtime, uncached.Runtime)
			}
			if !reflect.DeepEqual(cached.Breakdown, uncached.Breakdown) {
				t.Errorf("budget=%d cfg=%v: breakdown %v != uncached %v",
					budget, cfg, cached.Breakdown, uncached.Breakdown)
			}
			if !reflect.DeepEqual(cached.PerClip, uncached.PerClip) {
				t.Errorf("budget=%d cfg=%v: per-clip tracks differ from uncached run", budget, cfg)
			}
		}
	}
}

// TestRunSetRepeatableWithScratchReuse runs the same configuration twice
// through the same system. The second run reuses every warmed scratch
// buffer (tracker match scratch, detector analysis scratch, assignment
// scratch), so equality proves buffer reuse never leaks state between
// frames, clips or runs.
func TestRunSetRepeatableWithScratchReuse(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.UseProxy = true
	cfg.ProxyIdx = 0
	cfg.ProxyThresh = 0.3
	cfg.Gap = 2

	first := sys.RunSet(cfg, sys.DS.Val)
	second := sys.RunSet(cfg, sys.DS.Val)
	if first.Runtime != second.Runtime {
		t.Errorf("repeat runtime %v != first %v", second.Runtime, first.Runtime)
	}
	if !reflect.DeepEqual(first.PerClip, second.PerClip) {
		t.Error("repeat run produced different tracks")
	}
}
