package core

import (
	"testing"

	"otif/internal/costmodel"
)

func TestVariableGapProducesTracks(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.Tracker = TrackerRecurrent
	cfg.Gap = 8
	cfg.VariableGap = true

	acct := costmodel.NewAccountant()
	res := sys.RunClip(cfg, sys.DS.Val[0].Clip, acct)
	if len(res.Tracks) == 0 {
		t.Fatal("variable-gap execution extracted no tracks")
	}
	if acct.Get(costmodel.OpDecode) <= 0 {
		t.Error("no decode cost charged")
	}

	// Fixed gap at the same setting for comparison: variable must not be
	// wildly more expensive than fixed at the same maximum gap (it can be
	// somewhat more when confidence drops trigger re-processing).
	fixedCfg := cfg
	fixedCfg.VariableGap = false
	fAcct := costmodel.NewAccountant()
	sys.RunClip(fixedCfg, sys.DS.Val[0].Clip, fAcct)
	if acct.Total() > 8*fAcct.Total() {
		t.Errorf("variable gap cost %v explodes vs fixed %v", acct.Total(), fAcct.Total())
	}
}

func TestVariableGapFallsBackForSORT(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.Tracker = TrackerSORT
	cfg.Gap = 4
	cfg.VariableGap = true // only meaningful for the recurrent tracker
	acct := costmodel.NewAccountant()
	res := sys.RunClip(cfg, sys.DS.Val[0].Clip, acct)
	// Must behave like fixed-gap SORT (no panic, frames at the fixed gap).
	for idx := range res.DetsByFrame {
		if idx%4 != 0 {
			t.Fatalf("frame %d processed despite fixed gap 4", idx)
		}
	}
}

func TestRunSetAggregates(t *testing.T) {
	sys := smallSystem(t)
	res := sys.RunSet(sys.Best, sys.DS.Val)
	if len(res.PerClip) != len(sys.DS.Val) {
		t.Fatalf("per-clip results = %d", len(res.PerClip))
	}
	if res.Runtime <= 0 {
		t.Error("zero runtime")
	}
	var sum float64
	for _, v := range res.Breakdown {
		sum += v
	}
	if diff := sum - res.Runtime; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown sum %v != runtime %v", sum, res.Runtime)
	}
}

func TestCtx(t *testing.T) {
	sys := smallSystem(t)
	ctx := sys.Ctx()
	if ctx.FPS != sys.DS.Cfg.FPS || ctx.NomW != sys.DS.Cfg.NomW {
		t.Error("context geometry wrong")
	}
	if ctx.Frames != sys.DS.Test[0].Clip.Len() {
		t.Error("context frame count wrong")
	}
}
