// Package core is OTIF's execution pipeline: it wires the segmentation
// proxy model, object detector and reduced-rate tracker (Figure 2 of the
// paper) into a single configurable pipeline, owns the trained artifacts
// (background model, proxy models, window sizes, tracking models, endpoint
// refiner), and executes parameter configurations over clip sets while
// charging simulated cost. The parameter tuner (internal/tuner) drives this
// package to produce speed-accuracy curves.
package core

import (
	"fmt"
	"math"

	"otif/internal/detect"
)

// TrackerKind selects the tracking method of a configuration.
type TrackerKind string

// Tracker choices.
const (
	TrackerSORT      TrackerKind = "sort"
	TrackerRecurrent TrackerKind = "recurrent"
	TrackerPair      TrackerKind = "pair"
)

// Config is one OTIF parameter configuration theta (§3.5): detector
// architecture, input resolution and confidence threshold; proxy model
// resolution index and threshold B_proxy; tracker sampling gap g.
type Config struct {
	// Detection module.
	Arch     detect.Arch
	DetScale float64 // detector input resolution as a fraction of nominal
	DetConf  float64 // detection confidence threshold

	// Proxy model module.
	UseProxy    bool
	ProxyIdx    int     // which trained proxy resolution to use
	ProxyThresh float64 // B_proxy

	// Tracking module.
	Gap     int // sampling gap g: process 1 in every Gap frames
	Tracker TrackerKind
	// VariableGap enables the Miris-style variable-rate policy: the gap
	// shrinks after low-confidence association rounds and grows back
	// toward Gap after confident ones. The paper found this comparable
	// to a fixed gap with the recurrent model (§3.4); the ablation
	// harness reproduces that comparison.
	VariableGap bool

	// Refine enables endpoint refinement on fixed-camera datasets.
	Refine bool
}

// String renders the configuration compactly.
func (c Config) String() string {
	p := "-"
	if c.UseProxy {
		p = fmt.Sprintf("p%d@%.2f", c.ProxyIdx, c.ProxyThresh)
	}
	return fmt.Sprintf("%s@%.2f conf=%.2f proxy=%s g=%d %s",
		c.Arch, c.DetScale, c.DetConf, p, c.Gap, c.Tracker)
}

// DetRes returns the detector input resolution in nominal pixels for a
// frame of the given nominal size.
func (c Config) DetRes(nomW, nomH int) (int, int) {
	w := int(float64(nomW)*c.DetScale + 0.5)
	h := int(float64(nomH)*c.DetScale + 0.5)
	if w < 16 {
		w = 16
	}
	if h < 16 {
		h = 16
	}
	return w, h
}

// DetScaleLadder is the descending sequence of detector resolution
// fractions the tuner explores. Each step reduces pixel count by ~30%
// (linear factor sqrt(0.7)), matching the paper's tuning coarseness C.
var DetScaleLadder = buildScaleLadder(7)

func buildScaleLadder(n int) []float64 {
	out := make([]float64, n)
	f := 1.0
	for i := 0; i < n; i++ {
		out[i] = f
		f *= math.Sqrt(0.7)
	}
	return out
}

// GapLadder is the sequence of sampling gaps G = <1, 2, ..., 2^n> (§3.4).
var GapLadder = []int{1, 2, 4, 8, 16, 32}

// ProxyThreshLadder is the set of proxy confidence thresholds the tuner
// considers for B_proxy.
var ProxyThreshLadder = []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.9}

// DetConfDefault is the default detection confidence threshold.
const DetConfDefault = 0.25

// NextGapForSpeedup returns the sampling gap reaching roughly a speedup of
// c over gap g: divide the frames processed by (1-c) and round up to the
// next power of two (§3.5.3).
func NextGapForSpeedup(g int, c float64) int {
	target := float64(g) / (1 - c)
	next := g
	for float64(next) < target {
		next *= 2
	}
	if next > GapLadder[len(GapLadder)-1] {
		next = GapLadder[len(GapLadder)-1]
	}
	return next
}
