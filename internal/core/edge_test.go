package core

import (
	"testing"

	"otif/internal/costmodel"
	"otif/internal/geom"
	"otif/internal/track"
)

func TestRunClipClampsProxyIndex(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.UseProxy = true
	cfg.ProxyThresh = 0.5
	for _, idx := range []int{-3, 99} {
		cfg.ProxyIdx = idx
		res := sys.RunClip(cfg, sys.DS.Val[0].Clip, costmodel.NewAccountant())
		if res == nil {
			t.Fatalf("proxy index %d crashed the pipeline", idx)
		}
	}
}

func TestRunClipUnknownTrackerFallsBackToSORT(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.Tracker = TrackerKind("bogus")
	res := sys.RunClip(cfg, sys.DS.Val[0].Clip, costmodel.NewAccountant())
	if len(res.Tracks) == 0 {
		t.Error("fallback tracker produced no tracks")
	}
}

func TestProxyThresholdOneSkipsDetector(t *testing.T) {
	sys := smallSystem(t)
	cfg := sys.Best
	cfg.UseProxy = true
	cfg.ProxyIdx = 0
	cfg.ProxyThresh = 1.1 // nothing can exceed it: every frame is "empty"
	acct := costmodel.NewAccountant()
	res := sys.RunClip(cfg, sys.DS.Val[0].Clip, acct)
	if acct.Get(costmodel.OpDetect) != 0 {
		t.Error("detector ran despite an impossible proxy threshold")
	}
	if len(res.Tracks) != 0 {
		t.Error("tracks without any detections")
	}
}

func TestHighConfidenceThresholdYieldsFewerTracks(t *testing.T) {
	sys := smallSystem(t)
	loose := sys.Best
	loose.DetConf = 0
	strict := sys.Best
	strict.DetConf = 0.95
	a := sys.RunClip(loose, sys.DS.Val[0].Clip, costmodel.NewAccountant())
	b := sys.RunClip(strict, sys.DS.Val[0].Clip, costmodel.NewAccountant())
	if len(b.Tracks) > len(a.Tracks) {
		t.Errorf("strict confidence produced more tracks (%d > %d)", len(b.Tracks), len(a.Tracks))
	}
}

func TestQueryTracksWithoutRefinerIsIdentity(t *testing.T) {
	sys := smallSystem(t)
	tr := &track.Track{Category: "car", Dets: dets(8, 8, 40, 100, 200, 20)}
	cfg := sys.Best
	cfg.Refine = false
	out := sys.QueryTracks(cfg, []*track.Track{tr}, 100)
	if len(out[0].Path) != len(tr.Dets) {
		t.Error("path modified without refinement")
	}
}

func TestClassifierForAllDatasets(t *testing.T) {
	sys := smallSystem(t)
	c := ClassifierFor(sys.DS)
	if c == nil {
		t.Fatal("nil classifier")
	}
	// Caldot has buses configured, so very large boxes are buses.
	if got := c.Classify(geom.Rect{W: 300, H: 120}); got != "bus" {
		t.Errorf("large box classified as %s", got)
	}
	if got := c.Classify(geom.Rect{W: 52, H: 26}); got != "car" {
		t.Errorf("car-sized box classified as %s", got)
	}
}
