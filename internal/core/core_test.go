package core

import (
	"testing"

	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/query"
	"otif/internal/track"
)

// smallSystem returns a trained system on a tiny caldot1 instance, shared
// across tests in this package.
var cachedSys *System

func smallSystem(t *testing.T) *System {
	t.Helper()
	if cachedSys != nil {
		return cachedSys
	}
	ds, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 3, ClipSeconds: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(ds)
	best := Config{Arch: detect.ArchYOLO, DetScale: 1.0, DetConf: DetConfDefault, Gap: 1, Tracker: TrackerSORT}
	sys.FinishTraining(best, 42)
	cachedSys = sys
	return sys
}

func TestNewSystemTrainsBackground(t *testing.T) {
	sys := smallSystem(t)
	if sys.Background == nil {
		t.Fatal("no background model")
	}
	if sys.Acct.Get(costmodel.OpTrainDet) != TrainDetectorCost {
		t.Error("detector training cost not charged")
	}
}

func TestFinishTrainingProducesArtifacts(t *testing.T) {
	sys := smallSystem(t)
	if len(sys.Proxies) != 5 {
		t.Errorf("proxies = %d, want 5 (paper trains 5 resolutions)", len(sys.Proxies))
	}
	if len(sys.WindowSizes) == 0 || len(sys.WindowSizes) > 2 {
		t.Errorf("window sizes = %v, want 1-2 beyond the full frame (k=3)", sys.WindowSizes)
	}
	if sys.Recurrent == nil || sys.Pair == nil {
		t.Error("tracking models not trained")
	}
	if sys.Refiner == nil {
		t.Error("refiner not built for a fixed camera")
	}
	if len(sys.SStar) != len(sys.DS.Train) {
		t.Errorf("S* has %d clips", len(sys.SStar))
	}
}

func TestRunClipProducesTracks(t *testing.T) {
	sys := smallSystem(t)
	acct := costmodel.NewAccountant()
	res := sys.RunClip(sys.Best, sys.DS.Val[0].Clip, acct)
	if len(res.Tracks) == 0 {
		t.Fatal("no tracks extracted")
	}
	if acct.Get(costmodel.OpDetect) <= 0 || acct.Get(costmodel.OpDecode) <= 0 {
		t.Error("costs not charged")
	}
	for _, tr := range res.Tracks {
		if len(tr.Dets) < 2 {
			t.Error("length-1 track not pruned")
		}
	}
}

func TestProxyConfigReducesDetectorCost(t *testing.T) {
	sys := smallSystem(t)
	base := sys.Best
	base.Gap = 2
	noProxy := costmodel.NewAccountant()
	sys.RunClip(base, sys.DS.Val[0].Clip, noProxy)

	withProxy := base
	withProxy.UseProxy = true
	withProxy.ProxyIdx = 0
	withProxy.ProxyThresh = 0.3
	p := costmodel.NewAccountant()
	sys.RunClip(withProxy, sys.DS.Val[0].Clip, p)
	if p.Get(costmodel.OpDetect) > noProxy.Get(costmodel.OpDetect) {
		t.Errorf("proxy increased detector cost: %v vs %v",
			p.Get(costmodel.OpDetect), noProxy.Get(costmodel.OpDetect))
	}
	if p.Get(costmodel.OpProxy) <= 0 {
		t.Error("proxy cost not charged")
	}
}

func TestGapReducesTotalCost(t *testing.T) {
	sys := smallSystem(t)
	cost := func(gap int) float64 {
		cfg := sys.Best
		cfg.Gap = gap
		acct := costmodel.NewAccountant()
		sys.RunClip(cfg, sys.DS.Val[0].Clip, acct)
		return acct.Total()
	}
	if !(cost(8) < cost(2) && cost(2) < cost(1)) {
		t.Error("larger gaps must cost less")
	}
}

func TestQueryTracksRefinementGating(t *testing.T) {
	sys := smallSystem(t)
	clipLen := sys.DS.Val[0].Clip.Len()
	// A sampling-truncated track in the middle of the clip extends; a
	// boundary track does not.
	gap := 8
	mid := &track.Track{Category: "car", Dets: dets(gap, 2*gap, 6*gap, 60, 300, 30)}
	boundary := &track.Track{Category: "car", Dets: dets(0, gap, 3*gap, 60, 300, 30)}
	cfg := sys.Best
	cfg.Gap = gap
	cfg.Refine = true
	out := sys.QueryTracks(cfg, []*track.Track{mid, boundary}, clipLen)
	if len(out) != 2 {
		t.Fatal("wrong output count")
	}
	if len(out[0].Path) < len(mid.Dets) {
		t.Error("path lost points")
	}
	if len(out[1].Path) > len(boundary.Dets)+1 {
		t.Error("boundary-truncated track must not be extended at its start")
	}
}

// dets builds a west-to-east run of detections at the given frames.
func dets(f0, step, fEnd int, x0, y, vPerFrame float64) []detect.Detection {
	var out []detect.Detection
	for f := f0; f <= fEnd; f += step {
		out = append(out, detect.Detection{
			FrameIdx: f,
			Box:      geom.Rect{X: x0 + vPerFrame*float64(f-f0), Y: y, W: 50, H: 25},
			Category: "car",
		})
	}
	return out
}

func TestMetricFor(t *testing.T) {
	for _, name := range dataset.Names() {
		ds, err := dataset.Build(name, dataset.SetSpec{Clips: 1, ClipSeconds: 1}, 1)
		if err != nil {
			t.Fatal(err)
		}
		m := MetricFor(ds)
		switch name {
		case "amsterdam", "jackson":
			if m.Name() != "track-count" {
				t.Errorf("%s metric = %s", name, m.Name())
			}
		default:
			if m.Name() != "path-breakdown" {
				t.Errorf("%s metric = %s", name, m.Name())
			}
		}
	}
}

func TestPathBreakdownMetricPerfectPrediction(t *testing.T) {
	sys := smallSystem(t)
	metric := MetricFor(sys.DS).(PathBreakdownMetric)
	// Build per-clip predictions directly from ground truth paths.
	perClip := make([][]*query.Track, len(sys.DS.Val))
	for i, ct := range sys.DS.Val {
		paths := map[int]geom.Path{}
		cats := map[int]string{}
		for f := 0; f < ct.Clip.Len(); f++ {
			for _, gt := range ct.Truth(f) {
				paths[gt.ID] = append(paths[gt.ID], gt.Box.Center())
				cats[gt.ID] = string(gt.Cat)
			}
		}
		for id, p := range paths {
			perClip[i] = append(perClip[i], &query.Track{
				ID: id, Category: cats[id], Path: p,
			})
		}
	}
	if acc := metric.Accuracy(perClip, sys.DS.Val); acc < 0.999 {
		t.Errorf("oracle prediction accuracy = %v, want 1", acc)
	}
}

func TestTrackCountMetric(t *testing.T) {
	ds, err := dataset.Build("jackson", dataset.SetSpec{Clips: 2, ClipSeconds: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	metric := TrackCountMetric{Category: "car"}
	// Oracle prediction: one track per true car.
	perClip := make([][]*query.Track, len(ds.Val))
	for i, ct := range ds.Val {
		seen := map[int]bool{}
		for f := 0; f < ct.Clip.Len(); f++ {
			for _, gt := range ct.Truth(f) {
				if gt.Cat == "car" && !seen[gt.ID] {
					seen[gt.ID] = true
					perClip[i] = append(perClip[i], &query.Track{ID: gt.ID, Category: "car"})
				}
			}
		}
	}
	if acc := metric.Accuracy(perClip, ds.Val); acc != 1 {
		t.Errorf("oracle accuracy = %v", acc)
	}
	// Empty predictions score poorly when cars exist.
	empty := make([][]*query.Track, len(ds.Val))
	if acc := metric.Accuracy(empty, ds.Val); acc > 0.5 {
		t.Errorf("empty prediction accuracy = %v, want low", acc)
	}
}

func TestNextGapForSpeedup(t *testing.T) {
	if got := NextGapForSpeedup(1, 0.3); got != 2 {
		t.Errorf("NextGap(1) = %d", got)
	}
	if got := NextGapForSpeedup(8, 0.3); got != 16 {
		t.Errorf("NextGap(8) = %d", got)
	}
	if got := NextGapForSpeedup(32, 0.3); got != 32 {
		t.Errorf("NextGap at max = %d, want clamped", got)
	}
}

func TestDetScaleLadderDescends30Percent(t *testing.T) {
	for i := 1; i < len(DetScaleLadder); i++ {
		ratio := DetScaleLadder[i] * DetScaleLadder[i] / (DetScaleLadder[i-1] * DetScaleLadder[i-1])
		if ratio < 0.69 || ratio > 0.71 {
			t.Errorf("pixel ratio step %d = %v, want 0.7 (C = 30%%)", i, ratio)
		}
	}
}

func TestMaxMisses(t *testing.T) {
	if got := maxMisses(30, 1); got != 24 {
		t.Errorf("maxMisses(30,1) = %d, want 24 (0.8s)", got)
	}
	if got := maxMisses(30, 32); got != 2 {
		t.Errorf("maxMisses(30,32) = %d, want floor of 2", got)
	}
}
