package core
