package tuner

import (
	"testing"

	"otif/internal/core"
	"otif/internal/dataset"
)

var cachedSys *core.System
var cachedMetric core.Metric

func trainedSystem(t *testing.T) (*core.System, core.Metric) {
	t.Helper()
	if cachedSys != nil {
		return cachedSys, cachedMetric
	}
	ds, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 3, ClipSeconds: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(ds)
	metric := core.MetricFor(ds)
	best, _ := SelectBest(sys, metric)
	sys.FinishTraining(best, 42)
	cachedSys, cachedMetric = sys, metric
	return sys, metric
}

func TestSelectBestUsesSORTAtFullRateOrReduced(t *testing.T) {
	sys, _ := trainedSystem(t)
	best := sys.Best
	if best.Tracker != core.TrackerSORT {
		t.Errorf("theta_best tracker = %s, want sort (learned models not yet trained)", best.Tracker)
	}
	if best.UseProxy {
		t.Error("theta_best must not use a proxy model")
	}
	if best.Gap < 1 {
		t.Error("invalid gap")
	}
}

func TestSelectBestAccuracyIsHigh(t *testing.T) {
	sys, metric := trainedSystem(t)
	p := Evaluate(sys, sys.Best, sys.DS.Val, metric)
	if p.Accuracy < 0.6 {
		t.Errorf("theta_best accuracy = %v, want reasonably high", p.Accuracy)
	}
}

func TestTuneProducesDescendingRuntimes(t *testing.T) {
	sys, metric := trainedSystem(t)
	curve := Tune(sys, metric, DefaultOptions())
	if len(curve) < 4 {
		t.Fatalf("curve has %d points, want several", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Runtime >= curve[i-1].Runtime {
			t.Errorf("curve not speeding up at step %d: %v -> %v",
				i, curve[i-1].Runtime, curve[i].Runtime)
		}
	}
	// The fast end is much faster than the slow end.
	if curve[len(curve)-1].Runtime > curve[0].Runtime/5 {
		t.Errorf("tuner found only %vx speedup",
			curve[0].Runtime/curve[len(curve)-1].Runtime)
	}
}

func TestTuneEventuallyEnablesProxyAndGap(t *testing.T) {
	sys, metric := trainedSystem(t)
	curve := Tune(sys, metric, DefaultOptions())
	sawProxy, sawGap := false, false
	for _, p := range curve {
		if p.Cfg.UseProxy {
			sawProxy = true
		}
		if p.Cfg.Gap > 1 {
			sawGap = true
		}
	}
	if !sawProxy {
		t.Error("tuner never enabled the segmentation proxy model")
	}
	if !sawGap {
		t.Error("tuner never increased the sampling gap")
	}
}

func TestTuneModuleMask(t *testing.T) {
	sys, metric := trainedSystem(t)
	opts := DefaultOptions()
	opts.UseProxy = false
	opts.UseTracking = false
	opts.Tracker = core.TrackerSORT
	opts.MaxIters = 6
	curve := Tune(sys, metric, opts)
	for _, p := range curve {
		if p.Cfg.UseProxy {
			t.Error("proxy enabled despite the module mask")
		}
		if p.Cfg.Gap != 1 {
			t.Error("gap changed despite the module mask")
		}
		if p.Cfg.Tracker != core.TrackerSORT {
			t.Errorf("tracker = %s, want sort", p.Cfg.Tracker)
		}
	}
}

func TestParetoFilter(t *testing.T) {
	pts := []Point{
		{Runtime: 10, Accuracy: 0.9},
		{Runtime: 5, Accuracy: 0.95}, // dominates the first
		{Runtime: 2, Accuracy: 0.7},
	}
	out := ParetoFilter(pts)
	if len(out) != 2 {
		t.Fatalf("pareto kept %d, want 2", len(out))
	}
	if out[0].Runtime != 5 || out[1].Runtime != 2 {
		t.Errorf("pareto order wrong: %v", out)
	}
}

func TestFastestWithin(t *testing.T) {
	pts := []Point{
		{Runtime: 10, Accuracy: 0.90},
		{Runtime: 5, Accuracy: 0.88},
		{Runtime: 1, Accuracy: 0.70},
	}
	p, ok := FastestWithin(pts, 0.05)
	if !ok || p.Runtime != 5 {
		t.Errorf("FastestWithin = %v, %v", p, ok)
	}
	p, ok = FastestWithin(pts, 0.30)
	if !ok || p.Runtime != 1 {
		t.Errorf("loose tolerance = %v", p)
	}
	if _, ok := FastestWithin(nil, 0.05); ok {
		t.Error("empty points should not find anything")
	}
}
