package tuner

import (
	"testing"

	"otif/internal/video"
)

// TestTuneDeterministicAcrossCacheBudgets asserts the tuner returns an
// identical curve — same configurations, bit-identical runtimes and
// accuracies — with the process-wide frame cache enabled or disabled. The
// cache serves repeated clip-frame reads and downsamples during candidate
// evaluation; it must never change what is computed.
func TestTuneDeterministicAcrossCacheBudgets(t *testing.T) {
	defer video.SetCacheBudget(video.DefaultCacheBytes)

	sys, metric := trainedSystem(t)
	opts := DefaultOptions()

	video.SetCacheBudget(0)
	uncached := Tune(sys, metric, opts)
	if len(uncached) == 0 {
		t.Fatal("empty uncached curve")
	}
	video.SetCacheBudget(video.DefaultCacheBytes)
	cached := Tune(sys, metric, opts)
	if len(cached) != len(uncached) {
		t.Fatalf("curve length %d != uncached %d", len(cached), len(uncached))
	}
	for i := range uncached {
		if cached[i].Cfg != uncached[i].Cfg {
			t.Errorf("point %d: cfg %v != uncached %v", i, cached[i].Cfg, uncached[i].Cfg)
		}
		if cached[i].Runtime != uncached[i].Runtime {
			t.Errorf("point %d: runtime %v != uncached %v", i, cached[i].Runtime, uncached[i].Runtime)
		}
		if cached[i].Accuracy != uncached[i].Accuracy {
			t.Errorf("point %d: accuracy %v != uncached %v", i, cached[i].Accuracy, uncached[i].Accuracy)
		}
	}
}
