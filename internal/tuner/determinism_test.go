package tuner

import (
	"testing"

	"otif/internal/parallel"
)

// TestTuneDeterministicAcrossWorkerCounts asserts that the greedy tuner
// returns an identical curve — same configurations, bit-identical runtimes
// and accuracies — whether candidate evaluation and cache building run
// serially or on the worker pool.
func TestTuneDeterministicAcrossWorkerCounts(t *testing.T) {
	sys, metric := trainedSystem(t)
	opts := DefaultOptions()

	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	serial := Tune(sys, metric, opts)
	if len(serial) == 0 {
		t.Fatal("empty serial curve")
	}
	for _, workers := range []int{2, 5} {
		parallel.SetWorkers(workers)
		par := Tune(sys, metric, opts)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: curve length %d != serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].Cfg != serial[i].Cfg {
				t.Errorf("workers=%d point %d: cfg %v != serial %v", workers, i, par[i].Cfg, serial[i].Cfg)
			}
			if par[i].Runtime != serial[i].Runtime {
				t.Errorf("workers=%d point %d: runtime %v != serial %v", workers, i, par[i].Runtime, serial[i].Runtime)
			}
			if par[i].Accuracy != serial[i].Accuracy {
				t.Errorf("workers=%d point %d: accuracy %v != serial %v", workers, i, par[i].Accuracy, serial[i].Accuracy)
			}
		}
	}
}
