package tuner

import (
	"context"
	"fmt"
	"math"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/obs"
	"otif/internal/parallel"
	"otif/internal/proxy"
	"otif/internal/video"
)

// Pre-registered metric handles for the tuning loop.
var (
	metIterations = obs.Default.Counter("tune.iterations")
	metCandidates = obs.Default.Counter("tune.candidates")
)

// DefaultCoarseness is the paper's tuning coarseness C = 30%: each tuning
// step asks every module for a candidate configuration roughly 30% faster.
const DefaultCoarseness = 0.30

// Options configures the joint tuner.
type Options struct {
	// C is the tuning coarseness (fractional speedup per step).
	C float64
	// MaxIters bounds the number of greedy iterations.
	MaxIters int
	// Archs are the detector architectures considered by the detection
	// module.
	Archs []detect.Arch

	// Module mask for the ablation study (Table 4): which modules may
	// propose candidate configurations. DefaultOptions enables all.
	UseDetection bool
	UseTracking  bool
	UseProxy     bool
	// Tracker is the tracking method configurations use (the "+Sampling
	// Rate" ablation row pairs the tracking module with SORT; the full
	// system uses the recurrent tracker).
	Tracker core.TrackerKind

	// Progress, when non-nil, receives structured tuning events: an
	// EventCacheSnapshot after the caching phase, an EventTuneIter as
	// each greedy iteration starts, and an EventCandidate per evaluated
	// candidate. Candidates evaluate on parallel workers, so the
	// callback must be safe for concurrent use.
	Progress obs.Progress
}

// DefaultOptions returns the paper's tuner settings.
func DefaultOptions() Options {
	return Options{
		C:        DefaultCoarseness,
		MaxIters: 12,
		Archs:    []detect.Arch{detect.ArchYOLO, detect.ArchRCNN},

		UseDetection: true,
		UseTracking:  true,
		UseProxy:     true,
		Tracker:      core.TrackerRecurrent,
	}
}

// cache holds the per-module information gathered in the tuner's caching
// phase (§3.5): the detection module's runtime/accuracy grid over
// (architecture, resolution), and the proxy module's per-frame cell scores
// at each resolution plus the theta_best detections used to measure
// recall.
type cache struct {
	detTime map[detKey]float64
	detAcc  map[detKey]float64

	proxyScores [][][]float64 // [model][frame][cell]
	bestBoxes   [][]geom.Rect // [frame] theta_best detections
	frameCount  int

	// proxyEst memoizes estProxyCost results. The cached frames are
	// immutable after buildCache, so a proxy setting's estimate depends
	// only on the key; without the memo every tuning iteration re-ran
	// Threshold+Group over all cached frames for the full (model x
	// threshold) grid.
	proxyEst map[proxyEstKey]proxyEstVal
}

type detKey struct {
	arch  detect.Arch
	scale float64
}

// proxyEstKey captures every input that can change an estProxyCost
// result: the proxy model, its threshold, and the detector architecture
// and scale (which determine the window set's sizes and costs).
type proxyEstKey struct {
	model  int
	thresh float64
	arch   detect.Arch
	scale  float64
}

type proxyEstVal struct {
	est    float64
	recall float64
}

// Tune runs OTIF's greedy joint parameter tuner (§3.5) and returns the
// speed-accuracy curve Theta, slowest first. The system must already be
// fully trained (FinishTraining done). The caching phase evaluates the
// detection grid and proxy scores; the tuning phase then iterates from
// theta_best, asking each module for a ~C-faster candidate and keeping the
// most accurate, until no module can offer further speedup.
func Tune(sys *core.System, metric core.Metric, opts Options) []Point {
	// context.Background is never canceled, so the error is always nil.
	curve, _ := TuneContext(context.Background(), sys, metric, opts)
	return curve
}

// TuneContext is Tune with cooperative cancellation at tuner-iteration
// boundaries: ctx is checked before the caching phase, before the
// theta_best evaluation, and at the top of every greedy iteration. On
// cancellation it returns the curve built so far together with a
// *core.PartialError (stage "tune", Done = completed iterations)
// wrapping ctx.Err(). Candidates already submitted for the current
// iteration run to completion, mirroring RunSetContext's clip-boundary
// drain.
func TuneContext(ctx context.Context, sys *core.System, metric core.Metric, opts Options) ([]Point, error) {
	if opts.C == 0 {
		// Zero-valued options select the paper defaults; the progress
		// hook rides along rather than being defaulted away.
		prog := opts.Progress
		opts = DefaultOptions()
		opts.Progress = prog
	}
	partial := func(done int, err error) error {
		return &core.PartialError{Stage: "tune", Done: done, Total: opts.MaxIters, Err: err}
	}
	if err := ctx.Err(); err != nil {
		return nil, partial(0, err)
	}
	ctx, tuneSpan := obs.StartSpan(ctx, "tune")
	tuneSpan.SetStage("tune")
	defer tuneSpan.End()
	_, cacheSpan := obs.StartSpan(ctx, "tune.cache")
	cacheSpan.SetStage("tune")
	c := buildCache(sys, metric, opts)
	cacheSpan.End()
	opts.Progress.Emit(obs.Event{
		Kind: obs.EventCacheSnapshot, CacheHitRate: video.GlobalCacheStats().HitRate(),
	})
	if err := ctx.Err(); err != nil {
		return nil, partial(0, err)
	}

	cfg := sys.Best
	cfg.Tracker = opts.Tracker
	cfg.Refine = sys.DS.FixedCamera && opts.Tracker == core.TrackerRecurrent
	if !opts.UseTracking {
		cfg.Gap = 1
	}
	cur := Evaluate(sys, cfg, sys.DS.Val, metric)
	sys.Acct.Add(costmodel.OpTune, cur.Runtime)
	curve := []Point{cur}

	for iter := 0; iter < opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return curve, partial(iter, err)
		}
		metIterations.Inc()
		_, iterSpan := obs.StartSpan(ctx, "tune.iter")
		iterSpan.SetStage("tune")
		opts.Progress.Emit(obs.Event{
			Kind: obs.EventTuneIter, Iteration: iter, Total: opts.MaxIters,
		})
		var cands []core.Config
		if opts.UseDetection {
			if next, ok := c.nextDetection(cur.Cfg, opts); ok {
				cands = append(cands, next)
			}
		}
		if opts.UseProxy {
			if next, ok := c.nextProxy(sys, cur.Cfg, opts); ok {
				cands = append(cands, next)
			}
		}
		if opts.UseTracking {
			if next, ok := nextTracking(cur.Cfg, opts); ok {
				cands = append(cands, next)
			}
		}
		if len(cands) == 0 {
			iterSpan.End()
			break
		}
		// Evaluate the iteration's module candidates concurrently; the
		// tuning-cost charges and the argmax run in candidate order
		// afterwards, so the chosen point and the accountant totals are
		// independent of the worker count.
		metCandidates.Add(int64(len(cands)))
		points := parallel.Map(len(cands), func(i int) Point {
			p := Evaluate(sys, cands[i], sys.DS.Val, metric)
			if opts.Progress != nil {
				opts.Progress(obs.Event{
					Kind: obs.EventCandidate, Iteration: iter, Index: i,
					Config: fmt.Sprintf("%v", p.Cfg), Runtime: p.Runtime, Accuracy: p.Accuracy,
				})
			}
			return p
		})
		best := Point{Accuracy: -1}
		for _, p := range points {
			sys.Acct.Add(costmodel.OpTune, p.Runtime)
			if p.Accuracy > best.Accuracy {
				best = p
			}
		}
		curve = append(curve, best)
		cur = best
		iterSpan.End()
		if l := obs.Log(); l != nil {
			l.Info("otif: tune iteration", "iter", iter, "candidates", len(cands),
				"runtime", best.Runtime, "accuracy", best.Accuracy)
		}
	}
	if l := obs.Log(); l != nil {
		l.Info("otif: tune finished", "points", len(curve))
	}
	return curve, nil
}

// buildCache runs the caching phase. Both halves fan out on the worker
// pool — the (arch, scale) detection grid cells are independent
// evaluations, and the per-clip proxy-score extraction is independent per
// clip — with all reductions (map fills, accountant charges, frame
// concatenation) performed in grid/clip order afterwards so the cache is
// identical at any worker count.
func buildCache(sys *core.System, metric core.Metric, opts Options) *cache {
	c := &cache{
		detTime:  map[detKey]float64{},
		detAcc:   map[detKey]float64{},
		proxyEst: map[proxyEstKey]proxyEstVal{},
	}
	if !opts.UseDetection && !opts.UseProxy {
		return c
	}

	// Detection grid: runtime and accuracy of each (arch, scale) with the
	// other parameters from theta_best.
	var keys []detKey
	for _, arch := range opts.Archs {
		for _, scale := range core.DetScaleLadder {
			keys = append(keys, detKey{arch, scale})
		}
	}
	gridPts := parallel.Map(len(keys), func(i int) Point {
		cfg := sys.Best
		cfg.Arch = keys[i].arch
		cfg.DetScale = keys[i].scale
		cfg.Tracker = opts.Tracker
		cfg.Refine = sys.DS.FixedCamera && opts.Tracker == core.TrackerRecurrent
		return Evaluate(sys, cfg, sys.DS.Val, metric)
	})
	for i, k := range keys {
		sys.Acct.Add(costmodel.OpTune, gridPts[i].Runtime)
		c.detTime[k] = gridPts[i].Runtime
		c.detAcc[k] = gridPts[i].Accuracy
	}

	if !opts.UseProxy {
		return c
	}
	// Proxy cache: per-cell scores for each trained resolution on the
	// validation frames sampled at theta_best's gap, plus theta_best
	// detections for recall measurement.
	type clipCache struct {
		boxes  [][]geom.Rect
		scores [][][]float64 // [model][frame][cell]
		acct   *costmodel.Accountant
	}
	perClip := parallel.Map(len(sys.DS.Val), func(i int) clipCache {
		ct := sys.DS.Val[i]
		cc := clipCache{
			scores: make([][][]float64, len(sys.Proxies)),
			acct:   costmodel.NewAccountant(),
		}
		detW, detH := sys.Best.DetRes(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)
		reader := video.NewReader(ct.Clip, sys.Best.Gap, detW, detH, cc.acct)
		detector := &detect.Detector{
			Cfg: detect.Config{
				Arch: sys.Best.Arch, Width: detW, Height: detH,
				ConfThresh: sys.Best.DetConf,
			},
			Background: sys.Background,
			Classify:   sys.Classifier,
			Acct:       cc.acct,
		}
		for {
			frame, idx := reader.Next()
			if frame == nil {
				break
			}
			dets := detector.Detect(frame, idx)
			boxes := make([]geom.Rect, len(dets))
			for k, d := range dets {
				boxes[k] = d.Box
			}
			cc.boxes = append(cc.boxes, boxes)
			for mi, m := range sys.Proxies {
				cc.scores[mi] = append(cc.scores[mi], m.Score(frame, sys.Background, cc.acct))
			}
		}
		return cc
	})
	acct := costmodel.NewAccountant() // cache-phase cost kept off runtime
	c.proxyScores = make([][][]float64, len(sys.Proxies))
	for _, cc := range perClip {
		acct.Merge(cc.acct)
		c.bestBoxes = append(c.bestBoxes, cc.boxes...)
		for mi := range sys.Proxies {
			c.proxyScores[mi] = append(c.proxyScores[mi], cc.scores[mi]...)
		}
		c.frameCount += len(cc.boxes)
	}
	sys.Acct.Add(costmodel.OpTune, acct.Total())
	return c
}

// nextDetection returns the detection-module candidate: the (architecture,
// resolution) with maximum cached accuracy among those at least C faster
// than the current detection configuration (§3.5.1).
func (c *cache) nextDetection(cur core.Config, opts Options) (core.Config, bool) {
	curTime, ok := c.detTime[detKey{cur.Arch, cur.DetScale}]
	if !ok {
		return core.Config{}, false
	}
	limit := (1 - opts.C) * curTime
	bestAcc := -1.0
	var bestKey detKey
	// Deterministic iteration order: accuracy ties break toward the
	// faster configuration, then lexicographically, so tuning curves are
	// reproducible across runs (map iteration order is randomized).
	for k, t := range c.detTime {
		if t > limit {
			continue
		}
		a := c.detAcc[k]
		switch {
		case a > bestAcc:
		case a == bestAcc && t < c.detTime[bestKey]:
		case a == bestAcc && t == c.detTime[bestKey] &&
			(k.arch < bestKey.arch || (k.arch == bestKey.arch && k.scale < bestKey.scale)):
		default:
			continue
		}
		bestAcc = a
		bestKey = k
	}
	if bestAcc < 0 {
		return core.Config{}, false
	}
	next := cur
	next.Arch = bestKey.arch
	next.DetScale = bestKey.scale
	return next, true
}

// nextProxy returns the proxy-module candidate: the (resolution, threshold)
// pair with highest recall among those whose estimated per-frame runtime
// (proxy inference plus windowed detector execution) is at least C faster
// than the current configuration's estimated per-frame runtime (§3.5.2).
func (c *cache) nextProxy(sys *core.System, cur core.Config, opts Options) (core.Config, bool) {
	if len(sys.Proxies) == 0 || c.frameCount == 0 {
		return core.Config{}, false
	}
	ws := proxy.NewWindowSet(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH,
		cur.Arch.PerPixelCost(), cur.DetScale, sys.WindowSizes)

	curCost := c.estConfigCost(sys, cur, ws)
	limit := (1 - opts.C) * curCost

	bestRecall := -1.0
	bestIdx, bestThreshIdx := -1, -1
	for mi := range sys.Proxies {
		for ti, th := range core.ProxyThreshLadder {
			est, recall := c.estProxyCost(sys, cur, mi, th, ws)
			if est <= limit && recall > bestRecall {
				bestRecall = recall
				bestIdx, bestThreshIdx = mi, ti
			}
		}
	}
	if bestIdx < 0 {
		return core.Config{}, false
	}
	next := cur
	next.UseProxy = true
	next.ProxyIdx = bestIdx
	next.ProxyThresh = core.ProxyThreshLadder[bestThreshIdx]
	return next, true
}

// estConfigCost estimates the current configuration's per-frame detection
// cost: full-frame detection when no proxy is active, otherwise the cached
// proxy estimate for the active proxy settings.
func (c *cache) estConfigCost(sys *core.System, cur core.Config, ws *proxy.WindowSet) float64 {
	if !cur.UseProxy {
		return ws.FullFrameCost()
	}
	est, _ := c.estProxyCost(sys, cur, cur.ProxyIdx, cur.ProxyThresh, ws)
	return est
}

// estProxyCost returns the mean per-frame runtime estimate and the recall
// (fraction of theta_best detections covered by the windows) of a proxy
// setting over the cached validation frames. Results are memoized per
// (model, threshold, detector arch, detector scale): the cached frames
// are immutable, so repeated grid sweeps across tuning iterations hit the
// memo instead of re-running Threshold+Group over every frame. ws must be
// the window set built for cur's detector arch and scale.
func (c *cache) estProxyCost(sys *core.System, cur core.Config, modelIdx int, thresh float64, ws *proxy.WindowSet) (est, recall float64) {
	key := proxyEstKey{model: modelIdx, thresh: thresh, arch: cur.Arch, scale: cur.DetScale}
	if v, ok := c.proxyEst[key]; ok {
		return v.est, v.recall
	}
	m := sys.Proxies[modelIdx]
	var totalCost float64
	covered, totalDets := 0, 0
	grid := proxy.NewGrid(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)
	for fi := 0; fi < c.frameCount; fi++ {
		proxy.ThresholdInto(grid, c.proxyScores[modelIdx][fi], thresh)
		wins := proxy.Group(grid, ws)
		totalCost += costmodel.ProxyCost(m.ResW, m.ResH)
		for _, w := range wins {
			idx, ok := ws.IndexOf(int(w.W), int(w.H))
			if !ok {
				// Group only emits window sizes drawn from ws; if a window
				// is somehow unknown, bill it conservatively at the
				// full-frame cost instead of silently picking a size.
				totalCost += ws.FullFrameCost()
				continue
			}
			totalCost += ws.Costs[idx]
		}
		for _, b := range c.bestBoxes[fi] {
			totalDets++
			for _, w := range wins {
				if w.Intersect(b).Area() >= 0.5*b.Area() {
					covered++
					break
				}
			}
		}
	}
	est = totalCost / float64(c.frameCount)
	if totalDets == 0 {
		recall = 1
	} else {
		recall = float64(covered) / float64(totalDets)
	}
	c.proxyEst[key] = proxyEstVal{est: est, recall: recall}
	return est, recall
}

// nextTracking returns the tracking-module candidate: the next sampling gap
// reaching roughly a C speedup (§3.5.3).
func nextTracking(cur core.Config, opts Options) (core.Config, bool) {
	g := core.NextGapForSpeedup(cur.Gap, opts.C)
	if g == cur.Gap {
		return core.Config{}, false
	}
	next := cur
	next.Gap = g
	return next, true
}

// ParetoFilter returns the subset of points forming the Pareto frontier
// (no other point is both faster and at least as accurate), sorted by
// runtime descending (slowest, most accurate first).
func ParetoFilter(points []Point) []Point {
	var out []Point
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q.Runtime < p.Runtime-1e-12 && q.Accuracy >= p.Accuracy {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	// Insertion sort by runtime descending (curves are short).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Runtime > out[j-1].Runtime; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FastestWithin returns the fastest point whose accuracy is within tol of
// the best accuracy among the points (the paper's Table 2 selection rule:
// fastest configuration within 5% of best achieved accuracy).
func FastestWithin(points []Point, tol float64) (Point, bool) {
	if len(points) == 0 {
		return Point{}, false
	}
	bestAcc := -1.0
	for _, p := range points {
		bestAcc = math.Max(bestAcc, p.Accuracy)
	}
	var out Point
	found := false
	for _, p := range points {
		if p.Accuracy >= bestAcc-tol {
			if !found || p.Runtime < out.Runtime {
				out = p
				found = true
			}
		}
	}
	return out, found
}
