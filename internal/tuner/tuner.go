package tuner

import (
	"math"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/proxy"
	"otif/internal/video"
)

// DefaultCoarseness is the paper's tuning coarseness C = 30%: each tuning
// step asks every module for a candidate configuration roughly 30% faster.
const DefaultCoarseness = 0.30

// Options configures the joint tuner.
type Options struct {
	// C is the tuning coarseness (fractional speedup per step).
	C float64
	// MaxIters bounds the number of greedy iterations.
	MaxIters int
	// Archs are the detector architectures considered by the detection
	// module.
	Archs []detect.Arch

	// Module mask for the ablation study (Table 4): which modules may
	// propose candidate configurations. DefaultOptions enables all.
	UseDetection bool
	UseTracking  bool
	UseProxy     bool
	// Tracker is the tracking method configurations use (the "+Sampling
	// Rate" ablation row pairs the tracking module with SORT; the full
	// system uses the recurrent tracker).
	Tracker core.TrackerKind
}

// DefaultOptions returns the paper's tuner settings.
func DefaultOptions() Options {
	return Options{
		C:        DefaultCoarseness,
		MaxIters: 12,
		Archs:    []detect.Arch{detect.ArchYOLO, detect.ArchRCNN},

		UseDetection: true,
		UseTracking:  true,
		UseProxy:     true,
		Tracker:      core.TrackerRecurrent,
	}
}

// cache holds the per-module information gathered in the tuner's caching
// phase (§3.5): the detection module's runtime/accuracy grid over
// (architecture, resolution), and the proxy module's per-frame cell scores
// at each resolution plus the theta_best detections used to measure
// recall.
type cache struct {
	detTime map[detKey]float64
	detAcc  map[detKey]float64

	proxyScores [][][]float64 // [model][frame][cell]
	bestBoxes   [][]geom.Rect // [frame] theta_best detections
	frameCount  int
}

type detKey struct {
	arch  detect.Arch
	scale float64
}

// Tune runs OTIF's greedy joint parameter tuner (§3.5) and returns the
// speed-accuracy curve Theta, slowest first. The system must already be
// fully trained (FinishTraining done). The caching phase evaluates the
// detection grid and proxy scores; the tuning phase then iterates from
// theta_best, asking each module for a ~C-faster candidate and keeping the
// most accurate, until no module can offer further speedup.
func Tune(sys *core.System, metric core.Metric, opts Options) []Point {
	if opts.C == 0 {
		opts = DefaultOptions()
	}
	c := buildCache(sys, metric, opts)

	cfg := sys.Best
	cfg.Tracker = opts.Tracker
	cfg.Refine = sys.DS.FixedCamera && opts.Tracker == core.TrackerRecurrent
	if !opts.UseTracking {
		cfg.Gap = 1
	}
	cur := Evaluate(sys, cfg, sys.DS.Val, metric)
	sys.Acct.Add(costmodel.OpTune, cur.Runtime)
	curve := []Point{cur}

	for iter := 0; iter < opts.MaxIters; iter++ {
		var cands []core.Config
		if opts.UseDetection {
			if next, ok := c.nextDetection(cur.Cfg, opts); ok {
				cands = append(cands, next)
			}
		}
		if opts.UseProxy {
			if next, ok := c.nextProxy(sys, cur.Cfg, opts); ok {
				cands = append(cands, next)
			}
		}
		if opts.UseTracking {
			if next, ok := nextTracking(cur.Cfg, opts); ok {
				cands = append(cands, next)
			}
		}
		if len(cands) == 0 {
			break
		}
		best := Point{Accuracy: -1}
		for _, cand := range cands {
			p := Evaluate(sys, cand, sys.DS.Val, metric)
			sys.Acct.Add(costmodel.OpTune, p.Runtime)
			if p.Accuracy > best.Accuracy {
				best = p
			}
		}
		curve = append(curve, best)
		cur = best
	}
	return curve
}

// buildCache runs the caching phase.
func buildCache(sys *core.System, metric core.Metric, opts Options) *cache {
	c := &cache{detTime: map[detKey]float64{}, detAcc: map[detKey]float64{}}
	if !opts.UseDetection && !opts.UseProxy {
		return c
	}

	// Detection grid: runtime and accuracy of each (arch, scale) with the
	// other parameters from theta_best.
	for _, arch := range opts.Archs {
		for _, scale := range core.DetScaleLadder {
			cfg := sys.Best
			cfg.Arch = arch
			cfg.DetScale = scale
			cfg.Tracker = opts.Tracker
			cfg.Refine = sys.DS.FixedCamera && opts.Tracker == core.TrackerRecurrent
			p := Evaluate(sys, cfg, sys.DS.Val, metric)
			sys.Acct.Add(costmodel.OpTune, p.Runtime)
			k := detKey{arch, scale}
			c.detTime[k] = p.Runtime
			c.detAcc[k] = p.Accuracy
		}
	}

	if !opts.UseProxy {
		return c
	}
	// Proxy cache: per-cell scores for each trained resolution on the
	// validation frames sampled at theta_best's gap, plus theta_best
	// detections for recall measurement.
	acct := costmodel.NewAccountant() // cache-phase cost kept off runtime
	c.proxyScores = make([][][]float64, len(sys.Proxies))
	for _, ct := range sys.DS.Val {
		detW, detH := sys.Best.DetRes(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)
		reader := video.NewReader(ct.Clip, sys.Best.Gap, detW, detH, acct)
		detector := &detect.Detector{
			Cfg: detect.Config{
				Arch: sys.Best.Arch, Width: detW, Height: detH,
				ConfThresh: sys.Best.DetConf,
			},
			Background: sys.Background,
			Classify:   sys.Classifier,
			Acct:       acct,
		}
		for {
			frame, idx := reader.Next()
			if frame == nil {
				break
			}
			dets := detector.Detect(frame, idx)
			boxes := make([]geom.Rect, len(dets))
			for i, d := range dets {
				boxes[i] = d.Box
			}
			c.bestBoxes = append(c.bestBoxes, boxes)
			for mi, m := range sys.Proxies {
				c.proxyScores[mi] = append(c.proxyScores[mi], m.Score(frame, sys.Background, acct))
			}
			c.frameCount++
		}
	}
	sys.Acct.Add(costmodel.OpTune, acct.Total())
	return c
}

// nextDetection returns the detection-module candidate: the (architecture,
// resolution) with maximum cached accuracy among those at least C faster
// than the current detection configuration (§3.5.1).
func (c *cache) nextDetection(cur core.Config, opts Options) (core.Config, bool) {
	curTime, ok := c.detTime[detKey{cur.Arch, cur.DetScale}]
	if !ok {
		return core.Config{}, false
	}
	limit := (1 - opts.C) * curTime
	bestAcc := -1.0
	var bestKey detKey
	// Deterministic iteration order: accuracy ties break toward the
	// faster configuration, then lexicographically, so tuning curves are
	// reproducible across runs (map iteration order is randomized).
	for k, t := range c.detTime {
		if t > limit {
			continue
		}
		a := c.detAcc[k]
		switch {
		case a > bestAcc:
		case a == bestAcc && t < c.detTime[bestKey]:
		case a == bestAcc && t == c.detTime[bestKey] &&
			(k.arch < bestKey.arch || (k.arch == bestKey.arch && k.scale < bestKey.scale)):
		default:
			continue
		}
		bestAcc = a
		bestKey = k
	}
	if bestAcc < 0 {
		return core.Config{}, false
	}
	next := cur
	next.Arch = bestKey.arch
	next.DetScale = bestKey.scale
	return next, true
}

// nextProxy returns the proxy-module candidate: the (resolution, threshold)
// pair with highest recall among those whose estimated per-frame runtime
// (proxy inference plus windowed detector execution) is at least C faster
// than the current configuration's estimated per-frame runtime (§3.5.2).
func (c *cache) nextProxy(sys *core.System, cur core.Config, opts Options) (core.Config, bool) {
	if len(sys.Proxies) == 0 || c.frameCount == 0 {
		return core.Config{}, false
	}
	ws := proxy.NewWindowSet(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH,
		cur.Arch.PerPixelCost(), cur.DetScale, sys.WindowSizes)

	curCost := c.estConfigCost(sys, cur, ws)
	limit := (1 - opts.C) * curCost

	bestRecall := -1.0
	bestIdx, bestThreshIdx := -1, -1
	for mi, m := range sys.Proxies {
		for ti, th := range core.ProxyThreshLadder {
			est, recall := c.estProxyCost(sys, mi, th, m.ResW, m.ResH, ws)
			if est <= limit && recall > bestRecall {
				bestRecall = recall
				bestIdx, bestThreshIdx = mi, ti
			}
		}
	}
	if bestIdx < 0 {
		return core.Config{}, false
	}
	next := cur
	next.UseProxy = true
	next.ProxyIdx = bestIdx
	next.ProxyThresh = core.ProxyThreshLadder[bestThreshIdx]
	return next, true
}

// estConfigCost estimates the current configuration's per-frame detection
// cost: full-frame detection when no proxy is active, otherwise the cached
// proxy estimate for the active proxy settings.
func (c *cache) estConfigCost(sys *core.System, cur core.Config, ws *proxy.WindowSet) float64 {
	if !cur.UseProxy {
		return ws.FullFrameCost()
	}
	m := sys.Proxies[cur.ProxyIdx]
	est, _ := c.estProxyCost(sys, cur.ProxyIdx, cur.ProxyThresh, m.ResW, m.ResH, ws)
	return est
}

// estProxyCost returns the mean per-frame runtime estimate and the recall
// (fraction of theta_best detections covered by the windows) of a proxy
// setting over the cached validation frames.
func (c *cache) estProxyCost(sys *core.System, modelIdx int, thresh float64, resW, resH int, ws *proxy.WindowSet) (est, recall float64) {
	var totalCost float64
	covered, totalDets := 0, 0
	for fi := 0; fi < c.frameCount; fi++ {
		grid := proxy.Threshold(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH, c.proxyScores[modelIdx][fi], thresh)
		wins := proxy.Group(grid, ws)
		totalCost += costmodel.ProxyCost(resW, resH)
		for _, w := range wins {
			totalCost += ws.Costs[windowIndex(ws, w)]
		}
		for _, b := range c.bestBoxes[fi] {
			totalDets++
			for _, w := range wins {
				if w.Intersect(b).Area() >= 0.5*b.Area() {
					covered++
					break
				}
			}
		}
	}
	est = totalCost / float64(c.frameCount)
	if totalDets == 0 {
		recall = 1
	} else {
		recall = float64(covered) / float64(totalDets)
	}
	return est, recall
}

func windowIndex(ws *proxy.WindowSet, w geom.Rect) int {
	for i, s := range ws.Sizes {
		if s[0] == int(w.W) && s[1] == int(w.H) {
			return i
		}
	}
	return 0
}

// nextTracking returns the tracking-module candidate: the next sampling gap
// reaching roughly a C speedup (§3.5.3).
func nextTracking(cur core.Config, opts Options) (core.Config, bool) {
	g := core.NextGapForSpeedup(cur.Gap, opts.C)
	if g == cur.Gap {
		return core.Config{}, false
	}
	next := cur
	next.Gap = g
	return next, true
}

// ParetoFilter returns the subset of points forming the Pareto frontier
// (no other point is both faster and at least as accurate), sorted by
// runtime descending (slowest, most accurate first).
func ParetoFilter(points []Point) []Point {
	var out []Point
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q.Runtime < p.Runtime-1e-12 && q.Accuracy >= p.Accuracy {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	// Insertion sort by runtime descending (curves are short).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Runtime > out[j-1].Runtime; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// FastestWithin returns the fastest point whose accuracy is within tol of
// the best accuracy among the points (the paper's Table 2 selection rule:
// fastest configuration within 5% of best achieved accuracy).
func FastestWithin(points []Point, tol float64) (Point, bool) {
	if len(points) == 0 {
		return Point{}, false
	}
	bestAcc := -1.0
	for _, p := range points {
		bestAcc = math.Max(bestAcc, p.Accuracy)
	}
	var out Point
	found := false
	for _, p := range points {
		if p.Accuracy >= bestAcc-tol {
			if !found || p.Runtime < out.Runtime {
				out = p
				found = true
			}
		}
	}
	return out, found
}
