// Package tuner implements OTIF's parameter selection: the best-accuracy
// configuration theta_best used to label training data (§3.3), and the
// greedy joint parameter tuner that produces a speed-accuracy curve of
// configurations approximating the Pareto frontier (§3.5).
package tuner

import (
	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/detect"
)

// Point is one tuned configuration with its validation-set performance.
type Point struct {
	Cfg      core.Config
	Runtime  float64 // simulated seconds over the validation set
	Accuracy float64
}

// Evaluate runs cfg over the clips and scores it with the metric.
func Evaluate(sys *core.System, cfg core.Config, clips []*dataset.ClipTruth, metric core.Metric) Point {
	res := sys.RunSet(cfg, clips)
	return Point{
		Cfg:      cfg,
		Runtime:  res.Runtime,
		Accuracy: metric.Accuracy(res.PerClip, clips),
	}
}

// SelectBest chooses the best-accuracy configuration theta_best on the
// validation set (§3.3): starting from the slowest possible configuration
// (no proxy model, the expensive detector architecture at maximum
// resolution, maximum sampling rate, heuristic SORT tracker), repeatedly
// reduce the detector resolution in ~30% speed steps until accuracy drops,
// then reduce the sampling rate the same way, keeping the settings with
// the best achieved accuracy. Accuracy is often higher at lower
// resolutions, which is why this descent is worth its cost.
func SelectBest(sys *core.System, metric core.Metric) (core.Config, Point) {
	cfg := core.Config{
		Arch:     detect.ArchRCNN,
		DetScale: core.DetScaleLadder[0],
		DetConf:  core.DetConfDefault,
		Gap:      1,
		Tracker:  core.TrackerSORT,
	}
	best := Evaluate(sys, cfg, sys.DS.Val, metric)
	sys.Acct.Add("tune", best.Runtime)

	// Descend the resolution ladder while accuracy does not drop.
	for _, scale := range core.DetScaleLadder[1:] {
		cand := cfg
		cand.DetScale = scale
		p := Evaluate(sys, cand, sys.DS.Val, metric)
		sys.Acct.Add("tune", p.Runtime)
		if p.Accuracy < best.Accuracy {
			break
		}
		best = p
		cfg = cand
	}

	// Then descend the sampling-rate ladder the same way.
	for _, gap := range core.GapLadder[1:] {
		cand := cfg
		cand.Gap = gap
		p := Evaluate(sys, cand, sys.DS.Val, metric)
		sys.Acct.Add("tune", p.Runtime)
		if p.Accuracy < best.Accuracy {
			break
		}
		best = p
		cfg = cand
	}
	return cfg, best
}
