package nn

import (
	"fmt"
	"math"
)

// This file implements the float32 kernel suite of the reduced-precision
// compute backend: Dense32, MLP32, LogReg32 (and GRUCell32 in gru32.go)
// mirror the float64 zero-allocation inference kernels with float32 weights,
// inputs and accumulators. Models are converted once via the To32 methods —
// the persist format stays float64, so loading and retraining are untouched
// and float64 remains the bit-identical reference path.
//
// Numerics: dot products accumulate in float32 in the same ascending index
// order as the float64 kernels, so the float32 scalar and batched tiers are
// bit-identical to each other (pinned by tests); against the float64
// reference they carry the usual single-precision rounding, bounded by the
// ULP differential tests in nn32_test.go and the end-to-end accuracy delta
// pinned in internal/core. Activations evaluate the float64 transcendental
// on the float32 pre-activation and round once, keeping them monotone and
// within 1 ULP of the correctly rounded result.

// Vec32 is a dense float32 vector.
type Vec32 []float32

// NewVec32 returns a zero vector of length n.
func NewVec32(n int) Vec32 { return make(Vec32, n) }

// To32 returns v converted elementwise to float32.
func (v Vec) To32() Vec32 {
	out := make(Vec32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Sigmoid32 is the logistic function evaluated in float64 and rounded once
// to float32.
func Sigmoid32(x float32) float32 { return float32(Sigmoid(float64(x))) }

// Tanh32 is the hyperbolic tangent evaluated in float64 and rounded once to
// float32.
func Tanh32(x float32) float32 { return float32(math.Tanh(float64(x))) }

// ReLU32 is the rectified linear unit.
func ReLU32(x float32) float32 {
	if x > 0 {
		return x
	}
	return 0
}

func (a Activation) apply32(x float32) float32 {
	switch a {
	case SigmoidAct:
		return Sigmoid32(x)
	case TanhAct:
		return Tanh32(x)
	case ReLUAct:
		return ReLU32(x)
	default:
		return x
	}
}

// Scratch32 holds reusable buffers for the float32 zero-allocation
// inference kernels, mirroring Scratch. A scratch is owned by exactly one
// goroutine; every kernel call overwrites its buffers. The zero value is
// ready to use.
type Scratch32 struct {
	hx, z, r, c Vec32 // GRU gate buffers ([r*h, x] reuses hx, see gru32.go)
	a, b        Vec32 // MLP ping-pong buffers
}

// growVec32 resizes *v to length n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func growVec32(v *Vec32, n int) Vec32 {
	if cap(*v) < n {
		*v = make(Vec32, n)
	}
	*v = (*v)[:n]
	return *v
}

// Dense32 is the float32 mirror of Dense: y = act(W x + b) with flat
// row-major weights. Instances come from Dense.To32 and are inference-only.
type Dense32 struct {
	In, Out int
	W       Vec32 // flat row-major weights, len Out*In
	B       Vec32
	Act     Activation
}

// To32 returns an inference-only float32 copy of the layer. The conversion
// is elementwise rounding of the trained float64 weights; call it once per
// trained model and share the result (it is read-only under inference).
func (d *Dense) To32() *Dense32 {
	return &Dense32{In: d.In, Out: d.Out, W: d.W.To32(), B: d.B.To32(), Act: d.Act}
}

// ApplyInto computes the layer output into dst (len Out) and returns dst.
// It allocates nothing and reads only the weights, so concurrent calls on a
// shared layer are safe as long as each goroutine owns its dst. dst must
// not alias x. Per output unit the dot product accumulates in ascending
// index order — the same order as the float64 kernel and the batched
// float32 kernel, so ApplyInto and ApplyBatchInto are bit-identical.
func (d *Dense32) ApplyInto(dst, x Vec32) Vec32 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense32 expected input %d, got %d", d.In, len(x)))
	}
	if len(dst) != d.Out {
		panic(fmt.Sprintf("nn: dense32 expected output buffer %d, got %d", d.Out, len(dst)))
	}
	for i := 0; i < d.Out; i++ {
		row := d.W[i*d.In : (i+1)*d.In]
		var s float32
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = d.Act.apply32(s + d.B[i])
	}
	return dst
}

// MLP32 is the float32 mirror of MLP, built by MLP.To32.
type MLP32 struct {
	Layers []*Dense32
}

// To32 returns an inference-only float32 copy of the network.
func (m *MLP) To32() *MLP32 {
	out := &MLP32{Layers: make([]*Dense32, len(m.Layers))}
	for i, l := range m.Layers {
		out.Layers[i] = l.To32()
	}
	return out
}

// ApplyWith runs the network on x using the scratch's ping-pong buffers,
// allocating nothing in steady state. The returned vector is owned by the
// scratch and valid only until its next use; x must not alias the scratch's
// buffers.
func (m *MLP32) ApplyWith(s *Scratch32, x Vec32) Vec32 {
	cur := x
	for i, l := range m.Layers {
		var dst Vec32
		if i%2 == 0 {
			dst = growVec32(&s.a, l.Out)
		} else {
			dst = growVec32(&s.b, l.Out)
		}
		l.ApplyInto(dst, cur)
		cur = dst
	}
	return cur
}

// LogReg32 is the float32 mirror of LogReg: p = sigmoid(w.x + b), built by
// LogReg.To32.
type LogReg32 struct {
	W Vec32
	B float32
}

// To32 returns an inference-only float32 copy of the classifier.
func (l *LogReg) To32() *LogReg32 {
	return &LogReg32{W: l.W.To32(), B: float32(l.B)}
}

// Predict returns the positive-class probability for feature vector x. The
// dot product accumulates in float32 in ascending index order; it allocates
// nothing.
func (l *LogReg32) Predict(x Vec32) float32 {
	if len(x) != len(l.W) {
		panic(fmt.Sprintf("nn: logreg32 dot of length %d and %d", len(l.W), len(x)))
	}
	var s float32
	for i, w := range l.W {
		s += w * x[i]
	}
	return Sigmoid32(s + l.B)
}
