package nn

import (
	"math/rand"
	"testing"
)

// The batched kernels carry the same two-part contract as the scalar into
// kernels: steady-state calls allocate nothing, and every output row is
// bit-identical to the scalar kernel applied to the corresponding input
// row. The differential tests sweep random shapes including the rows = 0
// and rows = 1 edge cases the tracker hits on empty and single-track
// frames.

func TestDenseApplyBatchIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		in := 1 + rng.Intn(40)
		out := 1 + rng.Intn(40)
		rows := rng.Intn(9) // includes 0 and 1
		d := NewDense(in, out, Activation(rng.Intn(4)), rng)
		x := randVec(rng, rows*in)
		got := d.ApplyBatchInto(NewVec(rows*out), x, rows)
		for b := 0; b < rows; b++ {
			want := d.ApplyInto(NewVec(out), x[b*in:(b+1)*in])
			requireEqualVecs(t, "Dense.ApplyBatchInto row", got[b*out:(b+1)*out], want)
		}
	}
}

func TestGRUStepBatchInferIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var bs BatchScratch
	for trial := 0; trial < 30; trial++ {
		in := 1 + rng.Intn(12)
		n := 1 + rng.Intn(24)
		rows := rng.Intn(7) // includes 0 and 1
		g := NewGRUCell(in, n, rng)
		h := randVec(rng, rows*n)
		x := randVec(rng, rows*in)
		got := g.StepBatchInferInto(NewVec(rows*n), h, x, rows, &bs)
		var s Scratch
		for b := 0; b < rows; b++ {
			want := g.StepInferInto(NewVec(n), h[b*n:(b+1)*n], x[b*in:(b+1)*in], &s)
			requireEqualVecs(t, "GRUCell.StepBatchInferInto row", got[b*n:(b+1)*n], want)
		}

		// In-place: dst aliasing h must produce the same states.
		hc := h.Clone()
		g.StepBatchInferInto(hc, hc, x, rows, &bs)
		requireEqualVecs(t, "GRUCell.StepBatchInferInto in-place", hc, got)
	}
}

func TestDenseApplyBatchIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := NewDense(23, 16, SigmoidAct, rng)
	const rows = 12
	x := randVec(rng, rows*23)
	dst := NewVec(rows * 16)
	if n := testing.AllocsPerRun(100, func() { d.ApplyBatchInto(dst, x, rows) }); n != 0 {
		t.Errorf("Dense.ApplyBatchInto allocates %v per op, want 0", n)
	}
}

func TestGRUStepBatchInferIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	g := NewGRUCell(7, 16, rng)
	const rows = 12
	h := randVec(rng, rows*16)
	x := randVec(rng, rows*7)
	var s BatchScratch
	g.StepBatchInferInto(h, h, x, rows, &s) // warm the scratch buffers
	if n := testing.AllocsPerRun(100, func() { g.StepBatchInferInto(h, h, x, rows, &s) }); n != 0 {
		t.Errorf("GRUCell.StepBatchInferInto allocates %v per op, want 0", n)
	}
	// A smaller batch after a larger one reuses the grown buffers.
	if n := testing.AllocsPerRun(100, func() { g.StepBatchInferInto(h[:3*16], h[:3*16], x[:3*7], 3, &s) }); n != 0 {
		t.Errorf("GRUCell.StepBatchInferInto (shrunk batch) allocates %v per op, want 0", n)
	}
}

func BenchmarkDenseApplyBatchInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(32, 32, ReLUAct, rng)
	const rows = 16
	x := randVec(rng, rows*32)
	dst := NewVec(rows * 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ApplyBatchInto(dst, x, rows)
	}
}

// BenchmarkDenseApplyIntoPerRow is the scalar reference for
// BenchmarkDenseApplyBatchInto: the same 16 rows applied one at a time.
func BenchmarkDenseApplyIntoPerRow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(32, 32, ReLUAct, rng)
	const rows = 16
	x := randVec(rng, rows*32)
	dst := NewVec(rows * 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rows; r++ {
			d.ApplyInto(dst[r*32:(r+1)*32], x[r*32:(r+1)*32])
		}
	}
}

func BenchmarkGRUStepBatchInferInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRUCell(7, 16, rng)
	const rows = 16
	h := randVec(rng, rows*16)
	x := randVec(rng, rows*7)
	var s BatchScratch
	g.StepBatchInferInto(h, h, x, rows, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StepBatchInferInto(h, h, x, rows, &s)
	}
}

// BenchmarkGRUStepInferIntoPerRow is the scalar reference for
// BenchmarkGRUStepBatchInferInto: the same 16 tracks stepped one at a time.
func BenchmarkGRUStepInferIntoPerRow(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRUCell(7, 16, rng)
	const rows = 16
	h := randVec(rng, rows*16)
	x := randVec(rng, rows*7)
	var s Scratch
	g.StepInferInto(h[:16], h[:16], x[:7], &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rows; r++ {
			g.StepInferInto(h[r*16:(r+1)*16], h[r*16:(r+1)*16], x[r*7:(r+1)*7], &s)
		}
	}
}
