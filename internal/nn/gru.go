package nn

import "math/rand"

// GRUCell is a gated recurrent cell used by the recurrent reduced-rate
// tracker to summarize a track prefix (a sequence of detection feature
// vectors) into a fixed-size track-level feature vector.
//
// Update rule (standard GRU):
//
//	z = sigmoid(Wz [h, x])
//	r = sigmoid(Wr [h, x])
//	c = tanh(Wc [r*h, x])
//	h' = (1-z)*h + z*c
type GRUCell struct {
	InSize, HiddenSize int
	Wz, Wr, Wc         *Dense
}

// NewGRUCell creates a GRU cell with the given input and hidden sizes.
func NewGRUCell(in, hidden int, rng *rand.Rand) *GRUCell {
	return &GRUCell{
		InSize:     in,
		HiddenSize: hidden,
		Wz:         NewDense(in+hidden, hidden, SigmoidAct, rng),
		Wr:         NewDense(in+hidden, hidden, SigmoidAct, rng),
		Wc:         NewDense(in+hidden, hidden, TanhAct, rng),
	}
}

// gruStep holds everything needed to backprop through one Step call.
type gruStep struct {
	h, x, z, r, c, hNew Vec
}

// Step advances the hidden state by one input. It returns the new hidden
// state and an opaque record for StepBackward. Not safe for concurrent
// use (the gate layers retain backward state); inference uses StepInfer.
func (g *GRUCell) Step(h, x Vec) (Vec, *gruStep) {
	hx := Concat(h, x)
	z := g.Wz.Forward(hx)
	r := g.Wr.Forward(hx)
	rh := NewVec(g.HiddenSize)
	for i := range rh {
		rh[i] = r[i] * h[i]
	}
	c := g.Wc.Forward(Concat(rh, x))
	hNew := NewVec(g.HiddenSize)
	for i := range hNew {
		hNew[i] = (1-z[i])*h[i] + z[i]*c[i]
	}
	return hNew, &gruStep{h: h.Clone(), x: x.Clone(), z: z, r: r, c: c, hNew: hNew}
}

// StepInfer advances the hidden state by one input without retaining any
// backward state, so concurrent inference on a shared cell is safe. The
// returned state is bit-identical to Step's.
func (g *GRUCell) StepInfer(h, x Vec) Vec {
	var s Scratch
	return g.StepInferInto(NewVec(g.HiddenSize), h, x, &s)
}

// StepInferInto advances the hidden state by one input, writing the new
// state into dst (len HiddenSize) and returning dst. All intermediates
// live in the scratch, so steady-state calls allocate nothing. dst may
// alias h (the common in-place update), but must not alias a scratch
// buffer. Output is bit-identical to StepInfer's.
func (g *GRUCell) StepInferInto(dst, h, x Vec, s *Scratch) Vec {
	n := g.HiddenSize
	hx := growVec(&s.hx, n+len(x))
	copy(hx, h)
	copy(hx[n:], x)
	z := g.Wz.ApplyInto(growVec(&s.z, n), hx)
	r := g.Wr.ApplyInto(growVec(&s.r, n), hx)
	rh := growVec(&s.rh, n)
	for i := range rh {
		rh[i] = r[i] * h[i]
	}
	rhx := growVec(&s.rhx, n+len(x))
	copy(rhx, rh)
	copy(rhx[n:], x)
	c := g.Wc.ApplyInto(growVec(&s.c, n), rhx)
	for i := 0; i < n; i++ {
		dst[i] = (1-z[i])*h[i] + z[i]*c[i]
	}
	return dst
}

// StepBackward backpropagates dL/dh' through one step recorded by Step,
// applying SGD updates to the gate weights and returning (dL/dh, dL/dx).
//
// The Dense layers retain their forward state, so callers must backprop
// steps in strict reverse order of the corresponding forward calls and
// re-run the forward pass for each training example (the tracker's
// sequences are short, so this is cheap).
func (g *GRUCell) StepBackward(s *gruStep, dHNew Vec, lr, clip float64) (dH, dX Vec) {
	n := g.HiddenSize
	dH = NewVec(n)
	dX = NewVec(g.InSize)

	dZ := NewVec(n)
	dC := NewVec(n)
	for i := 0; i < n; i++ {
		dZ[i] = dHNew[i] * (s.c[i] - s.h[i])
		dC[i] = dHNew[i] * s.z[i]
		dH[i] += dHNew[i] * (1 - s.z[i])
	}

	// Backprop through the candidate gate. We must restore Wc's forward
	// state for this step before calling Backward, because a later forward
	// call may have overwritten it.
	rh := NewVec(n)
	for i := range rh {
		rh[i] = s.r[i] * s.h[i]
	}
	g.Wc.refresh(Concat(rh, s.x), s.c)
	dRHX := g.Wc.Backward(dC, lr, clip)
	dR := NewVec(n)
	for i := 0; i < n; i++ {
		dR[i] = dRHX[i] * s.h[i]
		dH[i] += dRHX[i] * s.r[i]
	}
	for i := 0; i < g.InSize; i++ {
		dX[i] += dRHX[n+i]
	}

	hx := Concat(s.h, s.x)
	g.Wr.refresh(hx, s.r)
	dHXr := g.Wr.Backward(dR, lr, clip)
	g.Wz.refresh(hx, s.z)
	dHXz := g.Wz.Backward(dZ, lr, clip)
	for i := 0; i < n; i++ {
		dH[i] += dHXr[i] + dHXz[i]
	}
	for i := 0; i < g.InSize; i++ {
		dX[i] += dHXr[n+i] + dHXz[n+i]
	}
	return dH, dX
}

// refresh restores the layer's retained forward state to a previously
// computed (input, output) pair so Backward can be replayed for that call.
// The layer aliases both vectors rather than cloning them: Backward only
// reads lastIn/lastOut, and every refresh caller passes vectors that stay
// unmodified until the matching Backward returns.
func (d *Dense) refresh(in, out Vec) {
	d.lastIn = in
	d.lastOut = out
}

// RunSequence folds the cell over a sequence of inputs starting from the
// zero hidden state, returning the final hidden state and the per-step
// records (for training) in forward order.
func (g *GRUCell) RunSequence(xs []Vec) (Vec, []*gruStep) {
	h := NewVec(g.HiddenSize)
	steps := make([]*gruStep, 0, len(xs))
	for _, x := range xs {
		var s *gruStep
		h, s = g.Step(h, x)
		steps = append(steps, s)
	}
	return h, steps
}

// RunSequenceInfer folds the cell over a sequence of inputs starting from
// the zero hidden state without retaining backward state (safe for
// concurrent inference on a shared cell).
func (g *GRUCell) RunSequenceInfer(xs []Vec) Vec {
	var s Scratch
	return g.RunSequenceInferInto(NewVec(g.HiddenSize), xs, &s)
}

// RunSequenceInferInto folds the cell over a sequence of inputs starting
// from the zero hidden state, accumulating in dst (len HiddenSize) and
// returning dst. dst is zeroed first; all intermediates live in the
// scratch, so steady-state calls allocate nothing.
func (g *GRUCell) RunSequenceInferInto(dst Vec, xs []Vec, s *Scratch) Vec {
	for i := range dst {
		dst[i] = 0
	}
	for _, x := range xs {
		g.StepInferInto(dst, dst, x, s)
	}
	return dst
}

// SequenceBackward backpropagates dL/dhFinal through a RunSequence call,
// applying SGD updates. Gradients with respect to the inputs are discarded
// (detection features are not trained through in OTIF's tracker).
func (g *GRUCell) SequenceBackward(steps []*gruStep, dHFinal Vec, lr, clip float64) {
	dH := dHFinal
	for i := len(steps) - 1; i >= 0; i-- {
		dH, _ = g.StepBackward(steps[i], dH, lr, clip)
	}
}
