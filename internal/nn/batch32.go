package nn

import "fmt"

// This file implements the batched float32 inference tier. The matmul inner
// loop is register-blocked: each pass computes 4 output units, so one
// streaming read of the input row feeds 4 accumulators held in registers
// instead of being re-read for every output unit. Relative to the
// row-at-a-time loop (internal/nn/batch.go) this roughly halves the memory
// traffic per output block — 4 weight rows + 1 input read instead of 4
// weight rows + 4 input reads — on top of float32 already halving the bytes
// per element.
//
// Bit-identity within the float32 backend: every output unit still
// accumulates its dot product over inputs in ascending index order, in its
// own accumulator, so blocked batched outputs are bit-for-bit equal to the
// scalar Dense32.ApplyInto outputs (pinned by nn32_test.go). Identity to
// the float64 kernels is NOT promised — that difference is what the ULP
// differential tests bound.

// BatchScratch32 holds reusable buffers for the batched float32 inference
// kernels, mirroring BatchScratch. A scratch is owned by exactly one
// goroutine; every kernel call overwrites its buffers. The zero value is
// ready to use.
type BatchScratch32 struct {
	hx, z, r, c Vec32 // flat row-major gate matrices ([r*h, x] reuses hx)
}

// ApplyBatchInto computes the layer output for rows input vectors stored
// row-major in x (len rows*In), writing the row-major result into dst
// (len rows*Out) and returning dst. Row b of the output is bit-identical to
// ApplyInto applied to row b of the input. It allocates nothing and reads
// only the weights, so concurrent calls on a shared layer are safe as long
// as each goroutine owns its dst. dst must not alias x. rows == 0 is a
// no-op.
func (d *Dense32) ApplyBatchInto(dst, x Vec32, rows int) Vec32 {
	if len(x) != rows*d.In {
		panic(fmt.Sprintf("nn: dense32 batch expected input %d x %d, got len %d", rows, d.In, len(x)))
	}
	if len(dst) != rows*d.Out {
		panic(fmt.Sprintf("nn: dense32 batch expected output buffer %d x %d, got len %d", rows, d.Out, len(dst)))
	}
	for b := 0; b < rows; b++ {
		xb := x[b*d.In : (b+1)*d.In]
		db := dst[b*d.Out : (b+1)*d.Out]
		// Register-blocked over output units: 4 accumulators per pass share
		// one streaming read of xb. Each accumulator still sums its row's
		// products in ascending j, preserving bit-identity with ApplyInto.
		i := 0
		for ; i+4 <= d.Out; i += 4 {
			r0 := d.W[(i+0)*d.In : (i+1)*d.In]
			r1 := d.W[(i+1)*d.In : (i+2)*d.In]
			r2 := d.W[(i+2)*d.In : (i+3)*d.In]
			r3 := d.W[(i+3)*d.In : (i+4)*d.In]
			var s0, s1, s2, s3 float32
			for j, xv := range xb {
				s0 += r0[j] * xv
				s1 += r1[j] * xv
				s2 += r2[j] * xv
				s3 += r3[j] * xv
			}
			db[i+0] = d.Act.apply32(s0 + d.B[i+0])
			db[i+1] = d.Act.apply32(s1 + d.B[i+1])
			db[i+2] = d.Act.apply32(s2 + d.B[i+2])
			db[i+3] = d.Act.apply32(s3 + d.B[i+3])
		}
		for ; i < d.Out; i++ {
			row := d.W[i*d.In : (i+1)*d.In]
			var s float32
			for j, w := range row {
				s += w * xb[j]
			}
			db[i] = d.Act.apply32(s + d.B[i])
		}
	}
	return dst
}

// StepBatchInferInto advances rows hidden states by one input each. h holds
// the hidden states row-major (len rows*HiddenSize), x the inputs row-major
// (len rows*InSize); the new states are written row-major into dst
// (len rows*HiddenSize), which is returned. dst may alias h (the common
// in-place update), but must not alias a scratch buffer. All intermediates
// live in the scratch, so steady-state calls allocate nothing. Row b of the
// result is bit-identical to StepInferInto applied to row b of (h, x).
func (g *GRUCell32) StepBatchInferInto(dst, h, x Vec32, rows int, s *BatchScratch32) Vec32 {
	n, in := g.HiddenSize, g.InSize
	if len(h) != rows*n {
		panic(fmt.Sprintf("nn: gru32 batch expected hidden %d x %d, got len %d", rows, n, len(h)))
	}
	if len(x) != rows*in {
		panic(fmt.Sprintf("nn: gru32 batch expected input %d x %d, got len %d", rows, in, len(x)))
	}
	if len(dst) != rows*n {
		panic(fmt.Sprintf("nn: gru32 batch expected output buffer %d x %d, got len %d", rows, n, len(dst)))
	}
	hx := growVec32(&s.hx, rows*(n+in))
	for b := 0; b < rows; b++ {
		copy(hx[b*(n+in):], h[b*n:(b+1)*n])
		copy(hx[b*(n+in)+n:], x[b*in:(b+1)*in])
	}
	z := g.Wz.ApplyBatchInto(growVec32(&s.z, rows*n), hx, rows)
	r := g.Wr.ApplyBatchInto(growVec32(&s.r, rows*n), hx, rows)
	// Reuse hx as the candidate input [r*h, x]: overwrite each row's h
	// columns with r*h; the x columns are already in place, so x is copied
	// once per row for the whole step.
	for b := 0; b < rows; b++ {
		hb := h[b*n : (b+1)*n]
		rb := r[b*n : (b+1)*n]
		rh := hx[b*(n+in) : b*(n+in)+n]
		for i := range rh {
			rh[i] = rb[i] * hb[i]
		}
	}
	c := g.Wc.ApplyBatchInto(growVec32(&s.c, rows*n), hx, rows)
	for i := 0; i < rows*n; i++ {
		dst[i] = (1-z[i])*h[i] + z[i]*c[i]
	}
	return dst
}
