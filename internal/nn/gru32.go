package nn

import "fmt"

// GRUCell32 is the float32 mirror of GRUCell, built by GRUCell.To32. It
// implements the same update rule:
//
//	z = sigmoid(Wz [h, x])
//	r = sigmoid(Wr [h, x])
//	c = tanh(Wc [r*h, x])
//	h' = (1-z)*h + z*c
//
// The candidate gate's input [r*h, x] is assembled by overwriting the h
// columns of the already-built [h, x] buffer with r*h, so the x segment is
// copied once per step instead of twice (the same layout the float64
// batched kernel uses). The values fed to each gate are unchanged, so the
// scalar and batched float32 tiers stay bit-identical.
type GRUCell32 struct {
	InSize, HiddenSize int
	Wz, Wr, Wc         *Dense32
}

// To32 returns an inference-only float32 copy of the cell.
func (g *GRUCell) To32() *GRUCell32 {
	return &GRUCell32{
		InSize:     g.InSize,
		HiddenSize: g.HiddenSize,
		Wz:         g.Wz.To32(),
		Wr:         g.Wr.To32(),
		Wc:         g.Wc.To32(),
	}
}

// StepInferInto advances the hidden state by one input, writing the new
// state into dst (len HiddenSize) and returning dst. All intermediates live
// in the scratch, so steady-state calls allocate nothing. dst may alias h
// (the common in-place update), but must not alias a scratch buffer. Output
// is bit-identical to StepBatchInferInto's row for the same (h, x).
func (g *GRUCell32) StepInferInto(dst, h, x Vec32, s *Scratch32) Vec32 {
	n := g.HiddenSize
	if len(x) != g.InSize {
		panic(fmt.Sprintf("nn: gru32 expected input %d, got %d", g.InSize, len(x)))
	}
	if len(dst) != n || len(h) != n {
		panic(fmt.Sprintf("nn: gru32 expected hidden %d, got dst %d h %d", n, len(dst), len(h)))
	}
	hx := growVec32(&s.hx, n+len(x))
	copy(hx, h)
	copy(hx[n:], x)
	z := g.Wz.ApplyInto(growVec32(&s.z, n), hx)
	r := g.Wr.ApplyInto(growVec32(&s.r, n), hx)
	// Reuse hx as [r*h, x]: the x columns are already in place.
	for i := 0; i < n; i++ {
		hx[i] = r[i] * h[i]
	}
	c := g.Wc.ApplyInto(growVec32(&s.c, n), hx)
	for i := 0; i < n; i++ {
		dst[i] = (1-z[i])*h[i] + z[i]*c[i]
	}
	return dst
}
