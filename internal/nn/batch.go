package nn

import "fmt"

// This file implements the batched inference tier: the same kernels as
// ApplyInto / StepInferInto evaluated over a row-major batch matrix, so one
// call advances every active track of a frame instead of N small
// matrix-vector products. Batching amortizes call overhead and streams each
// weight row once per layer application instead of once per track.
//
// Bit-identical contract: for every (row, output unit) pair the batched
// kernels accumulate the dot product over inputs in the same index order as
// the scalar kernels, apply the same activation, and combine gates with the
// same expressions — so batched and scalar outputs are bit-for-bit equal.
// The differential tests in batch_test.go pin this.

// BatchScratch holds reusable buffers for the batched inference kernels.
// A scratch is owned by exactly one goroutine; every kernel call overwrites
// its buffers. The zero value is ready to use — buffers grow monotonically
// on first use and are reused afterwards, so steady-state calls allocate
// nothing.
type BatchScratch struct {
	hx, z, r, c Vec // flat row-major gate matrices ([r*h, x] reuses hx)
}

// ApplyBatchInto computes the layer output for rows input vectors stored
// row-major in x (len rows*In), writing the row-major result into dst
// (len rows*Out) and returning dst. Row b of the output is bit-identical
// to ApplyInto applied to row b of the input: each output unit accumulates
// its dot product over inputs in ascending index order. It allocates
// nothing and reads only the weights, so concurrent calls on a shared
// layer are safe as long as each goroutine owns its dst. dst must not
// alias x. rows == 0 is a no-op.
func (d *Dense) ApplyBatchInto(dst, x Vec, rows int) Vec {
	if len(x) != rows*d.In {
		panic(fmt.Sprintf("nn: dense batch expected input %d x %d, got len %d", rows, d.In, len(x)))
	}
	if len(dst) != rows*d.Out {
		panic(fmt.Sprintf("nn: dense batch expected output buffer %d x %d, got len %d", rows, d.Out, len(dst)))
	}
	// Row-outer order: output rows are written sequentially and each input
	// row is sliced once. The layers here are small enough that the whole
	// weight matrix sits in L1 across iterations, so streaming weights
	// row-by-row per batch row costs nothing, and the per-dot accumulation
	// order (ascending j) — which is what the bit-identity contract pins —
	// is unchanged.
	for b := 0; b < rows; b++ {
		xb := x[b*d.In : (b+1)*d.In]
		db := dst[b*d.Out : (b+1)*d.Out]
		for i := 0; i < d.Out; i++ {
			row := d.W[i*d.In : (i+1)*d.In]
			var s float64
			for j, w := range row {
				s += w * xb[j]
			}
			db[i] = d.Act.apply(s + d.B[i])
		}
	}
	return dst
}

// StepBatchInferInto advances rows hidden states by one input each. h holds
// the hidden states row-major (len rows*HiddenSize), x the inputs row-major
// (len rows*InSize); the new states are written row-major into dst
// (len rows*HiddenSize), which is returned. dst may alias h (the common
// in-place update), but must not alias a scratch buffer. All intermediates
// live in the scratch, so steady-state calls allocate nothing. Row b of the
// result is bit-identical to StepInferInto applied to row b of (h, x).
func (g *GRUCell) StepBatchInferInto(dst, h, x Vec, rows int, s *BatchScratch) Vec {
	n, in := g.HiddenSize, g.InSize
	if len(h) != rows*n {
		panic(fmt.Sprintf("nn: gru batch expected hidden %d x %d, got len %d", rows, n, len(h)))
	}
	if len(x) != rows*in {
		panic(fmt.Sprintf("nn: gru batch expected input %d x %d, got len %d", rows, in, len(x)))
	}
	if len(dst) != rows*n {
		panic(fmt.Sprintf("nn: gru batch expected output buffer %d x %d, got len %d", rows, n, len(dst)))
	}
	hx := growVec(&s.hx, rows*(n+in))
	for b := 0; b < rows; b++ {
		copy(hx[b*(n+in):], h[b*n:(b+1)*n])
		copy(hx[b*(n+in)+n:], x[b*in:(b+1)*in])
	}
	z := g.Wz.ApplyBatchInto(growVec(&s.z, rows*n), hx, rows)
	r := g.Wr.ApplyBatchInto(growVec(&s.r, rows*n), hx, rows)
	// Reuse hx as the candidate input [r*h, x]: overwrite each row's h
	// columns with r*h in place; the x columns are already there, so the x
	// segment is copied once per row for the whole step instead of twice.
	// The matrix fed to Wc holds exactly the values the scalar kernel's rhx
	// buffer held, so bit-identity with StepInferInto is preserved.
	for b := 0; b < rows; b++ {
		hb := h[b*n : (b+1)*n]
		rb := r[b*n : (b+1)*n]
		rh := hx[b*(n+in) : b*(n+in)+n]
		for i := range rh {
			rh[i] = rb[i] * hb[i]
		}
	}
	c := g.Wc.ApplyBatchInto(growVec(&s.c, rows*n), hx, rows)
	for i := 0; i < rows*n; i++ {
		dst[i] = (1-z[i])*h[i] + z[i]*c[i]
	}
	return dst
}
