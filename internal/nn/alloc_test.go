package nn

import (
	"math/rand"
	"testing"
)

// The zero-allocation kernels are the per-frame hot path; these tests pin
// both halves of their contract: steady-state calls allocate nothing, and
// their outputs are bit-identical to the allocating reference kernels.

func TestDenseApplyIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDense(32, 16, ReLUAct, rng)
	x := randVec(rng, 32)
	dst := NewVec(16)
	if n := testing.AllocsPerRun(100, func() { d.ApplyInto(dst, x) }); n != 0 {
		t.Errorf("Dense.ApplyInto allocates %v per op, want 0", n)
	}
}

func TestGRUStepInferIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := NewGRUCell(7, 16, rng)
	x := randVec(rng, 7)
	h := NewVec(16)
	var s Scratch
	g.StepInferInto(h, h, x, &s) // warm the scratch buffers
	if n := testing.AllocsPerRun(100, func() { g.StepInferInto(h, h, x, &s) }); n != 0 {
		t.Errorf("GRUCell.StepInferInto allocates %v per op, want 0", n)
	}
}

func TestLogRegPredictZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewLogReg(4, rng)
	x := randVec(rng, 4)
	if n := testing.AllocsPerRun(100, func() { l.Predict(x) }); n != 0 {
		t.Errorf("LogReg.Predict allocates %v per op, want 0", n)
	}
}

func TestMLPApplyWithZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewMLP([]int{28, 24, 1}, ReLUAct, SigmoidAct, rng)
	x := randVec(rng, 28)
	var s Scratch
	m.ApplyWith(&s, x) // warm the scratch buffers
	if n := testing.AllocsPerRun(100, func() { m.ApplyWith(&s, x) }); n != 0 {
		t.Errorf("MLP.ApplyWith allocates %v per op, want 0", n)
	}
}

func TestRunSequenceInferIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := NewGRUCell(7, 16, rng)
	xs := []Vec{randVec(rng, 7), randVec(rng, 7), randVec(rng, 7)}
	dst := NewVec(16)
	var s Scratch
	g.RunSequenceInferInto(dst, xs, &s) // warm the scratch buffers
	if n := testing.AllocsPerRun(100, func() { g.RunSequenceInferInto(dst, xs, &s) }); n != 0 {
		t.Errorf("GRUCell.RunSequenceInferInto allocates %v per op, want 0", n)
	}
}

// TestScratchKernelsBitIdentical proves the scratch/into kernels compute
// exactly what the allocating kernels do (the determinism contract: the
// hot path may not change a single bit of any result).
func TestScratchKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 20; trial++ {
		d := NewDense(9, 5, TanhAct, rng)
		x := randVec(rng, 9)
		want := d.Apply(x)
		got := d.ApplyInto(NewVec(5), x)
		requireEqualVecs(t, "Dense.ApplyInto", got, want)

		g := NewGRUCell(6, 8, rng)
		h := randVec(rng, 8)
		xg := randVec(rng, 6)
		wantH := g.StepInfer(h, xg)
		var s Scratch
		gotH := g.StepInferInto(NewVec(8), h, xg, &s)
		requireEqualVecs(t, "GRUCell.StepInferInto", gotH, wantH)

		// In-place: dst aliasing h must produce the same state.
		hc := h.Clone()
		g.StepInferInto(hc, hc, xg, &s)
		requireEqualVecs(t, "GRUCell.StepInferInto in-place", hc, wantH)

		xs := []Vec{randVec(rng, 6), randVec(rng, 6), randVec(rng, 6), randVec(rng, 6)}
		wantSeq := g.RunSequenceInfer(xs)
		gotSeq := g.RunSequenceInferInto(NewVec(8), xs, &s)
		requireEqualVecs(t, "GRUCell.RunSequenceInferInto", gotSeq, wantSeq)

		m := NewMLP([]int{7, 11, 3}, ReLUAct, SigmoidAct, rng)
		xm := randVec(rng, 7)
		wantM := m.Apply(xm)
		gotM := m.ApplyWith(&s, xm)
		requireEqualVecs(t, "MLP.ApplyWith", gotM, wantM)
	}
}

// TestForwardMatchesApply guards the Forward one-clone fix: Forward must
// still return exactly Apply's output and leave the caller's input intact.
func TestForwardMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := NewDense(5, 4, SigmoidAct, rng)
	x := randVec(rng, 5)
	xOrig := x.Clone()
	want := d.Apply(x)
	got := d.Forward(x)
	requireEqualVecs(t, "Dense.Forward", got, want)
	requireEqualVecs(t, "Forward input", x, xOrig)
}

func randVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func requireEqualVecs(t *testing.T, what string, got, want Vec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d] = %v, want %v (must be bit-identical)", what, i, got[i], want[i])
		}
	}
}

func BenchmarkDenseApply(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(32, 32, ReLUAct, rng)
	x := randVec(rng, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply(x)
	}
}

func BenchmarkDenseApplyInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(32, 32, ReLUAct, rng)
	x := randVec(rng, 32)
	dst := NewVec(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.ApplyInto(dst, x)
	}
}

func BenchmarkGRUStepInfer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRUCell(7, 16, rng)
	x := randVec(rng, 7)
	h := NewVec(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StepInfer(h, x)
	}
}

func BenchmarkGRUStepInferInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRUCell(7, 16, rng)
	x := randVec(rng, 7)
	h := NewVec(16)
	var s Scratch
	g.StepInferInto(h, h, x, &s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.StepInferInto(h, h, x, &s)
	}
}

func BenchmarkMLPApplyWith(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{28, 24, 1}, ReLUAct, SigmoidAct, rng)
	x := randVec(rng, 28)
	var s Scratch
	m.ApplyWith(&s, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyWith(&s, x)
	}
}
