package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Tolerance contract of the float32 backend (DESIGN.md "Precision-tiered
// compute backend"): per-kernel outputs must stay within maxULP32 float32
// ULPs of the float64 reference rounded to float32, or within absTol32
// absolutely (the absolute escape covers catastrophic cancellation near
// zero, where ULP distance is meaningless). The bounds are sized for the
// small layers OTIF runs (<= 48 inputs): worst-case float32 accumulation
// error over n terms is ~n*eps*sum|terms|, far inside these limits.
const (
	maxULP32 = 1024
	absTol32 = 1e-4
)

// ulp32 returns the distance in float32 representation steps between a and
// b, using the monotone integer mapping of IEEE-754 floats.
func ulp32(a, b float32) int64 {
	ia := int64(int32(math.Float32bits(a)))
	if ia < 0 {
		ia = math.MinInt32 - ia
	}
	ib := int64(int32(math.Float32bits(b)))
	if ib < 0 {
		ib = math.MinInt32 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// within32 reports whether got satisfies the tolerance contract against the
// float64 reference want.
func within32(got float32, want float64) bool {
	w := float32(want)
	if ulp32(got, w) <= maxULP32 {
		return true
	}
	d := float64(got) - want
	return math.Abs(d) <= absTol32
}

func requireWithin32(t *testing.T, what string, got Vec32, want Vec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range want {
		if !within32(got[i], want[i]) {
			t.Fatalf("%s[%d]: float32 %v vs float64 %v (%d ULPs, |diff| %g) exceeds tolerance",
				what, i, got[i], want[i], ulp32(got[i], float32(want[i])), math.Abs(float64(got[i])-want[i]))
		}
	}
}

func requireEqualVecs32(t *testing.T, what string, got, want Vec32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != %v (must be bit-identical)", what, i, got[i], want[i])
		}
	}
}

func randVec32(rng *rand.Rand, n int) Vec32 {
	v := NewVec32(n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// to64 widens a float32 vector so the float64 reference kernels can run on
// exactly the values the float32 kernels see.
func to64(v Vec32) Vec {
	out := NewVec(len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// TestTo32Conversion pins the conversion point: To32 rounds every weight
// elementwise and copies structure, leaving the float64 model untouched.
func TestTo32Conversion(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	d := NewDense(9, 5, TanhAct, rng)
	d32 := d.To32()
	if d32.In != d.In || d32.Out != d.Out || d32.Act != d.Act {
		t.Fatalf("To32 changed shape: %+v vs %+v", d32, d)
	}
	for i := range d.W {
		if d32.W[i] != float32(d.W[i]) {
			t.Fatalf("W[%d]: %v != float32(%v)", i, d32.W[i], d.W[i])
		}
	}
	for i := range d.B {
		if d32.B[i] != float32(d.B[i]) {
			t.Fatalf("B[%d]: %v != float32(%v)", i, d32.B[i], d.B[i])
		}
	}
	g := NewGRUCell(7, 16, rng)
	g32 := g.To32()
	if g32.InSize != g.InSize || g32.HiddenSize != g.HiddenSize {
		t.Fatalf("GRU To32 changed shape")
	}
	l := NewLogReg(4, rng)
	l.B = 0.37
	l32 := l.To32()
	if l32.B != float32(l.B) {
		t.Fatalf("LogReg To32 bias: %v != %v", l32.B, float32(l.B))
	}
}

// TestDense32ULPBound runs the float32 dense kernel against the float64
// reference on identical inputs across random shapes and activations,
// requiring every output inside the tolerance contract.
func TestDense32ULPBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	acts := []Activation{Linear, SigmoidAct, TanhAct, ReLUAct}
	for trial := 0; trial < 50; trial++ {
		in := 1 + rng.Intn(48)
		out := 1 + rng.Intn(32)
		d := NewDense(in, out, acts[trial%len(acts)], rng)
		d32 := d.To32()
		x32 := randVec32(rng, in)
		got := d32.ApplyInto(NewVec32(out), x32)
		want := d.ApplyInto(NewVec(out), to64(x32))
		requireWithin32(t, "dense32", got, want)
	}
}

// TestGRU32ULPBound folds both cells over the same input sequence and
// checks the hidden state stays inside the tolerance contract at every
// step (compounded rounding included).
func TestGRU32ULPBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGRUCell(7, 16, rng)
	g32 := g.To32()
	var s Scratch
	var s32 Scratch32
	h := NewVec(16)
	h32 := NewVec32(16)
	for step := 0; step < 40; step++ {
		x32 := randVec32(rng, 7)
		g.StepInferInto(h, h, to64(x32), &s)
		g32.StepInferInto(h32, h32, x32, &s32)
		requireWithin32(t, "gru32 hidden", h32, h)
	}
}

// TestMLP32ULPBound checks the two-layer matching network shape.
func TestMLP32ULPBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := NewMLP([]int{28, 24, 1}, ReLUAct, SigmoidAct, rng)
	m32 := m.To32()
	var s Scratch
	var s32 Scratch32
	for trial := 0; trial < 50; trial++ {
		x32 := randVec32(rng, 28)
		got := m32.ApplyWith(&s32, x32)
		want := m.ApplyWith(&s, to64(x32))
		requireWithin32(t, "mlp32", got, want)
	}
}

// TestLogReg32ULPBound checks the proxy classifier kernel.
func TestLogReg32ULPBound(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	l := NewLogReg(4, rng)
	l.B = -0.2
	l32 := l.To32()
	for trial := 0; trial < 50; trial++ {
		x32 := randVec32(rng, 4)
		got := l32.Predict(x32)
		want := l.Predict(to64(x32))
		if !within32(got, want) {
			t.Fatalf("logreg32: %v vs %v exceeds tolerance", got, want)
		}
	}
}

// TestDense32BatchBitIdentical pins that the register-blocked batched
// kernel is bit-identical to the scalar float32 kernel across shapes —
// including output counts that are not multiples of the 4-wide block, and
// 0/1-row batches.
func TestDense32BatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	acts := []Activation{Linear, SigmoidAct, TanhAct, ReLUAct}
	for trial := 0; trial < 60; trial++ {
		in := 1 + rng.Intn(33)
		out := 1 + rng.Intn(21) // exercises every Out%4 remainder
		rows := rng.Intn(18)    // includes rows == 0 and == 1
		d32 := NewDense(in, out, acts[trial%len(acts)], rng).To32()
		x := randVec32(rng, rows*in)
		got := d32.ApplyBatchInto(NewVec32(rows*out), x, rows)
		want := NewVec32(rows * out)
		for b := 0; b < rows; b++ {
			d32.ApplyInto(want[b*out:(b+1)*out], x[b*in:(b+1)*in])
		}
		requireEqualVecs32(t, "dense32 batch", got, want)
	}
}

// TestGRU32BatchBitIdentical pins scalar/batched bit-identity for the
// float32 GRU step, including the in-place dst == h case.
func TestGRU32BatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	g32 := NewGRUCell(7, 16, rng).To32()
	var bs BatchScratch32
	var ss Scratch32
	for trial := 0; trial < 30; trial++ {
		rows := rng.Intn(12)
		h := randVec32(rng, rows*16)
		x := randVec32(rng, rows*7)
		want := NewVec32(rows * 16)
		for b := 0; b < rows; b++ {
			g32.StepInferInto(want[b*16:(b+1)*16], h[b*16:(b+1)*16], x[b*7:(b+1)*7], &ss)
		}
		got := g32.StepBatchInferInto(NewVec32(rows*16), h, x, rows, &bs)
		requireEqualVecs32(t, "gru32 batch", got, want)
		// In-place update must produce the same states.
		g32.StepBatchInferInto(h, h, x, rows, &bs)
		requireEqualVecs32(t, "gru32 batch in-place", h, want)
	}
}

// TestFloat64BatchedXReuseBitIdentical guards the satellite change to the
// float64 batched kernel (assembling [r*h, x] in the hx buffer): batched
// output must remain bit-identical to the scalar reference, which is the
// PR 6 contract.
func TestFloat64BatchedXReuseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := NewGRUCell(7, 16, rng)
	var bs BatchScratch
	var ss Scratch
	for trial := 0; trial < 30; trial++ {
		rows := rng.Intn(12)
		h := randVec(rng, rows*16)
		x := randVec(rng, rows*7)
		want := NewVec(rows * 16)
		for b := 0; b < rows; b++ {
			g.StepInferInto(want[b*16:(b+1)*16], h[b*16:(b+1)*16], x[b*7:(b+1)*7], &ss)
		}
		got := g.StepBatchInferInto(NewVec(rows*16), h, x, rows, &bs)
		requireEqualVecs(t, "gru batch x-reuse", got, want)
	}
}

// Zero-allocation gates for the float32 kernels: the CI alloc-regression
// step runs every test matching 'Alloc', so these extend the gate to the
// 32-bit suite.

func TestDense32ApplyIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	d32 := NewDense(32, 32, ReLUAct, rng).To32()
	x := randVec32(rng, 32)
	dst := NewVec32(32)
	if n := testing.AllocsPerRun(100, func() { d32.ApplyInto(dst, x) }); n != 0 {
		t.Errorf("Dense32.ApplyInto allocates %v per op, want 0", n)
	}
}

func TestDense32ApplyBatchIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d32 := NewDense(32, 32, ReLUAct, rng).To32()
	x := randVec32(rng, 16*32)
	dst := NewVec32(16 * 32)
	if n := testing.AllocsPerRun(100, func() { d32.ApplyBatchInto(dst, x, 16) }); n != 0 {
		t.Errorf("Dense32.ApplyBatchInto allocates %v per op, want 0", n)
	}
}

func TestGRU32StepInferIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g32 := NewGRUCell(7, 16, rng).To32()
	var s Scratch32
	h := NewVec32(16)
	x := randVec32(rng, 7)
	g32.StepInferInto(h, h, x, &s) // warm the scratch
	if n := testing.AllocsPerRun(100, func() { g32.StepInferInto(h, h, x, &s) }); n != 0 {
		t.Errorf("GRUCell32.StepInferInto allocates %v per op, want 0", n)
	}
}

func TestGRU32StepBatchInferIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g32 := NewGRUCell(7, 16, rng).To32()
	var s BatchScratch32
	h := randVec32(rng, 16*16)
	x := randVec32(rng, 16*7)
	g32.StepBatchInferInto(h, h, x, 16, &s) // warm the scratch
	if n := testing.AllocsPerRun(100, func() { g32.StepBatchInferInto(h, h, x, 16, &s) }); n != 0 {
		t.Errorf("GRUCell32.StepBatchInferInto allocates %v per op, want 0", n)
	}
}

func TestMLP32ApplyWithAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	m32 := NewMLP([]int{28, 24, 1}, ReLUAct, SigmoidAct, rng).To32()
	var s Scratch32
	x := randVec32(rng, 28)
	m32.ApplyWith(&s, x) // warm the scratch
	if n := testing.AllocsPerRun(100, func() { m32.ApplyWith(&s, x) }); n != 0 {
		t.Errorf("MLP32.ApplyWith allocates %v per op, want 0", n)
	}
}

func TestLogReg32PredictAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	l32 := NewLogReg(4, rng).To32()
	x := randVec32(rng, 4)
	if n := testing.AllocsPerRun(100, func() { l32.Predict(x) }); n != 0 {
		t.Errorf("LogReg32.Predict allocates %v per op, want 0", n)
	}
}

// TestParsePrecision covers the flag-level names and the error path.
func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
	}{
		{"float64", Float64}, {"64", Float64}, {"f64", Float64}, {"", Float64},
		{"float32", Float32}, {"32", Float32}, {"f32", Float32},
	} {
		got, err := ParsePrecision(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePrecision("float16"); err == nil {
		t.Error("ParsePrecision(float16) succeeded, want error")
	}
	if Float64.Bits() != 64 || Float32.Bits() != 32 {
		t.Error("Precision.Bits mismatch")
	}
	if Float64.String() != "float64" || Float32.String() != "float32" {
		t.Error("Precision.String mismatch")
	}
}

// TestSetPrecisionRoundTrip pins the atomic selector and its default.
func TestSetPrecisionRoundTrip(t *testing.T) {
	defer SetPrecision(Float64)
	if ActivePrecision() != Float64 {
		t.Fatalf("default precision = %v, want float64", ActivePrecision())
	}
	SetPrecision(Float32)
	if ActivePrecision() != Float32 {
		t.Fatalf("after SetPrecision(Float32): %v", ActivePrecision())
	}
	SetPrecision(Float64)
	if ActivePrecision() != Float64 {
		t.Fatalf("after SetPrecision(Float64): %v", ActivePrecision())
	}
}

func BenchmarkDense32ApplyInto(b *testing.B) {
	rng := rand.New(rand.NewSource(60))
	d32 := NewDense(32, 32, ReLUAct, rng).To32()
	x := randVec32(rng, 32)
	dst := NewVec32(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d32.ApplyInto(dst, x)
	}
}

func BenchmarkDense32ApplyBatchInto16(b *testing.B) {
	rng := rand.New(rand.NewSource(61))
	d32 := NewDense(32, 32, ReLUAct, rng).To32()
	x := randVec32(rng, 16*32)
	dst := NewVec32(16 * 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d32.ApplyBatchInto(dst, x, 16)
	}
}

func BenchmarkGRU32StepBatchInferInto16(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	g32 := NewGRUCell(7, 16, rng).To32()
	var s BatchScratch32
	h := randVec32(rng, 16*16)
	x := randVec32(rng, 16*7)
	g32.StepBatchInferInto(h, h, x, 16, &s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g32.StepBatchInferInto(h, h, x, 16, &s)
	}
}
