package nn

import (
	"math/rand"
	"testing"
)

func TestLogRegLearnsLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewLogReg(2, rng)
	var xs []Vec
	var ts []float64
	for i := 0; i < 400; i++ {
		x := Vec{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		label := 0.0
		if x[0]+x[1] > 0 {
			label = 1
		}
		xs = append(xs, x)
		ts = append(ts, label)
	}
	l.TrainEpochs(xs, ts, 30, 0.5, 0, rng)

	correct := 0
	for i, x := range xs {
		if (l.Predict(x) > 0.5) == (ts[i] > 0.5) {
			correct++
		}
	}
	if correct < 380 {
		t.Errorf("accuracy %d/400, want >= 380", correct)
	}
}

func TestLogRegTrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLogReg(1, rng)
	x := Vec{1}
	before, _ := BCELoss(l.Predict(x), 1)
	for i := 0; i < 50; i++ {
		l.Train(x, 1, 0.5, 0)
	}
	after, _ := BCELoss(l.Predict(x), 1)
	if after >= before {
		t.Errorf("loss did not decrease: %v -> %v", before, after)
	}
}

func TestLogRegRegularizationShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLogReg(1, rng)
	l.W[0] = 10
	// Train on a balanced, uninformative dataset with strong L2.
	xs := []Vec{{1}, {1}}
	ts := []float64{0, 1}
	l.TrainEpochs(xs, ts, 200, 0.1, 0.1, rng)
	if l.W[0] > 5 {
		t.Errorf("weight %v not shrunk by regularization", l.W[0])
	}
}

func TestLogRegEmptyAndMismatched(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLogReg(2, rng)
	if got := l.TrainEpochs(nil, nil, 5, 0.1, 0, rng); got != 0 {
		t.Errorf("empty training loss = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths should panic")
		}
	}()
	l.TrainEpochs([]Vec{{1, 2}}, []float64{1, 0}, 1, 0.1, 0, rng)
}
