// Package nn is a small pure-Go neural network library used by OTIF's
// learned components: the segmentation proxy model (logistic regression over
// cell features), the recurrent reduced-rate tracker (GRU-style cell plus a
// matching MLP), and the proxy models of the BlazeIt/TASTI/NoScope baselines.
//
// It deliberately supports only what those components need: dense layers,
// a gated recurrent cell, sigmoid/tanh/ReLU activations, binary cross
// entropy and squared-error losses, and plain SGD with gradient clipping.
// All math is float64 and all randomness flows through an explicit
// *rand.Rand so training is deterministic given a seed.
//
// Inference has two tiers. The allocating kernels (Apply, StepInfer,
// RunSequenceInfer) return fresh vectors and are convenient for training
// and one-off probes. The zero-allocation kernels (ApplyInto, ApplyWith,
// StepInferInto, RunSequenceInferInto) write into caller-owned buffers or
// a reusable Scratch and run without heap allocations in steady state —
// they are what the per-frame hot path uses. Both tiers perform the exact
// same float64 operations in the same order, so their outputs are
// bit-identical.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dot returns the inner product of v and w. It panics if lengths differ.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("nn: dot of length %d and %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled adds f*w to v in place.
func (v Vec) AddScaled(w Vec, f float64) {
	for i := range v {
		v[i] += f * w[i]
	}
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...Vec) Vec {
	var n int
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vec, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// Sigmoid is the logistic function.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Tanh is the hyperbolic tangent.
func Tanh(x float64) float64 { return math.Tanh(x) }

// ReLU is the rectified linear unit.
func ReLU(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Activation identifies the nonlinearity used by a Dense layer.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	SigmoidAct
	TanhAct
	ReLUAct
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case SigmoidAct:
		return Sigmoid(x)
	case TanhAct:
		return Tanh(x)
	case ReLUAct:
		return ReLU(x)
	default:
		return x
	}
}

// derivFromOutput returns the activation derivative expressed in terms of
// the activation output y (valid for all supported activations).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case SigmoidAct:
		return y * (1 - y)
	case TanhAct:
		return 1 - y*y
	case ReLUAct:
		if y > 0 {
			return 1
		}
		return 0
	default:
		return 1
	}
}

// Scratch holds reusable buffers for the zero-allocation inference
// kernels. A scratch is owned by exactly one goroutine; every kernel call
// overwrites its buffers, so values returned by scratch-based kernels
// (ApplyWith) are only valid until the next call with the same scratch.
// The zero value is ready to use — buffers grow on first use and are
// reused afterwards.
type Scratch struct {
	hx, rh, rhx, z, r, c Vec // GRU gate buffers
	a, b                 Vec // MLP ping-pong buffers
}

// growVec resizes *v to length n, reallocating only when capacity is
// insufficient. Contents are unspecified.
func growVec(v *Vec, n int) Vec {
	if cap(*v) < n {
		*v = make(Vec, n)
	}
	*v = (*v)[:n]
	return *v
}

// Dense is a fully connected layer with bias: y = act(W x + b). Weights
// are stored as one flat row-major vector — row i occupies
// W[i*In : (i+1)*In] — so the inference kernels stream memory linearly and
// allocate nothing. Row dot products accumulate in the same index order as
// a slice-of-rows layout would, so results are bit-identical to it.
type Dense struct {
	In, Out int
	W       Vec // flat row-major weights, len Out*In
	B       Vec
	Act     Activation

	// scratch for backward
	lastIn  Vec
	lastOut Vec
}

// NewDense creates a Dense layer with Xavier-style initialization drawn from
// rng.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, Act: act, B: NewVec(out), W: NewVec(in * out)}
	scale := math.Sqrt(2.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = rng.NormFloat64() * scale
	}
	return d
}

// Row returns row i of the weight matrix as a view into the flat layout.
func (d *Dense) Row(i int) Vec { return d.W[i*d.In : (i+1)*d.In] }

// Forward computes the layer output, retaining state for Backward. Not
// safe for concurrent use — inference paths that share a model across
// goroutines must call Apply instead.
func (d *Dense) Forward(x Vec) Vec {
	out := d.Apply(x)
	d.lastIn = x.Clone()
	d.lastOut = out
	return out
}

// Apply computes the layer output without retaining backward state. It
// reads only the weights, so concurrent Apply calls on a shared layer are
// safe (as long as no goroutine is training the layer).
func (d *Dense) Apply(x Vec) Vec {
	return d.ApplyInto(NewVec(d.Out), x)
}

// ApplyInto computes the layer output into dst (len Out) and returns dst.
// It allocates nothing and reads only the weights, so concurrent calls on
// a shared layer are safe as long as each goroutine owns its dst. dst must
// not alias x.
func (d *Dense) ApplyInto(dst, x Vec) Vec {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense expected input %d, got %d", d.In, len(x)))
	}
	if len(dst) != d.Out {
		panic(fmt.Sprintf("nn: dense expected output buffer %d, got %d", d.Out, len(dst)))
	}
	for i := 0; i < d.Out; i++ {
		row := d.W[i*d.In : (i+1)*d.In]
		var s float64
		for j, w := range row {
			s += w * x[j]
		}
		dst[i] = d.Act.apply(s + d.B[i])
	}
	return dst
}

// Backward takes dL/dy and applies an SGD update with learning rate lr,
// returning dL/dx. Gradients are clipped elementwise to [-clip, clip]
// (clip <= 0 disables clipping).
func (d *Dense) Backward(dOut Vec, lr, clip float64) Vec {
	dIn := NewVec(d.In)
	for i := 0; i < d.Out; i++ {
		g := dOut[i] * d.Act.derivFromOutput(d.lastOut[i])
		g = clipVal(g, clip)
		row := d.W[i*d.In : (i+1)*d.In]
		for j := 0; j < d.In; j++ {
			dIn[j] += g * row[j]
			row[j] -= lr * g * d.lastIn[j]
		}
		d.B[i] -= lr * g
	}
	return dIn
}

func clipVal(g, clip float64) float64 {
	if clip <= 0 {
		return g
	}
	if g > clip {
		return clip
	}
	if g < -clip {
		return -clip
	}
	return g
}

// MLP is a feed-forward stack of Dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer sizes; hidden layers use hidden
// activation, the final layer uses final.
func NewMLP(sizes []int, hidden, final Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hidden
		if i+2 == len(sizes) {
			act = final
		}
		m.Layers = append(m.Layers, NewDense(sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// Forward runs the network on x, retaining per-layer state for Backward.
// Not safe for concurrent use; inference paths use Apply.
func (m *MLP) Forward(x Vec) Vec {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Apply runs the network on x without retaining backward state, so
// concurrent Apply calls on a shared network are safe.
func (m *MLP) Apply(x Vec) Vec {
	for _, l := range m.Layers {
		x = l.Apply(x)
	}
	return x
}

// ApplyWith runs the network on x using the scratch's ping-pong buffers,
// allocating nothing in steady state. The returned vector is owned by the
// scratch and valid only until its next use. x must not alias the
// scratch's buffers (a vector previously returned by ApplyWith with the
// same scratch). Output is bit-identical to Apply's.
func (m *MLP) ApplyWith(s *Scratch, x Vec) Vec {
	cur := x
	for i, l := range m.Layers {
		var dst Vec
		if i%2 == 0 {
			dst = growVec(&s.a, l.Out)
		} else {
			dst = growVec(&s.b, l.Out)
		}
		l.ApplyInto(dst, cur)
		cur = dst
	}
	return cur
}

// Backward backpropagates dL/dy through the network with SGD updates.
func (m *MLP) Backward(dOut Vec, lr, clip float64) Vec {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dOut = m.Layers[i].Backward(dOut, lr, clip)
	}
	return dOut
}

// BCELoss returns the binary cross entropy between prediction p in (0,1)
// and target t in {0,1}, along with dL/dp.
func BCELoss(p, t float64) (loss, grad float64) {
	const eps = 1e-7
	p = math.Min(math.Max(p, eps), 1-eps)
	loss = -(t*math.Log(p) + (1-t)*math.Log(1-p))
	grad = (p - t) / (p * (1 - p))
	return loss, grad
}

// SquaredLoss returns 0.5*(p-t)^2 and its gradient with respect to p.
func SquaredLoss(p, t float64) (loss, grad float64) {
	d := p - t
	return 0.5 * d * d, d
}
