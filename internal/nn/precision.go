package nn

import (
	"fmt"
	"sync/atomic"

	"otif/internal/obs"
)

// Precision selects the floating-point compute backend used by the
// inference hot path. Float64 is the bit-identical reference backend (the
// zero value, and the default); Float32 runs the same kernels in single
// precision — faster and half the memory traffic, with results guaranteed
// only to the tolerance contract documented in DESIGN.md ("Precision-tiered
// compute backend").
//
// Training, tuning and persisted weights always stay float64: Float32 only
// changes how the extraction hot path evaluates the already-trained models
// (weights are converted once per model via the To32 methods).
type Precision uint32

// Supported compute backends.
const (
	// Float64 is the reference backend: bit-identical results across
	// worker counts, batch modes and releases.
	Float64 Precision = iota
	// Float32 is the reduced-precision backend: register-blocked float32
	// kernels with tolerance-gated accuracy.
	Float32
)

// String returns the flag-level name of the backend ("float64"/"float32").
func (p Precision) String() string {
	if p == Float32 {
		return "float32"
	}
	return "float64"
}

// Bits returns the width of the backend's floating-point type.
func (p Precision) Bits() int {
	if p == Float32 {
		return 32
	}
	return 64
}

// ParsePrecision parses a backend name as accepted by the -precision flag.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "f64", "64", "":
		return Float64, nil
	case "float32", "f32", "32":
		return Float32, nil
	}
	return Float64, fmt.Errorf(`nn: unknown precision %q (valid: "float64", "f64", "64", "float32", "f32", "32")`, s)
}

// activePrecision is the process-wide backend selection. Stored atomically
// so flipping it while clips execute is safe: consumers capture the value
// once per run (core.RunSet reads it at entry and threads it down), so a
// single run never observes a torn or mixed backend.
var activePrecision atomic.Uint32

// SetPrecision selects the process-wide compute backend. Runs already in
// flight are unaffected: the backend is captured once at run entry.
func SetPrecision(p Precision) { activePrecision.Store(uint32(p)) }

// ActivePrecision returns the currently selected compute backend.
func ActivePrecision() Precision { return Precision(activePrecision.Load()) }

// The active backend is observable as a gauge so dashboards can tell which
// precision a process is extracting with (64 or 32).
var _ = func() struct{} {
	obs.Default.GaugeFunc("nn.precision_bits", func() float64 {
		return float64(ActivePrecision().Bits())
	})
	return struct{}{}
}()
