package nn

import "math/rand"

// LogReg is a logistic regression classifier: p = sigmoid(w.x + b).
// The segmentation proxy model uses one LogReg per input resolution to
// score each 32x32 cell of the frame with the likelihood that it
// intersects an object detection.
type LogReg struct {
	W Vec
	B float64
}

// NewLogReg returns a logistic regression over n features with small
// random initial weights drawn from rng.
func NewLogReg(n int, rng *rand.Rand) *LogReg {
	w := NewVec(n)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.01
	}
	return &LogReg{W: w}
}

// Predict returns the positive-class probability for feature vector x.
func (l *LogReg) Predict(x Vec) float64 { return Sigmoid(l.W.Dot(x) + l.B) }

// Train performs one SGD step on example (x, t) with learning rate lr and
// L2 regularization strength reg, returning the BCE loss before the update.
func (l *LogReg) Train(x Vec, t, lr, reg float64) float64 {
	p := l.Predict(x)
	loss, _ := BCELoss(p, t)
	// For sigmoid + BCE the gradient wrt the pre-activation simplifies
	// to (p - t), which avoids the numerical blowup of chaining the two.
	g := p - t
	for i := range l.W {
		l.W[i] -= lr * (g*x[i] + reg*l.W[i])
	}
	l.B -= lr * g
	return loss
}

// TrainEpochs runs SGD over the dataset for the given number of epochs,
// shuffling example order each epoch with rng, and returns the mean loss
// of the final epoch.
func (l *LogReg) TrainEpochs(xs []Vec, ts []float64, epochs int, lr, reg float64, rng *rand.Rand) float64 {
	if len(xs) != len(ts) {
		panic("nn: mismatched inputs and targets")
	}
	if len(xs) == 0 {
		return 0
	}
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	var last float64
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, i := range order {
			total += l.Train(xs[i], ts[i], lr, reg)
		}
		last = total / float64(len(xs))
	}
	return last
}
