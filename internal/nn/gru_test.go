package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestGRUStepShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRUCell(3, 4, rng)
	h := NewVec(4)
	h2, step := g.Step(h, Vec{0.1, 0.2, 0.3})
	if len(h2) != 4 {
		t.Fatalf("hidden size = %d", len(h2))
	}
	if step == nil {
		t.Fatal("nil step record")
	}
	// Hidden state stays bounded: it is a convex mix of h and tanh output.
	for _, v := range h2 {
		if v < -1 || v > 1 {
			t.Errorf("hidden %v out of [-1,1]", v)
		}
	}
}

func TestGRURunSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGRUCell(2, 3, rng)
	xs := []Vec{{1, 0}, {0, 1}, {1, 1}}
	h, steps := g.RunSequence(xs)
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// Equivalent to manual folding.
	h2 := NewVec(3)
	for _, x := range xs {
		h2, _ = g.Step(h2, x)
	}
	for i := range h {
		if math.Abs(h[i]-h2[i]) > 1e-12 {
			t.Errorf("RunSequence mismatch at %d: %v vs %v", i, h[i], h2[i])
		}
	}
}

// TestGRULearnsLastInput trains the cell (plus a readout) to remember
// whether the final input was positive — a minimal sequence task proving
// gradients flow through StepBackward.
func TestGRULearnsLastInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGRUCell(1, 6, rng)
	readout := NewDense(6, 1, SigmoidAct, rng)

	sample := func() ([]Vec, float64) {
		n := rng.Intn(3) + 2
		xs := make([]Vec, n)
		for i := range xs {
			xs[i] = Vec{rng.Float64()*2 - 1}
		}
		label := 0.0
		if xs[n-1][0] > 0 {
			label = 1
		}
		return xs, label
	}

	for iter := 0; iter < 3000; iter++ {
		xs, label := sample()
		h, steps := g.RunSequence(xs)
		p := readout.Forward(h)
		_, grad := BCELoss(p[0], label)
		dH := readout.Backward(Vec{grad}, 0.1, 1)
		g.SequenceBackward(steps, dH, 0.1, 1)
	}

	correct := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		xs, label := sample()
		h, _ := g.RunSequence(xs)
		p := readout.Forward(h)[0]
		if (p > 0.5) == (label > 0.5) {
			correct++
		}
	}
	if correct < trials*8/10 {
		t.Errorf("GRU accuracy %d/%d, want >= 80%%", correct, trials)
	}
}

// TestGRUGradientDirection checks that a single training step reduces the
// loss on the same example (sanity of StepBackward wiring).
func TestGRUGradientDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGRUCell(2, 4, rng)
	readout := NewDense(4, 1, SigmoidAct, rng)
	xs := []Vec{{0.5, -0.5}, {1, 0.2}}
	label := 1.0

	lossOf := func() float64 {
		h, _ := g.RunSequence(xs)
		p := readout.Forward(h)
		l, _ := BCELoss(p[0], label)
		return l
	}

	before := lossOf()
	for i := 0; i < 5; i++ {
		h, steps := g.RunSequence(xs)
		p := readout.Forward(h)
		_, grad := BCELoss(p[0], label)
		dH := readout.Backward(Vec{grad}, 0.05, 1)
		g.SequenceBackward(steps, dH, 0.05, 1)
	}
	after := lossOf()
	if after >= before {
		t.Errorf("loss did not decrease: %v -> %v", before, after)
	}
}
