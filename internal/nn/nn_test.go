package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecDot(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched Dot should panic")
		}
	}()
	a.Dot(Vec{1})
}

func TestConcat(t *testing.T) {
	got := Concat(Vec{1}, Vec{2, 3}, nil, Vec{4})
	want := Vec{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Concat[%d] = %v", i, got[i])
		}
	}
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got <= 0.999 {
		t.Errorf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got >= 0.001 {
		t.Errorf("Sigmoid(-100) = %v", got)
	}
	// Numerically stable at extremes.
	if math.IsNaN(Sigmoid(-1e9)) || math.IsNaN(Sigmoid(1e9)) {
		t.Error("sigmoid overflow")
	}
}

func TestActivationDerivatives(t *testing.T) {
	// derivFromOutput matches a finite difference of the activation.
	for _, act := range []Activation{SigmoidAct, TanhAct, ReLUAct, Linear} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			const h = 1e-6
			num := (act.apply(x+h) - act.apply(x-h)) / (2 * h)
			ana := act.derivFromOutput(act.apply(x))
			if math.Abs(num-ana) > 1e-4 {
				t.Errorf("act %v at %v: numeric %v vs analytic %v", act, x, num, ana)
			}
		}
	}
}

// TestDenseGradient verifies the backward pass against numerical gradients.
func TestDenseGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(3, 2, TanhAct, rng)
	x := Vec{0.3, -0.7, 0.5}
	target := Vec{0.2, -0.1}

	loss := func() float64 {
		y := d.Forward(x)
		var l float64
		for i := range y {
			li, _ := SquaredLoss(y[i], target[i])
			l += li
		}
		return l
	}

	// Numerical gradient wrt one weight.
	const h = 1e-6
	orig := d.W[1]
	d.W[1] = orig + h
	lp := loss()
	d.W[1] = orig - h
	lm := loss()
	d.W[1] = orig
	numGrad := (lp - lm) / (2 * h)

	// Analytic: run forward, backward with lr so that update = lr*grad;
	// recover grad from the weight delta.
	y := d.Forward(x)
	dOut := NewVec(2)
	for i := range y {
		_, g := SquaredLoss(y[i], target[i])
		dOut[i] = g
	}
	const lr = 1e-3
	before := d.W[1]
	d.Backward(dOut, lr, 0)
	anaGrad := (before - d.W[1]) / lr

	if math.Abs(numGrad-anaGrad) > 1e-4*(1+math.Abs(numGrad)) {
		t.Errorf("gradient mismatch: numeric %v analytic %v", numGrad, anaGrad)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{2, 12, 1}, TanhAct, SigmoidAct, rng)
	inputs := []Vec{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 12000; epoch++ {
		i := rng.Intn(4)
		p := m.Forward(inputs[i])
		_, g := BCELoss(p[0], targets[i])
		m.Backward(Vec{g}, 0.8, 2)
	}
	for i, in := range inputs {
		p := m.Forward(in)[0]
		if (p > 0.5) != (targets[i] > 0.5) {
			t.Errorf("XOR(%v) = %v, want %v", in, p, targets[i])
		}
	}
}

func TestBCELoss(t *testing.T) {
	l, g := BCELoss(0.5, 1)
	if math.Abs(l-math.Log(2)) > 1e-9 {
		t.Errorf("BCE(0.5,1) = %v", l)
	}
	if g >= 0 {
		t.Error("gradient should push p up toward 1")
	}
	// Extreme inputs are clamped, not infinite.
	l, _ = BCELoss(0, 1)
	if math.IsInf(l, 0) || math.IsNaN(l) {
		t.Errorf("BCE(0,1) = %v", l)
	}
}

func TestMLPPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMLP([]int{3}, TanhAct, Linear, rand.New(rand.NewSource(1)))
}

func TestDenseForwardDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		d1 := NewDense(4, 3, ReLUAct, r1)
		d2 := NewDense(4, 3, ReLUAct, r2)
		x := Vec{0.1, -0.2, 0.4, 0.8}
		y1 := d1.Forward(x)
		y2 := d2.Forward(x)
		for i := range y1 {
			if y1[i] != y2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClipVal(t *testing.T) {
	if clipVal(5, 1) != 1 || clipVal(-5, 1) != -1 || clipVal(0.5, 1) != 0.5 {
		t.Error("clipVal misbehaves")
	}
	if clipVal(5, 0) != 5 {
		t.Error("clip disabled should pass through")
	}
}
