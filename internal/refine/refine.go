// Package refine implements OTIF's track endpoint refinement (§3.4). When
// video is tracked at a large sampling gap, the first and last detections
// of a track are offset from where the object actually entered and left the
// scene, which breaks spatial predicates such as turning-movement counts.
// Instead of decoding extra frames (Miris' approach, too expensive when
// extracting all tracks), OTIF clusters the training-set tracks S* with
// DBSCAN, indexes the cluster centers spatially, and extends each extracted
// track's start and end to the size-weighted median of the endpoints of its
// k = 10 nearest clusters.
package refine

import (
	"math"
	"sort"

	"otif/internal/geom"
)

// PathSamples is the number of evenly spaced points used to compare tracks
// (N = 20 in the paper).
const PathSamples = 20

// Cluster is a DBSCAN cluster of training tracks represented by its center
// path (the pointwise mean of the member tracks' resampled paths).
type Cluster struct {
	Center geom.Path // PathSamples points
	Size   int       // number of member tracks
}

// DBSCANOptions configures track clustering.
type DBSCANOptions struct {
	// Eps is the neighborhood radius under the mean point-distance metric
	// (nominal pixels).
	Eps float64
	// MinPts is the minimum neighborhood size for a core track.
	MinPts int
}

// DefaultDBSCANOptions returns clustering defaults suited to nominal
// coordinates on the simulated datasets.
func DefaultDBSCANOptions() DBSCANOptions { return DBSCANOptions{Eps: 60, MinPts: 2} }

// DBSCAN clusters the tracks (as paths) under the mean corresponding-point
// distance d(s1, s2) and returns one Cluster per dense group. Noise tracks
// (not density-reachable from any core track) are discarded: they are
// mostly clip-boundary-truncated fragments whose endpoints would poison
// the refinement medians.
func DBSCAN(paths []geom.Path, opts DBSCANOptions) []*Cluster {
	n := len(paths)
	if n == 0 {
		return nil
	}
	resampled := make([]geom.Path, n)
	for i, p := range paths {
		resampled[i] = p.Resample(PathSamples)
	}
	dist := func(i, j int) float64 {
		var total float64
		for k := 0; k < PathSamples; k++ {
			total += resampled[i][k].Dist(resampled[j][k])
		}
		return total / PathSamples
	}

	const (
		unvisited = 0
		noise     = -1
	)
	labels := make([]int, n) // 0 unvisited, -1 noise, >0 cluster id
	nextID := 1

	neighborsOf := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if j != i && dist(i, j) <= opts.Eps {
				out = append(out, j)
			}
		}
		return out
	}

	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		neigh := neighborsOf(i)
		if len(neigh)+1 < opts.MinPts {
			labels[i] = noise
			continue
		}
		id := nextID
		nextID++
		labels[i] = id
		queue := append([]int{}, neigh...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == noise {
				labels[j] = id // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = id
			jNeigh := neighborsOf(j)
			if len(jNeigh)+1 >= opts.MinPts {
				queue = append(queue, jNeigh...)
			}
		}
	}

	// Build clusters; noise points are dropped.
	byID := map[int][]int{}
	for i, l := range labels {
		if l != noise {
			byID[l] = append(byID[l], i)
		}
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	clusters := make([]*Cluster, 0, len(ids))
	for _, id := range ids {
		members := byID[id]
		center := make(geom.Path, PathSamples)
		for k := 0; k < PathSamples; k++ {
			var sx, sy float64
			for _, m := range members {
				sx += resampled[m][k].X
				sy += resampled[m][k].Y
			}
			center[k] = geom.Point{X: sx / float64(len(members)), Y: sy / float64(len(members))}
		}
		clusters = append(clusters, &Cluster{Center: center, Size: len(members)})
	}
	return clusters
}

// Index is a uniform-grid spatial index over cluster centers, used to find
// clusters passing near a track's first and last detections without
// computing distances to every cluster.
type Index struct {
	clusters []*Cluster
	cellSize float64
	cells    map[[2]int][]int // cell -> cluster indices whose center passes through
}

// NewIndex builds the spatial index with the given grid cell size (nominal
// pixels).
func NewIndex(clusters []*Cluster, cellSize float64) *Index {
	idx := &Index{clusters: clusters, cellSize: cellSize, cells: map[[2]int][]int{}}
	for ci, c := range clusters {
		seen := map[[2]int]bool{}
		for _, p := range c.Center {
			cell := [2]int{int(math.Floor(p.X / cellSize)), int(math.Floor(p.Y / cellSize))}
			if !seen[cell] {
				seen[cell] = true
				idx.cells[cell] = append(idx.cells[cell], ci)
			}
		}
	}
	return idx
}

// Near returns the indices of clusters whose center passes within roughly
// radius of p (via grid cells; a superset filter, not an exact test).
func (idx *Index) Near(p geom.Point, radius float64) []int {
	r := int(math.Ceil(radius / idx.cellSize))
	cx := int(math.Floor(p.X / idx.cellSize))
	cy := int(math.Floor(p.Y / idx.cellSize))
	seen := map[int]bool{}
	var out []int
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			for _, ci := range idx.cells[[2]int{cx + dx, cy + dy}] {
				if !seen[ci] {
					seen[ci] = true
					out = append(out, ci)
				}
			}
		}
	}
	return out
}

// Refiner refines track endpoints against an indexed cluster set.
type Refiner struct {
	Clusters []*Cluster
	Idx      *Index
	// K is the number of nearest clusters used (k = 10 in the paper).
	K int
	// SearchRadius bounds the index lookup around the track endpoints.
	SearchRadius float64
	// MaxDist is the largest mean path distance at which a cluster may
	// inform refinement.
	MaxDist float64
}

// NewRefiner clusters the training tracks and builds the index.
func NewRefiner(trainPaths []geom.Path, opts DBSCANOptions) *Refiner {
	clusters := DBSCAN(trainPaths, opts)
	return &Refiner{
		Clusters:     clusters,
		Idx:          NewIndex(clusters, 64),
		K:            10,
		SearchRadius: 160,
		MaxDist:      2.5 * opts.Eps,
	}
}

// RefineEndpoints returns the estimated true start and end points for a
// track captured at a reduced rate: the size-weighted median of the start
// and end points of the K nearest clusters (by mean path distance) among
// clusters passing near the track's endpoints. ok is false when no cluster
// is close enough to inform refinement.
func (r *Refiner) RefineEndpoints(track geom.Path) (start, end geom.Point, ok bool) {
	if len(r.Clusters) == 0 || len(track) == 0 {
		return geom.Point{}, geom.Point{}, false
	}
	first := track[0]
	last := track[len(track)-1]
	cand := map[int]bool{}
	for _, ci := range r.Idx.Near(first, r.SearchRadius) {
		cand[ci] = true
	}
	for _, ci := range r.Idx.Near(last, r.SearchRadius) {
		cand[ci] = true
	}
	if len(cand) == 0 {
		return geom.Point{}, geom.Point{}, false
	}
	type scored struct {
		ci   int
		dist float64
	}
	var scoredList []scored
	for ci := range cand {
		d := geom.PathDist(track, r.Clusters[ci].Center, PathSamples)
		scoredList = append(scoredList, scored{ci, d})
	}
	// Ties break on cluster index so the K-nearest cut does not depend on
	// map iteration order.
	sort.Slice(scoredList, func(i, j int) bool {
		if scoredList[i].dist != scoredList[j].dist {
			return scoredList[i].dist < scoredList[j].dist
		}
		return scoredList[i].ci < scoredList[j].ci
	})
	// Keep only clusters genuinely similar to the track: a cluster whose
	// path runs in the opposite direction (or through a different part of
	// the scene) has a large mean corresponding-point distance and must
	// not contribute to the endpoint median.
	cut := len(scoredList)
	for i, s := range scoredList {
		if s.dist > r.MaxDist {
			cut = i
			break
		}
	}
	scoredList = scoredList[:cut]
	if len(scoredList) == 0 {
		return geom.Point{}, geom.Point{}, false
	}
	if len(scoredList) > r.K {
		scoredList = scoredList[:r.K]
	}

	var starts, ends []geom.Point
	var weights []float64
	for _, s := range scoredList {
		c := r.Clusters[s.ci]
		starts = append(starts, c.Center[0])
		ends = append(ends, c.Center[len(c.Center)-1])
		weights = append(weights, float64(c.Size))
	}
	start = geom.Point{
		X: weightedMedian(xs(starts), weights),
		Y: weightedMedian(ys(starts), weights),
	}
	end = geom.Point{
		X: weightedMedian(xs(ends), weights),
		Y: weightedMedian(ys(ends), weights),
	}
	return start, end, true
}

func xs(ps []geom.Point) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.X
	}
	return out
}

func ys(ps []geom.Point) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = p.Y
	}
	return out
}

// weightedMedian returns the weighted median of vals.
func weightedMedian(vals, weights []float64) float64 {
	type pair struct{ v, w float64 }
	ps := make([]pair, len(vals))
	var total float64
	for i := range vals {
		ps[i] = pair{vals[i], weights[i]}
		total += weights[i]
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	var cum float64
	for _, p := range ps {
		cum += p.w
		if cum >= total/2 {
			return p.v
		}
	}
	if len(ps) == 0 {
		return 0
	}
	return ps[len(ps)-1].v
}
