package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"otif/internal/geom"
)

// lanePaths generates n noisy copies of a straight path from a to b.
func lanePaths(rng *rand.Rand, n int, a, b geom.Point) []geom.Path {
	var out []geom.Path
	for i := 0; i < n; i++ {
		var p geom.Path
		for k := 0; k <= 10; k++ {
			t := float64(k) / 10
			pt := a.Lerp(b, t)
			pt.X += rng.NormFloat64() * 3
			pt.Y += rng.NormFloat64() * 3
			p = append(p, pt)
		}
		out = append(out, p)
	}
	return out
}

func TestDBSCANGroupsSimilarTracks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var paths []geom.Path
	paths = append(paths, lanePaths(rng, 5, geom.Point{X: 0, Y: 100}, geom.Point{X: 600, Y: 100})...)
	paths = append(paths, lanePaths(rng, 5, geom.Point{X: 600, Y: 300}, geom.Point{X: 0, Y: 300})...)
	clusters := DBSCAN(paths, DBSCANOptions{Eps: 40, MinPts: 2})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	for _, c := range clusters {
		if c.Size != 5 {
			t.Errorf("cluster size = %d, want 5", c.Size)
		}
		if len(c.Center) != PathSamples {
			t.Errorf("center has %d points", len(c.Center))
		}
	}
}

func TestDBSCANDropsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	paths := lanePaths(rng, 4, geom.Point{X: 0, Y: 100}, geom.Point{X: 600, Y: 100})
	// One lone fragment far away.
	paths = append(paths, geom.Path{{X: 300, Y: 500}, {X: 350, Y: 500}})
	clusters := DBSCAN(paths, DBSCANOptions{Eps: 40, MinPts: 2})
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 (noise dropped)", len(clusters))
	}
}

func TestDBSCANEmpty(t *testing.T) {
	if DBSCAN(nil, DefaultDBSCANOptions()) != nil {
		t.Error("empty input should return nil")
	}
}

func TestDBSCANMembershipSoundProperty(t *testing.T) {
	// Every cluster member is within Eps of some other member (MinPts=2
	// density), which implies the center lies within the cluster spread.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var paths []geom.Path
		paths = append(paths, lanePaths(rng, rng.Intn(4)+2, geom.Point{X: 0, Y: 50}, geom.Point{X: 400, Y: 60})...)
		paths = append(paths, lanePaths(rng, rng.Intn(4)+2, geom.Point{X: 400, Y: 300}, geom.Point{X: 0, Y: 280})...)
		clusters := DBSCAN(paths, DBSCANOptions{Eps: 50, MinPts: 2})
		total := 0
		for _, c := range clusters {
			total += c.Size
			// Center path length bounded by member extent.
			if len(c.Center) != PathSamples {
				return false
			}
		}
		return total <= len(paths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIndexNear(t *testing.T) {
	clusters := []*Cluster{
		{Center: geom.Path{{X: 10, Y: 10}, {X: 20, Y: 10}}.Resample(PathSamples), Size: 3},
		{Center: geom.Path{{X: 500, Y: 500}, {X: 510, Y: 500}}.Resample(PathSamples), Size: 2},
	}
	idx := NewIndex(clusters, 64)
	near := idx.Near(geom.Point{X: 15, Y: 12}, 30)
	found := false
	for _, ci := range near {
		if ci == 0 {
			found = true
		}
		if ci == 1 {
			t.Error("far cluster returned for a near lookup")
		}
	}
	if !found {
		t.Error("near cluster not found")
	}
}

func TestRefineEndpointsExtendsTruncatedTrack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Training tracks span the full lane [0, 600].
	paths := lanePaths(rng, 6, geom.Point{X: 0, Y: 100}, geom.Point{X: 600, Y: 100})
	r := NewRefiner(paths, DBSCANOptions{Eps: 40, MinPts: 2})

	// A reduced-rate track only observed over [150, 450].
	partial := geom.Path{{X: 150, Y: 100}, {X: 300, Y: 100}, {X: 450, Y: 100}}
	start, end, ok := r.RefineEndpoints(partial)
	if !ok {
		t.Fatal("refinement found no clusters")
	}
	if start.X > 60 {
		t.Errorf("refined start x = %v, want near 0", start.X)
	}
	if end.X < 540 {
		t.Errorf("refined end x = %v, want near 600", end.X)
	}
}

func TestRefineRejectsOppositeDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Only a west-to-east lane in training.
	paths := lanePaths(rng, 6, geom.Point{X: 0, Y: 100}, geom.Point{X: 600, Y: 100})
	r := NewRefiner(paths, DBSCANOptions{Eps: 40, MinPts: 2})
	// An east-to-west track: its reversed correspondence distance is huge.
	reversed := geom.Path{{X: 450, Y: 100}, {X: 300, Y: 100}, {X: 150, Y: 100}}
	if _, _, ok := r.RefineEndpoints(reversed); ok {
		t.Error("opposite-direction track must not be refined from this lane")
	}
}

func TestRefineEmpty(t *testing.T) {
	r := NewRefiner(nil, DefaultDBSCANOptions())
	if _, _, ok := r.RefineEndpoints(geom.Path{{X: 1, Y: 1}}); ok {
		t.Error("no clusters should refine nothing")
	}
	rng := rand.New(rand.NewSource(5))
	r2 := NewRefiner(lanePaths(rng, 4, geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0}), DBSCANOptions{Eps: 40, MinPts: 2})
	if _, _, ok := r2.RefineEndpoints(nil); ok {
		t.Error("empty track should refine nothing")
	}
}

func TestWeightedMedian(t *testing.T) {
	got := weightedMedian([]float64{1, 2, 3}, []float64{1, 1, 1})
	if got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	// Heavy weight dominates.
	got = weightedMedian([]float64{1, 100}, []float64{10, 1})
	if got != 1 {
		t.Errorf("weighted median = %v, want 1", got)
	}
	if weightedMedian(nil, nil) != 0 {
		t.Error("empty median should be 0")
	}
}
