package persist

import (
	"fmt"
	"io"

	"otif/internal/core"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/nn"
	"otif/internal/proxy"
	"otif/internal/refine"
	"otif/internal/track"
	"otif/internal/video"
)

// modelMagic identifies a trained-model bundle file.
const modelMagic = "OTIFMDL1"

// SaveModels serializes a trained system's artifacts: theta_best, the
// background model, the proxy models, the window-size set, the recurrent
// and pairwise tracking models, and the refinement clusters. Dataset
// identity (name/spec/seed) is recorded so loading into a mismatched
// dataset fails loudly.
func SaveModels(dst io.Writer, sys *core.System) error {
	w := newWriter(dst)
	w.header(modelMagic)
	w.str(sys.DS.Name)
	w.int(sys.DS.Spec.Clips)
	w.f64(sys.DS.Spec.ClipSeconds)

	writeConfig(w, sys.Best)

	// Background frame.
	bg := sys.Background.Frame()
	w.int(bg.W)
	w.int(bg.H)
	w.int(bg.NomW)
	w.int(bg.NomH)
	w.bytes(bg.Pix)

	// Proxy models.
	w.int(len(sys.Proxies))
	for _, m := range sys.Proxies {
		w.int(m.ResW)
		w.int(m.ResH)
		w.floats(m.LR.W)
		w.f64(m.LR.B)
	}

	// Window sizes (beyond the implicit full frame).
	w.int(len(sys.WindowSizes))
	for _, s := range sys.WindowSizes {
		w.int(s[0])
		w.int(s[1])
	}

	// Tracking models.
	writeRecurrent(w, sys.Recurrent)
	writePair(w, sys.Pair)

	// Refinement clusters.
	if sys.Refiner == nil {
		w.int(-1)
	} else {
		w.int(len(sys.Refiner.Clusters))
		for _, c := range sys.Refiner.Clusters {
			w.int(c.Size)
			w.int(len(c.Center))
			for _, p := range c.Center {
				w.f64(p.X)
				w.f64(p.Y)
			}
		}
	}
	return w.finish()
}

// LoadModels restores a trained system over a freshly built dataset
// instance. The dataset must match the one the bundle was trained on.
func LoadModels(src io.Reader, sys *core.System) error {
	r := newReader(src)
	if err := r.header(modelMagic); err != nil {
		return err
	}
	name := r.str()
	clips := r.int()
	clipSec := r.f64()
	if r.err != nil {
		return r.err
	}
	if name != sys.DS.Name || clips != sys.DS.Spec.Clips || clipSec != sys.DS.Spec.ClipSeconds {
		return fmt.Errorf("persist: bundle trained on %s (%d x %gs), dataset is %s (%d x %gs)",
			name, clips, clipSec, sys.DS.Name, sys.DS.Spec.Clips, sys.DS.Spec.ClipSeconds)
	}

	best, err := readConfig(r)
	if err != nil {
		return err
	}
	sys.Best = best

	bw, bh := r.int(), r.int()
	nomW, nomH := r.int(), r.int()
	if r.err != nil || bw <= 0 || bh <= 0 || bw*bh > 1<<26 {
		return badLen(r, bw*bh)
	}
	frame := video.NewFrame(bw, bh, nomW, nomH)
	copy(frame.Pix, r.bytes(bw*bh))
	sys.Background = detect.NewBackgroundModel(frame)

	nProxies := r.int()
	if r.err != nil || nProxies < 0 || nProxies > 64 {
		return badLen(r, nProxies)
	}
	sys.Proxies = make([]*proxy.Model, nProxies)
	for i := range sys.Proxies {
		m := &proxy.Model{ResW: r.int(), ResH: r.int(), LR: &nn.LogReg{}}
		m.LR.W = nn.Vec(r.floats())
		m.LR.B = r.f64()
		sys.Proxies[i] = m
	}

	nSizes := r.int()
	if r.err != nil || nSizes < 0 || nSizes > 16 {
		return badLen(r, nSizes)
	}
	sys.WindowSizes = make([][2]int, nSizes)
	for i := range sys.WindowSizes {
		sys.WindowSizes[i] = [2]int{r.int(), r.int()}
	}

	if sys.Recurrent, err = readRecurrent(r, sys); err != nil {
		return err
	}
	if sys.Pair, err = readPair(r, sys); err != nil {
		return err
	}

	nClusters := r.int()
	if r.err != nil {
		return r.err
	}
	if nClusters < 0 {
		sys.Refiner = nil
	} else {
		if nClusters > 1<<20 {
			return badLen(r, nClusters)
		}
		clusters := make([]*refine.Cluster, nClusters)
		for i := range clusters {
			c := &refine.Cluster{Size: r.int()}
			n := r.int()
			if r.err != nil || n < 0 || n > 1<<16 {
				return badLen(r, n)
			}
			c.Center = make(geom.Path, n)
			for k := range c.Center {
				c.Center[k] = geom.Point{X: r.f64(), Y: r.f64()}
			}
			clusters[i] = c
		}
		opts := refine.DefaultDBSCANOptions()
		sys.Refiner = &refine.Refiner{
			Clusters:     clusters,
			Idx:          refine.NewIndex(clusters, 64),
			K:            10,
			SearchRadius: 160,
			MaxDist:      2.5 * opts.Eps,
		}
	}
	return r.verifyChecksum()
}

func writeConfig(w *writer, c core.Config) {
	w.str(string(c.Arch))
	w.f64(c.DetScale)
	w.f64(c.DetConf)
	w.boolean(c.UseProxy)
	w.int(c.ProxyIdx)
	w.f64(c.ProxyThresh)
	w.int(c.Gap)
	w.str(string(c.Tracker))
	w.boolean(c.VariableGap)
	w.boolean(c.Refine)
}

func readConfig(r *reader) (core.Config, error) {
	c := core.Config{
		Arch:        detect.Arch(r.str()),
		DetScale:    r.f64(),
		DetConf:     r.f64(),
		UseProxy:    r.boolean(),
		ProxyIdx:    r.int(),
		ProxyThresh: r.f64(),
		Gap:         r.int(),
		Tracker:     core.TrackerKind(r.str()),
		VariableGap: r.boolean(),
		Refine:      r.boolean(),
	}
	return c, r.err
}

func writeDense(w *writer, d *nn.Dense) {
	w.int(d.In)
	w.int(d.Out)
	w.int(int(d.Act))
	// The on-disk format is one row per record; the in-memory layout is a
	// flat row-major vector, so rows are views into it.
	for i := 0; i < d.Out; i++ {
		w.floats(d.Row(i))
	}
	w.floats(d.B)
}

func readDense(r *reader) (*nn.Dense, error) {
	in, out := r.int(), r.int()
	act := nn.Activation(r.int())
	if r.err != nil || in <= 0 || out <= 0 || in > 1<<16 || out > 1<<16 {
		return nil, badLen(r, in*out)
	}
	d := &nn.Dense{In: in, Out: out, Act: act, W: nn.NewVec(in * out)}
	for i := 0; i < out; i++ {
		row := nn.Vec(r.floats())
		if r.err == nil && len(row) != in {
			return nil, badLen(r, len(row))
		}
		copy(d.Row(i), row)
	}
	d.B = nn.Vec(r.floats())
	return d, r.err
}

func writeMLP(w *writer, m *nn.MLP) {
	w.int(len(m.Layers))
	for _, l := range m.Layers {
		writeDense(w, l)
	}
}

func readMLP(r *reader) (*nn.MLP, error) {
	n := r.int()
	if r.err != nil || n <= 0 || n > 16 {
		return nil, badLen(r, n)
	}
	m := &nn.MLP{Layers: make([]*nn.Dense, n)}
	for i := range m.Layers {
		var err error
		if m.Layers[i], err = readDense(r); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func writeRecurrent(w *writer, m *track.RecurrentModel) {
	if m == nil {
		w.int(-1)
		return
	}
	w.int(m.Hidden)
	writeDense(w, m.GRU.Wz)
	writeDense(w, m.GRU.Wr)
	writeDense(w, m.GRU.Wc)
	writeMLP(w, m.Match)
}

func readRecurrent(r *reader, sys *core.System) (*track.RecurrentModel, error) {
	hidden := r.int()
	if r.err != nil {
		return nil, r.err
	}
	if hidden < 0 {
		return nil, nil
	}
	m := &track.RecurrentModel{
		Hidden: hidden,
		GRU:    &nn.GRUCell{InSize: track.FeatDim, HiddenSize: hidden},
		NomW:   sys.DS.Cfg.NomW,
		NomH:   sys.DS.Cfg.NomH,
		FPS:    sys.DS.Cfg.FPS,
	}
	var err error
	if m.GRU.Wz, err = readDense(r); err != nil {
		return nil, err
	}
	if m.GRU.Wr, err = readDense(r); err != nil {
		return nil, err
	}
	if m.GRU.Wc, err = readDense(r); err != nil {
		return nil, err
	}
	if m.Match, err = readMLP(r); err != nil {
		return nil, err
	}
	return m, nil
}

func writePair(w *writer, m *track.PairModel) {
	if m == nil {
		w.int(-1)
		return
	}
	w.int(1)
	writeMLP(w, m.Match)
}

func readPair(r *reader, sys *core.System) (*track.PairModel, error) {
	tag := r.int()
	if r.err != nil {
		return nil, r.err
	}
	if tag < 0 {
		return nil, nil
	}
	m := &track.PairModel{
		NomW: sys.DS.Cfg.NomW,
		NomH: sys.DS.Cfg.NomH,
		FPS:  sys.DS.Cfg.FPS,
	}
	var err error
	if m.Match, err = readMLP(r); err != nil {
		return nil, err
	}
	return m, nil
}
