// Package persist implements OTIF's on-disk formats: a versioned,
// checksummed binary encoding for extracted track sets (the product of
// pre-processing, which downstream queries scan repeatedly) and for the
// trained model bundle (background model, proxy models, window sizes,
// tracking models, refinement clusters), so a deployment trains once and
// executes everywhere.
//
// The format is deliberately explicit rather than gob/json: every record
// is length-prefixed little-endian with a magic header, a format version,
// and a trailing CRC32 so truncation and corruption are detected at load
// time.
package persist

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Format error sentinels.
var (
	ErrBadMagic    = errors.New("persist: bad magic")
	ErrBadVersion  = errors.New("persist: unsupported format version")
	ErrBadChecksum = errors.New("persist: checksum mismatch")
)

// version is the current format version for both file kinds.
const version = 1

// writer wraps a destination with checksumming and error latching.
type writer struct {
	w   *bufio.Writer
	crc uint32
	err error
}

func newWriter(w io.Writer) *writer {
	return &writer{w: bufio.NewWriter(w)}
}

func (w *writer) bytes(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
	_, w.err = w.w.Write(b)
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) int(v int)     { w.i64(int64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) boolean(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.bytes([]byte{b})
}

func (w *writer) str(s string) {
	w.int(len(s))
	w.bytes([]byte(s))
}

func (w *writer) floats(vs []float64) {
	w.int(len(vs))
	for _, v := range vs {
		w.f64(v)
	}
}

// finish writes the trailing checksum (not itself checksummed) and
// flushes.
func (w *writer) finish() error {
	if w.err != nil {
		return w.err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w.crc)
	if _, err := w.w.Write(b[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// reader wraps a source with checksumming and error latching.
type reader struct {
	r   *bufio.Reader
	crc uint32
	err error
}

func newReader(r io.Reader) *reader {
	return &reader{r: bufio.NewReader(r)}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > 1<<30 {
		r.err = fmt.Errorf("persist: implausible length %d", n)
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return nil
	}
	r.crc = crc32.Update(r.crc, crc32.IEEETable, b)
	return b
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) int() int     { return int(r.i64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) boolean() bool {
	b := r.bytes(1)
	return b != nil && b[0] != 0
}

func (r *reader) str() string {
	n := r.int()
	if r.err != nil || n < 0 || n > 1<<20 {
		if r.err == nil {
			r.err = fmt.Errorf("persist: implausible string length %d", n)
		}
		return ""
	}
	return string(r.bytes(n))
}

func (r *reader) floats() []float64 {
	n := r.int()
	if r.err != nil || n < 0 || n > 1<<26 {
		if r.err == nil {
			r.err = fmt.Errorf("persist: implausible slice length %d", n)
		}
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// verifyChecksum reads the trailing CRC and compares.
func (r *reader) verifyChecksum() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(b[:]) != want {
		return ErrBadChecksum
	}
	return nil
}

// header writes/checks a magic string plus version.
func (w *writer) header(magic string) {
	w.bytes([]byte(magic))
	w.u32(version)
}

func (r *reader) header(magic string) error {
	b := r.bytes(len(magic))
	if r.err != nil {
		return r.err
	}
	if string(b) != magic {
		return ErrBadMagic
	}
	if v := r.u32(); v != version {
		if r.err != nil {
			return r.err
		}
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return nil
}
