package persist

import (
	"fmt"
	"io"

	"otif/internal/query"
)

// Segment file format (OTIFSEG1): one immutable slice of a dataset's clip
// sequence, self-describing and shippable between replicas. The header
// records the segment's identity (dataset, segment id, first clip index)
// and the clip geometry every query needs; the body reuses the v2 track
// encoding byte for byte; a trailing CRC32 covers header and body. The
// encoding is fully deterministic: writing what ReadSegment returned
// reproduces the original file bit for bit, which the round-trip tests
// pin.
const (
	segmentMagic   = "OTIFSEG1"
	segmentVersion = 1
)

// SegmentMeta is the self-describing header of a segment file.
type SegmentMeta struct {
	// Dataset names the track set the segment belongs to; a replica serves
	// one manifest per dataset.
	Dataset string
	// ID is the segment's stable identifier within its dataset (also the
	// result-cache key prefix and the conventional file stem).
	ID string
	// StartClip is the index of the segment's first clip in dataset clip
	// order; a manifest's segments tile [0, totalClips) contiguously.
	StartClip int
	// Clip geometry, as in the v2 track header.
	FPS        int
	NomW, NomH int
	Frames     int
}

// WriteSegment serializes one segment: header, v2 track body, CRC32.
func WriteSegment(dst io.Writer, meta SegmentMeta, perClip [][]*query.Track) error {
	w := newWriter(dst)
	w.bytes([]byte(segmentMagic))
	w.u32(segmentVersion)
	w.str(meta.Dataset)
	w.str(meta.ID)
	w.int(meta.StartClip)
	w.int(meta.FPS)
	w.int(meta.NomW)
	w.int(meta.NomH)
	w.int(meta.Frames)
	writeTrackBody(w, perClip)
	return w.finish()
}

// ReadSegment loads a segment file written by WriteSegment, verifying the
// magic, version and checksum.
func ReadSegment(src io.Reader) (SegmentMeta, [][]*query.Track, error) {
	r := newReader(src)
	var meta SegmentMeta
	b := r.bytes(len(segmentMagic))
	if r.err != nil {
		return meta, nil, r.err
	}
	if string(b) != segmentMagic {
		return meta, nil, ErrBadMagic
	}
	if v := r.u32(); r.err == nil && v != segmentVersion {
		return meta, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	meta.Dataset = r.str()
	meta.ID = r.str()
	meta.StartClip = r.int()
	meta.FPS = r.int()
	meta.NomW = r.int()
	meta.NomH = r.int()
	meta.Frames = r.int()
	if r.err != nil {
		return meta, nil, r.err
	}
	if meta.StartClip < 0 {
		return meta, nil, fmt.Errorf("%w (negative start clip %d)", ErrBadChecksum, meta.StartClip)
	}
	perClip, err := readTrackBody(r)
	if err != nil {
		return meta, nil, err
	}
	return meta, perClip, nil
}
