package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleSegmentMeta(id string, start int) SegmentMeta {
	return SegmentMeta{
		Dataset:   "caldot1",
		ID:        id,
		StartClip: start,
		FPS:       25, NomW: 1280, NomH: 720, Frames: 250,
	}
}

// TestSegmentRoundtrip pins the acceptance property of the wire format:
// write → read returns the identical header and tracks, and re-writing
// what was read reproduces the original file byte for byte.
func TestSegmentRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tracks := sampleTracks(rng, 3)
	meta := sampleSegmentMeta("seg-00002", 6)

	var buf bytes.Buffer
	if err := WriteSegment(&buf, meta, tracks); err != nil {
		t.Fatal(err)
	}
	first := append([]byte{}, buf.Bytes()...)

	gotMeta, gotTracks, err := ReadSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Errorf("meta roundtrip = %+v, want %+v", gotMeta, meta)
	}
	if !tracksEqual(tracks, gotTracks) {
		t.Error("segment track roundtrip mismatch")
	}

	var again bytes.Buffer
	if err := WriteSegment(&again, gotMeta, gotTracks); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Error("re-encoding a read segment is not byte-identical")
	}
}

func TestSegmentRoundtripProperty(t *testing.T) {
	f := func(seed int64, start uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tracks := sampleTracks(rng, rng.Intn(4)) // 0 clips allowed
		meta := sampleSegmentMeta("seg-00000", int(start))
		var buf bytes.Buffer
		if err := WriteSegment(&buf, meta, tracks); err != nil {
			return false
		}
		gotMeta, gotTracks, err := ReadSegment(&buf)
		return err == nil && gotMeta == meta && tracksEqual(tracks, gotTracks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSegmentCorruptionDetected flips and truncates bytes across the file
// and asserts every class of damage is rejected: wrong magic, unknown
// version, corrupted header or body (CRC), truncation, negative start.
func TestSegmentCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var buf bytes.Buffer
	if err := WriteSegment(&buf, sampleSegmentMeta("seg-00001", 3), sampleTracks(rng, 2)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, _, err := ReadSegment(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic error = %v, want ErrBadMagic", err)
	}

	// Unknown version (little-endian u32 right after the 8-byte magic).
	bad = append([]byte{}, data...)
	bad[len(segmentMagic)] = 99
	if _, _, err := ReadSegment(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version error = %v, want ErrBadVersion", err)
	}

	// A flipped byte anywhere after the version must be caught — by the
	// CRC at the latest, earlier by implausible lengths.
	for _, off := range []int{len(segmentMagic) + 5, len(data) / 2, len(data) - 2} {
		bad = append([]byte{}, data...)
		bad[off] ^= 0x55
		if _, _, err := ReadSegment(bytes.NewReader(bad)); err == nil {
			t.Errorf("flipped byte at offset %d not detected", off)
		}
	}

	// Truncation.
	if _, _, err := ReadSegment(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("truncation not detected")
	}
}
