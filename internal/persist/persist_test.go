package persist

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/query"
	"otif/internal/tuner"
)

func sampleTracks(rng *rand.Rand, nClips int) [][]*query.Track {
	out := make([][]*query.Track, nClips)
	for c := range out {
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			t := &query.Track{ID: i, Category: "car"}
			for f := 0; f < rng.Intn(6)+2; f++ {
				t.Dets = append(t.Dets, detect.Detection{
					FrameIdx: f * 2,
					Box:      geom.Rect{X: rng.Float64() * 100, Y: rng.Float64() * 100, W: 40, H: 20},
					Score:    rng.Float64(),
					Category: "car",
					AppMean:  rng.Float64() * 255,
					AppStd:   rng.Float64() * 64,
				})
				t.Path = append(t.Path, t.Dets[len(t.Dets)-1].Box.Center())
			}
			out[c] = append(out[c], t)
		}
	}
	return out
}

func tracksEqual(a, b [][]*query.Track) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if len(a[c]) != len(b[c]) {
			return false
		}
		for i := range a[c] {
			x, y := a[c][i], b[c][i]
			if x.ID != y.ID || x.Category != y.Category ||
				len(x.Dets) != len(y.Dets) || len(x.Path) != len(y.Path) {
				return false
			}
			for k := range x.Dets {
				if x.Dets[k] != y.Dets[k] {
					return false
				}
			}
			for k := range x.Path {
				if x.Path[k] != y.Path[k] {
					return false
				}
			}
		}
	}
	return true
}

func TestTracksRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tracks := sampleTracks(rng, 3)
	var buf bytes.Buffer
	if err := WriteTracks(&buf, tracks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTracks(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tracksEqual(tracks, got) {
		t.Error("roundtrip mismatch")
	}
}

func TestTracksRoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tracks := sampleTracks(rng, rng.Intn(3)+1)
		var buf bytes.Buffer
		if err := WriteTracks(&buf, tracks); err != nil {
			return false
		}
		got, err := ReadTracks(&buf)
		return err == nil && tracksEqual(tracks, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTracksV2Roundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tracks := sampleTracks(rng, 3)
	meta := TrackMeta{FPS: 25, NomW: 1280, NomH: 720, Frames: 250, Dataset: "caldot1"}
	var buf bytes.Buffer
	if err := WriteTracksV2(&buf, tracks, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := ReadTracksAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta == nil || *gotMeta != meta {
		t.Errorf("meta roundtrip = %+v, want %+v", gotMeta, meta)
	}
	if !tracksEqual(tracks, got) {
		t.Error("v2 roundtrip mismatch")
	}
}

func TestTracksAutoReadsV1(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tracks := sampleTracks(rng, 2)
	var buf bytes.Buffer
	if err := WriteTracks(&buf, tracks); err != nil {
		t.Fatal(err)
	}
	got, meta, err := ReadTracksAuto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta != nil {
		t.Errorf("v1 file produced meta %+v, want nil", meta)
	}
	if !tracksEqual(tracks, got) {
		t.Error("v1-via-auto roundtrip mismatch")
	}
}

func TestTracksV2CorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	meta := TrackMeta{FPS: 10, NomW: 640, NomH: 360, Frames: 100, Dataset: "x"}
	if err := WriteTracksV2(&buf, sampleTracks(rng, 2), meta); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// A flipped header byte must fail the checksum (the header is
	// covered), and truncation must be detected.
	bad := append([]byte{}, data...)
	bad[10] ^= 0x40
	if _, _, err := ReadTracksAuto(bytes.NewReader(bad)); err == nil {
		t.Error("v2 header corruption not detected")
	}
	if _, _, err := ReadTracksAuto(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Error("v2 truncation not detected")
	}
}

func TestTracksCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	if err := WriteTracks(&buf, sampleTracks(rng, 2)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := ReadTracks(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic error = %v", err)
	}

	// Flipped payload byte -> checksum mismatch (or implausible length).
	bad2 := append([]byte{}, data...)
	bad2[len(bad2)/2] ^= 0x55
	if _, err := ReadTracks(bytes.NewReader(bad2)); err == nil {
		t.Error("corruption not detected")
	}

	// Truncation.
	if _, err := ReadTracks(bytes.NewReader(data[:len(data)-6])); err == nil {
		t.Error("truncation not detected")
	}
}

func TestModelsRoundtrip(t *testing.T) {
	ds, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 2, ClipSeconds: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(ds)
	metric := core.MetricFor(ds)
	best, _ := tuner.SelectBest(sys, metric)
	sys.FinishTraining(best, 42)

	var buf bytes.Buffer
	if err := SaveModels(&buf, sys); err != nil {
		t.Fatal(err)
	}

	// Fresh dataset + system, load the bundle.
	ds2, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 2, ClipSeconds: 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := core.NewSystem(ds2)
	if err := LoadModels(bytes.NewReader(buf.Bytes()), sys2); err != nil {
		t.Fatal(err)
	}

	if sys2.Best != sys.Best {
		t.Errorf("theta_best mismatch: %v vs %v", sys2.Best, sys.Best)
	}
	if len(sys2.Proxies) != len(sys.Proxies) {
		t.Fatalf("proxies = %d", len(sys2.Proxies))
	}
	for i := range sys.Proxies {
		if sys2.Proxies[i].ResW != sys.Proxies[i].ResW {
			t.Error("proxy resolution mismatch")
		}
		if sys2.Proxies[i].LR.B != sys.Proxies[i].LR.B {
			t.Error("proxy bias mismatch")
		}
	}
	if len(sys2.WindowSizes) != len(sys.WindowSizes) {
		t.Error("window sizes mismatch")
	}
	if (sys2.Refiner == nil) != (sys.Refiner == nil) {
		t.Error("refiner presence mismatch")
	}

	// The loaded system must produce identical results to the original.
	cfg := sys.Best
	cfg.Tracker = core.TrackerRecurrent
	cfg.Gap = 4
	a := sys.RunSet(cfg, ds.Val)
	b := sys2.RunSet(cfg, ds2.Val)
	if len(a.PerClip) != len(b.PerClip) {
		t.Fatal("clip counts differ")
	}
	for i := range a.PerClip {
		if len(a.PerClip[i]) != len(b.PerClip[i]) {
			t.Errorf("clip %d: %d vs %d tracks", i, len(a.PerClip[i]), len(b.PerClip[i]))
		}
	}
	if a.Runtime != b.Runtime {
		t.Errorf("runtimes differ: %v vs %v", a.Runtime, b.Runtime)
	}
}

func TestLoadModelsRejectsWrongDataset(t *testing.T) {
	ds, _ := dataset.Build("caldot1", dataset.SetSpec{Clips: 1, ClipSeconds: 2}, 5)
	sys := core.NewSystem(ds)
	sys.FinishTraining(core.Config{Arch: detect.ArchYOLO, DetScale: 1, DetConf: 0.25, Gap: 1, Tracker: core.TrackerSORT}, 42)
	var buf bytes.Buffer
	if err := SaveModels(&buf, sys); err != nil {
		t.Fatal(err)
	}
	other, _ := dataset.Build("tokyo", dataset.SetSpec{Clips: 1, ClipSeconds: 2}, 5)
	sys2 := core.NewSystem(other)
	if err := LoadModels(bytes.NewReader(buf.Bytes()), sys2); err == nil {
		t.Error("loading a caldot1 bundle into tokyo must fail")
	}
}
