package persist

import (
	"fmt"
	"io"

	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/query"
)

// Track-set file magics. V1 files carry no clip geometry (loading needs
// positional context from the caller); V2 files are self-describing: the
// header records the frame rate, nominal geometry, frames per clip and
// dataset name, so a V2 file loads with zero positional arguments.
const (
	trackMagic   = "OTIFTRK1"
	trackMagicV2 = "OTIFTRK2"

	trackVersion2 = 2
)

// TrackMeta is the self-describing header of a V2 track file: everything a
// loader needs to answer queries over the tracks without out-of-band
// context.
type TrackMeta struct {
	FPS        int
	NomW, NomH int
	Frames     int // clip length in frames
	Dataset    string
}

// WriteTracks serializes per-clip track sets in the legacy V1 layout
// (no header metadata). Kept so compatibility tests can produce V1 files;
// new writers use WriteTracksV2.
func WriteTracks(dst io.Writer, perClip [][]*query.Track) error {
	w := newWriter(dst)
	w.header(trackMagic)
	writeTrackBody(w, perClip)
	return w.finish()
}

// WriteTracksV2 serializes per-clip track sets in the self-describing V2
// layout: magic, format version, clip geometry and dataset name, then the
// same track body as V1, all covered by the trailing checksum.
func WriteTracksV2(dst io.Writer, perClip [][]*query.Track, meta TrackMeta) error {
	w := newWriter(dst)
	w.bytes([]byte(trackMagicV2))
	w.u32(trackVersion2)
	w.int(meta.FPS)
	w.int(meta.NomW)
	w.int(meta.NomH)
	w.int(meta.Frames)
	w.str(meta.Dataset)
	writeTrackBody(w, perClip)
	return w.finish()
}

func writeTrackBody(w *writer, perClip [][]*query.Track) {
	w.int(len(perClip))
	for _, tracks := range perClip {
		w.int(len(tracks))
		for _, t := range tracks {
			writeTrack(w, t)
		}
	}
}

func writeTrack(w *writer, t *query.Track) {
	w.int(t.ID)
	w.str(t.Category)
	w.int(len(t.Dets))
	for _, d := range t.Dets {
		w.int(d.FrameIdx)
		w.f64(d.Box.X)
		w.f64(d.Box.Y)
		w.f64(d.Box.W)
		w.f64(d.Box.H)
		w.f64(d.Score)
		w.str(d.Category)
		w.f64(d.AppMean)
		w.f64(d.AppStd)
	}
	w.int(len(t.Path))
	for _, p := range t.Path {
		w.f64(p.X)
		w.f64(p.Y)
	}
}

// ReadTracks loads a V1 track-set file written by WriteTracks, verifying
// the checksum. New callers use ReadTracksAuto, which dispatches on the
// magic and also understands V2.
func ReadTracks(src io.Reader) ([][]*query.Track, error) {
	perClip, _, err := ReadTracksAuto(src)
	return perClip, err
}

// ReadTracksAuto loads a track-set file of either format, returning the
// header metadata for V2 files and nil meta for V1 files (whose context
// the caller must supply out of band).
func ReadTracksAuto(src io.Reader) ([][]*query.Track, *TrackMeta, error) {
	r := newReader(src)
	magic := string(r.bytes(len(trackMagic)))
	if r.err != nil {
		return nil, nil, r.err
	}
	var meta *TrackMeta
	switch magic {
	case trackMagic:
		if v := r.u32(); r.err == nil && v != 1 {
			return nil, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
	case trackMagicV2:
		if v := r.u32(); r.err == nil && v != trackVersion2 {
			return nil, nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
		meta = &TrackMeta{
			FPS:  r.int(),
			NomW: r.int(),
			NomH: r.int(),
		}
		meta.Frames = r.int()
		meta.Dataset = r.str()
	default:
		return nil, nil, ErrBadMagic
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	perClip, err := readTrackBody(r)
	if err != nil {
		return nil, nil, err
	}
	return perClip, meta, nil
}

func readTrackBody(r *reader) ([][]*query.Track, error) {
	nClips := r.int()
	if r.err != nil || nClips < 0 || nClips > 1<<20 {
		return nil, badLen(r, nClips)
	}
	out := make([][]*query.Track, nClips)
	for c := range out {
		nTracks := r.int()
		if r.err != nil || nTracks < 0 || nTracks > 1<<24 {
			return nil, badLen(r, nTracks)
		}
		out[c] = make([]*query.Track, nTracks)
		for i := range out[c] {
			t, err := readTrack(r)
			if err != nil {
				return nil, err
			}
			out[c][i] = t
		}
	}
	if err := r.verifyChecksum(); err != nil {
		return nil, err
	}
	return out, nil
}

func readTrack(r *reader) (*query.Track, error) {
	t := &query.Track{
		ID:       r.int(),
		Category: r.str(),
	}
	nDets := r.int()
	if r.err != nil || nDets < 0 || nDets > 1<<24 {
		return nil, badLen(r, nDets)
	}
	t.Dets = make([]detect.Detection, nDets)
	for i := range t.Dets {
		t.Dets[i] = detect.Detection{
			FrameIdx: r.int(),
			Box:      geom.Rect{X: r.f64(), Y: r.f64(), W: r.f64(), H: r.f64()},
			Score:    r.f64(),
			Category: r.str(),
			AppMean:  r.f64(),
			AppStd:   r.f64(),
		}
	}
	nPath := r.int()
	if r.err != nil || nPath < 0 || nPath > 1<<24 {
		return nil, badLen(r, nPath)
	}
	t.Path = make(geom.Path, nPath)
	for i := range t.Path {
		t.Path[i] = geom.Point{X: r.f64(), Y: r.f64()}
	}
	return t, r.err
}

func badLen(r *reader, n int) error {
	if r.err != nil {
		return r.err
	}
	return fmt.Errorf("%w (implausible count %d)", ErrBadChecksum, n)
}
