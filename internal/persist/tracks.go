package persist

import (
	"fmt"
	"io"

	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/query"
)

// trackMagic identifies a track-set file.
const trackMagic = "OTIFTRK1"

// WriteTracks serializes per-clip track sets (the output of one OTIF
// pre-processing pass over a clip set).
func WriteTracks(dst io.Writer, perClip [][]*query.Track) error {
	w := newWriter(dst)
	w.header(trackMagic)
	w.int(len(perClip))
	for _, tracks := range perClip {
		w.int(len(tracks))
		for _, t := range tracks {
			writeTrack(w, t)
		}
	}
	return w.finish()
}

func writeTrack(w *writer, t *query.Track) {
	w.int(t.ID)
	w.str(t.Category)
	w.int(len(t.Dets))
	for _, d := range t.Dets {
		w.int(d.FrameIdx)
		w.f64(d.Box.X)
		w.f64(d.Box.Y)
		w.f64(d.Box.W)
		w.f64(d.Box.H)
		w.f64(d.Score)
		w.str(d.Category)
		w.f64(d.AppMean)
		w.f64(d.AppStd)
	}
	w.int(len(t.Path))
	for _, p := range t.Path {
		w.f64(p.X)
		w.f64(p.Y)
	}
}

// ReadTracks loads a track-set file written by WriteTracks, verifying the
// checksum.
func ReadTracks(src io.Reader) ([][]*query.Track, error) {
	r := newReader(src)
	if err := r.header(trackMagic); err != nil {
		return nil, err
	}
	nClips := r.int()
	if r.err != nil || nClips < 0 || nClips > 1<<20 {
		return nil, badLen(r, nClips)
	}
	out := make([][]*query.Track, nClips)
	for c := range out {
		nTracks := r.int()
		if r.err != nil || nTracks < 0 || nTracks > 1<<24 {
			return nil, badLen(r, nTracks)
		}
		out[c] = make([]*query.Track, nTracks)
		for i := range out[c] {
			t, err := readTrack(r)
			if err != nil {
				return nil, err
			}
			out[c][i] = t
		}
	}
	if err := r.verifyChecksum(); err != nil {
		return nil, err
	}
	return out, nil
}

func readTrack(r *reader) (*query.Track, error) {
	t := &query.Track{
		ID:       r.int(),
		Category: r.str(),
	}
	nDets := r.int()
	if r.err != nil || nDets < 0 || nDets > 1<<24 {
		return nil, badLen(r, nDets)
	}
	t.Dets = make([]detect.Detection, nDets)
	for i := range t.Dets {
		t.Dets[i] = detect.Detection{
			FrameIdx: r.int(),
			Box:      geom.Rect{X: r.f64(), Y: r.f64(), W: r.f64(), H: r.f64()},
			Score:    r.f64(),
			Category: r.str(),
			AppMean:  r.f64(),
			AppStd:   r.f64(),
		}
	}
	nPath := r.int()
	if r.err != nil || nPath < 0 || nPath > 1<<24 {
		return nil, badLen(r, nPath)
	}
	t.Path = make(geom.Path, nPath)
	for i := range t.Path {
		t.Path[i] = geom.Point{X: r.f64(), Y: r.f64()}
	}
	return t, r.err
}

func badLen(r *reader, n int) error {
	if r.err != nil {
		return r.err
	}
	return fmt.Errorf("%w (implausible count %d)", ErrBadChecksum, n)
}
