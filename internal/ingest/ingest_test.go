package ingest

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/query"
	"otif/internal/store"
	"otif/internal/video"
)

// testWorld returns a tiny untuned system plus the streaming config the
// tests run under. SORT needs no trained tracker, so NewSystem (which
// only estimates the background) is enough — ingest shares one model set
// across all cameras exactly like a trained deployment would.
var (
	worldOnce sync.Once
	worldSys  *core.System
	worldDS   *dataset.Instance
)

func testWorld(t *testing.T) (*core.System, *dataset.Instance, core.Config) {
	t.Helper()
	worldOnce.Do(func() {
		ds, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 2, ClipSeconds: 2}, 7)
		if err != nil {
			t.Fatal(err)
		}
		worldDS = ds
		worldSys = core.NewSystem(ds)
	})
	cfg := core.Config{
		Arch: detect.ArchYOLO, DetScale: 1.0, DetConf: core.DetConfDefault,
		Gap: 2, Tracker: core.TrackerSORT,
	}
	return worldSys, worldDS, cfg
}

// camera adapts a dataset camera feed to an ingest Camera.
func camera(ds *dataset.Instance, cam, limit int) Camera {
	gen := ds.Camera(cam, 0)
	return Camera{
		Name:  ds.Name + "-cam" + string(rune('0'+cam)),
		Clip:  func(i int) *video.Clip { return gen(i).Clip },
		Limit: limit,
	}
}

// TestSessionPublishesEveryClipBitIdentically runs a bounded 2-camera
// session to completion and then re-extracts every published (camera,
// clip) pair through the batch entry point: the streamed tracks must be
// bit-identical, regardless of the publish order worker timing chose.
func TestSessionPublishesEveryClipBitIdentically(t *testing.T) {
	sys, ds, cfg := testWorld(t)
	const limit = 3
	s, err := Start(context.Background(), sys, Options{
		Cameras: []Camera{camera(ds, 0, limit), camera(ds, 1, limit)},
		Cfg:     cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}

	log := s.Published()
	if len(log) != 2*limit {
		t.Fatalf("published %d clips, want %d", len(log), 2*limit)
	}
	snap := s.Store()
	if snap.Clips() != 2*limit {
		t.Fatalf("store has %d clips, want %d", snap.Clips(), 2*limit)
	}
	gens := []func(int) *dataset.ClipTruth{ds.Camera(0, 0), ds.Camera(1, 0)}
	seen := map[[2]int]bool{}
	for _, p := range log {
		if seen[[2]int{p.Camera, p.CamClip}] {
			t.Fatalf("clip (%d,%d) published twice", p.Camera, p.CamClip)
		}
		seen[[2]int{p.Camera, p.CamClip}] = true
		clip := gens[p.Camera](p.CamClip).Clip
		acct := costmodel.NewAccountant()
		res := sys.RunClipStream(context.Background(), cfg, clip, acct, nn.ActivePrecision())
		want := sys.QueryTracks(cfg, res.Tracks, clip.Len())
		got := snap.Tracks(p.StoreClip)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("camera %d clip %d: streamed tracks diverge from batch extraction", p.Camera, p.CamClip)
		}
		if p.Runtime != acct.Total() {
			t.Fatalf("camera %d clip %d: runtime %v, want %v", p.Camera, p.CamClip, p.Runtime, acct.Total())
		}
	}

	st := s.Stats()
	if st.ClipsIngested != 2*limit || st.ClipsDropped != 0 || st.QueueDepth != 0 {
		t.Fatalf("stats = %+v, want %d ingested, 0 dropped, empty queue", st, 2*limit)
	}
	for i, c := range st.Cameras {
		if c.ClipsEmitted != limit || c.ClipsPublished != limit || c.Lag != 0 {
			t.Fatalf("camera %d stats = %+v", i, c)
		}
	}
}

// TestSessionIncrementalMatchesFullRebuild pins the acceptance criterion
// end-to-end: the session's incrementally published store is bit-identical
// to a full index rebuild over the same extracted clips.
func TestSessionIncrementalMatchesFullRebuild(t *testing.T) {
	sys, ds, cfg := testWorld(t)
	s, err := Start(context.Background(), sys, Options{
		Cameras: []Camera{camera(ds, 2, 2), camera(ds, 3, 2)},
		Cfg:     cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	snap := s.Store()
	perClip := make([][]*query.Track, snap.Clips())
	for i := range perClip {
		perClip[i] = snap.Tracks(i)
	}
	full := store.New(perClip, snap.Context())
	for _, cat := range []string{"", "car", "bus"} {
		if got, want := snap.CountTracks(cat), full.CountTracks(cat); !reflect.DeepEqual(got, want) {
			t.Fatalf("CountTracks(%q): incremental %v vs full rebuild %v", cat, got, want)
		}
	}
	got := snap.LimitQuery("car", query.CountPredicate{N: 1}, 5, 2)
	want := full.LimitQuery("car", query.CountPredicate{N: 1}, 5, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("LimitQuery diverged between incremental store and full rebuild")
	}
}

// TestSessionCancelDrainsCleanly cancels an unbounded session mid-stream
// while other goroutines hammer Stats and Store, asserting (under -race)
// that shutdown is clean and already-published clips stay queryable.
func TestSessionCancelDrainsCleanly(t *testing.T) {
	sys, ds, cfg := testWorld(t)
	s, err := Start(context.Background(), sys, Options{
		Cameras: []Camera{camera(ds, 4, 0), camera(ds, 5, 0)}, // unbounded
		Cfg:     cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Stats()
				s.Store().CountTracks("car")
			}
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for s.Stats().ClipsIngested < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no clips published within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	close(stop)
	wg.Wait()

	select {
	case <-s.Done():
	default:
		t.Fatal("Done not closed after Close")
	}
	st := s.Stats()
	if st.ClipsIngested < 2 {
		t.Fatalf("published clips lost on close: %+v", st)
	}
	if got := s.Store().Clips(); int64(got) != st.ClipsIngested {
		t.Fatalf("store has %d clips, stats say %d", got, st.ClipsIngested)
	}
	// Close is idempotent, and Wait after Close reports the cancellation.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Wait(); err != context.Canceled {
		t.Fatalf("Wait after Close = %v, want context.Canceled", err)
	}
}

// TestSessionDropPolicy runs a fast producer against a depth-1 queue with
// shedding enabled and checks the conservation invariant: every emitted
// clip is either published or counted dropped, never lost.
func TestSessionDropPolicy(t *testing.T) {
	sys, ds, cfg := testWorld(t)
	const limit = 12
	s, err := Start(context.Background(), sys, Options{
		Cameras:      []Camera{camera(ds, 6, limit)},
		Cfg:          cfg,
		QueueDepth:   1,
		DropWhenFull: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	c := st.Cameras[0]
	if c.ClipsEmitted != limit {
		t.Fatalf("emitted %d, want %d", c.ClipsEmitted, limit)
	}
	if c.ClipsPublished+c.ClipsDropped != limit || c.Lag != 0 {
		t.Fatalf("conservation violated: %+v", c)
	}
	if int64(s.Store().Clips()) != c.ClipsPublished {
		t.Fatalf("store clips %d != published %d", s.Store().Clips(), c.ClipsPublished)
	}
}

// TestSessionGaugesAndProgress asserts the obs surface: per-camera gauges
// appear in registry snapshots while a session is active, and one
// EventIngestClip arrives per published clip.
func TestSessionGaugesAndProgress(t *testing.T) {
	sys, ds, cfg := testWorld(t)
	var events atomic.Int64
	s, err := Start(context.Background(), sys, Options{
		Cameras: []Camera{camera(ds, 7, 2)},
		Cfg:     cfg,
		Progress: func(e obs.Event) {
			if e.Kind != obs.EventIngestClip {
				t.Errorf("unexpected event kind %q", e.Kind)
			}
			events.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.Default.Snapshot()
	if _, ok := snap.Gauges["ingest.queue_depth"]; !ok {
		t.Error("ingest.queue_depth gauge missing while session active")
	}
	if _, ok := snap.Gauges["ingest.cam0.lag"]; !ok {
		t.Error("per-camera lag gauge missing while session active")
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := events.Load(); got != 2 {
		t.Fatalf("got %d progress events, want 2", got)
	}
	if _, ok := obs.Default.Snapshot().Gauges["ingest.queue_depth"]; ok {
		t.Error("ingest gauges still exported after session ended")
	}
}
