// Package ingest is OTIF's streaming pre-processing path: per-camera
// stream sources feeding a bounded shared work queue drained by the
// parallel pool against one shared model set, with every extracted clip
// appended incrementally to a live indexed store.
//
// The batch pipeline (core.RunSet) consumes a fixed clip list and
// publishes one track set at the end; a Session instead watches N
// cameras forever. Each camera runs a producer goroutine that
// synthesizes (decodes) its next fixed-length clip while earlier clips
// are still being extracted — clip-level decode-ahead on top of the
// frame-level prefetch the clip reader already does — and enqueues it on
// the shared queue. The queue is bounded: when extraction falls behind,
// producers block (backpressure) or, when the drop policy is enabled,
// shed the clip and count it. Worker goroutines (parallel.Drain, one
// shared trained model set, the same pooled per-clip execution RunSet
// uses) extract tracks and publish them to a store.Live, whose atomic
// per-clip snapshot swap guarantees queries concurrent with ingest never
// observe a torn index.
//
// Determinism: the stream's publication ORDER depends on worker timing,
// but each (camera, clip) pair's extracted tracks are bit-identical to
// running that clip through the batch pipeline — the session samples the
// compute backend once at start and every clip is charged to its own
// accountant, exactly like RunSet's per-clip shards.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/parallel"
	"otif/internal/query"
	"otif/internal/store"
	"otif/internal/video"
)

// Process-wide ingest counters. Per-session state (queue depth, lag) is
// exported through the gauge group below, which follows the most recently
// started session.
var (
	metClipsIn      = obs.Default.Counter("ingest.clips_in")
	metClipsOut     = obs.Default.Counter("ingest.clips_published")
	metClipsDropped = obs.Default.Counter("ingest.clips_dropped")
)

// activeSession is the session the ingest gauges describe: the most
// recently started one (a daemon runs at most one). Cleared when that
// session ends.
var activeSession atomic.Pointer[Session]

func init() {
	obs.Default.GaugeGroup(func() map[string]float64 {
		s := activeSession.Load()
		if s == nil {
			return nil
		}
		st := s.Stats()
		m := map[string]float64{
			"ingest.queue_depth": float64(st.QueueDepth),
			"ingest.cameras":     float64(len(st.Cameras)),
		}
		for i, c := range st.Cameras {
			p := fmt.Sprintf("ingest.cam%d.", i)
			m[p+"lag"] = float64(c.Lag)
			m[p+"published"] = float64(c.ClipsPublished)
			m[p+"dropped"] = float64(c.ClipsDropped)
		}
		return m
	})
}

// Camera describes one stream source: a deterministic generator of
// fixed-length clips plus its pacing policy.
type Camera struct {
	// Name identifies the camera in stats, progress events and gauges.
	Name string
	// Clip returns the camera's i-th clip. It is called from the camera's
	// producer goroutine only, in order, each index exactly once.
	Clip func(i int) *video.Clip
	// Limit bounds how many clips the camera emits; 0 streams forever.
	Limit int
	// Interval is the wall-clock schedule between clip emissions; 0 emits
	// on demand, as fast as queue backpressure allows.
	Interval time.Duration
}

// Options configures a Session.
type Options struct {
	// Cameras are the stream sources; at least one is required.
	Cameras []Camera
	// Cfg is the pipeline configuration every streamed clip runs under.
	Cfg core.Config
	// QueueDepth bounds the shared work queue; 0 selects twice the worker
	// count.
	QueueDepth int
	// DropWhenFull sheds clips instead of blocking the producer when the
	// queue is full. The default (false) applies backpressure: a camera
	// that outpaces extraction waits.
	DropWhenFull bool
	// Ctx overrides the clip geometry the live store is built with; the
	// zero value derives it from the system's dataset. Set it when the
	// streamed clips' length differs from the dataset's sampled sets.
	Ctx query.Context
	// Progress, when non-nil, receives one EventIngestClip per published
	// clip. Events arrive concurrently from workers.
	Progress obs.Progress
}

// CameraStats is one camera's view of Stats.
type CameraStats struct {
	Name string `json:"name"`
	// ClipsEmitted counts clips the camera has synthesized so far.
	ClipsEmitted int64 `json:"clips_emitted"`
	// ClipsPublished counts the camera's clips that have landed in the
	// live store.
	ClipsPublished int64 `json:"clips_published"`
	// ClipsDropped counts clips shed under the drop policy.
	ClipsDropped int64 `json:"clips_dropped"`
	// Lag is ClipsEmitted - ClipsPublished - ClipsDropped: clips queued or
	// in flight between the camera and the store.
	Lag int64 `json:"lag"`
}

// Stats is a consistent point-in-time snapshot of a session, the typed
// counterpart of scraping the obs registry.
type Stats struct {
	// ClipsIngested counts clips published to the live store.
	ClipsIngested int64 `json:"clips_ingested"`
	// ClipsDropped counts clips shed across all cameras.
	ClipsDropped int64 `json:"clips_dropped"`
	// QueueDepth is the number of clips currently waiting in the shared
	// queue.
	QueueDepth int `json:"queue_depth"`
	// Runtime is the total simulated extraction cost over published clips.
	Runtime float64 `json:"runtime"`
	// Cameras holds per-camera counters in Options.Cameras order.
	Cameras []CameraStats `json:"cameras"`
}

// PublishedClip records one clip's publication for callers that need the
// store-index → (camera, clip) correspondence.
type PublishedClip struct {
	// Camera indexes Options.Cameras; CamClip is the clip's index within
	// that camera's stream; StoreClip its index in the live store.
	Camera, CamClip, StoreClip int
	// Runtime is the clip's simulated extraction cost.
	Runtime float64
	// Tracks counts the clip's extracted tracks.
	Tracks int
}

// workItem is one clip in flight from a producer to the worker pool.
type workItem struct {
	cam, idx int
	clip     *video.Clip
}

// camState holds one camera's atomic counters.
type camState struct {
	name                        string
	emitted, published, dropped atomic.Int64
}

// Session is one running ingest: producers, queue, workers and the live
// store. Create with Start; stop with Close or by canceling the start
// context.
type Session struct {
	sys  *core.System
	cfg  core.Config
	prec nn.Precision

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan workItem
	drop   bool

	live     *store.Live
	cams     []*camState
	progress obs.Progress

	mu      sync.Mutex // guards runtime and log
	runtime float64
	log     []PublishedClip

	done      chan struct{}
	err       error
	closeOnce sync.Once
}

// Start launches an ingest session over the system's trained models. It
// returns once producers and workers are running; the session then runs
// until every bounded camera is exhausted and drained, or until ctx is
// canceled / Close is called.
func Start(ctx context.Context, sys *core.System, opts Options) (*Session, error) {
	if len(opts.Cameras) == 0 {
		return nil, errors.New("ingest: no cameras")
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 2 * parallel.Workers()
	}
	qctx := opts.Ctx
	if qctx == (query.Context{}) {
		qctx = sys.Ctx()
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Session{
		sys: sys,
		cfg: opts.Cfg,
		// One backend for the whole session: a concurrent SetPrecision
		// affects the next session, never clips of this one.
		prec:     nn.ActivePrecision(),
		ctx:      sctx,
		cancel:   cancel,
		queue:    make(chan workItem, depth),
		drop:     opts.DropWhenFull,
		live:     store.NewLive(qctx),
		cams:     make([]*camState, len(opts.Cameras)),
		progress: opts.Progress,
		done:     make(chan struct{}),
	}
	for i, cam := range opts.Cameras {
		name := cam.Name
		if name == "" {
			name = fmt.Sprintf("cam%d", i)
		}
		s.cams[i] = &camState{name: name}
	}

	var producers sync.WaitGroup
	producers.Add(len(opts.Cameras))
	for i, cam := range opts.Cameras {
		go s.produce(&producers, i, cam)
	}
	// Close the queue once every producer is done, so Drain's workers
	// finish the tail and exit.
	go func() {
		producers.Wait()
		close(s.queue)
	}()
	go func() {
		err := parallel.Drain(s.ctx, s.queue, s.work)
		s.err = err
		activeSession.CompareAndSwap(s, nil)
		close(s.done)
	}()
	activeSession.Store(s)
	return s, nil
}

// produce runs one camera: synthesize the next clip, then enqueue it —
// blocking under backpressure, or shedding it under the drop policy.
func (s *Session) produce(wg *sync.WaitGroup, ci int, cam Camera) {
	defer wg.Done()
	st := s.cams[ci]
	for i := 0; cam.Limit <= 0 || i < cam.Limit; i++ {
		if s.ctx.Err() != nil {
			return
		}
		if cam.Interval > 0 && i > 0 {
			select {
			case <-time.After(cam.Interval):
			case <-s.ctx.Done():
				return
			}
		}
		clip := cam.Clip(i)
		st.emitted.Add(1)
		metClipsIn.Inc()
		it := workItem{cam: ci, idx: i, clip: clip}
		if s.drop {
			select {
			case s.queue <- it:
			default:
				st.dropped.Add(1)
				metClipsDropped.Inc()
			}
			continue
		}
		select {
		case s.queue <- it:
		case <-s.ctx.Done():
			return
		}
	}
}

// work extracts one queued clip and publishes its tracks. It runs on the
// parallel pool's workers; a clip in flight when the session is canceled
// completes and publishes, mirroring RunSetContext's clip-boundary
// cancellation.
func (s *Session) work(it workItem) {
	clipCtx, span := obs.StartSpan(s.ctx, "ingest.clip")
	span.SetStage("ingest").SetCamera(s.cams[it.cam].name).SetClip(it.idx).SetPrec(s.prec.String())
	defer span.End()
	acct := costmodel.NewAccountant()
	res := s.sys.RunClipStream(clipCtx, s.cfg, it.clip, acct, s.prec)
	tracks := s.sys.QueryTracks(s.cfg, res.Tracks, it.clip.Len())
	rt := acct.Total()

	idx := s.live.Append(tracks)
	s.mu.Lock()
	s.runtime += rt
	s.log = append(s.log, PublishedClip{
		Camera: it.cam, CamClip: it.idx, StoreClip: idx,
		Runtime: rt, Tracks: len(tracks),
	})
	s.mu.Unlock()
	s.cams[it.cam].published.Add(1)
	metClipsOut.Inc()
	s.progress.Emit(obs.Event{
		Kind: obs.EventIngestClip, Index: idx,
		Config: s.cams[it.cam].name, Runtime: rt,
	})
	if l := obs.Log(); l != nil {
		l.Debug("otif: ingest clip published",
			"camera", s.cams[it.cam].name, "clip", it.idx, "store_clip", idx, "tracks", len(tracks))
	}
}

// Live returns the session's live store. Its snapshots remain valid after
// the session ends.
func (s *Session) Live() *store.Live { return s.live }

// Store returns the current published snapshot, safe for concurrent
// queries while ingest continues. Since the segment model landed it is a
// *store.Sharded — sealed segments plus the open tail — but callers only
// see the Querier surface, which answers bit-identically.
func (s *Session) Store() store.Querier { return s.live.Snapshot() }

// Stats snapshots the session's counters.
func (s *Session) Stats() Stats {
	st := Stats{QueueDepth: len(s.queue)}
	s.mu.Lock()
	st.Runtime = s.runtime
	s.mu.Unlock()
	st.Cameras = make([]CameraStats, len(s.cams))
	for i, c := range s.cams {
		cs := CameraStats{
			Name:           c.name,
			ClipsEmitted:   c.emitted.Load(),
			ClipsPublished: c.published.Load(),
			ClipsDropped:   c.dropped.Load(),
		}
		cs.Lag = cs.ClipsEmitted - cs.ClipsPublished - cs.ClipsDropped
		st.Cameras[i] = cs
		st.ClipsIngested += cs.ClipsPublished
		st.ClipsDropped += cs.ClipsDropped
	}
	return st
}

// Published returns a copy of the publication log: which (camera, clip)
// landed at which store index.
func (s *Session) Published() []PublishedClip {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]PublishedClip(nil), s.log...)
}

// Done returns a channel closed when the session has fully stopped (all
// workers exited).
func (s *Session) Done() <-chan struct{} { return s.done }

// Wait blocks until the session stops: every bounded camera exhausted and
// drained, or the context canceled. It returns nil on a natural finish
// and the context's error after cancellation — in both cases every
// published clip remains queryable through Live.
func (s *Session) Wait() error {
	<-s.done
	return s.err
}

// Close cancels the session and waits for workers to drain. Clips already
// in flight finish and publish; queued clips are abandoned. Close is
// idempotent and safe to call concurrently with Wait.
func (s *Session) Close() error {
	s.closeOnce.Do(s.cancel)
	<-s.done
	if s.err != nil && !errors.Is(s.err, context.Canceled) {
		return s.err
	}
	return nil
}
