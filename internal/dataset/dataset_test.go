package dataset

import (
	"testing"
)

func TestNamesAllBuild(t *testing.T) {
	spec := SetSpec{Clips: 1, ClipSeconds: 2}
	for _, name := range Names() {
		in, err := Build(name, spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(in.Train) != 1 || len(in.Val) != 1 || len(in.Test) != 1 {
			t.Errorf("%s: wrong set sizes", name)
		}
		if in.Cfg.NomW <= 0 || in.Cfg.FPS <= 0 {
			t.Errorf("%s: bad config", name)
		}
		if len(in.Cfg.Lanes) == 0 {
			t.Errorf("%s: no lanes", name)
		}
		if in.Cfg.BGSeed == 0 {
			t.Errorf("%s: background seed not set", name)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", DefaultSpec, 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestSetsAreDisjoint(t *testing.T) {
	in, err := Build("caldot1", SetSpec{Clips: 2, ClipSeconds: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Different sets must contain different traffic (different worlds).
	a := in.Train[0].World
	b := in.Val[0].World
	if len(a.Objects) == len(b.Objects) && len(a.Objects) > 0 {
		same := true
		for i := range a.Objects {
			if a.Objects[i].SpawnSec != b.Objects[i].SpawnSec {
				same = false
				break
			}
		}
		if same {
			t.Error("train and val clips contain identical traffic")
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := SetSpec{Clips: 1, ClipSeconds: 2}
	a, _ := Build("tokyo", spec, 9)
	b, _ := Build("tokyo", spec, 9)
	fa := a.Test[0].Clip.Frame(3)
	fb := b.Test[0].Clip.Frame(3)
	for i := range fa.Pix {
		if fa.Pix[i] != fb.Pix[i] {
			t.Fatal("same seed produced different video")
		}
	}
}

func TestEquivScale(t *testing.T) {
	if got := PaperSpec.EquivScale(); got != 1 {
		t.Errorf("paper spec scale = %v, want 1", got)
	}
	s := SetSpec{Clips: 6, ClipSeconds: 10}
	if got := s.EquivScale(); got != 60 {
		t.Errorf("scale = %v, want 60", got)
	}
}

func TestLaneNamesSortedUnique(t *testing.T) {
	in, err := Build("caldot1", SetSpec{Clips: 1, ClipSeconds: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	names := in.LaneNames()
	if len(names) != 2 {
		t.Fatalf("LaneNames = %v, want 2 unique names", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Error("names not sorted")
		}
	}
}

func TestTokyoHasTenMovements(t *testing.T) {
	in, err := Build("tokyo", SetSpec{Clips: 1, ClipSeconds: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(in.LaneNames()); got != 10 {
		t.Errorf("tokyo has %d movements, want 10 (per the paper)", got)
	}
}

func TestUAVNotFixedCamera(t *testing.T) {
	uav, _ := Build("uav", SetSpec{Clips: 1, ClipSeconds: 1}, 1)
	if uav.FixedCamera {
		t.Error("UAV must not be a fixed camera (refinement does not apply)")
	}
	cal, _ := Build("caldot1", SetSpec{Clips: 1, ClipSeconds: 1}, 1)
	if !cal.FixedCamera {
		t.Error("caldot1 must be a fixed camera")
	}
}

func TestClipTruthAccess(t *testing.T) {
	in, err := Build("jackson", SetSpec{Clips: 1, ClipSeconds: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ct := in.Test[0]
	total := 0
	for f := 0; f < ct.Clip.Len(); f++ {
		total += len(ct.Truth(f))
	}
	if total == 0 {
		t.Error("no ground truth objects in a 4-second jackson clip")
	}
}
