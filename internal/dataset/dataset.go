// Package dataset defines the seven simulated video datasets used in the
// evaluation, mirroring the paper's benchmark: Caldot1 and Caldot2 (highway
// cameras), Tokyo and Warsaw (busy traffic junctions), UAV (aerial drone),
// Amsterdam (riverside plaza) and Jackson (town junction). Each dataset is
// a scene configuration (lane network, spawn rates, object sizes, render
// realism) from which training, validation and test sets of clips are
// sampled, exactly as in the paper's workflow (§3.1): the sets are disjoint
// by construction because every clip is an independent seeded world.
package dataset

import (
	"fmt"
	"sort"

	"otif/internal/geom"
	"otif/internal/video"
	"otif/internal/vidsim"
)

// ClipTruth pairs a video clip with the simulated world that produced it,
// giving oracle access to ground truth.
type ClipTruth struct {
	Clip  *video.Clip
	World *vidsim.World
}

// Truth returns ground truth for frame idx of the clip.
func (c *ClipTruth) Truth(idx int) []vidsim.GroundTruth { return c.World.VisibleAt(idx) }

// SetSpec controls how large the sampled clip sets are. The paper uses 60
// one-minute clips per set; tests and benchmarks use smaller sets and the
// harness scales reported runtimes to paper-sized sets via EquivScale.
type SetSpec struct {
	Clips       int     // clips per set
	ClipSeconds float64 // duration of each clip
}

// PaperSpec is the set size used in the paper (60 one-minute clips).
var PaperSpec = SetSpec{Clips: 60, ClipSeconds: 60}

// DefaultSpec is the scaled-down set size used by the benchmark harness.
var DefaultSpec = SetSpec{Clips: 8, ClipSeconds: 8}

// EquivScale returns the factor that converts a runtime over one set under
// this spec into the equivalent runtime over a paper-sized one-hour set.
func (s SetSpec) EquivScale() float64 {
	return PaperSpec.ClipSeconds * float64(PaperSpec.Clips) / (s.ClipSeconds * float64(s.Clips))
}

// Instance is a fully sampled dataset: configuration plus the three clip
// sets.
type Instance struct {
	Name        string
	Cfg         vidsim.Config
	FixedCamera bool // whether endpoint refinement applies (§3.4)
	Spec        SetSpec
	Train       []*ClipTruth
	Val         []*ClipTruth
	Test        []*ClipTruth

	// seed is the sampling seed Build was called with, retained so Camera
	// can derive clip seeds disjoint from the train/val/test ranges.
	seed int64
}

// Camera returns a deterministic, unbounded clip generator simulating one
// live camera pointed at the dataset's scene: clip i is an independently
// seeded world of clipSeconds duration (the instance's spec duration when
// clipSeconds <= 0). Camera feeds are the input side of streaming ingest —
// footage that keeps arriving rather than a fixed sampled set. Seeds are
// disjoint from the train/val/test ranges and between cameras (for
// i < 1000 clips per camera), so streamed clips never replay training
// footage, and the same (cam, i) always yields bit-identical frames —
// which is what makes streamed extraction reproducible and testable.
func (in *Instance) Camera(cam int, clipSeconds float64) func(i int) *ClipTruth {
	if clipSeconds <= 0 {
		clipSeconds = in.Spec.ClipSeconds
	}
	// Train/val/test occupy seed*1000 + {100, 200, 300} + i with
	// i < Spec.Clips; cameras start at +1000 with a 1000-clip stride.
	base := in.seed*1000 + 1000 + int64(cam)*1000
	cfg := in.Cfg
	return func(i int) *ClipTruth {
		w := vidsim.NewWorld(cfg, clipSeconds, base+int64(i))
		return &ClipTruth{
			Clip:  &video.Clip{ID: i, Source: video.NewCachedSource(&vidsim.Source{World: w})},
			World: w,
		}
	}
}

// LaneNames returns the distinct lane (movement) names of the dataset in
// sorted order; path breakdown queries report one count per name.
func (in *Instance) LaneNames() []string {
	seen := map[string]bool{}
	for _, l := range in.Cfg.Lanes {
		seen[l.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Names lists the seven datasets in the paper's order.
func Names() []string {
	return []string{"caldot1", "caldot2", "tokyo", "uav", "warsaw", "amsterdam", "jackson"}
}

// Build samples a dataset instance by name with the given set spec. The
// seed determines all clip content; train/val/test use disjoint seed
// ranges.
func Build(name string, spec SetSpec, seed int64) (*Instance, error) {
	cfg, fixed, err := configFor(name)
	if err != nil {
		return nil, err
	}
	in := &Instance{Name: name, Cfg: cfg, FixedCamera: fixed, Spec: spec, seed: seed}
	in.Train = sampleSet(cfg, spec, seed*1000+100)
	in.Val = sampleSet(cfg, spec, seed*1000+200)
	in.Test = sampleSet(cfg, spec, seed*1000+300)
	return in, nil
}

func sampleSet(cfg vidsim.Config, spec SetSpec, seedBase int64) []*ClipTruth {
	out := make([]*ClipTruth, spec.Clips)
	for i := 0; i < spec.Clips; i++ {
		w := vidsim.NewWorld(cfg, spec.ClipSeconds, seedBase+int64(i))
		out[i] = &ClipTruth{
			Clip:  &video.Clip{ID: i, Source: video.NewCachedSource(&vidsim.Source{World: w})},
			World: w,
		}
	}
	return out
}

func configFor(name string) (vidsim.Config, bool, error) {
	cfg, fixed, err := baseConfigFor(name)
	if err != nil {
		return cfg, fixed, err
	}
	// The background is a property of the camera: every clip of a dataset
	// shares it, so detectors' background models transfer across clips.
	var bgSeed int64
	for _, r := range name {
		bgSeed = bgSeed*131 + int64(r)
	}
	cfg.BGSeed = bgSeed
	return cfg, fixed, nil
}

func baseConfigFor(name string) (vidsim.Config, bool, error) {
	switch name {
	case "caldot1":
		return caldotConfig(0.22, 52, 26), true, nil
	case "caldot2":
		return caldotConfig(0.35, 48, 24), true, nil
	case "tokyo":
		return junctionConfig(1280, 720, 25, 0.30, 10), true, nil
	case "uav":
		return uavConfig(), false, nil
	case "warsaw":
		return junctionConfig(1280, 720, 25, 0.40, 8), true, nil
	case "amsterdam":
		return plazaConfig(), true, nil
	case "jackson":
		return jacksonConfig(), true, nil
	default:
		return vidsim.Config{}, false, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// pt is shorthand for building lane paths.
func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

// caldotConfig models the California DOT highway cameras: 720x480 nominal,
// 15 fps, four horizontal highway lanes crossing the full frame. Objects
// are spread across the frame width, so the segmentation proxy model can
// rarely carve out empty regions — matching the paper's finding that the
// proxy helps little on Caldot1 (Table 4).
func caldotConfig(rate, carW, carH float64) vidsim.Config {
	_ = carH
	cfg := vidsim.Config{
		NomW: 720, NomH: 480, SimW: 240, SimH: 160, FPS: 15,
		Sizes: map[vidsim.Category]vidsim.SizeSpec{
			vidsim.Car: {W: carW, H: carW / 2, Jitter: 0.25},
			vidsim.Bus: {W: carW * 1.9, H: carW * 0.75, Jitter: 0.15},
		},
		NoiseStd: 5, FlickerAmp: 3, BGLow: 95, BGHigh: 150,
		ObjContrast: 65, ContrastJit: 0.45,
		HardBrakeProb: 0.06,
	}
	mix := []vidsim.CategoryWeight{{Cat: vidsim.Car, Weight: 0.92}, {Cat: vidsim.Bus, Weight: 0.08}}
	laneY := []float64{170, 215, 265, 310}
	for i, y := range laneY {
		dir := "E->W"
		path := geom.Path{pt(760, y), pt(-40, y)}
		if i >= 2 {
			dir = "W->E"
			path = geom.Path{pt(-40, y), pt(760, y)}
		}
		cfg.Lanes = append(cfg.Lanes, vidsim.Lane{
			Name: dir, Path: path, SpawnRate: rate,
			SpeedMin: 180, SpeedMax: 300, Mix: mix,
		})
	}
	return cfg
}

// junctionConfig models a busy city traffic junction (Tokyo, Warsaw):
// 1280x720 nominal, 25 fps, with movements turning through a central
// junction. Activity is concentrated around the junction center, leaving
// the frame margins mostly empty — which is where the segmentation proxy
// model earns its speedup (Table 4: 1.5x on Warsaw).
func junctionConfig(w, h, fps int, rate float64, movements int) vidsim.Config {
	cfg := vidsim.Config{
		NomW: w, NomH: h, SimW: 320, SimH: 180, FPS: fps,
		Sizes: map[vidsim.Category]vidsim.SizeSpec{
			vidsim.Car:        {W: 78, H: 40, Jitter: 0.25},
			vidsim.Bus:        {W: 150, H: 60, Jitter: 0.15},
			vidsim.Pedestrian: {W: 22, H: 44, Jitter: 0.3},
		},
		NoiseStd: 5, FlickerAmp: 3, BGLow: 90, BGHigh: 155,
		ObjContrast: 60, ContrastJit: 0.45,
		HardBrakeProb: 0.05,
		Occluders:     []geom.Rect{{X: float64(w)*0.46 - 40, Y: 60, W: 70, H: 55}},
	}
	cx, cy := float64(w)/2, float64(h)/2
	// Approach roads meet in the center occupying the middle ~45% of the
	// frame; margins stay empty.
	n, s := pt(cx, float64(h)*0.16), pt(cx, float64(h)*0.84)
	e, wp := pt(float64(w)*0.78, cy), pt(float64(w)*0.22, cy)
	c := pt(cx, cy)
	all := []vidsim.Lane{
		{Name: "N->S", Path: geom.Path{n, c, s}},
		{Name: "S->N", Path: geom.Path{s, c, n}},
		{Name: "E->W", Path: geom.Path{e, c, wp}},
		{Name: "W->E", Path: geom.Path{wp, c, e}},
		{Name: "N->E", Path: geom.Path{n, c, e}},
		{Name: "N->W", Path: geom.Path{n, c, wp}},
		{Name: "S->E", Path: geom.Path{s, c, e}},
		{Name: "S->W", Path: geom.Path{s, c, wp}},
		{Name: "E->N", Path: geom.Path{e, c, n}},
		{Name: "W->S", Path: geom.Path{wp, c, s}},
	}
	if movements > len(all) {
		movements = len(all)
	}
	mix := []vidsim.CategoryWeight{{Cat: vidsim.Car, Weight: 0.88}, {Cat: vidsim.Bus, Weight: 0.12}}
	for i := 0; i < movements; i++ {
		l := all[i]
		l.SpawnRate = rate
		l.SpeedMin, l.SpeedMax = 140, 260
		l.Mix = mix
		cfg.Lanes = append(cfg.Lanes, l)
	}
	return cfg
}

// uavConfig models the aerial drone dataset: 1280x720 nominal at only
// 5 fps, with small objects on diagonal tracks. The camera is not fixed,
// so endpoint refinement does not apply (§3.4).
func uavConfig() vidsim.Config {
	cfg := vidsim.Config{
		NomW: 1280, NomH: 720, SimW: 320, SimH: 180, FPS: 5,
		Sizes: map[vidsim.Category]vidsim.SizeSpec{
			vidsim.Car: {W: 42, H: 24, Jitter: 0.3},
		},
		NoiseStd: 6, FlickerAmp: 4, BGLow: 85, BGHigh: 160,
		ObjContrast: 55, ContrastJit: 0.5,
		HardBrakeProb: 0.04,
	}
	paths := []struct {
		name string
		path geom.Path
	}{
		{"NW->SE", geom.Path{pt(-30, 100), pt(640, 360), pt(1310, 650)}},
		{"SE->NW", geom.Path{pt(1310, 650), pt(640, 360), pt(-30, 100)}},
		{"SW->NE", geom.Path{pt(-30, 620), pt(640, 380), pt(1310, 90)}},
		{"NE->SW", geom.Path{pt(1310, 90), pt(640, 380), pt(-30, 620)}},
	}
	for _, p := range paths {
		cfg.Lanes = append(cfg.Lanes, vidsim.Lane{
			Name: p.name, Path: p.path, SpawnRate: 0.18,
			SpeedMin: 100, SpeedMax: 220,
		})
	}
	return cfg
}

// plazaConfig models the Amsterdam riverside plaza: 1280x720 at 30 fps,
// mixed pedestrians and cars at moderate density, used for track count
// queries.
func plazaConfig() vidsim.Config {
	cfg := vidsim.Config{
		NomW: 1280, NomH: 720, SimW: 320, SimH: 180, FPS: 30,
		Sizes: map[vidsim.Category]vidsim.SizeSpec{
			vidsim.Car:        {W: 85, H: 44, Jitter: 0.25},
			vidsim.Pedestrian: {W: 24, H: 48, Jitter: 0.3},
		},
		NoiseStd: 5, FlickerAmp: 3, BGLow: 95, BGHigh: 150,
		ObjContrast: 60, ContrastJit: 0.4,
		HardBrakeProb: 0.03,
	}
	carMix := []vidsim.CategoryWeight{{Cat: vidsim.Car, Weight: 1}}
	pedMix := []vidsim.CategoryWeight{{Cat: vidsim.Pedestrian, Weight: 1}}
	cfg.Lanes = []vidsim.Lane{
		{Name: "quay-E", Path: geom.Path{pt(-40, 560), pt(1320, 540)}, SpawnRate: 0.16, SpeedMin: 120, SpeedMax: 220, Mix: carMix},
		{Name: "quay-W", Path: geom.Path{pt(1320, 610), pt(-40, 630)}, SpawnRate: 0.16, SpeedMin: 120, SpeedMax: 220, Mix: carMix},
		{Name: "walk-1", Path: geom.Path{pt(-20, 300), pt(640, 340), pt(1300, 290)}, SpawnRate: 0.12, SpeedMin: 35, SpeedMax: 75, Mix: pedMix},
		{Name: "walk-2", Path: geom.Path{pt(500, 740), pt(520, 200)}, SpawnRate: 0.10, SpeedMin: 35, SpeedMax: 75, Mix: pedMix},
	}
	return cfg
}

// jacksonConfig models the Jackson town junction: 1280x720 at 30 fps with
// a simple two-road crossing, used for track count queries.
func jacksonConfig() vidsim.Config {
	cfg := vidsim.Config{
		NomW: 1280, NomH: 720, SimW: 320, SimH: 180, FPS: 30,
		Sizes: map[vidsim.Category]vidsim.SizeSpec{
			vidsim.Car: {W: 80, H: 42, Jitter: 0.25},
			vidsim.Bus: {W: 155, H: 62, Jitter: 0.15},
		},
		NoiseStd: 5, FlickerAmp: 3, BGLow: 92, BGHigh: 152,
		ObjContrast: 62, ContrastJit: 0.45,
		HardBrakeProb: 0.05,
	}
	mix := []vidsim.CategoryWeight{{Cat: vidsim.Car, Weight: 0.9}, {Cat: vidsim.Bus, Weight: 0.1}}
	cfg.Lanes = []vidsim.Lane{
		{Name: "E->W", Path: geom.Path{pt(1320, 330), pt(-40, 350)}, SpawnRate: 0.25, SpeedMin: 150, SpeedMax: 270, Mix: mix},
		{Name: "W->E", Path: geom.Path{pt(-40, 420), pt(1320, 400)}, SpawnRate: 0.25, SpeedMin: 150, SpeedMax: 270, Mix: mix},
		{Name: "N->S", Path: geom.Path{pt(660, -30), pt(640, 750)}, SpawnRate: 0.12, SpeedMin: 130, SpeedMax: 240, Mix: mix},
	}
	return cfg
}
