package bench

import (
	"io"

	"otif/internal/costmodel"
)

// ValidateResult reports the §4.6 implementation sanity check: the
// throughput of our BlazeIt proxy implementation on a 33-hour video
// stream, compared with the ~100 seconds the BlazeIt authors report for
// their proxy pass on the Taipei dataset.
type ValidateResult struct {
	Hours          float64
	ProxySeconds   float64 // proxy inference only (authors exclude decode)
	WithDecode     float64
	PaperReference float64
}

// Validate regenerates the §4.6 comparison analytically from the cost
// model: a 33-hour 30 fps stream through the 64x64 proxy.
func (s *Suite) Validate(w io.Writer) ValidateResult {
	const (
		hours = 33
		fps   = 30
	)
	frames := float64(hours * 3600 * fps)
	proxySec := frames * costmodel.ProxyCost(64, 64)
	decodeSec := frames * costmodel.DecodeCost(64, 64)
	res := ValidateResult{
		Hours:          hours,
		ProxySeconds:   proxySec,
		WithDecode:     proxySec + decodeSec,
		PaperReference: 100,
	}
	fprintf(w, "Implementation validation (§4.6): BlazeIt proxy over a %v-hour stream\n", hours)
	fprintf(w, "  proxy inference only: %.0f s (authors report ~%.0f s; ours %.0f s at 85 s measured in §4.6)\n",
		res.ProxySeconds, res.PaperReference, res.ProxySeconds)
	fprintf(w, "  including decode:     %.0f s\n", res.WithDecode)
	return res
}
