package bench

import (
	"fmt"
	"io"

	"otif/internal/baselines"
	"otif/internal/geom"
	"otif/internal/parallel"
	"otif/internal/query"
	"otif/internal/tuner"
)

// Table3Result aggregates the frame-level limit query comparison (Table 3):
// per-method average pre-processing, query, and total time, plus accuracy,
// for one and five queries.
type Table3Result struct {
	PreprocessTime map[string]float64
	QueryTime      map[string]float64
	Accuracy       map[string]float64
	DetectorApps   map[string]float64
}

// frameQueryDatasets lists Table 3's six (dataset, query-type) pairs:
// count queries on UAV and Tokyo, region queries on Jackson and Caldot1,
// hot spot queries on Warsaw and Amsterdam (§4.2).
var frameQueryDatasets = []struct {
	ds   string
	kind string
}{
	{"uav", "count"},
	{"tokyo", "count"},
	{"jackson", "region"},
	{"caldot1", "region"},
	{"warsaw", "hotspot"},
	{"amsterdam", "hotspot"},
}

// buildFrameQuery constructs the query for one dataset, choosing N so the
// predicate is selective but satisfiable (the paper sets parameters so
// fewer than 250 five-second segments match).
func buildFrameQuery(t *trained, kind string) baselines.FrameQuery {
	nomW := float64(t.Sys.DS.Cfg.NomW)
	nomH := float64(t.Sys.DS.Cfg.NomH)
	q := baselines.FrameQuery{
		Name:      kind,
		Category:  "car",
		Limit:     8,
		MinSepSec: 5,
	}
	makePred := func(n int) query.FramePredicate {
		switch kind {
		case "region":
			region := geom.Polygon{
				{X: nomW * 0.25, Y: nomH * 0.25},
				{X: nomW * 0.75, Y: nomH * 0.25},
				{X: nomW * 0.75, Y: nomH * 0.75},
				{X: nomW * 0.25, Y: nomH * 0.75},
			}
			return query.RegionPredicate{Region: region, N: n}
		case "hotspot":
			return query.HotSpotPredicate{Radius: nomW * 0.18, N: n}
		default:
			return query.CountPredicate{N: n}
		}
	}
	// Choose the largest N with at least Limit ground-truth matching
	// frames on the validation set.
	clips := t.Sys.DS.Val
	for n := 6; n >= 1; n-- {
		q.Pred = makePred(n)
		matches := 0
		for _, ct := range clips {
			for f := 0; f < ct.Clip.Len(); f += 3 {
				if baselines.TruthSatisfies(ct, q, f) {
					matches++
				}
			}
		}
		if matches >= q.Limit*3 {
			return q
		}
	}
	q.Pred = makePred(1)
	return q
}

// Table3 regenerates Table 3: OTIF vs BlazeIt vs TASTI on the six
// frame-level limit queries, averaged. Runtimes are scaled to paper-sized
// sets. nQueries drives the five-query estimate (BlazeIt repeats its
// query-specific proxy pass; TASTI reuses embeddings; OTIF reuses tracks).
func (s *Suite) Table3(w io.Writer, datasets []string) (*Table3Result, error) {
	pairs := frameQueryDatasets
	if len(datasets) > 0 {
		var filtered []struct{ ds, kind string }
		for _, p := range pairs {
			for _, d := range datasets {
				if p.ds == d {
					filtered = append(filtered, struct{ ds, kind string }{p.ds, p.kind})
				}
			}
		}
		pairs = nil
		for _, f := range filtered {
			pairs = append(pairs, struct {
				ds   string
				kind string
			}{f.ds, f.kind})
		}
	}
	scale := s.EquivScale()
	res := &Table3Result{
		PreprocessTime: map[string]float64{},
		QueryTime:      map[string]float64{},
		Accuracy:       map[string]float64{},
		DetectorApps:   map[string]float64{},
	}
	// Each pair trains and queries its own dataset, so the pairs fan out
	// on the worker pool; accumulation and printing stay serial, in pair
	// order, so averages are bit-for-bit identical at any worker count.
	type pairResult struct {
		q          baselines.FrameQuery
		ro, rb, rt baselines.FrameLevelResult
		err        error
	}
	perPair := parallel.Map(len(pairs), func(i int) pairResult {
		pair := pairs[i]
		t, err := s.System(pair.ds)
		if err != nil {
			return pairResult{err: err}
		}
		q := buildFrameQuery(t, pair.kind)
		clips := t.Sys.DS.Test

		// OTIF: pre-process with the same configuration Table 2 selects —
		// the fastest test-curve point within the accuracy band (§4.2 uses
		// "the same configurations as the ones from Table 2").
		pt, ok := tuner.FastestWithin(testPointsOTIF(t), Table2Tol)
		if !ok {
			return pairResult{err: fmt.Errorf("bench: no tuned configuration for %s", pair.ds)}
		}
		otif := baselines.NewOTIFFrames(pt.Cfg)
		ro := otif.RunFrameQuery(t.Sys, q, clips)

		blaze := baselines.NewBlazeIt()
		rb := blaze.RunFrameQuery(t.Sys, q, clips)

		tasti := baselines.NewTASTI()
		rt := tasti.RunFrameQuery(t.Sys, q, clips, nil, 0)
		return pairResult{q: q, ro: ro, rb: rb, rt: rt}
	})
	n := 0
	for i, pair := range pairs {
		pr := perPair[i]
		if pr.err != nil {
			return nil, pr.err
		}
		accumulate(res, "OTIF", pr.ro)
		accumulate(res, "BlazeIt", pr.rb)
		accumulate(res, "TASTI", pr.rt)

		fprintf(w, "[%s %s] N-query=%v  OTIF(pre=%.0f q=%.2f acc=%.2f)  BlazeIt(pre=%.0f q=%.1f acc=%.2f apps=%d)  TASTI(pre=%.0f q=%.1f acc=%.2f apps=%d)\n",
			pair.ds, pair.kind, pr.q.Name,
			pr.ro.PreprocessTime*scale, pr.ro.QueryTime*scale, pr.ro.Accuracy,
			pr.rb.PreprocessTime*scale, pr.rb.QueryTime*scale, pr.rb.Accuracy, pr.rb.DetectorApps,
			pr.rt.PreprocessTime*scale, pr.rt.QueryTime*scale, pr.rt.Accuracy, pr.rt.DetectorApps)
		n++
	}
	if n == 0 {
		return res, nil
	}
	for _, m := range []string{"OTIF", "BlazeIt", "TASTI"} {
		res.PreprocessTime[m] = res.PreprocessTime[m] / float64(n) * scale
		res.QueryTime[m] = res.QueryTime[m] / float64(n) * scale
		res.Accuracy[m] /= float64(n)
		res.DetectorApps[m] /= float64(n)
	}

	fprintf(w, "\nTable 3 (averages over %d queries, scaled seconds):\n", n)
	fprintf(w, "%-28s %8s %8s %8s\n", "", "OTIF", "BlazeIt", "TASTI")
	fprintf(w, "%-28s %8.0f %8.0f %8.0f\n", "Avg pre-processing time", res.PreprocessTime["OTIF"], res.PreprocessTime["BlazeIt"], res.PreprocessTime["TASTI"])
	fprintf(w, "%-28s %8.2f %8.1f %8.1f\n", "Avg query time", res.QueryTime["OTIF"], res.QueryTime["BlazeIt"], res.QueryTime["TASTI"])
	one := func(m string, pre float64) float64 { return pre + res.QueryTime[m] }
	fprintf(w, "%-28s %8.0f %8.0f %8.0f\n", "Avg total time (1 query)",
		one("OTIF", res.PreprocessTime["OTIF"]),
		one("BlazeIt", res.PreprocessTime["BlazeIt"]),
		one("TASTI", res.PreprocessTime["TASTI"]))
	// Five queries: BlazeIt's proxy pass is query-specific and repeats;
	// OTIF's tracks and TASTI's embeddings are reusable.
	fprintf(w, "%-28s %8.0f %8.0f %8.0f\n", "Avg total time (5 queries)",
		res.PreprocessTime["OTIF"]+5*res.QueryTime["OTIF"],
		5*(res.PreprocessTime["BlazeIt"]+res.QueryTime["BlazeIt"]),
		res.PreprocessTime["TASTI"]+5*res.QueryTime["TASTI"])
	fprintf(w, "%-28s %7.0f%% %7.0f%% %7.0f%%\n", "Avg accuracy",
		res.Accuracy["OTIF"]*100, res.Accuracy["BlazeIt"]*100, res.Accuracy["TASTI"]*100)
	fprintf(w, "%-28s %8.0f %8.0f %8.0f\n", "Avg detector applications",
		res.DetectorApps["OTIF"], res.DetectorApps["BlazeIt"], res.DetectorApps["TASTI"])
	return res, nil
}

func accumulate(res *Table3Result, m string, r baselines.FrameLevelResult) {
	res.PreprocessTime[m] += r.PreprocessTime
	res.QueryTime[m] += r.QueryTime
	res.Accuracy[m] += r.Accuracy
	res.DetectorApps[m] += float64(r.DetectorApps)
}
