package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"otif/internal/obs"
	"otif/internal/tuner"
	"otif/internal/video"
)

// This file implements `benchtables -metrics`: a per-stage cost breakdown
// of one test-set extraction next to a BENCH-style JSON record. The
// breakdown comes from the observability registry, whose per-stage cost
// counters are charged once per RunSet in sorted category order — so the
// summed breakdown reproduces the extraction's simulated Runtime
// bit-for-bit (asserted below and surfaced in the output).

// MetricsReport is the machine-readable half of the -metrics output.
type MetricsReport struct {
	Dataset string `json:"dataset"`
	Clips   int    `json:"clips"`
	// Config is the selected execution configuration (fastest within 5%
	// of the curve's best accuracy, the Table 2 rule).
	Config string `json:"config"`
	// Runtime is the extraction's simulated cost; CostTotal is the sum of
	// the per-stage registry counters. Exact reports Runtime == CostTotal
	// bit-for-bit.
	Runtime   float64            `json:"runtime"`
	CostTotal float64            `json:"cost_total"`
	Exact     bool               `json:"exact"`
	Stages    map[string]float64 `json:"stages"`
	Counters  map[string]int64   `json:"counters"`
	Cache     PerfCacheStats     `json:"cache"`
}

// Metrics trains the dataset (memoized), extracts the test set under the
// fastest-within-5% configuration with the metrics registry bracketing
// exactly that run, and writes the per-stage cost breakdown as text plus a
// BENCH-style JSON record.
func (s *Suite) Metrics(w io.Writer, name string) error {
	t, err := s.System(name)
	if err != nil {
		return err
	}
	pick, ok := tuner.FastestWithin(t.Curve, 0.05)
	if !ok {
		return fmt.Errorf("bench: empty tuning curve for %s", name)
	}

	// Bracket one RunSet between Reset and Snapshot: the snapshot then
	// holds exactly this extraction's costs and counters.
	obs.Default.Reset()
	res := t.Sys.RunSet(pick.Cfg, t.Sys.DS.Test)
	snap := obs.Default.Snapshot()

	total := snap.CostTotal()
	exact := total == res.Runtime
	cs := video.GlobalCacheStats()

	fprintf(w, "per-stage cost breakdown: %s, %d test clips, cfg %v\n",
		name, len(t.Sys.DS.Test), pick.Cfg)
	keys := make([]string, 0, len(snap.Costs))
	for k := range snap.Costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := snap.Costs[k]
		fprintf(w, "  %-24s %12.4fs  %5.1f%%\n", k, v, 100*v/total)
	}
	fprintf(w, "  %-24s %12.4fs\n", "total", total)
	fprintf(w, "  runtime %.6fs, breakdown sum %.6fs, exact match: %v\n",
		res.Runtime, total, exact)
	fprintf(w, "  cache: %d hits, %d misses, hit rate %.3f\n",
		cs.Hits, cs.Misses, cs.HitRate())
	if !exact {
		return fmt.Errorf("bench: breakdown sum %v != runtime %v", total, res.Runtime)
	}

	rep := MetricsReport{
		Dataset:   name,
		Clips:     len(t.Sys.DS.Test),
		Config:    fmt.Sprintf("%v", pick.Cfg),
		Runtime:   res.Runtime,
		CostTotal: total,
		Exact:     exact,
		Stages:    snap.Costs,
		Counters:  snap.Counters,
		Cache: PerfCacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRate:   cs.HitRate(),
		},
	}
	fprintf(w, "BENCH ")
	enc := json.NewEncoder(w)
	if err := enc.Encode(&rep); err != nil {
		return fmt.Errorf("bench: writing metrics report: %w", err)
	}
	return nil
}
