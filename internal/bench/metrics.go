package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"otif/internal/obs"
	"otif/internal/tuner"
	"otif/internal/video"
)

// This file implements `benchtables -metrics`: a per-stage cost breakdown
// of one test-set extraction next to a BENCH-style JSON record. The
// breakdown comes from the observability registry, whose per-stage cost
// counters are charged once per RunSet in sorted category order — so the
// summed breakdown reproduces the extraction's simulated Runtime
// bit-for-bit (asserted below and surfaced in the output).

// MetricsReport is the machine-readable half of the -metrics output.
type MetricsReport struct {
	Dataset string `json:"dataset"`
	Clips   int    `json:"clips"`
	// Config is the selected execution configuration (fastest within 5%
	// of the curve's best accuracy, the Table 2 rule).
	Config string `json:"config"`
	// Runtime is the extraction's simulated cost; CostTotal is the sum of
	// the per-stage registry counters. Exact reports Runtime == CostTotal
	// bit-for-bit.
	Runtime   float64            `json:"runtime"`
	CostTotal float64            `json:"cost_total"`
	Exact     bool               `json:"exact"`
	Stages    map[string]float64 `json:"stages"`
	Counters  map[string]int64   `json:"counters"`
	Cache     PerfCacheStats     `json:"cache"`
}

// MetricsReportFor trains the dataset (memoized), extracts the test set
// under the fastest-within-5% configuration with the metrics registry
// bracketing exactly that run, and returns the per-stage report. The
// report's Exact flag asserts Runtime == CostTotal bit-for-bit; callers
// surface a mismatch as an error.
func (s *Suite) MetricsReportFor(name string) (*MetricsReport, error) {
	t, err := s.System(name)
	if err != nil {
		return nil, err
	}
	pick, ok := tuner.FastestWithin(t.Curve, 0.05)
	if !ok {
		return nil, fmt.Errorf("bench: empty tuning curve for %s", name)
	}

	// Bracket one RunSet between Reset and Snapshot: the snapshot then
	// holds exactly this extraction's costs and counters.
	obs.Default.Reset()
	res := t.Sys.RunSet(pick.Cfg, t.Sys.DS.Test)
	snap := obs.Default.Snapshot()

	total := snap.CostTotal()
	cs := video.GlobalCacheStats()
	return &MetricsReport{
		Dataset:   name,
		Clips:     len(t.Sys.DS.Test),
		Config:    fmt.Sprintf("%v", pick.Cfg),
		Runtime:   res.Runtime,
		CostTotal: total,
		Exact:     total == res.Runtime,
		Stages:    snap.Costs,
		Counters:  snap.Counters,
		Cache: PerfCacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRate:   cs.HitRate(),
		},
	}, nil
}

// WriteMetricsJSON writes the dataset's metrics report as indented JSON
// (the `benchtables -metrics-out` payload). JSON float64 round-trips
// exactly, so the decoded file's stage sum still equals the BENCH
// Runtime bit-for-bit (asserted in TestMetricsOutStageSumMatchesRuntime).
func (s *Suite) WriteMetricsJSON(w io.Writer, name string) error {
	rep, err := s.MetricsReportFor(name)
	if err != nil {
		return err
	}
	if !rep.Exact {
		return fmt.Errorf("bench: breakdown sum %v != runtime %v", rep.CostTotal, rep.Runtime)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("bench: writing metrics report: %w", err)
	}
	return nil
}

// Metrics writes the per-stage cost breakdown as text plus a BENCH-style
// JSON record (`benchtables -metrics`).
func (s *Suite) Metrics(w io.Writer, name string) error {
	rep, err := s.MetricsReportFor(name)
	if err != nil {
		return err
	}
	fprintf(w, "per-stage cost breakdown: %s, %d test clips, cfg %s\n",
		rep.Dataset, rep.Clips, rep.Config)
	keys := make([]string, 0, len(rep.Stages))
	for k := range rep.Stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := rep.Stages[k]
		fprintf(w, "  %-24s %12.4fs  %5.1f%%\n", k, v, 100*v/rep.CostTotal)
	}
	fprintf(w, "  %-24s %12.4fs\n", "total", rep.CostTotal)
	fprintf(w, "  runtime %.6fs, breakdown sum %.6fs, exact match: %v\n",
		rep.Runtime, rep.CostTotal, rep.Exact)
	fprintf(w, "  cache: %d hits, %d misses, hit rate %.3f\n",
		rep.Cache.Hits, rep.Cache.Misses, rep.Cache.HitRate)
	if !rep.Exact {
		return fmt.Errorf("bench: breakdown sum %v != runtime %v", rep.CostTotal, rep.Runtime)
	}
	fprintf(w, "BENCH ")
	enc := json.NewEncoder(w)
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("bench: writing metrics report: %w", err)
	}
	return nil
}
