package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"otif/internal/dataset"
)

// TestMetricsOutStageSumMatchesRuntime exercises the `benchtables
// -metrics-out` path end to end: write the report to a file, decode it
// back, and require the decoded per-stage costs — summed in sorted key
// order, the accountant's fold order — to equal the decoded Runtime
// bit-for-bit. encoding/json emits the shortest float64 form that
// round-trips, so the file carries the exact bits.
func TestMetricsOutStageSumMatchesRuntime(t *testing.T) {
	s := NewSuite(dataset.SetSpec{Clips: 2, ClipSeconds: 4}, 7)
	path := filepath.Join(t.TempDir(), "metrics.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteMetricsJSON(f, "caldot1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep MetricsReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
	if !rep.Exact {
		t.Error("report not marked exact")
	}
	if len(rep.Stages) == 0 {
		t.Fatal("report has no stages")
	}
	keys := make([]string, 0, len(rep.Stages))
	for k := range rep.Stages {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += rep.Stages[k]
	}
	if sum != rep.Runtime {
		t.Errorf("file stage sum %v != runtime %v (diff %g)", sum, rep.Runtime, sum-rep.Runtime)
	}
	if rep.CostTotal != rep.Runtime {
		t.Errorf("file cost_total %v != runtime %v", rep.CostTotal, rep.Runtime)
	}
}
