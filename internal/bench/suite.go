// Package bench is the benchmark harness that regenerates every table and
// figure in the paper's evaluation (§4): Table 2 and Figure 5 (object
// track queries against Miris, Chameleon, NoScope, CaTDet, CenterTrack),
// Table 3 (frame-level limit queries against BlazeIt and TASTI), Figure 6
// (cost breakdown), Table 4 (ablation study), Figure 7 (segmentation proxy
// model analysis), and the §4.6 implementation validation. The same
// harness backs cmd/benchtables and the testing.B benchmarks at the module
// root.
//
// Runtimes are simulated V100/Xeon seconds from the cost model, scaled by
// SetSpec.EquivScale to paper-sized one-hour sets; the harness checks the
// paper's qualitative shape (who wins and by roughly what factor), not the
// absolute numbers.
package bench

import (
	"fmt"
	"io"

	"otif/internal/baselines"
	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/parallel"
	"otif/internal/tuner"
)

// Suite lazily builds and memoizes trained pipelines per dataset so tables
// that share a dataset do not retrain.
//
// Memoization is per-dataset singleflight through parallel.Group (the
// generalization of the entry-map-plus-sync.Once idiom this suite first
// grew): concurrent callers asking for different datasets train them in
// parallel while concurrent callers asking for the same dataset share one
// training run, and completed results stay memoized.
type Suite struct {
	Spec dataset.SetSpec
	Seed int64

	systems parallel.Group[string, *trained]
	curves  parallel.Group[string, []MethodCurve]
}

// trained is a fully trained system plus its OTIF tuning curve.
type trained struct {
	Sys    *core.System
	Metric core.Metric
	Curve  []tuner.Point // validation curve
}

// NewSuite creates a harness with the given set sizes.
func NewSuite(spec dataset.SetSpec, seed int64) *Suite {
	return &Suite{Spec: spec, Seed: seed}
}

// System returns the trained system (and OTIF curve) for a dataset,
// training it on first use. Concurrent calls for the same dataset share
// one training run; calls for different datasets do not block each other.
func (s *Suite) System(name string) (*trained, error) {
	t, err, _ := s.systems.Do(name, func() (*trained, error) {
		ds, err := dataset.Build(name, s.Spec, s.Seed)
		if err != nil {
			return nil, err
		}
		sys := core.NewSystem(ds)
		metric := core.MetricFor(ds)
		best, _ := tuner.SelectBest(sys, metric)
		sys.FinishTraining(best, 42)
		curve := tuner.Tune(sys, metric, tuner.DefaultOptions())
		return &trained{Sys: sys, Metric: metric, Curve: curve}, nil
	})
	return t, err
}

// EquivScale converts set runtimes to paper-sized one-hour equivalents.
func (s *Suite) EquivScale() float64 { return s.Spec.EquivScale() }

// MethodCurve is one method's speed-accuracy curve on the test set.
type MethodCurve struct {
	Method string
	Points []tuner.Point
	// QueryFraction is the per-query repeated fraction (1 for Miris).
	QueryFraction float64
}

// testPoint re-evaluates one validation-chosen configuration on the test
// set.
func testPointsOTIF(t *trained) []tuner.Point {
	pts := make([]tuner.Point, 0, len(t.Curve))
	for _, p := range t.Curve {
		res := t.Sys.RunSet(p.Cfg, t.Sys.DS.Test)
		pts = append(pts, tuner.Point{
			Cfg:      p.Cfg,
			Runtime:  res.Runtime,
			Accuracy: t.Metric.Accuracy(res.PerClip, t.Sys.DS.Test),
		})
	}
	return pts
}

// TrackCurves runs OTIF and all track-query baselines on one dataset,
// returning test-set speed-accuracy curves (Figure 5 data). Results are
// memoized: Table 2 and Figure 5 share one evaluation.
func (s *Suite) TrackCurves(name string) ([]MethodCurve, error) {
	curves, err, _ := s.curves.Do(name, func() ([]MethodCurve, error) {
		t, err := s.System(name)
		if err != nil {
			return nil, err
		}
		out := []MethodCurve{{Method: "OTIF", Points: testPointsOTIF(t)}}
		for _, m := range baselines.All() {
			cands := m.Tune(t.Sys, t.Metric)
			// Keep validation-Pareto candidates, then evaluate them on the
			// unseen test set (the paper's protocol).
			valPts := make([]tuner.Point, len(cands))
			for i, c := range cands {
				valPts[i] = tuner.Point{Runtime: c.ValRuntime, Accuracy: c.ValAccuracy}
			}
			var pts []tuner.Point
			qf := 0.0
			for i, c := range cands {
				if !onPareto(valPts, i) {
					continue
				}
				res := c.Run(t.Sys.DS.Test)
				pts = append(pts, tuner.Point{
					Runtime:  res.Runtime,
					Accuracy: t.Metric.Accuracy(res.PerClip, t.Sys.DS.Test),
				})
				qf = c.QueryFraction
			}
			out = append(out, MethodCurve{Method: m.Name(), Points: pts, QueryFraction: qf})
		}
		return out, nil
	})
	return curves, err
}

// onPareto reports whether point i is on the Pareto frontier of pts.
func onPareto(pts []tuner.Point, i int) bool {
	for j, q := range pts {
		if j == i {
			continue
		}
		if q.Runtime < pts[i].Runtime-1e-12 && q.Accuracy >= pts[i].Accuracy {
			return false
		}
	}
	return true
}

// FastestWithinTol implements the Table 2 selection rule: among a method's
// test points, the fastest whose accuracy is within tol of the best
// accuracy achieved by ANY method on the dataset.
func FastestWithinTol(curves []MethodCurve, method string, tol float64) (tuner.Point, bool) {
	bestAcc := -1.0
	for _, c := range curves {
		for _, p := range c.Points {
			if p.Accuracy > bestAcc {
				bestAcc = p.Accuracy
			}
		}
	}
	var out tuner.Point
	found := false
	for _, c := range curves {
		if c.Method != method {
			continue
		}
		for _, p := range c.Points {
			if p.Accuracy >= bestAcc-tol && (!found || p.Runtime < out.Runtime) {
				out = p
				found = true
			}
		}
	}
	return out, found
}

// fprintf is a helper that ignores write errors (harness output goes to
// stdout or a test buffer).
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}
