package bench

import (
	"io"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/metrics"
	"otif/internal/proxy"
)

// Figure7Left is one point of Figure 7 (left): detection speed vs mAP@50
// for YOLO alone at varying resolutions, and for YOLO + the segmentation
// proxy model with k window sizes.
type Figure7Left struct {
	Method  string // "yolo" or "proxy-k<N>"
	Runtime float64
	MAP     float64
}

// Figure7Right is one proxy precision-recall curve at one input
// resolution.
type Figure7Right struct {
	Resolution [2]int
	Points     []metrics.PRPoint
}

// Figure7 regenerates both panels of Figure 7 on the given dataset
// (Caldot1 in the paper), evaluating mAP@50 on sampled ground-truth frames
// (the paper hand-labels 50 frames; the simulator's oracle provides them).
func (s *Suite) Figure7(w io.Writer, name string) ([]Figure7Left, []Figure7Right, error) {
	if name == "" {
		name = "caldot1"
	}
	t, err := s.System(name)
	if err != nil {
		return nil, nil, err
	}
	sys := t.Sys
	cfg := sys.DS.Cfg

	// Sample evaluation frames with ground truth.
	type evalFrame struct {
		clip, frame int
		truth       []geom.Rect
	}
	var frames []evalFrame
	for ci, ct := range sys.DS.Test {
		for f := 0; f < ct.Clip.Len() && len(frames) < 50; f += ct.Clip.Len()/7 + 1 {
			var boxes []geom.Rect
			for _, gt := range ct.Truth(f) {
				boxes = append(boxes, gt.Box)
			}
			frames = append(frames, evalFrame{ci, f, boxes})
		}
	}

	evalDetector := func(d *detect.Detector, windowsFor func(frameIdx, clip int) []geom.Rect) (float64, float64) {
		acct := costmodel.NewAccountant()
		d.Acct = acct
		dets := make([][]metrics.ScoredBox, len(frames))
		truths := make([][]geom.Rect, len(frames))
		for i, ef := range frames {
			frame := sys.DS.Test[ef.clip].Clip.Frame(ef.frame)
			var found []detect.Detection
			if windowsFor != nil {
				wins := windowsFor(ef.frame, ef.clip)
				if len(wins) > 0 {
					found = d.DetectWindows(frame, ef.frame, wins)
				}
			} else {
				found = d.Detect(frame, ef.frame)
			}
			for _, det := range found {
				dets[i] = append(dets[i], metrics.ScoredBox{Box: det.Box, Score: det.Score})
			}
			truths[i] = ef.truth
		}
		perFrame := acct.Get(costmodel.OpDetect) / float64(len(frames))
		return perFrame, metrics.APAt50(dets, truths)
	}

	var left []Figure7Left
	// YOLO alone at each resolution.
	for _, scale := range []float64{1.0, 0.7, 0.49, 0.34, 0.24} {
		det := &detect.Detector{
			Cfg: detect.Config{
				Arch:  detect.ArchYOLO,
				Width: int(float64(cfg.NomW) * scale), Height: int(float64(cfg.NomH) * scale),
				ConfThresh: 0.15,
			},
			Background: sys.Background,
			Classify:   sys.Classifier,
		}
		rt, mAP := evalDetector(det, nil)
		left = append(left, Figure7Left{Method: "yolo", Runtime: rt, MAP: mAP})
	}

	// YOLO + proxy with k window sizes, k in {1, 2, 3, 4}; k = 1 means
	// full-frame only (equivalent to the detector alone).
	detsPerFrame := bestBoxesPerFrame(sys)
	for _, k := range []int{2, 3, 4} {
		ws := proxy.SelectWindowSizes(cfg.NomW, cfg.NomH, k,
			detect.ArchYOLO.PerPixelCost(), 0.7, detsPerFrame)
		pm := sys.Proxies[1]
		det := &detect.Detector{
			Cfg: detect.Config{
				Arch:  detect.ArchYOLO,
				Width: int(float64(cfg.NomW) * 0.7), Height: int(float64(cfg.NomH) * 0.7),
				ConfThresh: 0.15,
			},
			Background: sys.Background,
			Classify:   sys.Classifier,
		}
		rt, mAP := evalDetector(det, func(frameIdx, clip int) []geom.Rect {
			frame := sys.DS.Test[clip].Clip.Frame(frameIdx)
			scores := pm.Score(frame, sys.Background, costmodel.NewAccountant())
			grid := proxy.Threshold(cfg.NomW, cfg.NomH, scores, 0.35)
			return proxy.Group(grid, ws)
		})
		rt += costmodel.ProxyCost(pm.ResW, pm.ResH)
		left = append(left, Figure7Left{Method: figLabel(k), Runtime: rt, MAP: mAP})
	}

	// Right panel: per-cell precision-recall per proxy resolution.
	var right []Figure7Right
	thresholds := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.97}
	for _, pm := range sys.Proxies {
		var scores []float64
		var labels []bool
		for _, ef := range frames {
			frame := sys.DS.Test[ef.clip].Clip.Frame(ef.frame)
			cellScores := pm.Score(frame, sys.Background, costmodel.NewAccountant())
			truth := proxy.TruthGrid(cfg.NomW, cfg.NomH, ef.truth)
			for i, sc := range cellScores {
				scores = append(scores, sc)
				labels = append(labels, truth.Pos[i])
			}
		}
		right = append(right, Figure7Right{
			Resolution: [2]int{pm.ResW, pm.ResH},
			Points:     metrics.PRCurve(scores, labels, thresholds),
		})
	}

	fprintf(w, "Figure 7 (left) [%s]: per-frame detector time vs mAP@50\n", name)
	for _, p := range left {
		fprintf(w, "  %-9s rt=%.5fs mAP=%.3f\n", p.Method, p.Runtime, p.MAP)
	}
	fprintf(w, "Figure 7 (right): proxy per-cell precision/recall by input resolution\n")
	for _, r := range right {
		fprintf(w, "  %dx%d:", r.Resolution[0], r.Resolution[1])
		for _, p := range r.Points {
			fprintf(w, " (p=%.2f r=%.2f)", p.Precision, p.Recall)
		}
		fprintf(w, "\n")
	}
	return left, right, nil
}

func figLabel(k int) string {
	return "proxy-k" + string(rune('0'+k))
}

// bestBoxesPerFrame gathers theta_best detections per training frame (from
// the S* tracks) for window-size selection.
func bestBoxesPerFrame(sys *core.System) [][]geom.Rect {
	var out [][]geom.Rect
	for _, tracks := range sys.SStar {
		byFrame := map[int][]geom.Rect{}
		for _, t := range tracks {
			for _, d := range t.Dets {
				byFrame[d.FrameIdx] = append(byFrame[d.FrameIdx], d.Box)
			}
		}
		for _, boxes := range byFrame {
			out = append(out, boxes)
		}
	}
	return out
}
