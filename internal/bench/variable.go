package bench

import (
	"io"

	"otif/internal/tuner"
)

// VariableGapResult compares fixed-gap and variable-gap execution of the
// same configuration (the §3.4 preliminary experiment: the paper found the
// two comparable with the recurrent model and kept the simpler fixed gap).
type VariableGapResult struct {
	Fixed    tuner.Point
	Variable tuner.Point
}

// VariableGap runs the comparison on one dataset using the tuned
// fastest-within-tolerance configuration.
func (s *Suite) VariableGap(w io.Writer, name string) (*VariableGapResult, error) {
	if name == "" {
		name = "caldot1"
	}
	t, err := s.System(name)
	if err != nil {
		return nil, err
	}
	pt, ok := tuner.FastestWithin(t.Curve, Table2Tol)
	if !ok {
		return nil, nil
	}
	scale := s.EquivScale()

	fixedCfg := pt.Cfg
	fixedCfg.VariableGap = false
	varCfg := pt.Cfg
	varCfg.VariableGap = true

	res := &VariableGapResult{}
	fr := t.Sys.RunSet(fixedCfg, t.Sys.DS.Test)
	res.Fixed = tuner.Point{Cfg: fixedCfg, Runtime: fr.Runtime, Accuracy: t.Metric.Accuracy(fr.PerClip, t.Sys.DS.Test)}
	vr := t.Sys.RunSet(varCfg, t.Sys.DS.Test)
	res.Variable = tuner.Point{Cfg: varCfg, Runtime: vr.Runtime, Accuracy: t.Metric.Accuracy(vr.PerClip, t.Sys.DS.Test)}

	fprintf(w, "Variable-rate ablation [%s] (config %v):\n", name, pt.Cfg)
	fprintf(w, "  fixed gap:    %7.1f s  accuracy %.3f\n", res.Fixed.Runtime*scale, res.Fixed.Accuracy)
	fprintf(w, "  variable gap: %7.1f s  accuracy %.3f\n", res.Variable.Runtime*scale, res.Variable.Accuracy)
	fprintf(w, "  (the paper found the two comparable and kept the fixed gap)\n")
	return res, nil
}
