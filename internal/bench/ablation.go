package bench

import (
	"io"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/parallel"
	"otif/internal/tuner"
)

// Table4Row is one ablation variant's runtime on one dataset.
type Table4Row struct {
	Variant string
	Runtime map[string]float64 // dataset -> scaled runtime
}

// Table4Datasets are the ablation datasets (Caldot1 and Warsaw, §4.4).
var Table4Datasets = []string{"caldot1", "warsaw"}

// Table4 regenerates the ablation study: four successively more complete
// OTIF variants, each tuned with the module subsets of §4.4, reporting the
// runtime of the fastest configuration within Table2Tol of the best
// accuracy achieved by any variant on that dataset.
func (s *Suite) Table4(w io.Writer, datasets []string) ([]Table4Row, error) {
	if len(datasets) == 0 {
		datasets = Table4Datasets
	}
	variants := []struct {
		name string
		opts func() tuner.Options
	}{
		{"Detector Only", func() tuner.Options {
			o := tuner.DefaultOptions()
			o.UseTracking = false
			o.UseProxy = false
			o.Tracker = core.TrackerSORT
			return o
		}},
		{"+ Sampling Rate", func() tuner.Options {
			o := tuner.DefaultOptions()
			o.UseProxy = false
			o.Tracker = core.TrackerSORT
			return o
		}},
		{"+ Recurrent Tracker", func() tuner.Options {
			o := tuner.DefaultOptions()
			o.UseProxy = false
			o.Tracker = core.TrackerRecurrent
			return o
		}},
		{"+ Segmentation Proxy Model", func() tuner.Options {
			return tuner.DefaultOptions()
		}},
	}

	rows := make([]Table4Row, len(variants))
	for i, v := range variants {
		rows[i] = Table4Row{Variant: v.name, Runtime: map[string]float64{}}
	}
	scale := s.EquivScale()

	// Datasets fan out on the worker pool (each owns a distinct trained
	// system); variants stay serial within a dataset because they share
	// that system's tuning accountant. Row maps are filled serially below,
	// in dataset order.
	type dsResult struct {
		runtimes []float64 // per variant, already scaled
		err      error
	}
	perDS := parallel.Map(len(datasets), func(di int) dsResult {
		name := datasets[di]
		t, err := s.System(name)
		if err != nil {
			return dsResult{err: err}
		}
		// Tune each variant on validation, evaluate its curve on test.
		type varCurve struct {
			pts []tuner.Point
		}
		curves := make([]varCurve, len(variants))
		bestAcc := -1.0
		for i, v := range variants {
			valCurve := tuner.Tune(t.Sys, t.Metric, v.opts())
			for _, p := range valCurve {
				res := t.Sys.RunSet(p.Cfg, t.Sys.DS.Test)
				tp := tuner.Point{
					Cfg:      p.Cfg,
					Runtime:  res.Runtime,
					Accuracy: t.Metric.Accuracy(res.PerClip, t.Sys.DS.Test),
				}
				curves[i].pts = append(curves[i].pts, tp)
				if tp.Accuracy > bestAcc {
					bestAcc = tp.Accuracy
				}
			}
		}
		out := dsResult{runtimes: make([]float64, len(variants))}
		for i := range variants {
			best := -1.0
			for _, p := range curves[i].pts {
				if p.Accuracy >= bestAcc-Table2Tol && (best < 0 || p.Runtime < best) {
					best = p.Runtime
				}
			}
			if best < 0 {
				// No configuration of this variant reaches the accuracy
				// band; report its most accurate configuration's runtime.
				mostAcc := tuner.Point{Accuracy: -1}
				for _, p := range curves[i].pts {
					if p.Accuracy > mostAcc.Accuracy {
						mostAcc = p
					}
				}
				best = mostAcc.Runtime
			}
			out.runtimes[i] = best * scale
		}
		return out
	})
	for di, name := range datasets {
		if perDS[di].err != nil {
			return nil, perDS[di].err
		}
		for i := range variants {
			rows[i].Runtime[name] = perDS[di].runtimes[i]
		}
	}

	fprintf(w, "Table 4: ablation study, runtime (s, scaled) at accuracy within %.0f%% of best.\n\n", Table2Tol*100)
	fprintf(w, "%-28s", "Method")
	for _, d := range datasets {
		fprintf(w, " %10s", d)
	}
	fprintf(w, "\n")
	for _, row := range rows {
		fprintf(w, "%-28s", row.Variant)
		for _, d := range datasets {
			fprintf(w, " %10.0f", row.Runtime[d])
		}
		fprintf(w, "\n")
	}
	return rows, nil
}

// Figure6Result is the cost breakdown of Figure 6.
type Figure6Result struct {
	Preprocessing map[string]float64 // component -> seconds
	Execution     map[string]float64 // component -> seconds (scaled)
}

// Figure6 regenerates the Caldot1 cost breakdown: pre-processing costs
// (model training, window selection, tuning) and execution costs (decode,
// proxy, detect, track) of the fastest configuration within the band.
func (s *Suite) Figure6(w io.Writer, name string) (*Figure6Result, error) {
	if name == "" {
		name = "caldot1"
	}
	t, err := s.System(name)
	if err != nil {
		return nil, err
	}
	out := &Figure6Result{Preprocessing: map[string]float64{}, Execution: map[string]float64{}}
	pre := t.Sys.Acct.Breakdown()
	for op, v := range pre {
		out.Preprocessing[string(op)] = v
	}
	pt, ok := tuner.FastestWithin(t.Curve, 0.05)
	if !ok {
		return nil, nil
	}
	res := t.Sys.RunSet(pt.Cfg, t.Sys.DS.Test)
	scale := s.EquivScale()
	for op, v := range res.Breakdown {
		out.Execution[string(op)] = v * scale
	}

	fprintf(w, "Figure 6: OTIF cost breakdown on %s.\n\nPre-processing:\n", name)
	for _, op := range []costmodel.Op{costmodel.OpTrainDet, costmodel.OpTrainProx, costmodel.OpTrainTrkr, costmodel.OpTune, costmodel.OpRefine} {
		if v, okOp := out.Preprocessing[string(op)]; okOp {
			fprintf(w, "  %-16s %8.0f s\n", op, v)
		}
	}
	fprintf(w, "Execution (config %v, scaled to 1-hour set):\n", pt.Cfg)
	for _, op := range []costmodel.Op{costmodel.OpDecode, costmodel.OpProxy, costmodel.OpDetect, costmodel.OpTrack} {
		if v, okOp := out.Execution[string(op)]; okOp {
			fprintf(w, "  %-16s %8.1f s\n", op, v)
		}
	}
	return out, nil
}
