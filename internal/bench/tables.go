package bench

import (
	"io"
	"sort"

	"otif/internal/parallel"
	"otif/internal/tuner"
)

// Table2Row is one dataset's row of Table 2: per-method runtime at the
// fastest configuration within 5% of the best achieved accuracy, for one
// query and for five queries (estimated by scaling query-specific phases).
type Table2Row struct {
	Dataset  string
	OneQuery map[string]float64
	FiveQ    map[string]float64
}

// Table2Tol is the accuracy tolerance for Table 2. The paper uses 5%,
// justified by the sample variance of accuracy averaged over 60 test
// clips; our scaled-down sets have ~8 clips, so the same argument
// (std ~ 1/sqrt(n)) widens the band by sqrt(60/8) ~ 2.7x to ~12%.
const Table2Tol = 0.12

// Table2Datasets lists the datasets of Table 2 in the paper's order.
var Table2Datasets = []string{"caldot1", "caldot2", "tokyo", "uav", "warsaw", "amsterdam", "jackson"}

// Table2 regenerates Table 2 over the given datasets (all seven by
// default; tests may pass a subset). Runtimes are scaled to paper-sized
// one-hour test sets.
func (s *Suite) Table2(w io.Writer, datasets []string) ([]Table2Row, error) {
	if len(datasets) == 0 {
		datasets = Table2Datasets
	}
	scale := s.EquivScale()
	var rows []Table2Row
	methods := []string{"OTIF", "Miris", "Chameleon", "NoScope", "CaTDet", "CenterTrack"}

	fprintf(w, "Table 2: runtime (s, scaled to 1-hour test sets) of the fastest\n")
	fprintf(w, "configuration within %.0f%% of best achieved accuracy (the paper's 5%%\n", Table2Tol*100)
	fprintf(w, "band scaled to this run's smaller clip sets; see EXPERIMENTS.md).\n\n")
	fprintf(w, "%-10s |", "1 Query")
	for _, m := range methods {
		fprintf(w, " %11s", m)
	}
	fprintf(w, "\n")

	// Prefetch every dataset's curves on the worker pool: the per-dataset
	// singleflight entries train concurrently, and the serial loop below
	// then reads memoized results, printing rows in dataset order.
	parallel.For(len(datasets), func(i int) {
		_, _ = s.TrackCurves(datasets[i])
	})

	curvesByDS := map[string][]MethodCurve{}
	for _, name := range datasets {
		curves, err := s.TrackCurves(name)
		if err != nil {
			return nil, err
		}
		curvesByDS[name] = curves
		row := Table2Row{Dataset: name, OneQuery: map[string]float64{}, FiveQ: map[string]float64{}}
		for _, m := range methods {
			p, ok := FastestWithinTol(curves, m, Table2Tol)
			if !ok {
				continue
			}
			rt := p.Runtime * scale
			row.OneQuery[m] = rt
			qf := queryFraction(curves, m)
			row.FiveQ[m] = rt * (1 + 4*qf)
		}
		rows = append(rows, row)
		fprintf(w, "%-10s |", name)
		for _, m := range methods {
			if rt, ok := row.OneQuery[m]; ok {
				fprintf(w, " %11.0f", rt)
			} else {
				fprintf(w, " %11s", "-")
			}
		}
		fprintf(w, "\n")
	}

	fprintf(w, "\n%-10s |", "5 Queries")
	for _, m := range methods {
		fprintf(w, " %11s", m)
	}
	fprintf(w, "\n")
	for _, row := range rows {
		fprintf(w, "%-10s |", row.Dataset)
		for _, m := range methods {
			if rt, ok := row.FiveQ[m]; ok {
				fprintf(w, " %11.0f", rt)
			} else {
				fprintf(w, " %11s", "-")
			}
		}
		fprintf(w, "\n")
	}

	// Headline ratios (the paper reports 5x/25x vs Miris, 3.4x vs the
	// next best baseline).
	var sum1, sum5, sumNext float64
	n := 0
	for _, row := range rows {
		o1, ok1 := row.OneQuery["OTIF"]
		m1, ok2 := row.OneQuery["Miris"]
		if !ok1 || !ok2 || o1 == 0 {
			continue
		}
		sum1 += m1 / o1
		sum5 += row.FiveQ["Miris"] / row.FiveQ["OTIF"]
		next := bestOther(row.OneQuery)
		if next > 0 {
			sumNext += next / o1
		}
		n++
	}
	if n > 0 {
		fprintf(w, "\nAverage speedup vs Miris: %.1fx (1 query), %.1fx (5 queries)\n", sum1/float64(n), sum5/float64(n))
		fprintf(w, "Average speedup vs next-best detect/track baseline: %.1fx\n", sumNext/float64(n))
	}
	return rows, nil
}

func queryFraction(curves []MethodCurve, method string) float64 {
	for _, c := range curves {
		if c.Method == method {
			return c.QueryFraction
		}
	}
	return 0
}

// bestOther returns the smallest runtime among the non-OTIF, non-Miris
// detect/track baselines in the row.
func bestOther(row map[string]float64) float64 {
	best := -1.0
	for _, m := range []string{"Chameleon", "NoScope", "CaTDet", "CenterTrack"} {
		if rt, ok := row[m]; ok && (best < 0 || rt < best) {
			best = rt
		}
	}
	return best
}

// Figure5 prints the per-dataset test speed-accuracy curves (the data
// behind Figure 5's plots).
func (s *Suite) Figure5(w io.Writer, datasets []string) (map[string][]MethodCurve, error) {
	if len(datasets) == 0 {
		datasets = Table2Datasets
	}
	scale := s.EquivScale()
	parallel.For(len(datasets), func(i int) {
		_, _ = s.TrackCurves(datasets[i])
	})
	out := map[string][]MethodCurve{}
	for _, name := range datasets {
		curves, err := s.TrackCurves(name)
		if err != nil {
			return nil, err
		}
		out[name] = curves
		fprintf(w, "Figure 5 [%s]: runtime-accuracy curves (test set, scaled seconds)\n", name)
		for _, c := range curves {
			pts := append([]tuner.Point{}, c.Points...)
			sort.Slice(pts, func(i, j int) bool { return pts[i].Runtime > pts[j].Runtime })
			fprintf(w, "  %-12s", c.Method)
			for _, p := range pts {
				fprintf(w, " (%.0fs, %.2f)", p.Runtime*scale, p.Accuracy)
			}
			fprintf(w, "\n")
		}
	}
	return out, nil
}
