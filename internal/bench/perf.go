package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/parallel"
	"otif/internal/video"
)

// This file implements `benchtables -perf`: a machine-readable performance
// report over the zero-allocation inference kernels (scalar and batched),
// and the end-to-end extraction path — with and without the frame cache,
// and with and without the decode-ahead prefetcher, under both numeric
// backends. The report is what the BENCH_PR*.json files in the repository
// root are generated from; CI and humans read it (and GatePerf asserts it)
// to confirm the kernels stay allocation-free, the cache, pools and
// prefetcher pay for themselves, and the float32 backend is faster than
// the float64 reference.

// PerfRecord is one benchmark result.
type PerfRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// PerfCacheStats summarizes frame-cache effectiveness during the cached
// end-to-end benchmark run.
type PerfCacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// PerfPoolStats summarizes per-clip pool traffic during the cached
// end-to-end benchmark run: hits are reuses, misses are fresh
// constructions. High hit rates mean clip execution runs on recycled
// buffers at steady state.
type PerfPoolStats struct {
	TrackScratchHit  int64   `json:"track_scratch_hit"`
	TrackScratchMiss int64   `json:"track_scratch_miss"`
	DetectArenaHit   int64   `json:"detect_arena_hit"`
	DetectArenaMiss  int64   `json:"detect_arena_miss"`
	DetectScratchHit int64   `json:"detect_scratch_hit"`
	DetectScratchMis int64   `json:"detect_scratch_miss"`
	HitRate          float64 `json:"hit_rate"`
}

// PerfReport is the full report emitted by Perf.
type PerfReport struct {
	Dataset string         `json:"dataset"`
	Clips   int            `json:"clips"`
	Seconds float64        `json:"clip_seconds"`
	Records []PerfRecord   `json:"records"`
	Cache   PerfCacheStats `json:"cache"`
	Pools   PerfPoolStats  `json:"pools"`
}

// poolCounters reads the per-clip pool counters from the process metrics
// registry. Perf diffs two reads to isolate one benchmark's traffic.
func poolCounters() PerfPoolStats {
	c := obs.Default.Snapshot().Counters
	return PerfPoolStats{
		TrackScratchHit:  c["track.pool.scratch.hit"],
		TrackScratchMiss: c["track.pool.scratch.miss"],
		DetectArenaHit:   c["detect.pool.arena.hit"],
		DetectArenaMiss:  c["detect.pool.arena.miss"],
		DetectScratchHit: c["detect.pool.scratch.hit"],
		DetectScratchMis: c["detect.pool.scratch.miss"],
	}
}

// diff returns p minus base, with the aggregate hit rate recomputed over
// the difference.
func (p PerfPoolStats) diff(base PerfPoolStats) PerfPoolStats {
	d := PerfPoolStats{
		TrackScratchHit:  p.TrackScratchHit - base.TrackScratchHit,
		TrackScratchMiss: p.TrackScratchMiss - base.TrackScratchMiss,
		DetectArenaHit:   p.DetectArenaHit - base.DetectArenaHit,
		DetectArenaMiss:  p.DetectArenaMiss - base.DetectArenaMiss,
		DetectScratchHit: p.DetectScratchHit - base.DetectScratchHit,
		DetectScratchMis: p.DetectScratchMis - base.DetectScratchMis,
	}
	hits := d.TrackScratchHit + d.DetectArenaHit + d.DetectScratchHit
	total := hits + d.TrackScratchMiss + d.DetectArenaMiss + d.DetectScratchMis
	if total > 0 {
		d.HitRate = float64(hits) / float64(total)
	}
	return d
}

func record(name string, fn func(b *testing.B)) PerfRecord {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return PerfRecord{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// Perf runs the kernel microbenchmarks and the end-to-end extraction
// benchmark (cache on and off) for the named dataset, writing the report
// as indented JSON. End-to-end runs are serial so allocation counts are
// deterministic; the cache-on run reports the frame cache's hit rate.
func (s *Suite) Perf(w io.Writer, name string) error {
	rep, err := s.PerfData(name)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fmt.Errorf("bench: writing perf report: %w", err)
	}
	return nil
}

// PerfData runs the benchmarks behind Perf and returns the report (see
// Perf for the measurement protocol). Float32 kernel rows mirror the
// float64 rows; RunSetCacheOn32 is RunSetCacheOn under the float32
// backend, measured with the same warm cache so the two end-to-end rows
// differ only in the compute backend.
func (s *Suite) PerfData(name string) (*PerfReport, error) {
	t, err := s.System(name)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(1))
	dense := nn.NewDense(32, 32, nn.ReLUAct, rng)
	x32 := nn.NewVec(32)
	for i := range x32 {
		x32[i] = rng.Float64()
	}
	gru := nn.NewGRUCell(7, 16, rng)
	x7 := nn.NewVec(7)
	for i := range x7 {
		x7[i] = rng.Float64()
	}
	lr := nn.NewLogReg(4, rng)
	x4 := nn.Vec{0.3, 0.1, 0.8, 0.5}
	mlp := nn.NewMLP([]int{28, 24, 1}, nn.ReLUAct, nn.SigmoidAct, rng)
	x28 := nn.NewVec(28)
	for i := range x28 {
		x28[i] = rng.Float64()
	}

	var sink float64
	records := []PerfRecord{
		record("DenseApply", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += dense.Apply(x32)[0]
			}
		}),
		record("DenseApplyInto", func(b *testing.B) {
			dst := nn.NewVec(32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += dense.ApplyInto(dst, x32)[0]
			}
		}),
		record("GRUStepInfer", func(b *testing.B) {
			h := nn.NewVec(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepInfer(h, x7)[0]
			}
		}),
		record("GRUStepInferInto", func(b *testing.B) {
			var scr nn.Scratch
			h := nn.NewVec(16)
			gru.StepInferInto(h, h, x7, &scr) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepInferInto(h, h, x7, &scr)[0]
			}
		}),
		record("LogRegPredict", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += lr.Predict(x4)
			}
		}),
		record("MLPApply", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += mlp.Apply(x28)[0]
			}
		}),
		record("MLPApplyWith", func(b *testing.B) {
			var scr nn.Scratch
			mlp.ApplyWith(&scr, x28) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += mlp.ApplyWith(&scr, x28)[0]
			}
		}),
	}

	// Batched vs. per-row scalar kernels at a representative batch of 16
	// (roughly the active-track count of a busy frame). The batched rows
	// must be allocation-free and beat their per-row equivalents; both
	// produce bit-identical outputs (pinned by internal/nn tests).
	const batchRows = 16
	xb32 := nn.NewVec(batchRows * 32)
	for i := range xb32 {
		xb32[i] = rng.Float64()
	}
	hb16 := nn.NewVec(batchRows * 16)
	xb7 := nn.NewVec(batchRows * 7)
	for i := range xb7 {
		xb7[i] = rng.Float64()
	}
	records = append(records,
		record("DenseApplyBatchInto16", func(b *testing.B) {
			dst := nn.NewVec(batchRows * 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += dense.ApplyBatchInto(dst, xb32, batchRows)[0]
			}
		}),
		record("DenseApplyIntoPerRow16", func(b *testing.B) {
			dst := nn.NewVec(batchRows * 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < batchRows; r++ {
					sink += dense.ApplyInto(dst[r*32:(r+1)*32], xb32[r*32:(r+1)*32])[0]
				}
			}
		}),
		record("GRUStepBatchInferInto16", func(b *testing.B) {
			var scr nn.BatchScratch
			gru.StepBatchInferInto(hb16, hb16, xb7, batchRows, &scr) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepBatchInferInto(hb16, hb16, xb7, batchRows, &scr)[0]
			}
		}),
		record("GRUStepInferIntoPerRow16", func(b *testing.B) {
			var scr nn.Scratch
			gru.StepInferInto(hb16[:16], hb16[:16], xb7[:7], &scr) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < batchRows; r++ {
					sink += gru.StepInferInto(hb16[r*16:(r+1)*16], hb16[r*16:(r+1)*16], xb7[r*7:(r+1)*7], &scr)[0]
				}
			}
		}),
	)

	// Float32 backend twins of every kernel row: the same shapes and
	// inputs (converted once, exactly as the pipeline converts weights),
	// so each 32-bit row compares directly against its float64 row above.
	var sink32 float32
	dense32 := dense.To32()
	x32f := x32.To32()
	gru32 := gru.To32()
	x7f := x7.To32()
	lr32 := lr.To32()
	x4f := x4.To32()
	mlp32 := mlp.To32()
	x28f := x28.To32()
	xb32f := xb32.To32()
	hb16f := hb16.To32()
	xb7f := xb7.To32()
	records = append(records,
		record("Dense32ApplyInto", func(b *testing.B) {
			dst := nn.NewVec32(32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink32 += dense32.ApplyInto(dst, x32f)[0]
			}
		}),
		record("Dense32ApplyBatchInto16", func(b *testing.B) {
			dst := nn.NewVec32(batchRows * 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink32 += dense32.ApplyBatchInto(dst, xb32f, batchRows)[0]
			}
		}),
		record("GRU32StepInferInto", func(b *testing.B) {
			var scr nn.Scratch32
			h := nn.NewVec32(16)
			gru32.StepInferInto(h, h, x7f, &scr) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink32 += gru32.StepInferInto(h, h, x7f, &scr)[0]
			}
		}),
		record("GRU32StepBatchInferInto16", func(b *testing.B) {
			var scr nn.BatchScratch32
			gru32.StepBatchInferInto(hb16f, hb16f, xb7f, batchRows, &scr) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink32 += gru32.StepBatchInferInto(hb16f, hb16f, xb7f, batchRows, &scr)[0]
			}
		}),
		record("LogReg32Predict", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink32 += lr32.Predict(x4f)
			}
		}),
		record("MLP32ApplyWith", func(b *testing.B) {
			var scr nn.Scratch32
			mlp32.ApplyWith(&scr, x28f) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink32 += mlp32.ApplyWith(&scr, x28f)[0]
			}
		}),
	)
	_ = sink32

	// End-to-end extraction, serial: cache off, then cache on (prefetch at
	// its default depth in both), then cache on with prefetch disabled.
	// The cache budget and prefetch depth are restored afterwards, and a
	// fresh cache is installed before the cached run so the reported hit
	// rate covers exactly that run. Pool counters are diffed around the
	// cached run for the same reason.
	prevWorkers := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(prevWorkers)
	defer video.SetPrefetchDepth(video.DefaultPrefetchDepth)
	cfg := t.Sys.Best
	clips := t.Sys.DS.Val

	video.SetCacheBudget(0)
	records = append(records, record("RunSetCacheOff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	video.SetCacheBudget(video.DefaultCacheBytes)
	pool0 := poolCounters()
	records = append(records, record("RunSetCacheOn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	cs := video.GlobalCacheStats()
	ps := poolCounters().diff(pool0)
	// The float32 end-to-end row runs against the same warm cache as
	// RunSetCacheOn, so the pair differs only in the compute backend. The
	// process precision is restored afterwards.
	prevPrec := nn.ActivePrecision()
	nn.SetPrecision(nn.Float32)
	records = append(records, record("RunSetCacheOn32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	nn.SetPrecision(prevPrec)
	video.SetPrefetchDepth(0)
	records = append(records, record("RunSetPrefetchOff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	_ = sink

	return &PerfReport{
		Dataset: name,
		Clips:   s.Spec.Clips,
		Seconds: s.Spec.ClipSeconds,
		Records: records,
		Cache: PerfCacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRate:   cs.HitRate(),
		},
		Pools: ps,
	}, nil
}

// perfGateNoise is the wall-clock noise margin GatePerf allows when
// comparing the float32 end-to-end row against float64: microbenchmark
// timing on shared CI hardware jitters a few percent, and the gate exists
// to catch regressions (float32 slower than float64 means the backend
// stopped paying for itself), not to referee a photo finish.
const perfGateNoise = 1.02

// GatePerf asserts the float32 backend's performance contract over a perf
// report: every float32 batched kernel must beat its float64 twin, the
// float32 kernels must be allocation-free at steady state, and float32
// end-to-end extraction must be at least as fast as float64 (within
// perfGateNoise). It returns an error naming the first violated row.
func GatePerf(rep *PerfReport) error {
	byName := map[string]PerfRecord{}
	for _, r := range rep.Records {
		byName[r.Name] = r
	}
	get := func(name string) (PerfRecord, error) {
		r, ok := byName[name]
		if !ok {
			return r, fmt.Errorf("bench: perf gate: report has no %q row", name)
		}
		return r, nil
	}
	for _, pair := range [][2]string{
		{"Dense32ApplyBatchInto16", "DenseApplyBatchInto16"},
		{"GRU32StepBatchInferInto16", "GRUStepBatchInferInto16"},
	} {
		r32, err := get(pair[0])
		if err != nil {
			return err
		}
		r64, err := get(pair[1])
		if err != nil {
			return err
		}
		if r32.NsPerOp >= r64.NsPerOp {
			return fmt.Errorf("bench: perf gate: %s (%.0f ns/op) not faster than %s (%.0f ns/op)",
				pair[0], r32.NsPerOp, pair[1], r64.NsPerOp)
		}
	}
	for _, name := range []string{
		"Dense32ApplyInto", "Dense32ApplyBatchInto16",
		"GRU32StepInferInto", "GRU32StepBatchInferInto16",
		"LogReg32Predict", "MLP32ApplyWith",
	} {
		r, err := get(name)
		if err != nil {
			return err
		}
		if r.AllocsPerOp != 0 {
			return fmt.Errorf("bench: perf gate: %s allocates %d allocs/op, want 0", name, r.AllocsPerOp)
		}
	}
	on32, err := get("RunSetCacheOn32")
	if err != nil {
		return err
	}
	on64, err := get("RunSetCacheOn")
	if err != nil {
		return err
	}
	if on32.NsPerOp > on64.NsPerOp*perfGateNoise {
		return fmt.Errorf("bench: perf gate: RunSetCacheOn32 (%.0f ns/op) exceeds RunSetCacheOn (%.0f ns/op) by more than %.0f%%",
			on32.NsPerOp, on64.NsPerOp, (perfGateNoise-1)*100)
	}
	return nil
}
