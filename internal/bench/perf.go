package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"otif/internal/nn"
	"otif/internal/parallel"
	"otif/internal/video"
)

// This file implements `benchtables -perf`: a machine-readable performance
// report over the zero-allocation inference kernels and the end-to-end
// extraction path, with and without the frame cache. The report is what
// BENCH_PR2.json in the repository root is generated from; CI and humans
// read it to confirm the kernels stay allocation-free and the cache pays
// for itself.

// PerfRecord is one benchmark result.
type PerfRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// PerfCacheStats summarizes frame-cache effectiveness during the cached
// end-to-end benchmark run.
type PerfCacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// PerfReport is the full report emitted by Perf.
type PerfReport struct {
	Dataset string         `json:"dataset"`
	Clips   int            `json:"clips"`
	Seconds float64        `json:"clip_seconds"`
	Records []PerfRecord   `json:"records"`
	Cache   PerfCacheStats `json:"cache"`
}

func record(name string, fn func(b *testing.B)) PerfRecord {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return PerfRecord{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// Perf runs the kernel microbenchmarks and the end-to-end extraction
// benchmark (cache on and off) for the named dataset, writing the report
// as indented JSON. End-to-end runs are serial so allocation counts are
// deterministic; the cache-on run reports the frame cache's hit rate.
func (s *Suite) Perf(w io.Writer, name string) error {
	t, err := s.System(name)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(1))
	dense := nn.NewDense(32, 32, nn.ReLUAct, rng)
	x32 := nn.NewVec(32)
	for i := range x32 {
		x32[i] = rng.Float64()
	}
	gru := nn.NewGRUCell(7, 16, rng)
	x7 := nn.NewVec(7)
	for i := range x7 {
		x7[i] = rng.Float64()
	}
	lr := nn.NewLogReg(4, rng)
	x4 := nn.Vec{0.3, 0.1, 0.8, 0.5}
	mlp := nn.NewMLP([]int{28, 24, 1}, nn.ReLUAct, nn.SigmoidAct, rng)
	x28 := nn.NewVec(28)
	for i := range x28 {
		x28[i] = rng.Float64()
	}

	var sink float64
	records := []PerfRecord{
		record("DenseApply", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += dense.Apply(x32)[0]
			}
		}),
		record("DenseApplyInto", func(b *testing.B) {
			dst := nn.NewVec(32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += dense.ApplyInto(dst, x32)[0]
			}
		}),
		record("GRUStepInfer", func(b *testing.B) {
			h := nn.NewVec(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepInfer(h, x7)[0]
			}
		}),
		record("GRUStepInferInto", func(b *testing.B) {
			var scr nn.Scratch
			h := nn.NewVec(16)
			gru.StepInferInto(h, h, x7, &scr) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepInferInto(h, h, x7, &scr)[0]
			}
		}),
		record("LogRegPredict", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += lr.Predict(x4)
			}
		}),
		record("MLPApply", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += mlp.Apply(x28)[0]
			}
		}),
		record("MLPApplyWith", func(b *testing.B) {
			var scr nn.Scratch
			mlp.ApplyWith(&scr, x28) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += mlp.ApplyWith(&scr, x28)[0]
			}
		}),
	}

	// End-to-end extraction, serial, cache off then on. The cache budget is
	// restored afterwards, and a fresh cache is installed before the cached
	// run so the reported hit rate covers exactly that run.
	prevWorkers := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(prevWorkers)
	cfg := t.Sys.Best
	clips := t.Sys.DS.Val

	video.SetCacheBudget(0)
	records = append(records, record("RunSetCacheOff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	video.SetCacheBudget(video.DefaultCacheBytes)
	records = append(records, record("RunSetCacheOn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	cs := video.GlobalCacheStats()
	_ = sink

	rep := PerfReport{
		Dataset: name,
		Clips:   s.Spec.Clips,
		Seconds: s.Spec.ClipSeconds,
		Records: records,
		Cache: PerfCacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRate:   cs.HitRate(),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return fmt.Errorf("bench: writing perf report: %w", err)
	}
	return nil
}
