package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/parallel"
	"otif/internal/video"
)

// This file implements `benchtables -perf`: a machine-readable performance
// report over the zero-allocation inference kernels (scalar and batched),
// and the end-to-end extraction path — with and without the frame cache,
// and with and without the decode-ahead prefetcher. The report is what
// BENCH_PR2.json / BENCH_PR6.json in the repository root are generated
// from; CI and humans read it to confirm the kernels stay allocation-free
// and the cache, pools and prefetcher pay for themselves.

// PerfRecord is one benchmark result.
type PerfRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// PerfCacheStats summarizes frame-cache effectiveness during the cached
// end-to-end benchmark run.
type PerfCacheStats struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// PerfPoolStats summarizes per-clip pool traffic during the cached
// end-to-end benchmark run: hits are reuses, misses are fresh
// constructions. High hit rates mean clip execution runs on recycled
// buffers at steady state.
type PerfPoolStats struct {
	TrackScratchHit  int64   `json:"track_scratch_hit"`
	TrackScratchMiss int64   `json:"track_scratch_miss"`
	DetectArenaHit   int64   `json:"detect_arena_hit"`
	DetectArenaMiss  int64   `json:"detect_arena_miss"`
	DetectScratchHit int64   `json:"detect_scratch_hit"`
	DetectScratchMis int64   `json:"detect_scratch_miss"`
	HitRate          float64 `json:"hit_rate"`
}

// PerfReport is the full report emitted by Perf.
type PerfReport struct {
	Dataset string         `json:"dataset"`
	Clips   int            `json:"clips"`
	Seconds float64        `json:"clip_seconds"`
	Records []PerfRecord   `json:"records"`
	Cache   PerfCacheStats `json:"cache"`
	Pools   PerfPoolStats  `json:"pools"`
}

// poolCounters reads the per-clip pool counters from the process metrics
// registry. Perf diffs two reads to isolate one benchmark's traffic.
func poolCounters() PerfPoolStats {
	c := obs.Default.Snapshot().Counters
	return PerfPoolStats{
		TrackScratchHit:  c["track.pool.scratch.hit"],
		TrackScratchMiss: c["track.pool.scratch.miss"],
		DetectArenaHit:   c["detect.pool.arena.hit"],
		DetectArenaMiss:  c["detect.pool.arena.miss"],
		DetectScratchHit: c["detect.pool.scratch.hit"],
		DetectScratchMis: c["detect.pool.scratch.miss"],
	}
}

// diff returns p minus base, with the aggregate hit rate recomputed over
// the difference.
func (p PerfPoolStats) diff(base PerfPoolStats) PerfPoolStats {
	d := PerfPoolStats{
		TrackScratchHit:  p.TrackScratchHit - base.TrackScratchHit,
		TrackScratchMiss: p.TrackScratchMiss - base.TrackScratchMiss,
		DetectArenaHit:   p.DetectArenaHit - base.DetectArenaHit,
		DetectArenaMiss:  p.DetectArenaMiss - base.DetectArenaMiss,
		DetectScratchHit: p.DetectScratchHit - base.DetectScratchHit,
		DetectScratchMis: p.DetectScratchMis - base.DetectScratchMis,
	}
	hits := d.TrackScratchHit + d.DetectArenaHit + d.DetectScratchHit
	total := hits + d.TrackScratchMiss + d.DetectArenaMiss + d.DetectScratchMis
	if total > 0 {
		d.HitRate = float64(hits) / float64(total)
	}
	return d
}

func record(name string, fn func(b *testing.B)) PerfRecord {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return PerfRecord{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// Perf runs the kernel microbenchmarks and the end-to-end extraction
// benchmark (cache on and off) for the named dataset, writing the report
// as indented JSON. End-to-end runs are serial so allocation counts are
// deterministic; the cache-on run reports the frame cache's hit rate.
func (s *Suite) Perf(w io.Writer, name string) error {
	t, err := s.System(name)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(1))
	dense := nn.NewDense(32, 32, nn.ReLUAct, rng)
	x32 := nn.NewVec(32)
	for i := range x32 {
		x32[i] = rng.Float64()
	}
	gru := nn.NewGRUCell(7, 16, rng)
	x7 := nn.NewVec(7)
	for i := range x7 {
		x7[i] = rng.Float64()
	}
	lr := nn.NewLogReg(4, rng)
	x4 := nn.Vec{0.3, 0.1, 0.8, 0.5}
	mlp := nn.NewMLP([]int{28, 24, 1}, nn.ReLUAct, nn.SigmoidAct, rng)
	x28 := nn.NewVec(28)
	for i := range x28 {
		x28[i] = rng.Float64()
	}

	var sink float64
	records := []PerfRecord{
		record("DenseApply", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += dense.Apply(x32)[0]
			}
		}),
		record("DenseApplyInto", func(b *testing.B) {
			dst := nn.NewVec(32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += dense.ApplyInto(dst, x32)[0]
			}
		}),
		record("GRUStepInfer", func(b *testing.B) {
			h := nn.NewVec(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepInfer(h, x7)[0]
			}
		}),
		record("GRUStepInferInto", func(b *testing.B) {
			var scr nn.Scratch
			h := nn.NewVec(16)
			gru.StepInferInto(h, h, x7, &scr) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepInferInto(h, h, x7, &scr)[0]
			}
		}),
		record("LogRegPredict", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += lr.Predict(x4)
			}
		}),
		record("MLPApply", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += mlp.Apply(x28)[0]
			}
		}),
		record("MLPApplyWith", func(b *testing.B) {
			var scr nn.Scratch
			mlp.ApplyWith(&scr, x28) // warm the scratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += mlp.ApplyWith(&scr, x28)[0]
			}
		}),
	}

	// Batched vs. per-row scalar kernels at a representative batch of 16
	// (roughly the active-track count of a busy frame). The batched rows
	// must be allocation-free and beat their per-row equivalents; both
	// produce bit-identical outputs (pinned by internal/nn tests).
	const batchRows = 16
	xb32 := nn.NewVec(batchRows * 32)
	for i := range xb32 {
		xb32[i] = rng.Float64()
	}
	hb16 := nn.NewVec(batchRows * 16)
	xb7 := nn.NewVec(batchRows * 7)
	for i := range xb7 {
		xb7[i] = rng.Float64()
	}
	records = append(records,
		record("DenseApplyBatchInto16", func(b *testing.B) {
			dst := nn.NewVec(batchRows * 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += dense.ApplyBatchInto(dst, xb32, batchRows)[0]
			}
		}),
		record("DenseApplyIntoPerRow16", func(b *testing.B) {
			dst := nn.NewVec(batchRows * 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < batchRows; r++ {
					sink += dense.ApplyInto(dst[r*32:(r+1)*32], xb32[r*32:(r+1)*32])[0]
				}
			}
		}),
		record("GRUStepBatchInferInto16", func(b *testing.B) {
			var scr nn.BatchScratch
			gru.StepBatchInferInto(hb16, hb16, xb7, batchRows, &scr) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += gru.StepBatchInferInto(hb16, hb16, xb7, batchRows, &scr)[0]
			}
		}),
		record("GRUStepInferIntoPerRow16", func(b *testing.B) {
			var scr nn.Scratch
			gru.StepInferInto(hb16[:16], hb16[:16], xb7[:7], &scr) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < batchRows; r++ {
					sink += gru.StepInferInto(hb16[r*16:(r+1)*16], hb16[r*16:(r+1)*16], xb7[r*7:(r+1)*7], &scr)[0]
				}
			}
		}),
	)

	// End-to-end extraction, serial: cache off, then cache on (prefetch at
	// its default depth in both), then cache on with prefetch disabled.
	// The cache budget and prefetch depth are restored afterwards, and a
	// fresh cache is installed before the cached run so the reported hit
	// rate covers exactly that run. Pool counters are diffed around the
	// cached run for the same reason.
	prevWorkers := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(prevWorkers)
	defer video.SetPrefetchDepth(video.DefaultPrefetchDepth)
	cfg := t.Sys.Best
	clips := t.Sys.DS.Val

	video.SetCacheBudget(0)
	records = append(records, record("RunSetCacheOff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	video.SetCacheBudget(video.DefaultCacheBytes)
	pool0 := poolCounters()
	records = append(records, record("RunSetCacheOn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	cs := video.GlobalCacheStats()
	ps := poolCounters().diff(pool0)
	video.SetPrefetchDepth(0)
	records = append(records, record("RunSetPrefetchOff", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += t.Sys.RunSet(cfg, clips).Runtime
		}
	}))
	_ = sink

	rep := PerfReport{
		Dataset: name,
		Clips:   s.Spec.Clips,
		Seconds: s.Spec.ClipSeconds,
		Records: records,
		Cache: PerfCacheStats{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			HitRate:   cs.HitRate(),
		},
		Pools: ps,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		return fmt.Errorf("bench: writing perf report: %w", err)
	}
	return nil
}
