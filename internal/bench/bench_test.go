package bench

import (
	"bytes"
	"strings"
	"testing"

	"otif/internal/dataset"
	"otif/internal/tuner"
)

// tinySuite trains systems on very small sets: the harness tests verify
// plumbing and qualitative shape, not statistics.
var tiny *Suite

func tinySuite(t *testing.T) *Suite {
	t.Helper()
	if tiny == nil {
		tiny = NewSuite(dataset.SetSpec{Clips: 4, ClipSeconds: 6}, 7)
	}
	return tiny
}

func TestSuiteMemoizesSystems(t *testing.T) {
	s := tinySuite(t)
	a, err := s.System("caldot1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.System("caldot1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("suite retrained an already trained system")
	}
	if len(a.Curve) == 0 {
		t.Error("no tuning curve")
	}
}

func TestTrackCurvesIncludeAllMethods(t *testing.T) {
	s := tinySuite(t)
	curves, err := s.TrackCurves("caldot1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"OTIF": false, "Miris": false, "Chameleon": false,
		"NoScope": false, "CaTDet": false, "CenterTrack": false}
	for _, c := range curves {
		want[c.Method] = true
		if len(c.Points) == 0 {
			t.Errorf("%s has no test points", c.Method)
		}
	}
	for m, ok := range want {
		if !ok {
			t.Errorf("method %s missing from curves", m)
		}
	}
}

func TestTable2ShapeOnOneDataset(t *testing.T) {
	s := tinySuite(t)
	var buf bytes.Buffer
	rows, err := s.Table2(&buf, []string{"caldot1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	row := rows[0]
	otif1, okO := row.OneQuery["OTIF"]
	miris1, okM := row.OneQuery["Miris"]
	if !okO || !okM {
		t.Fatalf("missing OTIF/Miris entries: %v", row.OneQuery)
	}
	// The paper's headline: OTIF extracts all tracks faster than Miris
	// executes one query, and the gap grows at five queries.
	if otif1 >= miris1 {
		t.Errorf("OTIF (%v) not faster than Miris (%v) at 1 query", otif1, miris1)
	}
	if row.FiveQ["Miris"]/row.FiveQ["OTIF"] <= miris1/otif1 {
		t.Error("five-query speedup should exceed one-query speedup (Miris repeats per query)")
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("missing table header in output")
	}
}

func TestFastestWithinTol(t *testing.T) {
	curves := []MethodCurve{
		{Method: "A", Points: []tuner.Point{{Runtime: 10, Accuracy: 0.9}, {Runtime: 2, Accuracy: 0.86}}},
		{Method: "B", Points: []tuner.Point{{Runtime: 5, Accuracy: 0.7}}},
	}
	p, ok := FastestWithinTol(curves, "A", 0.05)
	if !ok || p.Runtime != 2 {
		t.Errorf("A pick = %v, %v", p, ok)
	}
	// B never reaches the band.
	if _, ok := FastestWithinTol(curves, "B", 0.05); ok {
		t.Error("B should miss the accuracy band")
	}
	if _, ok := FastestWithinTol(curves, "B", 0.5); !ok {
		t.Error("wide band should admit B")
	}
}

func TestValidate(t *testing.T) {
	s := tinySuite(t)
	var buf bytes.Buffer
	res := s.Validate(&buf)
	if res.ProxySeconds <= 0 || res.WithDecode <= res.ProxySeconds {
		t.Errorf("validate result implausible: %+v", res)
	}
	// Same order of magnitude as the reported ~100s.
	if res.ProxySeconds < 20 || res.ProxySeconds > 2000 {
		t.Errorf("proxy time %v not within an order of magnitude of the paper's 100s", res.ProxySeconds)
	}
}

func TestVariableGapComparable(t *testing.T) {
	s := tinySuite(t)
	var buf bytes.Buffer
	res, err := s.VariableGap(&buf, "caldot1")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Skip("no tuned configuration")
	}
	// The paper found variable-gap accuracy comparable to fixed; allow a
	// generous band on tiny sets.
	if diff := res.Variable.Accuracy - res.Fixed.Accuracy; diff < -0.35 {
		t.Errorf("variable gap much worse than fixed: %v vs %v", res.Variable.Accuracy, res.Fixed.Accuracy)
	}
	if res.Variable.Runtime <= 0 {
		t.Error("zero variable-gap runtime")
	}
}

func TestFigure6Breakdown(t *testing.T) {
	s := tinySuite(t)
	var buf bytes.Buffer
	res, err := s.Figure6(&buf, "caldot1")
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Skip("no tuned configuration")
	}
	if res.Preprocessing["train-detector"] <= 0 {
		t.Error("detector training missing from pre-processing breakdown")
	}
	if res.Execution["detect"] <= 0 || res.Execution["decode"] <= 0 {
		t.Errorf("execution breakdown incomplete: %v", res.Execution)
	}
}

func TestBuildFrameQueryChoosesSatisfiableN(t *testing.T) {
	s := tinySuite(t)
	tr, err := s.System("caldot1")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"count", "region", "hotspot"} {
		q := buildFrameQuery(tr, kind)
		if q.Pred == nil {
			t.Errorf("%s: nil predicate", kind)
		}
	}
}
