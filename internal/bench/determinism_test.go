package bench

import (
	"reflect"
	"sync"
	"testing"

	"otif/internal/dataset"
	"otif/internal/parallel"
)

// TestTrackCurvesDeterministicAcrossWorkerCounts trains two fresh suites
// from the same spec and seed — one serial, one on the worker pool — and
// asserts the full method curves match bit for bit.
func TestTrackCurvesDeterministicAcrossWorkerCounts(t *testing.T) {
	spec := dataset.SetSpec{Clips: 2, ClipSeconds: 4}

	defer parallel.SetWorkers(0)
	parallel.SetWorkers(1)
	serial, err := NewSuite(spec, 7).TrackCurves("caldot1")
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(4)
	par, err := NewSuite(spec, 7).TrackCurves("caldot1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, serial) {
		t.Errorf("parallel curves differ from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

// TestSuiteSystemConcurrent hammers one suite from many goroutines (run
// under -race): concurrent callers for the same dataset must share one
// training run, and different datasets must not corrupt each other.
func TestSuiteSystemConcurrent(t *testing.T) {
	s := NewSuite(dataset.SetSpec{Clips: 2, ClipSeconds: 4}, 7)
	datasets := []string{"caldot1", "jackson"}
	var wg sync.WaitGroup
	results := make([]*trained, 4*len(datasets))
	for g := 0; g < len(results); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, err := s.System(datasets[g%len(datasets)])
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = tr
		}(g)
	}
	wg.Wait()
	for g, tr := range results {
		if tr == nil {
			continue
		}
		first := results[g%len(datasets)]
		if tr != first {
			t.Errorf("goroutine %d got a different trained system for %s", g, datasets[g%len(datasets)])
		}
	}
}
