package bench

import (
	"testing"

	"otif/internal/parallel"
	"otif/internal/video"
)

// TestRunSetAllocGate pins the end-to-end cached extraction path's heap
// traffic. The PR-2 seed measured 10,756 allocs/op on the BENCH spec
// (8 clips x 8 s = 64 clip-seconds, ~168 allocs per clip-second); the
// pooled clip execution of PR 6 (tracker scratch pool, detection arena,
// geometry-keyed analysis scratch, DetsByFrame skipped in RunSet) must
// hold the rate to at most HALF that — and in practice sits near a
// quarter. The gate runs on this package's tiny suite and scales the
// bound by clip-seconds, so it needs no extra training.
func TestRunSetAllocGate(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks one full RunSet repeatedly")
	}
	s := tinySuite(t)
	tr, err := s.System("caldot1")
	if err != nil {
		t.Fatal(err)
	}
	prev := parallel.Workers()
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	video.SetCacheBudget(video.DefaultCacheBytes)
	defer video.SetCacheBudget(video.DefaultCacheBytes)

	cfg := tr.Sys.Best
	clips := tr.Sys.DS.Val
	tr.Sys.RunSet(cfg, clips) // warm the frame cache and clip pools

	var sink float64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += tr.Sys.RunSet(cfg, clips).Runtime
		}
	})
	_ = sink

	// Half the seed's per-clip-second rate, on this suite's clip-seconds.
	clipSeconds := float64(s.Spec.Clips) * s.Spec.ClipSeconds
	limit := int64(10756.0 / 64.0 / 2.0 * clipSeconds)
	if got := r.AllocsPerOp(); got > limit {
		t.Errorf("cached RunSet allocates %d allocs/op, gate is %d (half the PR-2 seed rate over %.0f clip-seconds)",
			got, limit, clipSeconds)
	} else {
		t.Logf("cached RunSet: %d allocs/op (gate %d)", got, limit)
	}
}
