package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"

	"otif/internal/ingest"
	"otif/internal/obs"
)

// Server wires the exposition endpoints onto one stdlib http mux. The
// data-plane surface is versioned under /v1 and selects a dataset with
// ?dataset= (empty means the registry's default):
//
//	GET  /metrics               Prometheus text exposition of the registry
//	GET  /healthz               liveness (200 once the process serves)
//	GET  /readyz                readiness (503 until Ready() reports true)
//	GET  /jobs                  all job records, submission order (JSON)
//	POST /jobs                  submit {"kind": ..., "params": {...}} → 202
//	GET  /jobs/{id}             one job record (JSON)
//	GET  /jobs/{id}/events      the job's event stream (SSE)
//	POST /jobs/{id}/cancel      cooperative cancellation
//	GET  /v1/datasets           registered datasets + segment manifests
//	     /v1/query/*            indexed track queries (see QueryAPI)
//	GET  /v1/streams            streaming ingest status (JSON)
//	GET  /v1/debug/trace        flight-recorder spans (?format=otif|chrome)
//	GET  /v1/debug/slow         the K slowest query requests with spans
//	GET  /v1/debug/bundle       one-shot tar.gz post-mortem artifact
//	GET  /v1/debug/vars         expvar
//	     /v1/debug/pprof/*      CPU/heap/goroutine profiling
//
// The pre-versioning routes (/query/*, /streams, /debug/*) remain as thin
// aliases onto the same handlers; they answer identically but set a
// "Deprecation: true" header and a Link header naming the successor
// route, so clients can migrate mechanically. The routing table test pins
// the alias ↔ canonical pairing.
//
// Every route is wrapped with per-route telemetry (request counter,
// in-flight gauge, status-class counters, latency histogram) exported as
// serve.route.* metrics; see middleware.go. Canonical and alias routes
// keep separate metric keys (v1_query_count vs query_count), which makes
// residual legacy traffic observable.
type Server struct {
	// Registry is the metrics source; nil selects obs.Default.
	Registry *obs.Registry
	// Manager handles the /jobs endpoints; nil serves 404 for them.
	Manager *Manager
	// Queries handles the /v1/query endpoints (and their legacy aliases);
	// nil serves 404 for them.
	Queries *QueryAPI
	// Ready gates /readyz; nil means always ready.
	Ready func() bool
	// Streams reports the active ingest session's stats for GET /streams;
	// ok is false when no session is streaming. nil serves 404 for the
	// endpoint.
	Streams func() (ingest.Stats, bool)
	// Config reports the effective configuration (flag values) for the
	// debug bundle; nil omits the bundle's config.json member.
	Config func() map[string]string
	// Prefix namespaces exported metric names; empty selects DefaultPrefix.
	Prefix string
	// SlowK caps the slow-request log (0 selects DefaultSlowRequests).
	SlowK int

	// slow retains the K slowest /query/* requests; built by Handler.
	slow *slowLog
}

// deprecate wraps a legacy alias handler: same behavior, plus the RFC
// 9745 Deprecation header and a Link naming the canonical successor.
func deprecate(successor string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		h.ServeHTTP(w, r)
	})
}

// Handler builds the routing table. Every route — including the debug
// and profiling endpoints — passes through the per-route telemetry
// wrapper.
func (s *Server) Handler() http.Handler {
	if s.slow == nil {
		s.slow = newSlowLog(s.SlowK)
	}
	mux := http.NewServeMux()
	handle := func(pattern string, h http.Handler) {
		mux.Handle(pattern, s.instrumentRoute(pattern, h))
	}
	handleFunc := func(pattern string, h http.HandlerFunc) { handle(pattern, h) }
	// alias mounts a legacy unversioned route onto its /v1 successor's
	// handler: the successor path is the pattern's path prefixed with /v1.
	alias := func(pattern string, h http.Handler) {
		path := pattern
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[i+1:]
		}
		handle(pattern, deprecate("/v1"+path, h))
	}
	aliasFunc := func(pattern string, h http.HandlerFunc) { alias(pattern, h) }
	handleFunc("GET /metrics", s.handleMetrics)
	handleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Ready != nil && !s.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	if s.Manager != nil {
		handleFunc("GET /jobs", s.handleJobList)
		handleFunc("POST /jobs", s.handleJobSubmit)
		handleFunc("GET /jobs/{id}", s.handleJobGet)
		handleFunc("GET /jobs/{id}/events", s.handleJobEvents)
		handleFunc("POST /jobs/{id}/cancel", s.handleJobCancel)
	}
	if s.Queries != nil {
		s.Queries.register(handleFunc, aliasFunc)
	}
	if s.Streams != nil {
		handleFunc("GET /v1/streams", s.handleStreams)
		aliasFunc("GET /streams", s.handleStreams)
	}
	handleFunc("GET /v1/debug/trace", s.handleTrace)
	aliasFunc("GET /debug/trace", s.handleTrace)
	handleFunc("GET /v1/debug/slow", s.handleSlow)
	aliasFunc("GET /debug/slow", s.handleSlow)
	handleFunc("GET /v1/debug/bundle", s.handleBundle)
	aliasFunc("GET /debug/bundle", s.handleBundle)
	handle("GET /v1/debug/vars", expvar.Handler())
	alias("GET /debug/vars", expvar.Handler())
	// The stdlib pprof handlers key on the hardcoded /debug/pprof/ prefix,
	// so the /v1 mount strips its version prefix before delegating.
	pprofRoutes := []struct {
		suffix string
		h      http.HandlerFunc
	}{
		{"", pprof.Index},
		{"cmdline", pprof.Cmdline},
		{"profile", pprof.Profile},
		{"symbol", pprof.Symbol},
		{"trace", pprof.Trace},
	}
	for _, pr := range pprofRoutes {
		handle("/v1/debug/pprof/"+pr.suffix, http.StripPrefix("/v1", pr.h))
		aliasFunc("/debug/pprof/"+pr.suffix, pr.h)
	}
	return mux
}

func (s *Server) registry() *obs.Registry {
	if s.Registry != nil {
		return s.Registry
	}
	return obs.Default
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WritePrometheus(w, s.registry().Snapshot(), s.Prefix); err != nil && obs.Log() != nil {
		obs.Log().Warn("otifd: metrics write failed", "error", err)
	}
}

// handleStreams reports streaming ingest status. It always answers 200 so
// pollers need no error handling: {"streaming": false} when idle, the
// session's stats inline when a stream is active.
func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Streams()
	if !ok {
		writeJSON(w, http.StatusOK, map[string]any{"streaming": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"streaming": true, "stats": st})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"kinds": s.Manager.Kinds(),
		"jobs":  s.Manager.List(),
	})
}

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Kind   string            `json:"kind"`
	Params map[string]string `json:"params"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Kind == "" {
		writeError(w, http.StatusBadRequest, `missing "kind"`)
		return
	}
	job, err := s.Manager.Submit(req.Kind, req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, job.View())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, ok := s.Manager.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q", id))
		return nil, false
	}
	return job, true
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if job, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, job.View())
	}
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.Manager.Cancel(job.ID()); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, job.View())
}

// handleJobEvents streams the job's events as Server-Sent Events: the
// buffered backlog first, then live events until the job reaches a
// terminal state or the client disconnects. Each frame carries the
// per-job sequence number as the SSE id, the event kind as the SSE event
// name, and the JobEvent JSON as data.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(e JobEvent) bool {
		data, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data); err != nil {
			return false
		}
		if canFlush {
			fl.Flush()
		}
		// A terminal state event is the stream's last frame.
		return !(e.Kind == "state" && e.State.Terminal())
	}

	backlog, ch, unsub := job.Subscribe()
	defer unsub()
	last := int64(0)
	for _, e := range backlog {
		if !send(e) {
			return
		}
		last = e.Seq
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e := <-ch:
			if e.Seq <= last {
				continue // already replayed from the backlog
			}
			if !send(e) {
				return
			}
			last = e.Seq
		case <-job.Done():
			// Drain events published before the terminal transition.
			for {
				select {
				case e := <-ch:
					if e.Seq <= last {
						continue
					}
					if !send(e) {
						return
					}
					last = e.Seq
				default:
					return
				}
			}
		}
	}
}
