package serve

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"otif/internal/obs"
	"otif/internal/store"
)

func TestRouteKey(t *testing.T) {
	cases := map[string]string{
		"GET /query/count":      "query_count",
		"POST /query/dwell":     "query_dwell",
		"GET /metrics":          "metrics",
		"GET /jobs/{id}/events": "jobs_id_events",
		"/debug/pprof/":         "debug_pprof",
		"GET /debug/vars":       "debug_vars",
		"GET /":                 "root",
	}
	for pattern, want := range cases {
		if got := routeKey(pattern); got != want {
			t.Errorf("routeKey(%q) = %q, want %q", pattern, got, want)
		}
	}
}

// TestRouteTelemetry asserts the per-route metric contract: every route
// carries a request counter, a latency histogram, an in-flight gauge and
// status-class counters, all under serve.route.<key>.*.
func TestRouteTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	s := &Server{
		Registry: reg,
		Ready:    func() bool { return false }, // /readyz answers 503
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503", resp.StatusCode)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["serve.route.healthz.requests"]; got != 3 {
		t.Errorf("healthz requests = %d, want 3", got)
	}
	if got := snap.Counters["serve.route.healthz.status_2xx"]; got != 3 {
		t.Errorf("healthz 2xx = %d, want 3", got)
	}
	if got := snap.Counters["serve.route.readyz.status_5xx"]; got != 1 {
		t.Errorf("readyz 5xx = %d, want 1", got)
	}
	h, ok := snap.Histograms["serve.route.healthz.seconds"]
	if !ok || h.Count != 3 {
		t.Errorf("healthz latency histogram = %+v, want count 3", h)
	}
	if got := snap.Gauges["serve.route.healthz.inflight"]; got != 0 {
		t.Errorf("healthz inflight after quiescence = %v, want 0", got)
	}
}

func TestStatusWriterDefaultsTo200(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	io.WriteString(sw, "ok")
	if sw.status != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", sw.status)
	}
	rec = httptest.NewRecorder()
	sw = &statusWriter{ResponseWriter: rec}
	sw.WriteHeader(http.StatusTeapot)
	sw.WriteHeader(http.StatusOK) // superfluous second call must not win
	if sw.status != http.StatusTeapot {
		t.Errorf("explicit status = %d, want 418", sw.status)
	}
}

// TestSlowLog pins the slow-request log contract: it retains only the K
// slowest entries, slowest first, and materializes the span subtree only
// for qualifying entries.
func TestSlowLog(t *testing.T) {
	l := newSlowLog(3)
	captures := 0
	spans := func() []obs.SpanRecord {
		captures++
		return []obs.SpanRecord{{Name: "http.query_count"}}
	}
	for _, sec := range []float64{0.5, 0.1, 0.9, 0.2, 0.05, 0.7} {
		l.offer(slowRequest{Route: "query_count", Seconds: sec}, spans)
	}
	got := l.snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	want := []float64{0.9, 0.7, 0.5}
	for i, e := range got {
		if e.Seconds != want[i] {
			t.Errorf("entry %d = %vs, want %vs", i, e.Seconds, want[i])
		}
		if len(e.Spans) != 1 {
			t.Errorf("entry %d has %d spans, want 1", i, len(e.Spans))
		}
	}
	// 0.2 and 0.05 never qualified once the log held {0.9, 0.5, 0.1+}:
	// 0.5, 0.1, 0.9, 0.2 (0.1 still slowest-k at that point), 0.7 → 5
	// captures; only 0.05 was rejected without materializing spans.
	if captures != 5 {
		t.Errorf("span subtrees materialized %d times, want 5", captures)
	}
}

func TestDefaultSlowLogSize(t *testing.T) {
	if l := newSlowLog(0); l.max != DefaultSlowRequests {
		t.Errorf("default slow log size = %d, want %d", l.max, DefaultSlowRequests)
	}
}

// TestSlowEndpoint drives a /query route (answering 503 with no store
// loaded) and asserts it appears in GET /debug/slow with its parameters.
func TestSlowEndpoint(t *testing.T) {
	datasets := store.NewRegistry()
	datasets.Register("live", store.ProviderFunc(func() store.Querier { return nil }))
	s := &Server{
		Registry: obs.NewRegistry(),
		Queries:  &QueryAPI{Datasets: datasets},
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query/count?category=car")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/query/count without store = %d, want 503", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		K        int           `json:"k"`
		Requests []slowRequest `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.K != DefaultSlowRequests {
		t.Errorf("k = %d, want %d", out.K, DefaultSlowRequests)
	}
	if len(out.Requests) != 1 {
		t.Fatalf("slow log has %d entries, want 1: %+v", len(out.Requests), out.Requests)
	}
	e := out.Requests[0]
	if e.Route != "query_count" || e.Status != 503 || e.Query != "category=car" {
		t.Errorf("slow entry = %+v", e)
	}
}

// TestTraceEndpoint covers the three /debug/trace answers: 404 with
// tracing disabled, span JSON by default, Chrome trace events on
// format=chrome, 400 on anything else.
func TestTraceEndpoint(t *testing.T) {
	s := &Server{Registry: obs.NewRegistry()}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	obs.SetRecorder(nil)
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace with tracing disabled = %d, want 404", resp.StatusCode)
	}

	obs.EnableTracing(64)
	defer obs.SetRecorder(nil)
	resp, err = http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	var otifTrace struct {
		Spans []obs.SpanRecord  `json:"spans"`
		Stats obs.RecorderStats `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&otifTrace); err != nil {
		t.Fatalf("otif trace: %v", err)
	}
	resp.Body.Close()
	if otifTrace.Stats.Capacity != 64 {
		t.Errorf("trace stats = %+v", otifTrace.Stats)
	}

	resp, err = http.Get(srv.URL + "/debug/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/debug/trace?format=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format = %d, want 400", resp.StatusCode)
	}
}

// TestBundleMembers downloads /debug/bundle and asserts the expected
// archive member set.
func TestBundleMembers(t *testing.T) {
	s := &Server{
		Registry: obs.NewRegistry(),
		Config: func() map[string]string {
			return map[string]string{"dataset": "caldot1"}
		},
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Errorf("Content-Type = %q", ct)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	members := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		members[hdr.Name] = data
	}
	for _, want := range []string{
		"metrics.json", "metrics.prom", "trace.json", "trace.chrome.json",
		"slow.json", "goroutines.txt", "heap.pprof", "buildinfo.txt", "config.json",
	} {
		if _, ok := members[want]; !ok {
			t.Errorf("bundle missing member %q (have %d members)", want, len(members))
		}
	}
	if _, ok := members["streams.json"]; ok {
		t.Error("bundle has streams.json with no Streams source configured")
	}
	var cfg map[string]string
	if err := json.Unmarshal(members["config.json"], &cfg); err != nil {
		t.Fatalf("config.json: %v", err)
	}
	if cfg["dataset"] != "caldot1" {
		t.Errorf("config.json = %v", cfg)
	}
	if !strings.Contains(string(members["goroutines.txt"]), "goroutine") {
		t.Error("goroutines.txt does not look like a goroutine dump")
	}
	var snap obs.MetricsSnapshot
	if err := json.Unmarshal(members["metrics.json"], &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
}
