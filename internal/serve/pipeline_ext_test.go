package serve_test

import (
	"context"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"otif"
	"otif/internal/obs"
	"otif/internal/serve"
)

// The tests in this file drive the exposition layer against a real
// (tiny) pipeline: a trained and tuned caldot1 instance with 2 clips of
// 2 seconds per set. They assert the acceptance contract of the serving
// layer: concurrent scrapes race-free against a running extraction job,
// bit-identical extraction results with scraping and logging enabled,
// and cooperative cancellation landing at a clip boundary.

var (
	pipeOnce sync.Once
	pipe     *otif.Pipeline
	pipeCfg  otif.Config
	pipeErr  error
	// relay forwards pipeline progress events to the active job.
	relay atomic.Pointer[obs.Progress]
)

func testPipeline(t *testing.T) (*otif.Pipeline, otif.Config) {
	t.Helper()
	pipeOnce.Do(func() {
		pipe, pipeErr = otif.OpenWith("caldot1",
			otif.WithClips(2), otif.WithClipSeconds(2),
			otif.WithProgress(func(e obs.Event) {
				if p := relay.Load(); p != nil {
					(*p)(e)
				}
			}))
		if pipeErr != nil {
			return
		}
		pipe.Train()
		curve, err := pipe.Tune()
		if err != nil {
			pipeErr = err
			return
		}
		pick, err := otif.PickFastestWithin(curve, 0.05)
		if err != nil {
			pipeErr = err
			return
		}
		pipeCfg = pick.Cfg
	})
	if pipeErr != nil {
		t.Fatal(pipeErr)
	}
	return pipe, pipeCfg
}

// extractRunner builds a job runner executing one test-set extraction,
// with pipeline progress routed into the job while it runs. wrap, when
// non-nil, decorates the job's progress hook (used to gate cancellation
// deterministically).
func extractRunner(p *otif.Pipeline, cfg otif.Config, wrap func(obs.Progress) obs.Progress) serve.Runner {
	return func(ctx context.Context, job *serve.Job, progress obs.Progress) (any, error) {
		if wrap != nil {
			progress = wrap(progress)
		}
		relay.Store(&progress)
		defer relay.Store(nil)
		ts, err := p.ExtractContext(ctx, cfg, otif.Test)
		if err != nil {
			return nil, err
		}
		return map[string]any{"clips": len(ts.PerClip), "runtime": ts.Runtime}, nil
	}
}

// TestScrapeRacesWithExtractionJob scrapes /metrics (and reads job
// views) continuously while an extraction job runs — under -race this
// proves the exposition path shares no unsynchronized state with the
// pipeline.
func TestScrapeRacesWithExtractionJob(t *testing.T) {
	p, cfg := testPipeline(t)
	m := serve.NewManager(0)
	defer m.Close()
	m.Register("extract", extractRunner(p, cfg, nil))
	srv := httptest.NewServer((&serve.Server{Manager: m}).Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/jobs", "/healthz"} {
					resp, err := http.Get(srv.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}

	j, err := m.Submit("extract", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("extraction job did not finish")
	}
	close(stop)
	wg.Wait()
	if got := j.State(); got != serve.JobDone {
		t.Fatalf("job state = %q, want done (view %+v)", got, j.View())
	}
}

// TestExtractionBitIdenticalWithServingEnabled runs the same extraction
// with the daemon surface fully active (structured logging installed,
// /metrics scraped concurrently) and fully inactive, and requires
// bit-identical runtimes and track counts.
func TestExtractionBitIdenticalWithServingEnabled(t *testing.T) {
	p, cfg := testPipeline(t)

	baseline, err := p.Extract(cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}

	otif.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	defer otif.SetLogger(nil)
	srv := httptest.NewServer((&serve.Server{}).Handler())
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	served, err := p.Extract(cfg, otif.Test)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if math.Float64bits(baseline.Runtime) != math.Float64bits(served.Runtime) {
		t.Errorf("runtime changed under serving: %v vs %v", baseline.Runtime, served.Runtime)
	}
	if len(baseline.PerClip) != len(served.PerClip) {
		t.Fatalf("clip count changed: %d vs %d", len(baseline.PerClip), len(served.PerClip))
	}
	for i := range baseline.PerClip {
		if len(baseline.PerClip[i]) != len(served.PerClip[i]) {
			t.Errorf("clip %d track count changed: %d vs %d",
				i, len(baseline.PerClip[i]), len(served.PerClip[i]))
		}
	}
}

// TestCancelLandsAtClipBoundary gates the extraction after its first
// clip event, posts the cancel over HTTP, then releases the worker: the
// job must end canceled with a partial record showing at least one but
// not all clips done.
func TestCancelLandsAtClipBoundary(t *testing.T) {
	p, cfg := testPipeline(t)
	prev := otif.Parallelism()
	otif.SetParallelism(1) // serial clips: the gate blocks the only worker
	defer otif.SetParallelism(prev)

	firstClip := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	wrap := func(next obs.Progress) obs.Progress {
		return func(e obs.Event) {
			next(e)
			if e.Kind == obs.EventClip {
				once.Do(func() {
					close(firstClip)
					<-proceed
				})
			}
		}
	}

	m := serve.NewManager(0)
	defer m.Close()
	m.Register("extract", extractRunner(p, cfg, wrap))
	srv := httptest.NewServer((&serve.Server{Manager: m}).Handler())
	defer srv.Close()

	j, err := m.Submit("extract", nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-firstClip:
	case <-time.After(60 * time.Second):
		t.Fatal("no clip event")
	}
	resp, err := http.Post(srv.URL+"/jobs/"+j.ID()+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	close(proceed)

	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish after cancel")
	}
	v := j.View()
	if v.State != serve.JobCanceled {
		t.Fatalf("state = %q, want canceled (%+v)", v.State, v)
	}
	if v.Partial == nil {
		t.Fatal("canceled job has no partial record")
	}
	if v.Partial.Stage != "extract" || v.Partial.Done < 1 || v.Partial.Done >= v.Partial.Total {
		t.Errorf("partial = %+v, want extract with 1 <= done < total", v.Partial)
	}
}
