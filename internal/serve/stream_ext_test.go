package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"otif"
	"otif/internal/serve"
	"otif/internal/store"
)

// TestQueriesDuringStreamingIngest hammers /query/count and /streams from
// several goroutines while a streaming ingest session appends clips to
// the live store. The live store is append-only, so every valid response
// must be an exact prefix of the final per-clip counts: a torn index read
// (a response mixing pre- and post-append state) would break the prefix
// property. Run under -race this also proves snapshot publication shares
// no unsynchronized state with the query path.
func TestQueriesDuringStreamingIngest(t *testing.T) {
	p, _ := testPipeline(t)
	const limit = 4
	sess, err := p.Ingest(context.Background(),
		otif.WithCameras(2), otif.WithCameraClips(limit), otif.WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	datasets := store.NewRegistry()
	datasets.Register("caldot1", store.ProviderFunc(func() store.Querier {
		if s := sess.Store(); s.Clips() > 0 {
			return s
		}
		return nil
	}))
	srv := httptest.NewServer((&serve.Server{
		Queries: &serve.QueryAPI{Datasets: datasets},
		Streams: func() (otif.IngestStats, bool) { return sess.Stats(), true },
	}).Handler())
	defer srv.Close()

	type countResp struct {
		PerClip []int `json:"per_clip"`
		Total   int   `json:"total"`
	}
	var mu sync.Mutex
	var responses []countResp

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/query/count?category=car")
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					var c countResp
					if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
						t.Error(err)
					} else {
						mu.Lock()
						responses = append(responses, c)
						mu.Unlock()
					}
				}
				resp.Body.Close()

				resp, err = http.Get(srv.URL + "/streams")
				if err != nil {
					t.Error(err)
					return
				}
				var sr struct {
					Streaming bool             `json:"streaming"`
					Stats     otif.IngestStats `json:"stats"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
					t.Error(err)
				} else if !sr.Streaming || len(sr.Stats.Cameras) != 2 {
					t.Errorf("bad /streams response: %+v", sr)
				}
				resp.Body.Close()
			}
		}()
	}

	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let in-flight queries observe the final store
	close(stop)
	wg.Wait()

	final := sess.Store().CountTracks("car")
	if len(final) != 2*limit {
		t.Fatalf("final store has %d clips, want %d", len(final), 2*limit)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(responses) == 0 {
		t.Fatal("no successful /query/count responses recorded")
	}
	sawFinal := false
	for _, r := range responses {
		if len(r.PerClip) > len(final) {
			t.Fatalf("response has %d clips, store never exceeded %d", len(r.PerClip), len(final))
		}
		total := 0
		for i, c := range r.PerClip {
			if c != final[i] {
				t.Fatalf("torn read: response %v is not a prefix of final counts %v", r.PerClip, final)
			}
			total += c
		}
		if total != r.Total {
			t.Fatalf("response total %d does not match its per-clip counts %v", r.Total, r.PerClip)
		}
		if len(r.PerClip) == len(final) {
			sawFinal = true
		}
	}
	if !sawFinal {
		t.Error("no query observed the fully published store")
	}
}
