package serve_test

import (
	"archive/tar"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"otif"
	"otif/internal/obs"
	"otif/internal/serve"
	"otif/internal/store"
)

// TestDebugEndpointsDuringStreamingIngest hammers /debug/trace (both
// formats), /debug/bundle and /query/count from several goroutines while
// a two-camera streaming ingest session records spans into the flight
// recorder. Run under -race this proves the recorder's ring, the
// per-route telemetry, the slow-request log and the bundle collectors
// share no unsynchronized state with the pipeline. Afterwards it asserts
// the observability surface end to end: ingest spans carry camera
// attributes, the slow log holds query requests with span subtrees, and
// /metrics exports the trace.* and serve.route.* series.
func TestDebugEndpointsDuringStreamingIngest(t *testing.T) {
	rec := otif.EnableTracing(1 << 12)
	defer otif.DisableTracing()

	p, _ := testPipeline(t)
	sess, err := p.Ingest(context.Background(),
		otif.WithCameras(2), otif.WithCameraClips(3), otif.WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	datasets := store.NewRegistry()
	datasets.Register("caldot1", store.ProviderFunc(func() store.Querier {
		if s := sess.Store(); s.Clips() > 0 {
			return s
		}
		return nil
	}))
	srv := httptest.NewServer((&serve.Server{
		Queries: &serve.QueryAPI{Datasets: datasets},
		Streams: func() (otif.IngestStats, bool) { return sess.Stats(), true },
		Config: func() map[string]string {
			return map[string]string{"dataset": "caldot1"}
		},
	}).Handler())
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
			return resp.StatusCode, nil
		}
		return resp.StatusCode, body
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, body := get("/debug/trace"); code == http.StatusOK {
					var tr struct {
						Spans []obs.SpanRecord  `json:"spans"`
						Stats obs.RecorderStats `json:"stats"`
					}
					if err := json.Unmarshal(body, &tr); err != nil {
						t.Errorf("otif trace: %v", err)
						return
					}
				} else {
					t.Errorf("/debug/trace = %d", code)
					return
				}
				if code, body := get("/debug/trace?format=chrome"); code == http.StatusOK {
					var chrome struct {
						TraceEvents []json.RawMessage `json:"traceEvents"`
					}
					if err := json.Unmarshal(body, &chrome); err != nil {
						t.Errorf("chrome trace: %v", err)
						return
					}
				} else {
					t.Errorf("/debug/trace?format=chrome = %d", code)
					return
				}
				if code, body := get("/debug/bundle"); code == http.StatusOK {
					gz, err := gzip.NewReader(strings.NewReader(string(body)))
					if err != nil {
						t.Errorf("bundle gzip: %v", err)
						return
					}
					tr := tar.NewReader(gz)
					n := 0
					for {
						if _, err := tr.Next(); err == io.EOF {
							break
						} else if err != nil {
							t.Errorf("bundle tar: %v", err)
							return
						}
						n++
						if _, err := io.Copy(io.Discard, tr); err != nil {
							t.Errorf("bundle member: %v", err)
							return
						}
					}
					if n < 9 {
						t.Errorf("bundle has %d members, want >= 9", n)
						return
					}
				} else {
					t.Errorf("/debug/bundle = %d", code)
					return
				}
				get("/query/count?category=car") // 503 until the first clip publishes
			}
		}()
	}

	if err := sess.Wait(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The recorder saw the ingest spans with their camera attributes.
	cams := map[string]bool{}
	for _, s := range rec.Snapshot() {
		if s.Name == "ingest.clip" {
			if s.Stage != "ingest" || s.Camera == "" || s.Clip < 0 {
				t.Errorf("ingest span missing attributes: %+v", s)
			}
			cams[s.Camera] = true
		}
	}
	if len(cams) != 2 {
		t.Errorf("ingest spans cover cameras %v, want 2 cameras", cams)
	}

	// The slow log retained query requests, each with its span subtree
	// rooted at the request's http span.
	code, body := get("/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/debug/slow = %d", code)
	}
	var slow struct {
		K        int `json:"k"`
		Requests []struct {
			Route string           `json:"route"`
			Path  string           `json:"path"`
			Spans []obs.SpanRecord `json:"spans"`
		} `json:"requests"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Requests) == 0 {
		t.Fatal("slow log empty after hammering /query/count")
	}
	for _, e := range slow.Requests {
		if e.Route != "query_count" {
			t.Errorf("slow entry route = %q", e.Route)
		}
		if len(e.Spans) == 0 || e.Spans[0].Name != "http.query_count" || e.Spans[0].Stage != "serve" {
			t.Errorf("slow entry spans = %+v, want http.query_count root", e.Spans)
		}
	}

	// /metrics exports the ring-occupancy gauges and per-route series.
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, series := range []string{
		"otif_trace_capacity",
		"otif_trace_spans_recorded",
		"otif_serve_route_query_count_requests_total",
		"otif_serve_route_debug_trace_requests_total",
		"otif_serve_route_debug_bundle_status_2xx_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
}
