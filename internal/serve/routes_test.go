package serve

import (
	"net/http/httptest"
	"strings"
	"testing"

	"otif/internal/ingest"
	"otif/internal/query"
	"otif/internal/store"
)

// shardedFixtureDataset rebuilds the query fixture's clips as a two-segment
// Sharded, registered under "shards" — the same data served scatter-gather.
func shardedFixtureDataset(t *testing.T, srv *Server, st *store.Store) *store.Sharded {
	t.Helper()
	perClip := [][]*query.Track{st.Tracks(0), st.Tracks(1)}
	segs := store.SplitSegments(perClip, st.Context(), 1)
	sh, err := store.NewSharded("shards", st.Context(), segs, store.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	srv.Queries.Datasets.Register("shards", sh)
	return sh
}

// TestRouteAliases is the routing table test: every legacy unversioned
// route must answer exactly like its /v1 successor, carry the Deprecation
// header and a Link naming the successor, while the canonical route
// carries neither.
func TestRouteAliases(t *testing.T) {
	srv, _ := queryFixture()
	srv.Streams = func() (ingest.Stats, bool) { return ingest.Stats{}, false }
	h := srv.Handler()

	cases := []struct {
		method, legacy, body string
		compareBody          bool // skip for endpoints whose body varies per request
	}{
		{"GET", "/query/count?category=car", "", true},
		{"GET", "/query/breakdown?category=car", "", true},
		{"GET", "/query/limit?category=car&n=2&limit=3", "", true},
		{"POST", "/query/dwell", `{"category":"car","region":[[-1,-1],[641,-1],[641,361],[-1,361]]}`, true},
		{"GET", "/streams", "", true},
		{"GET", "/debug/slow", "", false},
		{"GET", "/debug/trace", "", false},
		{"GET", "/debug/vars", "", false},
		{"GET", "/debug/pprof/", "", false},
	}
	for _, c := range cases {
		do := func(target string) *httptest.ResponseRecorder {
			req := httptest.NewRequest(c.method, target, strings.NewReader(c.body))
			if c.body != "" {
				req.Header.Set("Content-Type", "application/json")
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return rec
		}
		legacy, canonical := do(c.legacy), do("/v1"+c.legacy)

		if legacy.Code != canonical.Code {
			t.Errorf("%s %s = %d but /v1 successor = %d", c.method, c.legacy, legacy.Code, canonical.Code)
		}
		if c.compareBody && legacy.Body.String() != canonical.Body.String() {
			t.Errorf("%s %s body differs from its /v1 successor:\nlegacy:    %s\ncanonical: %s",
				c.method, c.legacy, legacy.Body.String(), canonical.Body.String())
		}
		if got := legacy.Header().Get("Deprecation"); got != "true" {
			t.Errorf("%s %s Deprecation header = %q, want \"true\"", c.method, c.legacy, got)
		}
		path := c.legacy
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		if got, want := legacy.Header().Get("Link"), "</v1"+path+`>; rel="successor-version"`; got != want {
			t.Errorf("%s %s Link header = %q, want %q", c.method, c.legacy, got, want)
		}
		if got := canonical.Header().Get("Deprecation"); got != "" {
			t.Errorf("canonical %s /v1%s carries Deprecation header %q", c.method, c.legacy, got)
		}
		if got := canonical.Header().Get("Link"); got != "" {
			t.Errorf("canonical %s /v1%s carries Link header %q", c.method, c.legacy, got)
		}
	}
}

// TestRouteMetricKeysSeparate pins that canonical and alias routes keep
// separate serve.route.* metric keys, so residual legacy traffic is
// observable in /metrics.
func TestRouteMetricKeysSeparate(t *testing.T) {
	srv, _ := queryFixture()
	h := srv.Handler()
	for _, target := range []string{"/query/count?category=car", "/v1/query/count?category=car"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		if rec.Code != 200 {
			t.Fatalf("GET %s = %d", target, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"otif_serve_route_query_count_requests_total",
		"otif_serve_route_v1_query_count_requests_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing series %s", series)
		}
	}
}

// TestDatasetsEndpoint pins the GET /v1/datasets shape: the default name
// plus one row per dataset, with the segment manifest for sharded ones.
func TestDatasetsEndpoint(t *testing.T) {
	srv, st := queryFixture()
	shardedFixtureDataset(t, srv, st)

	code, out := doQueryJSON(t, srv, "GET", "/v1/datasets", "")
	if code != 200 {
		t.Fatalf("status = %d, want 200: %v", code, out)
	}
	if out["default"] != "test" {
		t.Errorf("default = %v, want test (first registered)", out["default"])
	}
	rows := out["datasets"].([]any)
	if len(rows) != 2 {
		t.Fatalf("datasets rows = %d, want 2", len(rows))
	}
	byName := map[string]map[string]any{}
	for _, r := range rows {
		m := r.(map[string]any)
		byName[m["name"].(string)] = m
	}
	for name, m := range byName {
		if m["ready"] != true || m["clips"].(float64) != 2 {
			t.Errorf("dataset %s = %v, want ready with 2 clips", name, m)
		}
	}
	if _, hasManifest := byName["test"]["manifest"]; hasManifest {
		t.Error("monolithic dataset carries a manifest")
	}
	manifest, ok := byName["shards"]["manifest"].(map[string]any)
	if !ok {
		t.Fatalf("sharded dataset missing manifest: %v", byName["shards"])
	}
	segs := manifest["segments"].([]any)
	if len(segs) != 2 {
		t.Fatalf("manifest segments = %d, want 2", len(segs))
	}
	next := 0.0
	for i, s := range segs {
		m := s.(map[string]any)
		if m["id"] != store.SegmentID(i) || m["start_clip"].(float64) != next || m["sealed"] != true {
			t.Errorf("manifest segment %d = %v", i, m)
		}
		next += m["clips"].(float64)
	}
}

// TestQueryDatasetSelector pins the ?dataset= contract: the empty selector
// answers from the default, a named dataset answers from its own store, a
// sharded dataset answers byte-identically to the monolithic one over the
// same clips, and an unknown name is 404.
func TestQueryDatasetSelector(t *testing.T) {
	srv, st := queryFixture()
	shardedFixtureDataset(t, srv, st)
	h := srv.Handler()

	get := func(target, body string) (int, string) {
		method := "GET"
		if body != "" {
			method = "POST"
		}
		req := httptest.NewRequest(method, target, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	codeDef, bodyDef := get("/v1/query/count?category=car", "")
	codeNamed, bodyNamed := get("/v1/query/count?category=car&dataset=test", "")
	codeShards, bodyShards := get("/v1/query/count?category=car&dataset=shards", "")
	if codeDef != 200 || codeNamed != 200 || codeShards != 200 {
		t.Fatalf("statuses = %d/%d/%d, want 200", codeDef, codeNamed, codeShards)
	}
	if bodyDef != bodyNamed {
		t.Error("default and dataset=test answers differ")
	}
	if bodyDef != bodyShards {
		t.Errorf("scatter-gather answer differs from monolithic:\n mono: %s\nshard: %s", bodyDef, bodyShards)
	}

	if code, _ := get("/v1/query/count?category=car&dataset=nope", ""); code != 404 {
		t.Errorf("unknown dataset = %d, want 404", code)
	}

	// The selector must be read from the URL only: a POST body with a
	// dataset selector in the query string passes through intact.
	dwell := `{"category":"car","region":[[-1,-1],[641,-1],[641,361],[-1,361]]}`
	codeA, bodyA := get("/v1/query/dwell?dataset=test", dwell)
	codeB, bodyB := get("/v1/query/dwell?dataset=shards", dwell)
	if codeA != 200 || codeB != 200 {
		t.Fatalf("dwell with selector = %d/%d, want 200", codeA, codeB)
	}
	if bodyA != bodyB {
		t.Error("dwell over sharded dataset differs from monolithic")
	}
}
