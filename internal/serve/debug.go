package serve

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/debug"
	rpprof "runtime/pprof"
	"time"

	"otif/internal/obs"
)

// Debug endpoints: one-shot introspection of a live daemon.
//
//	GET /debug/trace?format=otif|chrome   the flight recorder's spans
//	GET /debug/slow                       the K slowest /query/* requests
//	GET /debug/bundle                     tar.gz post-mortem artifact
//
// /debug/trace answers 404 while tracing is disabled. The chrome format
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rec := obs.CurrentRecorder()
	if rec == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (start otifd with -trace-spans > 0)")
		return
	}
	format := r.FormValue("format")
	if format == "" {
		format = "otif"
	}
	switch format {
	case "otif":
		w.Header().Set("Content-Type", "application/json")
		rec.WriteJSON(w)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="otif-trace.chrome.json"`)
		rec.WriteChrome(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad format %q (want otif or chrome)", format))
	}
}

func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	entries := []slowRequest{}
	k := 0
	if s.slow != nil {
		entries = s.slow.snapshot()
		k = s.slow.max
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"k":        k,
		"requests": entries,
	})
}

// handleBundle streams one tar.gz carrying everything a post-mortem
// needs: the metrics registry (JSON and Prometheus text), both trace
// formats, the slow-request log, goroutine and heap profiles, build
// info, the effective configuration, and streaming-ingest status. Every
// member is built in memory first so a failing collector degrades to a
// missing member instead of a truncated archive.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="otif-debug-bundle.tar.gz"`)
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()
	add := func(name string, fill func(*bytes.Buffer) error) {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			if obs.Log() != nil {
				obs.Log().Warn("otifd: bundle member failed", "member", name, "error", err)
			}
			return
		}
		tw.WriteHeader(&tar.Header{
			Name:    name,
			Mode:    0644,
			Size:    int64(buf.Len()),
			ModTime: now,
		})
		tw.Write(buf.Bytes())
	}
	addJSON := func(name string, v any) {
		add(name, func(buf *bytes.Buffer) error {
			enc := json.NewEncoder(buf)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		})
	}

	snap := s.registry().Snapshot()
	addJSON("metrics.json", snap)
	add("metrics.prom", func(buf *bytes.Buffer) error {
		return WritePrometheus(buf, snap, s.Prefix)
	})
	rec := obs.CurrentRecorder()
	add("trace.json", func(buf *bytes.Buffer) error { return rec.WriteJSON(buf) })
	add("trace.chrome.json", func(buf *bytes.Buffer) error { return rec.WriteChrome(buf) })
	slow := []slowRequest{}
	if s.slow != nil {
		slow = s.slow.snapshot()
	}
	addJSON("slow.json", slow)
	add("goroutines.txt", func(buf *bytes.Buffer) error {
		return rpprof.Lookup("goroutine").WriteTo(buf, 2)
	})
	add("heap.pprof", func(buf *bytes.Buffer) error {
		return rpprof.Lookup("heap").WriteTo(buf, 0)
	})
	add("buildinfo.txt", func(buf *bytes.Buffer) error {
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return fmt.Errorf("no build info")
		}
		_, err := buf.WriteString(info.String())
		return err
	})
	if s.Config != nil {
		addJSON("config.json", s.Config())
	}
	if s.Streams != nil {
		st, ok := s.Streams()
		if ok {
			addJSON("streams.json", map[string]any{"streaming": true, "stats": st})
		} else {
			addJSON("streams.json", map[string]any{"streaming": false})
		}
	}

	if err := tw.Close(); err == nil {
		gz.Close()
	}
}
