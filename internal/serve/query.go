package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"otif/internal/geom"
	"otif/internal/obs"
	"otif/internal/query"
	"otif/internal/store"
)

// Query serving metrics: request/error counters plus a latency histogram.
// The paper's contract is millisecond query execution over stored tracks;
// serve.query_seconds makes that observable per deployment.
var (
	metQueryRequests = obs.Default.Counter("serve.query_requests")
	metQueryErrors   = obs.Default.Counter("serve.query_errors")
	metQuerySeconds  = obs.Default.Histogram("serve.query_seconds",
		0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1)
)

// QueryAPI serves the versioned query endpoints over the dataset registry:
//
//	GET  /v1/datasets                                 registered datasets + manifests
//	GET  /v1/query/count?category=car                 per-clip track counts
//	GET  /v1/query/breakdown?category=car&maxdist=90  path (movement) breakdown
//	GET  /v1/query/limit?category=car&n=2&limit=5&minsep=1.5
//	                                                  frame-level limit query
//	POST /v1/query/dwell {"category":"car","region":[[x,y],...]}
//	                                                  per-track dwell seconds
//
// Every query endpoint accepts a ?dataset= selector resolved against
// Datasets; the empty selector means the registry's default dataset, so
// single-dataset deployments need no selector. The selector is read from
// the URL query string only — never the body — so POST bodies pass
// through untouched. The legacy unversioned /query/* routes serve the
// same handlers with a Deprecation header (see Server.Handler).
//
// Datasets supplies the named stores. A default dataset that is not yet
// loaded answers 503; an explicitly named dataset that is not registered
// answers 404. Movements supplies the dataset's labeled movements for
// /v1/query/breakdown (nil: 404 for that endpoint's data).
type QueryAPI struct {
	Datasets  *store.Registry
	Movements func() []query.Movement
}

// register wires the query routes: handle mounts a canonical /v1 route,
// alias mounts a legacy unversioned route onto the same handler with the
// deprecation headers.
func (q *QueryAPI) register(handle, alias func(pattern string, h http.HandlerFunc)) {
	handle("GET /v1/datasets", q.handleDatasets)
	routes := []struct {
		method, name string
		h            http.HandlerFunc
	}{
		{"GET", "count", q.instrument(q.handleCount)},
		{"GET", "breakdown", q.instrument(q.handleBreakdown)},
		{"GET", "limit", q.instrument(q.handleLimit)},
		{"POST", "dwell", q.instrument(q.handleDwell)},
	}
	for _, rt := range routes {
		handle(rt.method+" /v1/query/"+rt.name, rt.h)
		alias(rt.method+" /query/"+rt.name, rt.h)
	}
}

// resolve maps the request's ?dataset= selector to a point-in-time store.
// The error, when non-nil, has already been written to w.
func (q *QueryAPI) resolve(w http.ResponseWriter, r *http.Request) (store.Querier, bool) {
	// URL query only: FormValue would consume a form-encoded POST body.
	name := r.URL.Query().Get("dataset")
	if q.Datasets == nil {
		metQueryErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, "no dataset registry configured")
		return nil, false
	}
	s, err := q.Datasets.Resolve(name)
	if err != nil {
		metQueryErrors.Inc()
		if name == "" {
			// No default registered yet: the deployment is still loading.
			writeError(w, http.StatusServiceUnavailable, "no track set loaded (extract first, or start with -tracks)")
		} else {
			writeError(w, http.StatusNotFound, err.Error())
		}
		return nil, false
	}
	if s == nil {
		metQueryErrors.Inc()
		writeError(w, http.StatusServiceUnavailable, "no track set loaded (extract first, or start with -tracks)")
		return nil, false
	}
	return s, true
}

// instrument wraps a query handler with dataset resolution, the request
// counter and the latency histogram.
func (q *QueryAPI) instrument(h func(w http.ResponseWriter, r *http.Request, s store.Querier)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		metQueryRequests.Inc()
		s, ok := q.resolve(w, r)
		if !ok {
			return
		}
		start := time.Now()
		h(w, r, s)
		metQuerySeconds.Observe(time.Since(start).Seconds())
	}
}

// datasetView is one row of the GET /v1/datasets response.
type datasetView struct {
	Name     string          `json:"name"`
	Ready    bool            `json:"ready"`
	Clips    int             `json:"clips"`
	Manifest *store.Manifest `json:"manifest,omitempty"`
}

func (q *QueryAPI) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if q.Datasets == nil {
		writeError(w, http.StatusServiceUnavailable, "no dataset registry configured")
		return
	}
	names := q.Datasets.Names()
	views := make([]datasetView, 0, len(names))
	for _, name := range names {
		v := datasetView{Name: name}
		if s, err := q.Datasets.Resolve(name); err == nil && s != nil {
			v.Ready = true
			v.Clips = s.Clips()
			if sh, ok := s.(*store.Sharded); ok {
				m := sh.Manifest()
				v.Manifest = &m
			}
		}
		views = append(views, v)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"default":  q.Datasets.Default(),
		"datasets": views,
	})
}

func (q *QueryAPI) handleCount(w http.ResponseWriter, r *http.Request, s store.Querier) {
	cat := r.FormValue("category")
	perClip := s.CountTracks(cat)
	total := 0
	for _, c := range perClip {
		total += c
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": cat,
		"per_clip": perClip,
		"total":    total,
	})
}

func (q *QueryAPI) handleBreakdown(w http.ResponseWriter, r *http.Request, s store.Querier) {
	var movements []query.Movement
	if q.Movements != nil {
		movements = q.Movements()
	}
	if len(movements) == 0 {
		metQueryErrors.Inc()
		writeError(w, http.StatusNotFound, "no movements available for this dataset")
		return
	}
	cat := r.FormValue("category")
	maxDist, err := floatParam(r, "maxdist", 0.22*float64(s.Context().NomW))
	if err != nil {
		metQueryErrors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	perClip := s.PathBreakdown(cat, movements, maxDist)
	agg := map[string]int{}
	for _, m := range perClip {
		for k, v := range m {
			agg[k] += v
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": cat,
		"maxdist":  maxDist,
		"per_clip": perClip,
		"total":    agg,
	})
}

// limitFrame is one frame match in the /v1/query/limit response.
type limitFrame struct {
	FrameIdx int         `json:"frame"`
	Boxes    []geom.Rect `json:"boxes"`
}

func (q *QueryAPI) handleLimit(w http.ResponseWriter, r *http.Request, s store.Querier) {
	cat := r.FormValue("category")
	n, err1 := intParam(r, "n", 1)
	limit, err2 := intParam(r, "limit", 10)
	minSepSec, err3 := floatParam(r, "minsep", 0)
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			metQueryErrors.Inc()
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	minSep := int(minSepSec * float64(s.Context().FPS))
	perClip := s.LimitQuery(cat, query.CountPredicate{N: n}, limit, minSep)
	out := make([][]limitFrame, len(perClip))
	for i, ms := range perClip {
		out[i] = make([]limitFrame, len(ms))
		for j, m := range ms {
			out[i][j] = limitFrame{FrameIdx: m.FrameIdx, Boxes: m.Boxes}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": cat,
		"n":        n,
		"per_clip": out,
	})
}

// dwellRequest is the POST /v1/query/dwell body: a category and a
// polygonal region as [x, y] vertex pairs in nominal frame coordinates.
type dwellRequest struct {
	Category string       `json:"category"`
	Region   [][2]float64 `json:"region"`
}

func (q *QueryAPI) handleDwell(w http.ResponseWriter, r *http.Request, s store.Querier) {
	var req dwellRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		metQueryErrors.Inc()
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Region) < 3 {
		metQueryErrors.Inc()
		writeError(w, http.StatusBadRequest, "region needs at least 3 vertices")
		return
	}
	region := make(geom.Polygon, len(req.Region))
	for i, p := range req.Region {
		region[i] = geom.Point{X: p[0], Y: p[1]}
	}
	perClip := s.DwellTime(req.Category, region)
	out := make([]map[string]float64, len(perClip))
	for i, m := range perClip {
		out[i] = make(map[string]float64, len(m))
		for id, sec := range m {
			out[i][strconv.Itoa(id)] = sec
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": req.Category,
		"per_clip": out,
	})
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.FormValue(name)
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	s := r.FormValue(name)
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}
