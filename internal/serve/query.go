package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"otif/internal/geom"
	"otif/internal/obs"
	"otif/internal/query"
	"otif/internal/store"
)

// Query serving metrics: request/error counters plus a latency histogram.
// The paper's contract is millisecond query execution over stored tracks;
// serve.query_seconds makes that observable per deployment.
var (
	metQueryRequests = obs.Default.Counter("serve.query_requests")
	metQueryErrors   = obs.Default.Counter("serve.query_errors")
	metQuerySeconds  = obs.Default.Histogram("serve.query_seconds",
		0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1)
)

// QueryAPI serves the /query/* endpoints over an indexed track store:
//
//	GET  /query/count?category=car                 per-clip track counts
//	GET  /query/breakdown?category=car&maxdist=90  path (movement) breakdown
//	GET  /query/limit?category=car&n=2&limit=5&minsep=1.5
//	                                               frame-level limit query
//	POST /query/dwell {"category":"car","region":[[x,y],...]}
//	                                               per-track dwell seconds
//
// Store supplies the current indexed store (nil while no tracks are
// loaded: endpoints answer 503). Movements supplies the dataset's labeled
// movements for /query/breakdown (nil: 404 for that endpoint's data).
type QueryAPI struct {
	Store     func() *store.Store
	Movements func() []query.Movement
}

// register wires the query routes through the server's route
// instrumentation.
func (q *QueryAPI) register(handle func(pattern string, h http.HandlerFunc)) {
	handle("GET /query/count", q.instrument(q.handleCount))
	handle("GET /query/breakdown", q.instrument(q.handleBreakdown))
	handle("GET /query/limit", q.instrument(q.handleLimit))
	handle("POST /query/dwell", q.instrument(q.handleDwell))
}

// instrument wraps a query handler with the store-availability gate, the
// request counter and the latency histogram.
func (q *QueryAPI) instrument(h func(w http.ResponseWriter, r *http.Request, s *store.Store)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		metQueryRequests.Inc()
		s := q.Store()
		if s == nil {
			metQueryErrors.Inc()
			writeError(w, http.StatusServiceUnavailable, "no track set loaded (extract first, or start with -tracks)")
			return
		}
		start := time.Now()
		h(w, r, s)
		metQuerySeconds.Observe(time.Since(start).Seconds())
	}
}

func (q *QueryAPI) handleCount(w http.ResponseWriter, r *http.Request, s *store.Store) {
	cat := r.FormValue("category")
	perClip := s.CountTracks(cat)
	total := 0
	for _, c := range perClip {
		total += c
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": cat,
		"per_clip": perClip,
		"total":    total,
	})
}

func (q *QueryAPI) handleBreakdown(w http.ResponseWriter, r *http.Request, s *store.Store) {
	var movements []query.Movement
	if q.Movements != nil {
		movements = q.Movements()
	}
	if len(movements) == 0 {
		metQueryErrors.Inc()
		writeError(w, http.StatusNotFound, "no movements available for this dataset")
		return
	}
	cat := r.FormValue("category")
	maxDist, err := floatParam(r, "maxdist", 0.22*float64(s.Context().NomW))
	if err != nil {
		metQueryErrors.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	perClip := s.PathBreakdown(cat, movements, maxDist)
	agg := map[string]int{}
	for _, m := range perClip {
		for k, v := range m {
			agg[k] += v
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": cat,
		"maxdist":  maxDist,
		"per_clip": perClip,
		"total":    agg,
	})
}

// limitFrame is one frame match in the /query/limit response.
type limitFrame struct {
	FrameIdx int         `json:"frame"`
	Boxes    []geom.Rect `json:"boxes"`
}

func (q *QueryAPI) handleLimit(w http.ResponseWriter, r *http.Request, s *store.Store) {
	cat := r.FormValue("category")
	n, err1 := intParam(r, "n", 1)
	limit, err2 := intParam(r, "limit", 10)
	minSepSec, err3 := floatParam(r, "minsep", 0)
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			metQueryErrors.Inc()
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	minSep := int(minSepSec * float64(s.Context().FPS))
	perClip := s.LimitQuery(cat, query.CountPredicate{N: n}, limit, minSep)
	out := make([][]limitFrame, len(perClip))
	for i, ms := range perClip {
		out[i] = make([]limitFrame, len(ms))
		for j, m := range ms {
			out[i][j] = limitFrame{FrameIdx: m.FrameIdx, Boxes: m.Boxes}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": cat,
		"n":        n,
		"per_clip": out,
	})
}

// dwellRequest is the POST /query/dwell body: a category and a polygonal
// region as [x, y] vertex pairs in nominal frame coordinates.
type dwellRequest struct {
	Category string       `json:"category"`
	Region   [][2]float64 `json:"region"`
}

func (q *QueryAPI) handleDwell(w http.ResponseWriter, r *http.Request, s *store.Store) {
	var req dwellRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		metQueryErrors.Inc()
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Region) < 3 {
		metQueryErrors.Inc()
		writeError(w, http.StatusBadRequest, "region needs at least 3 vertices")
		return
	}
	region := make(geom.Polygon, len(req.Region))
	for i, p := range req.Region {
		region[i] = geom.Point{X: p[0], Y: p[1]}
	}
	perClip := s.DwellTime(req.Category, region)
	out := make([]map[string]float64, len(perClip))
	for i, m := range perClip {
		out[i] = make(map[string]float64, len(m))
		for id, sec := range m {
			out[i][strconv.Itoa(id)] = sec
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"category": req.Category,
		"per_clip": out,
	})
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.FormValue(name)
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	s := r.FormValue(name)
	if s == "" {
		return def, nil
	}
	return strconv.ParseFloat(s, 64)
}
