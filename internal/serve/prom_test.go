package serve

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"otif/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// seededRegistry builds a registry with one metric of every kind and
// fixed values, mirroring the pipeline's naming scheme.
func seededRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("run.clips").Add(12)
	r.Counter("run.frames").Add(3456)
	r.Counter("detect.invocations").Add(789)
	r.Cost("cost.decode").Add(1.5)
	r.Cost("cost.detect").Add(0.0625) // exact in binary: survives format round-trips
	r.Gauge("cache.hit_rate").Set(0.75)
	r.Gauge("cache.bytes").Set(1 << 20)
	h := r.Histogram("run.tracks_per_clip", 1, 2, 5)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.7)
	h.Observe(4)
	h.Observe(100)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, seededRegistry().Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition output diverged from %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// Rendering the same snapshot twice must be byte-identical (map
// iteration order must never leak into the output).
func TestWritePrometheusDeterministic(t *testing.T) {
	snap := seededRegistry().Snapshot()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, snap, ""); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, snap, ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of one snapshot differ")
	}
}

// Every series name in the output must be a valid Prometheus identifier
// and every histogram must close with le="+Inf".
func TestWritePrometheusNamesValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, seededRegistry().Snapshot(), "otif"); err != nil {
		t.Fatal(err)
	}
	sawInf := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !obs.ValidPromName(name) {
			t.Errorf("invalid series name %q in line %q", name, line)
		}
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Error("histogram exposition lacks the mandatory le=\"+Inf\" bucket")
	}
	for _, want := range []string{
		"otif_run_clips_total 12",
		"otif_cost_decode_seconds_total 1.5",
		"otif_cache_hit_rate 0.75",
		"otif_run_tracks_per_clip_count 5",
		`otif_run_tracks_per_clip_bucket{le="2"} 3`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q:\n%s", want, buf.String())
		}
	}
}
