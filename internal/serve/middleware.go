package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"otif/internal/obs"
)

// Per-route telemetry. Every route the Server exposes is wrapped with one
// routeStats: a request counter, an in-flight gauge, status-class
// counters, and a latency histogram, all named under
// serve.route.<key>.* where <key> is the sanitized route path
// ("GET /query/count" → "query_count"). Methods sharing a path share a
// key — the route is the resource, and the status-class counters
// distinguish outcomes. The wrapper also opens one "serve"-stage span per
// request, so handler-internal spans (store scans, job submissions) nest
// under their request in the flight recorder.

// routeLatencyBounds are the histogram buckets for per-route request
// latencies, in seconds. The paper's contract is millisecond query
// execution over stored tracks, so the buckets resolve 100µs..1s.
var routeLatencyBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}

// routeKey sanitizes a mux pattern into a metric-name segment: the method
// is dropped, path separators and wildcards become underscores.
func routeKey(pattern string) string {
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		pattern = pattern[i+1:]
	}
	var b strings.Builder
	pendingSep := false
	for _, c := range pattern {
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
		default:
			pendingSep = b.Len() > 0
			continue
		}
		if pendingSep {
			b.WriteByte('_')
			pendingSep = false
		}
		b.WriteRune(c)
	}
	if b.Len() == 0 {
		return "root"
	}
	return b.String()
}

// routeStats is the pre-registered metric set of one route.
type routeStats struct {
	requests *obs.Counter
	seconds  *obs.Histogram
	inflight *obs.Gauge
	status   [4]*obs.Counter // 2xx, 3xx, 4xx, 5xx
}

// statusWriter captures the response status code without changing the
// response. It forwards Flush (the SSE endpoint needs it) and exposes the
// wrapped writer through Unwrap for http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrumentRoute wraps one route's handler with its telemetry: metrics
// registration happens once here at routing-table build time, and the
// per-request path only touches pre-registered handles. Requests under
// /query/ additionally compete for the slow-request log.
func (s *Server) instrumentRoute(pattern string, h http.Handler) http.Handler {
	key := routeKey(pattern)
	reg := s.registry()
	base := "serve.route." + key
	st := &routeStats{
		requests: reg.Counter(base + ".requests"),
		seconds:  reg.Histogram(base+".seconds", routeLatencyBounds...),
		inflight: reg.Gauge(base + ".inflight"),
	}
	for i := range st.status {
		st.status[i] = reg.Counter(fmt.Sprintf("%s.status_%dxx", base, i+2))
	}
	path := pattern
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[i+1:]
	}
	slowCandidate := strings.HasPrefix(path, "/query/") || strings.HasPrefix(path, "/v1/query/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st.requests.Inc()
		st.inflight.Add(1)
		defer st.inflight.Add(-1)

		ctx, sp := obs.StartSpan(r.Context(), "http."+key)
		sp.SetStage("serve")
		var tee *bodyTee
		if slowCandidate && r.Body != nil {
			tee = &bodyTee{rc: r.Body}
			r.Body = tee
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start).Seconds()

		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		sp.SetErr(code >= 500)
		sp.End()
		st.seconds.Observe(elapsed)
		if c := code/100 - 2; c >= 0 && c < len(st.status) {
			st.status[c].Inc()
		}
		if slowCandidate && s.slow != nil {
			e := slowRequest{
				Route:   key,
				Method:  r.Method,
				Path:    r.URL.Path,
				Query:   r.URL.RawQuery,
				Status:  code,
				Seconds: elapsed,
				Time:    time.Now().UTC(),
			}
			if tee != nil && tee.buf.Len() > 0 {
				e.Body = tee.buf.String()
			}
			s.slow.offer(e, func() []obs.SpanRecord {
				return obs.CurrentRecorder().Subtree(sp.ID())
			})
		}
	})
}

// bodyTee copies the first slowBodyCap bytes of a request body as it is
// read, so the slow-request log can show the parameters of a slow POST
// query without buffering unbounded bodies.
const slowBodyCap = 4 << 10

type bodyTee struct {
	rc  io.ReadCloser
	buf bytes.Buffer
}

func (t *bodyTee) Read(p []byte) (int, error) {
	n, err := t.rc.Read(p)
	if n > 0 && t.buf.Len() < slowBodyCap {
		m := n
		if rem := slowBodyCap - t.buf.Len(); m > rem {
			m = rem
		}
		t.buf.Write(p[:m])
	}
	return n, err
}

func (t *bodyTee) Close() error { return t.rc.Close() }

// DefaultSlowRequests is how many slow requests the Server retains when
// SlowK is zero.
const DefaultSlowRequests = 16

// slowRequest is one retained entry of the slow-request log: the request
// identity and parameters plus the span subtree the request produced in
// the flight recorder (empty when tracing is disabled or the spans have
// already been overwritten).
type slowRequest struct {
	Route   string           `json:"route"`
	Method  string           `json:"method"`
	Path    string           `json:"path"`
	Query   string           `json:"query,omitempty"`
	Body    string           `json:"body,omitempty"`
	Status  int              `json:"status"`
	Seconds float64          `json:"seconds"`
	Time    time.Time        `json:"time"`
	Spans   []obs.SpanRecord `json:"spans,omitempty"`
}

// slowLog retains the K slowest query requests seen so far, slowest
// first.
type slowLog struct {
	mu      sync.Mutex
	max     int
	entries []slowRequest
}

func newSlowLog(k int) *slowLog {
	if k <= 0 {
		k = DefaultSlowRequests
	}
	return &slowLog{max: k}
}

// offer inserts e if it ranks among the K slowest. The span subtree is
// materialized through spans() only for qualifying entries, outside the
// lock — the common fast request costs one mutexed comparison.
func (l *slowLog) offer(e slowRequest, spans func() []obs.SpanRecord) {
	l.mu.Lock()
	if len(l.entries) >= l.max && e.Seconds <= l.entries[len(l.entries)-1].Seconds {
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()
	if spans != nil {
		e.Spans = spans()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.entries), func(i int) bool {
		return l.entries[i].Seconds < e.Seconds
	})
	if i >= l.max {
		return // raced: the log filled with slower entries meanwhile
	}
	l.entries = append(l.entries, slowRequest{})
	copy(l.entries[i+1:], l.entries[i:])
	l.entries[i] = e
	if len(l.entries) > l.max {
		l.entries = l.entries[:l.max]
	}
}

// snapshot copies the retained entries, slowest first.
func (l *slowLog) snapshot() []slowRequest {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]slowRequest(nil), l.entries...)
}
