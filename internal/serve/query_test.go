package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/query"
	"otif/internal/store"
)

// queryFixture builds a Server with a two-clip store: clip 0 holds two cars
// crossing the frame left-to-right, clip 1 holds one bus.
func queryFixture() (*Server, *store.Store) {
	car := func(id, startF int, y float64) *query.Track {
		return &query.Track{
			ID: id, Category: "car",
			Dets: []detect.Detection{
				{FrameIdx: startF, Box: geom.Rect{X: 10, Y: y, W: 40, H: 30}, Category: "car"},
				{FrameIdx: startF + 40, Box: geom.Rect{X: 560, Y: y, W: 40, H: 30}, Category: "car"},
			},
			Path: geom.Path{{X: 30, Y: y + 15}, {X: 580, Y: y + 15}},
		}
	}
	bus := &query.Track{
		ID: 7, Category: "bus",
		Dets: []detect.Detection{
			{FrameIdx: 5, Box: geom.Rect{X: 100, Y: 200, W: 80, H: 50}, Category: "bus"},
			{FrameIdx: 60, Box: geom.Rect{X: 400, Y: 200, W: 80, H: 50}, Category: "bus"},
		},
	}
	perClip := [][]*query.Track{
		{car(1, 0, 100), car(2, 20, 160)},
		{bus},
	}
	st := store.New(perClip, query.Context{FPS: 10, NomW: 640, NomH: 360, Frames: 100})
	datasets := store.NewRegistry()
	datasets.Register("test", st)
	srv := &Server{
		Queries: &QueryAPI{
			Datasets: datasets,
			Movements: func() []query.Movement {
				return []query.Movement{{Name: "eastbound", Path: geom.Path{{X: 10, Y: 115}, {X: 600, Y: 115}}}}
			},
		},
	}
	return srv, st
}

func doQueryJSON(t *testing.T, srv *Server, method, target, body string) (int, map[string]any) {
	t.Helper()
	var req = httptest.NewRequest(method, target, strings.NewReader(body))
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON response %q: %v", method, target, rec.Body.String(), err)
	}
	return rec.Code, out
}

func TestQueryCount(t *testing.T) {
	srv, st := queryFixture()
	code, out := doQueryJSON(t, srv, "GET", "/query/count?category=car", "")
	if code != 200 {
		t.Fatalf("status = %d, want 200", code)
	}
	if out["total"].(float64) != 2 {
		t.Errorf("total = %v, want 2", out["total"])
	}
	want := st.CountTracks("car")
	got := out["per_clip"].([]any)
	if len(got) != len(want) {
		t.Fatalf("per_clip length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if int(got[i].(float64)) != want[i] {
			t.Errorf("clip %d: count %v, want %d", i, got[i], want[i])
		}
	}
}

func TestQueryBreakdown(t *testing.T) {
	srv, _ := queryFixture()
	code, out := doQueryJSON(t, srv, "GET", "/query/breakdown?category=car", "")
	if code != 200 {
		t.Fatalf("status = %d, want 200: %v", code, out)
	}
	total := out["total"].(map[string]any)
	if total["eastbound"].(float64) != 2 {
		t.Errorf("eastbound = %v, want 2", total["eastbound"])
	}
}

func TestQueryBreakdownNoMovements(t *testing.T) {
	srv, _ := queryFixture()
	srv.Queries.Movements = nil
	code, _ := doQueryJSON(t, srv, "GET", "/query/breakdown?category=car", "")
	if code != 404 {
		t.Errorf("status without movements = %d, want 404", code)
	}
}

func TestQueryLimit(t *testing.T) {
	srv, st := queryFixture()
	code, out := doQueryJSON(t, srv, "GET", "/query/limit?category=car&n=2&limit=3&minsep=1", "")
	if code != 200 {
		t.Fatalf("status = %d, want 200: %v", code, out)
	}
	perClip := out["per_clip"].([]any)
	want := st.LimitQuery("car", query.CountPredicate{N: 2}, 3, 10)
	for i, w := range want {
		if got := perClip[i].([]any); len(got) != len(w) {
			t.Errorf("clip %d: %d matches, want %d", i, len(got), len(w))
		}
	}
	if len(want[0]) == 0 {
		t.Fatal("fixture should produce at least one 2-car frame in clip 0")
	}
	first := perClip[0].([]any)[0].(map[string]any)
	if int(first["frame"].(float64)) != want[0][0].FrameIdx {
		t.Errorf("first match frame %v, want %d", first["frame"], want[0][0].FrameIdx)
	}
	if boxes := first["boxes"].([]any); len(boxes) != 2 {
		t.Errorf("first match has %d boxes, want 2", len(boxes))
	}
}

func TestQueryLimitBadParam(t *testing.T) {
	srv, _ := queryFixture()
	code, _ := doQueryJSON(t, srv, "GET", "/query/limit?n=two", "")
	if code != 400 {
		t.Errorf("status for bad n = %d, want 400", code)
	}
}

func TestQueryDwell(t *testing.T) {
	srv, st := queryFixture()
	body := `{"category":"car","region":[[-1,-1],[641,-1],[641,361],[-1,361]]}`
	code, out := doQueryJSON(t, srv, "POST", "/query/dwell", body)
	if code != 200 {
		t.Fatalf("status = %d, want 200: %v", code, out)
	}
	want := st.DwellTime("car", geom.Polygon{{X: -1, Y: -1}, {X: 641, Y: -1}, {X: 641, Y: 361}, {X: -1, Y: 361}})
	perClip := out["per_clip"].([]any)
	for i, w := range want {
		got := perClip[i].(map[string]any)
		if len(got) != len(w) {
			t.Errorf("clip %d: %d dwell entries, want %d", i, len(got), len(w))
		}
	}
	// The whole-frame region must cover both cars of clip 0.
	if clip0 := perClip[0].(map[string]any); len(clip0) != 2 {
		t.Errorf("clip 0 dwell entries = %d, want 2", len(clip0))
	}
}

func TestQueryDwellBadRegion(t *testing.T) {
	srv, _ := queryFixture()
	code, _ := doQueryJSON(t, srv, "POST", "/query/dwell", `{"category":"car","region":[[0,0],[1,1]]}`)
	if code != 400 {
		t.Errorf("status for 2-vertex region = %d, want 400", code)
	}
	code, _ = doQueryJSON(t, srv, "POST", "/query/dwell", `not json`)
	if code != 400 {
		t.Errorf("status for invalid JSON = %d, want 400", code)
	}
}

func TestQueryUnavailableStore(t *testing.T) {
	datasets := store.NewRegistry()
	datasets.Register("live", store.ProviderFunc(func() store.Querier { return nil }))
	srv := &Server{Queries: &QueryAPI{Datasets: datasets}}
	for _, target := range []string{"/query/count", "/query/breakdown", "/query/limit"} {
		code, _ := doQueryJSON(t, srv, "GET", target, "")
		if code != 503 {
			t.Errorf("GET %s with nil store: status = %d, want 503", target, code)
		}
	}
	code, _ := doQueryJSON(t, srv, "POST", "/query/dwell", `{}`)
	if code != 503 {
		t.Errorf("POST /query/dwell with nil store: status = %d, want 503", code)
	}
}

func TestQueryRoutesAbsentWithoutAPI(t *testing.T) {
	srv := &Server{}
	req := httptest.NewRequest("GET", "/query/count", nil)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != 404 {
		t.Errorf("status without Queries = %d, want 404", rec.Code)
	}
}
