package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"otif/internal/core"
	"otif/internal/obs"
)

// The job manager runs long pipeline operations (tune, extract) in the
// background on behalf of HTTP clients. Each job owns a bounded ring
// buffer of structured events — its state transitions plus every
// obs.Progress event the operation emits — that late subscribers replay
// and live subscribers stream over SSE. Cancellation goes through the
// job's context, so it lands exactly where the pipeline's cooperative
// cancellation does: clip boundaries for extraction, iteration
// boundaries for tuning, with a *core.PartialError recording how far the
// work got.

// JobState is one node of the job lifecycle state machine:
//
//	pending → running → done
//	                  ↘ failed
//	                  ↘ canceled
type JobState string

// The job states. Done, Failed and Canceled are terminal.
const (
	JobPending  JobState = "pending"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether s is a final state.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobEvent is one entry of a job's event stream: either a lifecycle
// transition (Kind "state") or a pipeline progress event (Kind is the
// obs event kind: "tune.iter", "tune.candidate", "clip", "cache",
// "ingest.clip"). Seq
// numbers are per-job, contiguous from 1; a gap at an SSE client means
// the bounded ring evicted events faster than the client read them.
type JobEvent struct {
	Seq   int64    `json:"seq"`
	Kind  string   `json:"kind"`
	State JobState `json:"state,omitempty"`

	Iteration    int     `json:"iteration,omitempty"`
	Index        int     `json:"index,omitempty"`
	Total        int     `json:"total,omitempty"`
	Config       string  `json:"config,omitempty"`
	Runtime      float64 `json:"runtime,omitempty"`
	Accuracy     float64 `json:"accuracy,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`

	Error string `json:"error,omitempty"`
}

// PartialInfo mirrors core.PartialError for job records: how many units
// (clips or iterations) a canceled or failed operation completed.
type PartialInfo struct {
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// JobView is the JSON-serializable snapshot of a job returned by the
// /jobs endpoints.
type JobView struct {
	ID       string            `json:"id"`
	Kind     string            `json:"kind"`
	Params   map[string]string `json:"params,omitempty"`
	State    JobState          `json:"state"`
	Created  time.Time         `json:"created"`
	Started  *time.Time        `json:"started,omitempty"`
	Finished *time.Time        `json:"finished,omitempty"`
	Error    string            `json:"error,omitempty"`
	Partial  *PartialInfo      `json:"partial,omitempty"`
	Result   any               `json:"result,omitempty"`
	// Events counts all events ever emitted; Dropped counts those the
	// bounded ring has already evicted.
	Events  int64 `json:"events"`
	Dropped int64 `json:"dropped"`
}

// Job is one background operation. All fields are guarded by mu; HTTP
// handlers read through View and Subscribe.
type Job struct {
	id     string
	kind   string
	params map[string]string

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	errMsg   string
	partial  *PartialInfo
	result   any

	cancel    context.CancelFunc
	cancelled bool // cancel was requested by a client

	ring    []JobEvent // bounded backlog, oldest first
	ringCap int
	seq     int64
	dropped int64
	subs    map[chan JobEvent]struct{}
	done    chan struct{} // closed on entering a terminal state
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// View snapshots the job for JSON serialization.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		Kind:    j.kind,
		Params:  j.params,
		State:   j.state,
		Created: j.created,
		Error:   j.errMsg,
		Result:  j.result,
		Events:  j.seq,
		Dropped: j.dropped,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.partial != nil {
		p := *j.partial
		v.Partial = &p
	}
	return v
}

// publish appends one event to the ring (evicting the oldest beyond
// capacity) and fans it out to subscribers. Slow subscribers never block
// a publish: a full subscriber channel drops the event for that client,
// who sees the gap in Seq and can re-read the backlog.
func (j *Job) publish(e JobEvent) {
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	if len(j.ring) >= j.ringCap {
		n := copy(j.ring, j.ring[1:])
		j.ring = j.ring[:n]
		j.dropped++
	}
	j.ring = append(j.ring, e)
	for ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
	j.mu.Unlock()
}

// Subscribe returns a copy of the buffered backlog plus a channel
// receiving subsequent events. Call the returned cancel function to
// unsubscribe.
func (j *Job) Subscribe() (backlog []JobEvent, ch <-chan JobEvent, cancel func()) {
	c := make(chan JobEvent, j.ringCap)
	j.mu.Lock()
	backlog = append([]JobEvent(nil), j.ring...)
	j.subs[c] = struct{}{}
	j.mu.Unlock()
	return backlog, c, func() {
		j.mu.Lock()
		delete(j.subs, c)
		j.mu.Unlock()
	}
}

// transition moves the job to state, stamps timestamps, publishes the
// "state" event and logs it. errMsg rides along for failure states.
func (j *Job) transition(state JobState, errMsg string) {
	j.mu.Lock()
	j.state = state
	now := time.Now()
	switch state {
	case JobRunning:
		j.started = now
	case JobDone, JobFailed, JobCanceled:
		j.finished = now
		j.errMsg = errMsg
	}
	terminal := state.Terminal()
	j.mu.Unlock()
	j.publish(JobEvent{Kind: "state", State: state, Error: errMsg})
	if l := obs.Log(); l != nil {
		l.Info("otifd: job state", "job", j.id, "kind", j.kind, "state", string(state), "error", errMsg)
	}
	if terminal {
		close(j.done)
	}
}

// progress adapts obs.Progress events into the job's event stream. It is
// installed for the duration of the job's pipeline operation; events
// arrive concurrently from clip workers, and publish serializes them.
func (j *Job) progress(e obs.Event) {
	j.publish(JobEvent{
		Kind:         string(e.Kind),
		Iteration:    e.Iteration,
		Index:        e.Index,
		Total:        e.Total,
		Config:       e.Config,
		Runtime:      e.Runtime,
		Accuracy:     e.Accuracy,
		CacheHitRate: e.CacheHitRate,
	})
}

// Runner executes one job kind. It receives a context canceled by
// POST /jobs/{id}/cancel (and by manager shutdown), and a progress
// callback already wired into the job's event stream; the returned value
// becomes the job record's result field. Returning an error wrapping
// context.Canceled after a cancel request yields state "canceled";
// any other error yields "failed". A *core.PartialError in the chain is
// surfaced as the job's partial record either way.
type Runner func(ctx context.Context, job *Job, progress obs.Progress) (any, error)

// Manager owns job submission, lookup and cancellation.
type Manager struct {
	ctx     context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	ringCap int

	mu      sync.Mutex
	runners map[string]Runner
	jobs    map[string]*Job
	order   []string
	next    int64
}

// NewManager returns a manager whose jobs buffer up to ringCap events
// each (non-positive selects 256).
func NewManager(ringCap int) *Manager {
	if ringCap <= 0 {
		ringCap = 256
	}
	ctx, stop := context.WithCancel(context.Background())
	return &Manager{
		ctx:     ctx,
		stop:    stop,
		ringCap: ringCap,
		runners: map[string]Runner{},
		jobs:    map[string]*Job{},
	}
}

// Register installs the runner for a job kind (e.g. "tune", "extract").
func (m *Manager) Register(kind string, r Runner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.runners[kind] = r
}

// Kinds lists the registered job kinds, sorted.
func (m *Manager) Kinds() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.runners))
	for k := range m.runners {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// Submit creates a job of the given kind and starts it on its own
// goroutine. It returns an error for unregistered kinds and after Close.
func (m *Manager) Submit(kind string, params map[string]string) (*Job, error) {
	m.mu.Lock()
	r, ok := m.runners[kind]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: unknown job kind %q", kind)
	}
	if m.ctx.Err() != nil {
		m.mu.Unlock()
		return nil, errors.New("serve: manager closed")
	}
	m.next++
	// The job's context exists before its goroutine starts, so a cancel
	// request arriving while the job is still pending is never lost.
	ctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		id:      fmt.Sprintf("job-%d", m.next),
		kind:    kind,
		params:  params,
		state:   JobPending,
		created: time.Now(),
		cancel:  cancel,
		ringCap: m.ringCap,
		subs:    map[chan JobEvent]struct{}{},
		done:    make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.mu.Unlock()

	m.wg.Add(1)
	go m.run(ctx, cancel, j, r)
	return j, nil
}

// run drives one job through its lifecycle.
func (m *Manager) run(ctx context.Context, cancel context.CancelFunc, j *Job, r Runner) {
	defer m.wg.Done()
	defer cancel()

	j.transition(JobRunning, "")
	res, err := r(ctx, j, j.progress)

	var pe *core.PartialError
	if errors.As(err, &pe) {
		j.mu.Lock()
		j.partial = &PartialInfo{Stage: pe.Stage, Done: pe.Done, Total: pe.Total}
		j.mu.Unlock()
	}
	j.mu.Lock()
	j.result = res
	wasCancelled := j.cancelled
	j.mu.Unlock()
	switch {
	case err == nil:
		j.transition(JobDone, "")
	case wasCancelled && errors.Is(err, context.Canceled):
		j.transition(JobCanceled, err.Error())
	default:
		j.transition(JobFailed, err.Error())
	}
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns snapshots of every job in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.View()
	}
	return out
}

// Cancel requests cooperative cancellation of a running job. Canceling a
// job already in a terminal state is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("serve: no job %q", id)
	}
	j.mu.Lock()
	if !j.state.Terminal() {
		j.cancelled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	return nil
}

// Close cancels every running job and waits for their goroutines to
// drain.
func (m *Manager) Close() {
	m.stop()
	m.wg.Wait()
}

// sortStrings is an allocation-light insertion sort (kind lists are
// tiny; avoids importing sort for one call site).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
}
