package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"otif/internal/core"
	"otif/internal/obs"
)

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not reach a terminal state (now %q)", j.ID(), j.State())
	}
	if got := j.State(); got != want {
		t.Fatalf("job %s state = %q, want %q", j.ID(), got, want)
	}
}

func TestJobLifecycleDone(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	m.Register("ok", func(ctx context.Context, job *Job, progress obs.Progress) (any, error) {
		for i := 0; i < 3; i++ {
			progress.Emit(obs.Event{Kind: obs.EventClip, Index: i, Total: 3, Runtime: 0.5})
		}
		return map[string]int{"clips": 3}, nil
	})
	j, err := m.Submit("ok", map[string]string{"set": "test"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobDone)
	v := j.View()
	if v.Error != "" || v.Result == nil || v.Started == nil || v.Finished == nil {
		t.Errorf("done view incomplete: %+v", v)
	}
	// Events: running + 3 clips + done = 5, in order with contiguous seq.
	backlog, _, unsub := j.Subscribe()
	unsub()
	if len(backlog) != 5 {
		t.Fatalf("backlog has %d events, want 5: %+v", len(backlog), backlog)
	}
	for i, e := range backlog {
		if e.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if backlog[0].Kind != "state" || backlog[0].State != JobRunning {
		t.Errorf("first event = %+v, want running state", backlog[0])
	}
	if last := backlog[len(backlog)-1]; last.Kind != "state" || last.State != JobDone {
		t.Errorf("last event = %+v, want done state", last)
	}
}

func TestJobFailureSurfacesPartialError(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	m.Register("partial", func(ctx context.Context, job *Job, progress obs.Progress) (any, error) {
		return nil, &core.PartialError{Stage: "extract", Done: 2, Total: 5, Err: errors.New("disk on fire")}
	})
	j, _ := m.Submit("partial", nil)
	waitState(t, j, JobFailed)
	v := j.View()
	if v.Partial == nil || v.Partial.Stage != "extract" || v.Partial.Done != 2 || v.Partial.Total != 5 {
		t.Errorf("partial info = %+v, want extract 2/5", v.Partial)
	}
	if v.Error == "" {
		t.Error("failed job has empty error")
	}
}

func TestJobCancel(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	started := make(chan struct{})
	m.Register("slow", func(ctx context.Context, job *Job, progress obs.Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, &core.PartialError{Stage: "extract", Done: 1, Total: 4, Err: ctx.Err()}
	})
	j, _ := m.Submit("slow", nil)
	<-started
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobCanceled)
	v := j.View()
	if v.Partial == nil || v.Partial.Done != 1 {
		t.Errorf("canceled job partial = %+v, want 1/4", v.Partial)
	}
	// Cancel on a terminal job is a no-op.
	if err := m.Cancel(j.ID()); err != nil {
		t.Errorf("cancel on terminal job: %v", err)
	}
}

func TestJobCancelBeforeRunObserved(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	m.Register("ctx", func(ctx context.Context, job *Job, progress obs.Progress) (any, error) {
		// The runner sees an already-canceled context if cancel arrived
		// while the job was still pending.
		<-ctx.Done()
		return nil, ctx.Err()
	})
	j, _ := m.Submit("ctx", nil)
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, JobCanceled)
}

func TestSubmitUnknownKind(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	if _, err := m.Submit("nope", nil); err == nil {
		t.Fatal("submitting an unknown kind succeeded")
	}
}

func TestEventRingBounded(t *testing.T) {
	const ringCap = 8
	m := NewManager(ringCap)
	defer m.Close()
	m.Register("chatty", func(ctx context.Context, job *Job, progress obs.Progress) (any, error) {
		for i := 0; i < 100; i++ {
			progress.Emit(obs.Event{Kind: obs.EventClip, Index: i, Total: 100})
		}
		return nil, nil
	})
	j, _ := m.Submit("chatty", nil)
	waitState(t, j, JobDone)
	backlog, _, unsub := j.Subscribe()
	unsub()
	if len(backlog) != ringCap {
		t.Fatalf("backlog holds %d events, want ring capacity %d", len(backlog), ringCap)
	}
	v := j.View()
	if v.Events != 102 { // running + 100 clips + done
		t.Errorf("total events = %d, want 102", v.Events)
	}
	if v.Dropped != 102-ringCap {
		t.Errorf("dropped = %d, want %d", v.Dropped, 102-ringCap)
	}
	// The retained tail is the newest events, ending in the done state.
	if last := backlog[len(backlog)-1]; last.State != JobDone {
		t.Errorf("last retained event = %+v, want done state", last)
	}
	if backlog[0].Seq != v.Events-int64(ringCap)+1 {
		t.Errorf("oldest retained seq = %d, want %d", backlog[0].Seq, v.Events-int64(ringCap)+1)
	}
}

// newTestServer wires a manager into the full handler stack.
func newTestServer(t *testing.T, m *Manager, ready func() bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer((&Server{Manager: m, Registry: obs.NewRegistry(), Ready: ready}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestHTTPJobEndpoints(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	release := make(chan struct{})
	m.Register("gated", func(ctx context.Context, job *Job, progress obs.Progress) (any, error) {
		progress.Emit(obs.Event{Kind: obs.EventClip, Index: 0, Total: 2, Runtime: 0.25})
		select {
		case <-release:
			return "finished", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv := newTestServer(t, m, nil)

	// Submit.
	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"gated","params":{"set":"test"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status = %d, want 202", resp.StatusCode)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.ID == "" || view.Kind != "gated" {
		t.Fatalf("submit view = %+v", view)
	}

	// SSE: read frames until the clip event arrives.
	sseResp, err := http.Get(srv.URL + "/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	if ct := sseResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	sawClip := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "event: clip") {
				close(sawClip)
				return
			}
		}
	}()
	select {
	case <-sawClip:
	case <-time.After(10 * time.Second):
		t.Fatal("no clip event over SSE")
	}

	// List shows the running job.
	var list struct {
		Kinds []string  `json:"kinds"`
		Jobs  []JobView `json:"jobs"`
	}
	getJSON(t, srv.URL+"/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].State != JobRunning {
		t.Fatalf("list = %+v, want one running job", list)
	}
	if len(list.Kinds) != 1 || list.Kinds[0] != "gated" {
		t.Fatalf("kinds = %v", list.Kinds)
	}

	close(release)
	j, _ := m.Get(view.ID)
	waitState(t, j, JobDone)
	var got JobView
	getJSON(t, srv.URL+"/jobs/"+view.ID, &got)
	if got.State != JobDone || got.Result != "finished" {
		t.Fatalf("GET /jobs/{id} after completion = %+v", got)
	}

	// Unknown job is a JSON 404.
	r404, err := http.Get(srv.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job status = %d, want 404", r404.StatusCode)
	}
}

func TestHTTPCancelEndpoint(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	started := make(chan struct{})
	m.Register("slow", func(ctx context.Context, job *Job, progress obs.Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	srv := newTestServer(t, m, nil)
	j, _ := m.Submit("slow", nil)
	<-started
	resp, err := http.Post(srv.URL+"/jobs/"+j.ID()+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d, want 200", resp.StatusCode)
	}
	waitState(t, j, JobCanceled)
}

func TestHealthAndReadiness(t *testing.T) {
	ready := false
	m := NewManager(0)
	defer m.Close()
	srv := newTestServer(t, m, func() bool { return ready })

	status := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", got)
	}
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz before ready = %d, want 503", got)
	}
	ready = true
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after ready = %d, want 200", got)
	}
	if got := status("/debug/vars"); got != http.StatusOK {
		t.Errorf("/debug/vars = %d, want 200", got)
	}
	if got := status("/debug/pprof/"); got != http.StatusOK {
		t.Errorf("/debug/pprof/ = %d, want 200", got)
	}
}

func TestMetricsEndpointServesRegistry(t *testing.T) {
	m := NewManager(0)
	defer m.Close()
	reg := obs.NewRegistry()
	reg.Counter("run.clips").Add(4)
	srv := httptest.NewServer((&Server{Manager: m, Registry: reg}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Fprintln(&buf, sc.Text())
	}
	if !strings.Contains(buf.String(), "otif_run_clips_total 4") {
		t.Errorf("/metrics output missing counter:\n%s", buf.String())
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
