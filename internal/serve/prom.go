// Package serve is OTIF's live exposition layer: it renders the
// observability registry (internal/obs) in Prometheus text exposition
// format, runs background tune/extract jobs whose progress events stream
// over SSE, and wires both — plus health, readiness, pprof and expvar —
// onto a stdlib net/http mux served by cmd/otifd.
//
// Everything here is read-only with respect to pipeline results: the
// daemon can scrape, stream and profile a running extraction without
// changing a single output bit (the serve tests assert bit-identical
// runtimes with scraping and logging enabled vs disabled).
package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"otif/internal/obs"
)

// DefaultPrefix namespaces every exported series.
const DefaultPrefix = "otif"

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Registry names are normalized with
// obs.PromName and namespaced under prefix (empty selects
// DefaultPrefix):
//
//   - integer counters export as `<prefix>_<name>_total` counter series;
//   - float cost counters (simulated seconds) export as
//     `<prefix>_<name>_seconds_total` counter series;
//   - gauges export as `<prefix>_<name>` gauge series;
//   - histograms export with cumulative `_bucket{le="..."}` series
//     (including the mandatory `le="+Inf"`), `_sum` and `_count`.
//
// Output is sorted by metric name, so equal snapshots render
// byte-identically — the golden test pins the exact format.
func WritePrometheus(w io.Writer, s obs.MetricsSnapshot, prefix string) error {
	if prefix == "" {
		prefix = DefaultPrefix
	}
	name := func(raw, suffix string) string {
		return prefix + "_" + obs.PromName(raw) + suffix
	}

	var keys []string
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := name(k, "_total")
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k]); err != nil {
			return err
		}
	}

	keys = keys[:0]
	for k := range s.Costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := name(k, "_seconds_total")
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", n, n, formatFloat(s.Costs[k])); err != nil {
			return err
		}
	}

	keys = keys[:0]
	for k := range s.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n := name(k, "")
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(s.Gauges[k])); err != nil {
			return err
		}
	}

	keys = keys[:0]
	for k := range s.Histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := writeHistogram(w, name(k, ""), s.Histograms[k]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits one histogram's cumulative bucket, sum and count
// series.
func writeHistogram(w io.Writer, n string, h obs.HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
		return err
	}
	var cum int64
	for i, b := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, formatFloat(b), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, formatFloat(h.Sum), n, h.Count); err != nil {
		return err
	}
	return nil
}

// formatFloat renders a float the way Prometheus clients expect: the
// shortest representation that round-trips, so exported values carry the
// exact bits the registry holds.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
