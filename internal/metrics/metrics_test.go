package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"otif/internal/geom"
)

func TestCountAccuracy(t *testing.T) {
	cases := []struct {
		pred, truth, want float64
	}{
		{10, 10, 1},
		{8, 10, 0.8},
		{12, 10, 0.8},
		{0, 10, 0},
		{30, 10, 0}, // clamped
		{0, 0, 1},
		{3, 0, 0},
	}
	for _, c := range cases {
		if got := CountAccuracy(c.pred, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CountAccuracy(%v,%v) = %v, want %v", c.pred, c.truth, got, c.want)
		}
	}
}

func TestCountAccuracyBoundsProperty(t *testing.T) {
	f := func(p, q uint16) bool {
		a := CountAccuracy(float64(p), float64(q))
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMeanCountAccuracy(t *testing.T) {
	got := MeanCountAccuracy([]float64{10, 0}, []float64{10, 10})
	if got != 0.5 {
		t.Errorf("mean = %v, want 0.5", got)
	}
	if MeanCountAccuracy(nil, nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if MeanCountAccuracy([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("mismatched lengths should be 0")
	}
}

func TestAPPerfectDetections(t *testing.T) {
	truths := [][]geom.Rect{
		{{X: 0, Y: 0, W: 10, H: 10}},
		{{X: 50, Y: 50, W: 10, H: 10}, {X: 100, Y: 0, W: 10, H: 10}},
	}
	dets := [][]ScoredBox{
		{{Box: truths[0][0], Score: 0.9}},
		{{Box: truths[1][0], Score: 0.8}, {Box: truths[1][1], Score: 0.7}},
	}
	if got := APAt50(dets, truths); math.Abs(got-1) > 0.02 {
		t.Errorf("perfect AP = %v, want ~1", got)
	}
}

func TestAPMissesAndFalsePositives(t *testing.T) {
	truths := [][]geom.Rect{
		{{X: 0, Y: 0, W: 10, H: 10}, {X: 50, Y: 0, W: 10, H: 10}},
	}
	// One correct detection, one false positive, one miss.
	dets := [][]ScoredBox{
		{
			{Box: truths[0][0], Score: 0.9},
			{Box: geom.Rect{X: 200, Y: 200, W: 10, H: 10}, Score: 0.8},
		},
	}
	got := APAt50(dets, truths)
	if got >= 0.9 || got <= 0.1 {
		t.Errorf("AP = %v, want intermediate", got)
	}
}

func TestAPEmptyCases(t *testing.T) {
	if got := APAt50(nil, nil); got != 1 {
		t.Errorf("no truth, no dets: AP = %v, want 1", got)
	}
	dets := [][]ScoredBox{{{Box: geom.Rect{W: 5, H: 5}, Score: 1}}}
	if got := APAt50(dets, [][]geom.Rect{{}}); got != 0 {
		t.Errorf("no truth but detections: AP = %v, want 0", got)
	}
}

func TestAPDuplicateDetectionsPenalized(t *testing.T) {
	// A duplicate ranked between two true positives lowers the precision
	// at full recall, so interpolated AP drops.
	truth := [][]geom.Rect{{
		{X: 0, Y: 0, W: 10, H: 10},
		{X: 100, Y: 0, W: 10, H: 10},
	}}
	clean := [][]ScoredBox{{
		{Box: truth[0][0], Score: 0.9},
		{Box: truth[0][1], Score: 0.8},
	}}
	dup := [][]ScoredBox{{
		{Box: truth[0][0], Score: 0.9},
		{Box: truth[0][0].Translate(1, 0), Score: 0.85}, // duplicate of GT 0
		{Box: truth[0][1], Score: 0.8},
	}}
	if APAt50(dup, truth) >= APAt50(clean, truth) {
		t.Error("duplicate detection ranked above a true positive must reduce AP")
	}
}

func TestPRCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, true, false, true}
	pts := PRCurve(scores, labels, []float64{0.5})
	if len(pts) != 1 {
		t.Fatal("one threshold -> one point")
	}
	// At 0.5: TP=2, FP=0, FN=1.
	if pts[0].Precision != 1 {
		t.Errorf("precision = %v", pts[0].Precision)
	}
	if math.Abs(pts[0].Recall-2.0/3) > 1e-12 {
		t.Errorf("recall = %v", pts[0].Recall)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	f := func(seed int64) bool {
		scores := make([]float64, 50)
		labels := make([]bool, 50)
		s := uint64(seed)
		for i := range scores {
			s = s*6364136223846793005 + 1442695040888963407
			scores[i] = float64(s%1000) / 1000
			labels[i] = s%3 == 0
		}
		ths := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
		pts := PRCurve(scores, labels, ths)
		for i := 1; i < len(pts); i++ {
			if pts[i].Recall > pts[i-1].Recall+1e-12 {
				return false // recall must fall as threshold rises
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestF1(t *testing.T) {
	if got := F1(PRPoint{Precision: 1, Recall: 1}); got != 1 {
		t.Errorf("F1 = %v", got)
	}
	if got := F1(PRPoint{}); got != 0 {
		t.Errorf("zero F1 = %v", got)
	}
	if got := F1(PRPoint{Precision: 0.5, Recall: 0.5}); got != 0.5 {
		t.Errorf("F1 = %v", got)
	}
}
