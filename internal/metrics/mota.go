package metrics

import (
	"otif/internal/geom"
)

// TrackedBox is one (frame, box) observation of a track, used to compare
// predicted tracks against ground-truth tracks frame by frame.
type TrackedBox struct {
	FrameIdx int
	Box      geom.Rect
}

// IDTrack is a track with an identity, in either the ground-truth or the
// predicted set.
type IDTrack struct {
	ID    int
	Boxes []TrackedBox
}

// MOTAResult summarizes multi-object tracking quality in the MOTA style:
// misses (ground truth with no matched prediction), false positives
// (predictions with no matched ground truth), and identity switches
// (a ground-truth object changing its matched predicted ID between
// consecutive frames). MOTA = 1 - (misses + falsePos + switches) / gtBoxes.
type MOTAResult struct {
	Misses     int
	FalsePos   int
	IDSwitches int
	GTBoxes    int
	Matches    int
}

// MOTA returns the combined score (can be negative for very poor
// trackers, as in the standard definition).
func (r MOTAResult) MOTA() float64 {
	if r.GTBoxes == 0 {
		return 1
	}
	return 1 - float64(r.Misses+r.FalsePos+r.IDSwitches)/float64(r.GTBoxes)
}

// EvaluateMOTA compares predicted tracks against ground-truth tracks with
// greedy per-frame IoU matching at the given threshold. It is the
// "MOTA-style helper" used to sanity-check trackers outside the paper's
// count-based metrics.
func EvaluateMOTA(gt, pred []*IDTrack, iouThresh float64) MOTAResult {
	type obs struct {
		id  int
		box geom.Rect
	}
	gtByFrame := map[int][]obs{}
	predByFrame := map[int][]obs{}
	for _, t := range gt {
		for _, b := range t.Boxes {
			gtByFrame[b.FrameIdx] = append(gtByFrame[b.FrameIdx], obs{t.ID, b.Box})
		}
	}
	for _, t := range pred {
		for _, b := range t.Boxes {
			predByFrame[b.FrameIdx] = append(predByFrame[b.FrameIdx], obs{t.ID, b.Box})
		}
	}

	frames := map[int]bool{}
	for f := range gtByFrame {
		frames[f] = true
	}
	for f := range predByFrame {
		frames[f] = true
	}
	ordered := make([]int, 0, len(frames))
	for f := range frames {
		ordered = append(ordered, f)
	}
	sortInts(ordered)

	var res MOTAResult
	lastMatch := map[int]int{} // gt id -> last matched pred id
	for _, f := range ordered {
		gts := gtByFrame[f]
		preds := predByFrame[f]
		res.GTBoxes += len(gts)

		usedPred := make([]bool, len(preds))
		for _, g := range gts {
			bestIoU := 0.0
			bestJ := -1
			// Prefer keeping the previous identity when it still matches,
			// as the standard MOTA matching does.
			if prev, ok := lastMatch[g.id]; ok {
				for j, p := range preds {
					if !usedPred[j] && p.id == prev && g.box.IoU(p.box) >= iouThresh {
						bestJ = j
						bestIoU = g.box.IoU(p.box)
						break
					}
				}
			}
			if bestJ < 0 {
				for j, p := range preds {
					if usedPred[j] {
						continue
					}
					if iou := g.box.IoU(p.box); iou >= iouThresh && iou > bestIoU {
						bestIoU = iou
						bestJ = j
					}
				}
			}
			if bestJ < 0 {
				res.Misses++
				continue
			}
			usedPred[bestJ] = true
			res.Matches++
			if prev, ok := lastMatch[g.id]; ok && prev != preds[bestJ].id {
				res.IDSwitches++
			}
			lastMatch[g.id] = preds[bestJ].id
		}
		for j := range preds {
			if !usedPred[j] {
				res.FalsePos++
			}
		}
	}
	return res
}

// sortInts is a tiny insertion sort (frame lists are small and already
// mostly ordered; avoids pulling in the sort package comparator noise).
func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
