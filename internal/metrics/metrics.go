// Package metrics implements the accuracy metrics used in the paper's
// evaluation: count accuracy for object track queries (1 - |x̂ - x*| / x*,
// averaged over clips and path types), mean average precision at 50% IoU
// for detection quality (Figure 7 left), and precision-recall curves for
// the proxy model's per-cell scores (Figure 7 right).
package metrics

import (
	"math"
	"sort"

	"otif/internal/geom"
)

// CountAccuracy returns the paper's count accuracy 1 - |pred - truth| /
// truth, clamped to [0, 1]. When the true count is zero the accuracy is 1
// if the prediction is also zero and 0 otherwise.
func CountAccuracy(pred, truth float64) float64 {
	if truth == 0 {
		if pred == 0 {
			return 1
		}
		return 0
	}
	a := 1 - math.Abs(pred-truth)/truth
	if a < 0 {
		return 0
	}
	return a
}

// MeanCountAccuracy averages CountAccuracy over paired counts; it is used
// to aggregate per-clip (and, for path breakdown queries, per-path-type)
// accuracies.
func MeanCountAccuracy(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0
	}
	var sum float64
	for i := range pred {
		sum += CountAccuracy(pred[i], truth[i])
	}
	return sum / float64(len(pred))
}

// ScoredBox is a detection with a confidence score, for mAP computation.
type ScoredBox struct {
	Box   geom.Rect
	Score float64
}

// APAt50 computes average precision at IoU 0.5 for one frame set:
// detections across all frames are sorted by score and matched greedily to
// unmatched ground truth boxes of the same frame.
//
// dets and truths are parallel per-frame slices.
func APAt50(dets [][]ScoredBox, truths [][]geom.Rect) float64 {
	type flat struct {
		frame int
		det   ScoredBox
	}
	var all []flat
	totalTruth := 0
	for f := range truths {
		totalTruth += len(truths[f])
	}
	for f := range dets {
		for _, d := range dets[f] {
			all = append(all, flat{f, d})
		}
	}
	if totalTruth == 0 {
		if len(all) == 0 {
			return 1
		}
		return 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i].det.Score > all[j].det.Score })

	matched := make([][]bool, len(truths))
	for f := range truths {
		matched[f] = make([]bool, len(truths[f]))
	}
	tp := make([]int, len(all))
	fp := make([]int, len(all))
	for i, d := range all {
		bestIoU := 0.0
		bestJ := -1
		if d.frame < len(truths) {
			for j, t := range truths[d.frame] {
				if matched[d.frame][j] {
					continue
				}
				if iou := d.det.Box.IoU(t); iou > bestIoU {
					bestIoU = iou
					bestJ = j
				}
			}
		}
		if bestJ >= 0 && bestIoU >= 0.5 {
			matched[d.frame][bestJ] = true
			tp[i] = 1
		} else {
			fp[i] = 1
		}
	}

	// Precision-recall curve and 101-point interpolated AP.
	var cumTP, cumFP int
	precisions := make([]float64, len(all))
	recalls := make([]float64, len(all))
	for i := range all {
		cumTP += tp[i]
		cumFP += fp[i]
		precisions[i] = float64(cumTP) / float64(cumTP+cumFP)
		recalls[i] = float64(cumTP) / float64(totalTruth)
	}
	var ap float64
	for _, r := range interpPoints(101) {
		best := 0.0
		for i := range all {
			if recalls[i] >= r && precisions[i] > best {
				best = precisions[i]
			}
		}
		ap += best
	}
	return ap / 101
}

func interpPoints(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) / float64(n-1)
	}
	return out
}

// PRPoint is one precision/recall point at a score threshold.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision-recall curve of binary scores against
// boolean labels by sweeping thresholds over the distinct scores (Figure 7
// right evaluates proxy cell scores this way).
func PRCurve(scores []float64, labels []bool, thresholds []float64) []PRPoint {
	out := make([]PRPoint, 0, len(thresholds))
	for _, th := range thresholds {
		var tp, fp, fn int
		for i, s := range scores {
			pos := s >= th
			switch {
			case pos && labels[i]:
				tp++
			case pos && !labels[i]:
				fp++
			case !pos && labels[i]:
				fn++
			}
		}
		p := PRPoint{Threshold: th, Precision: 1, Recall: 0}
		if tp+fp > 0 {
			p.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			p.Recall = float64(tp) / float64(tp+fn)
		}
		out = append(out, p)
	}
	return out
}

// F1 returns the harmonic mean of precision and recall.
func F1(p PRPoint) float64 {
	if p.Precision+p.Recall == 0 {
		return 0
	}
	return 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
}
