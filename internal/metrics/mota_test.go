package metrics

import (
	"testing"

	"otif/internal/geom"
)

func idTrack(id, f0, n int, x0, vx float64) *IDTrack {
	t := &IDTrack{ID: id}
	for i := 0; i < n; i++ {
		t.Boxes = append(t.Boxes, TrackedBox{
			FrameIdx: f0 + i,
			Box:      geom.Rect{X: x0 + vx*float64(i), Y: 0, W: 40, H: 20},
		})
	}
	return t
}

func TestMOTAPerfect(t *testing.T) {
	gt := []*IDTrack{idTrack(0, 0, 10, 0, 5), idTrack(1, 0, 10, 200, 5)}
	pred := []*IDTrack{idTrack(7, 0, 10, 0, 5), idTrack(9, 0, 10, 200, 5)}
	res := EvaluateMOTA(gt, pred, 0.5)
	if res.Misses != 0 || res.FalsePos != 0 || res.IDSwitches != 0 {
		t.Errorf("perfect tracking: %+v", res)
	}
	if res.MOTA() != 1 {
		t.Errorf("MOTA = %v, want 1", res.MOTA())
	}
}

func TestMOTAMisses(t *testing.T) {
	gt := []*IDTrack{idTrack(0, 0, 10, 0, 5)}
	res := EvaluateMOTA(gt, nil, 0.5)
	if res.Misses != 10 || res.MOTA() != 0 {
		t.Errorf("all-missed: %+v MOTA=%v", res, res.MOTA())
	}
}

func TestMOTAFalsePositives(t *testing.T) {
	gt := []*IDTrack{idTrack(0, 0, 10, 0, 5)}
	pred := []*IDTrack{
		idTrack(1, 0, 10, 0, 5),   // correct
		idTrack(2, 0, 10, 400, 5), // phantom
	}
	res := EvaluateMOTA(gt, pred, 0.5)
	if res.FalsePos != 10 {
		t.Errorf("false positives = %d, want 10", res.FalsePos)
	}
	if res.MOTA() != 0 {
		t.Errorf("MOTA = %v, want 0", res.MOTA())
	}
}

func TestMOTAIdentitySwitch(t *testing.T) {
	// One ground-truth object; the prediction splits it into two tracks
	// (a fragmentation at frame 5) -> exactly one identity switch.
	gt := []*IDTrack{idTrack(0, 0, 10, 0, 5)}
	pred := []*IDTrack{
		idTrack(1, 0, 5, 0, 5),
		idTrack(2, 5, 5, 25, 5),
	}
	res := EvaluateMOTA(gt, pred, 0.5)
	if res.IDSwitches != 1 {
		t.Errorf("switches = %d, want 1", res.IDSwitches)
	}
	if res.Misses != 0 || res.FalsePos != 0 {
		t.Errorf("unexpected misses/FPs: %+v", res)
	}
}

func TestMOTAPrefersKeepingIdentity(t *testing.T) {
	// Two ground-truth objects crossing paths; predictions follow them
	// exactly with stable IDs -> identity-preserving matching must not
	// report switches even when boxes of the two objects overlap.
	gt := []*IDTrack{idTrack(0, 0, 11, 0, 10), idTrack(1, 0, 11, 100, -10)}
	pred := []*IDTrack{idTrack(5, 0, 11, 0, 10), idTrack(6, 0, 11, 100, -10)}
	res := EvaluateMOTA(gt, pred, 0.5)
	if res.IDSwitches != 0 {
		t.Errorf("crossing objects caused %d spurious switches", res.IDSwitches)
	}
}

func TestMOTAEmptyGT(t *testing.T) {
	res := EvaluateMOTA(nil, nil, 0.5)
	if res.MOTA() != 1 {
		t.Errorf("empty MOTA = %v, want 1", res.MOTA())
	}
}
