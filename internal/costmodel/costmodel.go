// Package costmodel provides the simulated hardware cost accounting that
// stands in for the paper's NVIDIA Tesla V100 GPU and Intel Xeon Gold 6142
// CPU. Every expensive operation in the pipeline (video decode, proxy model
// inference, object detector execution, tracker association) reports its
// cost to an Accountant, and all "runtime" numbers in the benchmark harness
// are sums of these simulated seconds rather than wall-clock time.
//
// Calibration anchors, all taken from the paper:
//
//   - YOLOv3 processes 960x540 frames at 100 fps on the V100 (§1), i.e.
//     ~1.93e-8 GPU-seconds per input pixel.
//   - Mask R-CNN is roughly 5x slower than YOLOv3 at the same resolution
//     (consistent with the reported detector families).
//   - Video decoding occupies roughly one third of CPU time once inference
//     is heavily optimized (§4.2), which pins the per-pixel decode cost
//     relative to the proxy-model cost at BlazeIt's 64x64 resolution.
//   - The segmentation proxy model is a shallow network over a low
//     resolution input; we model it at ~1/6 the per-pixel cost of YOLOv3.
package costmodel

import (
	"fmt"
	"sort"
	"sync"
)

// Per-pixel costs in simulated seconds. See package comment for calibration.
const (
	// YOLOPerPixel is the detector cost per input pixel for the fast
	// single-stage architecture: 1 / (100 fps * 960*540 px).
	YOLOPerPixel = 1.0 / (100 * 960 * 540)
	// RCNNPerPixel is the detector cost per input pixel for the slower
	// two-stage architecture.
	RCNNPerPixel = 5 * YOLOPerPixel
	// ProxyPerPixel is the segmentation proxy model cost per input pixel.
	ProxyPerPixel = YOLOPerPixel / 6
	// DecodePerPixel is the video decode cost per output pixel on the CPU.
	// Calibrated so that decode is roughly one third of total time for a
	// heavily optimized pipeline (§4.2).
	DecodePerPixel = YOLOPerPixel / 3
	// TrackerPerAssoc is the cost of scoring one (track, detection) pair
	// through the recurrent matching network.
	TrackerPerAssoc = 2e-6
	// EmbedPerPixel is the per-pixel cost of TASTI's embedding extractor
	// (a ResNet-18-scale model at 224x224; heavier per pixel than YOLO's
	// backbone at its larger input).
	EmbedPerPixel = 3 * YOLOPerPixel
	// DetectorFixed is the fixed per-invocation overhead of launching the
	// detector on one batch element (kernel launch, NMS, readback). This
	// is what makes many tiny windows more expensive than their pixel
	// count alone and motivates the fixed window-size set W.
	DetectorFixed = 4e-4
	// ProxyFixed is the fixed per-frame overhead of the proxy model.
	ProxyFixed = 5e-5
)

// Op identifies a cost category for breakdown reports (Figure 6).
type Op string

// Cost categories.
const (
	OpDecode    Op = "decode"
	OpProxy     Op = "proxy"
	OpDetect    Op = "detect"
	OpTrack     Op = "track"
	OpEmbed     Op = "embed"
	OpRefine    Op = "refine"
	OpTrainProx Op = "train-proxy"
	OpTrainTrkr Op = "train-tracker"
	OpTrainDet  Op = "train-detector"
	OpTune      Op = "tune"
	OpQuery     Op = "query"
)

// Accountant accumulates simulated cost by category. It is safe for
// concurrent use.
//
// For parallel execution the pipeline uses a shard pattern rather than a
// single shared accountant: each worker charges a goroutine-local
// accountant (created with NewAccountant) inside its hot loop and the
// owner folds the shards into the shared accountant with Merge once per
// unit of work, in a fixed order. That removes all cross-goroutine mutex
// contention from the hot path and, because both Merge and Total fold
// categories in sorted order, keeps floating-point totals bit-for-bit
// reproducible at any worker count.
type Accountant struct {
	mu    sync.Mutex
	total map[Op]float64
}

// NewAccountant returns an empty accountant.
func NewAccountant() *Accountant {
	return &Accountant{total: make(map[Op]float64)}
}

// Add charges seconds of simulated time to the given category.
func (a *Accountant) Add(op Op, seconds float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.total[op] += seconds
	a.mu.Unlock()
}

// Total returns the sum across all categories. Categories are summed in
// sorted order so the result is bit-for-bit reproducible regardless of
// map iteration order (floating-point addition is not associative).
func (a *Accountant) Total() float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.total))
	for k := range a.total {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var s float64
	for _, k := range keys {
		s += a.total[Op(k)]
	}
	return s
}

// Get returns the accumulated cost for one category.
func (a *Accountant) Get(op Op) float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total[op]
}

// Merge folds other's accumulated costs into a. Categories are added in
// sorted order so that merging a fixed sequence of shards always produces
// the same floating-point totals regardless of map iteration order. Merge
// locks only a; it snapshots other first, so merging a goroutine-local
// shard into a shared accountant never holds both locks.
func (a *Accountant) Merge(other *Accountant) {
	if a == nil || other == nil {
		return
	}
	b := other.Breakdown()
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	a.mu.Lock()
	for _, k := range keys {
		a.total[Op(k)] += b[Op(k)]
	}
	a.mu.Unlock()
}

// Breakdown returns a copy of the per-category totals.
func (a *Accountant) Breakdown() map[Op]float64 {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[Op]float64, len(a.total))
	for k, v := range a.total {
		out[k] = v
	}
	return out
}

// Reset clears all accumulated costs.
func (a *Accountant) Reset() {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.total = make(map[Op]float64)
	a.mu.Unlock()
}

// String renders the breakdown sorted by category name.
func (a *Accountant) String() string {
	b := a.Breakdown()
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%-14s %8.2fs\n", k, b[Op(k)])
	}
	return s
}

// DetectCost returns the simulated cost of one detector invocation on a
// w x h window. perPixel selects the architecture (YOLOPerPixel or
// RCNNPerPixel).
func DetectCost(perPixel float64, w, h int) float64 {
	return DetectorFixed + perPixel*float64(w*h)
}

// ProxyCost returns the simulated cost of one proxy-model invocation on a
// w x h input.
func ProxyCost(w, h int) float64 {
	return ProxyFixed + ProxyPerPixel*float64(w*h)
}

// DecodeCost returns the simulated cost of decoding one frame at w x h.
func DecodeCost(w, h int) float64 {
	return DecodePerPixel * float64(w*h)
}

// EmbedCost returns the simulated cost of one embedding extraction at w x h.
func EmbedCost(w, h int) float64 {
	return ProxyFixed + EmbedPerPixel*float64(w*h)
}
