package costmodel

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCalibration(t *testing.T) {
	// YOLOv3 at 960x540 runs at 100 fps on the V100 (§1 of the paper).
	perFrame := YOLOPerPixel * 960 * 540
	if math.Abs(perFrame-0.01) > 1e-9 {
		t.Errorf("YOLO per-frame cost = %v, want 0.01", perFrame)
	}
	if RCNNPerPixel <= YOLOPerPixel {
		t.Error("Mask R-CNN must cost more per pixel than YOLOv3")
	}
	if ProxyPerPixel >= YOLOPerPixel {
		t.Error("proxy model must be cheaper per pixel than the detector")
	}
}

func TestAccountantAccumulates(t *testing.T) {
	a := NewAccountant()
	a.Add(OpDetect, 1.5)
	a.Add(OpDetect, 0.5)
	a.Add(OpDecode, 1)
	if got := a.Get(OpDetect); got != 2 {
		t.Errorf("Get(detect) = %v", got)
	}
	if got := a.Total(); got != 3 {
		t.Errorf("Total = %v", got)
	}
	b := a.Breakdown()
	if b[OpDecode] != 1 || len(b) != 2 {
		t.Errorf("Breakdown = %v", b)
	}
	a.Reset()
	if a.Total() != 0 {
		t.Error("Reset should clear totals")
	}
}

func TestAccountantNilSafe(t *testing.T) {
	var a *Accountant
	a.Add(OpDetect, 1) // must not panic
	if a.Total() != 0 || a.Get(OpDetect) != 0 {
		t.Error("nil accountant should report zero")
	}
	if a.Breakdown() != nil {
		t.Error("nil accountant breakdown should be nil")
	}
}

func TestAccountantConcurrent(t *testing.T) {
	a := NewAccountant()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Add(OpTrack, 0.001)
			}
		}()
	}
	wg.Wait()
	if got := a.Get(OpTrack); math.Abs(got-8) > 1e-6 {
		t.Errorf("concurrent total = %v, want 8", got)
	}
}

func TestCostMonotonicInPixels(t *testing.T) {
	f := func(w1, h1, dw, dh uint8) bool {
		a := DetectCost(YOLOPerPixel, int(w1)+1, int(h1)+1)
		b := DetectCost(YOLOPerPixel, int(w1)+1+int(dw), int(h1)+1+int(dh))
		if b < a {
			return false
		}
		pa := ProxyCost(int(w1)+1, int(h1)+1)
		pb := ProxyCost(int(w1)+1+int(dw), int(h1)+1+int(dh))
		return pb >= pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFixedOverheadMakesTinyWindowsInefficient(t *testing.T) {
	// Two half-size windows must cost more than one window of their
	// combined area (this drives window merging in the proxy grouping).
	one := DetectCost(YOLOPerPixel, 200, 200)
	two := 2 * DetectCost(YOLOPerPixel, 200, 100)
	if two <= one {
		t.Errorf("two windows (%v) should cost more than one (%v)", two, one)
	}
}

func TestString(t *testing.T) {
	a := NewAccountant()
	a.Add(OpDetect, 1)
	if a.String() == "" {
		t.Error("String should render the breakdown")
	}
}
