package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForContextBackgroundMatchesFor(t *testing.T) {
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		const n = 200
		var visited atomic.Int64
		if err := ForContext(context.Background(), n, func(i int) { visited.Add(1) }); err != nil {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if visited.Load() != n {
			t.Fatalf("workers=%d: visited %d of %d", w, visited.Load(), n)
		}
	}
	SetWorkers(0)
}

func TestForContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		called := atomic.Bool{}
		err := ForContext(ctx, 100, func(i int) { called.Store(true) })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		if called.Load() {
			t.Errorf("workers=%d: fn ran under a pre-canceled context", w)
		}
	}
	SetWorkers(0)
}

func TestForContextCancelMidRunSerial(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	var ran []int
	err := ForContext(ctx, 10, func(i int) {
		ran = append(ran, i)
		if i == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ran) != 4 {
		t.Errorf("ran %v, want exactly indices 0..3 (in-flight item completes, no new items start)", ran)
	}
}

// TestForContextDrainsWorkers cancels mid-run at a parallel worker count
// and asserts (a) no new items start after all workers observe the
// cancellation, and (b) every worker goroutine exits — the goroutine
// count returns to its pre-call level, i.e. cancellation never leaks the
// pool.
func TestForContextDrainsWorkers(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	const n = 10000
	var started atomic.Int64
	err := ForContext(ctx, n, func(i int) {
		if started.Add(1) == 8 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each of the 4 workers can have had at most a small number of items
	// in flight around the cancellation; the vast majority of the range
	// must never have started.
	if s := started.Load(); s >= n/2 {
		t.Errorf("%d of %d items started after mid-run cancel", s, n)
	}

	// The pool must drain: poll until the goroutine count returns to the
	// pre-call level (other test goroutines may still be winding down).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after cancel = %d, want <= %d (worker leak)", got, before)
	}
}

func TestForContextNilErrorAfterCompletion(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ForContext(ctx, 50, func(i int) {}); err != nil {
		t.Errorf("uncanceled run returned %v", err)
	}
}
