// Package parallel provides the bounded worker pool that fans work out
// across the pipeline, the tuner, and the benchmark harness. The paper's
// system processes 16 video streams per GPU concurrently (§4); here the
// same role is played by running clips, tuner candidates, and benchmark
// datasets on parallel workers.
//
// The pool is built for deterministic use: For and Map assign work by
// index and collect results in index order, so callers that keep all
// cross-item reduction (cost merging, accuracy averaging, candidate
// selection) in index order produce bit-for-bit identical results at any
// worker count. The determinism tests in core, tuner, and bench assert
// exactly that contract.
//
// The worker count is a process-wide setting (GOMAXPROCS by default,
// overridden by SetWorkers or the -parallel flag on the commands). Nested
// calls are safe: each For spawns its own bounded goroutine set rather
// than sharing a fixed pool, so an outer parallel region can run inner
// ones without deadlock.
//
// ForContext adds cooperative cancellation: cancellation stops new work
// from being claimed and drains the worker goroutines cleanly, which is
// what the context-aware pipeline entry points (RunSetContext,
// TuneContext) build their clip- and iteration-boundary checks on.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured worker count; 0 means "use GOMAXPROCS".
var workers atomic.Int64

// Workers returns the effective worker count used by For and Map:
// GOMAXPROCS unless SetWorkers chose a specific value.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the process-wide worker count. n <= 0 restores the
// default (GOMAXPROCS). SetWorkers(1) forces fully serial execution,
// which the determinism tests use as the reference path.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// For runs fn(i) for every i in [0, n) on up to Workers() goroutines and
// returns once all calls have completed. Indices are handed out in order
// but may complete out of order; callers collect results by writing to
// caller-owned slices at index i, which yields ordered collection for
// free. With one worker (or n <= 1) the calls run inline in index order.
//
// If any fn panics, For re-panics the first panic value in the calling
// goroutine after all workers have stopped, so a failure inside a worker
// surfaces like a failure in a serial loop.
func For(n int, fn func(i int)) {
	// context.Background is never canceled, so the error is always nil.
	_ = ForContext(context.Background(), n, fn)
}

// ForContext is For with cooperative cancellation: workers check
// ctx.Err() before claiming each index, so once ctx is canceled no new
// work items start, in-flight fn calls run to completion, and every
// worker goroutine exits before ForContext returns (cancellation drains
// the pool cleanly — it never abandons goroutines or interrupts an fn
// midway). The return value is ctx.Err() if the context was canceled,
// nil otherwise; on cancellation an unspecified subset of indices was
// never run, so callers that need progress accounting must track which
// fn(i) calls completed.
func ForContext(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}

	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					// Drain remaining work so sibling workers exit
					// promptly.
					next.Store(int64(n))
				}
			}()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: worker panic: %v", panicked))
	}
	return ctx.Err()
}

// Map runs fn over [0, n) with For and returns the results in index
// order. It is the ordered-collection form of the pool: out[i] is always
// fn(i)'s result regardless of worker count or completion order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Drain runs fn over items received from ch on up to Workers() goroutines
// until ch is closed and empty, then returns. It is the open-ended form
// of the pool: For and Map fan out a known index range, Drain fans out a
// stream whose length is unknown in advance (the streaming-ingest work
// queue). Item-to-worker assignment is unspecified, so callers needing
// ordered results must carry identity in the items themselves.
//
// Cancellation mirrors ForContext: workers check ctx before receiving
// each item, so once ctx is canceled no new items are claimed, in-flight
// fn calls run to completion and every worker exits before Drain returns.
// Items left in the channel after cancellation are NOT consumed — the
// producer side owns draining or abandoning them. The return value is
// ctx.Err() if the context was canceled, nil otherwise.
//
// A panicking fn stops all workers and re-panics in the calling
// goroutine, like For.
func Drain[T any](ctx context.Context, ch <-chan T, fn func(T)) error {
	w := Workers()
	if w < 1 {
		w = 1
	}
	var panicOnce sync.Once
	var panicked any
	stop := make(chan struct{}) // closed on first panic: siblings exit promptly
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() {
						panicked = r
						close(stop)
					})
				}
			}()
			for {
				// A closed ctx or a sibling panic wins over pending items.
				select {
				case <-ctx.Done():
					return
				case <-stop:
					return
				default:
				}
				select {
				case <-ctx.Done():
					return
				case <-stop:
					return
				case item, ok := <-ch:
					if !ok {
						return
					}
					fn(item)
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("parallel: worker panic: %v", panicked))
	}
	return ctx.Err()
}
