package parallel

import "sync"

// Outcome reports how a Group.Do call obtained its value, so callers can
// keep hit/fill/dedup statistics without peeking inside the group.
type Outcome uint8

const (
	// DidRun means this caller executed fn and memoized its result.
	DidRun Outcome = iota
	// Waited means another caller was executing fn for the same key when
	// this call arrived; it blocked until that execution finished and
	// shares its result (the singleflight dedup path).
	Waited
	// Cached means the key's result was already memoized before this call
	// started; it returned without blocking.
	Cached
)

// Group is a memoizing singleflight: the first Do call for a key executes
// its function while concurrent callers for the same key wait and share
// the one result, and completed results stay memoized so later callers
// return immediately. It generalizes the per-dataset training memoization
// the bench suite grew in PR 1 (suite mutex guarding entry maps, one
// sync.Once per entry) into a reusable primitive; the bench suite and the
// segmented store's per-segment result cache both build on it.
//
// Unlike x/sync/singleflight, results (including errors) are retained
// until Forget — Group is a cache with request coalescing, not a purely
// transient dedup. Callers that must not memoize failures call Forget on
// error.
//
// The zero value is ready to use. Do never holds the group mutex while fn
// runs, so executions for different keys proceed in parallel.
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

// flight is one key's execution record: done closes when fn returns, after
// which v and err are immutable.
type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// waitHook, when non-nil, runs each time a Do call commits to the Waited
// path, before it blocks. Tests use it to sequence deterministic dedup
// assertions; it is never set in production.
var waitHook func()

// SetWaitHookForTest installs (or, with nil, clears) the Waited-path hook.
// It exists solely so tests in other packages — the store's result cache
// in particular — can deterministically assert singleflight dedup; it must
// not be called from production code or from parallel tests.
func SetWaitHookForTest(fn func()) { waitHook = fn }

// Do returns the memoized result for key, executing fn to fill it if this
// is the key's first call. Concurrent calls for the same key block until
// the one running fn finishes and share its result. The Outcome reports
// which of the three paths answered.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error, Outcome) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*flight[V])
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.v, f.err, Cached
		default:
			if waitHook != nil {
				waitHook()
			}
			<-f.done
			return f.v, f.err, Waited
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	defer close(f.done)
	f.v, f.err = fn()
	return f.v, f.err, DidRun
}

// Forget drops the memoized result for key, so the next Do re-executes.
// Forgetting a key whose fn is still running detaches it: in-flight
// waiters still receive that execution's result, but new callers start a
// fresh one.
func (g *Group[K, V]) Forget(key K) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}

// Len reports how many keys are memoized or in flight.
func (g *Group[K, V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
