package parallel

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(3)
	defer SetWorkers(0)
	if got := Workers(); got != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers() = %d after SetWorkers(-5), want default", got)
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7} {
		SetWorkers(w)
		const n = 1000
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
			}
		}
	}
	SetWorkers(0)
}

func TestForBoundsConcurrency(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	var cur, peak int32
	var mu sync.Mutex
	For(64, func(i int) {
		c := atomic.AddInt32(&cur, 1)
		mu.Lock()
		if c > peak {
			peak = c
		}
		mu.Unlock()
		runtime.Gosched()
		atomic.AddInt32(&cur, -1)
	})
	if peak > 3 {
		t.Errorf("observed %d concurrent calls, want <= 3", peak)
	}
}

func TestForSerialRunsInline(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	var order []int
	For(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v, want ascending", order)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(i int) { called = true })
	For(-3, func(i int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		out := Map(100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
	SetWorkers(0)
}

func TestForPropagatesPanic(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "boom") {
			t.Errorf("panic value = %v, want to contain the original message", r)
		}
	}()
	For(32, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}
