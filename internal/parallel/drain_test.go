package parallel

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDrainProcessesEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		SetWorkers(workers)
		const n = 200
		ch := make(chan int, 16)
		go func() {
			for i := 0; i < n; i++ {
				ch <- i
			}
			close(ch)
		}()
		var mu sync.Mutex
		seen := make(map[int]bool, n)
		if err := Drain(context.Background(), ch, func(i int) {
			mu.Lock()
			seen[i] = true
			mu.Unlock()
		}); err != nil {
			t.Fatalf("workers=%d: Drain returned %v", workers, err)
		}
		if len(seen) != n {
			t.Fatalf("workers=%d: processed %d items, want %d", workers, len(seen), n)
		}
	}
	SetWorkers(0)
}

func TestDrainCancelStopsClaiming(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan int) // unbuffered: producer blocks until a worker receives
	var processed atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- Drain(ctx, ch, func(int) {
			processed.Add(1)
		})
	}()
	// Feed a few items, then cancel; the producer stops feeding so Drain's
	// exit proves cancellation (the channel is never closed).
	for i := 0; i < 5; i++ {
		ch <- i
	}
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Drain returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after cancellation")
	}
	if got := processed.Load(); got > 5 {
		t.Fatalf("processed %d items, fed only 5", got)
	}
}

func TestDrainPanicPropagates(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	ch := make(chan int, 64)
	for i := 0; i < 64; i++ {
		ch <- i
	}
	close(ch)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Drain swallowed the worker panic")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Drain(context.Background(), ch, func(i int) {
		if i == 7 {
			panic("boom")
		}
	})
}
