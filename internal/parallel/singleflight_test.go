package parallel

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGroupMemoizes pins the cache contract: one execution per key, later
// calls answer from memory with Outcome Cached.
func TestGroupMemoizes(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int64
	fill := func() (int, error) {
		calls.Add(1)
		return 42, nil
	}
	v, err, out := g.Do("k", fill)
	if v != 42 || err != nil || out != DidRun {
		t.Fatalf("first Do = (%d, %v, %v), want (42, nil, DidRun)", v, err, out)
	}
	v, err, out = g.Do("k", fill)
	if v != 42 || err != nil || out != Cached {
		t.Fatalf("second Do = (%d, %v, %v), want (42, nil, Cached)", v, err, out)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}

// TestGroupDedupsInFlight is the deterministic singleflight test: a primary
// caller blocks inside fn, further callers for the same key arrive while it
// runs, and every one of them must take the Waited path and share the
// primary's result — fn runs exactly once. waitHook sequences the test so
// there is no timing window: the primary's fn is not released until every
// waiter has committed to the Waited path.
func TestGroupDedupsInFlight(t *testing.T) {
	const waiters = 8
	var g Group[string, int]
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	waiting := make(chan struct{}, waiters)
	waitHook = func() { waiting <- struct{}{} }
	defer func() { waitHook = nil }()

	primaryDone := make(chan struct{})
	go func() {
		defer close(primaryDone)
		v, _, out := g.Do("hot", func() (int, error) {
			calls.Add(1)
			close(entered)
			<-release
			return 7, nil
		})
		if v != 7 || out != DidRun {
			t.Errorf("primary Do = (%d, %v), want (7, DidRun)", v, out)
		}
	}()
	<-entered // fn is running; done stays open until release closes

	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, out := g.Do("hot", func() (int, error) {
				t.Error("waiter executed fn; singleflight broken")
				return -1, nil
			})
			if v != 7 {
				t.Errorf("waiter %d got %d, want 7", i, v)
			}
			outcomes[i] = out
		}(i)
	}
	// Release the primary only once every waiter has committed to the
	// Waited path (signaled through waitHook), so each outcome below is
	// deterministic rather than a race against fn finishing.
	for i := 0; i < waiters; i++ {
		<-waiting
	}
	close(release)
	<-primaryDone
	wg.Wait()

	for i, out := range outcomes {
		if out != Waited {
			t.Errorf("waiter %d outcome = %v, want Waited", i, out)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under contention, want 1", n)
	}
}

// TestGroupMemoizesErrors: errors are retained like values (the bench
// suite's contract), and Forget clears them for a retry.
func TestGroupMemoizesErrors(t *testing.T) {
	var g Group[int, string]
	boom := errors.New("boom")
	calls := 0
	fill := func() (string, error) {
		calls++
		if calls == 1 {
			return "", boom
		}
		return "ok", nil
	}
	if _, err, _ := g.Do(1, fill); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	if _, err, out := g.Do(1, fill); !errors.Is(err, boom) || out != Cached {
		t.Fatalf("memoized err Do = (%v, %v), want (boom, Cached)", err, out)
	}
	g.Forget(1)
	if v, err, out := g.Do(1, fill); v != "ok" || err != nil || out != DidRun {
		t.Fatalf("post-Forget Do = (%q, %v, %v), want (ok, nil, DidRun)", v, err, out)
	}
	if calls != 2 {
		t.Fatalf("fill ran %d times, want 2", calls)
	}
}

// TestGroupConcurrentKeys hammers many goroutines over a small key space
// under -race: each key's fill runs exactly once and every caller sees its
// key's value.
func TestGroupConcurrentKeys(t *testing.T) {
	var g Group[int, int]
	const keys = 5
	var fills [keys]atomic.Int64
	var wg sync.WaitGroup
	for gr := 0; gr < 16; gr++ {
		wg.Add(1)
		go func(gr int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (gr + i) % keys
				v, err, _ := g.Do(k, func() (int, error) {
					fills[k].Add(1)
					return k * 10, nil
				})
				if err != nil || v != k*10 {
					t.Errorf("Do(%d) = (%d, %v), want (%d, nil)", k, v, err, k*10)
					return
				}
			}
		}(gr)
	}
	wg.Wait()
	for k := range fills {
		if n := fills[k].Load(); n != 1 {
			t.Errorf("key %d filled %d times, want 1", k, n)
		}
	}
	if g.Len() != keys {
		t.Errorf("Len = %d, want %d", g.Len(), keys)
	}
}
