// Package query is OTIF's post-processing query engine. After the pipeline
// extracts object tracks from video, every query in the paper — track
// counts, path (turning-movement) breakdowns, frame-level count / region /
// hot spot limit queries, hard-braking search, traffic volume — is answered
// by scanning the stored tracks, with no further video decoding or model
// inference. On paper-scale datasets these scans take milliseconds, which
// is the point of tracker pre-processing (§1, §4.2).
package query

import (
	"math"
	"sort"

	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/obs"
)

// metScanBoxes counts detection elements examined by the linear-scan query
// implementations (BoxAt walks, dwell sweeps). The indexed store records
// the same unit under store.index_boxes, so the ratio of the two counters
// is the pruning factor the index achieves on a workload.
var metScanBoxes = obs.Default.Counter("query.scan_boxes")

// Track is one stored object track as produced by the OTIF pipeline: the
// raw detections plus the (possibly endpoint-refined) spatial path.
type Track struct {
	ID       int
	Category string
	Dets     []detect.Detection
	Path     geom.Path // refined path; falls back to detection centers
}

// FirstFrame returns the first detection's frame index, or -1.
func (t *Track) FirstFrame() int {
	if len(t.Dets) == 0 {
		return -1
	}
	return t.Dets[0].FrameIdx
}

// LastFrame returns the last detection's frame index, or -1.
func (t *Track) LastFrame() int {
	if len(t.Dets) == 0 {
		return -1
	}
	return t.Dets[len(t.Dets)-1].FrameIdx
}

// BoxAt linearly interpolates the track's box at a frame index.
func (t *Track) BoxAt(frameIdx int) (geom.Rect, bool) {
	n := len(t.Dets)
	if n == 0 || frameIdx < t.Dets[0].FrameIdx || frameIdx > t.Dets[n-1].FrameIdx {
		metScanBoxes.Inc()
		return geom.Rect{}, false
	}
	for i := 0; i+1 < n; i++ {
		a, b := t.Dets[i], t.Dets[i+1]
		if frameIdx > b.FrameIdx {
			continue
		}
		metScanBoxes.Add(int64(i) + 2)
		return InterpBox(a, b, frameIdx), true
	}
	metScanBoxes.Add(int64(n))
	return t.Dets[n-1].Box, true
}

// InterpBox interpolates between two detections at frameIdx with the exact
// arithmetic BoxAt uses; the indexed store shares it so index-backed
// results are bit-identical to the scans.
func InterpBox(a, b detect.Detection, frameIdx int) geom.Rect {
	if b.FrameIdx == a.FrameIdx {
		return a.Box
	}
	f := float64(frameIdx-a.FrameIdx) / float64(b.FrameIdx-a.FrameIdx)
	return geom.Rect{
		X: a.Box.X + (b.Box.X-a.Box.X)*f,
		Y: a.Box.Y + (b.Box.Y-a.Box.Y)*f,
		W: a.Box.W + (b.Box.W-a.Box.W)*f,
		H: a.Box.H + (b.Box.H-a.Box.H)*f,
	}
}

// Interp walks one track's detections forward, interpolating boxes at
// non-decreasing frame indices in O(dets + frames) amortized instead of
// BoxAt's O(dets) per call. It returns exactly what BoxAt would: the
// segment chosen for any frame is the first detection pair whose second
// endpoint is at or past the frame, and the arithmetic is shared.
type Interp struct {
	t *Track
	i int
	// Visited counts detection elements examined, in the same unit as the
	// query.scan_boxes / store.index_boxes counters.
	Visited int64
}

// NewInterp starts an interpolating walk over t.
func NewInterp(t *Track) Interp { return Interp{t: t} }

// BoxAt returns the same box as t.BoxAt(frameIdx). Frame indices must be
// non-decreasing across calls on one Interp.
func (ip *Interp) BoxAt(frameIdx int) (geom.Rect, bool) {
	t := ip.t
	n := len(t.Dets)
	ip.Visited++
	if n == 0 || frameIdx < t.Dets[0].FrameIdx || frameIdx > t.Dets[n-1].FrameIdx {
		return geom.Rect{}, false
	}
	for ip.i+1 < n && frameIdx > t.Dets[ip.i+1].FrameIdx {
		ip.i++
		ip.Visited++
	}
	if ip.i+1 >= n {
		return t.Dets[n-1].Box, true
	}
	return InterpBox(t.Dets[ip.i], t.Dets[ip.i+1], frameIdx), true
}

// Context carries the clip geometry queries need.
type Context struct {
	FPS        int
	NomW, NomH int
	Frames     int // clip length in frames
}

// ---- Object track queries (§4.1) ----

// CountTracks returns the number of tracks of the given category (all
// categories when cat is empty). This is the paper's track count query
// (Amsterdam, Jackson).
func CountTracks(tracks []*Track, cat string) int {
	n := 0
	for _, t := range tracks {
		if cat == "" || t.Category == cat {
			n++
		}
	}
	return n
}

// Movement is one labeled spatial pattern for path breakdown queries: a
// reference path through the scene (typically a lane of the camera's road
// network).
type Movement struct {
	Name string
	Path geom.Path
}

// ClassifyPath assigns a track path to the best-matching movement by the
// summed distance between the track's endpoints and the movement's
// endpoints, requiring both within maxEndpointDist; it returns "" when no
// movement matches. Endpoint matching is what makes reduced-rate tracks
// need refinement (§3.4).
func ClassifyPath(p geom.Path, movements []Movement, maxEndpointDist float64) string {
	if len(p) == 0 {
		return ""
	}
	start, end := p[0], p[len(p)-1]
	bestName := ""
	bestDist := math.Inf(1)
	for _, m := range movements {
		if len(m.Path) == 0 {
			continue
		}
		ds := start.Dist(m.Path[0])
		de := end.Dist(m.Path[len(m.Path)-1])
		if ds > maxEndpointDist || de > maxEndpointDist {
			continue
		}
		if d := ds + de; d < bestDist {
			bestDist = d
			bestName = m.Name
		}
	}
	return bestName
}

// PathBreakdown counts tracks of the given category per movement name
// (the turning movement count query of §4.1). Tracks that match no
// movement are omitted.
func PathBreakdown(tracks []*Track, cat string, movements []Movement, maxEndpointDist float64) map[string]int {
	out := make(map[string]int, len(movements))
	for _, m := range movements {
		out[m.Name] = 0
	}
	for _, t := range tracks {
		if cat != "" && t.Category != cat {
			continue
		}
		if name := ClassifyPath(t.Path, movements, maxEndpointDist); name != "" {
			out[name]++
		}
	}
	return out
}

// ---- Frame-level limit queries (§4.2) ----

// FrameMatch is one frame returned by a limit query, with the object boxes
// that satisfied the predicate.
type FrameMatch struct {
	FrameIdx int
	Boxes    []geom.Rect
	// MinDuration is the smallest remaining-track duration among the
	// matched boxes' tracks, used to rank candidate frames (OTIF returns
	// frames whose visible tracks have the highest minimum duration,
	// §4.2).
	MinDuration int
}

// FramePredicate evaluates a frame-level predicate against the boxes
// visible in a frame, returning the satisfying boxes and whether the frame
// matches.
type FramePredicate interface {
	Eval(boxes []geom.Rect) ([]geom.Rect, bool)
}

// CountPredicate matches frames with at least N objects.
type CountPredicate struct{ N int }

// Eval implements FramePredicate.
func (p CountPredicate) Eval(boxes []geom.Rect) ([]geom.Rect, bool) {
	if len(boxes) >= p.N {
		return boxes, true
	}
	return nil, false
}

// RegionPredicate matches frames with at least N objects whose centers lie
// in a polygonal region.
type RegionPredicate struct {
	Region geom.Polygon
	N      int
}

// Eval implements FramePredicate.
func (p RegionPredicate) Eval(boxes []geom.Rect) ([]geom.Rect, bool) {
	var in []geom.Rect
	for _, b := range boxes {
		if p.Region.Contains(b.Center()) {
			in = append(in, b)
		}
	}
	if len(in) >= p.N {
		return in, true
	}
	return nil, false
}

// HotSpotPredicate matches frames where at least N object centers fall in
// some circular cluster of the given radius.
type HotSpotPredicate struct {
	Radius float64
	N      int
}

// Eval implements FramePredicate. It checks circles centered at each
// object center, which finds a qualifying cluster whenever one exists with
// at most a factor-2 radius relaxation (standard disk-cover argument); the
// same evaluator is applied to methods and ground truth so comparisons are
// consistent.
func (p HotSpotPredicate) Eval(boxes []geom.Rect) ([]geom.Rect, bool) {
	for _, b := range boxes {
		c := b.Center()
		var in []geom.Rect
		for _, o := range boxes {
			if c.Dist(o.Center()) <= p.Radius {
				in = append(in, o)
			}
		}
		if len(in) >= p.N {
			return in, true
		}
	}
	return nil, false
}

// VisibleBoxes returns the interpolated boxes of all tracks of the given
// category visible at frameIdx, along with the owning tracks.
func VisibleBoxes(tracks []*Track, cat string, frameIdx int) ([]geom.Rect, []*Track) {
	var boxes []geom.Rect
	var owners []*Track
	for _, t := range tracks {
		if cat != "" && t.Category != cat {
			continue
		}
		if b, ok := t.BoxAt(frameIdx); ok {
			boxes = append(boxes, b)
			owners = append(owners, t)
		}
	}
	return boxes, owners
}

// VisibleFunc supplies the boxes (and owning tracks) of one category
// visible at a frame. The linear scans and the indexed store both
// implement it, so the query cores below run identically over either.
type VisibleFunc func(frameIdx int) ([]geom.Rect, []*Track)

// LimitQuery executes a frame-level limit query over one clip's tracks:
// it scans frames, evaluates the predicate on the visible boxes, enforces
// the minimum separation between returned frames, ranks candidates by the
// minimum remaining duration of their visible tracks (descending), and
// returns up to limit matches.
func LimitQuery(tracks []*Track, cat string, pred FramePredicate, ctx Context, limit int, minSepFrames int) []FrameMatch {
	return LimitQueryFrom(func(f int) ([]geom.Rect, []*Track) {
		return VisibleBoxes(tracks, cat, f)
	}, pred, ctx, limit, minSepFrames)
}

// LimitQueryFrom is LimitQuery over any visible-boxes source.
func LimitQueryFrom(visible VisibleFunc, pred FramePredicate, ctx Context, limit int, minSepFrames int) []FrameMatch {
	var cands []FrameMatch
	for f := 0; f < ctx.Frames; f++ {
		boxes, owners := visible(f)
		matched, ok := pred.Eval(boxes)
		if !ok {
			continue
		}
		minDur := math.MaxInt32
		for i, b := range boxes {
			for _, m := range matched {
				if b == m {
					if d := owners[i].LastFrame() - f; d < minDur {
						minDur = d
					}
					break
				}
			}
		}
		cands = append(cands, FrameMatch{FrameIdx: f, Boxes: matched, MinDuration: minDur})
	}
	// Rank by minimum visible-track duration, descending.
	sort.Slice(cands, func(i, j int) bool { return cands[i].MinDuration > cands[j].MinDuration })
	var out []FrameMatch
	for _, c := range cands {
		if len(out) >= limit {
			break
		}
		ok := true
		for _, o := range out {
			if absInt(o.FrameIdx-c.FrameIdx) < minSepFrames {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FrameIdx < out[j].FrameIdx })
	return out
}

// ---- Exploratory analytics queries (§3, example queries) ----

// HardBraking returns the tracks whose maximum deceleration exceeds the
// threshold (nominal px/sec^2), the paper's example query (1).
func HardBraking(tracks []*Track, ctx Context, decelThreshold float64) []*Track {
	var out []*Track
	for _, t := range tracks {
		if maxDecel(t, ctx.FPS) >= decelThreshold {
			out = append(out, t)
		}
	}
	return out
}

// maxDecel estimates the largest speed decrease rate along the track using
// a smoothed finite-difference of consecutive segment speeds.
func maxDecel(t *Track, fps int) float64 {
	n := len(t.Dets)
	if n < 3 {
		return 0
	}
	speeds := make([]float64, 0, n-1)
	times := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		dt := float64(t.Dets[i].FrameIdx-t.Dets[i-1].FrameIdx) / float64(fps)
		if dt <= 0 {
			continue
		}
		d := t.Dets[i].Box.Center().Dist(t.Dets[i-1].Box.Center())
		speeds = append(speeds, d/dt)
		times = append(times, float64(t.Dets[i].FrameIdx)/float64(fps))
	}
	var worst float64
	for i := 1; i < len(speeds); i++ {
		dt := times[i] - times[i-1]
		if dt <= 0 {
			continue
		}
		if dec := (speeds[i-1] - speeds[i]) / dt; dec > worst {
			worst = dec
		}
	}
	return worst
}

// AvgVisible returns the average number of category objects visible per
// frame over the clip (example query (3)).
func AvgVisible(tracks []*Track, cat string, ctx Context) float64 {
	return AvgVisibleFrom(func(f int) ([]geom.Rect, []*Track) {
		return VisibleBoxes(tracks, cat, f)
	}, ctx)
}

// AvgVisibleFrom is AvgVisible over any visible-boxes source.
func AvgVisibleFrom(visible VisibleFunc, ctx Context) float64 {
	if ctx.Frames == 0 {
		return 0
	}
	var total int
	for f := 0; f < ctx.Frames; f++ {
		boxes, _ := visible(f)
		total += len(boxes)
	}
	return float64(total) / float64(ctx.Frames)
}

// BusyFrames returns the frames containing at least nA objects of catA and
// nB of catB (example query (2): "frames with at least three buses and
// three cars").
func BusyFrames(tracks []*Track, catA string, nA int, catB string, nB int, ctx Context) []int {
	return BusyFramesFrom(func(f int) ([]geom.Rect, []*Track) {
		return VisibleBoxes(tracks, catA, f)
	}, nA, func(f int) ([]geom.Rect, []*Track) {
		return VisibleBoxes(tracks, catB, f)
	}, nB, ctx)
}

// BusyFramesFrom is BusyFrames over any pair of visible-boxes sources.
// The catB source is only consulted on frames where catA qualifies,
// matching the scan's short-circuit.
func BusyFramesFrom(visA VisibleFunc, nA int, visB VisibleFunc, nB int, ctx Context) []int {
	var out []int
	for f := 0; f < ctx.Frames; f++ {
		a, _ := visA(f)
		if len(a) < nA {
			continue
		}
		b, _ := visB(f)
		if len(b) >= nB {
			out = append(out, f)
		}
	}
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
