package query

import (
	"testing"

	"otif/internal/detect"
	"otif/internal/geom"
)

func mkTrack(id int, cat string, startFrame, n, step int, x0, y0, vx, vy float64) *Track {
	t := &Track{ID: id, Category: cat}
	for i := 0; i < n; i++ {
		f := startFrame + i*step
		t.Dets = append(t.Dets, detect.Detection{
			FrameIdx: f,
			Box:      geom.Rect{X: x0 + vx*float64(i*step), Y: y0 + vy*float64(i*step), W: 40, H: 20},
			Category: cat,
		})
	}
	t.Path = make(geom.Path, len(t.Dets))
	for i, d := range t.Dets {
		t.Path[i] = d.Box.Center()
	}
	return t
}

func TestCountTracks(t *testing.T) {
	tracks := []*Track{
		mkTrack(0, "car", 0, 5, 1, 0, 0, 10, 0),
		mkTrack(1, "bus", 0, 5, 1, 0, 100, 10, 0),
		mkTrack(2, "car", 0, 5, 1, 0, 200, 10, 0),
	}
	if got := CountTracks(tracks, "car"); got != 2 {
		t.Errorf("CountTracks(car) = %d", got)
	}
	if got := CountTracks(tracks, ""); got != 3 {
		t.Errorf("CountTracks(all) = %d", got)
	}
	if got := CountTracks(tracks, "pedestrian"); got != 0 {
		t.Errorf("CountTracks(ped) = %d", got)
	}
}

func TestClassifyPath(t *testing.T) {
	movements := []Movement{
		{Name: "W->E", Path: geom.Path{{X: 0, Y: 100}, {X: 600, Y: 100}}},
		{Name: "E->W", Path: geom.Path{{X: 600, Y: 100}, {X: 0, Y: 100}}},
	}
	east := geom.Path{{X: 10, Y: 105}, {X: 300, Y: 100}, {X: 590, Y: 95}}
	if got := ClassifyPath(east, movements, 100); got != "W->E" {
		t.Errorf("ClassifyPath = %q", got)
	}
	west := geom.Path{{X: 590, Y: 100}, {X: 10, Y: 100}}
	if got := ClassifyPath(west, movements, 100); got != "E->W" {
		t.Errorf("ClassifyPath = %q", got)
	}
	// Track stopping mid-frame matches nothing.
	partial := geom.Path{{X: 10, Y: 100}, {X: 250, Y: 100}}
	if got := ClassifyPath(partial, movements, 100); got != "" {
		t.Errorf("partial path classified as %q", got)
	}
	if got := ClassifyPath(nil, movements, 100); got != "" {
		t.Error("empty path should classify as nothing")
	}
}

func TestPathBreakdown(t *testing.T) {
	movements := []Movement{
		{Name: "W->E", Path: geom.Path{{X: 0, Y: 100}, {X: 600, Y: 100}}},
		{Name: "E->W", Path: geom.Path{{X: 600, Y: 200}, {X: 0, Y: 200}}},
	}
	tracks := []*Track{
		mkTrack(0, "car", 0, 31, 1, -20, 90, 20, 0),   // W->E
		mkTrack(1, "car", 0, 31, 1, 580, 190, -20, 0), // E->W
		mkTrack(2, "bus", 0, 31, 1, -20, 90, 20, 0),   // W->E but a bus
	}
	got := PathBreakdown(tracks, "car", movements, 100)
	if got["W->E"] != 1 || got["E->W"] != 1 {
		t.Errorf("PathBreakdown = %v", got)
	}
	all := PathBreakdown(tracks, "", movements, 100)
	if all["W->E"] != 2 {
		t.Errorf("PathBreakdown all = %v", all)
	}
}

func TestBoxAtAndVisibleBoxes(t *testing.T) {
	tracks := []*Track{
		mkTrack(0, "car", 0, 11, 1, 0, 0, 10, 0),
		mkTrack(1, "car", 20, 5, 1, 0, 100, 10, 0),
	}
	boxes, owners := VisibleBoxes(tracks, "car", 5)
	if len(boxes) != 1 || owners[0].ID != 0 {
		t.Errorf("VisibleBoxes(5) = %v", boxes)
	}
	boxes, _ = VisibleBoxes(tracks, "car", 22)
	if len(boxes) != 1 {
		t.Errorf("VisibleBoxes(22) = %v", boxes)
	}
	boxes, _ = VisibleBoxes(tracks, "car", 15)
	if len(boxes) != 0 {
		t.Errorf("VisibleBoxes(15) = %v", boxes)
	}
}

func TestPredicates(t *testing.T) {
	boxes := []geom.Rect{
		{X: 0, Y: 0, W: 10, H: 10},
		{X: 5, Y: 5, W: 10, H: 10},
		{X: 300, Y: 300, W: 10, H: 10},
	}
	if _, ok := (CountPredicate{N: 3}).Eval(boxes); !ok {
		t.Error("count >= 3 should match")
	}
	if _, ok := (CountPredicate{N: 4}).Eval(boxes); ok {
		t.Error("count >= 4 should not match")
	}

	region := geom.Polygon{{X: -1, Y: -1}, {X: 50, Y: -1}, {X: 50, Y: 50}, {X: -1, Y: 50}}
	in, ok := (RegionPredicate{Region: region, N: 2}).Eval(boxes)
	if !ok || len(in) != 2 {
		t.Errorf("region predicate = %v, %v", in, ok)
	}
	if _, ok := (RegionPredicate{Region: region, N: 3}).Eval(boxes); ok {
		t.Error("region should contain only 2")
	}

	in, ok = (HotSpotPredicate{Radius: 20, N: 2}).Eval(boxes)
	if !ok || len(in) != 2 {
		t.Errorf("hotspot = %v, %v", in, ok)
	}
	if _, ok := (HotSpotPredicate{Radius: 20, N: 3}).Eval(boxes); ok {
		t.Error("no 3-cluster within radius 20")
	}
}

func TestLimitQuery(t *testing.T) {
	// One long track visible frames 0-100, one short visible 50-54.
	tracks := []*Track{
		mkTrack(0, "car", 0, 101, 1, 0, 0, 1, 0),
		mkTrack(1, "car", 50, 5, 1, 0, 100, 1, 0),
	}
	ctx := Context{FPS: 10, NomW: 640, NomH: 480, Frames: 101}
	// Frames with >= 2 cars are 50..54.
	out := LimitQuery(tracks, "car", CountPredicate{N: 2}, ctx, 10, 10)
	if len(out) != 1 {
		t.Fatalf("limit query returned %d frames, want 1 (5 matches within min separation)", len(out))
	}
	if out[0].FrameIdx < 50 || out[0].FrameIdx > 54 {
		t.Errorf("returned frame %d outside matching range", out[0].FrameIdx)
	}
	// Limit respected with smaller separation.
	out = LimitQuery(tracks, "car", CountPredicate{N: 2}, ctx, 2, 2)
	if len(out) != 2 {
		t.Errorf("limit 2 returned %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].FrameIdx-out[i-1].FrameIdx < 2 {
			t.Error("separation violated")
		}
	}
}

func TestHardBraking(t *testing.T) {
	ctx := Context{FPS: 10, Frames: 100}
	steady := mkTrack(0, "car", 0, 50, 1, 0, 0, 10, 0)
	// Braking: speed 20 px/frame then 2 px/frame.
	braking := &Track{ID: 1, Category: "car"}
	x := 0.0
	for f := 0; f < 50; f++ {
		v := 20.0
		if f >= 25 {
			v = 2
		}
		x += v
		braking.Dets = append(braking.Dets, detect.Detection{
			FrameIdx: f, Box: geom.Rect{X: x, Y: 0, W: 40, H: 20}, Category: "car",
		})
	}
	out := HardBraking([]*Track{steady, braking}, ctx, 100)
	if len(out) != 1 || out[0].ID != 1 {
		t.Errorf("HardBraking = %v", ids(out))
	}
	// A huge threshold matches nothing.
	if got := HardBraking([]*Track{steady, braking}, ctx, 1e9); len(got) != 0 {
		t.Error("impossible threshold matched tracks")
	}
}

func ids(ts []*Track) []int {
	var out []int
	for _, t := range ts {
		out = append(out, t.ID)
	}
	return out
}

func TestAvgVisible(t *testing.T) {
	ctx := Context{FPS: 10, Frames: 10}
	tracks := []*Track{mkTrack(0, "car", 0, 10, 1, 0, 0, 1, 0)} // visible frames 0..9
	got := AvgVisible(tracks, "car", ctx)
	if got != 1 {
		t.Errorf("AvgVisible = %v, want 1", got)
	}
	if AvgVisible(nil, "car", Context{}) != 0 {
		t.Error("zero frames should yield 0")
	}
}

func TestBusyFrames(t *testing.T) {
	ctx := Context{FPS: 10, Frames: 20}
	tracks := []*Track{
		mkTrack(0, "car", 0, 20, 1, 0, 0, 1, 0),
		mkTrack(1, "car", 5, 10, 1, 0, 50, 1, 0),
		mkTrack(2, "bus", 8, 4, 1, 0, 100, 1, 0),
	}
	out := BusyFrames(tracks, "car", 2, "bus", 1, ctx)
	// Frames with 2 cars (5..14) AND 1 bus (8..11): 8..11.
	if len(out) != 4 || out[0] != 8 || out[3] != 11 {
		t.Errorf("BusyFrames = %v", out)
	}
}
