package query

import (
	"math"
	"testing"

	"otif/internal/geom"
)

func TestTrackSpeed(t *testing.T) {
	// 10 px per frame at 10 fps = 100 px/s, constant.
	tr := mkTrack(0, "car", 0, 11, 1, 0, 0, 10, 0)
	st := TrackSpeed(tr, 10)
	if math.Abs(st.Mean-100) > 1e-9 || math.Abs(st.P50-100) > 1e-9 || math.Abs(st.Max-100) > 1e-9 {
		t.Errorf("constant-speed stats = %+v, want all 100", st)
	}
	// Short and degenerate tracks.
	if TrackSpeed(&Track{}, 10) != (SpeedStats{}) {
		t.Error("empty track should have zero stats")
	}
	if TrackSpeed(tr, 0) != (SpeedStats{}) {
		t.Error("zero fps should have zero stats")
	}
}

func TestSpeeding(t *testing.T) {
	ctx := Context{FPS: 10, Frames: 100}
	slow := mkTrack(0, "car", 0, 11, 1, 0, 0, 2, 0)   // 20 px/s
	fast := mkTrack(1, "car", 0, 11, 1, 0, 50, 20, 0) // 200 px/s
	out := Speeding([]*Track{slow, fast}, ctx, 100)
	if len(out) != 1 || out[0].ID != 1 {
		t.Errorf("Speeding = %v", ids(out))
	}
}

func TestDwellTime(t *testing.T) {
	ctx := Context{FPS: 10, Frames: 100}
	// Track crosses x from 20 to 120 over 100 frames (1 px/frame);
	// region covers x in [50, 70] -> ~20 frames -> 2 seconds.
	tr := mkTrack(0, "car", 0, 101, 1, 0, 0, 1, 0)
	region := geom.Polygon{{X: 50, Y: -10}, {X: 70, Y: -10}, {X: 70, Y: 50}, {X: 50, Y: 50}}
	dw := DwellTime([]*Track{tr}, "car", region, ctx)
	got := dw[0]
	if got < 1.5 || got > 2.5 {
		t.Errorf("dwell = %v s, want ~2", got)
	}
	// Category filter.
	if len(DwellTime([]*Track{tr}, "bus", region, ctx)) != 0 {
		t.Error("category filter failed")
	}
}

func TestCoOccurrences(t *testing.T) {
	ctx := Context{FPS: 10, Frames: 10}
	// Two parallel tracks 30 px apart for 10 frames.
	a := mkTrack(0, "car", 0, 10, 1, 0, 0, 1, 0)
	b := mkTrack(1, "car", 0, 10, 1, 0, 30, 1, 0)
	if got := CoOccurrences([]*Track{a, b}, "car", 50, ctx); got != 10 {
		t.Errorf("co-occurrences = %d, want 10", got)
	}
	if got := CoOccurrences([]*Track{a, b}, "car", 10, ctx); got != 0 {
		t.Errorf("distant co-occurrences = %d, want 0", got)
	}
}

func TestTrackLengthStats(t *testing.T) {
	a := mkTrack(0, "car", 0, 11, 1, 0, 0, 1, 0)  // 10 frames = 1 s
	b := mkTrack(1, "car", 0, 31, 1, 0, 50, 1, 0) // 30 frames = 3 s
	mean, p50, maxV := TrackLengthStats([]*Track{a, b}, 10)
	if math.Abs(mean-2) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	if maxV != 3 {
		t.Errorf("max = %v", maxV)
	}
	if p50 != 3 { // median of [1,3] with len/2 index
		t.Errorf("p50 = %v", p50)
	}
	if m, _, _ := TrackLengthStats(nil, 10); m != 0 {
		t.Error("empty stats should be zero")
	}
}
