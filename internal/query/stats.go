package query

import (
	"math"
	"sort"

	"otif/internal/geom"
)

// SpeedStats summarizes a track's motion in nominal pixels per second.
type SpeedStats struct {
	Mean float64
	Max  float64
	P50  float64
}

// TrackSpeed computes per-segment speeds over a track and summarizes them.
// Tracks with fewer than two detections have zero stats.
func TrackSpeed(t *Track, fps int) SpeedStats {
	n := len(t.Dets)
	if n < 2 || fps <= 0 {
		return SpeedStats{}
	}
	speeds := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		dt := float64(t.Dets[i].FrameIdx-t.Dets[i-1].FrameIdx) / float64(fps)
		if dt <= 0 {
			continue
		}
		d := t.Dets[i].Box.Center().Dist(t.Dets[i-1].Box.Center())
		speeds = append(speeds, d/dt)
	}
	if len(speeds) == 0 {
		return SpeedStats{}
	}
	var sum, maxV float64
	for _, s := range speeds {
		sum += s
		if s > maxV {
			maxV = s
		}
	}
	sort.Float64s(speeds)
	return SpeedStats{
		Mean: sum / float64(len(speeds)),
		Max:  maxV,
		P50:  speeds[len(speeds)/2],
	}
}

// Speeding returns tracks whose median speed exceeds the threshold
// (nominal px/sec) — the "find speeding cars" exploratory query.
func Speeding(tracks []*Track, ctx Context, threshold float64) []*Track {
	var out []*Track
	for _, t := range tracks {
		if TrackSpeed(t, ctx.FPS).P50 >= threshold {
			out = append(out, t)
		}
	}
	return out
}

// DwellTime returns, per track of the category, the number of seconds the
// track's interpolated box center stays inside the region. This answers
// queries like "how long do cars wait in the junction box".
func DwellTime(tracks []*Track, cat string, region geom.Polygon, ctx Context) map[int]float64 {
	out := map[int]float64{}
	if ctx.FPS <= 0 {
		return out
	}
	for _, t := range tracks {
		if cat != "" && t.Category != cat {
			continue
		}
		frames := 0
		for f := t.FirstFrame(); f <= t.LastFrame(); f++ {
			if b, ok := t.BoxAt(f); ok && region.Contains(b.Center()) {
				frames++
			}
		}
		if frames > 0 {
			out[t.ID] = float64(frames) / float64(ctx.FPS)
		}
	}
	return out
}

// CoOccurrences counts, per frame, how many distinct pairs of category
// objects are simultaneously visible within dist of each other, and
// returns the total over the clip — a proximity analytics primitive
// (e.g. near-miss counting).
func CoOccurrences(tracks []*Track, cat string, dist float64, ctx Context) int {
	return CoOccurrencesFrom(func(f int) ([]geom.Rect, []*Track) {
		return VisibleBoxes(tracks, cat, f)
	}, dist, ctx)
}

// CoOccurrencesFrom is CoOccurrences over any visible-boxes source.
func CoOccurrencesFrom(visible VisibleFunc, dist float64, ctx Context) int {
	total := 0
	for f := 0; f < ctx.Frames; f++ {
		boxes, _ := visible(f)
		for i := 0; i < len(boxes); i++ {
			for j := i + 1; j < len(boxes); j++ {
				if boxes[i].Center().Dist(boxes[j].Center()) <= dist {
					total++
				}
			}
		}
	}
	return total
}

// TrackLengthStats returns the distribution of track durations in seconds
// (for data-quality dashboards over a pre-processed dataset).
func TrackLengthStats(tracks []*Track, fps int) (mean, p50, maxV float64) {
	if len(tracks) == 0 || fps <= 0 {
		return 0, 0, 0
	}
	durs := make([]float64, 0, len(tracks))
	var sum float64
	for _, t := range tracks {
		d := float64(t.LastFrame()-t.FirstFrame()) / float64(fps)
		durs = append(durs, d)
		sum += d
		maxV = math.Max(maxV, d)
	}
	sort.Float64s(durs)
	return sum / float64(len(durs)), durs[len(durs)/2], maxV
}
