package store

import (
	"math/rand"
	"reflect"
	"testing"

	"otif/internal/geom"
	"otif/internal/query"
)

// shardedFixture builds a randomized 7-clip dataset (with an empty and a
// tiny clip mixed in) plus the monolithic reference store.
func shardedFixture(seed int64) ([][]*query.Track, *Store, query.Context, *rand.Rand) {
	ctx := testCtx()
	r := rand.New(rand.NewSource(seed))
	perClip := [][]*query.Track{
		genTracks(r, 5+r.Intn(40), ctx.Frames, ctx),
		genTracks(r, r.Intn(10), ctx.Frames, ctx),
		nil, // empty clip
		genTracks(r, 20, ctx.Frames, ctx),
		genTracks(r, 1, ctx.Frames, ctx),
		genTracks(r, 15+r.Intn(15), ctx.Frames, ctx),
		genTracks(r, 8, ctx.Frames, ctx),
	}
	return perClip, New(perClip, ctx), ctx, r
}

// TestShardedDifferential is the scatter-gather acceptance test: for every
// split K ∈ {1,2,3,7} of a 7-clip dataset, with the result cache off, on,
// and warm, every query builder terminal over the Sharded store must be
// element-for-element identical (reflect.DeepEqual over the full result
// structures) to the same query over one monolithic Store.
func TestShardedDifferential(t *testing.T) {
	movements := []query.Movement{
		{Name: "a", Path: geom.Path{{X: 0, Y: 0}, {X: 640, Y: 360}}},
		{Name: "b", Path: geom.Path{{X: 640, Y: 0}, {X: 0, Y: 360}}},
	}
	for seed := int64(0); seed < 4; seed++ {
		perClip, mono, ctx, r := shardedFixture(seed)
		region := randRegion(r, ctx)
		dist := 40 + r.Float64()*100
		preds := []query.FramePredicate{
			query.CountPredicate{N: 1 + r.Intn(4)},
			query.RegionPredicate{Region: randRegion(r, ctx), N: 1 + r.Intn(3)},
			query.HotSpotPredicate{Radius: 30 + r.Float64()*80, N: 2},
		}

		// clipsPerSeg 7,4,3,1 over 7 clips → K = 1, 2, 3, 7 segments.
		for _, clipsPerSeg := range []int{7, 4, 3, 1} {
			for _, cache := range []*Cache{nil, NewCache()} {
				segs := SplitSegments(perClip, ctx, clipsPerSeg)
				sh, err := NewSharded("test", ctx, segs, cache)
				if err != nil {
					t.Fatal(err)
				}
				wantK := (len(perClip) + clipsPerSeg - 1) / clipsPerSeg
				if len(sh.Segments()) != wantK {
					t.Fatalf("clipsPerSeg=%d: %d segments, want %d", clipsPerSeg, len(sh.Segments()), wantK)
				}
				// Two rounds: the second answers cache-on queries from the
				// cache, which must be just as bit-identical as computing.
				for round := 0; round < 2; round++ {
					check := func(what string, got, want any) {
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed %d clipsPerSeg=%d cache=%v round %d: %s diverged from monolithic store\n got: %v\nwant: %v",
								seed, clipsPerSeg, cache != nil, round, what, got, want)
						}
					}
					for _, cat := range []string{"", "car", "bus", "nosuch"} {
						check("CountTracks("+cat+")", sh.CountTracks(cat), mono.CountTracks(cat))
						check("AvgVisible("+cat+")", sh.AvgVisible(cat), mono.AvgVisible(cat))
						check("CoOccurrences("+cat+")", sh.CoOccurrences(cat, dist), mono.CoOccurrences(cat, dist))
						check("DwellTime("+cat+")", sh.DwellTime(cat, region), mono.DwellTime(cat, region))
						for _, pred := range preds {
							check("LimitQuery("+cat+")",
								sh.LimitQuery(cat, pred, 3, 5), mono.LimitQuery(cat, pred, 3, 5))
						}
					}
					check("PathBreakdown", sh.PathBreakdown("car", movements, 200), mono.PathBreakdown("car", movements, 200))
					check("BusyFrames", sh.BusyFrames("car", 2, "bus", 1), mono.BusyFrames("car", 2, "bus", 1))
					check("HardBraking", sh.HardBraking(250), mono.HardBraking(250))
					check("Speeding", sh.Speeding(800), mono.Speeding(800))
					for clip := 0; clip < len(perClip); clip++ {
						check("Tracks", sh.Tracks(clip), mono.Tracks(clip))
						for f := 0; f < ctx.Frames; f += 37 {
							gb, go_ := sh.VisibleBoxes(clip, "car", f)
							wb, wo := mono.VisibleBoxes(clip, "car", f)
							check("VisibleBoxes boxes", gb, wb)
							check("VisibleBoxes owners", go_, wo)
						}
					}
				}
				if cache != nil {
					st := cache.Stats()
					if st.Fills == 0 {
						t.Fatalf("clipsPerSeg=%d: cache recorded no fills", clipsPerSeg)
					}
					if st.Hits == 0 {
						t.Fatalf("clipsPerSeg=%d: second round recorded no cache hits", clipsPerSeg)
					}
				}
			}
		}
	}
}

// TestNewShardedValidation pins the tiling and context invariants: segments
// that leave a gap, overlap, or disagree on clip geometry are rejected.
func TestNewShardedValidation(t *testing.T) {
	perClip, _, ctx, _ := shardedFixture(1)

	segs := SplitSegments(perClip, ctx, 3)
	if _, err := NewSharded("test", ctx, segs, nil); err != nil {
		t.Fatalf("valid tiling rejected: %v", err)
	}

	// Gap: drop the middle segment.
	gap := []*Segment{segs[0], segs[2]}
	if _, err := NewSharded("test", ctx, gap, nil); err == nil {
		t.Error("tiling with a gap accepted")
	}

	// Out of order.
	swapped := []*Segment{segs[1], segs[0], segs[2]}
	if _, err := NewSharded("test", ctx, swapped, nil); err == nil {
		t.Error("out-of-order segments accepted")
	}

	// Context mismatch.
	other := ctx
	other.FPS++
	bad := []*Segment{NewSegment(SegmentID(0), 0, perClip, other)}
	if _, err := NewSharded("test", ctx, bad, nil); err == nil {
		t.Error("segment with mismatched context accepted")
	}
}

// TestShardedLocatePanics pins the out-of-range contract for point lookups.
func TestShardedLocatePanics(t *testing.T) {
	perClip, _, ctx, _ := shardedFixture(2)
	sh, err := NewSharded("test", ctx, SplitSegments(perClip, ctx, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, clip := range []int{-1, sh.Clips()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Tracks(%d) did not panic", clip)
				}
			}()
			sh.Tracks(clip)
		}()
	}
}
