package store

import (
	"fmt"
	"reflect"

	"otif/internal/geom"
	"otif/internal/query"
)

// sweep is the per-query execution state of one clip's frame sweep: lazy
// per-track interpolators (so each visible track's detections are walked
// once per sweep, not once per frame) plus pruning statistics. A sweep is
// created per query call, so concurrent queries never share state.
type sweep struct {
	ci      *clipIndex
	cat     string
	mask    []bool // spatial pre-prune; nil = no region constraint
	interps []query.Interp
	inited  []bool
	scratch []int32

	examined, kept, pruned int64
}

func newSweep(ci *clipIndex, cat string, mask []bool) *sweep {
	return &sweep{
		ci:      ci,
		cat:     cat,
		mask:    mask,
		interps: make([]query.Interp, len(ci.tracks)),
		inited:  make([]bool, len(ci.tracks)),
	}
}

// visible implements query.VisibleFunc over the temporal index: only
// tracks whose frame interval covers f are touched, in ascending track
// order so results are element-identical to the linear scan.
func (sw *sweep) visible(f int) ([]geom.Rect, []*query.Track) {
	cand, examined := sw.ci.active(f, sw.scratch[:0])
	sw.scratch = cand
	sw.examined += int64(examined)
	var boxes []geom.Rect
	var owners []*query.Track
	for _, ti := range cand {
		t := sw.ci.tracks[ti]
		if sw.cat != "" && t.Category != sw.cat {
			continue
		}
		if sw.mask != nil && !sw.mask[ti] {
			sw.pruned++
			continue
		}
		sw.kept++
		if !sw.inited[ti] {
			sw.interps[ti] = query.NewInterp(t)
			sw.inited[ti] = true
		}
		if b, ok := sw.interps[ti].BoxAt(f); ok {
			boxes = append(boxes, b)
			owners = append(owners, t)
		}
	}
	return boxes, owners
}

// flush publishes the sweep's pruning and box-visit statistics.
func (sw *sweep) flush() {
	var boxes int64
	for i := range sw.interps {
		boxes += sw.interps[i].Visited
	}
	metIndexBoxes.Add(boxes)
	metCandExamined.Add(sw.examined)
	metCandKept.Add(sw.kept)
	metGridPruned.Add(sw.pruned)
}

// catIndices returns the ascending track indices of one category (all
// tracks when cat is empty).
func (ci *clipIndex) catIndices(cat string) []int32 {
	if cat != "" {
		return ci.cats[cat]
	}
	all := make([]int32, len(ci.tracks))
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// ---- Indexed queries (one result element per clip, like TrackSet) ----

// CountTracks counts category tracks per clip from the postings lists.
func (s *Store) CountTracks(cat string) []int {
	metQueries.Inc()
	out := make([]int, len(s.clips))
	for i := range s.clips {
		if cat == "" {
			out[i] = len(s.clips[i].tracks)
		} else {
			out[i] = len(s.clips[i].cats[cat])
		}
	}
	s.selfCheck("CountTracks", out, func() any {
		chk := make([]int, len(s.clips))
		for i := range s.clips {
			chk[i] = query.CountTracks(s.clips[i].tracks, cat)
		}
		return chk
	})
	return out
}

// PathBreakdown classifies category tracks against the movements, walking
// only the category's postings list.
func (s *Store) PathBreakdown(cat string, movements []query.Movement, maxEndpointDist float64) []map[string]int {
	metQueries.Inc()
	out := make([]map[string]int, len(s.clips))
	for i := range s.clips {
		ci := &s.clips[i]
		m := make(map[string]int, len(movements))
		for _, mv := range movements {
			m[mv.Name] = 0
		}
		for _, ti := range ci.catIndices(cat) {
			if name := query.ClassifyPath(ci.tracks[ti].Path, movements, maxEndpointDist); name != "" {
				m[name]++
			}
		}
		out[i] = m
	}
	s.selfCheck("PathBreakdown", out, func() any {
		chk := make([]map[string]int, len(s.clips))
		for i := range s.clips {
			chk[i] = query.PathBreakdown(s.clips[i].tracks, cat, movements, maxEndpointDist)
		}
		return chk
	})
	return out
}

// VisibleBoxes returns the category boxes visible at one frame of one
// clip, pruned through the temporal index.
func (s *Store) VisibleBoxes(clip int, cat string, frameIdx int) ([]geom.Rect, []*query.Track) {
	metQueries.Inc()
	sw := newSweep(&s.clips[clip], cat, nil)
	boxes, owners := sw.visible(frameIdx)
	sw.flush()
	if s.SelfCheck {
		chk, _ := query.VisibleBoxes(s.clips[clip].tracks, cat, frameIdx)
		if !reflect.DeepEqual(boxes, chk) {
			metSelfCheckFail.Inc()
			panic(fmt.Sprintf("store: VisibleBoxes diverged from scan at clip %d frame %d: %v vs %v", clip, frameIdx, boxes, chk))
		}
	}
	return boxes, owners
}

// LimitQuery runs a frame-level limit query per clip through the indexes.
// RegionPredicate queries additionally pre-prune candidate tracks through
// the spatial grid; the predicate then sees only boxes that could satisfy
// it, which cannot change its matched set.
func (s *Store) LimitQuery(cat string, pred query.FramePredicate, limit, minSepFrames int) [][]query.FrameMatch {
	metQueries.Inc()
	out := make([][]query.FrameMatch, len(s.clips))
	for i := range s.clips {
		ci := &s.clips[i]
		var mask []bool
		if rp, ok := pred.(query.RegionPredicate); ok {
			mask = ci.regionCandidates(rp.Region)
		}
		sw := newSweep(ci, cat, mask)
		out[i] = query.LimitQueryFrom(sw.visible, pred, s.ctx, limit, minSepFrames)
		sw.flush()
	}
	s.selfCheck("LimitQuery", out, func() any {
		chk := make([][]query.FrameMatch, len(s.clips))
		for i := range s.clips {
			chk[i] = query.LimitQuery(s.clips[i].tracks, cat, pred, s.ctx, limit, minSepFrames)
		}
		return chk
	})
	return out
}

// AvgVisible averages the per-frame visible count per clip.
func (s *Store) AvgVisible(cat string) []float64 {
	metQueries.Inc()
	out := make([]float64, len(s.clips))
	for i := range s.clips {
		sw := newSweep(&s.clips[i], cat, nil)
		out[i] = query.AvgVisibleFrom(sw.visible, s.ctx)
		sw.flush()
	}
	s.selfCheck("AvgVisible", out, func() any {
		chk := make([]float64, len(s.clips))
		for i := range s.clips {
			chk[i] = query.AvgVisible(s.clips[i].tracks, cat, s.ctx)
		}
		return chk
	})
	return out
}

// BusyFrames returns, per clip, frames with at least nA catA objects and
// nB catB objects.
func (s *Store) BusyFrames(catA string, nA int, catB string, nB int) [][]int {
	metQueries.Inc()
	out := make([][]int, len(s.clips))
	for i := range s.clips {
		swA := newSweep(&s.clips[i], catA, nil)
		swB := newSweep(&s.clips[i], catB, nil)
		out[i] = query.BusyFramesFrom(swA.visible, nA, swB.visible, nB, s.ctx)
		swA.flush()
		swB.flush()
	}
	s.selfCheck("BusyFrames", out, func() any {
		chk := make([][]int, len(s.clips))
		for i := range s.clips {
			chk[i] = query.BusyFrames(s.clips[i].tracks, catA, nA, catB, nB, s.ctx)
		}
		return chk
	})
	return out
}

// CoOccurrences totals frame-wise close pairs per clip.
func (s *Store) CoOccurrences(cat string, dist float64) []int {
	metQueries.Inc()
	out := make([]int, len(s.clips))
	for i := range s.clips {
		sw := newSweep(&s.clips[i], cat, nil)
		out[i] = query.CoOccurrencesFrom(sw.visible, dist, s.ctx)
		sw.flush()
	}
	s.selfCheck("CoOccurrences", out, func() any {
		chk := make([]int, len(s.clips))
		for i := range s.clips {
			chk[i] = query.CoOccurrences(s.clips[i].tracks, cat, dist, s.ctx)
		}
		return chk
	})
	return out
}

// DwellTime returns, per clip, seconds each category track's interpolated
// center spends inside the region. The spatial grid prunes tracks whose
// bounding extent cannot reach the region; surviving tracks are walked
// once with an incremental interpolator instead of the scan's
// O(frames x detections) BoxAt loop.
func (s *Store) DwellTime(cat string, region geom.Polygon) []map[int]float64 {
	metQueries.Inc()
	out := make([]map[int]float64, len(s.clips))
	for i := range s.clips {
		ci := &s.clips[i]
		m := map[int]float64{}
		out[i] = m
		if s.ctx.FPS <= 0 {
			continue
		}
		mask := ci.regionCandidates(region)
		var boxes, pruned int64
		for _, ti := range ci.catIndices(cat) {
			if !mask[ti] {
				pruned++
				continue
			}
			t := ci.tracks[ti]
			ip := query.NewInterp(t)
			frames := 0
			for f := t.FirstFrame(); f >= 0 && f <= t.LastFrame(); f++ {
				if b, ok := ip.BoxAt(f); ok && region.Contains(b.Center()) {
					frames++
				}
			}
			boxes += ip.Visited
			if frames > 0 {
				m[t.ID] = float64(frames) / float64(s.ctx.FPS)
			}
		}
		metIndexBoxes.Add(boxes)
		metGridPruned.Add(pruned)
	}
	s.selfCheck("DwellTime", out, func() any {
		chk := make([]map[int]float64, len(s.clips))
		for i := range s.clips {
			chk[i] = query.DwellTime(s.clips[i].tracks, cat, region, s.ctx)
		}
		return chk
	})
	return out
}

// HardBraking returns, per clip, tracks exceeding the deceleration
// threshold. Track-level queries have no frame sweep to prune, so this
// delegates to the scan.
func (s *Store) HardBraking(decelThreshold float64) [][]*query.Track {
	metQueries.Inc()
	out := make([][]*query.Track, len(s.clips))
	for i := range s.clips {
		out[i] = query.HardBraking(s.clips[i].tracks, s.ctx, decelThreshold)
	}
	return out
}

// Speeding returns, per clip, tracks whose median speed exceeds the
// threshold (delegated to the scan; track-level).
func (s *Store) Speeding(threshold float64) [][]*query.Track {
	metQueries.Inc()
	out := make([][]*query.Track, len(s.clips))
	for i := range s.clips {
		out[i] = query.Speeding(s.clips[i].tracks, s.ctx, threshold)
	}
	return out
}

// selfCheck, in SelfCheck mode, compares an indexed result against the
// scan recomputation and panics on divergence — the differential fallback
// that verifies the indexes against the reference implementation.
func (s *Store) selfCheck(name string, got any, scan func() any) {
	if !s.SelfCheck {
		return
	}
	want := scan()
	if !reflect.DeepEqual(got, want) {
		metSelfCheckFail.Inc()
		panic(fmt.Sprintf("store: %s diverged from scan:\nindexed: %v\nscan:    %v", name, got, want))
	}
}
