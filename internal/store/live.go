package store

import (
	"sync"
	"sync/atomic"

	"otif/internal/query"
)

// Live is the mutable front of the indexed track store for streaming
// ingest: an append-only sequence of immutable Store snapshots. Each
// Append builds one clip's flat indexes (the same segment build New runs
// per clip) outside any lock, then publishes a new Store value that
// shares every previously built clipIndex — snapshot publication is one
// atomic pointer swap, so readers always see a fully consistent store:
// either the snapshot before a clip landed or the one after, never a
// torn index.
//
// Because a clipIndex is immutable after buildClipIndex returns and the
// clips slice is copied (never appended in place) on publish, an old
// snapshot held by an in-flight query remains valid and unchanged for as
// long as the caller keeps it. The incremental path is bit-identical to
// a full rebuild: appending clips one at a time yields exactly the
// indexes store.New would build over the same clip sequence (pinned by
// the differential test in live_test.go).
//
// Appends are serialized by a mutex; any number of concurrent readers
// proceed lock-free through Snapshot.
type Live struct {
	mu  sync.Mutex
	cur atomic.Pointer[Store]
}

// NewLive creates a live store with zero clips published, using the given
// clip geometry for every future segment.
func NewLive(ctx query.Context) *Live {
	l := &Live{}
	l.cur.Store(&Store{ctx: ctx})
	return l
}

// Snapshot returns the current published store. The returned Store is
// immutable and safe for concurrent queries; it never changes as further
// clips append.
func (l *Live) Snapshot() *Store { return l.cur.Load() }

// Clips returns the number of clips in the current snapshot.
func (l *Live) Clips() int { return len(l.cur.Load().clips) }

// Append indexes one extracted clip's tracks and atomically publishes a
// new snapshot containing it. tracks is retained (not copied) and must
// not be mutated afterwards, exactly like New's contract. It returns the
// clip's index in the new snapshot.
func (l *Live) Append(tracks []*query.Track) int {
	// The segment build is the expensive part; run it outside the lock so
	// concurrent appenders only serialize on the pointer swap.
	ctx := l.cur.Load().ctx
	seg := buildClipIndex(tracks, ctx)

	l.mu.Lock()
	defer l.mu.Unlock()
	old := l.cur.Load()
	clips := make([]clipIndex, len(old.clips)+1)
	copy(clips, old.clips)
	clips[len(old.clips)] = seg
	l.cur.Store(&Store{clips: clips, ctx: old.ctx, SelfCheck: old.SelfCheck})
	return len(clips) - 1
}
