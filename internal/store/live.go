package store

import (
	"sync"
	"sync/atomic"

	"otif/internal/query"
)

// DefaultSealClips is the open-segment size at which a Live store seals:
// once the tail segment reaches this many clips it becomes an immutable
// sealed segment (cacheable, exportable) and a fresh open segment starts.
const DefaultSealClips = 8

// Live is the mutable front of the indexed track store for streaming
// ingest, re-expressed over the segment model: an append-only sequence of
// sealed segments plus one open tail segment, published as immutable
// *Sharded snapshots. Each Append builds one clip's flat indexes (the same
// build New runs per clip) outside any lock, then publishes a new Sharded
// whose sealed segments are shared with the previous snapshot and whose
// open segment is a fresh copy-on-append Store — publication is one atomic
// pointer swap, so readers always see a fully consistent store: either the
// snapshot before a clip landed or the one after, never a torn index.
//
// When the open segment reaches sealEvery clips it is sealed in place: it
// keeps its id (assigned when it opened, stable "seg-%05d" numbering) and
// flips immutable, making it eligible for the shared result cache and for
// export over the segment wire format. Query answers are bit-identical to
// a monolithic store over the same clip sequence at every step (pinned by
// the differential tests), so ingest publication semantics are unchanged.
//
// Appends are serialized by a mutex; any number of concurrent readers
// proceed lock-free through Snapshot.
type Live struct {
	mu        sync.Mutex
	dataset   string
	ctx       query.Context
	sealEvery int
	cache     *Cache

	sealed    []*Segment  // immutable prefix, shared across snapshots
	openClips []clipIndex // open tail segment's clips, copied on append

	cur atomic.Pointer[Sharded]
}

// NewLive creates a live store with zero clips published, using the given
// clip geometry for every future clip, the default seal threshold, and a
// fresh result cache for sealed segments.
func NewLive(ctx query.Context) *Live {
	return NewLiveOptions("live", ctx, DefaultSealClips, NewCache())
}

// NewLiveOptions is NewLive with explicit dataset name, seal threshold
// (<= 0 means never seal: one open segment forever, the pre-segment
// behavior), and result cache (nil disables caching).
func NewLiveOptions(dataset string, ctx query.Context, sealEvery int, cache *Cache) *Live {
	l := &Live{dataset: dataset, ctx: ctx, sealEvery: sealEvery, cache: cache}
	l.cur.Store(l.assemble())
	return l
}

// assemble publishes the current sealed+open state as a Sharded. Caller
// holds l.mu (or is the constructor).
func (l *Live) assemble() *Sharded {
	start := 0
	for _, sg := range l.sealed {
		start += sg.Clips()
	}
	segs := l.sealed
	if len(l.openClips) > 0 {
		segs = make([]*Segment, len(l.sealed)+1)
		copy(segs, l.sealed)
		segs[len(l.sealed)] = &Segment{
			id:    SegmentID(len(l.sealed)),
			start: start,
			s:     &Store{clips: l.openClips, ctx: l.ctx},
		}
	}
	sh, err := NewSharded(l.dataset, l.ctx, segs, l.cache)
	if err != nil {
		panic("store: live segments not contiguous: " + err.Error())
	}
	return sh
}

// Snapshot returns the current published shard set. The returned Sharded
// is immutable and safe for concurrent queries; it never changes as
// further clips append. Live implements Provider.
func (l *Live) Snapshot() Querier { return l.cur.Load() }

// Shards returns the current snapshot with its concrete type, for callers
// that need manifest or segment access.
func (l *Live) Shards() *Sharded { return l.cur.Load() }

// Clips returns the number of clips in the current snapshot.
func (l *Live) Clips() int { return l.cur.Load().Clips() }

// Append indexes one extracted clip's tracks and atomically publishes a
// new snapshot containing it. tracks is retained (not copied) and must
// not be mutated afterwards, exactly like New's contract. It returns the
// clip's index in the new snapshot.
func (l *Live) Append(tracks []*query.Track) int {
	// The index build is the expensive part; run it outside the lock so
	// concurrent appenders only serialize on the seal check and swap.
	ci := buildClipIndex(tracks, l.ctx)

	l.mu.Lock()
	defer l.mu.Unlock()
	// Copy-on-append: old snapshots keep their open Store's clip slice.
	open := make([]clipIndex, len(l.openClips)+1)
	copy(open, l.openClips)
	open[len(l.openClips)] = ci

	if l.sealEvery > 0 && len(open) >= l.sealEvery {
		start := 0
		for _, sg := range l.sealed {
			start += sg.Clips()
		}
		seg := &Segment{
			id:     SegmentID(len(l.sealed)),
			start:  start,
			sealed: true,
			s:      &Store{clips: open, ctx: l.ctx},
		}
		sealed := make([]*Segment, len(l.sealed)+1)
		copy(sealed, l.sealed)
		sealed[len(l.sealed)] = seg
		l.sealed = sealed
		l.openClips = nil
	} else {
		l.openClips = open
	}
	sh := l.assemble()
	l.cur.Store(sh)
	return sh.Clips() - 1
}

var _ Provider = (*Live)(nil)
