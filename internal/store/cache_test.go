package store

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"otif/internal/parallel"
)

// TestCacheHammer fills one cache from many goroutines hammering a small
// key space; under -race this proves Get is safe for concurrent fill and
// read. Every call for a key must observe the same shared value, and the
// counters must account for every call exactly once: fills equals the key
// count (each key computed once — that is the singleflight guarantee), and
// hits + dedup cover all remaining calls.
func TestCacheHammer(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 200
		keys       = 6
	)
	c := NewCache()
	computed := make([]int, keys) // writes guarded by the singleflight: one fill per key
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < rounds; i++ {
				k := r.Intn(keys)
				seg, q := SegmentID(k/2), []string{"count|car", "avgvisible|bus", "dwell|"}[k%3]
				v := c.Get(seg, q, func() any {
					computed[k]++
					return []int{k, k * k}
				}).([]int)
				if want := []int{k, k * k}; !reflect.DeepEqual(v, want) {
					t.Errorf("Get(%s,%s) = %v, want %v", seg, q, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for k, n := range computed {
		if n != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", k, n)
		}
	}
	st := c.Stats()
	if st.Fills != keys {
		t.Errorf("fills = %d, want %d", st.Fills, keys)
	}
	if total := st.Fills + st.Hits + st.Dedup; total != goroutines*rounds {
		t.Errorf("fills+hits+dedup = %d, want %d (every Get accounted once)", total, goroutines*rounds)
	}
	if c.Len() != keys {
		t.Errorf("Len = %d, want %d", c.Len(), keys)
	}
}

// TestCacheDedupCounter deterministically drives the singleflight path
// using the parallel.Group wait hook: waiters blocked behind an in-flight
// fill must be counted as dedup, not as fills or hits.
func TestCacheDedupCounter(t *testing.T) {
	const waiters = 4
	c := NewCache()
	release := make(chan struct{})
	waiting := make(chan struct{}, waiters)
	parallel.SetWaitHookForTest(func() { waiting <- struct{}{} })
	defer parallel.SetWaitHookForTest(nil)

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Get("seg-00000", "count|car", func() any {
			close(started)
			<-release
			return []int{42}
		})
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := c.Get("seg-00000", "count|car", func() any { return nil }).([]int); v[0] != 42 {
				t.Errorf("waiter got %v, want [42]", v)
			}
		}()
	}
	for i := 0; i < waiters; i++ {
		<-waiting
	}
	close(release)
	wg.Wait()

	st := c.Stats()
	if st.Fills != 1 || st.Dedup != waiters || st.Hits != 0 {
		t.Errorf("stats = %+v, want fills=1 dedup=%d hits=0", st, waiters)
	}
	if v := c.Get("seg-00000", "count|car", func() any { return nil }).([]int); v[0] != 42 {
		t.Errorf("post-fill Get = %v, want [42]", v)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Errorf("hits after memoized Get = %d, want 1", st.Hits)
	}
}

// TestCacheNil pins that a nil cache degrades to direct execution.
func TestCacheNil(t *testing.T) {
	var c *Cache
	n := 0
	for i := 0; i < 3; i++ {
		if v := c.Get("s", "q", func() any { n++; return n }).(int); v != i+1 {
			t.Fatalf("nil cache memoized: got %d on call %d", v, i+1)
		}
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
}
