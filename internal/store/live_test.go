package store

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"otif/internal/query"
)

// flatClips gathers a Sharded's per-clip indexes in dataset clip order, so
// tests can compare the segmented layout element-for-element against a
// monolithic store.New build.
func flatClips(sh *Sharded) []clipIndex {
	out := make([]clipIndex, 0, sh.Clips())
	for _, sg := range sh.segs {
		out = append(out, sg.s.clips...)
	}
	return out
}

// TestLiveIncrementalMatchesFullRebuild is the incremental-publication
// acceptance test: appending clips one at a time to a Live store must
// yield indexes bit-identical to store.New over the same clip sequence —
// at every prefix, not just the final state. clipIndex holds only plain
// values and slices, so reflect.DeepEqual compares every index array
// element-for-element; the segment split changes only where clip indexes
// live, not their contents.
func TestLiveIncrementalMatchesFullRebuild(t *testing.T) {
	ctx := testCtx()
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		perClip := [][]*query.Track{
			genTracks(r, 5+r.Intn(40), ctx.Frames, ctx),
			nil, // empty clip mid-stream
			genTracks(r, r.Intn(12), ctx.Frames, ctx),
			genTracks(r, 30, ctx.Frames, ctx),
		}
		// sealEvery 2 exercises both a seal boundary and an open tail
		// within four appends.
		l := NewLiveOptions("live", ctx, 2, NewCache())
		for k, tracks := range perClip {
			if got := l.Append(tracks); got != k {
				t.Fatalf("seed %d: Append returned clip index %d, want %d", seed, got, k)
			}
			full := New(perClip[:k+1], ctx)
			snap := l.Shards()
			if !reflect.DeepEqual(flatClips(snap), full.clips) {
				t.Fatalf("seed %d: after %d appends, incremental indexes diverge from full rebuild", seed, k+1)
			}
			if snap.Context() != full.Context() {
				t.Fatalf("seed %d: context diverged: %+v vs %+v", seed, snap.Context(), full.Context())
			}
			if !reflect.DeepEqual(snap.CountTracks("car"), full.CountTracks("car")) {
				t.Fatalf("seed %d: scatter-gather counts diverge from full rebuild", seed)
			}
		}
	}
}

// TestLiveSealsSegments pins the sealing contract: the open segment seals
// at the threshold with a stable id, sealed segments are immutable and
// shared across snapshots, and the manifest tiles the clip range.
func TestLiveSealsSegments(t *testing.T) {
	ctx := testCtx()
	r := rand.New(rand.NewSource(3))
	l := NewLiveOptions("cam0", ctx, 2, NewCache())
	for i := 0; i < 5; i++ {
		l.Append(genTracks(r, 8, ctx.Frames, ctx))
	}
	sh := l.Shards()
	segs := sh.Segments()
	if len(segs) != 3 {
		t.Fatalf("after 5 appends at sealEvery=2: %d segments, want 3 (2 sealed + open)", len(segs))
	}
	for i, wantSealed := range []bool{true, true, false} {
		if segs[i].Sealed() != wantSealed {
			t.Errorf("segment %d sealed = %v, want %v", i, segs[i].Sealed(), wantSealed)
		}
		if want := SegmentID(i); segs[i].ID() != want {
			t.Errorf("segment %d id = %q, want %q", i, segs[i].ID(), want)
		}
	}
	m := sh.Manifest()
	if m.Dataset != "cam0" || m.Clips != 5 {
		t.Fatalf("manifest = %+v, want dataset cam0 with 5 clips", m)
	}
	next := 0
	for _, si := range m.Segments {
		if si.StartClip != next {
			t.Fatalf("manifest segment %q starts at %d, want %d", si.ID, si.StartClip, next)
		}
		next += si.Clips
	}
	// Sealed segments are shared by identity across snapshots.
	l.Append(genTracks(r, 4, ctx.Frames, ctx))
	for i := 0; i < 2; i++ {
		if l.Shards().Segments()[i] != segs[i] {
			t.Errorf("sealed segment %d was rebuilt on append; want shared", i)
		}
	}
}

// TestLiveSnapshotImmutable pins the atomic-publication contract: a
// snapshot taken before an append is untouched by it, and query results
// computed from the old snapshot stay valid.
func TestLiveSnapshotImmutable(t *testing.T) {
	ctx := testCtx()
	r := rand.New(rand.NewSource(11))
	first := genTracks(r, 25, ctx.Frames, ctx)
	second := genTracks(r, 15, ctx.Frames, ctx)

	l := NewLive(ctx)
	l.Append(first)
	old := l.Snapshot()
	wantCounts := old.CountTracks("car")
	wantLimit := old.LimitQuery("car", query.CountPredicate{N: 1}, 5, 3)

	l.Append(second)

	if got := old.Clips(); got != 1 {
		t.Fatalf("old snapshot grew to %d clips after append", got)
	}
	if got := old.CountTracks("car"); !reflect.DeepEqual(got, wantCounts) {
		t.Fatalf("old snapshot counts changed: %v vs %v", got, wantCounts)
	}
	if got := old.LimitQuery("car", query.CountPredicate{N: 1}, 5, 3); !reflect.DeepEqual(got, wantLimit) {
		t.Fatalf("old snapshot limit query changed")
	}
	if got := l.Snapshot().Clips(); got != 2 {
		t.Fatalf("new snapshot has %d clips, want 2", got)
	}
}

// TestLiveConcurrentReaders appends clips while reader goroutines query
// every snapshot they can grab; under -race this asserts publication is
// safe, and each reader checks its snapshot is internally consistent (the
// per-clip counts match a full rebuild over that snapshot's tracks). The
// 12 appends cross the default seal threshold, so readers race against
// sealing as well as appending.
func TestLiveConcurrentReaders(t *testing.T) {
	ctx := testCtx()
	r := rand.New(rand.NewSource(7))
	const nClips = 12
	clips := make([][]*query.Track, nClips)
	for i := range clips {
		clips[i] = genTracks(r, 10+r.Intn(20), ctx.Frames, ctx)
	}
	// wantByLen[k] is the expected per-clip car counts of the k-clip
	// snapshot: a reader seeing k clips must see exactly these values.
	wantByLen := make([][]int, nClips+1)
	wantByLen[0] = []int{}
	for k := 1; k <= nClips; k++ {
		wantByLen[k] = New(clips[:k], ctx).CountTracks("car")
	}

	l := NewLive(ctx)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot()
				got := snap.CountTracks("car")
				want := wantByLen[snap.Clips()]
				if len(got) != len(want) {
					t.Errorf("snapshot with %d clips returned %d counts", snap.Clips(), len(got))
					return
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("torn snapshot: clip %d count %d, want %d", i, got[i], want[i])
						return
					}
				}
				snap.LimitQuery("car", query.CountPredicate{N: 1}, 3, 5)
			}
		}()
	}
	for _, tracks := range clips {
		l.Append(tracks)
	}
	close(stop)
	wg.Wait()

	if !reflect.DeepEqual(l.Snapshot().CountTracks("car"), wantByLen[nClips]) {
		t.Fatal("final snapshot diverges from full rebuild")
	}
}
