package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"otif/internal/geom"
	"otif/internal/query"
)

// Querier is the read-side query surface shared by a single *Store and a
// segmented *Sharded: one result element per clip for every dataset-wide
// query, exactly the shape TrackSet's scan queries produce. Everything
// above the store (the public TrackSet facade, serve.QueryAPI, the otifd
// daemon) speaks Querier, so callers cannot tell a monolithic index from a
// scatter-gather over segments — the differential tests pin the answers
// bit-identical.
type Querier interface {
	Context() query.Context
	Clips() int
	Tracks(clip int) []*query.Track

	CountTracks(cat string) []int
	PathBreakdown(cat string, movements []query.Movement, maxEndpointDist float64) []map[string]int
	VisibleBoxes(clip int, cat string, frameIdx int) ([]geom.Rect, []*query.Track)
	LimitQuery(cat string, pred query.FramePredicate, limit, minSepFrames int) [][]query.FrameMatch
	AvgVisible(cat string) []float64
	BusyFrames(catA string, nA int, catB string, nB int) [][]int
	CoOccurrences(cat string, dist float64) []int
	DwellTime(cat string, region geom.Polygon) []map[int]float64
	HardBraking(decelThreshold float64) [][]*query.Track
	Speeding(threshold float64) [][]*query.Track
}

// Provider yields a consistent point-in-time Querier. Static stores return
// themselves; Live returns its current published shard set; the Registry
// resolves named datasets to their providers. Snapshot must be cheap and
// safe for concurrent use — servers call it once per request.
type Provider interface {
	Snapshot() Querier
}

// Snapshot makes a static *Store its own Provider: the store is immutable,
// so it is its own point-in-time view.
func (s *Store) Snapshot() Querier { return s }

// ProviderFunc adapts a function to the Provider interface, for callers
// (like the daemon's hot-swap chain) whose current store is computed.
type ProviderFunc func() Querier

func (f ProviderFunc) Snapshot() Querier { return f() }

// ErrUnknownDataset is returned by Registry.Resolve for a name that has no
// registered provider.
var ErrUnknownDataset = errors.New("store: unknown dataset")

// Registry maps dataset names to Providers — the manifest registry a
// multi-dataset server resolves the ?dataset= selector against. The empty
// name resolves to the default dataset, so single-dataset deployments need
// no selector at all.
type Registry struct {
	mu  sync.RWMutex
	m   map[string]Provider
	def string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Provider)} }

// Register adds or replaces the provider for a dataset name. The first
// registered dataset becomes the default unless SetDefault overrides it.
func (r *Registry) Register(name string, p Provider) {
	if name == "" {
		panic("store: Register with empty dataset name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]Provider)
	}
	if len(r.m) == 0 {
		r.def = name
	}
	r.m[name] = p
}

// SetDefault names the dataset the empty selector resolves to.
func (r *Registry) SetDefault(name string) {
	r.mu.Lock()
	r.def = name
	r.mu.Unlock()
}

// Resolve returns a point-in-time Querier for the named dataset ("" means
// the default). A registered dataset whose provider currently has no store
// (e.g. a daemon before its first load) resolves to a nil Querier with a
// nil error; callers treat that as "not ready".
func (r *Registry) Resolve(name string) (Querier, error) {
	r.mu.RLock()
	if name == "" {
		name = r.def
	}
	p := r.m[name]
	r.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	return p.Snapshot(), nil
}

// Names lists the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Default returns the default dataset name ("" when nothing is registered).
func (r *Registry) Default() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.def
}

// Registry is itself a Provider: its snapshot is the default dataset's.
func (r *Registry) Snapshot() Querier {
	q, err := r.Resolve("")
	if err != nil {
		return nil
	}
	return q
}

var (
	_ Querier  = (*Store)(nil)
	_ Provider = (*Store)(nil)
	_ Provider = ProviderFunc(nil)
	_ Provider = (*Registry)(nil)
)
