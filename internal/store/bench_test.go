package store

import (
	"math/rand"
	"testing"

	"otif/internal/query"
)

// benchWorkload is a paper-scale clip: many short tracks spread over a
// long clip, where interval pruning pays off most.
func benchWorkload() ([][]*query.Track, query.Context) {
	ctx := query.Context{FPS: 10, NomW: 1280, NomH: 720, Frames: 1800}
	r := rand.New(rand.NewSource(42))
	perClip := make([][]*query.Track, 4)
	for c := range perClip {
		perClip[c] = genTracks(r, 500, ctx.Frames, ctx)
	}
	return perClip, ctx
}

// BenchmarkLimitQueryIndexed measures the limit query through the interval
// index; compare with BenchmarkLimitQueryScan for the pruning payoff.
func BenchmarkLimitQueryIndexed(b *testing.B) {
	perClip, ctx := benchWorkload()
	s := New(perClip, ctx)
	s.LimitQuery("car", query.CountPredicate{N: 3}, 5, ctx.FPS) // build cost out of the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LimitQuery("car", query.CountPredicate{N: 3}, 5, ctx.FPS)
	}
}

// BenchmarkLimitQueryScan is the same query as the linear scan over every
// track at every frame (the pre-index implementation).
func BenchmarkLimitQueryScan(b *testing.B) {
	perClip, ctx := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tracks := range perClip {
			query.LimitQuery(tracks, "car", query.CountPredicate{N: 3}, ctx, 5, ctx.FPS)
		}
	}
}

// BenchmarkDwellIndexed measures region dwell through the grid-pruned
// incremental interpolator.
func BenchmarkDwellIndexed(b *testing.B) {
	perClip, ctx := benchWorkload()
	s := New(perClip, ctx)
	region := randRegion(rand.New(rand.NewSource(1)), ctx)
	s.DwellTime("car", region)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.DwellTime("car", region)
	}
}

// BenchmarkDwellScan is the same dwell query as the frame-by-frame BoxAt
// scan.
func BenchmarkDwellScan(b *testing.B) {
	perClip, ctx := benchWorkload()
	region := randRegion(rand.New(rand.NewSource(1)), ctx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tracks := range perClip {
			query.DwellTime(tracks, "car", region, ctx)
		}
	}
}

// BenchmarkIndexBuild measures the one-time cost the index amortizes.
func BenchmarkIndexBuild(b *testing.B) {
	perClip, ctx := benchWorkload()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(perClip, ctx)
	}
}
