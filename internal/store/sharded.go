package store

import (
	"fmt"
	"sort"

	"otif/internal/geom"
	"otif/internal/parallel"
	"otif/internal/query"
)

// Sharded answers every Store query over an ordered list of segments by
// scatter-gather: fan the query out across segments (in parallel), then
// merge deterministically. Because every dataset-wide query returns one
// result element per clip and segments tile the clip range contiguously,
// the merge is concatenation in segment order — which makes every answer
// bit-identical to the same query over one monolithic Store, a property
// the differential tests pin for K ∈ {1,2,3,7} splits.
//
// Sealed segments route through the shared result cache (keyed by segment
// id + canonical query string); the open tail segment of a Live store is
// always recomputed. A Sharded is immutable after construction and safe
// for concurrent queries.
type Sharded struct {
	dataset string
	ctx     query.Context
	segs    []*Segment
	starts  []int // starts[i] == segs[i].start, ascending
	nclips  int
	cache   *Cache
}

// NewSharded assembles segments into one queryable dataset. Segments must
// tile [0, clips) contiguously in order and share the dataset's clip
// geometry. cache may be nil to disable result caching.
func NewSharded(dataset string, ctx query.Context, segs []*Segment, cache *Cache) (*Sharded, error) {
	sh := &Sharded{dataset: dataset, ctx: ctx, segs: segs, starts: make([]int, len(segs)), cache: cache}
	next := 0
	for i, sg := range segs {
		if sg.start != next {
			return nil, fmt.Errorf("store: segment %q starts at clip %d, want %d (segments must tile the clip range)", sg.id, sg.start, next)
		}
		if sg.s.ctx != ctx {
			return nil, fmt.Errorf("store: segment %q context %+v differs from dataset context %+v", sg.id, sg.s.ctx, ctx)
		}
		sh.starts[i] = sg.start
		next += sg.Clips()
	}
	sh.nclips = next
	return sh, nil
}

// Dataset returns the dataset name the shard set serves.
func (sh *Sharded) Dataset() string { return sh.dataset }

// Segments returns the ordered segment list (shared, read-only).
func (sh *Sharded) Segments() []*Segment { return sh.segs }

// Cache returns the result cache (nil when caching is disabled).
func (sh *Sharded) Cache() *Cache { return sh.cache }

// Manifest describes the shard set: dataset identity plus one row per
// segment.
func (sh *Sharded) Manifest() Manifest {
	m := Manifest{Dataset: sh.dataset, Context: sh.ctx, Clips: sh.nclips, Segments: make([]SegmentInfo, len(sh.segs))}
	for i, sg := range sh.segs {
		tracks := 0
		for c := 0; c < sg.s.Clips(); c++ {
			tracks += len(sg.s.Tracks(c))
		}
		m.Segments[i] = SegmentInfo{ID: sg.id, StartClip: sg.start, Clips: sg.Clips(), Tracks: tracks, Sealed: sg.sealed}
	}
	return m
}

// Snapshot makes an immutable Sharded its own Provider.
func (sh *Sharded) Snapshot() Querier { return sh }

// Context returns the dataset clip geometry.
func (sh *Sharded) Context() query.Context { return sh.ctx }

// Clips returns the total clip count across segments.
func (sh *Sharded) Clips() int { return sh.nclips }

// locate maps a dataset clip index to (segment, clip offset within it).
func (sh *Sharded) locate(clip int) (*Segment, int) {
	i := sort.SearchInts(sh.starts, clip+1) - 1
	if i < 0 || clip >= sh.starts[i]+sh.segs[i].Clips() {
		panic(fmt.Sprintf("store: clip %d out of range [0,%d)", clip, sh.nclips))
	}
	return sh.segs[i], clip - sh.starts[i]
}

// Tracks returns one clip's track slice (shared, read-only), routed to its
// segment.
func (sh *Sharded) Tracks(clip int) []*query.Track {
	sg, off := sh.locate(clip)
	return sg.s.Tracks(off)
}

// VisibleBoxes routes the single-clip query to the owning segment. Point
// lookups are not cached: the cache holds whole-segment answers.
func (sh *Sharded) VisibleBoxes(clip int, cat string, frameIdx int) ([]geom.Rect, []*query.Track) {
	sg, off := sh.locate(clip)
	return sg.s.VisibleBoxes(off, cat, frameIdx)
}

// scatter fans run across the segments in parallel and concatenates the
// per-segment results in segment order — the deterministic merge. Sealed
// segments answer through the result cache under key; cached values are
// shared read-only slices.
func scatter[E any](sh *Sharded, key string, run func(*Store) []E) []E {
	parts := make([][]E, len(sh.segs))
	parallel.For(len(sh.segs), func(i int) {
		sg := sh.segs[i]
		if sg.sealed && sh.cache != nil {
			parts[i] = sh.cache.Get(sg.id, key, func() any { return run(sg.s) }).([]E)
		} else {
			parts[i] = run(sg.s)
		}
	})
	out := make([]E, 0, sh.nclips)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Canonical query keys: method name plus every parameter, rendered with
// %v (shortest float form — deterministic for identical values). Segment
// ids are stable across processes, so replicas serving the same shipped
// segments share key space.

func (sh *Sharded) CountTracks(cat string) []int {
	return scatter(sh, "count|"+cat, func(s *Store) []int { return s.CountTracks(cat) })
}

func (sh *Sharded) PathBreakdown(cat string, movements []query.Movement, maxEndpointDist float64) []map[string]int {
	key := fmt.Sprintf("breakdown|%s|%v|%v", cat, maxEndpointDist, movements)
	return scatter(sh, key, func(s *Store) []map[string]int { return s.PathBreakdown(cat, movements, maxEndpointDist) })
}

func (sh *Sharded) LimitQuery(cat string, pred query.FramePredicate, limit, minSepFrames int) [][]query.FrameMatch {
	// Limit semantics are per clip (each clip's sweep stops at limit), so
	// per-segment execution matches the single store exactly.
	key := fmt.Sprintf("limit|%s|%T%+v|%d|%d", cat, pred, pred, limit, minSepFrames)
	return scatter(sh, key, func(s *Store) [][]query.FrameMatch { return s.LimitQuery(cat, pred, limit, minSepFrames) })
}

func (sh *Sharded) AvgVisible(cat string) []float64 {
	return scatter(sh, "avgvisible|"+cat, func(s *Store) []float64 { return s.AvgVisible(cat) })
}

func (sh *Sharded) BusyFrames(catA string, nA int, catB string, nB int) [][]int {
	key := fmt.Sprintf("busy|%s|%d|%s|%d", catA, nA, catB, nB)
	return scatter(sh, key, func(s *Store) [][]int { return s.BusyFrames(catA, nA, catB, nB) })
}

func (sh *Sharded) CoOccurrences(cat string, dist float64) []int {
	key := fmt.Sprintf("cooccur|%s|%v", cat, dist)
	return scatter(sh, key, func(s *Store) []int { return s.CoOccurrences(cat, dist) })
}

func (sh *Sharded) DwellTime(cat string, region geom.Polygon) []map[int]float64 {
	key := fmt.Sprintf("dwell|%s|%v", cat, region)
	return scatter(sh, key, func(s *Store) []map[int]float64 { return s.DwellTime(cat, region) })
}

func (sh *Sharded) HardBraking(decelThreshold float64) [][]*query.Track {
	key := fmt.Sprintf("braking|%v", decelThreshold)
	return scatter(sh, key, func(s *Store) [][]*query.Track { return s.HardBraking(decelThreshold) })
}

func (sh *Sharded) Speeding(threshold float64) [][]*query.Track {
	key := fmt.Sprintf("speeding|%v", threshold)
	return scatter(sh, key, func(s *Store) [][]*query.Track { return s.Speeding(threshold) })
}

var (
	_ Querier  = (*Sharded)(nil)
	_ Provider = (*Sharded)(nil)
)
