package store

import (
	"fmt"

	"otif/internal/query"
)

// Segment is an immutable Store over a contiguous clip range of a dataset.
// Segments are the unit of scatter-gather (each query fans out across
// them), of result caching (a sealed segment's answers never change), and
// of shipping (the OTIFSEG1 wire format moves one segment between
// replicas).
type Segment struct {
	id     string
	start  int // dataset clip index of the segment's first clip
	sealed bool
	s      *Store
}

// NewSegment indexes one clip range as a sealed segment. id must be stable
// across processes for the same content — it keys the result cache and
// names the exported file.
func NewSegment(id string, startClip int, perClip [][]*query.Track, ctx query.Context) *Segment {
	return &Segment{id: id, start: startClip, sealed: true, s: New(perClip, ctx)}
}

// ID returns the segment's stable identifier.
func (sg *Segment) ID() string { return sg.id }

// StartClip returns the dataset clip index of the segment's first clip.
func (sg *Segment) StartClip() int { return sg.start }

// Clips returns the number of clips in the segment.
func (sg *Segment) Clips() int { return sg.s.Clips() }

// Sealed reports whether the segment is immutable. Only sealed segments
// participate in result caching; a Live store's open tail segment is
// re-built on every append and answers queries directly.
func (sg *Segment) Sealed() bool { return sg.sealed }

// Store exposes the segment's underlying index (shared, read-only).
func (sg *Segment) Store() *Store { return sg.s }

// SegmentID formats the conventional stable segment identifier for the
// n-th sealed segment of a dataset.
func SegmentID(n int) string { return fmt.Sprintf("seg-%05d", n) }

// SegmentInfo is one manifest row: the identity and extent of a segment.
type SegmentInfo struct {
	ID        string `json:"id"`
	StartClip int    `json:"start_clip"`
	Clips     int    `json:"clips"`
	Tracks    int    `json:"tracks"`
	Sealed    bool   `json:"sealed"`
}

// Manifest describes a sharded dataset: its name, clip geometry, and the
// ordered segment list that tiles [0, Clips). It is the registry's unit of
// dataset metadata and what a replica serves from a directory of shipped
// segments.
type Manifest struct {
	Dataset  string        `json:"dataset"`
	Context  query.Context `json:"context"`
	Clips    int           `json:"clips"`
	Segments []SegmentInfo `json:"segments"`
}

// SplitSegments cuts a dataset's clips into sealed segments of at most
// clipsPerSeg clips each (the last may be shorter), with conventional ids.
// clipsPerSeg <= 0 yields a single segment. An empty dataset yields no
// segments.
func SplitSegments(perClip [][]*query.Track, ctx query.Context, clipsPerSeg int) []*Segment {
	if len(perClip) == 0 {
		return nil
	}
	if clipsPerSeg <= 0 {
		clipsPerSeg = len(perClip)
	}
	var segs []*Segment
	for start := 0; start < len(perClip); start += clipsPerSeg {
		end := start + clipsPerSeg
		if end > len(perClip) {
			end = len(perClip)
		}
		segs = append(segs, NewSegment(SegmentID(len(segs)), start, perClip[start:end], ctx))
	}
	return segs
}
