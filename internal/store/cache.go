package store

import (
	"sync/atomic"

	"otif/internal/obs"
	"otif/internal/parallel"
)

// Per-segment result cache observability. hits counts answers served from
// memory, fills counts executions that computed and stored a result, dedup
// counts callers that piggybacked on a concurrent fill (the singleflight
// path).
var (
	metCacheHits  = obs.Default.Counter("store.cache.hits")
	metCacheFills = obs.Default.Counter("store.cache.fills")
	metCacheDedup = obs.Default.Counter("store.cache.dedup")
)

// cacheKey identifies one memoized result: a sealed segment's id plus the
// canonical string form of the query (method name and every parameter).
// Segment ids are stable across processes, so two replicas computing the
// same query over the same shipped segment key identically.
type cacheKey struct {
	segment string
	query   string
}

// CacheStats is a point-in-time snapshot of one cache's counters, for
// deterministic test assertions (the obs counters are process-global and
// shared across caches).
type CacheStats struct {
	Hits, Fills, Dedup int64
}

// Cache memoizes per-segment query results with request coalescing: the
// first caller for a (segment, query) pair computes, concurrent callers
// for the same pair wait and share, later callers hit memory. Results are
// shared read-only slices — callers must not mutate what a cached query
// returns. Only sealed segments are cached (an open segment's content
// changes on every append); Sharded enforces that at the call site.
//
// The zero value is ready to use. A nil *Cache disables caching: Get then
// just runs fn.
type Cache struct {
	g parallel.Group[cacheKey, any]

	hits, fills, dedup atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Get returns the memoized result for (segment, query), running fn to fill
// it on first use. Errors are not part of the contract — query execution
// over an in-memory segment cannot fail — so fn returns only a value.
func (c *Cache) Get(segment, query string, fn func() any) any {
	if c == nil {
		return fn()
	}
	v, _, outcome := c.g.Do(cacheKey{segment, query}, func() (any, error) {
		return fn(), nil
	})
	switch outcome {
	case parallel.DidRun:
		c.fills.Add(1)
		metCacheFills.Inc()
	case parallel.Waited:
		c.dedup.Add(1)
		metCacheDedup.Inc()
	case parallel.Cached:
		c.hits.Add(1)
		metCacheHits.Inc()
	}
	return v
}

// Stats snapshots the cache's own counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Fills: c.fills.Load(), Dedup: c.dedup.Load()}
}

// Len reports how many (segment, query) results are memoized or in flight.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return c.g.Len()
}
