package store

import (
	"errors"
	"reflect"
	"testing"
)

// TestRegistry pins the dataset registry contract: the first registration
// becomes the default, the empty name resolves to the default, unknown
// names fail with ErrUnknownDataset, and Names is sorted.
func TestRegistry(t *testing.T) {
	perClip, mono, ctx, _ := shardedFixture(9)
	reg := NewRegistry()

	if _, err := reg.Resolve(""); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("empty registry Resolve err = %v, want ErrUnknownDataset", err)
	}

	reg.Register("zebra", mono)
	sh, err := NewSharded("alpha", ctx, SplitSegments(perClip, ctx, 3), nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.Register("alpha", sh)

	if reg.Default() != "zebra" {
		t.Errorf("default = %q, want zebra (first registered)", reg.Default())
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"alpha", "zebra"}) {
		t.Errorf("Names = %v, want sorted [alpha zebra]", got)
	}

	def, err := reg.Resolve("")
	if err != nil {
		t.Fatal(err)
	}
	if def.(*Store) != mono {
		t.Error("empty name did not resolve to the default dataset")
	}
	named, err := reg.Resolve("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if named.(*Sharded) != sh {
		t.Error("named resolve returned the wrong dataset")
	}
	if _, err := reg.Resolve("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown name err = %v, want ErrUnknownDataset", err)
	}

	reg.SetDefault("alpha")
	if def, err := reg.Resolve(""); err != nil || def.(*Sharded) != sh {
		t.Errorf("after SetDefault: Resolve(\"\") = %v, %v", def, err)
	}
}

// TestProviderFunc pins that a ProviderFunc snapshot is taken per call, so
// a not-yet-loaded dataset can become ready without re-registration.
func TestProviderFunc(t *testing.T) {
	_, mono, _, _ := shardedFixture(10)
	var ready bool
	reg := NewRegistry()
	reg.Register("live", ProviderFunc(func() Querier {
		if !ready {
			return nil
		}
		return mono
	}))
	if s, err := reg.Resolve(""); err != nil || s != nil {
		t.Fatalf("unready provider resolved to %v, %v; want nil, nil", s, err)
	}
	ready = true
	if s, err := reg.Resolve(""); err != nil || s.(*Store) != mono {
		t.Fatalf("ready provider resolved to %v, %v", s, err)
	}
}

// TestLiveIsProvider pins that a Live store registers directly: its
// snapshots flow through the registry as they grow.
func TestLiveIsProvider(t *testing.T) {
	perClip, _, ctx, _ := shardedFixture(11)
	l := NewLive(ctx)
	reg := NewRegistry()
	reg.Register("cam0", l)
	for i, tracks := range perClip {
		l.Append(tracks)
		s, err := reg.Resolve("cam0")
		if err != nil {
			t.Fatal(err)
		}
		if s.Clips() != i+1 {
			t.Fatalf("after %d appends registry serves %d clips", i+1, s.Clips())
		}
	}
}
