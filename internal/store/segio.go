package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"otif/internal/persist"
	"otif/internal/query"
)

// SegmentExt is the file extension for shipped segment files.
const SegmentExt = ".otifseg"

// ExportSegments writes a dataset's clips as sealed segment files of at
// most clipsPerSeg clips each (<= 0 means one segment) into dir, named
// "<id>.otifseg" with conventional ids. It returns the written paths in
// segment order. The encoding is deterministic, so two replicas exporting
// the same track set produce identical files.
func ExportSegments(dir, dataset string, ctx query.Context, perClip [][]*query.Track, clipsPerSeg int) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if clipsPerSeg <= 0 {
		clipsPerSeg = len(perClip)
	}
	var paths []string
	for start, n := 0, 0; start < len(perClip); start, n = start+clipsPerSeg, n+1 {
		end := start + clipsPerSeg
		if end > len(perClip) {
			end = len(perClip)
		}
		meta := persist.SegmentMeta{
			Dataset:   dataset,
			ID:        SegmentID(n),
			StartClip: start,
			FPS:       ctx.FPS,
			NomW:      ctx.NomW,
			NomH:      ctx.NomH,
			Frames:    ctx.Frames,
		}
		path := filepath.Join(dir, meta.ID+SegmentExt)
		if err := writeSegmentFile(path, meta, perClip[start:end]); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func writeSegmentFile(path string, meta persist.SegmentMeta, perClip [][]*query.Track) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := persist.WriteSegment(f, meta, perClip); err != nil {
		f.Close()
		return fmt.Errorf("write segment %s: %w", path, err)
	}
	return f.Close()
}

// OpenSegmentsDir loads every "*.otifseg" file in dir and assembles them
// into one Sharded per dataset, validating that each dataset's segments
// tile its clip range contiguously and agree on clip geometry. cache is
// shared across the returned shard sets (nil disables result caching).
// This is what a replica serves from a directory of shipped segments.
func OpenSegmentsDir(dir string, cache *Cache) (map[string]*Sharded, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+SegmentExt))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	type loaded struct {
		meta    persist.SegmentMeta
		perClip [][]*query.Track
	}
	byDataset := map[string][]loaded{}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		meta, perClip, err := persist.ReadSegment(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("read segment %s: %w", path, err)
		}
		byDataset[meta.Dataset] = append(byDataset[meta.Dataset], loaded{meta, perClip})
	}
	out := make(map[string]*Sharded, len(byDataset))
	for dataset, ls := range byDataset {
		sort.Slice(ls, func(a, b int) bool { return ls[a].meta.StartClip < ls[b].meta.StartClip })
		ctx := query.Context{
			FPS:    ls[0].meta.FPS,
			NomW:   ls[0].meta.NomW,
			NomH:   ls[0].meta.NomH,
			Frames: ls[0].meta.Frames,
		}
		segs := make([]*Segment, len(ls))
		for i, l := range ls {
			if got := (query.Context{FPS: l.meta.FPS, NomW: l.meta.NomW, NomH: l.meta.NomH, Frames: l.meta.Frames}); got != ctx {
				return nil, fmt.Errorf("segment %q of dataset %q has context %+v, want %+v", l.meta.ID, dataset, got, ctx)
			}
			segs[i] = NewSegment(l.meta.ID, l.meta.StartClip, l.perClip, ctx)
		}
		sh, err := NewSharded(dataset, ctx, segs, cache)
		if err != nil {
			return nil, fmt.Errorf("dataset %q: %w", dataset, err)
		}
		out[dataset] = sh
	}
	return out, nil
}
