package store

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/obs"
	"otif/internal/query"
)

// scanBoxes and indexBoxes read the two boxes-visited counters (the
// registry hands back the same handle the instrumented packages hold).
func scanBoxes() int64  { return obs.Default.Counter("query.scan_boxes").Value() }
func indexBoxes() int64 { return metIndexBoxes.Value() }

// genTracks builds a randomized clip of tracks: mixed categories, varying
// density/duration, plus degenerate cases (empty track, single detection,
// duplicate frame indices) that the index must handle exactly like the
// scan.
func genTracks(r *rand.Rand, n, frames int, ctx query.Context) []*query.Track {
	cats := []string{"car", "bus", "truck", "car", "car"}
	tracks := make([]*query.Track, 0, n)
	for i := 0; i < n; i++ {
		t := &query.Track{ID: i, Category: cats[r.Intn(len(cats))]}
		switch r.Intn(10) {
		case 0: // empty track
		case 1: // single detection
			t.Dets = []detect.Detection{randDet(r, r.Intn(frames), ctx)}
		default:
			start := r.Intn(frames)
			end := start + 1 + r.Intn(frames-start)
			step := 1 + r.Intn(8)
			for f := start; f <= end && f < frames; f += step {
				t.Dets = append(t.Dets, randDet(r, f, ctx))
				if r.Intn(20) == 0 { // duplicate frame index
					t.Dets = append(t.Dets, randDet(r, f, ctx))
				}
			}
		}
		for _, d := range t.Dets {
			t.Path = append(t.Path, d.Box.Center())
		}
		tracks = append(tracks, t)
	}
	return tracks
}

func randDet(r *rand.Rand, frame int, ctx query.Context) detect.Detection {
	w := 10 + r.Float64()*60
	h := 10 + r.Float64()*60
	return detect.Detection{
		FrameIdx: frame,
		Box: geom.Rect{
			X: r.Float64() * (float64(ctx.NomW) - w),
			Y: r.Float64() * (float64(ctx.NomH) - h),
			W: w, H: h,
		},
		Score:    r.Float64(),
		Category: "car",
	}
}

func testCtx() query.Context {
	return query.Context{FPS: 10, NomW: 640, NomH: 360, Frames: 150}
}

func randRegion(r *rand.Rand, ctx query.Context) geom.Polygon {
	x := r.Float64() * float64(ctx.NomW) * 0.8
	y := r.Float64() * float64(ctx.NomH) * 0.8
	w := 20 + r.Float64()*float64(ctx.NomW)*0.4
	h := 20 + r.Float64()*float64(ctx.NomH)*0.4
	return geom.Polygon{{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h}}
}

// TestDifferentialQueries asserts, across randomized track sets, that
// every index-backed query returns element-for-element identical results
// to the linear-scan implementation. SelfCheck doubles the coverage: the
// store re-runs the scan internally and panics on divergence.
func TestDifferentialQueries(t *testing.T) {
	ctx := testCtx()
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		perClip := [][]*query.Track{
			genTracks(r, 5+r.Intn(40), ctx.Frames, ctx),
			genTracks(r, r.Intn(10), ctx.Frames, ctx), // small clip
			nil, // empty clip
		}
		s := New(perClip, ctx)
		s.SelfCheck = true

		for _, cat := range []string{"", "car", "bus", "nosuch"} {
			got := s.CountTracks(cat)
			for i, tracks := range perClip {
				if want := query.CountTracks(tracks, cat); got[i] != want {
					t.Fatalf("seed %d: CountTracks(%q) clip %d = %d, want %d", seed, cat, i, got[i], want)
				}
			}
			s.AvgVisible(cat)
			s.CoOccurrences(cat, 40+r.Float64()*100)

			for _, pred := range []query.FramePredicate{
				query.CountPredicate{N: 1 + r.Intn(4)},
				query.RegionPredicate{Region: randRegion(r, ctx), N: 1 + r.Intn(3)},
				query.HotSpotPredicate{Radius: 30 + r.Float64()*80, N: 2},
			} {
				s.LimitQuery(cat, pred, 1+r.Intn(5), r.Intn(20))
			}
			s.DwellTime(cat, randRegion(r, ctx))
		}
		s.BusyFrames("car", 1+r.Intn(3), "bus", 1+r.Intn(2))

		movements := []query.Movement{
			{Name: "a", Path: geom.Path{{X: 0, Y: 0}, {X: 640, Y: 360}}},
			{Name: "b", Path: geom.Path{{X: 640, Y: 0}, {X: 0, Y: 360}}},
		}
		s.PathBreakdown("car", movements, 200)

		for f := 0; f < ctx.Frames; f += 7 {
			boxes, owners := s.VisibleBoxes(0, "car", f)
			wantB, wantO := query.VisibleBoxes(perClip[0], "car", f)
			if !reflect.DeepEqual(boxes, wantB) || !reflect.DeepEqual(owners, wantO) {
				t.Fatalf("seed %d: VisibleBoxes(0, car, %d) diverged", seed, f)
			}
		}
	}
}

// TestActiveMatchesBruteForce checks the sorted-endpoints stabbing against
// a brute-force interval test at every frame.
func TestActiveMatchesBruteForce(t *testing.T) {
	ctx := testCtx()
	r := rand.New(rand.NewSource(42))
	tracks := genTracks(r, 60, ctx.Frames, ctx)
	s := New([][]*query.Track{tracks}, ctx)
	ci := &s.clips[0]
	for f := -1; f <= ctx.Frames; f++ {
		got, _ := ci.active(f, nil)
		var want []int32
		for i, tr := range tracks {
			if len(tr.Dets) > 0 && tr.FirstFrame() <= f && f <= tr.LastFrame() {
				want = append(want, int32(i))
			}
		}
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("active(%d) = %v, want %v", f, got, want)
		}
	}
}

// TestConcurrentQueries runs many queries against one store from parallel
// goroutines; under -race this asserts the store is read-safe.
func TestConcurrentQueries(t *testing.T) {
	ctx := testCtx()
	r := rand.New(rand.NewSource(3))
	perClip := [][]*query.Track{genTracks(r, 50, ctx.Frames, ctx), genTracks(r, 30, ctx.Frames, ctx)}
	s := New(perClip, ctx)
	region := randRegion(r, ctx)

	want := s.LimitQuery("car", query.CountPredicate{N: 2}, 5, 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := s.LimitQuery("car", query.CountPredicate{N: 2}, 5, 10)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d: LimitQuery diverged across concurrent calls", g)
					return
				}
				s.DwellTime("car", region)
				s.CountTracks("bus")
				s.AvgVisible("")
				s.BusyFrames("car", 2, "bus", 1)
			}
		}(g)
	}
	wg.Wait()
}

// TestIndexPruning asserts the acceptance criterion: on a dense workload
// the indexed LimitQuery and DwellTime visit at least 5x fewer detection
// elements than the scans, as reported by the obs counters.
func TestIndexPruning(t *testing.T) {
	ctx := query.Context{FPS: 10, NomW: 640, NomH: 360, Frames: 600}
	r := rand.New(rand.NewSource(9))
	// Many short tracks: the scan pays O(tracks x dets) per frame, the
	// index touches only the handful visible per frame.
	var tracks []*query.Track
	for i := 0; i < 300; i++ {
		start := r.Intn(ctx.Frames - 20)
		tr := &query.Track{ID: i, Category: "car"}
		for f := start; f < start+20 && f < ctx.Frames; f += 2 {
			tr.Dets = append(tr.Dets, randDet(r, f, ctx))
		}
		tracks = append(tracks, tr)
	}
	perClip := [][]*query.Track{tracks}
	s := New(perClip, ctx)
	region := geom.Polygon{{X: 100, Y: 100}, {X: 220, Y: 100}, {X: 220, Y: 220}, {X: 100, Y: 220}}

	scan0 := scanBoxes()
	query.LimitQuery(tracks, "car", query.CountPredicate{N: 3}, ctx, 5, 10)
	query.DwellTime(tracks, "car", region, ctx)
	scanCost := scanBoxes() - scan0

	idx0 := indexBoxes()
	s.LimitQuery("car", query.CountPredicate{N: 3}, 5, 10)
	s.DwellTime("car", region)
	idxCost := indexBoxes() - idx0

	if idxCost == 0 {
		t.Fatal("indexed queries recorded no box visits; counter wiring broken")
	}
	if scanCost < 5*idxCost {
		t.Errorf("index visited %d boxes vs scan %d; want >= 5x pruning", idxCost, scanCost)
	}
	t.Logf("boxes visited: scan=%d indexed=%d (%.1fx)", scanCost, idxCost, float64(scanCost)/float64(idxCost))
}
