// Package store is OTIF's indexed track store: the query-side counterpart
// of the pre-processing pipeline. A Store wraps one loaded track set with
// three read-only indexes built once per clip —
//
//   - a temporal interval index in a flat sorted-endpoints layout (track
//     first/last frames sorted twice, by start and by end, as parallel
//     int32 arrays) that answers "which tracks are visible at frame f" by
//     enumerating the smaller of the start-prefix and the end-suffix
//     instead of touching every track;
//
//   - a coarse spatial grid over each track's bounding extent (the union
//     of its detection boxes, which contains every interpolated box) in
//     CSR layout, so region queries prune tracks that can never place a
//     box center inside the region;
//
//   - per-category postings lists, so category-filtered queries never
//     visit tracks of other categories.
//
// Query execution shares the scan implementations' cores (the query
// package's *From variants and InterpBox arithmetic), so every indexed
// result is bit-identical to the corresponding linear scan — the
// differential tests in this package assert element-for-element equality,
// and SelfCheck mode re-runs the scan on every query at runtime.
//
// The index arrays hold track indices, not pointers, and are immutable
// after New returns; a Store is safe for concurrent queries.
package store

import (
	"sort"

	"otif/internal/geom"
	"otif/internal/obs"
	"otif/internal/query"
)

// Observability handles. index_boxes counts detection elements examined by
// indexed queries (the same unit the scans record under query.scan_boxes);
// candidates_examined / candidates_kept give the temporal index's pruning
// hit ratio.
var (
	metQueries       = obs.Default.Counter("store.queries")
	metIndexBoxes    = obs.Default.Counter("store.index_boxes")
	metCandExamined  = obs.Default.Counter("store.candidates_examined")
	metCandKept      = obs.Default.Counter("store.candidates_kept")
	metGridPruned    = obs.Default.Counter("store.grid_pruned")
	metSelfCheckFail = obs.Default.Counter("store.selfcheck_mismatches")
)

func init() {
	obs.Default.GaugeFunc("store.index_hit_ratio", func() float64 {
		ex := metCandExamined.Value()
		if ex == 0 {
			return 0
		}
		return float64(metCandKept.Value()) / float64(ex)
	})
}

// gridCells is the spatial grid resolution per axis. Coarse on purpose:
// the grid only has to separate far-apart regions, and 64 cells keep the
// CSR postings small and build time linear.
const gridCells = 8

// Store indexes one track set for millisecond query execution.
type Store struct {
	clips []clipIndex
	ctx   query.Context

	// SelfCheck, when set before querying, re-runs the linear-scan
	// implementation alongside every indexed query and panics on any
	// divergence. It is the differential fallback used by tests and
	// debugging; production servers leave it off.
	SelfCheck bool
}

// clipIndex holds one clip's flat indexes. All arrays are indexed by track
// position in the clip's slice (the "track index").
type clipIndex struct {
	tracks []*query.Track

	// Temporal interval index: starts/ends per track, plus the two
	// sorted-endpoint views. byStart[i] is the track index with the i-th
	// smallest first frame; sortedStarts[i] is that first frame (and
	// likewise for ends). Empty tracks carry start = end = -1 and are
	// never enumerated as visible.
	starts, ends []int32
	byStart      []int32
	sortedStarts []int32
	byEnd        []int32
	sortedEnds   []int32

	// Per-category postings, track indices ascending.
	cats map[string][]int32

	// Spatial grid in CSR layout over the nominal frame: cellOff has
	// gridCells*gridCells+1 entries; cellPost[cellOff[c]:cellOff[c+1]]
	// lists the tracks whose bounding extent intersects cell c.
	cellW, cellH float64
	cellOff      []int32
	cellPost     []int32

	// bounds is each track's bounding extent (union of detection boxes).
	bounds []geom.Rect
}

// New builds the indexes over a loaded track set. perClip is retained (not
// copied); tracks must not be mutated afterwards.
func New(perClip [][]*query.Track, ctx query.Context) *Store {
	s := &Store{clips: make([]clipIndex, len(perClip)), ctx: ctx}
	for c, tracks := range perClip {
		s.clips[c] = buildClipIndex(tracks, ctx)
	}
	return s
}

// Context returns the clip geometry the store was built with.
func (s *Store) Context() query.Context { return s.ctx }

// Clips returns the number of indexed clips.
func (s *Store) Clips() int { return len(s.clips) }

// Tracks returns one clip's track slice (shared, read-only).
func (s *Store) Tracks(clip int) []*query.Track { return s.clips[clip].tracks }

func buildClipIndex(tracks []*query.Track, ctx query.Context) clipIndex {
	n := len(tracks)
	ci := clipIndex{
		tracks:  tracks,
		starts:  make([]int32, n),
		ends:    make([]int32, n),
		byStart: make([]int32, n),
		byEnd:   make([]int32, n),
		cats:    make(map[string][]int32),
		bounds:  make([]geom.Rect, n),
	}
	for i, t := range tracks {
		if len(t.Dets) == 0 {
			// Inverted interval: never enumerated as visible.
			ci.starts[i], ci.ends[i] = 0, -1
		} else {
			ci.starts[i] = int32(t.FirstFrame())
			ci.ends[i] = int32(t.LastFrame())
		}
		ci.byStart[i] = int32(i)
		ci.byEnd[i] = int32(i)
		ci.cats[t.Category] = append(ci.cats[t.Category], int32(i))
		var b geom.Rect
		for _, d := range t.Dets {
			b = b.Union(d.Box)
		}
		ci.bounds[i] = b
	}
	sort.Slice(ci.byStart, func(a, b int) bool {
		sa, sb := ci.starts[ci.byStart[a]], ci.starts[ci.byStart[b]]
		if sa != sb {
			return sa < sb
		}
		return ci.byStart[a] < ci.byStart[b]
	})
	sort.Slice(ci.byEnd, func(a, b int) bool {
		ea, eb := ci.ends[ci.byEnd[a]], ci.ends[ci.byEnd[b]]
		if ea != eb {
			return ea < eb
		}
		return ci.byEnd[a] < ci.byEnd[b]
	})
	ci.sortedStarts = make([]int32, n)
	ci.sortedEnds = make([]int32, n)
	for i := range ci.byStart {
		ci.sortedStarts[i] = ci.starts[ci.byStart[i]]
		ci.sortedEnds[i] = ci.ends[ci.byEnd[i]]
	}
	ci.buildGrid(ctx)
	return ci
}

// buildGrid fills the CSR spatial grid from the track bounding extents.
func (ci *clipIndex) buildGrid(ctx query.Context) {
	w, h := float64(ctx.NomW), float64(ctx.NomH)
	if w <= 0 || h <= 0 {
		// No geometry (e.g. a v1 file loaded without options): degenerate
		// single-cell grid, spatial pruning disabled.
		w, h = 1, 1
	}
	ci.cellW = w / gridCells
	ci.cellH = h / gridCells
	nc := gridCells * gridCells
	counts := make([]int32, nc)
	for i := range ci.tracks {
		if ci.bounds[i].Empty() && len(ci.tracks[i].Dets) == 0 {
			continue
		}
		x0, y0, x1, y1 := ci.cellRange(ci.bounds[i])
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				counts[cy*gridCells+cx]++
			}
		}
	}
	ci.cellOff = make([]int32, nc+1)
	for c := 0; c < nc; c++ {
		ci.cellOff[c+1] = ci.cellOff[c] + counts[c]
	}
	ci.cellPost = make([]int32, ci.cellOff[nc])
	fill := make([]int32, nc)
	for i := range ci.tracks {
		if ci.bounds[i].Empty() && len(ci.tracks[i].Dets) == 0 {
			continue
		}
		x0, y0, x1, y1 := ci.cellRange(ci.bounds[i])
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				c := cy*gridCells + cx
				ci.cellPost[ci.cellOff[c]+fill[c]] = int32(i)
				fill[c]++
			}
		}
	}
}

// cellRange maps a rectangle to the inclusive grid cell range it touches,
// clamped to the grid.
func (ci *clipIndex) cellRange(r geom.Rect) (x0, y0, x1, y1 int) {
	x0 = clampCell(int(r.X / ci.cellW))
	y0 = clampCell(int(r.Y / ci.cellH))
	x1 = clampCell(int(r.MaxX() / ci.cellW))
	y1 = clampCell(int(r.MaxY() / ci.cellH))
	return
}

func clampCell(c int) int {
	if c < 0 {
		return 0
	}
	if c >= gridCells {
		return gridCells - 1
	}
	return c
}

// searchInt32 returns the smallest i in [0, len(a)) with a[i] >= v, or
// len(a) — the lower bound over a sorted int32 slice.
func searchInt32(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// active appends to out the indices of tracks visible at frame f (start <=
// f <= end), ascending, enumerating whichever sorted-endpoint side is
// smaller. It reports how many candidates it examined.
func (ci *clipIndex) active(f int, out []int32) (result []int32, examined int) {
	n := len(ci.tracks)
	if n == 0 {
		return out, 0
	}
	f32 := int32(f)
	// Tracks with start <= f form a prefix of byStart; tracks with
	// end >= f form a suffix of byEnd.
	nStartLE := searchInt32(ci.sortedStarts, f32+1)
	nEndGE := n - searchInt32(ci.sortedEnds, f32)
	if nStartLE <= nEndGE {
		for _, ti := range ci.byStart[:nStartLE] {
			if ci.ends[ti] >= f32 {
				out = append(out, ti)
			}
		}
		examined = nStartLE
	} else {
		for _, ti := range ci.byEnd[n-nEndGE:] {
			if ci.starts[ti] <= f32 {
				out = append(out, ti)
			}
		}
		examined = nEndGE
	}
	sortInt32(out)
	return out, examined
}

// sortInt32 sorts a small int32 slice ascending (insertion sort: candidate
// sets are small and often nearly sorted already).
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// regionCandidates returns a per-track membership mask of tracks whose
// bounding extent intersects the region's bounding rectangle, using the
// spatial grid. Tracks outside the mask can never place an interpolated
// box center inside the region (every interpolated box lies within the
// union of the track's detection boxes).
func (ci *clipIndex) regionCandidates(region geom.Polygon) []bool {
	mask := make([]bool, len(ci.tracks))
	rb := region.Bounds()
	x0, y0, x1, y1 := ci.cellRange(rb)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			c := cy*gridCells + cx
			for _, ti := range ci.cellPost[ci.cellOff[c]:ci.cellOff[c+1]] {
				if !mask[ti] && overlapsClosed(ci.bounds[ti], rb) {
					mask[ti] = true
				}
			}
		}
	}
	return mask
}

// overlapsClosed reports closed-interval rectangle overlap. Unlike
// Rect.Intersects it admits zero-area contact (touching edges, degenerate
// boxes), which the pruning mask needs to stay strictly conservative.
func overlapsClosed(a, b geom.Rect) bool {
	return a.X <= b.MaxX() && b.X <= a.MaxX() && a.Y <= b.MaxY() && b.Y <= a.MaxY()
}
