package store

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"otif/internal/query"
)

// TestExportOpenRoundtrip exports a dataset as segment files, opens the
// directory as a replica would, and asserts the reassembled Sharded
// answers queries bit-identically to the monolithic store it came from.
func TestExportOpenRoundtrip(t *testing.T) {
	perClip, mono, ctx, r := shardedFixture(5)
	dir := t.TempDir()

	paths, err := ExportSegments(dir, "caldot1", ctx, perClip, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 { // 7 clips at 3 per segment
		t.Fatalf("exported %d files, want 3: %v", len(paths), paths)
	}
	for i, p := range paths {
		if want := filepath.Join(dir, SegmentID(i)+SegmentExt); p != want {
			t.Errorf("path %d = %q, want %q", i, p, want)
		}
	}

	byDataset, err := OpenSegmentsDir(dir, NewCache())
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := byDataset["caldot1"]
	if !ok {
		t.Fatalf("OpenSegmentsDir datasets = %v, want caldot1", byDataset)
	}
	if sh.Clips() != mono.Clips() || sh.Context() != mono.Context() {
		t.Fatalf("replica geometry %d/%+v, want %d/%+v", sh.Clips(), sh.Context(), mono.Clips(), mono.Context())
	}
	region := randRegion(r, ctx)
	for round := 0; round < 2; round++ { // second round answers from cache
		for _, cat := range []string{"", "car", "nosuch"} {
			if got, want := sh.CountTracks(cat), mono.CountTracks(cat); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: replica CountTracks(%q) = %v, want %v", round, cat, got, want)
			}
			if got, want := sh.AvgVisible(cat), mono.AvgVisible(cat); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: replica AvgVisible(%q) diverged", round, cat)
			}
			if got, want := sh.DwellTime(cat, region), mono.DwellTime(cat, region); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: replica DwellTime(%q) diverged", round, cat)
			}
		}
		if got, want := sh.LimitQuery("car", query.CountPredicate{N: 2}, 3, 5), mono.LimitQuery("car", query.CountPredicate{N: 2}, 3, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: replica LimitQuery diverged", round)
		}
	}
}

// TestExportDeterministic pins that exporting the same track set twice
// produces byte-identical files — the property that lets replicas verify
// shipped segments and share result-cache key space.
func TestExportDeterministic(t *testing.T) {
	perClip, _, ctx, _ := shardedFixture(6)
	dirA, dirB := t.TempDir(), t.TempDir()
	pathsA, err := ExportSegments(dirA, "cam0", ctx, perClip, 2)
	if err != nil {
		t.Fatal(err)
	}
	pathsB, err := ExportSegments(dirB, "cam0", ctx, perClip, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pathsA) != len(pathsB) {
		t.Fatalf("exports differ in file count: %d vs %d", len(pathsA), len(pathsB))
	}
	for i := range pathsA {
		a, err := os.ReadFile(pathsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pathsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("segment %d differs between identical exports", i)
		}
	}
}

// TestOpenSegmentsDirMultiDataset serves two datasets from one directory,
// each reassembled independently.
func TestOpenSegmentsDirMultiDataset(t *testing.T) {
	perClipA, monoA, ctx, _ := shardedFixture(7)
	perClipB := perClipA[:4]
	monoB := New(perClipB, ctx)
	dir := t.TempDir()
	if _, err := ExportSegments(dir, "cam0", ctx, perClipA, 3); err != nil {
		t.Fatal(err)
	}
	// cam1's files would collide with cam0's conventional names, so export
	// to a subdirectory and move them up under distinct names.
	sub := filepath.Join(dir, "b")
	paths, err := ExportSegments(sub, "cam1", ctx, perClipB, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range paths {
		if err := os.Rename(p, filepath.Join(dir, "cam1-"+SegmentID(i)+SegmentExt)); err != nil {
			t.Fatal(err)
		}
	}

	byDataset, err := OpenSegmentsDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(byDataset) != 2 {
		t.Fatalf("datasets = %d, want 2", len(byDataset))
	}
	if got := byDataset["cam0"].CountTracks("car"); !reflect.DeepEqual(got, monoA.CountTracks("car")) {
		t.Error("cam0 counts diverged")
	}
	if got := byDataset["cam1"].CountTracks("car"); !reflect.DeepEqual(got, monoB.CountTracks("car")) {
		t.Error("cam1 counts diverged")
	}
}

// TestOpenSegmentsDirRejectsGaps asserts a directory whose segments do not
// tile the clip range is rejected rather than served with silent holes.
func TestOpenSegmentsDirRejectsGaps(t *testing.T) {
	perClip, _, ctx, _ := shardedFixture(8)
	dir := t.TempDir()
	paths, err := ExportSegments(dir, "cam0", ctx, perClip, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(paths[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentsDir(dir, nil); err == nil {
		t.Error("directory with a missing middle segment accepted")
	}
}

// TestOpenSegmentsDirEmpty returns no datasets for an empty directory.
func TestOpenSegmentsDirEmpty(t *testing.T) {
	byDataset, err := OpenSegmentsDir(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(byDataset) != 0 {
		t.Errorf("empty dir produced datasets %v", byDataset)
	}
}
