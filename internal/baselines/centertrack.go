package baselines

import (
	"fmt"
	"math/rand"

	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/track"
)

// CenterTrack is our stand-in for the CenterTrack multi-object tracker
// (Zhou et al., ECCV 2020): a high-accuracy tracker designed for native
// framerate and resolution. We obtain a speed-accuracy tradeoff by tuning
// resolution and framerate, as the paper does — but, faithfully to the
// original design, the matching model is trained only on consecutive
// frames (no gap augmentation), so accuracy falls off quickly once the
// framerate is reduced, which is why CenterTrack performs poorly on the
// speed-accuracy tradeoff (§4.1).
type CenterTrack struct {
	// Scales and Gaps define the tuning sweep.
	Scales []float64
	Gaps   []int

	model *track.PairModel
}

// NewCenterTrack returns the CenterTrack baseline.
func NewCenterTrack() *CenterTrack {
	return &CenterTrack{
		Scales: []float64{1.0, 0.7, 0.49},
		Gaps:   []int{1, 2, 4},
	}
}

// Name implements TrackMethod.
func (c *CenterTrack) Name() string { return "CenterTrack" }

// Tune implements TrackMethod. The native-rate matching model is trained
// on S* without gap augmentation (Gaps = {1}).
func (c *CenterTrack) Tune(sys *core.System, metric core.Metric) []Candidate {
	if c.model == nil {
		rng := rand.New(rand.NewSource(99))
		c.model = track.NewPairModel(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH, sys.DS.Cfg.FPS, rng)
		clips := make([]track.TrainClip, len(sys.SStar))
		for i, tr := range sys.SStar {
			clips[i] = track.TrainClip{Tracks: tr}
		}
		opts := track.DefaultTrainOptions()
		opts.Gaps = []int{1} // native-rate training only
		track.TrainPair(c.model, clips, opts, sys.Acct)
	}

	var out []Candidate
	for _, scale := range c.Scales {
		for _, gap := range c.Gaps {
			cfg := core.Config{
				Arch:     sys.Best.Arch,
				DetScale: scale,
				DetConf:  core.DetConfDefault,
				Gap:      gap,
				Tracker:  core.TrackerPair,
			}
			run := c.runner(sys, cfg)
			res := run(sys.DS.Val)
			out = append(out, Candidate{
				Label:       fmt.Sprintf("ctrack@%.2f-g%d", scale, gap),
				Run:         run,
				ValAccuracy: metric.Accuracy(res.PerClip, sys.DS.Val),
				ValRuntime:  res.Runtime,
			})
		}
	}
	return out
}

// runner swaps the system's gap-augmented pair model for the native-rate
// one around each execution so the pipeline machinery can be reused while
// the matching behaviour is CenterTrack's.
func (c *CenterTrack) runner(sys *core.System, cfg core.Config) func([]*dataset.ClipTruth) *core.SetResult {
	return func(clips []*dataset.ClipTruth) *core.SetResult {
		saved := sys.Pair
		sys.Pair = c.model
		defer func() { sys.Pair = saved }()
		return sys.RunSet(cfg, clips)
	}
}
