package baselines

import (
	"math"

	"otif/internal/dataset"
	"otif/internal/geom"
	"otif/internal/proxy"
	"otif/internal/query"
)

// FrameQuery is one frame-level limit query of §4.2: find up to Limit
// frames (at least MinSepSec apart) satisfying a predicate over the
// objects of a category.
type FrameQuery struct {
	Name     string
	Category string
	Pred     query.FramePredicate
	Limit    int
	// MinSepSec is the required separation between output frames
	// (5 seconds in the paper).
	MinSepSec float64
}

// FrameLevelResult reports a method's performance on one frame query.
type FrameLevelResult struct {
	// PreprocessTime is the one-time, query-agnostic cost (simulated s).
	PreprocessTime float64
	// QueryTime is the per-query cost (simulated seconds).
	QueryTime float64
	// Accuracy is the fraction of returned frames that truly satisfy the
	// predicate under ground truth.
	Accuracy float64
	// Returned is the number of frames produced.
	Returned int
	// DetectorApps counts query-time detector applications.
	DetectorApps int
}

// TotalTime returns pre-processing plus nQueries query executions,
// assuming the pre-processing is shared (BlazeIt's proxy is query-specific,
// so its pre-processing also repeats; callers handle that).
func (r FrameLevelResult) TotalTime(nQueries int) float64 {
	return r.PreprocessTime + float64(nQueries)*r.QueryTime
}

// truthBoxes returns the ground-truth boxes of the category in one frame.
func truthBoxes(ct *dataset.ClipTruth, cat string, frameIdx int) []geom.Rect {
	var out []geom.Rect
	for _, gt := range ct.Truth(frameIdx) {
		if cat == "" || string(gt.Cat) == cat {
			out = append(out, gt.Box)
		}
	}
	return out
}

// TruthSatisfies reports whether frame frameIdx of the clip satisfies the
// query predicate under ground truth.
func TruthSatisfies(ct *dataset.ClipTruth, q FrameQuery, frameIdx int) bool {
	_, ok := q.Pred.Eval(truthBoxes(ct, q.Category, frameIdx))
	return ok
}

// QueryScore turns a frame's per-cell proxy scores into a query-specific
// relevance score, the role of BlazeIt's query-specific proxy model:
// count queries sum the confident cells, region queries sum only cells
// inside the region, and hot spot queries take the densest local window
// of cell scores.
func QueryScore(q FrameQuery, cellScores []float64, nomW, nomH int) float64 {
	grid := proxy.NewGrid(nomW, nomH)
	switch pred := q.Pred.(type) {
	case query.RegionPredicate:
		var sum float64
		for cy := 0; cy < grid.H; cy++ {
			for cx := 0; cx < grid.W; cx++ {
				if s := cellScores[cy*grid.W+cx]; s > 0.5 && pred.Region.Contains(proxy.CellRect(cx, cy).Center()) {
					sum += s
				}
			}
		}
		return sum
	case query.HotSpotPredicate:
		// Densest window of roughly the hot spot diameter, in cells.
		span := int(math.Ceil(2 * pred.Radius / proxy.CellSize))
		if span < 1 {
			span = 1
		}
		best := 0.0
		for cy := 0; cy+span <= grid.H; cy++ {
			for cx := 0; cx+span <= grid.W; cx++ {
				var sum float64
				for dy := 0; dy < span; dy++ {
					for dx := 0; dx < span; dx++ {
						if s := cellScores[(cy+dy)*grid.W+cx+dx]; s > 0.5 {
							sum += s
						}
					}
				}
				if sum > best {
					best = sum
				}
			}
		}
		return best
	default:
		var sum float64
		for _, s := range cellScores {
			if s > 0.5 {
				sum += s
			}
		}
		return sum
	}
}

// frameRef addresses one frame within a clip set.
type frameRef struct {
	clip  int
	frame int
}

// measureAccuracy scores returned frames against ground truth.
func measureAccuracy(clips []*dataset.ClipTruth, q FrameQuery, outputs []frameRef) float64 {
	if len(outputs) == 0 {
		return 0
	}
	ok := 0
	for _, o := range outputs {
		if TruthSatisfies(clips[o.clip], q, o.frame) {
			ok++
		}
	}
	return float64(ok) / float64(len(outputs))
}

// selectSeparated walks candidate frames in order and keeps up to limit of
// them subject to the per-clip minimum separation.
func selectSeparated(cands []frameRef, limit, minSepFrames int) []frameRef {
	var out []frameRef
	for _, c := range cands {
		if len(out) >= limit {
			break
		}
		okSep := true
		for _, o := range out {
			if o.clip == c.clip && absInt(o.frame-c.frame) < minSepFrames {
				okSep = false
				break
			}
		}
		if okSep {
			out = append(out, c)
		}
	}
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
