package baselines

import (
	"fmt"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/query"
	"otif/internal/track"
	"otif/internal/video"
)

// CaTDet is our implementation of the Cascaded Tracked Detector (Mao et
// al., SysML 2019): a cheap proposal detector plus the tracker's predicted
// object positions select regions of interest, and the expensive refinement
// detector runs only inside those regions. Like the original, it processes
// every frame (no framerate or resolution optimization), which limits how
// fast it can get (§4.1).
type CaTDet struct {
	// ProposalScales are the cheap-detector resolution candidates.
	ProposalScales []float64
}

// NewCaTDet returns the CaTDet baseline.
func NewCaTDet() *CaTDet { return &CaTDet{ProposalScales: []float64{0.5, 0.41, 0.34}} }

// Name implements TrackMethod.
func (c *CaTDet) Name() string { return "CaTDet" }

// Tune implements TrackMethod: candidates sweep the proposal detector's
// resolution.
func (c *CaTDet) Tune(sys *core.System, metric core.Metric) []Candidate {
	var out []Candidate
	for _, scale := range c.ProposalScales {
		scale := scale
		run := func(clips []*dataset.ClipTruth) *core.SetResult {
			return c.runSet(sys, scale, clips)
		}
		res := run(sys.DS.Val)
		out = append(out, Candidate{
			Label:       fmt.Sprintf("catdet@%.2f", scale),
			Run:         run,
			ValAccuracy: metric.Accuracy(res.PerClip, sys.DS.Val),
			ValRuntime:  res.Runtime,
		})
	}
	return out
}

func (c *CaTDet) runSet(sys *core.System, proposalScale float64, clips []*dataset.ClipTruth) *core.SetResult {
	acct := costmodel.NewAccountant()
	out := &core.SetResult{PerClip: make([][]*query.Track, len(clips))}
	nomW, nomH := sys.DS.Cfg.NomW, sys.DS.Cfg.NomH
	propW := int(float64(nomW) * proposalScale)
	propH := int(float64(nomH) * proposalScale)
	for i, ct := range clips {
		proposal := &detect.Detector{
			Cfg:        detect.Config{Arch: detect.ArchYOLO, Width: propW, Height: propH, ConfThresh: 0.1},
			Background: sys.Background,
			Classify:   sys.Classifier,
			Acct:       acct,
		}
		refW, refH := sys.Best.DetRes(nomW, nomH)
		refiner := &detect.Detector{
			Cfg:        detect.Config{Arch: sys.Best.Arch, Width: refW, Height: refH, ConfThresh: sys.Best.DetConf},
			Background: sys.Background,
			Classify:   sys.Classifier,
			Acct:       acct,
		}
		tracker := track.NewSORT()
		var lastDets []detect.Detection
		reader := video.NewReader(ct.Clip, 1, nomW, nomH, acct)
		for {
			frame, idx := reader.Next()
			if frame == nil {
				break
			}
			// Regions of interest: cheap proposals plus last frame's
			// tracked objects, dilated.
			props := proposal.Detect(frame, idx)
			var rois []geom.Rect
			for _, p := range props {
				rois = append(rois, dilate(p.Box, 1.6).Clip(frame.Bounds()))
			}
			for _, d := range lastDets {
				rois = append(rois, dilate(d.Box, 1.8).Clip(frame.Bounds()))
			}
			rois = mergeROIs(rois)
			dets := refiner.DetectWindows(frame, idx, rois)
			lastDets = dets
			tracker.Update(&track.FrameContext{FrameIdx: idx, GapFrames: 1}, dets)
		}
		tracks := track.PruneShort(tracker.Finish(), 2)
		qt := make([]*query.Track, len(tracks))
		for k, t := range tracks {
			qt[k] = &query.Track{ID: t.ID, Category: t.Category, Dets: t.Dets, Path: t.Path()}
		}
		out.PerClip[i] = qt
	}
	out.Runtime = acct.Total()
	out.Breakdown = acct.Breakdown()
	return out
}

func dilate(r geom.Rect, f float64) geom.Rect {
	cx, cy := r.Center().X, r.Center().Y
	w, h := r.W*f, r.H*f
	return geom.Rect{X: cx - w/2, Y: cy - h/2, W: w, H: h}
}

// mergeROIs unions overlapping regions so the refinement detector is not
// charged twice for the same pixels.
func mergeROIs(rois []geom.Rect) []geom.Rect {
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(rois) && !merged; i++ {
			for j := i + 1; j < len(rois); j++ {
				if rois[i].Intersects(rois[j]) {
					rois[i] = rois[i].Union(rois[j])
					rois = append(rois[:j], rois[j+1:]...)
					merged = true
					break
				}
			}
		}
	}
	return rois
}
