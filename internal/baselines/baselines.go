// Package baselines implements the seven systems OTIF is evaluated against
// in §4 of the paper: the video query optimizers Miris, BlazeIt and TASTI,
// and the detection/tracking baselines NoScope, Chameleon, CaTDet and
// CenterTrack. Every baseline is built from scratch on the same substrate
// (detectors, trackers, proxy models, cost model) so comparisons measure
// algorithmic differences, not implementation quality — mirroring §4.6,
// where the authors re-implement Miris/BlazeIt/NoScope for the same reason.
package baselines

import (
	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/tuner"
)

// Candidate is one tuned parameter configuration of a baseline method,
// with its validation performance and an executor for fresh clip sets.
type Candidate struct {
	Label string
	// Run executes the candidate over a clip set (typically the test set).
	Run func(clips []*dataset.ClipTruth) *core.SetResult
	// ValAccuracy and ValRuntime are measured on the validation set.
	ValAccuracy float64
	ValRuntime  float64
	// QueryFraction is the fraction of execution cost that must be repeated
	// for each additional query (1 for fully query-driven methods like
	// Miris, 0 for query-agnostic pre-processors).
	QueryFraction float64
}

// TrackMethod is a baseline for the object track queries of §4.1.
type TrackMethod interface {
	Name() string
	// Tune evaluates the method's candidate configurations on the
	// validation set (its "parameter selection phase").
	Tune(sys *core.System, metric core.Metric) []Candidate
}

// EvalCandidates measures each candidate on the given clips with the
// metric, returning tuner points aligned with the candidates slice.
func EvalCandidates(cands []Candidate, clips []*dataset.ClipTruth, metric core.Metric) []tuner.Point {
	out := make([]tuner.Point, len(cands))
	for i, c := range cands {
		res := c.Run(clips)
		out[i] = tuner.Point{
			Runtime:  res.Runtime,
			Accuracy: metric.Accuracy(res.PerClip, clips),
		}
	}
	return out
}

// All returns the track-query baselines in the paper's order.
func All() []TrackMethod {
	return []TrackMethod{
		NewMiris(),
		NewChameleon(),
		NewNoScope(),
		NewCaTDet(),
		NewCenterTrack(),
	}
}
