package baselines

import (
	"fmt"
	"math"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
	"otif/internal/query"
	"otif/internal/track"
	"otif/internal/video"
)

// Miris is our implementation of the MIRIS video query optimizer (Bastani
// et al., SIGMOD 2020): pairwise (GNN-style) tracking at reduced sampling
// rates, followed by a query-driven refinement stage that decodes and
// processes *additional* frames to recover accurate track endpoints. The
// refinement stage is what makes Miris costly when extracting all tracks —
// and since it is query-driven, its execution repeats for every query
// (QueryFraction = 1), which is where OTIF's 25x five-query speedup comes
// from (Table 2).
type Miris struct {
	// Gaps are the candidate base sampling gaps (Miris' error tolerance
	// knob maps to how aggressively it can reduce the rate).
	Gaps []int
}

// NewMiris returns the Miris baseline with its standard candidate gaps.
// Gap 1 is the naive fallback configuration that processes every frame —
// the paper notes Miris, Chameleon, NoScope and CaTDet all share it as
// their slowest, most accurate point (§4.1).
func NewMiris() *Miris { return &Miris{Gaps: []int{1, 2, 4, 8, 16}} }

// Name implements TrackMethod.
func (m *Miris) Name() string { return "Miris" }

// Tune implements TrackMethod: each candidate is a base sampling gap; every
// candidate applies endpoint refinement by processing extra frames.
func (m *Miris) Tune(sys *core.System, metric core.Metric) []Candidate {
	var out []Candidate
	for _, gap := range m.Gaps {
		gap := gap
		run := func(clips []*dataset.ClipTruth) *core.SetResult {
			return m.runSet(sys, gap, clips)
		}
		res := run(sys.DS.Val)
		out = append(out, Candidate{
			Label:         fmt.Sprintf("miris-g%d", gap),
			Run:           run,
			ValAccuracy:   metric.Accuracy(res.PerClip, sys.DS.Val),
			ValRuntime:    res.Runtime,
			QueryFraction: 1,
		})
	}
	return out
}

func (m *Miris) runSet(sys *core.System, gap int, clips []*dataset.ClipTruth) *core.SetResult {
	acct := costmodel.NewAccountant()
	out := &core.SetResult{PerClip: make([][]*query.Track, len(clips))}
	for i, ct := range clips {
		out.PerClip[i] = m.runClip(sys, gap, ct, acct)
	}
	out.Runtime = acct.Total()
	out.Breakdown = acct.Breakdown()
	return out
}

// runClip tracks the clip at the base gap with the pairwise matcher, then
// refines each track's start and end by decoding intermediate frames and
// detecting in a window around the extrapolated position, halving the
// lookback gap until the entry/exit frame is pinned down.
func (m *Miris) runClip(sys *core.System, gap int, ct *dataset.ClipTruth, acct *costmodel.Accountant) []*query.Track {
	cfg := core.Config{
		Arch:     sys.Best.Arch,
		DetScale: sys.Best.DetScale,
		DetConf:  sys.Best.DetConf,
		Gap:      gap,
		Tracker:  core.TrackerPair,
	}
	res := sys.RunClip(cfg, ct.Clip, acct)

	detW, detH := cfg.DetRes(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)
	detector := &detect.Detector{
		Cfg:        detect.Config{Arch: cfg.Arch, Width: detW, Height: detH, ConfThresh: cfg.DetConf},
		Background: sys.Background,
		Classify:   sys.Classifier,
		Acct:       acct,
	}

	out := make([]*query.Track, 0, len(res.Tracks))
	for _, t := range res.Tracks {
		m.refineEnd(sys, detector, ct.Clip, t, acct, false)
		m.refineEnd(sys, detector, ct.Clip, t, acct, true)
		out = append(out, &query.Track{
			ID: t.ID, Category: t.Category, Dets: t.Dets, Path: t.Path(),
		})
	}
	return out
}

// refineEnd extends one end of a track by processing additional frames:
// starting half a gap beyond the terminal detection, it decodes the frame,
// runs the detector in a window around the velocity-extrapolated box, and
// keeps stepping outward (halving on misses) until the object is no longer
// found or the clip boundary is reached.
func (m *Miris) refineEnd(sys *core.System, detector *detect.Detector, clip *video.Clip, t *track.Track, acct *costmodel.Accountant, forward bool) {
	if len(t.Dets) < 2 {
		return
	}
	step := -1
	terminal := t.Dets[0]
	neighbor := t.Dets[1]
	if forward {
		step = 1
		terminal = t.Dets[len(t.Dets)-1]
		neighbor = t.Dets[len(t.Dets)-2]
	}
	dt := float64(terminal.FrameIdx - neighbor.FrameIdx)
	if dt == 0 {
		return
	}
	v := terminal.Box.Center().Sub(neighbor.Box.Center()).Scale(1 / dt)

	cur := terminal
	stride := 4
	for iter := 0; iter < 12; iter++ {
		idx := cur.FrameIdx + step*stride
		if idx < 0 || idx >= clip.Len() {
			if stride == 1 {
				break
			}
			stride /= 2
			continue
		}
		// Decode the extra frame (this is the cost Miris pays that OTIF's
		// cluster-based refinement avoids).
		acct.Add(costmodel.OpDecode, costmodel.DecodeCost(detector.Cfg.Width, detector.Cfg.Height))
		frame := clip.Frame(idx)
		d := float64(idx - cur.FrameIdx)
		pred := cur.Box.Translate(v.X*d, v.Y*d)
		win := geom.Rect{
			X: pred.X - pred.W, Y: pred.Y - pred.H,
			W: pred.W * 3, H: pred.H * 3,
		}.Clip(frame.Bounds())
		if win.Empty() {
			break
		}
		dets := detector.DetectWindows(frame, idx, []geom.Rect{win})
		best := -1
		bestDist := math.Inf(1)
		for di, det := range dets {
			if dist := det.Box.Center().Dist(pred.Center()); dist < bestDist {
				bestDist = dist
				best = di
			}
		}
		if best >= 0 && bestDist < pred.W*1.5 {
			cur = dets[best]
			if forward {
				t.Dets = append(t.Dets, cur)
			} else {
				t.Dets = append([]detect.Detection{cur}, t.Dets...)
			}
			continue
		}
		if stride == 1 {
			break
		}
		stride /= 2
	}
}
