package baselines

import (
	"fmt"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/query"
	"otif/internal/track"
	"otif/internal/video"
)

// NoScope is our implementation of the NoScope optimizer (Kang et al.,
// VLDB 2017): a frame-level classification proxy model decides, per frame,
// whether the frame contains any object at all; the expensive detector is
// skipped on frames the proxy confidently labels empty. On busy scenes
// where every frame has objects, the proxy can skip nothing and NoScope
// degenerates to two useful configurations — run the detector everywhere,
// or skip everything — exactly as the paper observes (§4.1).
type NoScope struct {
	// Thresholds are the proxy confidence thresholds swept to produce the
	// speed-accuracy tradeoff.
	Thresholds []float64
}

// NewNoScope returns the NoScope baseline with its threshold sweep.
func NewNoScope() *NoScope {
	return &NoScope{Thresholds: []float64{0.0, 0.2, 0.4, 0.6, 0.8, 0.98}}
}

// Name implements TrackMethod.
func (n *NoScope) Name() string { return "NoScope" }

// Tune implements TrackMethod. The frame classifier reuses the lowest-
// resolution segmentation proxy model: the frame score is the maximum cell
// score, i.e. the model's confidence that *some* cell contains an object.
func (n *NoScope) Tune(sys *core.System, metric core.Metric) []Candidate {
	var out []Candidate
	for _, th := range n.Thresholds {
		th := th
		run := func(clips []*dataset.ClipTruth) *core.SetResult {
			return n.runSet(sys, th, clips)
		}
		res := run(sys.DS.Val)
		out = append(out, Candidate{
			Label:       fmt.Sprintf("noscope@%.2f", th),
			Run:         run,
			ValAccuracy: metric.Accuracy(res.PerClip, sys.DS.Val),
			ValRuntime:  res.Runtime,
		})
	}
	return out
}

func (n *NoScope) runSet(sys *core.System, threshold float64, clips []*dataset.ClipTruth) *core.SetResult {
	acct := costmodel.NewAccountant()
	out := &core.SetResult{PerClip: make([][]*query.Track, len(clips))}
	proxyModel := sys.Proxies[len(sys.Proxies)-1] // lowest resolution
	// The detector uses theta_best's architecture and resolution, so the
	// threshold-zero candidate is exactly the naive fallback configuration.
	detW, detH := sys.Best.DetRes(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)
	for i, ct := range clips {
		detector := &detect.Detector{
			Cfg:        detect.Config{Arch: sys.Best.Arch, Width: detW, Height: detH, ConfThresh: sys.Best.DetConf},
			Background: sys.Background,
			Classify:   sys.Classifier,
			Acct:       acct,
		}
		tracker := track.NewSORT()
		reader := video.NewReader(ct.Clip, 1, detW, detH, acct)
		for {
			frame, idx := reader.Next()
			if frame == nil {
				break
			}
			scores := proxyModel.Score(frame, sys.Background, acct)
			frameScore := 0.0
			for _, s := range scores {
				if s > frameScore {
					frameScore = s
				}
			}
			var dets []detect.Detection
			if frameScore >= threshold {
				dets = detector.Detect(frame, idx)
			}
			tracker.Update(&track.FrameContext{FrameIdx: idx, GapFrames: 1}, dets)
		}
		tracks := track.PruneShort(tracker.Finish(), 2)
		qt := make([]*query.Track, len(tracks))
		for k, t := range tracks {
			qt[k] = &query.Track{ID: t.ID, Category: t.Category, Dets: t.Dets, Path: t.Path()}
		}
		out.PerClip[i] = qt
	}
	out.Runtime = acct.Total()
	out.Breakdown = acct.Breakdown()
	return out
}
