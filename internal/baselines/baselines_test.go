package baselines

import (
	"testing"

	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/query"
	"otif/internal/tuner"
)

var cachedSys *core.System
var cachedMetric core.Metric

func trainedSystem(t *testing.T) (*core.System, core.Metric) {
	t.Helper()
	if cachedSys != nil {
		return cachedSys, cachedMetric
	}
	ds, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 3, ClipSeconds: 5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys := core.NewSystem(ds)
	metric := core.MetricFor(ds)
	best, _ := tuner.SelectBest(sys, metric)
	sys.FinishTraining(best, 42)
	cachedSys, cachedMetric = sys, metric
	return sys, metric
}

func TestAllBaselinesProduceCandidates(t *testing.T) {
	sys, metric := trainedSystem(t)
	for _, m := range All() {
		cands := m.Tune(sys, metric)
		if len(cands) == 0 {
			t.Errorf("%s produced no candidates", m.Name())
			continue
		}
		for _, c := range cands {
			if c.ValRuntime <= 0 {
				t.Errorf("%s candidate %s has zero runtime", m.Name(), c.Label)
			}
			if c.ValAccuracy < 0 || c.ValAccuracy > 1 {
				t.Errorf("%s candidate %s accuracy out of range: %v", m.Name(), c.Label, c.ValAccuracy)
			}
		}
		// Candidates run on a fresh set.
		res := cands[0].Run(sys.DS.Test)
		if res.Runtime <= 0 {
			t.Errorf("%s test run has zero runtime", m.Name())
		}
	}
}

func TestMirisIsQueryDriven(t *testing.T) {
	sys, metric := trainedSystem(t)
	cands := NewMiris().Tune(sys, metric)
	for _, c := range cands {
		if c.QueryFraction != 1 {
			t.Errorf("Miris QueryFraction = %v, want 1 (per-query execution)", c.QueryFraction)
		}
	}
}

func TestMirisRefinementExtendsTracks(t *testing.T) {
	sys, metric := trainedSystem(t)
	m := NewMiris()
	cands := m.Tune(sys, metric)
	// Reasonable accuracy: refinement should let even a gap-8 candidate
	// classify paths.
	bestAcc := 0.0
	for _, c := range cands {
		if c.ValAccuracy > bestAcc {
			bestAcc = c.ValAccuracy
		}
	}
	if bestAcc < 0.5 {
		t.Errorf("Miris best accuracy = %v, suspiciously low", bestAcc)
	}
}

func TestChameleonCandidatesGetFaster(t *testing.T) {
	sys, metric := trainedSystem(t)
	cands := NewChameleon().Tune(sys, metric)
	if len(cands) < 2 {
		t.Fatalf("chameleon produced %d candidates", len(cands))
	}
	if cands[len(cands)-1].ValRuntime >= cands[0].ValRuntime {
		t.Error("hill climbing should find faster configurations")
	}
}

func TestNoScopeThresholdZeroEqualsFullDetection(t *testing.T) {
	sys, metric := trainedSystem(t)
	ns := NewNoScope()
	cands := ns.Tune(sys, metric)
	// Threshold 0 processes everything -> best accuracy of the sweep.
	first := cands[0]
	for _, c := range cands[1:] {
		if c.ValAccuracy > first.ValAccuracy+0.1 {
			t.Errorf("higher threshold (%s) beat full detection by a lot", c.Label)
		}
	}
	// The extreme threshold should be cheaper than full detection.
	last := cands[len(cands)-1]
	if last.ValRuntime >= first.ValRuntime {
		t.Error("skipping frames must reduce runtime")
	}
}

func TestCenterTrackPerformsPoorlyAtReducedRate(t *testing.T) {
	sys, metric := trainedSystem(t)
	ct := NewCenterTrack()
	cands := ct.Tune(sys, metric)
	// Find its best native-rate accuracy and its best gap-4 accuracy;
	// without gap augmentation the reduced-rate accuracy should drop.
	var nativeBest, gap4Best float64
	for _, c := range cands {
		switch {
		case hasSuffix(c.Label, "-g1"):
			if c.ValAccuracy > nativeBest {
				nativeBest = c.ValAccuracy
			}
		case hasSuffix(c.Label, "-g4"):
			if c.ValAccuracy > gap4Best {
				gap4Best = c.ValAccuracy
			}
		}
	}
	if nativeBest == 0 {
		t.Fatal("no native-rate candidates")
	}
	if gap4Best > nativeBest+0.05 {
		t.Errorf("native-rate tracker unexpectedly better at gap 4 (%v vs %v)", gap4Best, nativeBest)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func TestEvalCandidates(t *testing.T) {
	sys, metric := trainedSystem(t)
	cands := NewNoScope().Tune(sys, metric)[:2]
	pts := EvalCandidates(cands, sys.DS.Test, metric)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Runtime <= 0 {
			t.Error("zero test runtime")
		}
	}
}

func TestFrameQueryMachinery(t *testing.T) {
	sys, _ := trainedSystem(t)
	q := FrameQuery{
		Name: "count", Category: "car",
		Pred:  query.CountPredicate{N: 1},
		Limit: 3, MinSepSec: 1,
	}
	ct := sys.DS.Val[0]
	matched := false
	for f := 0; f < ct.Clip.Len(); f++ {
		if TruthSatisfies(ct, q, f) {
			matched = true
			break
		}
	}
	if !matched {
		t.Skip("no cars in clip")
	}
	refs := []frameRef{{0, 0}, {0, 5}, {0, 100}, {1, 0}}
	out := selectSeparated(refs, 3, 50)
	if len(out) != 3 {
		t.Fatalf("selectSeparated = %v", out)
	}
	// (0,5) conflicts with (0,0) at separation 50.
	for _, r := range out {
		if r == (frameRef{0, 5}) {
			t.Error("separation not enforced")
		}
	}
}

func TestBlazeItFrameQuery(t *testing.T) {
	sys, _ := trainedSystem(t)
	q := FrameQuery{
		Name: "count", Category: "car",
		Pred:  query.CountPredicate{N: 2},
		Limit: 3, MinSepSec: 2,
	}
	res := NewBlazeIt().RunFrameQuery(sys, q, sys.DS.Test)
	if res.PreprocessTime <= 0 {
		t.Error("BlazeIt pre-processing must cost something")
	}
	if res.Returned > q.Limit {
		t.Error("limit exceeded")
	}
	if res.Returned > 0 && res.Accuracy < 0.3 {
		t.Errorf("BlazeIt accuracy = %v, suspiciously low", res.Accuracy)
	}
}

func TestTASTIFrameQueryAndEmbeddingReuse(t *testing.T) {
	sys, _ := trainedSystem(t)
	q := FrameQuery{
		Name: "count", Category: "car",
		Pred:  query.CountPredicate{N: 2},
		Limit: 3, MinSepSec: 2,
	}
	ta := NewTASTI()
	emb, pre := ta.Embeddings(sys, sys.DS.Test)
	if pre <= 0 {
		t.Fatal("embedding pass must cost something")
	}
	res := ta.RunFrameQuery(sys, q, sys.DS.Test, emb, pre)
	if res.PreprocessTime != pre {
		t.Error("reused embeddings should keep the given pre-processing time")
	}
	if res.Returned > q.Limit {
		t.Error("limit exceeded")
	}
	if res.DetectorApps <= 0 {
		t.Error("TASTI must apply the detector at query time")
	}
}

func TestOTIFFramesReusesTracks(t *testing.T) {
	sys, _ := trainedSystem(t)
	cfg := sys.Best
	cfg.Gap = 2
	of := NewOTIFFrames(cfg)
	q := FrameQuery{
		Name: "count", Category: "car",
		Pred:  query.CountPredicate{N: 1},
		Limit: 3, MinSepSec: 2,
	}
	r1 := of.RunFrameQuery(sys, q, sys.DS.Test)
	if r1.PreprocessTime <= 0 {
		t.Fatal("OTIF pre-processing should cost something")
	}
	// Second query: no new pre-processing, tiny query time.
	q2 := q
	q2.Pred = query.CountPredicate{N: 2}
	r2 := of.RunFrameQuery(sys, q2, sys.DS.Test)
	if r2.PreprocessTime != r1.PreprocessTime {
		t.Error("tracks must be reused across queries")
	}
	if r2.QueryTime >= r1.PreprocessTime/10 {
		t.Errorf("query time %v should be far below pre-processing %v", r2.QueryTime, r1.PreprocessTime)
	}
}
