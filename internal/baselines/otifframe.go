package baselines

import (
	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/query"
)

// OTIFFrames answers frame-level limit queries by post-processing the
// tracks OTIF extracted in its single pre-processing pass. The tracks are
// query-agnostic, so additional queries cost only the (milliseconds-scale)
// track scan — the central claim of §4.2.
type OTIFFrames struct {
	// Cfg is the pipeline configuration used for pre-processing (the
	// fastest configuration within 5% of best track-query accuracy).
	Cfg core.Config

	tracksPerClip [][]*query.Track
	preprocess    float64
}

// NewOTIFFrames wraps a tuned OTIF configuration.
func NewOTIFFrames(cfg core.Config) *OTIFFrames { return &OTIFFrames{Cfg: cfg} }

// Preprocess extracts all tracks once; the result is reused by every
// subsequent query.
func (o *OTIFFrames) Preprocess(sys *core.System, clips []*dataset.ClipTruth) {
	res := sys.RunSet(o.Cfg, clips)
	o.tracksPerClip = res.PerClip
	o.preprocess = res.Runtime
}

// RunFrameQuery answers one limit query from the stored tracks. Query cost
// is the track-scan cost: a per-(frame, visible-track) charge that lands
// around a simulated second per query on paper-sized sets, matching the
// sub-second to second-scale latencies of Table 3.
func (o *OTIFFrames) RunFrameQuery(sys *core.System, q FrameQuery, clips []*dataset.ClipTruth) FrameLevelResult {
	if o.tracksPerClip == nil {
		o.Preprocess(sys, clips)
	}
	acct := costmodel.NewAccountant()
	ctx := sys.Ctx()
	minSep := int(q.MinSepSec * float64(ctx.FPS))

	// Gather per-clip matches ranked by the minimum duration of their
	// visible tracks (§4.2), then interleave clips preserving rank order.
	type ranked struct {
		ref frameRef
		dur int
	}
	var cands []ranked
	for ci, tracks := range o.tracksPerClip {
		ctx.Frames = clips[ci].Clip.Len()
		acct.Add(costmodel.OpQuery, perFrameScanCost*float64(ctx.Frames)*float64(1+len(tracks)))
		for _, m := range query.LimitQuery(tracks, q.Category, q.Pred, ctx, q.Limit, minSep) {
			cands = append(cands, ranked{frameRef{ci, m.FrameIdx}, m.MinDuration})
		}
	}
	// Sort by duration descending (stable on clip/frame for determinism).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].dur > cands[j-1].dur; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	refs := make([]frameRef, len(cands))
	for i, c := range cands {
		refs[i] = c.ref
	}
	outputs := selectSeparated(refs, q.Limit, minSep)

	return FrameLevelResult{
		PreprocessTime: o.preprocess,
		QueryTime:      acct.Total(),
		Accuracy:       measureAccuracy(clips, q, outputs),
		Returned:       len(outputs),
	}
}

// perFrameScanCost is the simulated cost of evaluating one frame of one
// track during query post-processing (pure CPU work over in-memory
// tracks).
const perFrameScanCost = 2e-7
