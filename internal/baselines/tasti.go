package baselines

import (
	"math/rand"
	"sort"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/nn"
)

// TASTI is our implementation of the task-agnostic index (Kang et al.,
// 2020): pre-processing runs a feature extractor over *every* frame at
// 224x224 input resolution, producing query-agnostic embeddings that can
// be reused across queries. Per query, a small scoring model is trained on
// a handful of detector-labeled frames, used to rank all frames, and the
// detector is applied in score order until the limit is reached. The
// embedding pass is the most expensive pre-processing of the three methods
// (Table 3), but — unlike BlazeIt's proxy — it never repeats.
type TASTI struct {
	// EmbedW and EmbedH are the embedding extractor input resolution
	// (224x224 per the paper).
	EmbedW, EmbedH int
	// LabelFrames is the number of detector-labeled frames used to train
	// the per-query scoring model.
	LabelFrames int
}

// NewTASTI returns the TASTI baseline.
func NewTASTI() *TASTI { return &TASTI{EmbedW: 224, EmbedH: 224, LabelFrames: 48} }

// Name identifies the method.
func (t *TASTI) Name() string { return "TASTI" }

// Embeddings computes the query-agnostic per-frame embeddings (the
// pre-processing pass), charging embedding and decode cost. The embedding
// of a frame is the cell-score vector of a mid-resolution segmentation
// proxy model — a feature map summarizing which parts of the frame likely
// contain objects, the role TASTI's learned embeddings play.
func (t *TASTI) Embeddings(sys *core.System, clips []*dataset.ClipTruth) ([][]nn.Vec, float64) {
	acct := costmodel.NewAccountant()
	pm := sys.Proxies[len(sys.Proxies)/2]
	out := make([][]nn.Vec, len(clips))
	for ci, ct := range clips {
		out[ci] = make([]nn.Vec, ct.Clip.Len())
		for f := 0; f < ct.Clip.Len(); f++ {
			acct.Add(costmodel.OpDecode, costmodel.DecodeCost(t.EmbedW, t.EmbedH))
			acct.Add(costmodel.OpEmbed, costmodel.EmbedCost(t.EmbedW, t.EmbedH))
			frame := ct.Clip.Frame(f)
			scores := pm.Score(frame, sys.Background, costmodel.NewAccountant())
			out[ci][f] = nn.Vec(scores)
		}
	}
	return out, acct.Total()
}

// RunFrameQuery executes one frame-level limit query given precomputed
// embeddings (pass nil to compute them here; Table 3 reuses one embedding
// pass across the five-query estimate).
func (t *TASTI) RunFrameQuery(sys *core.System, q FrameQuery, clips []*dataset.ClipTruth,
	embeddings [][]nn.Vec, preprocessTime float64) FrameLevelResult {
	if embeddings == nil {
		embeddings, preprocessTime = t.Embeddings(sys, clips)
	}

	acctQ := costmodel.NewAccountant()
	detW, detH := sys.Best.DetRes(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)
	detector := &detect.Detector{
		Cfg:        detect.Config{Arch: sys.Best.Arch, Width: detW, Height: detH, ConfThresh: sys.Best.DetConf},
		Background: sys.Background,
		Classify:   sys.Classifier,
		Acct:       acctQ,
	}

	// Train the query-specific scoring model on LabelFrames frames spread
	// across the set, labeled by applying the detector (these detector
	// applications are part of query time).
	rng := rand.New(rand.NewSource(31))
	dim := len(embeddings[0][0])
	scorer := nn.NewLogReg(dim, rng)
	var xs []nn.Vec
	var labels []float64
	apps := 0
	total := 0
	for _, ct := range clips {
		total += ct.Clip.Len()
	}
	step := total / t.LabelFrames
	if step < 1 {
		step = 1
	}
	k := 0
	for ci, ct := range clips {
		for f := 0; f < ct.Clip.Len(); f++ {
			if k%step == 0 {
				frame := ct.Clip.Frame(f)
				dets := detector.Detect(frame, f)
				apps++
				boxes := boxesOf(dets, q.Category)
				xs = append(xs, embeddings[ci][f])
				if _, ok := q.Pred.Eval(boxes); ok {
					labels = append(labels, 1)
				} else {
					labels = append(labels, 0)
				}
			}
			k++
		}
	}
	scorer.TrainEpochs(xs, labels, 30, 0.3, 1e-4, rng)

	// Rank every frame by the scorer.
	type scored struct {
		ref   frameRef
		score float64
	}
	var frames []scored
	for ci := range clips {
		for f, emb := range embeddings[ci] {
			frames = append(frames, scored{frameRef{ci, f}, scorer.Predict(emb)})
		}
	}
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].score > frames[j].score })

	minSep := int(q.MinSepSec * float64(sys.DS.Cfg.FPS))
	var outputs []frameRef
	for _, cand := range frames {
		if len(outputs) >= q.Limit {
			break
		}
		okSep := true
		for _, o := range outputs {
			if o.clip == cand.ref.clip && absInt(o.frame-cand.ref.frame) < minSep {
				okSep = false
				break
			}
		}
		if !okSep {
			continue
		}
		frame := clips[cand.ref.clip].Clip.Frame(cand.ref.frame)
		dets := detector.Detect(frame, cand.ref.frame)
		apps++
		boxes := boxesOf(dets, q.Category)
		if _, ok := q.Pred.Eval(boxes); ok {
			outputs = append(outputs, cand.ref)
		}
	}

	return FrameLevelResult{
		PreprocessTime: preprocessTime,
		QueryTime:      acctQ.Get(costmodel.OpDetect),
		Accuracy:       measureAccuracy(clips, q, outputs),
		Returned:       len(outputs),
		DetectorApps:   apps,
	}
}
