package baselines

import (
	"fmt"

	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/tuner"
)

// Chameleon is our implementation of the Chameleon video analytics
// adaptation system (Jiang et al., SIGCOMM 2018): it hill-climbs over the
// detector knobs — architecture, input resolution, and sampling framerate —
// to find profitable configurations, but has neither a segmentation proxy
// model nor a learned reduced-rate tracker (it uses the heuristic tracker),
// so its framerate reductions are limited by how quickly IoU-based
// association breaks down.
type Chameleon struct {
	// Gaps are the framerate-reduction candidates Chameleon explores.
	Gaps []int
}

// NewChameleon returns the Chameleon baseline.
func NewChameleon() *Chameleon { return &Chameleon{Gaps: []int{1, 2, 4}} }

// Name implements TrackMethod.
func (c *Chameleon) Name() string { return "Chameleon" }

// Tune implements TrackMethod: a hill-climbing sweep over (architecture,
// resolution, framerate) with the heuristic tracker. Starting from the
// most expensive configuration, it repeatedly applies the single knob
// change with the best accuracy-per-speedup ratio, emitting each visited
// configuration as a candidate — Chameleon's periodic profiling phase,
// condensed to the per-dataset tuning the evaluation measures.
func (c *Chameleon) Tune(sys *core.System, metric core.Metric) []Candidate {
	type knob struct {
		arch  detect.Arch
		scale float64
		gap   int
	}
	cur := knob{detect.ArchRCNN, core.DetScaleLadder[0], 1}
	eval := func(k knob) (Candidate, tuner.Point) {
		cfg := core.Config{
			Arch: k.arch, DetScale: k.scale, DetConf: core.DetConfDefault,
			Gap: k.gap, Tracker: core.TrackerSORT,
		}
		run := func(clips []*dataset.ClipTruth) *core.SetResult {
			return sys.RunSet(cfg, clips)
		}
		res := run(sys.DS.Val)
		p := tuner.Point{Cfg: cfg, Runtime: res.Runtime, Accuracy: metric.Accuracy(res.PerClip, sys.DS.Val)}
		return Candidate{
			Label:       fmt.Sprintf("cham-%s@%.2f-g%d", k.arch, k.scale, k.gap),
			Run:         run,
			ValAccuracy: p.Accuracy,
			ValRuntime:  p.Runtime,
		}, p
	}

	cand, p := eval(cur)
	out := []Candidate{cand}
	curPoint := p
	for iter := 0; iter < 10; iter++ {
		// Neighbor moves: next architecture, next resolution step, next
		// framerate step.
		var moves []knob
		if cur.arch == detect.ArchRCNN {
			moves = append(moves, knob{detect.ArchYOLO, cur.scale, cur.gap})
		}
		if i := scaleIndex(cur.scale); i+1 < len(core.DetScaleLadder) {
			moves = append(moves, knob{cur.arch, core.DetScaleLadder[i+1], cur.gap})
		}
		if i := gapIndex(c.Gaps, cur.gap); i+1 < len(c.Gaps) {
			moves = append(moves, knob{cur.arch, cur.scale, c.Gaps[i+1]})
		}
		if len(moves) == 0 {
			break
		}
		bestRatio := -1.0
		var bestKnob knob
		var bestCand Candidate
		var bestPoint tuner.Point
		for _, mv := range moves {
			cand, p := eval(mv)
			speedup := curPoint.Runtime - p.Runtime
			if speedup <= 0 {
				continue
			}
			// Accuracy retained per unit of speedup.
			ratio := (1 + p.Accuracy - curPoint.Accuracy) / 1
			if ratio > bestRatio {
				bestRatio = ratio
				bestKnob = mv
				bestCand = cand
				bestPoint = p
			}
		}
		if bestRatio < 0 {
			break
		}
		cur = bestKnob
		curPoint = bestPoint
		out = append(out, bestCand)
	}
	return out
}

func scaleIndex(scale float64) int {
	for i, s := range core.DetScaleLadder {
		if s == scale {
			return i
		}
	}
	return len(core.DetScaleLadder) - 1
}

func gapIndex(gaps []int, g int) int {
	for i, v := range gaps {
		if v == g {
			return i
		}
	}
	return len(gaps) - 1
}
