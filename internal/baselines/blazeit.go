package baselines

import (
	"sort"

	"otif/internal/core"
	"otif/internal/costmodel"
	"otif/internal/dataset"
	"otif/internal/detect"
	"otif/internal/geom"
)

// BlazeIt is our implementation of the BlazeIt video query engine (Kang et
// al., CIDR 2019) for frame-level limit queries: a cheap query-specific
// proxy model scores every frame at 64x64 input resolution (pre-processing),
// and query execution applies the full object detector on frames from
// highest to lowest score until the desired output cardinality is reached.
// Because the proxy is trained per query, its pre-processing pass repeats
// for every new query — unlike OTIF's reusable tracks (§4.2).
type BlazeIt struct {
	// ProxyW and ProxyH are the proxy input resolution (64x64 per the
	// paper).
	ProxyW, ProxyH int
}

// NewBlazeIt returns the BlazeIt baseline.
func NewBlazeIt() *BlazeIt { return &BlazeIt{ProxyW: 64, ProxyH: 64} }

// Name identifies the method.
func (b *BlazeIt) Name() string { return "BlazeIt" }

// RunFrameQuery executes one frame-level limit query over the clips.
//
// Pre-processing decodes every frame at the proxy resolution and derives a
// per-frame *query-specific* score from the lowest-resolution segmentation
// proxy model (BlazeIt trains a specialized proxy per query; QueryScore
// specializes the cell scores to the predicate). Query execution then
// applies the detector in score order, checks the predicate on the
// detections, and enforces the output separation. Per the paper's
// measurement protocol, query time counts detector inference only
// (random-access decode is excluded).
func (b *BlazeIt) RunFrameQuery(sys *core.System, q FrameQuery, clips []*dataset.ClipTruth) FrameLevelResult {
	acctPre := costmodel.NewAccountant()
	pm := sys.Proxies[len(sys.Proxies)-1]

	type scored struct {
		ref   frameRef
		score float64
	}
	var frames []scored
	for ci, ct := range clips {
		for f := 0; f < ct.Clip.Len(); f++ {
			acctPre.Add(costmodel.OpDecode, costmodel.DecodeCost(b.ProxyW, b.ProxyH))
			acctPre.Add(costmodel.OpProxy, costmodel.ProxyCost(b.ProxyW, b.ProxyH))
			frame := ct.Clip.Frame(f)
			scores := pm.Score(frame, sys.Background, costmodel.NewAccountant())
			frames = append(frames, scored{frameRef{ci, f},
				QueryScore(q, scores, sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)})
		}
	}
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].score > frames[j].score })

	// Query execution: detector in score order until limit reached.
	acctQ := costmodel.NewAccountant()
	detW, detH := sys.Best.DetRes(sys.DS.Cfg.NomW, sys.DS.Cfg.NomH)
	detector := &detect.Detector{
		Cfg:        detect.Config{Arch: sys.Best.Arch, Width: detW, Height: detH, ConfThresh: sys.Best.DetConf},
		Background: sys.Background,
		Classify:   sys.Classifier,
		Acct:       acctQ,
	}
	minSep := int(q.MinSepSec * float64(sys.DS.Cfg.FPS))
	var outputs []frameRef
	apps := 0
	for _, cand := range frames {
		if len(outputs) >= q.Limit {
			break
		}
		okSep := true
		for _, o := range outputs {
			if o.clip == cand.ref.clip && absInt(o.frame-cand.ref.frame) < minSep {
				okSep = false
				break
			}
		}
		if !okSep {
			continue
		}
		frame := clips[cand.ref.clip].Clip.Frame(cand.ref.frame)
		dets := detector.Detect(frame, cand.ref.frame)
		apps++
		boxes := boxesOf(dets, q.Category)
		if _, ok := q.Pred.Eval(boxes); ok {
			outputs = append(outputs, cand.ref)
		}
	}

	return FrameLevelResult{
		PreprocessTime: acctPre.Total(),
		QueryTime:      acctQ.Get(costmodel.OpDetect),
		Accuracy:       measureAccuracy(clips, q, outputs),
		Returned:       len(outputs),
		DetectorApps:   apps,
	}
}

// boxesOf extracts the boxes of the category from detections.
func boxesOf(dets []detect.Detection, cat string) []geom.Rect {
	var out []geom.Rect
	for _, d := range dets {
		if cat == "" || d.Category == cat {
			out = append(out, d.Box)
		}
	}
	return out
}
