package otif

import (
	"io"

	"otif/internal/persist"
	"otif/internal/query"
)

// SaveModels writes the pipeline's trained model bundle (theta_best,
// background model, proxy models, window sizes, tracking models,
// refinement clusters) in OTIF's versioned, checksummed binary format. It
// returns ErrNotTrained if Train (or LoadModels) has not run.
func (p *Pipeline) SaveModels(w io.Writer) error {
	if p.sys.Recurrent == nil {
		return ErrNotTrained
	}
	return persist.SaveModels(w, p.sys)
}

// LoadModels restores a previously saved model bundle into this pipeline,
// replacing Train. The pipeline must have been opened on the same dataset
// (name and set sizes) the bundle was trained on; a loaded pipeline
// produces bit-identical extraction results to the one that saved it.
func (p *Pipeline) LoadModels(r io.Reader) error {
	return persist.LoadModels(r, p.sys)
}

// WriteTo serializes the track set in OTIF's binary track format; n is the
// number of bytes written. Stored tracks reload with ReadTrackSet and
// answer queries without any re-processing.
func (ts *TrackSet) WriteTo(w io.Writer) (n int64, err error) {
	cw := &countWriter{w: w}
	err = persist.WriteTracks(cw, ts.PerClip)
	return cw.n, err
}

// ReadTrackSet loads a stored track set. The context parameters (frame
// rate and geometry) must describe the clips the tracks were extracted
// from; the pipeline's Ctx supplies them for its own datasets.
func ReadTrackSet(r io.Reader, fps, nomW, nomH, framesPerClip int) (*TrackSet, error) {
	perClip, err := persist.ReadTracks(r)
	if err != nil {
		return nil, err
	}
	return &TrackSet{
		PerClip: perClip,
		ctx: query.Context{
			FPS: fps, NomW: nomW, NomH: nomH, Frames: framesPerClip,
		},
	}, nil
}

// ReadTrackSetFor loads a stored track set with the pipeline's clip
// geometry.
func (p *Pipeline) ReadTrackSetFor(r io.Reader) (*TrackSet, error) {
	ctx := p.sys.Ctx()
	return ReadTrackSet(r, ctx.FPS, ctx.NomW, ctx.NomH, ctx.Frames)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
